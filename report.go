package disha

import (
	"fmt"
	"strings"
)

// formatReport renders counters as a short human-readable block.
func formatReport(c Counters) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles:            %d\n", c.Cycles)
	fmt.Fprintf(&sb, "packets offered:   %d\n", c.PacketsOffered)
	fmt.Fprintf(&sb, "packets injected:  %d\n", c.PacketsInjected)
	fmt.Fprintf(&sb, "packets delivered: %d\n", c.PacketsDelivered)
	fmt.Fprintf(&sb, "flits delivered:   %d\n", c.FlitsDelivered)
	fmt.Fprintf(&sb, "timeout events:    %d\n", c.TimeoutEvents)
	fmt.Fprintf(&sb, "token seizures:    %d\n", c.TokenSeizures)
	fmt.Fprintf(&sb, "recoveries:        %d\n", c.Recoveries)
	fmt.Fprintf(&sb, "misroute hops:     %d\n", c.MisrouteHops)
	if c.PacketsDelivered > 0 {
		fmt.Fprintf(&sb, "seizure ratio:     %.5f\n", float64(c.TokenSeizures)/float64(c.PacketsDelivered))
	}
	return sb.String()
}
