// Package disha is a Go reproduction of "An Efficient, Fully Adaptive
// Deadlock Recovery Scheme: DISHA" (Anjan K.V. and Timothy Mark Pinkston,
// ISCA 1995): a flit-level wormhole network simulator in which routing is
// true fully adaptive — every virtual channel usable by every packet — and
// deadlock is handled by recovery through a central per-router Deadlock
// Buffer serialized by a circulating Token, rather than by avoidance.
//
// The package is a facade over the internal packages:
//
//   - topologies (k-ary n-cube torus and mesh) and traffic patterns;
//   - the routing algorithms compared in the paper (DOR, Turn model
//     negative-first, Dally & Aoki, Duato, and Disha itself);
//   - the router microarchitecture with time-out deadlock detection and the
//     Deadlock Buffer recovery lane;
//   - the experiment harness that regenerates the paper's figures;
//   - Chien's router cost model (the paper's Section 3.4);
//   - the executable deadlock theory (channel dependency graphs and a
//     runtime wait-for-graph analyzer).
//
// Quick start:
//
//	topo := disha.Torus(8, 8)
//	sim, err := disha.NewSimulator(disha.SimConfig{
//		Topo:      topo,
//		Algorithm: disha.DishaRouting(0),
//		Pattern:   disha.Uniform(topo),
//		LoadRate:  0.4,
//	})
//	if err != nil { ... }
//	sim.Run(10000)
//	fmt.Println(sim.Report())
package disha

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/plot"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// --- Topologies -----------------------------------------------------------------

// Graph is a directed network graph — the minimal interface the simulator
// needs. Every Topology is a Graph; coordinate-free constructors (FullMesh,
// Dragonfly, FatTree, ParseTopology) return plain Graphs.
type Graph = topology.Graph

// Topology is a direct interconnection network graph with k-ary n-cube
// coordinates (torus, mesh, hypercube).
type Topology = topology.Topology

// Node identifies a network node.
type Node = topology.Node

// Coord is a per-dimension coordinate vector.
type Coord = topology.Coord

// Torus builds a k-ary n-cube with wraparound links (the paper evaluates a
// 16x16 torus); it panics on invalid radices.
func Torus(radix ...int) Topology { return topology.MustTorus(radix...) }

// Mesh builds a k-ary n-cube without wraparound links.
func Mesh(radix ...int) Topology { return topology.MustMesh(radix...) }

// NewTorus is the error-returning variant of Torus.
func NewTorus(radix ...int) (Topology, error) { return topology.NewTorus(radix...) }

// NewMesh is the error-returning variant of Mesh.
func NewMesh(radix ...int) (Topology, error) { return topology.NewMesh(radix...) }

// Hypercube builds the n-dimensional binary hypercube; it panics for n < 1.
func Hypercube(dims int) Topology { return topology.MustHypercube(dims) }

// NewHypercube is the error-returning variant of Hypercube.
func NewHypercube(dims int) (Topology, error) { return topology.NewHypercube(dims) }

// FullMesh builds the complete graph on n nodes (every pair directly
// linked); it panics on invalid n.
func FullMesh(n int) Graph { return topology.MustFullMesh(n) }

// NewFullMesh is the error-returning variant of FullMesh.
func NewFullMesh(n int) (Graph, error) { return topology.NewFullMesh(n) }

// Dragonfly builds a canonical dragonfly: groups of a routers, all-to-all
// within a group, h global channels per router, one global channel between
// every pair of groups. It panics on invalid parameters.
func Dragonfly(a, h int) Graph { return topology.MustDragonfly(a, h) }

// NewDragonfly is the error-returning variant of Dragonfly.
func NewDragonfly(a, h int) (Graph, error) { return topology.NewDragonfly(a, h) }

// FatTree builds a three-level k-ary fat-tree (k even) over the router
// fabric: k pods of k edge+aggregation switches plus (k/2)^2 core switches.
// It panics on invalid k.
func FatTree(k int) Graph { return topology.MustFatTree(k) }

// NewFatTree is the error-returning variant of FatTree.
func NewFatTree(k int) (Graph, error) { return topology.NewFatTree(k) }

// ParseTopology builds a topology from its textual name: "torus-8x8",
// "mesh-4x4x2", "hypercube-3", "fullmesh-16", "dragonfly-4x2", "fattree-4".
func ParseTopology(name string) (Graph, error) { return topology.Parse(name) }

// --- Routing algorithms -----------------------------------------------------------

// Algorithm is a routing function mapping router state and a packet to
// candidate output virtual channels.
type Algorithm = routing.Algorithm

// Selection picks among a routing function's usable candidates.
type Selection = routing.Selection

// DishaRouting returns the paper's true fully adaptive routing with
// misroute bound m (0 = minimal, 3 = the paper's misrouting configuration).
// Run it with recovery enabled (SimConfig.Timeout > 0).
func DishaRouting(m int) Algorithm { return routing.Disha(m) }

// DOR returns deterministic dimension-order routing.
func DOR() Algorithm { return routing.DOR() }

// NegativeFirst returns the Turn model's negative-first algorithm.
func NegativeFirst() Algorithm { return routing.NegativeFirst() }

// DallyAoki returns Dally & Aoki's dynamic algorithm (dimension reversals).
func DallyAoki() Algorithm { return routing.DallyAoki() }

// Duato returns Duato's adaptive algorithm with escape channels.
func Duato() Algorithm { return routing.Duato() }

// DuatoStrict returns the conservative Duato variant whose escape use is
// permanent (an ablation baseline; see DESIGN.md).
func DuatoStrict() Algorithm { return routing.DuatoStrict() }

// RandomSelection picks a free candidate uniformly at random.
func RandomSelection() Selection { return routing.Random() }

// MinCongestionSelection prefers the direction with the most free VCs.
func MinCongestionSelection() Selection { return routing.MinCongestion() }

// --- Traffic ------------------------------------------------------------------------

// Pattern maps a source node to a destination node.
type Pattern = traffic.Pattern

// Uniform sends each packet to a uniformly random other node; it panics on
// a topology with fewer than two nodes (use NewUniform to get an error).
func Uniform(topo Graph) Pattern { return traffic.Uniform(topo) }

// NewUniform is Uniform with an error instead of a panic on a topology with
// fewer than two nodes.
func NewUniform(topo Graph) (Pattern, error) { return traffic.NewUniform(topo) }

// BitReversal sends node a_{b-1}..a_0 to node a_0..a_{b-1}; the node count
// must be a power of two.
func BitReversal(topo Graph) (Pattern, error) { return traffic.BitReversal(topo) }

// Transpose sends (x, y) to (y, x) on a square 2D network.
func Transpose(topo Topology) (Pattern, error) { return traffic.Transpose(topo) }

// HotSpot directs fraction of all traffic at the spot node on top of base;
// it panics when base is nil or fraction lies outside [0, 1] (use
// NewHotSpot to get an error).
func HotSpot(base Pattern, spot Node, fraction float64) Pattern {
	return traffic.HotSpot(base, spot, fraction)
}

// NewHotSpot is HotSpot with an error instead of a panic on a nil base or a
// fraction outside [0, 1].
func NewHotSpot(base Pattern, spot Node, fraction float64) (Pattern, error) {
	return traffic.NewHotSpot(base, spot, fraction)
}

// Complement sends every node to its coordinate-wise complement.
func Complement(topo Topology) Pattern { return traffic.Complement(topo) }

// Tornado sends (x, ...) to ((x + ceil(k/2) - 1) mod k, ...).
func Tornado(topo Topology) Pattern { return traffic.Tornado(topo) }

// --- Simulation ----------------------------------------------------------------------

// Cycle is a simulation timestamp in router clock cycles.
type Cycle = sim.Cycle

// Packet is a wormhole message with its routing and recovery state.
type Packet = packet.Packet

// Counters are network-wide event totals.
type Counters = network.Counters

// AllocPolicy selects flit-by-flit or packet-by-packet crossbar allocation.
type AllocPolicy = router.AllocPolicy

// Crossbar allocation policies (paper Section 3.3).
const (
	FlitByFlit     = router.FlitByFlit
	PacketByPacket = router.PacketByPacket
)

// RecoveryMode selects the deadlock recovery scheme.
type RecoveryMode = router.RecoveryMode

// Recovery modes.
const (
	RecoverySequential = router.RecoverySequential
	RecoveryConcurrent = router.RecoveryConcurrent
	RecoveryAbortRetry = router.RecoveryAbortRetry
)

// SimConfig configures one simulation. Zero fields take the paper's
// defaults (4 VCs of depth 2, 32-flit messages, a single-flit Deadlock
// Buffer, one injection and one reception channel, T_out = 8).
type SimConfig struct {
	Topo      Graph
	Algorithm Algorithm
	Selection Selection // default: random
	Pattern   Pattern
	// LoadRate is offered load as a fraction of capacity (Section 4.1).
	LoadRate float64
	// MsgLen is packet length in flits.
	MsgLen int
	// VCs is virtual channels per physical channel; BufferDepth their
	// per-VC depth in flits.
	VCs, BufferDepth int
	// Timeout is T_out; 0 disables detection (set 0 for avoidance
	// algorithms, which need no recovery). Set DisableRecovery to force
	// detection off even with a nonzero Timeout default.
	Timeout         Cycle
	DisableRecovery bool
	// Alloc is the crossbar allocation policy (default flit-by-flit).
	Alloc AllocPolicy
	// AdaptiveTimeout makes T_out self-tuning (the paper's "programmable
	// T_out" future work): routers back off after false detections and
	// decay back toward the configured Timeout.
	AdaptiveTimeout bool
	// Recovery selects the recovery scheme once Timeout presumes deadlock:
	// Sequential (the paper's Token + Deadlock Buffer lane, the default),
	// Concurrent (token-free two-lane recovery, the paper's future-work
	// direction — see DESIGN.md) or AbortRetry (Compressionless-style kill
	// and retransmit, the alternative the paper argues against).
	Recovery RecoveryMode
	// ReceptionChannels is how many flits per cycle a node consumes
	// (default 1; the paper names raising it as a deadlock-reduction lever).
	ReceptionChannels int
	// InjectionThrottle, when positive, stops a node injecting while it has
	// this many packets outstanding (the paper's injection-limitation
	// citation, §4.3.3).
	InjectionThrottle int
	// Burst, when both fields are set, replaces Bernoulli injection with an
	// on/off bursty process of the same long-run load.
	Burst BurstConfig
	// Seed makes runs reproducible.
	Seed uint64
	// TokenHopsPerCycle is the recovery Token's speed (default 4).
	TokenHopsPerCycle int
	// Shards fans the router-local simulation phases out across this many
	// worker shards per cycle. Results are byte-identical to serial for any
	// value; 0 or 1 keeps the serial kernel. Call Close when done to stop
	// the worker pool.
	Shards int
	// DisableActiveSet makes the kernel visit every router every cycle
	// instead of only routers that can do work (see README, "Kernel
	// parallelism"). The active-set scheduler is byte-identical to the full
	// scan; disabling it only costs throughput at low load. Exists for
	// benchmarking the full-scan baseline.
	DisableActiveSet bool
	// ReferenceScan runs the router-local phases through the retained
	// reference scan path instead of the optimized struct-of-arrays scans.
	// Byte-identical to the default path; exists as the baseline for the
	// differential conformance suite and for benchmarking the SoA speedup.
	ReferenceScan bool
}

// BurstConfig shapes bursty injection (mean burst and idle lengths, cycles).
type BurstConfig = traffic.BurstConfig

// Simulator is one live network simulation.
type Simulator struct {
	net *network.Network
}

// NewSimulator builds a simulator. Recovery (detection, Token, Deadlock
// Buffer) is enabled whenever Timeout > 0 and DisableRecovery is false.
func NewSimulator(cfg SimConfig) (*Simulator, error) {
	rc := router.Default()
	if cfg.VCs != 0 {
		rc.VCs = cfg.VCs
	}
	if cfg.BufferDepth != 0 {
		rc.BufferDepth = cfg.BufferDepth
	}
	rc.Alloc = cfg.Alloc
	rc.Recovery = cfg.Recovery
	rc.AdaptiveTimeout = cfg.AdaptiveTimeout
	if cfg.ReceptionChannels != 0 {
		rc.ReceptionChannels = cfg.ReceptionChannels
	}
	if cfg.Timeout != 0 {
		rc.Timeout = cfg.Timeout
	}
	if cfg.DisableRecovery {
		rc.Timeout = 0
		rc.DeadlockBufferDepth = 0
		rc.Recovery = RecoverySequential
	}
	n, err := network.New(network.Config{
		Topo:              cfg.Topo,
		Router:            rc,
		Algorithm:         cfg.Algorithm,
		Selection:         cfg.Selection,
		Pattern:           cfg.Pattern,
		LoadRate:          cfg.LoadRate,
		MsgLen:            cfg.MsgLen,
		Seed:              cfg.Seed,
		TokenHopsPerCycle: cfg.TokenHopsPerCycle,
		InjectionThrottle: cfg.InjectionThrottle,
		Burst:             cfg.Burst,
		Kernel: network.KernelConfig{
			Shards:           cfg.Shards,
			DisableActiveSet: cfg.DisableActiveSet,
			ReferenceScan:    cfg.ReferenceScan,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Simulator{net: n}, nil
}

// Run advances the simulation the given number of cycles.
func (s *Simulator) Run(cycles int) { s.net.Run(cycles) }

// Close releases the sharded kernel's worker pool (a no-op for serial
// simulators). The simulator must not be stepped after Close.
func (s *Simulator) Close() { s.net.Close() }

// Step advances one cycle.
func (s *Simulator) Step() { s.net.Step() }

// Drain stops injection and runs until the network empties or limit cycles
// pass; it reports whether the network fully drained.
func (s *Simulator) Drain(limit int) bool { return s.net.RunUntilDrained(limit) }

// Now returns the current cycle.
func (s *Simulator) Now() Cycle { return s.net.Now() }

// Counters returns network-wide totals.
func (s *Simulator) Counters() Counters { return s.net.Counters() }

// OnDeliver registers a callback invoked for every delivered packet.
func (s *Simulator) OnDeliver(f func(*Packet)) { s.net.OnDeliver = f }

// Network exposes the underlying network for analysis (wait-for-graph
// inspection); treat it as read-only.
func (s *Simulator) Network() *network.Network { return s.net }

// AnalyzeDeadlock runs the wait-for-graph analyzer on the live state.
func (s *Simulator) AnalyzeDeadlock() core.WFGResult {
	return core.AnalyzeWFG(s.net.Routers())
}

// FailLink severs the bidirectional link at node/port (fault injection).
// Disha routes around faults adaptively, and the Deadlock Buffer lane is
// re-routed over live links so recovery still reaches every destination.
// See network.FailLink for the restrictions.
func (s *Simulator) FailLink(node Node, port int) error {
	return s.net.FailLink(node, port)
}

// --- Dynamic reconfiguration ---------------------------------------------------

// ReconfigEvent is one scheduled mid-run topology or routing mutation; see
// network.ReconfigEvent and CHAOS.md.
type ReconfigEvent = network.ReconfigEvent

// ReconfigOutcome records how one reconfiguration event was applied (or why
// it was skipped) and what it cost; see network.ReconfigOutcome.
type ReconfigOutcome = network.ReconfigOutcome

// Reconfiguration event kinds.
const (
	ReconfigKillLink      = network.ReconfigKillLink
	ReconfigHealLink      = network.ReconfigHealLink
	ReconfigKillRouter    = network.ReconfigKillRouter
	ReconfigHealRouter    = network.ReconfigHealRouter
	ReconfigSwapAlgorithm = network.ReconfigSwapAlgorithm
)

// ScheduleReconfig arms a sorted schedule of reconfiguration events that the
// engine applies deterministically at their cycles; see
// network.ScheduleReconfig.
func (s *Simulator) ScheduleReconfig(events []ReconfigEvent) error {
	return s.net.ScheduleReconfig(events)
}

// KillLink severs a link immediately, dropping packets with flits committed
// to it (unlike FailLink, which refuses busy links); see network.KillLink.
func (s *Simulator) KillLink(node Node, port int) error {
	return s.net.KillLink(node, port)
}

// HealLink restores a previously killed or failed link.
func (s *Simulator) HealLink(node Node, port int) error {
	return s.net.HealLink(node, port)
}

// KillRouter removes a router and its links, dropping packets at or destined
// for it; see network.KillRouter.
func (s *Simulator) KillRouter(node Node) error {
	return s.net.KillRouter(node)
}

// HealRouter revives a killed router, reconnecting its links whose far
// endpoints are alive and not independently failed.
func (s *Simulator) HealRouter(node Node) error {
	return s.net.HealRouter(node)
}

// SwapRouting switches every router to the named routing algorithm mid-run
// (e.g. "duato", "disha-m1"); see network.SwapAlgorithm and routing.ByName.
func (s *Simulator) SwapRouting(name string) error {
	alg, err := routing.ByName(name)
	if err != nil {
		return err
	}
	return s.net.SwapAlgorithm(alg)
}

// ReconfigLog returns every reconfiguration outcome so far, in application
// order — the deterministic record a replayed run must reproduce exactly.
func (s *Simulator) ReconfigLog() []ReconfigOutcome {
	return s.net.ReconfigLog()
}

// --- Checkpoint / restore -----------------------------------------------------

// Snapshot writes a versioned binary serialization of the complete
// simulation state to w — every buffer, credit, in-flight flit, RNG stream,
// the Token and all counters. Restoring it into a simulator built with the
// identical SimConfig reproduces the exact per-cycle state fingerprints of
// an uninterrupted run (see ARCHITECTURE.md, "Checkpoint/restore").
func (s *Simulator) Snapshot(w io.Writer) error { return s.net.Snapshot(w) }

// Restore loads a Snapshot stream into this simulator. The simulator must
// be freshly built with the identical SimConfig and never stepped; Shards,
// DisableActiveSet and ReferenceScan alone may differ, since the sharded,
// active-set and reference-scan kernels are byte-identical to the serial
// optimized scan. On error the simulator is unusable and must be discarded.
func (s *Simulator) Restore(r io.Reader) error { return s.net.Restore(r) }

// SaveCheckpoint atomically writes the simulation state to a file: the
// checkpoint appears completely or not at all, so a crash mid-save can
// never corrupt an earlier checkpoint at the same path.
func (s *Simulator) SaveCheckpoint(path string) error {
	var buf bytes.Buffer
	if err := s.net.Snapshot(&buf); err != nil {
		return err
	}
	return snapshot.WriteFileAtomic(path, buf.Bytes())
}

// LoadCheckpoint restores simulation state saved by SaveCheckpoint into
// this freshly built simulator.
func (s *Simulator) LoadCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.net.Restore(f)
}

// Fingerprint returns a SHA-256 hex digest of the complete simulation
// state. Two simulators with equal fingerprints are in identical states;
// cmd/disha-bisect uses it to locate the first cycle two runs diverge.
func (s *Simulator) Fingerprint() string { return s.net.FingerprintHex() }

// TraceEvent is one recorded simulation event.
type TraceEvent = trace.Event

// Trace event kinds.
const (
	TraceInject       = trace.Inject
	TraceDeliver      = trace.Deliver
	TraceTimeout      = trace.Timeout
	TraceRecover      = trace.Recover
	TraceTokenCapture = trace.TokenCapture
	TraceTokenRelease = trace.TokenRelease
	TraceKill         = trace.Kill
	TraceDrop         = trace.Drop
)

// EnableTrace attaches a ring buffer recording the most recent capacity
// packet-level events (injections, deliveries, timeouts, recoveries, Token
// movements) and returns it.
func (s *Simulator) EnableTrace(capacity int) *trace.Buffer {
	b := trace.New(capacity)
	s.net.SetTrace(b)
	return b
}

// --- Telemetry ---------------------------------------------------------------------------

// TelemetryOptions configures the instrumentation layer (sampling period,
// flight-recorder depth, JSONL output).
type TelemetryOptions = telemetry.Options

// Telemetry bundles a simulation's registry, sampler, flight recorder and
// recovery-episode tracker.
type Telemetry = telemetry.Hub

// TelemetryWriter streams telemetry records as JSON Lines.
type TelemetryWriter = telemetry.JSONLWriter

// EpisodeSpan is one recovery episode rendered as a structured span:
// presumption, Token capture, Deadlock-Buffer routing and final delivery
// or abort, labeled true-cycle vs false-presumption by the WFG analyzer.
type EpisodeSpan = telemetry.EpisodeSpan

// Histogram is the registry's fixed-bucket distribution metric.
type Histogram = telemetry.Histogram

// NewTelemetryWriter wraps w in a buffered JSONL telemetry encoder.
func NewTelemetryWriter(w io.Writer) *TelemetryWriter { return telemetry.NewJSONLWriter(w) }

// EnableTelemetry attaches the observability layer: per-router/per-VC
// counters and gauges (Prometheus text exposition via telemetry.Handler or
// telemetry.Serve), ring-buffered time-series sampling usable with
// PlotTimeSeries, and the deadlock flight recorder. Telemetry is pull-based
// and does not change simulation results (same seed, same outcome).
func (s *Simulator) EnableTelemetry(opts TelemetryOptions) *Telemetry {
	return s.net.EnableTelemetry(opts)
}

// ServeMetrics starts an HTTP listener exposing /metrics (Prometheus text
// format) and /debug/pprof/ for the simulator's telemetry hub. It returns
// the bound address and a shutdown function. EnableTelemetry must have been
// called first.
func (s *Simulator) ServeMetrics(addr string) (string, func() error, error) {
	if s.net.Telemetry() == nil {
		return "", nil, fmt.Errorf("disha: ServeMetrics requires EnableTelemetry first")
	}
	return telemetry.Serve(addr, s.net.Telemetry().Registry)
}

// CountersMap flattens the Counters snapshot into named totals (JSONL
// export, dashboards).
func (s *Simulator) CountersMap() map[string]int64 { return s.net.CountersMap() }

// PlotTimeSeries renders the telemetry sampler's ring-buffered series as an
// ASCII value-vs-cycle chart.
func PlotTimeSeries(title string, tel *Telemetry) string {
	if tel == nil || tel.Sampler == nil {
		return title + "\n(no data)\n"
	}
	return plot.TimeSeries(title, tel.Sampler.MetricsSeries())
}

// Report summarizes the run as a human-readable string.
func (s *Simulator) Report() string {
	c := s.Counters()
	return formatReport(c)
}

// --- Experiments -----------------------------------------------------------------------

// Experiment aliases the harness spec type for custom experiments.
type Experiment = harness.Spec

// ExperimentResult aliases the harness result type.
type ExperimentResult = harness.Result

// AlgCurve aliases one experiment curve definition.
type AlgCurve = harness.AlgSpec

// ExperimentScale sets figure reproduction sizes.
type ExperimentScale = harness.Scale

// PaperScale is the paper's simulation model (16x16 torus, 32-flit
// messages); SmallScale is a fast 8x8 configuration.
func PaperScale() ExperimentScale { return harness.PaperScale() }

// SmallScale is a fast 8x8 experiment configuration.
func SmallScale() ExperimentScale { return harness.SmallScale() }

// Figure returns the canned reproduction spec for a paper figure:
// "3a", "3b", "4", "5", "6" or "7". It returns nil for unknown names.
func Figure(name string, sc ExperimentScale) *Experiment {
	return harness.Figures(sc)[name]
}

// Figures returns all canned figure specs keyed by short name.
func Figures(sc ExperimentScale) map[string]*Experiment { return harness.Figures(sc) }

// --- Experiment engine -------------------------------------------------------------------

// SweepOptions controls how the deterministic parallel experiment engine
// executes an Experiment: worker count, per-point replicas, retries,
// checkpoint journal and progress reporting. Run an Experiment with them via
// Experiment.RunWith; results are bit-identical for every Parallel value.
type SweepOptions = harness.RunOptions

// SweepReport summarizes an engine run: completed/failed points, journal
// restores, retries and wall time.
type SweepReport = engine.Report

// SweepStatus is the engine's live progress snapshot (done/total, ETA).
type SweepStatus = engine.Status

// EngineMetrics exports engine progress through a telemetry registry.
type EngineMetrics = engine.Metrics

// NewEngineMetrics registers the engine progress metrics (jobs done/total,
// ETA, retries) on a telemetry registry. Serve them with telemetry.Serve or
// the /metrics endpoint of disha-serve.
func NewEngineMetrics(reg *telemetry.Registry) *EngineMetrics { return engine.NewMetrics(reg) }

// SweepSeedFor derives the deterministic per-job seed the engine assigns to
// a job identity under a base seed (exposed for tooling and tests).
func SweepSeedFor(base uint64, key string) uint64 { return engine.SeedFor(base, key) }

// PlotLatency renders an experiment's latency-vs-load curves as an ASCII
// chart (log y axis).
func PlotLatency(title string, res *ExperimentResult) string {
	return plot.Latency(title, res.Series)
}

// PlotThroughput renders an experiment's throughput-vs-load curves as an
// ASCII chart.
func PlotThroughput(title string, res *ExperimentResult) string {
	return plot.Throughput(title, res.Series)
}

// --- Cost model --------------------------------------------------------------------------

// CostComparison is one row of the Section 3.4 cost table.
type CostComparison = costmodel.Comparison

// PaperCostTable reproduces Section 3.4: *-Channels (7.0 ns) vs Disha
// (7.1 ns) on a 2D mesh with three VCs.
func PaperCostTable() []CostComparison { return costmodel.PaperTable() }

// FormatCostTable renders cost comparisons as text.
func FormatCostTable(rows []CostComparison) string { return costmodel.FormatTable(rows) }

// DishaRouterCost returns the modeled Disha router for a custom
// configuration (degree network ports, vcs virtual channels).
func DishaRouterCost(degree, vcs int) costmodel.Router { return costmodel.Disha(degree, vcs) }

// StarChannelsRouterCost returns the modeled *-Channels reference router.
func StarChannelsRouterCost(degree, vcs int) costmodel.Router {
	return costmodel.StarChannels(degree, vcs)
}

// CompareRouterCost evaluates routers under Chien's model.
func CompareRouterCost(routers ...costmodel.Router) []CostComparison {
	return costmodel.Compare(routers...)
}

// --- Metrics helpers -----------------------------------------------------------------------

// LatencyCollector accumulates latency samples with summary statistics.
type LatencyCollector = metrics.Collector

// Summary is a statistics snapshot.
type Summary = metrics.Summary
