package traffic

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TotalChannels returns the number of unidirectional network channels in the
// topology (injection/reception channels excluded). On a k-ary n-cube torus
// this is Nodes * 2n; a mesh has fewer because boundary ports are absent.
func TotalChannels(topo topology.Graph) int {
	total := 0
	for n := 0; n < topo.Nodes(); n++ {
		for p := 0; p < topo.Degree(); p++ {
			if _, ok := topo.Neighbor(topology.Node(n), p); ok {
				total++
			}
		}
	}
	return total
}

// MeanStats summarizes a pattern's spatial statistics on a topology.
type MeanStats struct {
	// MeanDistance is the expected minimal hop count of generated packets
	// (self-addressed draws excluded).
	MeanDistance float64
	// GeneratingFraction is the fraction of draws that produce a packet
	// (dst != src). Transpose diagonals, for example, generate nothing.
	GeneratingFraction float64
}

// MeasureMean estimates MeanStats by drawing samplesPerNode destinations from
// every source with a deterministic RNG stream. Deterministic patterns are
// measured exactly with a single sample per node.
func MeasureMean(topo topology.Graph, p Pattern, samplesPerNode int) MeanStats {
	if samplesPerNode < 1 {
		samplesPerNode = 1
	}
	r := sim.NewRNG(0x715a_1ed0)
	var totalDist, generated, draws float64
	for n := 0; n < topo.Nodes(); n++ {
		src := topology.Node(n)
		for s := 0; s < samplesPerNode; s++ {
			dst := p.Dest(src, r)
			draws++
			if dst == src {
				continue
			}
			generated++
			totalDist += float64(topo.Distance(src, dst))
		}
	}
	st := MeanStats{}
	if generated > 0 {
		st.MeanDistance = totalDist / generated
		st.GeneratingFraction = generated / draws
	}
	return st
}

// InjectionProbability converts a load rate (fraction of full load, per the
// paper's definition: full load keeps every network channel busy) into the
// per-node per-cycle packet injection probability.
//
// At full load the aggregate delivered bandwidth equals the total channel
// bandwidth C flits/cycle; each packet of msgLen flits traveling E[dist]
// hops consumes msgLen*E[dist] channel-cycles, so the aggregate full-load
// packet rate is C / (msgLen * E[dist]). That rate is spread across the
// nodes that actually generate traffic under the pattern.
func InjectionProbability(topo topology.Graph, p Pattern, msgLen int, loadRate float64) (float64, error) {
	if msgLen < 1 {
		return 0, fmt.Errorf("traffic: message length %d < 1", msgLen)
	}
	if loadRate < 0 {
		return 0, fmt.Errorf("traffic: negative load rate %v", loadRate)
	}
	st := MeasureMean(topo, p, 64)
	if st.GeneratingFraction == 0 {
		return 0, fmt.Errorf("traffic: pattern %s generates no traffic on %s", p.Name(), topo.Name())
	}
	c := float64(TotalChannels(topo))
	aggregate := loadRate * c / (float64(msgLen) * st.MeanDistance) // packets/cycle network-wide
	perNodeAttempt := aggregate / (float64(topo.Nodes()) * st.GeneratingFraction)
	if perNodeAttempt > 1 {
		return 0, fmt.Errorf("traffic: load rate %v needs %.3f packets/node/cycle (>1); increase message length or lower load",
			loadRate, perNodeAttempt)
	}
	return perNodeAttempt, nil
}

// Source generates packets for one node as a Bernoulli process: each cycle a
// packet is created with the configured probability and a destination drawn
// from the pattern. Self-addressed draws are discarded (the slot is lost),
// matching nodes that do not communicate under deterministic patterns.
type Source struct {
	node    topology.Node
	pattern Pattern
	rng     *sim.RNG
	prob    float64
	msgLen  int
	stopped bool

	// Optional on/off burst modulation (see SetBursty).
	burst     BurstConfig
	bursting  bool
	burstProb float64

	// Offered counts packets generated (accepted draws), for offered-load
	// accounting by the harness.
	Offered int64
}

// NewSource builds a source for node. prob is the per-cycle injection
// probability (see InjectionProbability); msgLen is the packet length in
// flits.
func NewSource(node topology.Node, pattern Pattern, rng *sim.RNG, prob float64, msgLen int) *Source {
	if msgLen < 1 {
		panic("traffic: message length must be >= 1")
	}
	return &Source{node: node, pattern: pattern, rng: rng, prob: prob, msgLen: msgLen}
}

// Stop halts generation (used for the drain phase at the end of a run).
func (s *Source) Stop() { s.stopped = true }

// Stopped reports whether the source has been stopped.
func (s *Source) Stopped() bool { return s.stopped }

// Generate returns a new packet for this cycle or nil. nextID supplies
// unique packet IDs (owned by the network so that IDs are global).
func (s *Source) Generate(now sim.Cycle, nextID func() packet.ID) *packet.Packet {
	if s.stopped {
		return nil
	}
	if !s.rng.Bernoulli(s.stepBurst()) {
		return nil
	}
	dst := s.pattern.Dest(s.node, s.rng)
	if dst == s.node {
		return nil
	}
	s.Offered++
	return packet.New(nextID(), s.node, dst, s.msgLen, now)
}

// BurstConfig shapes a two-state (on/off) Markov-modulated injection
// process: during a burst the source injects with elevated probability,
// between bursts it is silent. State residence times are geometric with the
// given mean lengths. The paper's conclusions claim Disha "performs well
// under bursty traffic"; this process makes that claim testable.
type BurstConfig struct {
	// MeanBurst is the mean burst length in cycles (must be >= 1).
	MeanBurst float64
	// MeanIdle is the mean gap between bursts in cycles (must be >= 1).
	MeanIdle float64
}

// Valid reports whether the configuration describes a usable process.
func (b BurstConfig) Valid() bool { return b.MeanBurst >= 1 && b.MeanIdle >= 1 }

// DutyCycle returns the long-run fraction of time spent bursting.
func (b BurstConfig) DutyCycle() float64 {
	return b.MeanBurst / (b.MeanBurst + b.MeanIdle)
}

// SetBursty switches the source from Bernoulli to on/off Markov-modulated
// injection with the same long-run offered load: the in-burst probability
// is the base probability divided by the duty cycle (clamped to 1, which
// slightly lowers the effective load for extreme configurations).
func (s *Source) SetBursty(cfg BurstConfig) error {
	if !cfg.Valid() {
		return fmt.Errorf("traffic: invalid burst config %+v", cfg)
	}
	s.burst = cfg
	s.bursting = false
	s.burstProb = s.prob / cfg.DutyCycle()
	if s.burstProb > 1 {
		s.burstProb = 1
	}
	return nil
}

// stepBurst advances the on/off state machine one cycle and returns the
// injection probability to use this cycle.
func (s *Source) stepBurst() float64 {
	if !s.burst.Valid() {
		return s.prob
	}
	if s.bursting {
		if s.rng.Bernoulli(1 / s.burst.MeanBurst) {
			s.bursting = false
		}
	} else {
		if s.rng.Bernoulli(1 / s.burst.MeanIdle) {
			s.bursting = true
		}
	}
	if s.bursting {
		return s.burstProb
	}
	return 0
}
