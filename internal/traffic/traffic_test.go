package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

func topo16() topology.Topology { return topology.MustTorus(16, 16) }

func TestUniformNeverSelf(t *testing.T) {
	topo := topo16()
	p := Uniform(topo)
	r := sim.NewRNG(1)
	for i := 0; i < 5000; i++ {
		src := topology.Node(r.Intn(topo.Nodes()))
		if p.Dest(src, r) == src {
			t.Fatal("uniform produced a self-addressed packet")
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	p := Uniform(topo)
	r := sim.NewRNG(2)
	seen := map[topology.Node]bool{}
	src := topology.Node(5)
	for i := 0; i < 4000; i++ {
		seen[p.Dest(src, r)] = true
	}
	if len(seen) != topo.Nodes()-1 {
		t.Fatalf("uniform reached %d destinations, want %d", len(seen), topo.Nodes()-1)
	}
}

func TestBitReversal(t *testing.T) {
	topo := topo16()
	p, err := BitReversal(topo)
	if err != nil {
		t.Fatal(err)
	}
	// 256 nodes = 8 bits. Node 0b00000001 -> 0b10000000.
	if got := p.Dest(topology.Node(1), nil); got != topology.Node(128) {
		t.Errorf("reversal(1) = %d, want 128", got)
	}
	if got := p.Dest(topology.Node(0b10110010), nil); got != topology.Node(0b01001101) {
		t.Errorf("reversal(0b10110010) = %#b", int(got))
	}
	// Reversal is an involution.
	f := func(raw uint16) bool {
		n := topology.Node(int(raw) % topo.Nodes())
		return p.Dest(p.Dest(n, nil), nil) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitReversalRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := BitReversal(topology.MustTorus(3, 3)); err == nil {
		t.Fatal("bit-reversal on 9 nodes should fail")
	}
}

func TestTranspose(t *testing.T) {
	topo := topo16()
	p, err := Transpose(topo)
	if err != nil {
		t.Fatal(err)
	}
	src := topo.NodeAt(topology.Coord{3, 11})
	want := topo.NodeAt(topology.Coord{11, 3})
	if got := p.Dest(src, nil); got != want {
		t.Errorf("transpose(3,11) = %v", topo.Coord(got))
	}
	// Diagonal nodes map to themselves.
	diag := topo.NodeAt(topology.Coord{7, 7})
	if p.Dest(diag, nil) != diag {
		t.Error("transpose diagonal should be self")
	}
}

func TestTransposeRejectsNonSquare(t *testing.T) {
	if _, err := Transpose(topology.MustTorus(4, 8)); err == nil {
		t.Fatal("transpose on non-square should fail")
	}
	if _, err := Transpose(topology.MustTorus(4, 4, 4)); err == nil {
		t.Fatal("transpose on 3D should fail")
	}
}

func TestHotSpotFraction(t *testing.T) {
	topo := topo16()
	spot := topology.Node(77)
	p := HotSpot(Uniform(topo), spot, 0.05)
	r := sim.NewRNG(3)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if p.Dest(topology.Node(0), r) == spot {
			hits++
		}
	}
	rate := float64(hits) / draws
	// 5% explicit plus ~1/255 of the uniform remainder.
	want := 0.05 + 0.95/255
	if math.Abs(rate-want) > 0.005 {
		t.Errorf("hot node rate %v, want ~%v", rate, want)
	}
}

func TestComplement(t *testing.T) {
	topo := topo16()
	p := Complement(topo)
	src := topo.NodeAt(topology.Coord{3, 11})
	want := topo.NodeAt(topology.Coord{12, 4})
	if got := p.Dest(src, nil); got != want {
		t.Errorf("complement(3,11) = %v", topo.Coord(got))
	}
	f := func(raw uint16) bool {
		n := topology.Node(int(raw) % topo.Nodes())
		return p.Dest(p.Dest(n, nil), nil) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTornado(t *testing.T) {
	topo := topo16()
	p := Tornado(topo)
	src := topo.NodeAt(topology.Coord{0, 5})
	want := topo.NodeAt(topology.Coord{7, 5}) // +ceil(16/2)-1 = +7
	if got := p.Dest(src, nil); got != want {
		t.Errorf("tornado(0,5) = %v", topo.Coord(got))
	}
	src2 := topo.NodeAt(topology.Coord{12, 5})
	want2 := topo.NodeAt(topology.Coord{3, 5})
	if got := p.Dest(src2, nil); got != want2 {
		t.Errorf("tornado(12,5) = %v", topo.Coord(got))
	}
}

func TestBitShuffle(t *testing.T) {
	topo := topo16()
	p, err := BitShuffle(topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Dest(topology.Node(0b10000000), nil); got != topology.Node(0b00000001) {
		t.Errorf("shuffle(0x80) = %#b", int(got))
	}
	if got := p.Dest(topology.Node(0b01000001), nil); got != topology.Node(0b10000010) {
		t.Errorf("shuffle(0x41) = %#b", int(got))
	}
	if _, err := BitShuffle(topology.MustTorus(3, 3)); err == nil {
		t.Fatal("shuffle on 9 nodes should fail")
	}
}

func TestNeighbor(t *testing.T) {
	topo := topo16()
	p := Neighbor(topo)
	src := topo.NodeAt(topology.Coord{15, 2})
	want := topo.NodeAt(topology.Coord{0, 2})
	if got := p.Dest(src, nil); got != want {
		t.Errorf("neighbor wrap = %v", topo.Coord(got))
	}
	msh := topology.MustMesh(4, 4)
	pm := Neighbor(msh)
	edge := msh.NodeAt(topology.Coord{3, 1})
	back := msh.NodeAt(topology.Coord{2, 1})
	if got := pm.Dest(edge, nil); got != back {
		t.Errorf("neighbor mesh edge = %v", msh.Coord(got))
	}
}

func TestPatternNames(t *testing.T) {
	topo := topo16()
	br, _ := BitReversal(topo)
	tr, _ := Transpose(topo)
	sh, _ := BitShuffle(topo)
	for _, tc := range []struct {
		p    Pattern
		want string
	}{
		{Uniform(topo), "uniform"},
		{br, "bit-reversal"},
		{tr, "transpose"},
		{HotSpot(Uniform(topo), 0, 0.05), "hotspot-5%-uniform"},
		{Complement(topo), "complement"},
		{Tornado(topo), "tornado"},
		{sh, "bit-shuffle"},
		{Neighbor(topo), "neighbor"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("name %q, want %q", tc.p.Name(), tc.want)
		}
	}
}

func TestTotalChannels(t *testing.T) {
	if got := TotalChannels(topo16()); got != 256*4 {
		t.Errorf("torus channels = %d, want 1024", got)
	}
	// 4x4 mesh: 2 dims * 2 directions * (k-1)*k links = 2*2*12 = 48.
	if got := TotalChannels(topology.MustMesh(4, 4)); got != 48 {
		t.Errorf("mesh channels = %d, want 48", got)
	}
}

func TestMeanDistanceUniform(t *testing.T) {
	// Uniform on a 16-ring torus: mean per-dim distance over the 255 other
	// nodes; analytically E[dist] = 2 * (sum of ring distances)/... just
	// check against brute force.
	topo := topo16()
	var sum, cnt float64
	for a := 0; a < topo.Nodes(); a++ {
		for b := 0; b < topo.Nodes(); b++ {
			if a == b {
				continue
			}
			sum += float64(topo.Distance(topology.Node(a), topology.Node(b)))
			cnt++
		}
	}
	exact := sum / cnt
	st := MeasureMean(topo, Uniform(topo), 128)
	if math.Abs(st.MeanDistance-exact) > 0.15 {
		t.Errorf("measured mean distance %v, exact %v", st.MeanDistance, exact)
	}
	if math.Abs(st.GeneratingFraction-1) > 1e-9 {
		t.Errorf("uniform generating fraction %v", st.GeneratingFraction)
	}
}

func TestMeanDistanceTransposeExcludesDiagonal(t *testing.T) {
	topo := topo16()
	tr, _ := Transpose(topo)
	st := MeasureMean(topo, tr, 1)
	wantFrac := float64(256-16) / 256
	if math.Abs(st.GeneratingFraction-wantFrac) > 1e-9 {
		t.Errorf("transpose generating fraction %v, want %v", st.GeneratingFraction, wantFrac)
	}
	if st.MeanDistance <= 0 {
		t.Error("transpose mean distance must be positive")
	}
}

func TestInjectionProbability(t *testing.T) {
	topo := topo16()
	// Uniform, 32-flit messages, load 1.0: aggregate = 1024/(32*8) = 4
	// packets/cycle over 256 nodes = 1/64 per node.
	p, err := InjectionProbability(topo, Uniform(topo), 32, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/64) > 0.002 {
		t.Errorf("full-load probability %v, want ~%v", p, 1.0/64)
	}
	half, err := InjectionProbability(topo, Uniform(topo), 32, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half-p/2) > 1e-12 {
		t.Error("injection probability must scale linearly with load")
	}
}

func TestInjectionProbabilityErrors(t *testing.T) {
	topo := topo16()
	if _, err := InjectionProbability(topo, Uniform(topo), 0, 0.5); err == nil {
		t.Error("zero message length should fail")
	}
	if _, err := InjectionProbability(topo, Uniform(topo), 32, -0.1); err == nil {
		t.Error("negative load should fail")
	}
	// Absurd load requiring >1 packet/node/cycle must fail.
	if _, err := InjectionProbability(topo, Uniform(topo), 1, 50); err == nil {
		t.Error("overload should fail")
	}
}

func TestSourceGeneration(t *testing.T) {
	topo := topo16()
	src := NewSource(5, Uniform(topo), sim.NewRNG(9), 0.25, 32)
	var id packet.ID
	nextID := func() packet.ID { id++; return id }
	made := 0
	const cycles = 20000
	for c := 0; c < cycles; c++ {
		if p := src.Generate(sim.Cycle(c), nextID); p != nil {
			made++
			if p.Src != 5 || p.Dst == 5 || p.Length != 32 || p.CreatedAt != sim.Cycle(c) {
				t.Fatalf("bad packet %v", p)
			}
		}
	}
	rate := float64(made) / cycles
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("generation rate %v, want ~0.25", rate)
	}
	if src.Offered != int64(made) {
		t.Errorf("Offered = %d, generated %d", src.Offered, made)
	}
}

func TestSourceStop(t *testing.T) {
	topo := topo16()
	src := NewSource(0, Uniform(topo), sim.NewRNG(9), 1.0, 4)
	nextID := func() packet.ID { return 1 }
	if src.Generate(0, nextID) == nil {
		t.Fatal("prob 1.0 source did not generate")
	}
	src.Stop()
	if !src.Stopped() {
		t.Fatal("Stopped false after Stop")
	}
	for i := 0; i < 100; i++ {
		if src.Generate(sim.Cycle(i), nextID) != nil {
			t.Fatal("stopped source generated a packet")
		}
	}
}

func TestSourceSelfAddressDiscarded(t *testing.T) {
	topo := topo16()
	tr, _ := Transpose(topo)
	diag := topo.NodeAt(topology.Coord{4, 4})
	src := NewSource(diag, tr, sim.NewRNG(9), 1.0, 4)
	nextID := func() packet.ID { return 1 }
	for i := 0; i < 50; i++ {
		if src.Generate(sim.Cycle(i), nextID) != nil {
			t.Fatal("diagonal transpose node generated a packet")
		}
	}
	if src.Offered != 0 {
		t.Error("discarded draws must not count as offered")
	}
}

func TestBurstConfig(t *testing.T) {
	if (BurstConfig{}).Valid() || (BurstConfig{MeanBurst: 10}).Valid() {
		t.Fatal("incomplete burst configs must be invalid")
	}
	b := BurstConfig{MeanBurst: 20, MeanIdle: 80}
	if !b.Valid() || math.Abs(b.DutyCycle()-0.2) > 1e-12 {
		t.Fatalf("duty cycle %v, want 0.2", b.DutyCycle())
	}
}

func TestBurstySourcePreservesLoad(t *testing.T) {
	topo := topo16()
	const prob = 0.05
	const cycles = 200000
	run := func(burst bool) float64 {
		src := NewSource(3, Uniform(topo), sim.NewRNG(77), prob, 8)
		if burst {
			if err := src.SetBursty(BurstConfig{MeanBurst: 30, MeanIdle: 70}); err != nil {
				t.Fatal(err)
			}
		}
		var id packet.ID
		nextID := func() packet.ID { id++; return id }
		made := 0
		for c := 0; c < cycles; c++ {
			if src.Generate(sim.Cycle(c), nextID) != nil {
				made++
			}
		}
		return float64(made) / cycles
	}
	plain, bursty := run(false), run(true)
	if math.Abs(plain-prob) > 0.005 {
		t.Fatalf("plain rate %v", plain)
	}
	// Same long-run load within tolerance (burst variance is higher).
	if math.Abs(bursty-prob) > 0.01 {
		t.Fatalf("bursty long-run rate %v, want ~%v", bursty, prob)
	}
}

func TestBurstySourceIsActuallyBursty(t *testing.T) {
	topo := topo16()
	src := NewSource(3, Uniform(topo), sim.NewRNG(5), 0.05, 8)
	if err := src.SetBursty(BurstConfig{MeanBurst: 25, MeanIdle: 75}); err != nil {
		t.Fatal(err)
	}
	var id packet.ID
	nextID := func() packet.ID { id++; return id }
	// Count generation per 100-cycle window; bursty traffic must show both
	// silent windows and windows far above the mean.
	var silent, heavy int
	for w := 0; w < 400; w++ {
		made := 0
		for c := 0; c < 100; c++ {
			if src.Generate(sim.Cycle(w*100+c), nextID) != nil {
				made++
			}
		}
		if made == 0 {
			silent++
		}
		if made >= 10 { // 2x the long-run mean of 5 per window
			heavy++
		}
	}
	if silent < 20 || heavy < 20 {
		t.Fatalf("not bursty enough: %d silent, %d heavy windows of 400", silent, heavy)
	}
	if err := src.SetBursty(BurstConfig{}); err == nil {
		t.Fatal("invalid burst config accepted")
	}
}

// TestBurstySourceClampsExtremeConfigs documents the SetBursty clamp: when
// prob/DutyCycle exceeds 1 the in-burst probability saturates at 1, so the
// long-run offered load drops to the duty cycle instead of matching the
// Bernoulli baseline. Callers wanting load-preserving bursts must keep
// prob <= DutyCycle.
func TestBurstySourceClampsExtremeConfigs(t *testing.T) {
	topo := topo16()
	const prob = 0.3
	cfg := BurstConfig{MeanBurst: 10, MeanIdle: 90} // duty cycle 0.1 < prob
	src := NewSource(3, Uniform(topo), sim.NewRNG(11), prob, 8)
	if err := src.SetBursty(cfg); err != nil {
		t.Fatal(err)
	}
	if src.burstProb != 1 {
		t.Fatalf("in-burst probability %v, want clamp at 1", src.burstProb)
	}
	var id packet.ID
	nextID := func() packet.ID { id++; return id }
	const cycles = 200000
	made := 0
	for c := 0; c < cycles; c++ {
		if src.Generate(sim.Cycle(c), nextID) != nil {
			made++
		}
	}
	rate := float64(made) / cycles
	// Injecting with probability 1 while bursting delivers exactly the duty
	// cycle (minus the ~0.4% uniform self-address discard), not prob.
	if math.Abs(rate-cfg.DutyCycle()) > 0.01 {
		t.Fatalf("clamped long-run rate %v, want ~duty cycle %v", rate, cfg.DutyCycle())
	}
	if rate >= prob/2 {
		t.Fatalf("clamped rate %v suspiciously close to the unclamped target %v", rate, prob)
	}
}

// oneNodeTopo wraps a real topology but reports a single node — the
// degenerate case NewUniform must reject (Dest would panic in Intn(0)).
type oneNodeTopo struct{ topology.Topology }

func (oneNodeTopo) Nodes() int { return 1 }

func TestNewUniformRejectsSingleNode(t *testing.T) {
	if _, err := NewUniform(oneNodeTopo{topo16()}); err == nil {
		t.Fatal("NewUniform accepted a 1-node topology")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform did not panic on a 1-node topology")
		}
	}()
	Uniform(oneNodeTopo{topo16()})
}

func TestNewHotSpotValidatesFraction(t *testing.T) {
	topo := topo16()
	base := Uniform(topo)
	for _, frac := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := NewHotSpot(base, 0, frac); err == nil {
			t.Fatalf("NewHotSpot accepted fraction %v", frac)
		}
	}
	if _, err := NewHotSpot(nil, 0, 0.05); err == nil {
		t.Fatal("NewHotSpot accepted a nil base")
	}
	for _, frac := range []float64{0, 0.05, 1} {
		if _, err := NewHotSpot(base, 0, frac); err != nil {
			t.Fatalf("NewHotSpot rejected valid fraction %v: %v", frac, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("HotSpot did not panic on an out-of-range fraction")
		}
	}()
	HotSpot(base, 0, 2)
}
