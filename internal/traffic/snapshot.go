package traffic

// SourceState is the dynamic state of one Source — everything that evolves
// as cycles pass. The static configuration (pattern, injection probability,
// message length, burst shape) is reconstructed from the network Config on
// restore, so a checkpoint only carries these four fields per node.
type SourceState struct {
	// RNG is the source's private random stream (see sim.RNG.State).
	RNG [4]uint64
	// Stopped records whether injection was halted (drain phase).
	Stopped bool
	// Bursting records the on/off Markov process state under bursty traffic.
	Bursting bool
	// Offered is the cumulative count of packets generated.
	Offered int64
}

// State captures the source's dynamic state for a checkpoint.
func (s *Source) State() SourceState {
	return SourceState{
		RNG:      s.rng.State(),
		Stopped:  s.stopped,
		Bursting: s.bursting,
		Offered:  s.Offered,
	}
}

// SetState restores dynamic state captured by State. The source must have
// been built with the same configuration the checkpoint was taken under.
func (s *Source) SetState(st SourceState) {
	s.rng.SetState(st.RNG)
	s.stopped = st.Stopped
	s.bursting = st.Bursting
	s.Offered = st.Offered
}
