// Package traffic implements the workload generators used in the paper's
// evaluation — uniform, bit-reversal, matrix-transpose and hot-spot traffic —
// plus several standard patterns (complement, tornado, bit-shuffle, nearest
// neighbor) used by the extension benchmarks.
//
// It also provides the load normalization the paper uses: "Load-Rate is a
// fraction of full load, defined as the load at which all channels in the
// network are used simultaneously (maximum network capacity)." Full load for
// a pattern is derived from the exact expected minimal hop count of that
// pattern on the given topology.
package traffic

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Pattern maps a source node to a destination node. Deterministic patterns
// ignore the RNG. A pattern may return dst == src (e.g. transpose diagonal
// nodes); callers skip such packets, matching the paper's simulators.
type Pattern interface {
	Name() string
	Dest(src topology.Node, r *sim.RNG) topology.Node
}

// --- Uniform ---------------------------------------------------------------

type uniform struct {
	topo topology.Graph
}

// NewUniform returns a pattern that sends each packet to a destination
// chosen uniformly among all other nodes. It errors on a topology with
// fewer than two nodes, where no such destination exists (Dest would
// otherwise panic in Intn(0)).
func NewUniform(topo topology.Graph) (Pattern, error) {
	if topo.Nodes() < 2 {
		return nil, fmt.Errorf("traffic: uniform needs at least 2 nodes, have %d", topo.Nodes())
	}
	return uniform{topo}, nil
}

// Uniform is NewUniform for topologies known to have at least two nodes; it
// panics otherwise.
func Uniform(topo topology.Graph) Pattern {
	p, err := NewUniform(topo)
	if err != nil {
		panic(err)
	}
	return p
}

func (uniform) Name() string { return "uniform" }

func (u uniform) Dest(src topology.Node, r *sim.RNG) topology.Node {
	n := u.topo.Nodes()
	d := topology.Node(r.Intn(n - 1))
	if d >= src {
		d++
	}
	return d
}

// --- Bit reversal ----------------------------------------------------------

type bitReversal struct {
	topo topology.Graph
	bits int
}

// BitReversal sends from the node with binary address a_{b-1}..a_0 to the
// node with address a_0..a_{b-1}. The node count must be a power of two.
func BitReversal(topo topology.Graph) (Pattern, error) {
	bits, ok := log2(topo.Nodes())
	if !ok {
		return nil, fmt.Errorf("traffic: bit-reversal needs a power-of-two node count, have %d", topo.Nodes())
	}
	return bitReversal{topo, bits}, nil
}

func (bitReversal) Name() string { return "bit-reversal" }

func (p bitReversal) Dest(src topology.Node, _ *sim.RNG) topology.Node {
	v := uint(src)
	var out uint
	for i := 0; i < p.bits; i++ {
		out = out<<1 | v&1
		v >>= 1
	}
	return topology.Node(out)
}

// --- Matrix transpose ------------------------------------------------------

type transpose struct {
	topo topology.Topology
}

// Transpose sends from (x, y) to (y, x). The topology must be 2-dimensional
// and square.
func Transpose(topo topology.Topology) (Pattern, error) {
	if topo.Dims() != 2 || topo.Radix(0) != topo.Radix(1) {
		return nil, fmt.Errorf("traffic: transpose needs a square 2D network, have %s", topo.Name())
	}
	return transpose{topo}, nil
}

func (transpose) Name() string { return "transpose" }

func (p transpose) Dest(src topology.Node, _ *sim.RNG) topology.Node {
	co := p.topo.Coord(src)
	return p.topo.NodeAt(topology.Coord{co[1], co[0]})
}

// --- Hot spot ---------------------------------------------------------------

type hotSpot struct {
	base     Pattern
	spot     topology.Node
	fraction float64
	name     string
}

// NewHotSpot returns a pattern directing fraction of all traffic (e.g. 0.05
// for the paper's 5%) to a single fixed hot node; the remainder follows
// base. The paper selects the hot node at random; pass any node here and
// let the harness randomize. It errors when base is nil or fraction lies
// outside [0, 1] (Bernoulli would silently clamp, misreporting the offered
// hot-spot load).
func NewHotSpot(base Pattern, spot topology.Node, fraction float64) (Pattern, error) {
	if base == nil {
		return nil, fmt.Errorf("traffic: hot-spot needs a base pattern")
	}
	if fraction < 0 || fraction > 1 || fraction != fraction {
		return nil, fmt.Errorf("traffic: hot-spot fraction %g outside [0, 1]", fraction)
	}
	return hotSpot{
		base:     base,
		spot:     spot,
		fraction: fraction,
		name:     fmt.Sprintf("hotspot-%g%%-%s", fraction*100, base.Name()),
	}, nil
}

// HotSpot is NewHotSpot for arguments known to be valid; it panics
// otherwise.
func HotSpot(base Pattern, spot topology.Node, fraction float64) Pattern {
	p, err := NewHotSpot(base, spot, fraction)
	if err != nil {
		panic(err)
	}
	return p
}

func (p hotSpot) Name() string { return p.name }

func (p hotSpot) Dest(src topology.Node, r *sim.RNG) topology.Node {
	if r.Bernoulli(p.fraction) {
		return p.spot
	}
	return p.base.Dest(src, r)
}

// --- Complement ------------------------------------------------------------

type complement struct {
	topo topology.Topology
}

// Complement sends from coordinates (a_0, ..) to (k_0-1-a_0, ..): the node
// diagonally opposite in every dimension.
func Complement(topo topology.Topology) Pattern { return complement{topo} }

func (complement) Name() string { return "complement" }

func (p complement) Dest(src topology.Node, _ *sim.RNG) topology.Node {
	co := p.topo.Coord(src)
	for d := range co {
		co[d] = p.topo.Radix(d) - 1 - co[d]
	}
	return p.topo.NodeAt(co)
}

// --- Tornado ----------------------------------------------------------------

type tornado struct {
	topo topology.Topology
}

// Tornado sends from (x, ...) to ((x + ceil(k/2) - 1) mod k, ...) in
// dimension 0 only — the classic adversarial torus pattern that stresses
// one-direction links.
func Tornado(topo topology.Topology) Pattern { return tornado{topo} }

func (tornado) Name() string { return "tornado" }

func (p tornado) Dest(src topology.Node, _ *sim.RNG) topology.Node {
	co := p.topo.Coord(src)
	k := p.topo.Radix(0)
	co[0] = (co[0] + (k+1)/2 - 1) % k
	return p.topo.NodeAt(co)
}

// --- Bit shuffle -------------------------------------------------------------

type shuffle struct {
	topo topology.Graph
	bits int
}

// BitShuffle sends node a_{b-1}..a_0 to a_{b-2}..a_0,a_{b-1} (rotate left).
// The node count must be a power of two.
func BitShuffle(topo topology.Graph) (Pattern, error) {
	bits, ok := log2(topo.Nodes())
	if !ok {
		return nil, fmt.Errorf("traffic: bit-shuffle needs a power-of-two node count, have %d", topo.Nodes())
	}
	return shuffle{topo, bits}, nil
}

func (shuffle) Name() string { return "bit-shuffle" }

func (p shuffle) Dest(src topology.Node, _ *sim.RNG) topology.Node {
	v := uint(src)
	top := v >> (p.bits - 1) & 1
	return topology.Node((v<<1 | top) & (1<<p.bits - 1))
}

// --- Nearest neighbor --------------------------------------------------------

type neighbor struct {
	topo topology.Topology
}

// Neighbor sends each packet one hop in the positive direction of dimension
// 0 (wrapping on a torus, reflecting at a mesh edge).
func Neighbor(topo topology.Topology) Pattern { return neighbor{topo} }

func (neighbor) Name() string { return "neighbor" }

func (p neighbor) Dest(src topology.Node, _ *sim.RNG) topology.Node {
	if nb, ok := p.topo.Neighbor(src, topology.PortFor(0, 1)); ok {
		return nb
	}
	nb, _ := p.topo.Neighbor(src, topology.PortFor(0, -1))
	return nb
}

func log2(n int) (int, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b, true
}
