package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 20; n++ {
		for i := 0; i < 500; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Errorf("bucket %d count %d deviates >5%% from %v", i, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(11)
	const p, draws = 0.3, 60000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("Bernoulli(%v) empirical rate %v", p, rate)
	}
}

// TestPermIsPermutation is a property test: Perm(n) is always a permutation
// of [0, n).
func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		r.Seed(seed)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(17)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	counts := map[int]int{}
	for _, x := range xs {
		counts[x]++
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		counts[x]--
	}
	for k, v := range counts {
		if v != 0 {
			t.Fatalf("element %d count changed by %d", k, v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Split()
	// The child stream must not simply mirror the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("child mirrored parent on %d draws", same)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %d", c.Now())
	}
	if c.Tick() != 1 || c.Now() != 1 {
		t.Fatal("Tick did not advance to 1")
	}
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if c.Now() != 11 {
		t.Fatalf("clock at %d, want 11", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
