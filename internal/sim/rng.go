// Package sim provides the low-level simulation kernel shared by the rest of
// the repository: a deterministic pseudo-random number generator suitable for
// reproducible network simulations, and small numeric helpers.
//
// The simulator is cycle driven rather than event driven: internal/network
// advances the whole system one clock cycle at a time. This package therefore
// stays deliberately small; the interesting machinery lives in
// internal/router and internal/network.
package sim

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256**, seeded via splitmix64. It is not safe for concurrent use;
// every simulation owns exactly one RNG so that a (seed, configuration) pair
// fully determines the run.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Distinct seeds yield
// independent streams; the zero seed is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if freshly created with NewRNG(seed).
func (r *RNG) Seed(seed uint64) {
	// splitmix64 expansion of the 64-bit seed into 256 bits of state.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives a child RNG whose stream is independent of subsequent draws
// from the parent. It is used to give each traffic source its own stream so
// that adding instrumentation draws does not perturb workloads.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

// State returns the generator's full 256-bit internal state. Together with
// SetState it lets a checkpoint capture and later resume a random stream at
// the exact draw it was interrupted at (the snapshot subsystem depends on
// this for byte-identical restored runs).
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with one previously
// obtained from State, resuming its stream exactly. Any value is accepted:
// xoshiro256** never panics, and legitimate snapshots never contain the
// degenerate all-zero state (Seed guards against producing it).
func (r *RNG) SetState(s [4]uint64) { r.s = s }
