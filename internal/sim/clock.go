package sim

// Cycle is a simulation timestamp measured in router clock cycles.
type Cycle int64

// Clock is the global cycle counter for a simulation. The zero Clock starts
// at cycle 0.
type Clock struct {
	now Cycle
}

// Now returns the current cycle.
func (c *Clock) Now() Cycle { return c.now }

// Tick advances the clock by one cycle and returns the new time.
func (c *Clock) Tick() Cycle {
	c.now++
	return c.now
}

// Reset rewinds the clock to cycle 0.
func (c *Clock) Reset() { c.now = 0 }

// Set jumps the clock to the given cycle; snapshot restore uses it to resume
// a simulation at the checkpointed time.
func (c *Clock) Set(now Cycle) { c.now = now }
