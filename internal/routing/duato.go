package routing

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// duato implements Duato's fully adaptive deadlock-avoidance algorithm.
// Virtual channels are split into an adaptive class and an escape class; the
// escape channels form a connected routing subfunction with an acyclic
// extended channel dependency graph (dimension-order routing with dateline
// VC classes on a torus). A packet routes with full (minimal) adaptivity on
// the adaptive channels and takes an escape channel only when blocked at the
// current router; at subsequent routers it may return to the adaptive
// channels — the flexibility the paper highlights over Dally & Aoki.
//
// The preference is expressed through candidate classes: adaptive candidates
// are class 0 and the escape candidate class 1, and the router only
// considers class 1 when no class-0 candidate is usable in the cycle.
type duato struct {
	// strict forbids returning from the escape channels to the adaptive
	// ones: once a packet takes an escape hop it stays dimension-ordered to
	// its destination. Duato's theory does not require this, but early
	// simulator implementations (including, apparently, the one the DISHA
	// paper compares against — its Duato saturates near DOR) behaved this
	// way; the variant brackets how much baseline strength depends on the
	// escape policy.
	strict bool
}

// Duato returns Duato's adaptive routing algorithm with escape channels and
// the liberal escape policy the DISHA paper describes ("at subsequent
// routers, it is free to go back onto the adaptive channels").
func Duato() Algorithm { return duato{} }

// DuatoStrict returns the conservative variant in which escape use is
// permanent, as an ablation baseline.
func DuatoStrict() Algorithm { return duato{strict: true} }

func (a duato) Name() string {
	if a.strict {
		return "duato-strict"
	}
	return "duato"
}

func (duato) MinVCs(g topology.Graph) int {
	topo, ok := topology.Coordinated(g)
	if !ok {
		return -1 // the escape subfunction is dimension-order routing
	}
	if topo.Wrap() {
		return 3 // 2 escape (dateline classes) + 1 adaptive
	}
	return 2 // 1 escape + 1 adaptive
}

func (duato) escVCs(topo topology.Topology) int {
	if topo.Wrap() {
		return 2
	}
	return 1
}

func (a duato) Route(v View, p *packet.Packet, buf []Candidate) []Candidate {
	topo := v.Topo().(topology.Topology)
	esc := a.escVCs(topo)
	vcs := v.VCs()

	// Adaptive class (class 0): every minimal port, VCs [esc, vcs). Under
	// the strict variant a packet that has escaped stays on the escape
	// subnetwork (OnDeterministic doubles as the "escaped" flag).
	if !a.strict || !p.OnDeterministic {
		for port := 0; port < topo.Degree(); port++ {
			if !topo.IsMinimal(v.Node(), p.Dst, port) || !v.LinkExists(port) {
				continue
			}
			for vc := esc; vc < vcs; vc++ {
				buf = append(buf, Candidate{Port: port, VC: vc})
			}
		}
	}

	// Escape path (class 1): dimension-order on the escape VCs. VC 0 is
	// dateline class 0 and VC 1 class 1 on a torus; VC 0 on a mesh.
	if port, ok := dorPort(topo, v.Node(), p.Dst); ok {
		vc := 0
		if esc == 2 && datelineClass(p, topology.PortDim(port)) == 1 {
			vc = 1
		}
		buf = append(buf, Candidate{Port: port, VC: vc, Class: 1, ToDeterministic: a.strict})
	}
	return buf
}
