// Package routing implements the routing algorithms compared in the paper:
//
//   - DOR: deterministic dimension-order routing (torus dateline VC classes);
//   - Turn: the Turn model's negative-first partially adaptive algorithm;
//   - DallyAoki: Dally & Aoki's dynamic fully adaptive algorithm based on
//     packet dimension reversals;
//   - Duato: Duato's fully adaptive algorithm with escape channels;
//   - Disha: the paper's true fully adaptive routing (all VCs usable by all
//     packets, optional misrouting bounded by M) whose deadlock freedom comes
//     from recovery rather than avoidance.
//
// A routing algorithm maps (router state, packet) to a set of candidate
// output virtual channels grouped into preference classes; a selection
// function (random or minimum-congestion, per the paper's Section 4.3)
// chooses among the free candidates of the best available class.
package routing

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// View is the router state a routing algorithm may inspect. It is
// implemented by internal/router; all queries refer to the router where the
// packet's header currently waits.
type View interface {
	// Node is the router's node.
	Node() topology.Node
	// Topo is the network graph. Coordinate-based algorithms assert it to
	// topology.Topology; Config normalization rejects algorithm/topology
	// pairs whose MinVCs reports the graph unsupported, so the assertion
	// cannot fail at routing time.
	Topo() topology.Graph
	// VCs returns the number of virtual channels per physical channel.
	VCs() int
	// LinkExists reports whether the output port is wired (mesh boundary
	// ports are not).
	LinkExists(port int) bool
	// OutputVCFree reports whether the output virtual channel (port, vc) is
	// not currently reserved by any packet.
	OutputVCFree(port, vc int) bool
	// OccupantDimReversals returns the dimension-reversal count of the
	// packet holding output VC (port, vc); ok is false if the VC is free.
	// Used by Dally & Aoki's wait rule.
	OccupantDimReversals(port, vc int) (dr int, ok bool)
	// FreeVCs returns how many output VCs on port are free; the
	// minimum-congestion selection function uses it.
	FreeVCs(port int) int
}

// Candidate is one output virtual channel proposed by a routing function.
type Candidate struct {
	Port int // output network port
	VC   int // virtual channel index on that port

	// Class is the preference class: the router considers class 0
	// candidates first and falls back to higher classes only when no
	// class-0 candidate is usable this cycle (e.g. Duato's escape channels,
	// Disha's misroutes).
	Class int

	// Misroute marks a non-profitable hop; taking it increments the
	// packet's misroute count (Disha's livelock bound).
	Misroute bool

	// ToDeterministic marks Dally & Aoki's irreversible transition onto the
	// deterministic channel class.
	ToDeterministic bool
}

// Algorithm computes candidate output VCs for a packet's header. Route is
// never called when the packet is already at its destination (the router
// ejects directly) or when the packet travels the Deadlock Buffer lane
// (internal/router routes that lane minimally itself).
type Algorithm interface {
	Name() string
	// Route appends candidates to buf and returns it. The returned slice
	// may be empty only if the packet cannot move this cycle under the
	// algorithm's rules (it will be retried next cycle).
	Route(v View, p *packet.Packet, buf []Candidate) []Candidate
	// MinVCs returns the minimum virtual channel count the algorithm
	// requires for deadlock-free (or, for Disha, recoverable) operation on
	// the topology, or -1 when the algorithm does not support the graph at
	// all (coordinate-based algorithms on a coordinate-free digraph).
	MinVCs(g topology.Graph) int
}

// Selection chooses one of the usable candidates (all in the same class,
// all verified free by the router).
type Selection interface {
	Name() string
	Pick(v View, cands []Candidate, r *sim.RNG) Candidate
}

// --- Selection functions ----------------------------------------------------

type randomSel struct{}

// Random selects a free candidate uniformly at random.
func Random() Selection { return randomSel{} }

func (randomSel) Name() string { return "random" }

func (randomSel) Pick(_ View, cands []Candidate, r *sim.RNG) Candidate {
	return cands[r.Intn(len(cands))]
}

type minCongestion struct{}

// MinCongestion chooses "the channel in the direction in which most virtual
// channels are free" (paper §4.3), breaking ties at random.
func MinCongestion() Selection { return minCongestion{} }

func (minCongestion) Name() string { return "min-congestion" }

func (minCongestion) Pick(v View, cands []Candidate, r *sim.RNG) Candidate {
	best := -1
	var pool []Candidate
	for _, c := range cands {
		free := v.FreeVCs(c.Port)
		if free > best {
			best = free
			pool = pool[:0]
		}
		if free == best {
			pool = append(pool, c)
		}
	}
	return pool[r.Intn(len(pool))]
}

// --- Shared helpers ----------------------------------------------------------

// DORPort returns the deterministic dimension-order output port: the lowest
// dimension with a nonzero offset, taking the minimal direction (positive on
// an exact half-ring tie). Besides the DOR baseline it defines the minimal
// routing of the Deadlock Buffer lane (paper Assumption 3), which makes that
// lane a connected routing subfunction.
func DORPort(topo topology.Topology, from, to topology.Node) (int, bool) {
	return dorPort(topo, from, to)
}

func dorPort(topo topology.Topology, from, to topology.Node) (int, bool) {
	if from == to {
		return 0, false
	}
	fc, tc := topo.Coord(from), topo.Coord(to)
	for d := 0; d < topo.Dims(); d++ {
		if fc[d] == tc[d] {
			continue
		}
		sign := minimalSign(topo, d, fc[d], tc[d])
		return topology.PortFor(d, sign), true
	}
	return 0, false
}

// minimalSign returns the minimal travel direction in dimension d from
// coordinate fx to tx, preferring +1 on an exact tie (deterministic).
func minimalSign(topo topology.Topology, d, fx, tx int) int {
	if !topo.Wrap() {
		if tx > fx {
			return 1
		}
		return -1
	}
	k := topo.Radix(d)
	fwd := tx - fx
	if fwd < 0 {
		fwd += k
	}
	if fwd <= k-fwd {
		return 1
	}
	return -1
}

// datelineClass returns the packet's VC class for dimension d on a torus:
// class 0 until the packet has crossed d's dateline, class 1 after.
func datelineClass(p *packet.Packet, d int) int {
	if p.DatelineCrossed&(1<<uint(d)) != 0 {
		return 1
	}
	return 0
}

// classVCs appends candidates for every VC of the given dateline class on
// port. With V virtual channels and two classes, class 0 owns VCs
// [0, V/2) and class 1 owns [V/2, V); with a single class (mesh) all VCs are
// usable. The caller guarantees V >= 2 when classes == 2.
func classVCs(buf []Candidate, port, class, vcs, classes int, tmpl Candidate) []Candidate {
	if classes <= 1 {
		for vc := 0; vc < vcs; vc++ {
			c := tmpl
			c.Port, c.VC = port, vc
			buf = append(buf, c)
		}
		return buf
	}
	per := vcs / classes
	lo := class * per
	hi := lo + per
	if class == classes-1 {
		hi = vcs // last class absorbs the remainder
	}
	for vc := lo; vc < hi; vc++ {
		c := tmpl
		c.Port, c.VC = port, vc
		buf = append(buf, c)
	}
	return buf
}
