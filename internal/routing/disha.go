package routing

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// disha is the paper's routing function: true fully adaptive wormhole
// routing. Every virtual channel of every profitable output port is a
// candidate — there is no classification of virtual channels nor any
// ordering among them; VCs serve flow control only. With MaxMisroutes > 0,
// every other output port is additionally usable as long as the packet's
// misroute count stays below the bound (the livelock guard of Section 2).
//
// Deadlock freedom is NOT provided by this routing function; it comes from
// the recovery machinery in internal/router and internal/network (time-out
// detection, the Token, and the Deadlock Buffer lane). Misroute candidates
// are class 1 so a packet deroutes only when no minimal candidate is usable,
// matching the paper's M=3 configuration ("any virtual channel along any
// path ... as long as the misroute count is less than four").
type disha struct {
	maxMisroutes int
}

// Disha returns the paper's true fully adaptive routing function with the
// given misroute bound M (0 for minimal-only routing, 3 for the paper's
// misrouting configuration).
func Disha(maxMisroutes int) Algorithm {
	if maxMisroutes < 0 {
		maxMisroutes = 0
	}
	return disha{maxMisroutes: maxMisroutes}
}

func (d disha) Name() string {
	if d.maxMisroutes == 0 {
		return "disha-m0"
	}
	return "disha-m" + itoa(d.maxMisroutes)
}

// MaxMisroutes exposes the livelock bound M.
func (d disha) MaxMisroutes() int { return d.maxMisroutes }

// MinVCs is 1 on every graph: Disha's routing is purely adjacency-based
// (minimal ports plus bounded misroutes), so it runs on arbitrary
// topologies; deadlock freedom comes from recovery, not VC classes.
func (disha) MinVCs(topology.Graph) int { return 1 }

func (d disha) Route(v View, p *packet.Packet, buf []Candidate) []Candidate {
	topo := v.Topo()
	isMinimal := 0
	for port := 0; port < topo.Degree(); port++ {
		if !topo.IsMinimal(v.Node(), p.Dst, port) || !v.LinkExists(port) {
			continue
		}
		isMinimal |= 1 << uint(port)
		for vc := 0; vc < v.VCs(); vc++ {
			buf = append(buf, Candidate{Port: port, VC: vc})
		}
	}
	if p.Misroutes < d.maxMisroutes {
		for port := 0; port < topo.Degree(); port++ {
			if isMinimal&(1<<uint(port)) != 0 || !v.LinkExists(port) {
				continue
			}
			for vc := 0; vc < v.VCs(); vc++ {
				buf = append(buf, Candidate{Port: port, VC: vc, Class: 1, Misroute: true})
			}
		}
	}
	return buf
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
