package routing

import (
	"fmt"
	"strconv"
	"strings"
)

// ByName maps an algorithm's Name() string back to a constructed Algorithm.
// It is the inverse the dynamic-reconfiguration subsystem needs: a
// routing-function swap is recorded in the reconfiguration log (and in
// chaos schedule files) by name, and snapshot restore replays the swap by
// resolving the name here. Every Algorithm this package constructs
// round-trips: ByName(a.Name()).Name() == a.Name().
func ByName(name string) (Algorithm, error) {
	switch name {
	case "dor":
		return DOR(), nil
	case "turn-negative-first":
		return NegativeFirst(), nil
	case "dally-aoki":
		return DallyAoki(), nil
	case "duato":
		return Duato(), nil
	case "duato-strict":
		return DuatoStrict(), nil
	}
	if rest, ok := strings.CutPrefix(name, "disha-m"); ok {
		m, err := strconv.Atoi(rest)
		if err == nil && m >= 0 {
			return Disha(m), nil
		}
	}
	return nil, fmt.Errorf("routing: unknown algorithm %q", name)
}
