package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// fakeView is a minimal View for algorithm unit tests. busy maps
// (port, vc) -> occupant dimension-reversal count; absent entries are free.
type fakeView struct {
	node topology.Node
	topo topology.Topology
	vcs  int
	busy map[[2]int]int
}

func newFakeView(topo topology.Topology, node topology.Node, vcs int) *fakeView {
	return &fakeView{node: node, topo: topo, vcs: vcs, busy: map[[2]int]int{}}
}

func (f *fakeView) Node() topology.Node { return f.node }
func (f *fakeView) Topo() topology.Graph {
	return f.topo
}
func (f *fakeView) VCs() int { return f.vcs }
func (f *fakeView) LinkExists(port int) bool {
	_, ok := f.topo.Neighbor(f.node, port)
	return ok
}
func (f *fakeView) OutputVCFree(port, vc int) bool {
	_, busy := f.busy[[2]int{port, vc}]
	return !busy
}
func (f *fakeView) OccupantDimReversals(port, vc int) (int, bool) {
	dr, busy := f.busy[[2]int{port, vc}]
	return dr, busy
}
func (f *fakeView) FreeVCs(port int) int {
	n := 0
	for vc := 0; vc < f.vcs; vc++ {
		if f.OutputVCFree(port, vc) {
			n++
		}
	}
	return n
}

func pkt(src, dst topology.Node) *packet.Packet {
	return packet.New(1, src, dst, 8, 0)
}

func portsOf(cands []Candidate) map[int]bool {
	m := map[int]bool{}
	for _, c := range cands {
		m[c.Port] = true
	}
	return m
}

func vcsOf(cands []Candidate, port int) map[int]bool {
	m := map[int]bool{}
	for _, c := range cands {
		if c.Port == port {
			m[c.VC] = true
		}
	}
	return m
}

// --- DOR ---------------------------------------------------------------------

func TestDORSingleDeterministicPort(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{3, 5}))
	cands := DOR().Route(v, p, nil)
	ports := portsOf(cands)
	if len(ports) != 1 || !ports[topology.PortFor(0, 1)] {
		t.Fatalf("DOR ports = %v, want only +X", ports)
	}
	// Dateline class 0 on a 4-VC torus: VCs {0, 1}.
	vcs := vcsOf(cands, topology.PortFor(0, 1))
	if len(vcs) != 2 || !vcs[0] || !vcs[1] {
		t.Fatalf("DOR class-0 VCs = %v, want {0,1}", vcs)
	}
}

func TestDORDimensionOrder(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	// X offset resolved: must route in Y.
	v := newFakeView(topo, topo.NodeAt(topology.Coord{3, 0}), 4)
	p := pkt(topo.NodeAt(topology.Coord{0, 0}), topo.NodeAt(topology.Coord{3, 6}))
	cands := DOR().Route(v, p, nil)
	ports := portsOf(cands)
	if len(ports) != 1 || !ports[topology.PortFor(1, -1)] {
		t.Fatalf("DOR should route -Y (wrap 6 is closer backwards), got %v", ports)
	}
}

func TestDORDatelineClassSwitchesVCs(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{3, 0}))
	p.DatelineCrossed |= 1 << 0 // already crossed dim-0 dateline
	cands := DOR().Route(v, p, nil)
	vcs := vcsOf(cands, topology.PortFor(0, 1))
	if len(vcs) != 2 || !vcs[2] || !vcs[3] {
		t.Fatalf("DOR class-1 VCs = %v, want {2,3}", vcs)
	}
}

func TestDORMeshUsesAllVCs(t *testing.T) {
	topo := topology.MustMesh(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{5, 0}))
	cands := DOR().Route(v, p, nil)
	vcs := vcsOf(cands, topology.PortFor(0, 1))
	if len(vcs) != 4 {
		t.Fatalf("mesh DOR VCs = %v, want all 4", vcs)
	}
}

func TestDOREmptyAtDestination(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, 5, 4)
	if cands := DOR().Route(v, pkt(5, 5), nil); len(cands) != 0 {
		t.Fatalf("DOR at destination returned %v", cands)
	}
}

// Property: DOR's single port is always minimal.
func TestDORPortMinimalProperty(t *testing.T) {
	topo := topology.MustTorus(6, 6)
	f := func(fromRaw, toRaw uint16) bool {
		from := topology.Node(int(fromRaw) % topo.Nodes())
		to := topology.Node(int(toRaw) % topo.Nodes())
		if from == to {
			return true
		}
		v := newFakeView(topo, from, 2)
		cands := DOR().Route(v, pkt(from, to), nil)
		if len(cands) == 0 {
			return false
		}
		for _, c := range cands {
			nb, ok := topo.Neighbor(from, c.Port)
			if !ok || topo.Distance(nb, to) != topo.Distance(from, to)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// --- Negative-first ------------------------------------------------------------

func TestNegFirstPhases(t *testing.T) {
	topo := topology.MustMesh(8, 8)
	// From (4,4) to (2,6): -X needed, +Y needed. Negative first: only -X.
	v := newFakeView(topo, topo.NodeAt(topology.Coord{4, 4}), 2)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 6}))
	cands := NegativeFirst().Route(v, p, nil)
	ports := portsOf(cands)
	if len(ports) != 1 || !ports[topology.PortFor(0, -1)] {
		t.Fatalf("negative-first phase 1 ports = %v, want only -X", ports)
	}
}

func TestNegFirstPositivePhaseAdaptive(t *testing.T) {
	topo := topology.MustMesh(8, 8)
	// From (2,2) to (5,6): only positive hops -> adaptive between +X and +Y.
	v := newFakeView(topo, topo.NodeAt(topology.Coord{2, 2}), 2)
	p := pkt(v.node, topo.NodeAt(topology.Coord{5, 6}))
	cands := NegativeFirst().Route(v, p, nil)
	ports := portsOf(cands)
	if len(ports) != 2 || !ports[topology.PortFor(0, 1)] || !ports[topology.PortFor(1, 1)] {
		t.Fatalf("positive phase ports = %v, want {+X,+Y}", ports)
	}
}

func TestNegFirstBothNegativeAdaptive(t *testing.T) {
	topo := topology.MustMesh(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{5, 5}), 2)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 1}))
	cands := NegativeFirst().Route(v, p, nil)
	ports := portsOf(cands)
	if len(ports) != 2 || !ports[topology.PortFor(0, -1)] || !ports[topology.PortFor(1, -1)] {
		t.Fatalf("negative phase ports = %v, want {-X,-Y}", ports)
	}
}

// Property: negative-first candidates always reduce the MESH distance (on a
// torus the algorithm never uses wraparound links — see the type comment),
// and no candidate is a positive hop while a negative hop remains.
func TestNegFirstMinimalProperty(t *testing.T) {
	topo := topology.MustTorus(6, 6)
	mesh := topology.MustMesh(6, 6)
	f := func(fromRaw, toRaw uint16) bool {
		from := topology.Node(int(fromRaw) % topo.Nodes())
		to := topology.Node(int(toRaw) % topo.Nodes())
		if from == to {
			return true
		}
		v := newFakeView(topo, from, 2)
		cands := NegativeFirst().Route(v, pkt(from, to), nil)
		if len(cands) == 0 {
			return false
		}
		hasNeg, hasPos := false, false
		for _, c := range cands {
			nb, ok := topo.Neighbor(from, c.Port)
			if !ok {
				return false
			}
			// Never a wraparound hop, and always closer in mesh distance.
			if topo.CrossesDateline(from, c.Port) {
				return false
			}
			if mesh.Distance(nb, to) != mesh.Distance(from, to)-1 {
				return false
			}
			if topology.PortSign(c.Port) < 0 {
				hasNeg = true
			} else {
				hasPos = true
			}
		}
		return !(hasNeg && hasPos)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// --- Dally & Aoki ---------------------------------------------------------------

func TestDallyAokiAdaptiveClass(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	cands := DallyAoki().Route(v, p, nil)
	// Two minimal ports (+X, +Y) x adaptive VCs {0,1} on a 4-VC torus.
	if len(cands) != 4 {
		t.Fatalf("adaptive candidates = %d, want 4: %v", len(cands), cands)
	}
	for _, c := range cands {
		if c.VC >= 2 {
			t.Fatalf("adaptive candidate on deterministic VC: %v", c)
		}
		if c.ToDeterministic {
			t.Fatalf("unexpected deterministic transition: %v", c)
		}
	}
}

func TestDallyAokiForcedDeterministic(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	p.DimReversals = 1
	// Occupy all adaptive VCs on both minimal ports with DR <= 1.
	for _, port := range []int{topology.PortFor(0, 1), topology.PortFor(1, 1)} {
		v.busy[[2]int{port, 0}] = 0
		v.busy[[2]int{port, 1}] = 1
	}
	cands := DallyAoki().Route(v, p, nil)
	if len(cands) != 1 || !cands[0].ToDeterministic {
		t.Fatalf("expected forced deterministic transition, got %v", cands)
	}
	if cands[0].VC != 2 { // dateline class 0 -> first deterministic VC
		t.Fatalf("deterministic VC = %d, want 2", cands[0].VC)
	}
	if cands[0].Port != topology.PortFor(0, 1) {
		t.Fatalf("deterministic port should be DOR (+X), got %d", cands[0].Port)
	}
}

func TestDallyAokiWaitsOnHigherDR(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	p.DimReversals = 1
	for _, port := range []int{topology.PortFor(0, 1), topology.PortFor(1, 1)} {
		v.busy[[2]int{port, 0}] = 0
		v.busy[[2]int{port, 1}] = 0
	}
	v.busy[[2]int{topology.PortFor(1, 1), 1}] = 5 // one occupant with higher DR
	cands := DallyAoki().Route(v, p, nil)
	for _, c := range cands {
		if c.ToDeterministic {
			t.Fatalf("should wait (higher-DR occupant exists), got %v", cands)
		}
	}
	if len(cands) != 4 {
		t.Fatalf("waiting packet should keep adaptive candidates, got %v", cands)
	}
}

func TestDallyAokiStaysDeterministic(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	p.OnDeterministic = true
	cands := DallyAoki().Route(v, p, nil)
	if len(cands) != 1 || cands[0].VC < 2 {
		t.Fatalf("deterministic packet candidates = %v", cands)
	}
	p.DatelineCrossed = 1 // crossed dim 0
	cands = DallyAoki().Route(v, p, nil)
	if len(cands) != 1 || cands[0].VC != 3 {
		t.Fatalf("dateline class 1 deterministic VC = %v, want 3", cands)
	}
}

// --- Duato ----------------------------------------------------------------------

func TestDuatoClasses(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	cands := Duato().Route(v, p, nil)
	var adaptive, escape []Candidate
	for _, c := range cands {
		if c.Class == 0 {
			adaptive = append(adaptive, c)
		} else {
			escape = append(escape, c)
		}
	}
	// Adaptive: 2 minimal ports x VCs {2,3}. Escape: DOR port VC 0.
	if len(adaptive) != 4 {
		t.Fatalf("adaptive candidates = %v", adaptive)
	}
	for _, c := range adaptive {
		if c.VC < 2 {
			t.Fatalf("adaptive candidate on escape VC: %v", c)
		}
	}
	if len(escape) != 1 || escape[0].VC != 0 || escape[0].Port != topology.PortFor(0, 1) {
		t.Fatalf("escape candidate = %v", escape)
	}
}

func TestDuatoEscapeDatelineClass(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 0}))
	p.DatelineCrossed = 1
	cands := Duato().Route(v, p, nil)
	found := false
	for _, c := range cands {
		if c.Class == 1 {
			found = true
			if c.VC != 1 {
				t.Fatalf("escape after dateline should use VC 1, got %v", c)
			}
		}
	}
	if !found {
		t.Fatal("no escape candidate")
	}
}

func TestDuatoMeshSingleEscape(t *testing.T) {
	topo := topology.MustMesh(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 3)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	cands := Duato().Route(v, p, nil)
	nEscape := 0
	for _, c := range cands {
		if c.Class == 1 {
			nEscape++
			if c.VC != 0 {
				t.Fatalf("mesh escape VC = %d, want 0", c.VC)
			}
		} else if c.VC == 0 {
			t.Fatalf("adaptive candidate using escape VC: %v", c)
		}
	}
	if nEscape != 1 {
		t.Fatalf("escape candidates = %d, want 1", nEscape)
	}
}

// --- Disha ------------------------------------------------------------------------

func TestDishaM0AllVCsAllMinimalPorts(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	cands := Disha(0).Route(v, p, nil)
	// 2 minimal ports x all 4 VCs; no misroutes.
	if len(cands) != 8 {
		t.Fatalf("Disha M=0 candidates = %d, want 8", len(cands))
	}
	for _, c := range cands {
		if c.Misroute || c.Class != 0 {
			t.Fatalf("Disha M=0 produced misroute candidate %v", c)
		}
	}
}

func TestDishaMisrouteCandidates(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	cands := Disha(3).Route(v, p, nil)
	// 2 minimal ports x 4 VCs class 0 + 2 non-minimal ports x 4 VCs class 1.
	var minimal, misroute int
	for _, c := range cands {
		if c.Misroute {
			misroute++
			if c.Class != 1 {
				t.Fatalf("misroute candidate must be class 1: %v", c)
			}
		} else {
			minimal++
		}
	}
	if minimal != 8 || misroute != 8 {
		t.Fatalf("minimal=%d misroute=%d, want 8/8", minimal, misroute)
	}
}

func TestDishaMisrouteBudgetExhausted(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	p.Misroutes = 3
	cands := Disha(3).Route(v, p, nil)
	for _, c := range cands {
		if c.Misroute {
			t.Fatalf("budget exhausted but misroute candidate %v offered", c)
		}
	}
	if len(cands) != 8 {
		t.Fatalf("candidates = %d, want 8 minimal", len(cands))
	}
}

func TestDishaNames(t *testing.T) {
	if Disha(0).Name() != "disha-m0" || Disha(3).Name() != "disha-m3" {
		t.Fatalf("names: %q, %q", Disha(0).Name(), Disha(3).Name())
	}
	if Disha(-2).(disha).MaxMisroutes() != 0 {
		t.Fatal("negative misroute bound should clamp to 0")
	}
	if Disha(12).Name() != "disha-m12" {
		t.Fatalf("name %q", Disha(12).Name())
	}
}

// Property: Disha M=0 candidates always decrease distance; with budget,
// misroute candidates never decrease distance.
func TestDishaCandidateLegalityProperty(t *testing.T) {
	topo := topology.MustTorus(6, 6)
	f := func(fromRaw, toRaw uint16, m uint8) bool {
		from := topology.Node(int(fromRaw) % topo.Nodes())
		to := topology.Node(int(toRaw) % topo.Nodes())
		if from == to {
			return true
		}
		v := newFakeView(topo, from, 2)
		p := pkt(from, to)
		alg := Disha(int(m % 4))
		for _, c := range alg.Route(v, p, nil) {
			nb, ok := topo.Neighbor(from, c.Port)
			if !ok {
				return false
			}
			closer := topo.Distance(nb, to) == topo.Distance(from, to)-1
			if c.Misroute == closer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// --- MinVCs ----------------------------------------------------------------------

func TestMinVCs(t *testing.T) {
	tor := topology.MustTorus(4, 4)
	msh := topology.MustMesh(4, 4)
	cases := []struct {
		alg         Algorithm
		torus, mesh int
	}{
		{DOR(), 2, 1},
		{NegativeFirst(), 1, 1},
		{DallyAoki(), 3, 2},
		{Duato(), 3, 2},
		{Disha(0), 1, 1},
	}
	for _, c := range cases {
		if got := c.alg.MinVCs(tor); got != c.torus {
			t.Errorf("%s MinVCs(torus) = %d, want %d", c.alg.Name(), got, c.torus)
		}
		if got := c.alg.MinVCs(msh); got != c.mesh {
			t.Errorf("%s MinVCs(mesh) = %d, want %d", c.alg.Name(), got, c.mesh)
		}
	}
}

// --- Selection ----------------------------------------------------------------------

func TestRandomSelection(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	v := newFakeView(topo, 0, 2)
	cands := []Candidate{{Port: 0, VC: 0}, {Port: 2, VC: 1}, {Port: 0, VC: 1}}
	r := sim.NewRNG(1)
	seen := map[Candidate]int{}
	for i := 0; i < 3000; i++ {
		seen[Random().Pick(v, cands, r)]++
	}
	if len(seen) != 3 {
		t.Fatalf("random selection hit %d of 3 candidates", len(seen))
	}
	for c, n := range seen {
		if n < 800 {
			t.Errorf("candidate %v picked only %d times", c, n)
		}
	}
}

func TestMinCongestionSelection(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	v := newFakeView(topo, 0, 4)
	// Port 0 has 1 free VC, port 2 has 3 free VCs.
	v.busy[[2]int{0, 0}] = 0
	v.busy[[2]int{0, 1}] = 0
	v.busy[[2]int{0, 2}] = 0
	v.busy[[2]int{2, 0}] = 0
	cands := []Candidate{{Port: 0, VC: 3}, {Port: 2, VC: 1}, {Port: 2, VC: 2}}
	r := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		got := MinCongestion().Pick(v, cands, r)
		if got.Port != 2 {
			t.Fatalf("min-congestion picked port %d, want 2", got.Port)
		}
	}
}

func TestMinCongestionTieBreaksRandomly(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	v := newFakeView(topo, 0, 2)
	cands := []Candidate{{Port: 0, VC: 0}, {Port: 2, VC: 0}}
	r := sim.NewRNG(1)
	seen := map[int]int{}
	for i := 0; i < 2000; i++ {
		seen[MinCongestion().Pick(v, cands, r).Port]++
	}
	if seen[0] < 500 || seen[2] < 500 {
		t.Fatalf("tie break skewed: %v", seen)
	}
}

func TestSelectionNames(t *testing.T) {
	if Random().Name() != "random" || MinCongestion().Name() != "min-congestion" {
		t.Fatal("selection names wrong")
	}
}

// --- Buffer reuse -------------------------------------------------------------------

func TestRouteAppendsToBuffer(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	buf := make([]Candidate, 0, 64)
	for _, alg := range []Algorithm{DOR(), NegativeFirst(), DallyAoki(), Duato(), Disha(3)} {
		out := alg.Route(v, p, buf[:0])
		if cap(out) == 64 && len(out) > 0 && &out[:1][0] != &buf[:1][0] {
			t.Errorf("%s reallocated despite capacity", alg.Name())
		}
	}
}

func TestDuatoStrictEscapeIsPermanent(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	v := newFakeView(topo, topo.NodeAt(topology.Coord{0, 0}), 4)
	p := pkt(v.node, topo.NodeAt(topology.Coord{2, 2}))
	cands := DuatoStrict().Route(v, p, nil)
	for _, c := range cands {
		if c.Class == 1 && !c.ToDeterministic {
			t.Fatalf("strict escape candidate must set ToDeterministic: %v", c)
		}
		if c.Class == 0 && c.ToDeterministic {
			t.Fatalf("adaptive candidate must not be permanent: %v", c)
		}
	}
	p.OnDeterministic = true
	cands = DuatoStrict().Route(v, p, nil)
	if len(cands) != 1 || cands[0].Class != 1 {
		t.Fatalf("escaped packet must see only the escape candidate, got %v", cands)
	}
	if DuatoStrict().Name() != "duato-strict" {
		t.Fatal("name wrong")
	}
	// The liberal variant keeps adaptive candidates even after an escape.
	liberal := Duato().Route(v, p, nil)
	if len(liberal) != 5 {
		t.Fatalf("liberal duato should ignore OnDeterministic, got %v", liberal)
	}
}
