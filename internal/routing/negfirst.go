package routing

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// negFirst implements the Turn model's negative-first algorithm, which the
// paper reports "supposedly gives the best results among those derived using
// this model". A packet first completes every hop whose direction is
// negative, routing adaptively among those dimensions; only then may it take
// positive hops, again adaptively. Turns from a positive direction into a
// negative one are prohibited, which removes the abstract cycles the Turn
// model identifies.
//
// The Turn model's proof is for meshes. On a torus the wraparound links
// admit "staircase" cycles built entirely from negative channels spanning
// several dimensions, which per-dimension dateline classes do not break
// (this implementation's original dateline composition was shown to
// deadlock by the conservation property test). As documented in DESIGN.md,
// negative-first on a torus therefore routes over the mesh subgraph only —
// wraparound links are never used — preserving the mesh proof verbatim at
// the cost of longer paths, consistent with the poor Turn-model showing in
// the paper's Figure 4.
type negFirst struct{}

// NegativeFirst returns the Turn model (negative-first) routing algorithm.
func NegativeFirst() Algorithm { return negFirst{} }

func (negFirst) Name() string { return "turn-negative-first" }

func (negFirst) MinVCs(g topology.Graph) int {
	if _, ok := topology.Coordinated(g); !ok {
		return -1 // the Turn model's directions need cube coordinates
	}
	return 1
}

func (negFirst) Route(v View, p *packet.Packet, buf []Candidate) []Candidate {
	topo := v.Topo().(topology.Topology)
	node := v.Node()
	fc, tc := topo.Coord(node), topo.Coord(p.Dst)

	// Mesh directions only: the sign of the raw coordinate offset. On a
	// torus this never selects a wraparound hop.
	var negPorts, posPorts []int
	for d := 0; d < topo.Dims(); d++ {
		if fc[d] == tc[d] {
			continue
		}
		sign := 1
		if tc[d] < fc[d] {
			sign = -1
		}
		port := topology.PortFor(d, sign)
		if !v.LinkExists(port) {
			continue
		}
		if sign < 0 {
			negPorts = append(negPorts, port)
		} else {
			posPorts = append(posPorts, port)
		}
	}
	ports := negPorts
	if len(ports) == 0 {
		ports = posPorts
	}
	for _, port := range ports {
		for vc := 0; vc < v.VCs(); vc++ {
			buf = append(buf, Candidate{Port: port, VC: vc})
		}
	}
	return buf
}
