package routing

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// dallyAoki implements Dally & Aoki's Dynamic Routing Algorithm. Virtual
// channels are split into an adaptive class and a deterministic class
// (dimension-order with dateline VCs on a torus). Each packet carries a
// dimension-reversal (DR) count, incremented whenever it routes from a
// higher dimension to a lower one. A packet routes adaptively until it is
// blocked with every suitable adaptive channel held by packets whose DR is
// less than or equal to its own; it is then forced onto the deterministic
// class and must stay there to its destination. Waiting is permitted only on
// packets with strictly higher DR, which keeps the packet wait-for graph
// acyclic.
//
// Routing in the adaptive class is minimal here (the comparison methodology
// of the paper and of Boppana & Chalasani), so DRs arise from adaptive
// dimension ordering rather than from explicit misrouting.
type dallyAoki struct{}

// DallyAoki returns Dally & Aoki's dynamic fully adaptive algorithm.
func DallyAoki() Algorithm { return dallyAoki{} }

func (dallyAoki) Name() string { return "dally-aoki" }

func (dallyAoki) MinVCs(g topology.Graph) int {
	topo, ok := topology.Coordinated(g)
	if !ok {
		return -1 // the deterministic class is dimension-order routing
	}
	if topo.Wrap() {
		return 3 // 1 adaptive + 2 deterministic (dateline classes)
	}
	return 2 // 1 adaptive + 1 deterministic
}

// detVCs returns the number of VCs reserved for the deterministic class.
func (dallyAoki) detVCs(topo topology.Topology) int {
	if topo.Wrap() {
		return 2
	}
	return 1
}

func (a dallyAoki) Route(v View, p *packet.Packet, buf []Candidate) []Candidate {
	topo := v.Topo().(topology.Topology)
	det := a.detVCs(topo)
	vcs := v.VCs()
	base := len(buf)

	deterministic := func(to bool) []Candidate {
		buf = buf[:base] // discard any adaptive candidates gathered above
		port, ok := dorPort(topo, v.Node(), p.Dst)
		if !ok {
			return buf
		}
		vc := vcs - det // dateline class 0
		if det == 2 && datelineClass(p, topology.PortDim(port)) == 1 {
			vc = vcs - 1
		}
		return append(buf, Candidate{Port: port, VC: vc, ToDeterministic: to})
	}

	if p.OnDeterministic {
		return deterministic(false)
	}

	// Adaptive class: every minimal port, every adaptive VC.
	for port := 0; port < topo.Degree(); port++ {
		if !topo.IsMinimal(v.Node(), p.Dst, port) || !v.LinkExists(port) {
			continue
		}
		for vc := 0; vc < vcs-det; vc++ {
			buf = append(buf, Candidate{Port: port, VC: vc})
		}
	}
	adaptive := buf[base:]
	if len(adaptive) == 0 {
		return deterministic(true)
	}

	// If any adaptive candidate is free the packet stays adaptive. If all
	// are busy, it may wait only when some occupant has a strictly higher
	// DR; otherwise it must transition to the deterministic class.
	mustSwitch := true
	for _, c := range adaptive {
		if v.OutputVCFree(c.Port, c.VC) {
			mustSwitch = false
			break
		}
		if dr, ok := v.OccupantDimReversals(c.Port, c.VC); ok && dr > p.DimReversals {
			mustSwitch = false
			break
		}
	}
	if mustSwitch {
		return deterministic(true)
	}
	return buf
}
