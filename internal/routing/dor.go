package routing

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// dor is deterministic dimension-order routing. On a torus it uses the
// standard dateline virtual-channel discipline: each dimension's ring is
// split into two VC classes and a packet moves from class 0 to class 1 when
// it crosses the dateline, which removes the ring cycle from the channel
// dependency graph. With V virtual channels each class owns V/2 of them
// (extra channels improve flow control only, exactly as the paper argues VCs
// should be used).
type dor struct{}

// DOR returns the non-adaptive dimension-order routing algorithm used as the
// paper's deterministic baseline.
func DOR() Algorithm { return dor{} }

func (dor) Name() string { return "dor" }

func (dor) MinVCs(g topology.Graph) int {
	topo, ok := topology.Coordinated(g)
	if !ok {
		return -1 // dimension-order routing needs cube coordinates
	}
	if topo.Wrap() {
		return 2
	}
	return 1
}

func (dor) Route(v View, p *packet.Packet, buf []Candidate) []Candidate {
	topo := v.Topo().(topology.Topology)
	port, ok := dorPort(topo, v.Node(), p.Dst)
	if !ok {
		return buf
	}
	classes := 1
	if topo.Wrap() {
		classes = 2
	}
	class := datelineClass(p, topology.PortDim(port))
	return classVCs(buf, port, class, v.VCs(), classes, Candidate{})
}
