package network

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// runCaseObserved is runCase with the full observability stack attached:
// telemetry hub, episode tracker (on by default) and the phase profiler at
// an awkward prime period so profiled and unprofiled cycles interleave.
func runCaseObserved(t *testing.T, gc goldenCase, shards int) (string, *telemetry.Hub) {
	t.Helper()
	cfg := gc.build()
	cfg.Kernel.Shards = shards
	n := mustNet(t, cfg)
	defer n.Close()
	hub := n.EnableTelemetry(telemetry.Options{SampleEvery: 25, ProfileEvery: 7})
	for i := 0; i < gc.cycles; i++ {
		n.Step()
	}
	return n.FingerprintHex(), hub
}

// TestGoldenDigestsWithObservability proves the observability stack is
// digest-invariant: with the phase profiler and episode tracer enabled the
// committed golden digests must still hold, serial and sharded. The
// profiler reads the wall clock and the tracer bookkeeps spans, but neither
// may touch simulation state.
func TestGoldenDigestsWithObservability(t *testing.T) {
	want := readGolden(t)
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			for _, shards := range []int{0, 4} {
				got, _ := runCaseObserved(t, gc, shards)
				if got != want[gc.name] {
					t.Errorf("shards=%d: digest %s differs from golden %s with profiler+tracer on", shards, got, want[gc.name])
				}
			}
		})
	}
}

// TestProfilerPopulatesHistograms checks the phase profiler actually
// observes every phase, serial and sharded: each phase family member must
// have a nonzero observation count after a profiled run.
func TestProfilerPopulatesHistograms(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.4, 7)
		cfg.Kernel.Shards = shards
		n := mustNet(t, cfg)
		hub := n.EnableTelemetry(telemetry.Options{ProfileEvery: 1})
		n.Run(50)
		n.Close()

		counts := map[string]float64{}
		for _, s := range hub.Registry.Gather() {
			if s.Name != "disha_step_phase_seconds_count" {
				continue
			}
			counts[s.Labels.Map()["phase"]] = s.Value
		}
		for _, phase := range []string{
			"inject", "route_compute", "switch_allocate", "db_resolve",
			"commit", "timers", "flush", "recovery", "active_sweep", "step_total",
		} {
			if counts[phase] < 1 {
				t.Errorf("shards=%d: phase %q observation count = %g, want >= 1", shards, phase, counts[phase])
			}
		}
		if counts["step_total"] != 50 {
			t.Errorf("shards=%d: step_total count = %g, want 50 (ProfileEvery=1)", shards, counts["step_total"])
		}
	}
}

// TestEpisodeSnapshotAgreement runs the deadlock-prone golden DISHA case
// and cross-checks the two true-deadlock verdict paths: every
// flight-recorder snapshot's TrueDeadlock must agree with the TrueCycle
// label of the episode span opened by the same presumption (matched on
// cycle and trigger packet). Both derive from one WFG analysis per cycle,
// so disagreement means the cache wiring broke.
func TestEpisodeSnapshotAgreement(t *testing.T) {
	var disha goldenCase
	for _, gc := range goldenCases() {
		if gc.name == "disha" {
			disha = gc
		}
	}
	cfg := disha.build()
	n := mustNet(t, cfg)
	defer n.Close()
	// Deep episode ring: the deadlock-prone case opens thousands of
	// episodes and the matching spans must survive to the end of the run.
	hub := n.EnableTelemetry(telemetry.Options{SnapshotCooldown: 50, EpisodeDepth: 1 << 16})
	n.Run(disha.cycles)
	hub.Episodes.FlushOpen(int64(n.Now()))

	if hub.Episodes.Total() == 0 {
		t.Fatal("deadlock-prone case opened no recovery episodes")
	}
	snaps := hub.Recorder.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("deadlock-prone case recorded no snapshots")
	}

	spansByStart := map[int64][]*telemetry.EpisodeSpan{}
	for _, s := range hub.Episodes.Spans() {
		spansByStart[s.Start] = append(spansByStart[s.Start], s)
	}
	matched := 0
	for _, snap := range snaps {
		// Every span opened in the snapshot's cycle was labeled by the same
		// WFG analysis the snapshot reused, so their verdicts must be equal.
		// (The trigger packet itself may have re-crossed T_out on an episode
		// opened earlier, so we match on cycle, not on the trigger packet.)
		for _, s := range spansByStart[snap.Cycle] {
			matched++
			if s.TrueCycle != snap.TrueDeadlock {
				t.Errorf("cycle %d pkt %d: span TrueCycle=%v, snapshot TrueDeadlock=%v — verdicts must agree",
					snap.Cycle, s.Pkt, s.TrueCycle, snap.TrueDeadlock)
			}
		}
	}
	if matched == 0 {
		t.Fatal("no snapshot cycle matched any episode span")
	}
}

// TestEpisodeSpansWellFormed checks the span stream a real run produces:
// phase cycles must be ordered (start <= capture <= recover <= end when
// present) and every closed span carries a terminal outcome.
func TestEpisodeSpansWellFormed(t *testing.T) {
	var disha goldenCase
	for _, gc := range goldenCases() {
		if gc.name == "disha" {
			disha = gc
		}
	}
	cfg := disha.build()
	n := mustNet(t, cfg)
	defer n.Close()
	hub := n.EnableTelemetry(telemetry.Options{})
	n.Run(disha.cycles)
	hub.Episodes.FlushOpen(int64(n.Now()))

	for _, s := range hub.Episodes.Spans() {
		if s.Outcome != "delivered" && s.Outcome != "killed" && s.Outcome != "open" {
			t.Errorf("span pkt %d: bad outcome %q", s.Pkt, s.Outcome)
		}
		if s.End < s.Start {
			t.Errorf("span pkt %d: end %d before start %d", s.Pkt, s.End, s.Start)
		}
		if s.Capture >= 0 && s.Capture < s.Start {
			t.Errorf("span pkt %d: capture %d before start %d", s.Pkt, s.Capture, s.Start)
		}
		if s.Recover >= 0 && s.Capture >= 0 && s.Recover < s.Capture {
			t.Errorf("span pkt %d: recover %d before capture %d", s.Pkt, s.Recover, s.Capture)
		}
		if s.Recover >= 0 && s.End < s.Recover {
			t.Errorf("span pkt %d: end %d before recover %d", s.Pkt, s.End, s.Recover)
		}
	}
}
