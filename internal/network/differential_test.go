package network

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The differential conformance layer: the optimized struct-of-arrays scan
// path and the retained reference scan path run side-by-side, cycle-locked,
// and every cycle's full-state fingerprint must match. Where the golden
// suite pins both paths against one committed digest at the end of a run,
// this harness localizes a divergence to the first cycle it appears and
// then to the first router and field that differ — the difference between
// "something drifted" and an actionable bug report.

// diffTraffic names one traffic shape applied on top of a base config.
type diffTraffic struct {
	name  string
	apply func(cfg *Config)
}

func diffTraffics(topo topology.Graph) []diffTraffic {
	return []diffTraffic{
		{"uniform", func(cfg *Config) {}},
		{"hotspot", func(cfg *Config) {
			p, err := traffic.NewHotSpot(traffic.Uniform(topo), topology.Node(topo.Nodes()/3), 0.25)
			if err != nil {
				panic(err)
			}
			cfg.Pattern = p
		}},
		{"bursty", func(cfg *Config) {
			cfg.Burst = traffic.BurstConfig{MeanBurst: 20, MeanIdle: 30}
		}},
	}
}

// diffCase is one algorithm pinned on a deadlock-capable configuration, so
// the lockstep run exercises timers, Token recovery and Deadlock-Buffer
// transit — the scan paths' hairiest shared state — not just benign routing.
type diffCase struct {
	name  string
	build func() Config
}

func diffCases() []diffCase {
	tight := func(alg routing.Algorithm, topo topology.Graph, load float64, vcs int) Config {
		cfg := testConfig(topo, alg, load, 7)
		cfg.Router.VCs = vcs
		cfg.Router.BufferDepth = 2
		cfg.Router.Timeout = 8
		return cfg
	}
	return []diffCase{
		{"disha", func() Config {
			cfg := tight(routing.Disha(0), topology.MustTorus(6, 6), 0.6, 2)
			cfg.Router.BufferDepth = 1
			cfg.Router.Timeout = 4
			return cfg
		}},
		{"dor", func() Config { return tight(routing.DOR(), topology.MustTorus(6, 6), 0.5, 2) }},
		{"negfirst", func() Config { return tight(routing.NegativeFirst(), topology.MustMesh(6, 6), 0.5, 2) }},
		{"dallyaoki", func() Config { return tight(routing.DallyAoki(), topology.MustTorus(6, 6), 0.5, 3) }},
		{"duato", func() Config { return tight(routing.Duato(), topology.MustTorus(6, 6), 0.5, 3) }},
		// Non-cube digraph topologies: Disha is the only algorithm family
		// that routes on them, and the BFS-table Deadlock Buffer lane plus
		// Token recovery is exactly the new state the scans must agree on.
		{"fullmesh", func() Config {
			cfg := tight(routing.Disha(1), topology.MustFullMesh(16), 0.4, 2)
			cfg.Router.BufferDepth = 1
			cfg.Router.Timeout = 4
			return cfg
		}},
		{"dragonfly", func() Config { return tight(routing.Disha(2), topology.MustDragonfly(4, 2), 0.5, 2) }},
		{"fattree", func() Config { return tight(routing.Disha(1), topology.MustFatTree(4), 0.5, 2) }},
	}
}

// pktID formats a packet for a divergence report.
func pktID(p *packet.Packet) int64 {
	if p == nil {
		return -1
	}
	return int64(p.ID)
}

// diffRouterField walks one router pair field-by-field through the public
// introspection surface and reports the first field whose values differ.
// Returns "" when every inspected field matches (the divergence then lives
// in state the getters do not cover, e.g. arbitration offsets or stats —
// the AppendState byte diff still localizes it to this router).
func diffRouterField(soa, ref RouterView) string {
	for p := 0; p < soa.InputPorts(); p++ {
		for v := 0; v < soa.InputVCCount(p); v++ {
			if pktID(soa.InputOwner(p, v)) != pktID(ref.InputOwner(p, v)) {
				return sprintf("input (%d,%d) owner: %d vs %d", p, v, pktID(soa.InputOwner(p, v)), pktID(ref.InputOwner(p, v)))
			}
			sr, sv := soa.InputRoute(p, v)
			rr, rv := ref.InputRoute(p, v)
			if sr != rr || sv != rv {
				return sprintf("input (%d,%d) route: (%d,%d) vs (%d,%d)", p, v, sr, sv, rr, rv)
			}
			if soa.InputOccupancy(p, v) != ref.InputOccupancy(p, v) {
				return sprintf("input (%d,%d) occupancy: %d vs %d", p, v, soa.InputOccupancy(p, v), ref.InputOccupancy(p, v))
			}
			sw, sp, ss := soa.InputTimer(p, v)
			rw, rp, rs := ref.InputTimer(p, v)
			if sw != rw || sp != rp || ss != rs {
				return sprintf("input (%d,%d) timer: (%d,%v,%v) vs (%d,%v,%v)", p, v, sw, sp, ss, rw, rp, rs)
			}
		}
	}
	deg := soa.InputPorts() - 1
	for q := 0; q < deg; q++ {
		for v := 0; v < soa.InputVCCount(q); v++ {
			if pktID(soa.OutputOwner(q, v)) != pktID(ref.OutputOwner(q, v)) {
				return sprintf("output (%d,%d) owner: %d vs %d", q, v, pktID(soa.OutputOwner(q, v)), pktID(ref.OutputOwner(q, v)))
			}
			if soa.Credits(q, v) != ref.Credits(q, v) {
				return sprintf("output (%d,%d) credits: %d vs %d", q, v, soa.Credits(q, v), ref.Credits(q, v))
			}
		}
	}
	for lane := 0; lane < soa.DBLanes(); lane++ {
		if pktID(soa.DBLaneOwner(lane)) != pktID(ref.DBLaneOwner(lane)) {
			return sprintf("DB lane %d owner: %d vs %d", lane, pktID(soa.DBLaneOwner(lane)), pktID(ref.DBLaneOwner(lane)))
		}
		if soa.DBLaneLen(lane) != ref.DBLaneLen(lane) {
			return sprintf("DB lane %d occupancy: %d vs %d", lane, soa.DBLaneLen(lane), ref.DBLaneLen(lane))
		}
	}
	for q := 0; q < deg; q++ {
		sip, siv, sdb, ssp, ssv, ssd := soa.Connection(q)
		rip, riv, rdb, rsp, rsv, rsd := ref.Connection(q)
		if sip != rip || siv != riv || sdb != rdb || ssp != rsp || ssv != rsv || ssd != rsd {
			return sprintf("crossbar output %d connection: (%d,%d,db=%v,saved=%v@%d,%d) vs (%d,%d,db=%v,saved=%v@%d,%d)",
				q, sip, siv, sdb, ssd, ssp, ssv, rip, riv, rdb, rsd, rsp, rsv)
		}
	}
	return ""
}

// RouterView is the introspection surface diffRouterField needs; both
// concrete routers satisfy it.
type RouterView interface {
	InputPorts() int
	InputVCCount(port int) int
	InputOwner(port, vc int) *packet.Packet
	InputRoute(port, vc int) (route, outVC int)
	InputOccupancy(port, vc int) int
	InputTimer(port, vc int) (waiting sim.Cycle, presumed, sent bool)
	OutputOwner(port, vc int) *packet.Packet
	Credits(port, vc int) int
	DBLanes() int
	DBLaneOwner(lane int) *packet.Packet
	DBLaneLen(lane int) int
	Connection(q int) (inPort, inVC int, db bool, savedPort, savedVC int, saved bool)
	AppendState(b []byte) []byte
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// locateDivergence finds the first router whose serialized microstate
// differs between the two networks and names the first divergent field.
// found is false when every router matches byte-for-byte (the divergence
// then lives in network-level state: counters, source queues, or Token).
func locateDivergence(soa, ref *Network) (routerID int, field string, found bool) {
	for i := range soa.routers {
		sb := soa.routers[i].AppendState(nil)
		rb := ref.routers[i].AppendState(nil)
		if bytes.Equal(sb, rb) {
			continue
		}
		field = diffRouterField(soa.routers[i], ref.routers[i])
		if field == "" {
			field = "internal state outside the introspection surface (arbitration offsets, adaptive timeout, or stats)"
		}
		return i, field, true
	}
	return 0, "", false
}

// reportDivergence localizes a fingerprint mismatch at the given cycle to
// the first (router, field) coordinate and fails the test with it.
func reportDivergence(t *testing.T, cycle int, soa, ref *Network) {
	t.Helper()
	if r, field, ok := locateDivergence(soa, ref); ok {
		t.Fatalf("scan paths diverged: cycle %d, router %d, %s", cycle, r, field)
	}
	t.Fatalf("scan paths diverged: cycle %d, no router differs — divergence is in network-level state (counters, source queues, or Token)", cycle)
}

// TestDifferentialLockstep steps an optimized-scan network and a
// reference-scan network built from identical configs side-by-side for
// every algorithm × traffic-shape combination, diffing full-state
// fingerprints every cycle.
func TestDifferentialLockstep(t *testing.T) {
	const cycles = 300
	for _, dc := range diffCases() {
		dc := dc
		for _, tr := range diffTraffics(dc.build().Topo) {
			tr := tr
			t.Run(dc.name+"/"+tr.name, func(t *testing.T) {
				t.Parallel()
				soaCfg := dc.build()
				tr.apply(&soaCfg)
				refCfg := dc.build()
				tr.apply(&refCfg)
				refCfg.Kernel.ReferenceScan = true

				soa := mustNet(t, soaCfg)
				defer soa.Close()
				ref := mustNet(t, refCfg)
				defer ref.Close()

				for c := 1; c <= cycles; c++ {
					soa.Step()
					ref.Step()
					if soa.Fingerprint() != ref.Fingerprint() {
						reportDivergence(t, c, soa, ref)
					}
				}
				if err := soa.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if err := ref.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDifferentialReportsField proves the divergence reporter itself works
// in both directions: identical networks produce no report, and a pair one
// cycle apart is pinned to a concrete (router, field) coordinate rather
// than just "digests differ".
func TestDifferentialReportsField(t *testing.T) {
	cfg := diffCases()[0].build()
	a := mustNet(t, cfg)
	defer a.Close()
	b := mustNet(t, cfg)
	defer b.Close()
	a.Run(50)
	b.Run(50)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical runs must agree")
	}
	if r, field, ok := locateDivergence(a, b); ok {
		t.Fatalf("identical runs, but diff reports router %d: %s", r, field)
	}
	// Step one side a single cycle: the reporter must localize the skew to a
	// named router field, proving a real divergence would be actionable.
	b.Step()
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("one extra cycle did not change the fingerprint; case is degenerate")
	}
	r, field, ok := locateDivergence(a, b)
	if !ok {
		t.Skip("extra cycle changed only network-level state; router-field report not exercised")
	}
	t.Logf("one-cycle skew localized to router %d: %s", r, field)
	if field == "" {
		t.Fatal("divergent router reported with empty field description")
	}
}
