package network

import (
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// FuzzConfigNormalize drives Config validation (and the constructors behind
// it) with arbitrary parameters: New must either reject the configuration
// with an error or return a network that survives a short run with sound
// invariants — never panic. The algorithm/recovery/allocation selectors are
// decoded modulo their domains so the fuzzer reaches every combination,
// including invalid shard counts and degenerate VC/buffer settings.
func FuzzConfigNormalize(f *testing.F) {
	f.Add(int8(4), int8(4), uint8(0), int8(4), int8(2), int8(1), int8(1), int16(8), uint8(0), uint8(0), int8(0), int16(8), uint16(100))
	f.Add(int8(8), int8(8), uint8(1), int8(1), int8(1), int8(0), int8(1), int16(4), uint8(1), uint8(0), int8(4), int16(32), uint16(300))
	f.Add(int8(3), int8(5), uint8(2), int8(2), int8(1), int8(1), int8(2), int16(1), uint8(2), uint8(1), int8(-1), int16(1), uint16(50))
	f.Add(int8(2), int8(0), uint8(3), int8(0), int8(0), int8(0), int8(0), int16(0), uint8(0), uint8(1), int8(100), int16(0), uint16(10))
	f.Add(int8(4), int8(4), uint8(4), int8(-2), int8(-1), int8(-1), int8(-1), int16(-8), uint8(2), uint8(0), int8(3), int16(-1), uint16(120))
	f.Fuzz(func(t *testing.T, kx, ky int8, algSel uint8, vcs, depth, dbDepth, injVCs int8,
		timeout int16, recovery, alloc uint8, shards int8, msgLen int16, cycles uint16) {
		// Fold the numeric knobs into small ranges that still include
		// invalid values (negatives, zeros): rejection paths stay reachable
		// while valid configurations remain cheap enough to actually step.
		fold := func(v int8, span int) int { return int(v)%span - 1 }
		topo, err := topology.NewTorus(fold(kx, 10), fold(ky, 10))
		if err != nil {
			return
		}
		vcs = int8(fold(vcs, 10))
		depth = int8(fold(depth, 7))
		dbDepth = int8(fold(dbDepth, 5))
		injVCs = int8(fold(injVCs, 5))
		msgLen = int16(fold(int8(msgLen%64), 34))
		algs := []routing.Algorithm{
			routing.Disha(0), routing.Disha(3), routing.DOR(),
			routing.NegativeFirst(), routing.DallyAoki(), routing.Duato(),
		}
		cfg := Config{
			Topo:      topo,
			Algorithm: algs[int(algSel)%len(algs)],
			Pattern:   traffic.Uniform(topo),
			LoadRate:  0.4,
			MsgLen:    int(msgLen),
			Seed:      1,
			Router: router.Config{
				VCs:                 int(vcs),
				BufferDepth:         int(depth),
				DeadlockBufferDepth: int(dbDepth),
				InjectionVCs:        int(injVCs),
				Timeout:             sim.Cycle(timeout),
				Recovery:            router.RecoveryMode(int(recovery) % 4),
				Alloc:               router.AllocPolicy(int(alloc) % 3),
			},
			Kernel: KernelConfig{Shards: int(shards)},
		}
		n, err := New(cfg)
		if err != nil {
			return
		}
		defer n.Close()
		steps := int(cycles) % 200
		for i := 0; i < steps; i++ {
			n.Step()
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("after %d cycles: %v", steps, err)
		}
		c := n.Counters()
		if c.PacketsDelivered > c.PacketsInjected {
			t.Fatalf("delivered %d > injected %d", c.PacketsDelivered, c.PacketsInjected)
		}
	})
}

// FuzzSoALayout drives the struct-of-arrays layout through arbitrary
// geometries — radix, VC count, injection VCs, buffer depth, load, seed —
// and insists the optimized scan path stays digest-locked to the retained
// reference path over a short run, with CheckInvariants (which includes the
// per-router SoA CheckState cross-check) clean on both sides. The committed
// corpus pins the shapes most likely to break slot arithmetic: 2-ary tori
// (every port a wraparound), odd radices, and 1-VC configurations where the
// injection-slot block starts immediately after a single-VC port block.
func FuzzSoALayout(f *testing.F) {
	// 2-ary torus, 1 VC, minimal depth.
	f.Add(uint8(2), uint8(2), uint8(0), uint8(1), uint8(1), uint8(1), uint8(40), uint64(1), uint8(80))
	// Odd × odd mesh under NegativeFirst.
	f.Add(uint8(3), uint8(5), uint8(3), uint8(2), uint8(2), uint8(2), uint8(50), uint64(7), uint8(100))
	// Odd-radix torus, deadlock-prone DISHA settings.
	f.Add(uint8(5), uint8(5), uint8(0), uint8(2), uint8(1), uint8(1), uint8(60), uint64(42), uint8(120))
	// Duato needs 3 VCs on a torus; more injection VCs than network VCs.
	f.Add(uint8(4), uint8(4), uint8(5), uint8(3), uint8(2), uint8(4), uint8(50), uint64(9), uint8(90))
	f.Fuzz(func(t *testing.T, kx, ky, algSel, vcs, depth, injVCs, loadPct uint8, seed uint64, cycles uint8) {
		algs := []routing.Algorithm{
			routing.Disha(0), routing.Disha(3), routing.DOR(),
			routing.NegativeFirst(), routing.DallyAoki(), routing.Duato(),
		}
		build := func(ref bool) (*Network, error) {
			topo, err := topology.NewTorus(int(kx)%9, int(ky)%9)
			if err != nil {
				return nil, err
			}
			return New(Config{
				Topo:      topo,
				Algorithm: algs[int(algSel)%len(algs)],
				Pattern:   traffic.Uniform(topo),
				LoadRate:  float64(loadPct%100) / 100,
				MsgLen:    4,
				Seed:      seed,
				Router: router.Config{
					VCs:          int(vcs)%5 + 1,
					BufferDepth:  int(depth)%4 + 1,
					InjectionVCs: int(injVCs) % 6,
					Timeout:      16,
				},
				Kernel: KernelConfig{ReferenceScan: ref},
			})
		}
		soa, err := build(false)
		if err != nil {
			return // invalid geometry/algorithm combination; rejection is fine
		}
		defer soa.Close()
		ref, err := build(true)
		if err != nil {
			t.Fatalf("reference build failed where SoA build succeeded: %v", err)
		}
		defer ref.Close()
		steps := int(cycles) % 150
		for i := 0; i < steps; i++ {
			soa.Step()
			ref.Step()
			if soa.Fingerprint() != ref.Fingerprint() {
				reportDivergence(t, i+1, soa, ref)
			}
		}
		if err := soa.CheckInvariants(); err != nil {
			t.Fatalf("SoA path after %d cycles: %v", steps, err)
		}
		if err := ref.CheckInvariants(); err != nil {
			t.Fatalf("reference path after %d cycles: %v", steps, err)
		}
	})
}
