package network

import (
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// FuzzConfigNormalize drives Config validation (and the constructors behind
// it) with arbitrary parameters: New must either reject the configuration
// with an error or return a network that survives a short run with sound
// invariants — never panic. The algorithm/recovery/allocation selectors are
// decoded modulo their domains so the fuzzer reaches every combination,
// including invalid shard counts and degenerate VC/buffer settings.
func FuzzConfigNormalize(f *testing.F) {
	f.Add(int8(4), int8(4), uint8(0), int8(4), int8(2), int8(1), int8(1), int16(8), uint8(0), uint8(0), int8(0), int16(8), uint16(100))
	f.Add(int8(8), int8(8), uint8(1), int8(1), int8(1), int8(0), int8(1), int16(4), uint8(1), uint8(0), int8(4), int16(32), uint16(300))
	f.Add(int8(3), int8(5), uint8(2), int8(2), int8(1), int8(1), int8(2), int16(1), uint8(2), uint8(1), int8(-1), int16(1), uint16(50))
	f.Add(int8(2), int8(0), uint8(3), int8(0), int8(0), int8(0), int8(0), int16(0), uint8(0), uint8(1), int8(100), int16(0), uint16(10))
	f.Add(int8(4), int8(4), uint8(4), int8(-2), int8(-1), int8(-1), int8(-1), int16(-8), uint8(2), uint8(0), int8(3), int16(-1), uint16(120))
	f.Fuzz(func(t *testing.T, kx, ky int8, algSel uint8, vcs, depth, dbDepth, injVCs int8,
		timeout int16, recovery, alloc uint8, shards int8, msgLen int16, cycles uint16) {
		// Fold the numeric knobs into small ranges that still include
		// invalid values (negatives, zeros): rejection paths stay reachable
		// while valid configurations remain cheap enough to actually step.
		fold := func(v int8, span int) int { return int(v)%span - 1 }
		topo, err := topology.NewTorus(fold(kx, 10), fold(ky, 10))
		if err != nil {
			return
		}
		vcs = int8(fold(vcs, 10))
		depth = int8(fold(depth, 7))
		dbDepth = int8(fold(dbDepth, 5))
		injVCs = int8(fold(injVCs, 5))
		msgLen = int16(fold(int8(msgLen%64), 34))
		algs := []routing.Algorithm{
			routing.Disha(0), routing.Disha(3), routing.DOR(),
			routing.NegativeFirst(), routing.DallyAoki(), routing.Duato(),
		}
		cfg := Config{
			Topo:      topo,
			Algorithm: algs[int(algSel)%len(algs)],
			Pattern:   traffic.Uniform(topo),
			LoadRate:  0.4,
			MsgLen:    int(msgLen),
			Seed:      1,
			Router: router.Config{
				VCs:                 int(vcs),
				BufferDepth:         int(depth),
				DeadlockBufferDepth: int(dbDepth),
				InjectionVCs:        int(injVCs),
				Timeout:             sim.Cycle(timeout),
				Recovery:            router.RecoveryMode(int(recovery) % 4),
				Alloc:               router.AllocPolicy(int(alloc) % 3),
			},
			Kernel: KernelConfig{Shards: int(shards)},
		}
		n, err := New(cfg)
		if err != nil {
			return
		}
		defer n.Close()
		steps := int(cycles) % 200
		for i := 0; i < steps; i++ {
			n.Step()
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("after %d cycles: %v", steps, err)
		}
		c := n.Counters()
		if c.PacketsDelivered > c.PacketsInjected {
			t.Fatalf("delivered %d > injected %d", c.PacketsDelivered, c.PacketsInjected)
		}
	})
}
