package network

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// kernelVariant is one network configuration whose sharded execution must
// match serial execution exactly; together the variants cover every recovery
// mode, both crossbar allocation policies, and the adaptive time-out.
type kernelVariant struct {
	name  string
	build func() Config
}

func kernelVariants() []kernelVariant {
	base := func() Config {
		cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.5, 7)
		cfg.Router.VCs = 2
		cfg.Router.BufferDepth = 1
		cfg.Router.Timeout = 4
		return cfg
	}
	return []kernelVariant{
		{"sequential", base},
		{"concurrent", func() Config {
			cfg := base()
			cfg.Router.Recovery = router.RecoveryConcurrent
			return cfg
		}},
		{"abort-retry", func() Config {
			cfg := base()
			cfg.Router.Recovery = router.RecoveryAbortRetry
			cfg.Router.DeadlockBufferDepth = 0
			return cfg
		}},
		{"packet-by-packet", func() Config {
			cfg := base()
			cfg.Router.Alloc = router.PacketByPacket
			return cfg
		}},
		{"adaptive-timeout", func() Config {
			cfg := base()
			cfg.Router.AdaptiveTimeout = true
			return cfg
		}},
	}
}

// TestShardsMatchSerial proves the determinism contract on every recovery
// mode and allocation policy: after every single cycle the sharded network's
// fingerprint equals the serial one, for shard counts that divide the router
// count evenly and ones that do not. Run under -race this also exercises the
// phase barriers for data races.
func TestShardsMatchSerial(t *testing.T) {
	const cycles = 400
	for _, v := range kernelVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, shards := range []int{2, 3, 5, 8} {
				serial := mustNet(t, v.build())
				cfg := v.build()
				cfg.Kernel.Shards = shards
				sharded := mustNet(t, cfg)
				for i := 0; i < cycles; i++ {
					serial.Step()
					sharded.Step()
					if i%20 == 19 {
						if got, want := sharded.FingerprintHex(), serial.FingerprintHex(); got != want {
							t.Fatalf("shards=%d diverged by cycle %d:\n got %s\nwant %s", shards, i+1, got, want)
						}
						if err := sharded.CheckInvariants(); err != nil {
							t.Fatalf("shards=%d cycle %d: %v", shards, i+1, err)
						}
					}
				}
				sharded.Close()
				serial.Close()
			}
		})
	}
}

// TestShardedTraceMatchesSerial checks that observer-visible side effects —
// the packet-event trace, which flows through the deferred timeout flush —
// are identical between serial and sharded kernels, event for event.
func TestShardedTraceMatchesSerial(t *testing.T) {
	build := func(shards int) (*Network, *trace.Buffer) {
		cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.5, 7)
		cfg.Router.VCs = 2
		cfg.Router.BufferDepth = 1
		cfg.Router.Timeout = 4
		cfg.Kernel.Shards = shards
		n := mustNet(t, cfg)
		tb := trace.New(1 << 16)
		n.SetTrace(tb)
		return n, tb
	}
	serial, serialTrace := build(0)
	defer serial.Close()
	sharded, shardedTrace := build(4)
	defer sharded.Close()
	serial.Run(400)
	sharded.Run(400)
	se, pe := serialTrace.Events(), shardedTrace.Events()
	if len(se) != len(pe) {
		t.Fatalf("trace length differs: serial %d, sharded %d", len(se), len(pe))
	}
	for i := range se {
		if se[i] != pe[i] {
			t.Fatalf("trace event %d differs: serial %+v, sharded %+v", i, se[i], pe[i])
		}
	}
	if serialTrace.Count(trace.Timeout) == 0 {
		t.Fatal("trace comparison exercised no timeout events")
	}
}

// TestKernelConfigValidation pins KernelConfig normalization: negative shard
// counts are rejected, oversized ones are clamped to the node count, and 0/1
// mean serial execution (no worker pool).
func TestKernelConfigValidation(t *testing.T) {
	cfg := testConfig(topology.MustTorus(4, 4), routing.DOR(), 0.1, 1)
	cfg.Kernel.Shards = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative shards accepted")
	}

	cfg.Kernel.Shards = 999 // > 16 nodes: clamped, not rejected
	n := mustNet(t, cfg)
	defer n.Close()
	if n.kern == nil || n.kern.shards != 16 {
		t.Fatalf("oversized shard count not clamped to node count: %+v", n.kern)
	}
	n.Run(50)

	for _, s := range []int{0, 1} {
		cfg.Kernel.Shards = s
		sn := mustNet(t, cfg)
		if sn.kern != nil {
			t.Fatalf("Shards=%d built a worker pool", s)
		}
		sn.Close() // must be safe without a pool
	}
}

// TestShardBounds pins the shard partitioning: contiguous, covering, and as
// even as possible — concatenation order is the determinism contract.
func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ nodes, shards int }{{16, 4}, {17, 4}, {256, 8}, {5, 5}, {7, 3}} {
		bounds := shardBounds(tc.nodes, tc.shards)
		lo := 0
		for i, b := range bounds {
			if b[0] != lo {
				t.Fatalf("nodes=%d shards=%d: shard %d starts at %d, want %d", tc.nodes, tc.shards, i, b[0], lo)
			}
			size := b[1] - b[0]
			if size < tc.nodes/tc.shards || size > tc.nodes/tc.shards+1 {
				t.Fatalf("nodes=%d shards=%d: shard %d has uneven size %d", tc.nodes, tc.shards, i, size)
			}
			lo = b[1]
		}
		if lo != tc.nodes {
			t.Fatalf("nodes=%d shards=%d: bounds cover %d nodes", tc.nodes, tc.shards, lo)
		}
	}
}

// TestKernelPanicPropagation checks that a panic inside a worker shard is
// re-raised on the stepping goroutine instead of crashing the process from
// a bare goroutine.
func TestKernelPanicPropagation(t *testing.T) {
	cfg := testConfig(topology.MustTorus(4, 4), routing.DOR(), 0.1, 1)
	cfg.Kernel.Shards = 2
	n := mustNet(t, cfg)
	defer n.Close()

	check := func(fns []func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("shard panic not propagated")
			}
		}()
		n.kern.run(fns)
	}
	boom := func() { panic("boom") }
	noop := func() {}
	check([]func(){noop, boom}) // worker shard
	check([]func(){boom, noop}) // caller shard

	// The pool must still be usable after propagating panics.
	n.Run(10)
}

// TestKernelStepZeroAllocs asserts the steady-state hot path allocates
// nothing per cycle — serially and sharded, on the optimized
// struct-of-arrays scans and on the retained reference scan path: injection
// stopped, in-flight traffic still moving through routing, switching,
// commit, timers and recovery phases.
func TestKernelStepZeroAllocs(t *testing.T) {
	for _, shards := range []int{0, 4} {
		for _, refScan := range []bool{false, true} {
			cfg := testConfig(topology.MustTorus(8, 8), routing.Disha(0), 0.6, 11)
			cfg.Router.VCs = 2
			cfg.Router.BufferDepth = 1
			cfg.Router.Timeout = 4
			cfg.Kernel.Shards = shards
			cfg.Kernel.ReferenceScan = refScan
			n := mustNet(t, cfg)
			// Warm up with live injection (growing scratch buffers to their
			// steady-state capacity), then stop sources so packet generation —
			// which inherently allocates — is out of the measured path.
			n.Run(400)
			n.StopInjection()
			n.Run(50)
			if allocs := testing.AllocsPerRun(100, n.Step); allocs != 0 {
				t.Errorf("shards=%d refScan=%v: %v allocs per Step in steady state, want 0", shards, refScan, allocs)
			}
			n.Close()
		}
	}
}

// TestKernelSpeedupSmoke guards against the sharded kernel regressing below
// serial throughput on multi-core hosts: on the paper's 16x16 torus the
// 4-shard kernel must not be slower than serial (it should be substantially
// faster; CI records the exact ratio via the Step benchmarks).
func TestKernelSpeedupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs, have %d", runtime.NumCPU())
	}
	const cycles = 1500
	run := func(shards int) time.Duration {
		cfg := testConfig(topology.MustTorus(16, 16), routing.Disha(0), 0.5, 3)
		cfg.Kernel.Shards = shards
		n := mustNet(t, cfg)
		defer n.Close()
		n.Run(100) // warm-up: populate the network and scratch buffers
		start := time.Now()
		n.Run(cycles)
		return time.Since(start)
	}
	best := func(shards int) time.Duration {
		b := run(shards)
		for i := 0; i < 2; i++ {
			if d := run(shards); d < b {
				b = d
			}
		}
		return b
	}
	serial, sharded := best(0), best(4)
	t.Logf("16x16 torus, %d cycles: serial %v, 4 shards %v (%.2fx)",
		cycles, serial, sharded, float64(serial)/float64(sharded))
	if float64(sharded) > float64(serial)*1.05 {
		t.Errorf("sharded kernel slower than serial: %v vs %v", sharded, serial)
	}
}
