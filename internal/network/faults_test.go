package network

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestFailLinkValidation(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(3), 0.0, 1))
	if err := n.FailLink(0, 99); err == nil {
		t.Error("bad port accepted")
	}
	if err := n.FailLink(0, 0); err != nil {
		t.Fatalf("idle link refused: %v", err)
	}
	if n.FailedLinks() != 1 {
		t.Fatal("failed link not counted")
	}
	if err := n.FailLink(0, 0); err == nil {
		t.Error("double-failing a link accepted")
	}
	// The paired reverse direction is gone too.
	nb, _ := topo.Neighbor(0, 0)
	if err := n.FailLink(nb, topology.ReversePort(0)); err == nil {
		t.Error("reverse direction should already be failed")
	}
}

func TestFailLinkRefusesDisconnection(t *testing.T) {
	// On a 2-node ring (radix-2 single dimension has doubled links) use a
	// small mesh: cutting the only link to a corner must be refused.
	topo := topology.MustMesh(2, 2)
	cfg := testConfig(topo, routing.Disha(3), 0.0, 1)
	n := mustNet(t, cfg)
	// Corner (0,0) connects via +X and +Y. Fail +X, then +Y must refuse.
	if err := n.FailLink(0, topology.PortFor(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink(0, topology.PortFor(1, 1)); err == nil {
		t.Fatal("disconnecting a node must be refused")
	}
}

func TestFailLinkRefusesBusyLink(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(0), 0.6, 3))
	n.Run(200) // get traffic flowing everywhere
	busyRefusals := 0
	for p := 0; p < topo.Degree(); p++ {
		for node := 0; node < topo.Nodes(); node++ {
			if err := n.FailLink(topology.Node(node), p); err != nil {
				busyRefusals++
			}
		}
	}
	if busyRefusals == 0 {
		t.Fatal("expected at least some busy-link refusals under load")
	}
}

func TestFailLinkRejectsConcurrentRecovery(t *testing.T) {
	n := mustNet(t, concurrentConfig(1))
	if err := n.FailLink(0, 0); err == nil {
		t.Fatal("fault injection with concurrent recovery must be refused")
	}
}

// TestDishaToleratesFaults is the paper's fault-tolerance claim end to end:
// with several failed links, Disha with misrouting delivers every packet —
// including packets stranded by the faults, which escape through the
// fault-aware Deadlock Buffer lane.
func TestDishaToleratesFaults(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(3), 0.4, 7)
	n := mustNet(t, cfg)
	for _, f := range []struct {
		node topology.Node
		port int
	}{
		{topo.NodeAt(topology.Coord{0, 0}), topology.PortFor(0, 1)},
		{topo.NodeAt(topology.Coord{2, 1}), topology.PortFor(1, 1)},
		{topo.NodeAt(topology.Coord{3, 3}), topology.PortFor(0, -1)},
	} {
		if err := n.FailLink(f.node, f.port); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, n, 4000, 60000)
	c := n.Counters()
	if c.PacketsDelivered != c.PacketsInjected {
		t.Fatalf("faulty network lost packets: %d/%d", c.PacketsDelivered, c.PacketsInjected)
	}
	if c.PacketsDelivered < 200 {
		t.Fatalf("only %d packets delivered", c.PacketsDelivered)
	}
}

// TestHealThenRefailLink cycles one link through fail → heal → refail,
// checking the bookkeeping stays consistent and traffic still drains.
func TestHealThenRefailLink(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(3), 0.3, 17))
	if err := n.FailLink(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.HealLink(0, 0); err != nil {
		t.Fatalf("heal after fail: %v", err)
	}
	if n.FailedLinks() != 0 {
		t.Fatalf("heal did not clear the failed-link count: %d", n.FailedLinks())
	}
	if err := n.HealLink(0, 0); err == nil {
		t.Fatal("healing a healthy link accepted")
	}
	n.Run(200)
	if err := n.KillLink(0, 0); err != nil {
		t.Fatalf("refail after heal: %v", err)
	}
	if n.FailedLinks() != 1 {
		t.Fatalf("refail not counted: %d", n.FailedLinks())
	}
	// The reverse direction is the same link: healing from the far side
	// must work on the canonical key.
	nb, _ := topo.Neighbor(0, 0)
	if err := n.HealLink(nb, topology.ReversePort(0)); err != nil {
		t.Fatalf("heal via reverse endpoint: %v", err)
	}
	drain(t, n, 1000, 60000)
	c := n.Counters()
	if c.PacketsInjected != c.PacketsDelivered+c.PacketsLost {
		t.Fatalf("ledger broken: injected=%d delivered=%d lost=%d",
			c.PacketsInjected, c.PacketsDelivered, c.PacketsLost)
	}
}

// TestFailLastRedundantLink strips a corner down to one link and checks the
// final cut is refused — for both the conservative and the forced paths.
func TestFailLastRedundantLink(t *testing.T) {
	topo := topology.MustMesh(2, 2)
	n := mustNet(t, testConfig(topo, routing.Disha(3), 0.0, 1))
	if err := n.FailLink(0, topology.PortFor(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink(0, topology.PortFor(1, 1)); err == nil {
		t.Fatal("FailLink accepted cutting the corner's last link")
	}
	if err := n.KillLink(0, topology.PortFor(1, 1)); err == nil {
		t.Fatal("KillLink accepted cutting the corner's last link")
	}
	// Healing the first link restores redundancy, and the other cut works.
	if err := n.HealLink(0, topology.PortFor(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink(0, topology.PortFor(1, 1)); err != nil {
		t.Fatalf("cut with restored redundancy refused: %v", err)
	}
}

// TestRecoveryLaneRoutesAroundFault forces a recovery whose dimension-order
// DB path would cross the failed link, verifying the BFS table detours.
func TestRecoveryLaneRoutesAroundFault(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.8, 10)
	cfg.Router.VCs = 1
	cfg.Router.BufferDepth = 1
	n := mustNet(t, cfg)
	// Fail a handful of x-links so many DOR DB paths are broken.
	for _, f := range []struct {
		node topology.Node
		port int
	}{
		{topo.NodeAt(topology.Coord{1, 1}), topology.PortFor(0, 1)},
		{topo.NodeAt(topology.Coord{1, 2}), topology.PortFor(0, 1)},
	} {
		if err := n.FailLink(f.node, f.port); err != nil {
			t.Fatal(err)
		}
	}
	recovered := 0
	n.OnDeliver = func(p *packet.Packet) {
		if p.OnDB {
			recovered++
		}
	}
	drain(t, n, 4000, 120000)
	if recovered == 0 {
		t.Skip("no recoveries at this seed")
	}
	if n.Counters().PacketsDelivered != n.Counters().PacketsInjected {
		t.Fatal("lost packets with recoveries across faults")
	}
}

// TestDORWedgesOnFault demonstrates the contrast the paper draws: a
// deterministic scheme has no alternative when its one path dies.
func TestDORWedgesOnFault(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.DOR(), 0.4, 7)
	cfg.Router.Timeout = 0
	cfg.Router.DeadlockBufferDepth = 0
	n := mustNet(t, cfg)
	if err := n.FailLink(topo.NodeAt(topology.Coord{0, 0}), topology.PortFor(0, 1)); err != nil {
		t.Fatal(err)
	}
	n.Run(4000)
	if n.RunUntilDrained(20000) {
		t.Skip("no packet happened to need the failed link (unlikely)")
	}
	if n.InFlight() == 0 {
		t.Fatal("wedged with nothing in flight?")
	}
	_ = router.PortEject // document the import
}
