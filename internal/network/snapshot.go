package network

import (
	"fmt"
	"io"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Snapshot container identity. Bump snapshotVersion whenever the payload
// layout changes; old snapshots are then rejected with a clear error instead
// of being mis-decoded (TestSnapshotGoldenFixture pins the current layout).
const (
	snapshotMagic   = "DISHANET"
	snapshotVersion = 2
)

// Snapshot writes a versioned binary serialization of the network's complete
// dynamic state to w: configuration guard, the reconfiguration log (every
// link/router kill and heal and routing swap, for topology replay), clock,
// RNG streams, event counters, the live packet table (each in-flight or
// queued packet once, by identity), every node's source-queue and
// injection-stream state, the recovery Token, and every router's full
// microstate plus its private RNG (router.EncodeState).
//
// An armed reconfiguration schedule (ScheduleReconfig) is deliberately NOT
// serialized: schedules live outside the network (chaos schedule files,
// harness specs), and the caller re-arms the same schedule after Restore —
// events whose cycle already passed are dropped on arming because the log
// replay above has already reproduced their effect.
//
// The encoding is deterministic and kernel-independent: serial and sharded
// networks in the same state produce identical bytes. Restoring it into a
// freshly built Network with the identical Config reproduces the exact
// Fingerprint at every subsequent cycle, which is the property the
// checkpoint/resume machinery in internal/harness is built on.
func (n *Network) Snapshot(w io.Writer) error {
	// Bring skipped routers up to the current cycle first: the snapshot then
	// carries no trace of the active-set scheduler (activation is rebuilt
	// from the restored state, never serialized), so snapshots are identical
	// across scheduler settings just as they are across shard counts.
	n.syncIdle()
	var enc snapshot.Writer
	n.encodeConfigGuard(&enc)

	enc.Int(len(n.reconfigLog))
	for _, o := range n.reconfigLog {
		enc.I64(int64(o.Cycle))
		enc.Int(int(o.Kind))
		enc.Int(int(o.Node))
		enc.Int(o.Port)
		enc.String(o.Alg)
		enc.Bool(o.Applied)
		enc.String(o.Reason)
		enc.I64(o.PacketsLost)
		enc.I64(o.FlitsLost)
		enc.I64(o.PacketsUnroutable)
	}

	enc.I64(int64(n.clock.Now()))
	for _, s := range n.rng.State() {
		enc.U64(s)
	}
	enc.I64(int64(n.nextID))
	EncodeCounters(&enc, n.counters)

	// Live packet table: every packet reachable from any queue, buffer,
	// channel or the Token, each serialized once. Pointer identity is
	// preserved on restore by rewiring all references through the IDs.
	pkts := n.collectPackets()
	enc.Int(len(pkts))
	for _, p := range pkts {
		encodePacket(&enc, p)
	}

	for i := range n.nis {
		q := &n.nis[i]
		enc.Int(q.queued())
		for j := q.qhead; j < len(q.queue); j++ {
			enc.I64(int64(q.queue[j].ID))
		}
		if q.cur != nil {
			enc.I64(int64(q.cur.ID))
			enc.Int(q.seq)
		} else {
			enc.I64(-1)
		}
	}
	for _, o := range n.outstanding {
		enc.I64(int64(o))
	}
	for _, s := range n.sources {
		st := s.State()
		for _, v := range st.RNG {
			enc.U64(v)
		}
		enc.Bool(st.Stopped)
		enc.Bool(st.Bursting)
		enc.I64(st.Offered)
	}

	enc.Bool(n.token != nil)
	if n.token != nil {
		t := n.token
		enc.Int(t.pos)
		enc.Bool(t.held)
		if t.holder != nil {
			enc.I64(int64(t.holder.ID))
		} else {
			enc.I64(-1)
		}
		enc.I64(t.seizures)
		enc.I64(t.transitCycles)
		enc.I64(t.holdCycles)
	}

	for _, r := range n.routers {
		r.EncodeState(&enc)
	}

	_, err := w.Write(snapshot.Seal(snapshotMagic, snapshotVersion, enc.Bytes()))
	return err
}

// Restore loads a snapshot produced by Snapshot into this network. The
// network must be freshly constructed — network.New with the identical
// Config (the kernel shard count alone may differ; it does not affect
// results) and never stepped; anything else is an error. On any decoding
// error the network state is undefined and the network must be discarded.
func (n *Network) Restore(r io.Reader) error {
	if n.clock.Now() != 0 || n.counters != (Counters{}) || len(n.reconfigLog) != 0 {
		return fmt.Errorf("network: Restore requires a freshly constructed network")
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("network: read snapshot: %w", err)
	}
	payload, err := snapshot.Open(data, snapshotMagic, snapshotVersion)
	if err != nil {
		return err
	}
	dec := snapshot.NewReader(payload)

	if err := n.decodeConfigGuard(dec); err != nil {
		return err
	}

	nEvents := dec.Len(dec.Remaining() / 64)
	topoChanged := false
	for i := 0; i < nEvents; i++ {
		var o ReconfigOutcome
		o.Cycle = readCycleVal(dec)
		o.Kind = ReconfigKind(dec.Int())
		o.Node = topology.Node(dec.Int())
		o.Port = dec.Int()
		o.Alg = dec.String()
		o.Applied = dec.Bool()
		o.Reason = dec.String()
		o.PacketsLost = dec.I64()
		o.FlitsLost = dec.I64()
		o.PacketsUnroutable = dec.I64()
		if err := dec.Err(); err != nil {
			return err
		}
		changed, err := n.replayOutcome(o)
		if err != nil {
			return fmt.Errorf("network: replay reconfiguration log entry %d (%s): %w", i, o.ReconfigEvent, err)
		}
		topoChanged = topoChanged || changed
	}
	if topoChanged {
		// The decoded router state below carries the exact per-lane DB routes;
		// only the shared next-hop table (consulted for future recoveries)
		// needs rebuilding over the replayed wiring.
		n.rebuildDBTable()
	}

	n.clock.Set(readCycleVal(dec))
	var rngState [4]uint64
	for i := range rngState {
		rngState[i] = dec.U64()
	}
	n.rng.SetState(rngState)
	n.nextID = packet.ID(dec.I64())
	n.counters = DecodeCounters(dec)

	table, err := decodePacketTable(dec)
	if err != nil {
		return err
	}
	resolve := func(id int64) *packet.Packet { return table[id] }
	getPkt := func() *packet.Packet {
		id := dec.I64()
		if dec.Err() != nil || id == -1 {
			return nil
		}
		p := table[id]
		if p == nil {
			dec.Fail("snapshot: reference to unknown packet %d", id)
		}
		return p
	}

	for i := range n.nis {
		q := &n.nis[i]
		q.queue, q.qhead, q.cur, q.seq = nil, 0, nil, 0
		queued := dec.Len(dec.Remaining() / 8)
		for j := 0; j < queued; j++ {
			p := getPkt()
			if dec.Err() != nil {
				return dec.Err()
			}
			if p == nil {
				return dec.Fail("snapshot: node %d queue holds a nil packet", i)
			}
			q.push(p)
		}
		if id := dec.I64(); id != -1 && dec.Err() == nil {
			if q.cur = table[id]; q.cur == nil {
				return dec.Fail("snapshot: node %d streams unknown packet %d", i, id)
			}
			q.seq = dec.Int()
			if dec.Err() == nil && (q.seq < 1 || q.seq >= q.cur.Length) {
				return dec.Fail("snapshot: node %d stream position %d outside packet length %d", i, q.seq, q.cur.Length)
			}
		}
		if err := dec.Err(); err != nil {
			return err
		}
	}
	for i := range n.outstanding {
		v := dec.I64()
		if dec.Err() == nil && (v < int32min || v > int32max) {
			return dec.Fail("snapshot: outstanding count %d overflows int32", v)
		}
		n.outstanding[i] = int32(v)
	}
	for _, s := range n.sources {
		var st [4]uint64
		for i := range st {
			st[i] = dec.U64()
		}
		stopped, bursting, offered := dec.Bool(), dec.Bool(), dec.I64()
		if err := dec.Err(); err != nil {
			return err
		}
		s.SetState(sourceState(st, stopped, bursting, offered))
	}

	hasToken := dec.Bool()
	if dec.Err() == nil && hasToken != (n.token != nil) {
		return dec.Fail("snapshot: token presence mismatch (snapshot %v, configuration %v)", hasToken, n.token != nil)
	}
	if hasToken {
		t := n.token
		t.pos = dec.Int()
		if dec.Err() == nil && (t.pos < 0 || t.pos >= len(t.order)) {
			return dec.Fail("snapshot: token position %d outside ring of %d", t.pos, len(t.order))
		}
		t.held = dec.Bool()
		t.holder = getPkt()
		if dec.Err() == nil && t.held && t.holder == nil {
			return dec.Fail("snapshot: held token has no holder")
		}
		t.seizures = dec.I64()
		t.transitCycles = dec.I64()
		t.holdCycles = dec.I64()
	}

	for _, rt := range n.routers {
		if err := rt.DecodeState(dec, resolve); err != nil {
			return err
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return fmt.Errorf("snapshot: %d bytes of trailing garbage", dec.Remaining())
	}
	n.countersValid = false
	// Activation state is derived, not serialized: rebuild it from the
	// restored router state (drained routers sleep as of the restored cycle).
	n.rebuildActiveSet()
	return nil
}

const (
	int32min = -1 << 31
	int32max = 1<<31 - 1
)

// readCycleVal decodes a sim.Cycle-valued field.
func readCycleVal(dec *snapshot.Reader) sim.Cycle { return sim.Cycle(dec.I64()) }

// sourceState assembles a traffic.SourceState from decoded fields.
func sourceState(rng [4]uint64, stopped, bursting bool, offered int64) traffic.SourceState {
	return traffic.SourceState{RNG: rng, Stopped: stopped, Bursting: bursting, Offered: offered}
}

// EncodeCounters serializes a Counters value field by field; exported so
// higher-level checkpoint formats (internal/harness) can embed counter
// snapshots without duplicating the field walk.
func EncodeCounters(enc *snapshot.Writer, c Counters) {
	enc.I64(int64(c.Cycles))
	enc.I64(c.PacketsOffered)
	enc.I64(c.PacketsRefused)
	enc.I64(c.PacketsInjected)
	enc.I64(c.PacketsDelivered)
	enc.I64(c.FlitsDelivered)
	enc.I64(c.PacketsKilled)
	enc.I64(c.TokenSeizures)
	enc.I64(c.Recoveries)
	enc.I64(c.TimeoutEvents)
	enc.I64(c.FalseDetections)
	enc.I64(c.MisrouteHops)
	enc.I64(c.Preemptions)
	enc.I64(c.BlockedCycles)
	enc.I64(c.TokenTransit)
	enc.I64(c.TokenHold)
	enc.I64(c.PacketsLost)
	enc.I64(c.FlitsLost)
	enc.I64(c.PacketsUnroutable)
}

// DecodeCounters reverses EncodeCounters.
func DecodeCounters(dec *snapshot.Reader) Counters {
	var c Counters
	c.Cycles = readCycleVal(dec)
	c.PacketsOffered = dec.I64()
	c.PacketsRefused = dec.I64()
	c.PacketsInjected = dec.I64()
	c.PacketsDelivered = dec.I64()
	c.FlitsDelivered = dec.I64()
	c.PacketsKilled = dec.I64()
	c.TokenSeizures = dec.I64()
	c.Recoveries = dec.I64()
	c.TimeoutEvents = dec.I64()
	c.FalseDetections = dec.I64()
	c.MisrouteHops = dec.I64()
	c.Preemptions = dec.I64()
	c.BlockedCycles = dec.I64()
	c.TokenTransit = dec.I64()
	c.TokenHold = dec.I64()
	c.PacketsLost = dec.I64()
	c.FlitsLost = dec.I64()
	c.PacketsUnroutable = dec.I64()
	return c
}

// encodeConfigGuard writes the identity of the configuration the snapshot
// was taken under. Restore validates every field against the receiving
// network so a snapshot can never be loaded into a structurally different
// simulation; the kernel shard count and active-set toggle are deliberately
// excluded because the sharded and active-set kernels are byte-identical to
// the serial full-scan one.
func (n *Network) encodeConfigGuard(enc *snapshot.Writer) {
	c := &n.cfg
	enc.String(n.topo.Name())
	enc.Int(n.topo.Nodes())
	enc.Int(n.topo.Degree())
	enc.String(c.Algorithm.Name())
	enc.String(c.Selection.Name())
	enc.String(c.Pattern.Name())
	enc.Int(c.Router.VCs)
	enc.Int(c.Router.BufferDepth)
	enc.Int(c.Router.DeadlockBufferDepth)
	enc.Int(c.Router.InjectionVCs)
	enc.Int(c.Router.ReceptionChannels)
	enc.I64(int64(c.Router.Timeout))
	enc.Int(int(c.Router.Alloc))
	enc.Int(int(c.Router.Recovery))
	enc.Bool(c.Router.AdaptiveTimeout)
	enc.F64(c.LoadRate)
	enc.F64(c.InjectionProb)
	enc.Int(c.MsgLen)
	enc.U64(c.Seed)
	enc.Int(c.TokenHopsPerCycle)
	enc.Int(c.SourceQueueCap)
	enc.Int(c.InjectionThrottle)
	enc.F64(c.Burst.MeanBurst)
	enc.F64(c.Burst.MeanIdle)
}

// decodeConfigGuard validates the snapshot's configuration identity against
// this network's.
func (n *Network) decodeConfigGuard(dec *snapshot.Reader) error {
	c := &n.cfg
	dec.ExpectString(n.topo.Name(), "topology")
	dec.Expect(int64(n.topo.Nodes()), "node count")
	dec.Expect(int64(n.topo.Degree()), "degree")
	dec.ExpectString(c.Algorithm.Name(), "routing algorithm")
	dec.ExpectString(c.Selection.Name(), "selection function")
	dec.ExpectString(c.Pattern.Name(), "traffic pattern")
	dec.Expect(int64(c.Router.VCs), "VC count")
	dec.Expect(int64(c.Router.BufferDepth), "buffer depth")
	dec.Expect(int64(c.Router.DeadlockBufferDepth), "deadlock buffer depth")
	dec.Expect(int64(c.Router.InjectionVCs), "injection VCs")
	dec.Expect(int64(c.Router.ReceptionChannels), "reception channels")
	dec.Expect(int64(c.Router.Timeout), "timeout")
	dec.Expect(int64(c.Router.Alloc), "allocation policy")
	dec.Expect(int64(c.Router.Recovery), "recovery mode")
	if got := dec.Bool(); dec.Err() == nil && got != c.Router.AdaptiveTimeout {
		dec.Fail("snapshot: adaptive-timeout mismatch")
	}
	expectF64(dec, c.LoadRate, "load rate")
	expectF64(dec, c.InjectionProb, "injection probability")
	dec.Expect(int64(c.MsgLen), "message length")
	if got := dec.U64(); dec.Err() == nil && got != c.Seed {
		dec.Fail("snapshot: seed mismatch: snapshot has %#x, this configuration has %#x", got, c.Seed)
	}
	dec.Expect(int64(c.TokenHopsPerCycle), "token speed")
	dec.Expect(int64(c.SourceQueueCap), "source queue cap")
	dec.Expect(int64(c.InjectionThrottle), "injection throttle")
	expectF64(dec, c.Burst.MeanBurst, "burst mean length")
	expectF64(dec, c.Burst.MeanIdle, "burst mean idle")
	return dec.Err()
}

func expectF64(dec *snapshot.Reader, want float64, what string) {
	got := dec.F64()
	if dec.Err() == nil && got != want {
		dec.Fail("snapshot: %s mismatch: snapshot has %v, this configuration has %v", what, got, want)
	}
}

// collectPackets walks every place a live packet can be referenced from, in
// deterministic order, and returns each packet exactly once.
func (n *Network) collectPackets() []*packet.Packet {
	var out []*packet.Packet
	seen := make(map[*packet.Packet]bool)
	add := func(p *packet.Packet) {
		if p != nil && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for i := range n.nis {
		q := &n.nis[i]
		for j := q.qhead; j < len(q.queue); j++ {
			add(q.queue[j])
		}
		add(q.cur)
	}
	for _, r := range n.routers {
		for p := 0; p < r.InputPorts(); p++ {
			for v := 0; v < r.InputVCCount(p); v++ {
				add(r.InputOwner(p, v))
				for i := 0; i < r.InputOccupancy(p, v); i++ {
					add(r.InputFlitAt(p, v, i).Pkt)
				}
			}
		}
		for p := 0; p < n.topo.Degree(); p++ {
			for v := 0; v < n.cfg.Router.VCs; v++ {
				add(r.OutputOwner(p, v))
			}
		}
		for lane := 0; lane < r.DBLanes(); lane++ {
			add(r.DBLaneOwner(lane))
			for i := 0; i < r.DBLaneLen(lane); i++ {
				add(r.DBFlitAt(lane, i).Pkt)
			}
		}
	}
	if n.token != nil {
		add(n.token.holder)
	}
	return out
}

// encodePacket serializes every packet field. Any new Packet field that can
// influence a future cycle must be added here and in decodePacketTable.
func encodePacket(enc *snapshot.Writer, p *packet.Packet) {
	enc.I64(int64(p.ID))
	enc.I64(int64(p.Src))
	enc.I64(int64(p.Dst))
	enc.Int(p.Length)
	enc.I64(int64(p.CreatedAt))
	enc.I64(int64(p.InjectedAt))
	enc.I64(int64(p.DeliveredAt))
	enc.Int(p.Hops)
	enc.Int(p.Misroutes)
	enc.Int(p.DimReversals)
	enc.Bool(p.OnDeterministic)
	enc.U64(p.DatelineCrossed)
	enc.Int(p.LastDim)
	enc.Int(p.Retries)
	enc.Bool(p.OnDB)
	enc.Bool(p.TimedOut)
	enc.Bool(p.SeizedToken)
	enc.I64(int64(p.RecoveredAt))
	enc.Int(p.FlitsDelivered)
	enc.Bool(p.HeaderArrived)
}

// packetEncodedMin is a lower bound on one encoded packet's size, used to
// bound the table count against the remaining input.
const packetEncodedMin = 8*12 + 6

func decodePacketTable(dec *snapshot.Reader) (map[int64]*packet.Packet, error) {
	count := dec.Len(dec.Remaining() / packetEncodedMin)
	table := make(map[int64]*packet.Packet, count)
	for i := 0; i < count; i++ {
		p := &packet.Packet{}
		id := dec.I64()
		p.ID = packet.ID(id)
		p.Src = topology.Node(dec.I64())
		p.Dst = topology.Node(dec.I64())
		p.Length = dec.Int()
		p.CreatedAt = readCycleVal(dec)
		p.InjectedAt = readCycleVal(dec)
		p.DeliveredAt = readCycleVal(dec)
		p.Hops = dec.Int()
		p.Misroutes = dec.Int()
		p.DimReversals = dec.Int()
		p.OnDeterministic = dec.Bool()
		p.DatelineCrossed = dec.U64()
		p.LastDim = dec.Int()
		p.Retries = dec.Int()
		p.OnDB = dec.Bool()
		p.TimedOut = dec.Bool()
		p.SeizedToken = dec.Bool()
		p.RecoveredAt = readCycleVal(dec)
		p.FlitsDelivered = dec.Int()
		p.HeaderArrived = dec.Bool()
		if err := dec.Err(); err != nil {
			return nil, err
		}
		if p.Length < 1 {
			return nil, dec.Fail("snapshot: packet %d has length %d < 1", id, p.Length)
		}
		if _, dup := table[id]; dup {
			return nil, dec.Fail("snapshot: duplicate packet ID %d", id)
		}
		table[id] = p
	}
	return table, nil
}
