package network

import (
	"fmt"
	"time"

	"repro/internal/router"
)

// KernelConfig tunes the intra-simulation parallel kernel: how Step's
// router-local phases (routing/switch staging and deadlock-timer updates)
// fan out across worker goroutines. The sharded kernel is byte-identical to
// the serial one — same counters, same per-router microstate, cycle by cycle
// — because only router-local phases run concurrently and every cross-router
// effect (DB write-port arbitration, transfer commit, injection, delivery,
// Token movement, observers) is applied serially in fixed router order. The
// golden-digest suite enforces this contract.
type KernelConfig struct {
	// Shards is the number of contiguous router shards the stage and timer
	// phases are split into; shard 0 runs on the stepping goroutine and the
	// rest on a persistent worker pool. 0 and 1 both mean serial execution
	// (no pool). Values above the node count are clamped. Negative values
	// are a configuration error.
	Shards int
	// DisableActiveSet makes the stage and timer phases visit every router
	// every cycle instead of only the active set (see activeset.go). The
	// active-set scheduler is digest-invariant — it changes which routers
	// are visited, never what any visit computes — so this knob exists only
	// to benchmark the full-scan baseline and as an escape hatch; like
	// Shards, it may differ freely between a snapshot and its restore.
	DisableActiveSet bool
	// ReferenceScan runs the router-local phases through the retained
	// reference scan path (router.StageRoutingRef and friends — the faithful
	// port of the pre-SoA per-slot walks) instead of the optimized
	// struct-of-arrays scans. The two paths make identical decisions in
	// identical order, so this knob is digest-invariant like the others and
	// may differ freely between a snapshot and its restore; it exists as the
	// baseline for the differential conformance suite and the benchgate
	// speed gates.
	ReferenceScan bool
}

func (k *KernelConfig) normalize(nodes int) error {
	if k.Shards < 0 {
		return fmt.Errorf("network: negative kernel shards %d", k.Shards)
	}
	if k.Shards > nodes {
		k.Shards = nodes
	}
	return nil
}

// kernel is the worker pool executing one phase across router shards. The
// pool is allocation-free per cycle: the per-shard task closures are built
// once at construction, workers are persistent goroutines, and dispatch
// moves prebuilt func values over two channels.
type kernel struct {
	shards   int
	stageFns []func()
	timerFns []func()
	tasks    chan func()
	done     chan struct{}
	panics   chan any
	closed   bool
}

// shardBounds splits nodes into count contiguous ranges as evenly as
// possible; bounds[i] is the half-open router range [lo, hi) of shard i.
// Contiguity matters: concatenating per-shard results in shard order must
// reproduce the global fixed router order the serial kernel uses.
func shardBounds(nodes, count int) [][2]int {
	bounds := make([][2]int, count)
	base, rem := nodes/count, nodes%count
	lo := 0
	for i := range bounds {
		hi := lo + base
		if i < rem {
			hi++
		}
		bounds[i] = [2]int{lo, hi}
		lo = hi
	}
	return bounds
}

// newKernel builds the worker pool for n with the given shard count (>= 2).
func newKernel(n *Network, shards int) *kernel {
	k := &kernel{
		shards:   shards,
		stageFns: make([]func(), shards),
		timerFns: make([]func(), shards),
		tasks:    make(chan func(), shards-1),
		done:     make(chan struct{}, shards-1),
		panics:   make(chan any, shards),
	}
	bounds := shardBounds(len(n.routers), shards)
	n.stageBufs = make([][]router.Transfer, shards)
	for i := range bounds {
		lo, hi, shard := bounds[i][0], bounds[i][1], i
		k.stageFns[i] = func() { n.stageShard(lo, hi, shard) }
		k.timerFns[i] = func() { n.timerShard(lo, hi) }
	}
	for w := 0; w < shards-1; w++ {
		go k.worker()
	}
	return k
}

func (k *kernel) worker() {
	for fn := range k.tasks {
		if err := guard(fn); err != nil {
			select {
			case k.panics <- err:
			default:
			}
		}
		k.done <- struct{}{}
	}
}

// guard runs fn, converting a panic into a returned value so the pool can
// re-raise it on the stepping goroutine instead of crashing a worker.
func guard(fn func()) (err any) {
	defer func() { err = recover() }()
	fn()
	return nil
}

// run executes one phase: shards 1..n-1 are dispatched to the pool, shard 0
// runs on the calling goroutine, and the call returns only after every shard
// finished (a full barrier). A panic in any shard is re-raised here.
func (k *kernel) run(fns []func()) {
	for i := 1; i < k.shards; i++ {
		k.tasks <- fns[i]
	}
	err := guard(fns[0])
	for i := 1; i < k.shards; i++ {
		<-k.done
	}
	if err == nil {
		select {
		case err = <-k.panics:
		default:
		}
	}
	if err != nil {
		panic(err)
	}
}

// close stops the worker goroutines. Idempotent.
func (k *kernel) close() {
	if k == nil || k.closed {
		return
	}
	k.closed = true
	close(k.tasks)
}

// stageShard runs the fused route-compute + switch-allocation phase for the
// active routers in [lo, hi), staging transfers into the shard's reusable
// buffer (the activity bitmap is only written in serial phases, so sharded
// reads are race-free).
// Both stages mutate only the owning router's state and read neighbor
// Deadlock Buffer state that is start-of-cycle stable, so disjoint shards
// run concurrently without synchronization; Deadlock-Buffer admissions are
// staged optimistically and settled afterwards by Reservations.Resolve in
// shard (== router) order.
func (n *Network) stageShard(lo, hi, shard int) {
	buf := n.stageBufs[shard][:0]
	// On profiled cycles each router's two stages are timed separately into
	// the shard's private accumulator slots; the kernel barrier's channel
	// handoff orders those writes before the stepping goroutine's
	// flushStage read, so no synchronization is needed. The wall-clock
	// reads never touch simulation state (digest-invariant).
	if p := n.prof; p != nil && p.active {
		var routeNS, switchNS int64
		for i := n.nextActive(lo, hi); i >= 0; i = n.nextActive(i+1, hi) {
			r := n.routers[i]
			s0 := time.Now()
			n.stageRoute(r)
			s1 := time.Now()
			buf = n.stageSwitch(r, buf)
			routeNS += s1.Sub(s0).Nanoseconds()
			switchNS += time.Since(s1).Nanoseconds()
		}
		p.shardRoute[shard], p.shardSwitch[shard] = routeNS, switchNS
		n.stageBufs[shard] = buf
		return
	}
	for i := n.nextActive(lo, hi); i >= 0; i = n.nextActive(i+1, hi) {
		r := n.routers[i]
		n.stageRoute(r)
		buf = n.stageSwitch(r, buf)
	}
	n.stageBufs[shard] = buf
}

// stageRoute, stageSwitch and tickTimers dispatch one router's scan phases
// to the optimized SoA path or, under KernelConfig.ReferenceScan, to the
// retained reference path. The branch is per router per phase — noise next
// to the scan itself — and keeps every caller (serial loop, shard worker,
// profiled variants) on one dispatch point.
func (n *Network) stageRoute(r *router.Router) {
	if n.refScan {
		r.StageRoutingRef()
		return
	}
	r.StageRouting()
}

func (n *Network) stageSwitch(r *router.Router, buf []router.Transfer) []router.Transfer {
	if n.refScan {
		return r.StageSwitchRef(buf)
	}
	return r.StageSwitch(buf)
}

func (n *Network) tickTimers(r *router.Router) {
	if n.refScan {
		r.TickTimersRef()
		return
	}
	r.TickTimers()
}

// timerShard runs the deadlock-timer phase for the active routers in
// [lo, hi). Timeout observers are buffered per router and flushed serially
// afterwards.
func (n *Network) timerShard(lo, hi int) {
	for i := n.nextActive(lo, hi); i >= 0; i = n.nextActive(i+1, hi) {
		n.tickTimers(n.routers[i])
	}
}
