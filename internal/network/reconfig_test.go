package network

import (
	"bytes"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TestKillLinkDropsCommittedPackets kills a loaded link mid-stream and
// checks the loss ledger: every packet either arrives or is counted lost,
// and nothing wedges afterwards.
func TestKillLinkDropsCommittedPackets(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(3), 0.6, 5))
	n.Run(300)
	// Kill every port of node 5 one at a time until one carried traffic.
	var lost int64
	for port := 0; port < topo.Degree(); port++ {
		if err := n.KillLink(5, port); err != nil {
			t.Fatalf("KillLink(5,%d): %v", port, err)
		}
		if c := n.Counters(); c.PacketsLost > lost {
			lost = c.PacketsLost
			break
		}
		if err := n.HealLink(5, port); err != nil {
			t.Fatalf("HealLink(5,%d): %v", port, err)
		}
	}
	drain(t, n, 1000, 60000)
	c := n.Counters()
	if c.PacketsInjected != c.PacketsDelivered+c.PacketsLost {
		t.Fatalf("loss ledger broken: injected=%d delivered=%d lost=%d",
			c.PacketsInjected, c.PacketsDelivered, c.PacketsLost)
	}
	if c.PacketsLost > 0 && c.FlitsLost == 0 {
		t.Fatal("packets lost but no flits accounted")
	}
}

// TestKillRouterLedger kills a router under load: packets buffered there or
// addressed to it drop (PacketsLost for injected, PacketsUnroutable for
// queued/generated), everything else still delivers.
func TestKillRouterLedger(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(3), 0.5, 9))
	n.Run(300)
	if err := n.KillRouter(6); err != nil {
		t.Fatalf("KillRouter: %v", err)
	}
	if !n.RouterDead(6) || n.DeadRouters() != 1 {
		t.Fatal("router not marked dead")
	}
	n.Run(500)
	if err := n.HealRouter(6); err != nil {
		t.Fatalf("HealRouter: %v", err)
	}
	if n.DeadRouters() != 0 {
		t.Fatal("router not revived")
	}
	drain(t, n, 1000, 60000)
	c := n.Counters()
	if c.PacketsInjected != c.PacketsDelivered+c.PacketsLost {
		t.Fatalf("loss ledger broken: injected=%d delivered=%d lost=%d",
			c.PacketsInjected, c.PacketsDelivered, c.PacketsLost)
	}
	if c.PacketsLost == 0 {
		t.Fatal("killing a loaded router should drop something")
	}
	if c.PacketsUnroutable == 0 {
		t.Fatal("expected undeliverable generated traffic while the router was dead")
	}
}

// TestKillRouterRefusesDisconnection builds a 2x2 mesh and kills routers
// until removing another would disconnect (or empty) the live remainder.
func TestKillRouterRefusesDisconnection(t *testing.T) {
	topo := topology.MustMesh(2, 2)
	n := mustNet(t, testConfig(topo, routing.Disha(3), 0.0, 1))
	if err := n.KillRouter(1); err != nil {
		t.Fatalf("first kill: %v", err)
	}
	// The survivors form the chain 0-2-3; cutting its middle would strand
	// corner 0 from corner 3.
	if err := n.KillRouter(2); err == nil {
		t.Fatal("kill that disconnects the live remainder must be refused")
	}
	if err := n.KillRouter(3); err != nil {
		t.Fatalf("leaf kill refused: %v", err)
	}
	if err := n.KillRouter(99); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestSwapAlgorithmMidRun swaps routing under load and checks traffic keeps
// flowing and drains under the new function.
func TestSwapAlgorithmMidRun(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(3), 0.4, 3))
	n.Run(500)
	alg, err := routing.ByName("disha-m1")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SwapAlgorithm(alg); err != nil {
		t.Fatalf("SwapAlgorithm: %v", err)
	}
	if n.CurrentAlgorithm().Name() != "disha-m1" {
		t.Fatalf("current algorithm is %q", n.CurrentAlgorithm().Name())
	}
	drain(t, n, 1000, 60000)
	c := n.Counters()
	if c.PacketsInjected != c.PacketsDelivered+c.PacketsLost {
		t.Fatalf("swap lost packets: injected=%d delivered=%d lost=%d",
			c.PacketsInjected, c.PacketsDelivered, c.PacketsLost)
	}
}

// scheduleFixture is a mixed schedule used by the determinism tests.
func scheduleFixture() []ReconfigEvent {
	return []ReconfigEvent{
		{Cycle: 150, Kind: ReconfigKillLink, Node: 5, Port: 0},
		{Cycle: 340, Kind: ReconfigKillLink, Node: 10, Port: 2},
		{Cycle: 520, Kind: ReconfigHealLink, Node: 5, Port: 0},
		{Cycle: 700, Kind: ReconfigKillRouter, Node: 9},
		{Cycle: 980, Kind: ReconfigSwapAlgorithm, Alg: "disha-m1"},
		{Cycle: 1200, Kind: ReconfigHealRouter, Node: 9},
		{Cycle: 1390, Kind: ReconfigHealLink, Node: 10, Port: 2},
	}
}

// TestScheduledReconfigDeterministic runs the same schedule under the serial
// and sharded kernels and demands byte-identical fingerprints and identical
// reconfiguration logs.
func TestScheduledReconfigDeterministic(t *testing.T) {
	run := func(shards int) (string, []ReconfigOutcome) {
		topo := topology.MustTorus(4, 4)
		cfg := testConfig(topo, routing.Disha(2), 0.5, 21)
		cfg.Kernel.Shards = shards
		n := mustNet(t, cfg)
		defer n.Close()
		if err := n.ScheduleReconfig(scheduleFixture()); err != nil {
			t.Fatal(err)
		}
		n.Run(2000)
		return n.FingerprintHex(), n.ReconfigLog()
	}
	d1, log1 := run(1)
	d4, log4 := run(4)
	if d1 != d4 {
		t.Fatalf("sharded chaos run diverged: serial %s sharded %s", d1, d4)
	}
	if len(log1) != len(scheduleFixture()) {
		t.Fatalf("expected %d outcomes, got %d", len(scheduleFixture()), len(log1))
	}
	for i := range log1 {
		if log1[i] != log4[i] {
			t.Fatalf("outcome %d differs: %v vs %v", i, log1[i], log4[i])
		}
	}
}

// TestEmptyChaosScheduleZeroOverhead proves arming an empty schedule (or
// none) changes nothing: fingerprints match a run that never touched the
// reconfiguration API.
func TestEmptyChaosScheduleZeroOverhead(t *testing.T) {
	build := func() *Network {
		topo := topology.MustTorus(4, 4)
		return mustNet(t, testConfig(topo, routing.Disha(2), 0.5, 33))
	}
	plain := build()
	defer plain.Close()
	armed := build()
	defer armed.Close()
	if err := armed.ScheduleReconfig(nil); err != nil {
		t.Fatal(err)
	}
	plain.Run(1500)
	armed.Run(1500)
	if a, b := plain.FingerprintHex(), armed.FingerprintHex(); a != b {
		t.Fatalf("empty schedule perturbed the run: %s vs %s", a, b)
	}
	if armed.ReconfigCount() != 0 {
		t.Fatal("empty schedule produced log entries")
	}
}

// TestScheduleReconfigValidation covers arming-time rules: unsorted
// schedules are rejected, stale events are dropped.
func TestScheduleReconfigValidation(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(2), 0.0, 1))
	unsorted := []ReconfigEvent{
		{Cycle: 100, Kind: ReconfigKillLink, Node: 1, Port: 0},
		{Cycle: 50, Kind: ReconfigKillLink, Node: 2, Port: 0},
	}
	if err := n.ScheduleReconfig(unsorted); err == nil {
		t.Fatal("unsorted schedule accepted")
	}
	n.Run(200)
	if err := n.ScheduleReconfig([]ReconfigEvent{
		{Cycle: 100, Kind: ReconfigKillLink, Node: 1, Port: 0},
		{Cycle: 300, Kind: ReconfigKillLink, Node: 2, Port: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if n.PendingReconfigs() != 1 {
		t.Fatalf("stale event not dropped: %d pending", n.PendingReconfigs())
	}
}

// TestSnapshotReplaysReconfig snapshots mid-campaign, restores into a fresh
// network, re-arms the same schedule, and demands lockstep fingerprints with
// the original for the rest of the campaign.
func TestSnapshotReplaysReconfig(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(2), 0.5, 21)
	sched := scheduleFixture()

	orig := mustNet(t, cfg)
	defer orig.Close()
	if err := orig.ScheduleReconfig(sched); err != nil {
		t.Fatal(err)
	}
	orig.Run(800) // past the kill-link/heal-link/kill-router events

	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := mustNet(t, cfg)
	defer restored.Close()
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Checkpoints do not carry the pending schedule: re-arm it (applied
	// events are stale now and dropped on arming).
	if err := restored.ScheduleReconfig(sched); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.FingerprintHex(), orig.FingerprintHex(); got != want {
		t.Fatalf("restore mismatch: %s vs %s", got, want)
	}
	for i := 0; i < 900; i++ {
		orig.Step()
		restored.Step()
	}
	if got, want := restored.FingerprintHex(), orig.FingerprintHex(); got != want {
		t.Fatalf("replayed campaign diverged: %s vs %s", got, want)
	}
	lo, lr := orig.ReconfigLog(), restored.ReconfigLog()
	if len(lo) != len(lr) {
		t.Fatalf("log lengths differ: %d vs %d", len(lo), len(lr))
	}
	for i := range lo {
		if lo[i] != lr[i] {
			t.Fatalf("replayed outcome %d differs: %v vs %v", i, lo[i], lr[i])
		}
	}
}

// TestRecoveryBacklogQuiesces checks the reconvergence probe: after a kill
// with losses and a long quiet run, the backlog must reach zero.
func TestRecoveryBacklogQuiesces(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(2), 0.4, 13))
	n.Run(300)
	if err := n.KillLink(3, 0); err != nil {
		t.Fatal(err)
	}
	drain(t, n, 500, 60000)
	if p, b := n.RecoveryBacklog(); p != 0 || b != 0 {
		t.Fatalf("backlog after drain: presumed=%d busy=%d", p, b)
	}
}
