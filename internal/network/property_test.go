package network

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestConservationProperty is the simulator's master invariant, checked over
// randomized configurations: after stopping injection and draining, every
// injected packet is delivered exactly once, all flits arrive in order at
// the right node, and the network is fully quiescent. Exercises random
// combinations of algorithm, VC count, buffer depth, message length,
// recovery mode and load.
func TestConservationProperty(t *testing.T) {
	type knobs struct {
		Seed       uint64
		AlgPick    uint8
		VCsPick    uint8
		DepthPick  uint8
		LenPick    uint8
		LoadPick   uint8
		Concurrent bool
		AbortRetry bool
		PBP        bool
	}
	f := func(k knobs) bool {
		topo := topology.MustTorus(4, 4)
		algs := []routing.Algorithm{
			routing.Disha(0), routing.Disha(3), routing.DOR(),
			routing.Duato(), routing.DallyAoki(), routing.NegativeFirst(),
		}
		alg := algs[int(k.AlgPick)%len(algs)]
		rc := router.Default()
		rc.VCs = 3 + int(k.VCsPick)%3 // 3..5 (covers every algorithm's MinVCs)
		rc.BufferDepth = 1 + int(k.DepthPick)%3
		recovery := alg.Name() == "disha-m0" || alg.Name() == "disha-m3"
		if recovery {
			rc.Timeout = 8
			switch {
			case k.AbortRetry:
				rc.Recovery = router.RecoveryAbortRetry
				rc.DeadlockBufferDepth = 0
			case k.Concurrent:
				rc.Recovery = router.RecoveryConcurrent
			}
		} else {
			rc.Timeout = 0
			rc.DeadlockBufferDepth = 0
		}
		if k.PBP && rc.Recovery != router.RecoveryConcurrent {
			rc.Alloc = router.PacketByPacket
		}
		cfg := Config{
			Topo:      topo,
			Router:    rc,
			Algorithm: alg,
			Pattern:   traffic.Uniform(topo),
			LoadRate:  0.2 + 0.15*float64(k.LoadPick%4), // 0.2..0.65
			MsgLen:    1 + int(k.LenPick)%12,
			Seed:      k.Seed,
		}
		n, err := New(cfg)
		if err != nil {
			// Some knob combinations are legitimately infeasible (e.g. a
			// load that needs more than one packet per node per cycle at
			// MsgLen 1); construction rejecting them is correct behaviour.
			return true
		}
		ok := true
		lastSeq := map[packet.ID]int{}
		n.OnDeliver = func(p *packet.Packet) {
			if p.FlitsDelivered != p.Length || p.DeliveredAt < p.InjectedAt {
				ok = false
			}
			if _, dup := lastSeq[p.ID]; dup {
				ok = false // delivered twice
			}
			lastSeq[p.ID] = p.Length
		}
		n.Run(800)
		if !n.RunUntilDrained(30000) {
			t.Logf("did not drain: %s seed=%d cfg=%+v", alg.Name(), k.Seed, cfg.Router)
			return false
		}
		c := n.Counters()
		if c.PacketsDelivered != c.PacketsInjected-c.PacketsKilled {
			return false
		}
		if int64(len(lastSeq)) != c.PacketsDelivered {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestNIQueueCompaction exercises the source queue's amortized compaction
// path (qhead > 64) which normal short tests never reach.
func TestNIQueueCompaction(t *testing.T) {
	var q ni
	mk := func(i int) *packet.Packet { return packet.New(packet.ID(i), 0, 1, 1, 0) }
	for i := 0; i < 200; i++ {
		q.push(mk(i))
	}
	for i := 0; i < 150; i++ {
		if got := q.peek(); got.ID != packet.ID(i) {
			t.Fatalf("peek %d: got %d", i, got.ID)
		}
		q.pop()
		// Interleave pushes to force compaction while non-empty.
		q.push(mk(200 + i))
	}
	if q.queued() != 200 {
		t.Fatalf("queued = %d, want 200", q.queued())
	}
	// Drain fully and verify FIFO order end to end.
	want := 150
	for q.queued() > 0 {
		got := q.peek()
		if got.ID != packet.ID(want) {
			t.Fatalf("drain order: got %d, want %d", got.ID, want)
		}
		q.pop()
		want++
	}
	if q.peek() != nil {
		t.Fatal("empty queue must peek nil")
	}
}
