package network

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

func concurrentConfig(seed uint64) Config {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.9, seed)
	cfg.Router.VCs = 1
	cfg.Router.BufferDepth = 1
	cfg.Router.Timeout = 8
	cfg.Router.Recovery = router.RecoveryConcurrent
	return cfg
}

// TestConcurrentRecoveryDrains stresses the most deadlock-prone
// configuration under token-free recovery: every packet must still be
// delivered, and recoveries happen without any token.
func TestConcurrentRecoveryDrains(t *testing.T) {
	n := mustNet(t, concurrentConfig(12))
	if n.Token() != nil {
		t.Fatal("concurrent recovery must not create a token")
	}
	drain(t, n, 4000, 60000)
	c := n.Counters()
	if c.PacketsDelivered != c.PacketsInjected {
		t.Fatalf("lost packets: injected %d delivered %d", c.PacketsInjected, c.PacketsDelivered)
	}
	if c.Recoveries == 0 {
		t.Fatal("expected recoveries under saturating 1-VC load")
	}
	if c.TokenSeizures != 0 {
		t.Fatal("token seizures must be zero in concurrent mode")
	}
}

// TestConcurrentRecoverySeeds covers several seeds to exercise different
// deadlock shapes, including multiple simultaneous recoveries.
func TestConcurrentRecoverySeeds(t *testing.T) {
	for _, seed := range []uint64{4, 8, 9, 10, 16, 17, 19} {
		n := mustNet(t, concurrentConfig(seed))
		drain(t, n, 3000, 60000)
	}
}

// TestConcurrentRecoveredPacketsAreNotTokenHolders checks packet state under
// concurrent recovery: OnDB set, SeizedToken not set.
func TestConcurrentRecoveredPacketsAreNotTokenHolders(t *testing.T) {
	n := mustNet(t, concurrentConfig(12))
	recovered := 0
	n.OnDeliver = func(p *packet.Packet) {
		if p.OnDB {
			recovered++
			if p.SeizedToken {
				t.Fatal("concurrent recovery must not mark SeizedToken")
			}
			if p.RecoveredAt < 0 {
				t.Fatal("recovered packet missing RecoveredAt")
			}
		}
	}
	drain(t, n, 4000, 60000)
	if recovered == 0 {
		t.Skip("no recovery at this seed")
	}
	if int64(recovered) != n.Counters().Recoveries {
		t.Fatalf("recovered %d, counter says %d", recovered, n.Counters().Recoveries)
	}
}

// TestConcurrentRecoveryParallelism verifies the point of the mode: multiple
// packets can be on the Deadlock Buffer lanes at once.
func TestConcurrentRecoveryParallelism(t *testing.T) {
	n := mustNet(t, concurrentConfig(12))
	maxSimultaneous := 0
	for i := 0; i < 8000; i++ {
		n.Step()
		onDB := 0
		for _, r := range n.Routers() {
			for lane := 0; lane < r.DBLanes(); lane++ {
				if r.DBLaneOwner(lane) != nil {
					onDB++
				}
			}
		}
		if onDB > maxSimultaneous {
			maxSimultaneous = onDB
		}
	}
	if maxSimultaneous < 2 {
		t.Skipf("never saw concurrent DB use (max %d); seed too gentle", maxSimultaneous)
	}
}

func TestConcurrentRequiresFlitByFlit(t *testing.T) {
	cfg := concurrentConfig(1)
	cfg.Router.Alloc = 1 // PacketByPacket
	if _, err := New(cfg); err == nil {
		t.Fatal("concurrent recovery with packet-by-packet allocation must fail")
	}
}

// TestInjectionThrottle verifies the paper's injection-limitation citation:
// with a tight throttle each node never has more than the limit in flight.
func TestInjectionThrottle(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.9, 33)
	cfg.InjectionThrottle = 2
	n := mustNet(t, cfg)
	perSrc := map[topology.Node]int{}
	n.OnDeliver = func(p *packet.Packet) { perSrc[p.Src]-- }
	// Track outstanding via injections: count at injection time by scanning
	// counters is awkward; instead verify the global bound holds.
	for i := 0; i < 4000; i++ {
		n.Step()
		if fly := n.InFlight(); fly > int64(topo.Nodes()*cfg.InjectionThrottle) {
			t.Fatalf("in-flight %d exceeds throttle bound %d", fly, topo.Nodes()*cfg.InjectionThrottle)
		}
	}
	if !n.RunUntilDrained(30000) {
		t.Fatal("throttled network failed to drain")
	}
}

// TestReceptionChannelsSpeedUpHotspot checks that widening the reception
// path raises delivered throughput under hot-spot traffic (future work the
// paper suggests: "increasing the number of reception channels at nodes to
// quickly drain packets").
func TestReceptionChannelsSpeedUpHotspot(t *testing.T) {
	run := func(rx int) int64 {
		topo := topology.MustTorus(4, 4)
		cfg := testConfig(topo, routing.Disha(3), 0.6, 77)
		cfg.Router.ReceptionChannels = rx
		cfg.Pattern = hotPattern(topo)
		n := mustNet(t, cfg)
		n.Run(6000)
		return n.Counters().PacketsDelivered
	}
	one, four := run(1), run(4)
	if four <= one {
		t.Fatalf("4 reception channels (%d delivered) not better than 1 (%d)", four, one)
	}
}
