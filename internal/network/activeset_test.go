package network

import (
	"bytes"
	"math/bits"
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// activeCount returns how many routers are currently in the active set.
func (n *Network) activeCount() int {
	c := 0
	for _, w := range n.actMask {
		c += bits.OnesCount64(w)
	}
	return c
}

// activeSetVariants extends the kernel conformance matrix with the cases the
// active-set scheduler is most likely to get wrong: long idle stretches under
// the adaptive time-out (the decay catch-up must cross epoch boundaries) and
// bursty injection (routers oscillate between drained and busy).
func activeSetVariants() []kernelVariant {
	vs := kernelVariants()
	vs = append(vs,
		kernelVariant{"adaptive-low-load", func() Config {
			cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.05, 17)
			cfg.Router.VCs = 2
			cfg.Router.Timeout = 4
			cfg.Router.AdaptiveTimeout = true
			return cfg
		}},
		kernelVariant{"bursty-low-load", func() Config {
			cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.1, 23)
			cfg.Router.VCs = 2
			cfg.Router.Timeout = 4
			cfg.Burst = traffic.BurstConfig{MeanBurst: 8, MeanIdle: 56}
			return cfg
		}},
	)
	return vs
}

// TestActiveSetMatchesFullScan proves the scheduler's determinism contract
// directly: with the active set enabled (serial and sharded) execution is
// fingerprint-identical, cycle range by cycle range, to the full-scan kernel
// on every recovery mode, allocation policy, and the idle-heavy corner
// cases. 1200 cycles crosses several adaptive-decay epochs (256 idle timer
// ticks each), so the closed-form catch-up is exercised well past one epoch.
func TestActiveSetMatchesFullScan(t *testing.T) {
	const cycles = 1200
	for _, v := range activeSetVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			full := v.build()
			full.Kernel.DisableActiveSet = true
			baseline := mustNet(t, full)
			defer baseline.Close()

			serialCfg := v.build()
			serial := mustNet(t, serialCfg)
			defer serial.Close()
			shardedCfg := v.build()
			shardedCfg.Kernel.Shards = 4
			sharded := mustNet(t, shardedCfg)
			defer sharded.Close()

			sawIdle := false
			for i := 0; i < cycles; i++ {
				baseline.Step()
				serial.Step()
				sharded.Step()
				if serial.activeCount() < len(serial.routers) {
					sawIdle = true
				}
				if i%20 == 19 {
					want := baseline.FingerprintHex()
					if got := serial.FingerprintHex(); got != want {
						t.Fatalf("active-set serial diverged by cycle %d:\n got %s\nwant %s", i+1, got, want)
					}
					if got := sharded.FingerprintHex(); got != want {
						t.Fatalf("active-set sharded diverged by cycle %d:\n got %s\nwant %s", i+1, got, want)
					}
					if err := serial.CheckInvariants(); err != nil {
						t.Fatalf("cycle %d: %v", i+1, err)
					}
				}
			}
			if !sawIdle {
				t.Fatal("comparison never exercised a skipped router; the test is vacuous")
			}
			if baseline.activeCount() != len(baseline.routers) {
				t.Fatal("DisableActiveSet deactivated a router")
			}
		})
	}
}

// TestActiveSetDeactivatesAndReawakens pins the scheduler's lifecycle: under
// light load most routers sleep, a drained network sleeps entirely, and the
// sleeping state is consistent with the soundness invariant throughout.
func TestActiveSetDeactivatesAndReawakens(t *testing.T) {
	cfg := testConfig(topology.MustTorus(8, 8), routing.Disha(0), 0.05, 5)
	n := mustNet(t, cfg)
	defer n.Close()

	minActive, maxActive := len(n.routers), 0
	for i := 0; i < 400; i++ {
		n.Step()
		a := n.activeCount()
		if a < minActive {
			minActive = a
		}
		if a > maxActive {
			maxActive = a
		}
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// At 5% load on 64 nodes the steady state must be mostly asleep, and
	// wakes must actually happen (the network is not permanently idle).
	if minActive > len(n.routers)/2 {
		t.Errorf("min active %d of %d: scheduler barely deactivates at 5%% load", minActive, len(n.routers))
	}
	if maxActive == 0 {
		t.Fatal("no router ever active under injection")
	}
	if !n.RunUntilDrained(10000) {
		t.Fatal("network did not drain")
	}
	n.Step() // one more cycle so the post-drain sweep runs
	if a := n.activeCount(); a != 0 {
		t.Errorf("%d routers active in a drained network, want 0", a)
	}
}

// TestActiveSetSnapshotCrossMode proves activation state is derived, not
// serialized: a snapshot taken from an active-set network restores into a
// full-scan network (and vice versa) and both continuations stay
// fingerprint-identical, cycle by cycle.
func TestActiveSetSnapshotCrossMode(t *testing.T) {
	build := func(disable bool) Config {
		cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.3, 29)
		cfg.Router.VCs = 2
		cfg.Router.Timeout = 4
		cfg.Kernel.DisableActiveSet = disable
		return cfg
	}
	src := mustNet(t, build(false))
	defer src.Close()
	src.Run(300)

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := make([]*Network, 2)
	for i, disable := range []bool{false, true} {
		rn := mustNet(t, build(disable))
		defer rn.Close()
		if err := rn.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		if got, want := rn.FingerprintHex(), src.FingerprintHex(); got != want {
			t.Fatalf("restore (disable=%v) fingerprint mismatch:\n got %s\nwant %s", disable, got, want)
		}
		restored[i] = rn
	}
	for i := 0; i < 200; i++ {
		src.Step()
		restored[0].Step()
		restored[1].Step()
		if i%20 == 19 {
			want := src.FingerprintHex()
			if got := restored[0].FingerprintHex(); got != want {
				t.Fatalf("active-set restore diverged by cycle %d", i+1)
			}
			if got := restored[1].FingerprintHex(); got != want {
				t.Fatalf("full-scan restore diverged by cycle %d", i+1)
			}
		}
	}
}

// TestActiveSetAbortRetryPurgeGauges pins the subtlest catch-up rule: a
// router drained by an abort-retry purge goes to sleep with its
// blocked/presumed telemetry gauges still holding the pre-purge values (the
// full scan only clears them on the next timer pass). The catch-up must
// clear them on any later observation, so telemetry and digests agree with
// the full scan. Covered end to end by lockstep above; this isolates the
// rule on one router.
func TestActiveSetAbortRetryPurgeGauges(t *testing.T) {
	cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.6, 7)
	cfg.Router.VCs = 2
	cfg.Router.BufferDepth = 1
	cfg.Router.Timeout = 4
	cfg.Router.Recovery = router.RecoveryAbortRetry
	cfg.Router.DeadlockBufferDepth = 0
	n := mustNet(t, cfg)
	defer n.Close()
	n.Run(400)
	if n.Counters().PacketsKilled == 0 {
		t.Skip("no abort-retry kills at this seed; gauge rule not exercisable")
	}
	n.StopInjection()
	if !n.RunUntilDrained(10000) {
		t.Fatal("network did not drain")
	}
	n.Run(3)
	for _, r := range n.Routers() { // Routers() syncs skipped routers
		if r.BlockedHeaders() != 0 || r.PresumedHeaders() != 0 {
			t.Fatalf("node %d gauges stale after drain: blocked=%d presumed=%d",
				r.NodeID(), r.BlockedHeaders(), r.PresumedHeaders())
		}
	}
}
