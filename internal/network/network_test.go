package network

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func testConfig(topo topology.Graph, alg routing.Algorithm, load float64, seed uint64) Config {
	return Config{
		Topo:      topo,
		Router:    router.Default(),
		Algorithm: alg,
		Pattern:   traffic.Uniform(topo),
		LoadRate:  load,
		MsgLen:    8,
		Seed:      seed,
	}
}

func mustNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// drain runs, stops injection and insists the network empties.
func drain(t *testing.T, n *Network, run, limit int) {
	t.Helper()
	n.Run(run)
	if !n.RunUntilDrained(limit) {
		c := n.Counters()
		t.Fatalf("network did not drain: injected=%d delivered=%d in-flight=%d seizures=%d timeouts=%d",
			c.PacketsInjected, c.PacketsDelivered, n.InFlight(), c.TokenSeizures, c.TimeoutEvents)
	}
}

func TestSmokeDishaUniform(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(0), 0.3, 1))
	drain(t, n, 2000, 5000)
	c := n.Counters()
	if c.PacketsDelivered == 0 {
		t.Fatal("no packets delivered")
	}
	if c.PacketsDelivered != c.PacketsInjected {
		t.Fatalf("delivered %d != injected %d", c.PacketsDelivered, c.PacketsInjected)
	}
	if c.FlitsDelivered != c.PacketsDelivered*8 {
		t.Fatalf("flit conservation violated: %d flits for %d packets", c.FlitsDelivered, c.PacketsDelivered)
	}
}

func TestAllAlgorithmsDeliverLowLoad(t *testing.T) {
	algs := []routing.Algorithm{
		routing.DOR(), routing.NegativeFirst(), routing.DallyAoki(),
		routing.Duato(), routing.Disha(0), routing.Disha(3),
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			topo := topology.MustTorus(4, 4)
			cfg := testConfig(topo, alg, 0.2, 7)
			if alg.Name() != "disha-m0" && alg.Name() != "disha-m3" {
				// Avoidance schemes run without detection/recovery.
				cfg.Router.Timeout = 0
				cfg.Router.DeadlockBufferDepth = 0
			}
			n := mustNet(t, cfg)
			drain(t, n, 3000, 8000)
			c := n.Counters()
			if c.PacketsDelivered < 50 {
				t.Fatalf("only %d packets delivered", c.PacketsDelivered)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Counters {
		topo := topology.MustTorus(4, 4)
		n := mustNet(t, testConfig(topo, routing.Disha(3), 0.5, 99))
		n.Run(3000)
		return n.Counters()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedsDiffer(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	a := mustNet(t, testConfig(topo, routing.Disha(0), 0.4, 1))
	b := mustNet(t, testConfig(topo, routing.Disha(0), 0.4, 2))
	a.Run(2000)
	b.Run(2000)
	if a.Counters() == b.Counters() {
		t.Fatal("different seeds produced identical counters (suspicious)")
	}
}

func TestLatencyLowerBound(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.1, 3)
	n := mustNet(t, cfg)
	violations := 0
	n.OnDeliver = func(p *packet.Packet) {
		dist := topo.Distance(p.Src, p.Dst)
		// A packet needs at least dist cycles for the header plus
		// MsgLen-1 cycles for the body, measured from injection.
		if int(p.NetworkLatency()) < dist+cfg.MsgLen-1 {
			violations++
		}
	}
	drain(t, n, 2000, 5000)
	if violations > 0 {
		t.Fatalf("%d packets beat the physical latency lower bound", violations)
	}
}

func TestDishaM0IsMinimal(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(0), 0.5, 4))
	n.OnDeliver = func(p *packet.Packet) {
		if p.OnDB {
			return // the DB lane restarts dimension-order from the recovery point
		}
		if p.Hops != topo.Distance(p.Src, p.Dst) {
			t.Fatalf("minimal packet %v took %d hops, distance %d", p, p.Hops, topo.Distance(p.Src, p.Dst))
		}
		if p.Misroutes != 0 {
			t.Fatalf("M=0 packet %v misrouted %d times", p, p.Misroutes)
		}
	}
	drain(t, n, 3000, 8000)
}

func TestDishaMisrouteBound(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(3), 0.8, 5))
	n.OnDeliver = func(p *packet.Packet) {
		if p.Misroutes > 3 {
			t.Fatalf("packet %v exceeded misroute bound: %d", p, p.Misroutes)
		}
	}
	drain(t, n, 3000, 20000)
}

// TestRecoveryUnderStress drives Disha with a single VC and shallow buffers
// at saturating load: true deadlocks form and every one must be recovered
// through the Deadlock Buffer lane.
func TestRecoveryUnderStress(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.9, 12)
	cfg.Router.VCs = 1
	cfg.Router.BufferDepth = 1
	cfg.Router.Timeout = 8
	n := mustNet(t, cfg)
	drain(t, n, 4000, 60000)
	c := n.Counters()
	if c.TokenSeizures == 0 {
		t.Fatal("expected token seizures under 1-VC saturating load")
	}
	if c.PacketsDelivered != c.PacketsInjected {
		t.Fatalf("lost packets: injected %d delivered %d", c.PacketsInjected, c.PacketsDelivered)
	}
	if n.Token().Held() {
		t.Fatal("token still held after drain")
	}
}

// TestDishaWithoutRecoveryWedges shows the contrapositive: the same
// unrestricted routing with detection disabled deadlocks and cannot drain.
func TestDishaWithoutRecoveryWedges(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.9, 12)
	cfg.Router.VCs = 1
	cfg.Router.BufferDepth = 1
	cfg.Router.Timeout = 0 // no detection, no token, no recovery
	cfg.Router.DeadlockBufferDepth = 0
	n := mustNet(t, cfg)
	n.Run(4000)
	if n.RunUntilDrained(20000) {
		t.Skip("no deadlock formed at this seed; expected wedge did not occur")
	}
	if n.InFlight() == 0 {
		t.Fatal("network failed to drain but nothing in flight?")
	}
}

func TestAvoidanceSchemesNeverTimeout(t *testing.T) {
	// With detection enabled but avoidance routing, timeouts may fire only
	// as false positives; the schemes must still deliver everything.
	for _, alg := range []routing.Algorithm{routing.DOR(), routing.Duato()} {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			topo := topology.MustTorus(4, 4)
			cfg := testConfig(topo, alg, 0.3, 13)
			cfg.Router.Timeout = 0
			cfg.Router.DeadlockBufferDepth = 0
			n := mustNet(t, cfg)
			drain(t, n, 5000, 10000)
		})
	}
}

func TestPacketByPacketMode(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.3, 17)
	cfg.Router.Alloc = router.PacketByPacket
	n := mustNet(t, cfg)
	drain(t, n, 3000, 20000)
	c := n.Counters()
	if c.PacketsDelivered != c.PacketsInjected {
		t.Fatalf("pbp lost packets: injected %d delivered %d", c.PacketsInjected, c.PacketsDelivered)
	}
}

func TestSingleFlitPackets(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.3, 19)
	cfg.MsgLen = 1
	n := mustNet(t, cfg)
	drain(t, n, 2000, 5000)
	c := n.Counters()
	if c.PacketsDelivered == 0 || c.FlitsDelivered != c.PacketsDelivered {
		t.Fatalf("single-flit accounting wrong: %+v", c)
	}
}

func TestMeshTopologyRuns(t *testing.T) {
	topo := topology.MustMesh(4, 4)
	n := mustNet(t, testConfig(topo, routing.Disha(0), 0.3, 23))
	drain(t, n, 2000, 6000)
}

func TestSourceQueueCap(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.95, 29)
	cfg.SourceQueueCap = 2
	n := mustNet(t, cfg)
	n.Run(5000)
	c := n.Counters()
	if c.PacketsRefused == 0 {
		t.Fatal("expected refusals with a tiny source queue at high load")
	}
	if c.PacketsOffered != c.PacketsRefused+c.PacketsInjected+n.QueuedPackets() {
		t.Fatalf("offered %d != refused %d + injected %d + queued %d",
			c.PacketsOffered, c.PacketsRefused, c.PacketsInjected, n.QueuedPackets())
	}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	bad := []Config{
		{},                                     // nothing set
		{Topo: topo},                           // no algorithm
		{Topo: topo, Algorithm: routing.DOR()}, // no pattern
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	// Too few VCs for the algorithm.
	cfg := testConfig(topo, routing.Duato(), 0.1, 1)
	cfg.Router.VCs = 2
	if _, err := New(cfg); err == nil {
		t.Error("Duato with 2 VCs on a torus should fail")
	}
	// Negative load.
	cfg = testConfig(topo, routing.DOR(), -1, 1)
	cfg.LoadRate = -0.5
	if _, err := New(cfg); err == nil {
		t.Error("negative load should fail")
	}
}

func TestHopsAtLeastDistance(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	mesh := topology.MustMesh(4, 4)
	for _, alg := range []routing.Algorithm{routing.DOR(), routing.NegativeFirst(), routing.DallyAoki(), routing.Duato()} {
		alg := alg
		cfg := testConfig(topo, alg, 0.3, 31)
		cfg.Router.Timeout = 0
		cfg.Router.DeadlockBufferDepth = 0
		n := mustNet(t, cfg)
		n.OnDeliver = func(p *packet.Packet) {
			d := topo.Distance(p.Src, p.Dst)
			if alg.Name() == "turn-negative-first" {
				// Negative-first never uses wraparound links (see the
				// routing package), so it is minimal w.r.t. the mesh.
				d = mesh.Distance(p.Src, p.Dst)
			}
			if p.Hops != d {
				t.Fatalf("%s: minimal algorithm took %d hops for distance %d", alg.Name(), p.Hops, d)
			}
		}
		drain(t, n, 2000, 8000)
	}
}

func TestTokenReleaseState(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.9, 37)
	cfg.Router.VCs = 1
	cfg.Router.BufferDepth = 1
	n := mustNet(t, cfg)
	drain(t, n, 3000, 60000)
	tok := n.Token()
	if tok.Held() || tok.Holder() != nil {
		t.Fatal("token must be free after drain")
	}
	if tok.Seizures() == 0 {
		t.Skip("no recovery occurred at this seed")
	}
}

func TestRecoveredPacketsSinkViaDB(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.9, 41)
	cfg.Router.VCs = 1
	cfg.Router.BufferDepth = 1
	n := mustNet(t, cfg)
	recovered := 0
	n.OnDeliver = func(p *packet.Packet) {
		if p.OnDB {
			recovered++
			if !p.SeizedToken || p.RecoveredAt < 0 {
				t.Fatalf("recovered packet %v has inconsistent state", p)
			}
		}
	}
	drain(t, n, 3000, 60000)
	if recovered == 0 {
		t.Skip("no recovery occurred at this seed")
	}
	if int64(recovered) != n.Counters().TokenSeizures {
		t.Fatalf("recovered %d packets but %d seizures", recovered, n.Counters().TokenSeizures)
	}
}

// hotPattern builds a 30% hot-spot workload used by reception-channel tests.
func hotPattern(topo topology.Topology) traffic.Pattern {
	return traffic.HotSpot(traffic.Uniform(topo), topology.Node(5), 0.3)
}

// TestHigherDimensionTopologies drains Disha and DOR on a 3D torus and a
// hypercube, exercising n-dimensional routing end to end.
func TestHigherDimensionTopologies(t *testing.T) {
	topos := []topology.Topology{
		topology.MustTorus(3, 3, 3),
		topology.MustHypercube(5),
	}
	for _, topo := range topos {
		topo := topo
		t.Run(topo.Name(), func(t *testing.T) {
			cfg := testConfig(topo, routing.Disha(0), 0.25, 51)
			n := mustNet(t, cfg)
			drain(t, n, 2000, 20000)
			cfg2 := testConfig(topo, routing.DOR(), 0.25, 52)
			cfg2.Router.Timeout = 0
			cfg2.Router.DeadlockBufferDepth = 0
			n2 := mustNet(t, cfg2)
			drain(t, n2, 2000, 20000)
		})
	}
}

// TestTokenCirculatesWholeNetwork verifies the token visits every router:
// recoveries happen at many distinct nodes over a long stressed run.
func TestTokenCirculatesWholeNetwork(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.9, 10)
	cfg.Router.VCs = 1
	cfg.Router.BufferDepth = 1
	n := mustNet(t, cfg)
	nodes := map[topology.Node]bool{}
	n.OnDeliver = func(p *packet.Packet) {}
	for i := 0; i < 12000; i++ {
		n.Step()
	}
	for _, r := range n.Routers() {
		if r.Stats().Recoveries > 0 {
			nodes[r.NodeID()] = true
		}
	}
	if len(nodes) < 4 {
		t.Skipf("recoveries at only %d nodes; seed too gentle for this check", len(nodes))
	}
	if !n.RunUntilDrained(60000) {
		t.Fatal("did not drain")
	}
}

// TestBurstyTraffic runs Disha under on/off bursty injection (the paper's
// conclusions claim it "performs well under bursty traffic"): the network
// must absorb the bursts and drain completely.
func TestBurstyTraffic(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.5, 61)
	cfg.Burst = traffic.BurstConfig{MeanBurst: 50, MeanIdle: 150}
	n := mustNet(t, cfg)
	drain(t, n, 6000, 30000)
	c := n.Counters()
	if c.PacketsDelivered < 100 {
		t.Fatalf("bursty run delivered only %d packets", c.PacketsDelivered)
	}
	if c.PacketsDelivered != c.PacketsInjected {
		t.Fatal("bursty run lost packets")
	}
}

// TestAdaptiveTimeout exercises the paper's "programmable T_out" future
// work: with a deliberately tiny base time-out, the adaptive variant must
// produce fewer false detections than the fixed one while still delivering
// everything.
func TestAdaptiveTimeout(t *testing.T) {
	run := func(adaptive bool) Counters {
		topo := topology.MustTorus(4, 4)
		cfg := testConfig(topo, routing.Disha(0), 0.6, 91)
		cfg.Router.Timeout = 2 // aggressively small: many false detections
		cfg.Router.AdaptiveTimeout = adaptive
		n := mustNet(t, cfg)
		n.Run(4000)
		if !n.RunUntilDrained(60000) {
			t.Fatalf("adaptive=%v did not drain", adaptive)
		}
		return n.Counters()
	}
	fixed, adaptive := run(false), run(true)
	if fixed.FalseDetections == 0 {
		t.Skip("no false detections at this seed; cannot compare")
	}
	if adaptive.FalseDetections >= fixed.FalseDetections {
		t.Fatalf("adaptive T_out did not reduce false detections: %d vs %d",
			adaptive.FalseDetections, fixed.FalseDetections)
	}
	if adaptive.PacketsDelivered != adaptive.PacketsInjected {
		t.Fatal("adaptive run lost packets")
	}
}

// TestEffectiveTimeoutBacksOffAndDecays checks the controller directly.
func TestEffectiveTimeoutBacksOff(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.7, 91)
	cfg.Router.Timeout = 2
	cfg.Router.AdaptiveTimeout = true
	n := mustNet(t, cfg)
	n.Run(3000)
	raised := 0
	for _, r := range n.Routers() {
		if r.EffectiveTimeout() > 2 {
			raised++
		}
		if r.EffectiveTimeout() > 16 { // 8x base cap
			t.Fatalf("effective timeout %d exceeds cap", r.EffectiveTimeout())
		}
	}
	if raised == 0 {
		t.Skip("no router backed off at this seed")
	}
	// With injection stopped the network empties and time-outs decay back.
	n.StopInjection()
	n.Run(300 * 16 * 2) // enough decay epochs for the worst case
	for _, r := range n.Routers() {
		if r.EffectiveTimeout() != 2 {
			t.Fatalf("timeout did not decay to base: %d", r.EffectiveTimeout())
		}
	}
}
