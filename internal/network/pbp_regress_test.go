package network

import (
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestPBPSelfCrossingWormholeDrains pins a configuration (found by the
// conservation property test) in which a misrouted wormhole revisits a router
// and enters it twice through the same physical input port. Packet-by-packet
// allocation used to forbid any second crossbar connection from a wired input
// port, even for the packet already holding it, so the earlier segment could
// never connect while the later segment sat blocked on credits that only the
// earlier segment's progress would free — a self-deadlock invisible to the
// timeout detector because the header had already been delivered. The
// allocator now admits same-packet connection sharing; this run must drain.
func TestPBPSelfCrossingWormholeDrains(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	rc := router.Default()
	rc.VCs = 3
	rc.BufferDepth = 3
	rc.Timeout = 8
	rc.Recovery = router.RecoveryAbortRetry
	rc.DeadlockBufferDepth = 0
	rc.Alloc = router.PacketByPacket
	n, err := New(Config{
		Topo:      topo,
		Router:    rc,
		Algorithm: routing.Disha(3),
		Pattern:   traffic.Uniform(topo),
		LoadRate:  0.35,
		MsgLen:    8,
		Seed:      0xc785f0fc4979761f,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(800)
	if !n.RunUntilDrained(30000) {
		t.Fatalf("network did not drain: %d packets in flight", n.InFlight())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
