package network

import (
	"math/bits"

	"repro/internal/sim"
)

// Active-set scheduling for the phased step kernel.
//
// The paper's whole premise is that deadlock — and congestion generally —
// is the uncommon case: at the loads of its figures most routers are idle
// most cycles. The full-scan kernel nonetheless pays route-compute, switch
// allocation and timer cost for every router every cycle. The active-set
// scheduler tracks which routers can possibly do work and has the stage and
// timer phases visit only those, while reproducing a skipped router's
// (tiny, closed-form) idle evolution on demand so execution stays
// byte-identical to the full scan — the golden-digest conformance suite
// and the snapshot lockstep tests prove it.
//
// Representation: one bit per router in actMask, plus idleSince[i] — the
// last cycle through which inactive router i's state is fully up to date.
// All mask mutations happen in the serial phases of Step (injection wakes,
// commit wakes, the end-of-cycle deactivation sweep); the sharded stage and
// timer phases only read it, so the bitmap needs no synchronization.
//
// Lifecycle:
//
//   - Every router starts active.
//   - A router deactivates at end of cycle when fully drained: no buffered
//     flits anywhere (input VCs, Deadlock Buffer lanes) and no
//     packet-by-packet crossbar connection state. The crossbar condition
//     matters: a drained router with a stale connection still releases it
//     on its next staging pass, which is a state change the skip would
//     otherwise lose. Empty-but-owned VCs and held output VCs are fine to
//     sleep on — they change only when a flit moves, and every flit
//     movement into the router is a wake.
//   - A router activates when it can next touch a flit: a successful
//     injection (wakeAtInject, phase 1) or an incoming transfer — neighbor
//     flit, Deadlock Buffer admission (wakeAtCommit, phase 3). Timer
//     expiry and Token arrival need no wake of their own: both require a
//     resident header, so the router is already active. Waking fast-
//     forwards the missed idle evolution (router.CatchUpIdle) before the
//     router next executes live.
//
// The two wake flavors differ by exactly one phase: a router woken during
// injection still runs the current cycle's stage and timer phases live,
// while a router woken during commit has already missed the current
// cycle's stage phase (phase 2 ran before the flit arrived) but runs its
// timer phase live — so the newly arrived header starts accruing blocked
// time the same cycle it arrives, as under the full scan.
//
// When KernelConfig.DisableActiveSet is set, every bit simply stays set and
// the deactivation sweep is skipped: all loops become full scans through
// the same code path, and the digest is unchanged either way.

// setActive marks router i active.
func (n *Network) setActive(i int) { n.actMask[i>>6] |= 1 << (uint(i) & 63) }

// clearActive marks router i inactive.
func (n *Network) clearActive(i int) { n.actMask[i>>6] &^= 1 << (uint(i) & 63) }

// activeOn reports whether router i is active.
func (n *Network) activeOn(i int) bool { return n.actMask[i>>6]&(1<<(uint(i)&63)) != 0 }

// nextActive returns the smallest active router index in [from, hi), or -1.
// It scans the bitmap a word at a time, so iterating the whole active set
// costs O(nodes/64 + |active|) and allocates nothing.
func (n *Network) nextActive(from, hi int) int {
	if from >= hi {
		return -1
	}
	w := from >> 6
	word := n.actMask[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if i >= hi {
				return -1
			}
			return i
		}
		w++
		if w >= len(n.actMask) || w<<6 >= hi {
			return -1
		}
		word = n.actMask[w]
	}
}

// wakeAtInject activates router i during the injection phase of cycle now.
// The router has missed both the stage and timer phases of every cycle in
// (idleSince, now); it will run cycle now entirely live.
func (n *Network) wakeAtInject(i int, now sim.Cycle) {
	if n.activeOn(i) {
		return
	}
	idle := int(now - 1 - n.idleSince[i])
	n.routers[i].CatchUpIdle(idle, idle)
	n.setActive(i)
}

// wakeAtCommit activates router i during the commit phase of cycle now
// (a flit just arrived from a neighbor or entered a Deadlock Buffer). The
// router additionally missed cycle now's stage phase — it ran before the
// flit arrived — but runs cycle now's timer phase live, so the arriving
// header accrues blocked time from this cycle on, exactly as under the
// full scan.
func (n *Network) wakeAtCommit(i int, now sim.Cycle) {
	if n.activeOn(i) {
		return
	}
	idle := int(now - n.idleSince[i])
	n.routers[i].CatchUpIdle(idle, idle-1)
	n.setActive(i)
}

// syncIdle brings every inactive router's state up to the current cycle
// without activating it. Fingerprint and Snapshot call it first, so digests
// and snapshots are indistinguishable from a kernel that never skips; the
// routers stay asleep afterwards (idleSince advances to now).
func (n *Network) syncIdle() {
	now := n.clock.Now()
	for i := range n.routers {
		if n.activeOn(i) {
			continue
		}
		if idle := int(now - n.idleSince[i]); idle > 0 {
			n.routers[i].CatchUpIdle(idle, idle)
			n.idleSince[i] = now
		}
	}
}

// deactivateDrained is the end-of-cycle sweep: every active router that is
// fully drained — no buffered flits and no crossbar connection state — goes
// to sleep as of cycle now. It checks every active router, not only this
// cycle's transfer endpoints, because a router can also drain by purge
// (abort-retry) or hold only stale crossbar state that its stage phase just
// released.
func (n *Network) deactivateDrained(now sim.Cycle) {
	if n.activeSetOff {
		return
	}
	hi := len(n.routers)
	for i := n.nextActive(0, hi); i >= 0; i = n.nextActive(i+1, hi) {
		r := n.routers[i]
		if r.FlitCount() == 0 && r.CrossbarIdle() {
			n.clearActive(i)
			n.idleSince[i] = now
		}
	}
}

// rebuildActiveSet reconstructs activation state from restored router state
// (Restore calls it; activation is derived, never serialized). Snapshots are
// taken between cycles, after the deactivation sweep and a syncIdle, so
// "drained ⇔ inactive with idleSince = now" holds exactly in the network
// that produced the snapshot — rebuilding from the same predicate yields a
// byte-identical continuation.
func (n *Network) rebuildActiveSet() {
	now := n.clock.Now()
	hi := len(n.routers)
	for i := 0; i < hi; i++ {
		r := n.routers[i]
		n.idleSince[i] = now
		if !n.activeSetOff && r.FlitCount() == 0 && r.CrossbarIdle() {
			n.clearActive(i)
		} else {
			n.setActive(i)
		}
	}
}
