package network

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a SHA-256 digest over the network's complete
// observable state: network-wide counters, the clock, packet-ID allocator,
// per-node source-queue and injection-stream state, per-source outstanding
// counts, recovery-Token state, and every router's full microstate (via
// router.AppendState). Two networks with equal fingerprints behave
// identically from here on for equal future inputs; the golden-digest suite
// uses this to prove the sharded kernel is byte-identical to the serial one
// and to pin simulation behavior against a committed golden file.
func (n *Network) Fingerprint() [32]byte {
	// Fast-forward routers the active-set scheduler is currently skipping,
	// so the digest never depends on which scheduler produced the state.
	n.syncIdle()
	b := make([]byte, 0, 4096)
	put := func(v int64) {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}

	c := n.Counters()
	put(int64(c.Cycles))
	put(c.PacketsOffered)
	put(c.PacketsRefused)
	put(c.PacketsInjected)
	put(c.PacketsDelivered)
	put(c.FlitsDelivered)
	put(c.PacketsKilled)
	put(c.TokenSeizures)
	put(c.Recoveries)
	put(c.TimeoutEvents)
	put(c.FalseDetections)
	put(c.MisrouteHops)
	put(c.Preemptions)
	put(c.BlockedCycles)
	put(c.TokenTransit)
	put(c.TokenHold)
	put(c.PacketsLost)
	put(c.FlitsLost)
	put(c.PacketsUnroutable)

	put(int64(n.nextID))
	for i := range n.nis {
		q := &n.nis[i]
		put(int64(q.queued()))
		for j := q.qhead; j < len(q.queue); j++ {
			put(int64(q.queue[j].ID))
		}
		if q.cur != nil {
			put(int64(q.cur.ID))
			put(int64(q.seq))
		} else {
			put(-1)
		}
	}
	for _, o := range n.outstanding {
		put(int64(o))
	}
	if n.token != nil {
		put(int64(n.token.Position()))
		if n.token.Held() {
			put(int64(n.token.Holder().ID))
		} else {
			put(-1)
		}
	}
	for _, r := range n.routers {
		b = r.AppendState(b)
	}
	return sha256.Sum256(b)
}

// FingerprintHex returns Fingerprint as a hex string, the form committed to
// the golden-digest file.
func (n *Network) FingerprintHex() string {
	d := n.Fingerprint()
	return hex.EncodeToString(d[:])
}
