package network

import (
	"fmt"

	"repro/internal/router"
	"repro/internal/topology"
)

// FailLink severs the bidirectional link between node and its neighbor on
// port, modeling a hard link fault on an idle link. The paper presents fault
// tolerance as a Disha capability: fully adaptive routing steers around
// faults (with misrouting where needed), and any packet stranded by a fault
// times out and escapes through the Deadlock Buffer lane, which is re-routed
// over live links only (a breadth-first next-hop table replaces
// dimension-order routing).
//
// FailLink is the conservative entry point: it refuses links carrying
// traffic, so it never loses flits. Dynamic mid-stream faults ARE modeled —
// by KillLink and the scheduled reconfiguration events (see reconfig.go),
// which drop the packets whose flits are committed to the dying link and
// account them in Counters.PacketsLost / FlitsLost. Both paths record the
// fault in the reconfiguration log, and a failed link can later be restored
// with HealLink.
//
// Restrictions, each returning an error: the link must exist and be idle;
// the live network must remain connected; and concurrent recovery is
// unsupported (its Hamiltonian lanes assume an intact path).
func (n *Network) FailLink(node topology.Node, port int) error {
	if n.cfg.Router.Recovery == router.RecoveryConcurrent {
		return fmt.Errorf("network: fault injection is not supported with concurrent recovery")
	}
	if int(node) < 0 || int(node) >= len(n.routers) || port < 0 || port >= n.topo.Degree() {
		return fmt.Errorf("network: no such link %d/%d", node, port)
	}
	a := n.routers[node]
	b := a.Neighbor(port)
	if b == nil {
		return fmt.Errorf("network: link %d/%d does not exist (or already failed)", node, port)
	}
	if a.LinkBusy(port) || b.LinkBusy(a.ReverseAt(port)) {
		return fmt.Errorf("network: link %d/%d is carrying traffic; drain before failing it", node, port)
	}
	// An idle link has no victims, so the mid-stream kill path degenerates to
	// exactly the static fault injection this API always provided.
	return n.applyNow(ReconfigEvent{Cycle: n.clock.Now(), Kind: ReconfigKillLink, Node: node, Port: port})
}

// FailedLinks returns how many links are currently down (failed or killed,
// minus healed). Links downed because an endpoint router was killed are not
// counted; they come back when the router heals.
func (n *Network) FailedLinks() int { return n.failedLinks }

// rebuildDBTable computes, for every destination, the breadth-first
// next-hop port at every node over live links, and installs the table in
// every router. The per-destination BFS tree is loop-free, so a recovered
// packet following it always reaches its destination — preserving the
// recovery theorem's connectivity requirement (Lemma 1) under faults.
func (n *Network) rebuildDBTable() {
	nodes := len(n.routers)
	table := make([]int32, nodes*nodes)
	for i := range table {
		table[i] = int32(router.PortEject)
	}
	dist := make([]int, nodes)
	var queue []topology.Node
	for d := 0; d < nodes; d++ {
		dst := topology.Node(d)
		if n.deadCount != 0 && n.routerDead[dst] {
			continue // unreachable; no packet addressed to it survives a kill
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], dst)
		// Reverse BFS from the destination: for each node discovered via a
		// live link, the next hop toward dst is the port back along it.
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			r := n.routers[cur]
			for p := 0; p < n.topo.Degree(); p++ {
				nb := r.Neighbor(p)
				if nb == nil {
					continue
				}
				v := nb.NodeID()
				if dist[v] >= 0 {
					continue
				}
				dist[v] = dist[cur] + 1
				// The link is bidirectional: from v, the reverse port leads
				// to cur, one hop closer to dst.
				table[d*nodes+int(v)] = int32(r.ReverseAt(p))
				queue = append(queue, v)
			}
		}
	}
	for _, r := range n.routers {
		r.SetDBRouteTable(table)
	}
}
