package network

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/snapshot"
	"repro/internal/topology"
)

// Regenerate the committed snapshot-format fixture after an intentional
// format change (remember to bump snapshotVersion) with:
//
//	go test ./internal/network -run TestSnapshotGoldenFixture -update-snapshot
var updateSnapshot = flag.Bool("update-snapshot", false, "rewrite testdata/snapshot_v2.bin from the current encoder")

const snapshotFixture = "testdata/snapshot_v2.bin"

// takeSnapshot runs a fresh network for warm cycles and returns the network
// plus its serialized state.
func takeSnapshot(t *testing.T, cfg Config, warm int) (*Network, []byte) {
	t.Helper()
	n := mustNet(t, cfg)
	n.Run(warm)
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return n, buf.Bytes()
}

// restoreFresh builds a fresh network with cfg and loads the snapshot.
func restoreFresh(t *testing.T, cfg Config, data []byte) *Network {
	t.Helper()
	n := mustNet(t, cfg)
	if err := n.Restore(bytes.NewReader(data)); err != nil {
		n.Close()
		t.Fatalf("restore: %v", err)
	}
	return n
}

// checkLockstep steps both networks together and insists their full-state
// fingerprints agree at every cycle — the core restore-equivalence property.
func checkLockstep(t *testing.T, orig, restored *Network, cycles int) {
	t.Helper()
	if got, want := restored.FingerprintHex(), orig.FingerprintHex(); got != want {
		t.Fatalf("digest differs immediately after restore: %s vs %s", got, want)
	}
	for i := 0; i < cycles; i++ {
		orig.Step()
		restored.Step()
		if got, want := restored.FingerprintHex(), orig.FingerprintHex(); got != want {
			t.Fatalf("digest diverges %d cycles after restore: %s vs %s", i+1, got, want)
		}
	}
}

// TestSnapshotRoundTripDigest is the acceptance property from the issue: for
// every routing algorithm, a network restored from a mid-run snapshot
// produces the same per-cycle fingerprint as the uninterrupted original —
// under the serial kernel and under the sharded kernel, and across the two
// (serial snapshot restored into a sharded network).
func TestSnapshotRoundTripDigest(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			for _, tc := range []struct {
				name                  string
				origShards, resShards int
			}{
				{"serial", 0, 0},
				{"sharded", 4, 4},
				{"serial-to-sharded", 0, 4},
			} {
				t.Run(tc.name, func(t *testing.T) {
					cfg := gc.build()
					cfg.Kernel.Shards = tc.origShards
					orig, data := takeSnapshot(t, cfg, 300)
					defer orig.Close()
					cfg.Kernel.Shards = tc.resShards
					restored := restoreFresh(t, cfg, data)
					defer restored.Close()
					checkLockstep(t, orig, restored, 150)
				})
			}
		})
	}
}

// TestSnapshotRecoveryModes round-trips the two non-default recovery modes,
// whose state machines (Hamiltonian DB lanes, abort-retry kill lists) put
// packets in places sequential recovery never does.
func TestSnapshotRecoveryModes(t *testing.T) {
	base := func(recovery router.RecoveryMode) Config {
		cfg := testConfig(topology.MustTorus(8, 8), routing.Disha(0), 0.9, 12)
		cfg.Router.VCs = 2
		cfg.Router.BufferDepth = 1
		cfg.Router.Timeout = 4
		cfg.Router.Recovery = recovery
		return cfg
	}
	for _, tc := range []struct {
		name string
		mode router.RecoveryMode
	}{
		{"concurrent", router.RecoveryConcurrent},
		{"abort-retry", router.RecoveryAbortRetry},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := base(tc.mode)
			orig, data := takeSnapshot(t, cfg, 400)
			defer orig.Close()
			restored := restoreFresh(t, cfg, data)
			defer restored.Close()
			checkLockstep(t, orig, restored, 150)
		})
	}
}

// TestSnapshotFaultReplay verifies the fault-injection replay list: a
// snapshot of a degraded network restores the same failed links (and the
// rebuilt DB routing tables they imply) before applying state.
func TestSnapshotFaultReplay(t *testing.T) {
	cfg := testConfig(topology.MustTorus(8, 8), routing.Disha(0), 0.4, 9)
	n := mustNet(t, cfg)
	defer n.Close()
	if err := n.FailLink(10, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink(35, 1); err != nil {
		t.Fatal(err)
	}
	n.Run(300)
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := restoreFresh(t, cfg, buf.Bytes())
	defer restored.Close()
	if restored.FailedLinks() != 2 {
		t.Fatalf("restored network has %d failed links, want 2", restored.FailedLinks())
	}
	checkLockstep(t, n, restored, 150)
}

// TestSnapshotDrainedStateResumes checks that stopped injection survives a
// round trip: a drained-and-stopped network stays drained after restore.
func TestSnapshotDrainedStateResumes(t *testing.T) {
	cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.3, 5)
	n := mustNet(t, cfg)
	defer n.Close()
	n.Run(500)
	n.StopInjection()
	if !n.RunUntilDrained(5000) {
		t.Fatal("network did not drain")
	}
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := restoreFresh(t, cfg, buf.Bytes())
	defer restored.Close()
	checkLockstep(t, n, restored, 50)
	if !restored.Drained() {
		t.Fatal("restored network resumed injection after drain")
	}
}

// TestSnapshotConfigGuard tries to load a snapshot into structurally
// different networks; every mismatch must be rejected with an error.
func TestSnapshotConfigGuard(t *testing.T) {
	cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.3, 1)
	orig, data := takeSnapshot(t, cfg, 100)
	defer orig.Close()

	mutations := map[string]func(*Config){
		"topology":  func(c *Config) { c.Topo = topology.MustMesh(4, 4) },
		"size":      func(c *Config) { c.Topo = topology.MustTorus(8, 8) },
		"algorithm": func(c *Config) { c.Algorithm = routing.DOR() },
		"seed":      func(c *Config) { c.Seed = 2 },
		"load":      func(c *Config) { c.LoadRate = 0.31 },
		"msglen":    func(c *Config) { c.MsgLen = 4 },
		"vcs":       func(c *Config) { c.Router.VCs = 6 },
		"depth":     func(c *Config) { c.Router.BufferDepth = 4 },
		"timeout":   func(c *Config) { c.Router.Timeout = 99 },
		"recovery":  func(c *Config) { c.Router.Recovery = router.RecoveryAbortRetry },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			bad := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.3, 1)
			mutate(&bad)
			n := mustNet(t, bad)
			defer n.Close()
			if err := n.Restore(bytes.NewReader(data)); err == nil {
				t.Fatal("restore into a mismatched configuration succeeded")
			}
		})
	}

	t.Run("shards-may-differ", func(t *testing.T) {
		ok := cfg
		ok.Kernel.Shards = 4
		n := mustNet(t, ok)
		defer n.Close()
		if err := n.Restore(bytes.NewReader(data)); err != nil {
			t.Fatalf("restore with a different shard count must succeed: %v", err)
		}
	})
}

// TestSnapshotFreshnessGuard insists Restore refuses a network that has
// already been stepped — partial overwrite would corrupt state silently.
func TestSnapshotFreshnessGuard(t *testing.T) {
	cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.3, 1)
	orig, data := takeSnapshot(t, cfg, 50)
	defer orig.Close()
	stale := mustNet(t, cfg)
	defer stale.Close()
	stale.Run(10)
	if err := stale.Restore(bytes.NewReader(data)); err == nil {
		t.Fatal("restore into a stepped network succeeded")
	}
}

// TestSnapshotCorruption flips bytes and truncates a valid snapshot at every
// prefix length; decoding must always fail cleanly, never panic, and never
// silently succeed.
func TestSnapshotCorruption(t *testing.T) {
	cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.5, 3)
	cfg.Router.Timeout = 4
	orig, data := takeSnapshot(t, cfg, 200)
	defer orig.Close()

	t.Run("truncation", func(t *testing.T) {
		for cut := 0; cut < len(data); cut++ {
			n := mustNet(t, cfg)
			if err := n.Restore(bytes.NewReader(data[:cut])); err == nil {
				n.Close()
				t.Fatalf("truncation to %d of %d bytes decoded without error", cut, len(data))
			}
			n.Close()
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		// Any flipped bit breaks the SHA-256 trailer, so Open must reject it.
		for pos := 0; pos < len(data); pos += 97 {
			mut := bytes.Clone(data)
			mut[pos] ^= 0x40
			n := mustNet(t, cfg)
			if err := n.Restore(bytes.NewReader(mut)); err == nil {
				n.Close()
				t.Fatalf("bit flip at %d decoded without error", pos)
			}
			n.Close()
		}
	})
}

// TestSnapshotDeterministicBytes pins that the encoder itself is
// deterministic: two snapshots of the same state are byte-identical (the
// harness relies on this when comparing checkpoints across kernels).
func TestSnapshotDeterministicBytes(t *testing.T) {
	cfg := testConfig(topology.MustTorus(8, 8), routing.Disha(0), 0.6, 42)
	cfg.Router.VCs = 2
	cfg.Router.BufferDepth = 1
	cfg.Router.Timeout = 4

	run := func(shards int) []byte {
		c := cfg
		c.Kernel.Shards = shards
		n := mustNet(t, c)
		defer n.Close()
		n.Run(300)
		var buf bytes.Buffer
		if err := n.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(0)
	if again := run(0); !bytes.Equal(serial, again) {
		t.Fatal("two snapshots of identical runs differ")
	}
	if sharded := run(4); !bytes.Equal(serial, sharded) {
		t.Fatal("sharded-kernel snapshot differs from serial snapshot of the same state")
	}
}

// snapshotFixtureConfig is the pinned configuration for the committed
// format fixture. Changing it invalidates testdata/snapshot_v2.bin.
func snapshotFixtureConfig() Config {
	cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.6, 2026)
	cfg.Router.VCs = 2
	cfg.Router.BufferDepth = 1
	cfg.Router.Timeout = 4
	return cfg
}

// TestSnapshotGoldenFixture decodes a snapshot file committed to testdata,
// pinning the on-disk format: if the encoding changes in any way, this test
// fails until the format version is bumped and the fixture regenerated.
func TestSnapshotGoldenFixture(t *testing.T) {
	cfg := snapshotFixtureConfig()
	if *updateSnapshot {
		orig, data := takeSnapshot(t, cfg, 250)
		orig.Close()
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(snapshotFixture, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", snapshotFixture, len(data))
		return
	}

	data, err := os.ReadFile(snapshotFixture)
	if err != nil {
		t.Fatalf("missing snapshot fixture (regenerate with -update-snapshot): %v", err)
	}
	restored := restoreFresh(t, cfg, data)
	defer restored.Close()

	// The fixture must decode to the exact state the encoder produces today.
	orig, fresh := takeSnapshot(t, cfg, 250)
	defer orig.Close()
	if !bytes.Equal(data, fresh) {
		t.Fatal("current encoder no longer reproduces the committed fixture; bump snapshotVersion and regenerate with -update-snapshot")
	}
	checkLockstep(t, orig, restored, 50)
}

// FuzzSnapshotRestore throws arbitrary bytes at Restore. Raw mutations are
// usually stopped by the checksum trailer, so the fuzz body also re-seals the
// input as a valid container to reach the payload decoder: either way the
// requirement is an error, never a panic.
func FuzzSnapshotRestore(f *testing.F) {
	cfg := testConfig(topology.MustTorus(4, 4), routing.Disha(0), 0.5, 3)
	cfg.Router.Timeout = 4
	n, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	n.Run(150)
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	n.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	payload, err := snapshot.Open(valid, snapshotMagic, snapshotVersion)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapshot.Seal(snapshotMagic, snapshotVersion, payload[:len(payload)/3]))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := func() *Network {
			n, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return n
		}
		n := fresh()
		_ = n.Restore(bytes.NewReader(data)) // must not panic
		n.Close()

		// Re-seal so the checksum passes and the payload decoder runs.
		n = fresh()
		_ = n.Restore(bytes.NewReader(snapshot.Seal(snapshotMagic, snapshotVersion, data)))
		n.Close()
	})
}
