package network

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/topology"
)

// flitKey identifies one flit instance for duplicate detection.
type flitKey struct {
	pkt *packet.Packet
	seq int
}

// CheckInvariants verifies structural soundness of the simulation state
// between cycles and returns the first violation found (nil when sound):
//
//   - buffer ownership: every non-empty input VC and Deadlock Buffer lane
//     has an owner and holds only that owner's flits, input VCs in
//     consecutive sequence order;
//   - no duplicated flit: each (packet, seq) appears at most once across
//     all buffers in the network;
//   - flit conservation: for every packet with flits in the network,
//     in-network flits + delivered flits == flits injected so far;
//   - credit consistency: on every link and VC, sender-side credits plus
//     downstream buffer occupancy equal the configured buffer depth;
//   - counter and activity soundness: every router's maintained O(1) flit
//     counter equals a full buffer walk, and any router holding flits or
//     crossbar connection state is in the active set;
//   - token exclusivity (sequential recovery): at most one packet is
//     recovering on the Token (OnDB, seized, header not yet arrived), and
//     the Token's held/holder state agrees with it; an occupied Deadlock
//     Buffer whose packet's header has not arrived implies that packet
//     holds the Token;
//   - SoA layout soundness: every router's slice of the shared
//     struct-of-arrays buffers passes router.CheckState — ring cursors in
//     range, vacated ring slots zeroed, grants inside their sentinel
//     domains, credits in range, flit counter consistent with the rings —
//     so a scan-path bug that corrupts the flat layout is caught even
//     before it changes view-level behavior.
//
// The conformance tests call it every few cycles — including under -race
// with the sharded kernel — so a phase-ordering bug that corrupts state
// without immediately crashing is still caught near its origin.
func (n *Network) CheckInvariants() error {
	depth := n.cfg.Router.BufferDepth
	deg := n.topo.Degree()
	seen := make(map[flitKey]struct{})
	inNet := make(map[*packet.Packet]int)

	record := func(fl packet.Flit, node topology.Node, where string) error {
		k := flitKey{fl.Pkt, fl.Seq}
		if _, dup := seen[k]; dup {
			return fmt.Errorf("network invariant: packet %d flit %d duplicated at node %d %s",
				fl.Pkt.ID, fl.Seq, node, where)
		}
		seen[k] = struct{}{}
		inNet[fl.Pkt]++
		return nil
	}

	for _, r := range n.routers {
		node := r.NodeID()
		if err := r.CheckState(); err != nil {
			return fmt.Errorf("network invariant: %w", err)
		}
		routerFlits := 0
		for p := 0; p < r.InputPorts(); p++ {
			for v := 0; v < r.InputVCCount(p); v++ {
				occ := r.InputOccupancy(p, v)
				routerFlits += occ
				owner := r.InputOwner(p, v)
				if occ > 0 && owner == nil {
					return fmt.Errorf("network invariant: node %d input (%d,%d) holds %d flits with no owner",
						node, p, v, occ)
				}
				prev := -1
				for i := 0; i < occ; i++ {
					fl := r.InputFlitAt(p, v, i)
					if fl.Pkt != owner {
						return fmt.Errorf("network invariant: node %d input (%d,%d) holds packet %d's flit inside packet %d's buffer",
							node, p, v, fl.Pkt.ID, owner.ID)
					}
					if prev >= 0 && fl.Seq != prev+1 {
						return fmt.Errorf("network invariant: node %d input (%d,%d) flit sequence %d after %d",
							node, p, v, fl.Seq, prev)
					}
					prev = fl.Seq
					if err := record(fl, node, "input VC"); err != nil {
						return err
					}
				}
			}
		}
		for lane := 0; lane < r.DBLanes(); lane++ {
			ln := r.DBLaneLen(lane)
			routerFlits += ln
			owner := r.DBLaneOwner(lane)
			if ln > 0 && owner == nil {
				return fmt.Errorf("network invariant: node %d DB lane %d holds %d flits with no owner", node, lane, ln)
			}
			if owner != nil && !owner.OnDB {
				return fmt.Errorf("network invariant: node %d DB lane %d owned by packet %d which is not recovering",
					node, lane, owner.ID)
			}
			for i := 0; i < ln; i++ {
				fl := r.DBFlitAt(lane, i)
				if fl.Pkt != owner {
					return fmt.Errorf("network invariant: node %d DB lane %d holds packet %d's flit inside packet %d's lane",
						node, lane, fl.Pkt.ID, owner.ID)
				}
				if err := record(fl, node, "DB lane"); err != nil {
					return err
				}
			}
		}
		if got := r.FlitCount(); got != routerFlits {
			return fmt.Errorf("network invariant: node %d maintained flit count %d, buffers hold %d", node, got, routerFlits)
		}
		// Active-set soundness: any router that can do work — buffered flits
		// or crossbar connection state — must be awake. (The converse is not
		// an invariant: a drained router stays awake until the end-of-cycle
		// sweep runs.)
		if (routerFlits > 0 || !r.CrossbarIdle()) && !n.activeOn(int(node)) {
			return fmt.Errorf("network invariant: node %d holds work but is inactive", node)
		}
		for q := 0; q < deg; q++ {
			nb := r.Neighbor(q)
			if nb == nil {
				continue
			}
			rp := r.ReverseAt(q)
			for v := 0; v < n.cfg.Router.VCs; v++ {
				if c := r.Credits(q, v) + nb.InputOccupancy(rp, v); c != depth {
					return fmt.Errorf("network invariant: node %d output (%d,%d) credits+occupancy = %d, want buffer depth %d",
						node, q, v, c, depth)
				}
			}
		}
	}

	for p, cnt := range inNet {
		injected := p.Length
		if q := &n.nis[p.Src]; q.cur == p {
			injected = q.seq
		}
		if cnt+p.FlitsDelivered != injected {
			return fmt.Errorf("network invariant: packet %d flit conservation broken: %d in network + %d delivered != %d injected",
				p.ID, cnt, p.FlitsDelivered, injected)
		}
	}

	if n.token != nil {
		var seized *packet.Packet
		for p := range inNet {
			if p.OnDB && p.SeizedToken && !p.HeaderArrived {
				if seized != nil {
					return fmt.Errorf("network invariant: packets %d and %d both hold the recovery token", seized.ID, p.ID)
				}
				seized = p
			}
		}
		if seized != nil && (!n.token.Held() || n.token.Holder() != seized) {
			return fmt.Errorf("network invariant: packet %d is recovering but the token is not held by it", seized.ID)
		}
		if n.token.Held() {
			h := n.token.Holder()
			if h == nil || h.HeaderArrived {
				return fmt.Errorf("network invariant: token held with no active recovering packet")
			}
		}
	}
	return nil
}
