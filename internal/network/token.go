package network

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Token implements the paper's sequential recovery mutual exclusion
// (Assumptions 4-6): a single token circulates all routers over a dedicated
// hardwired path in the topology's declared recovery-lane order (the
// serpentine Hamiltonian order on cubes). Because the path is dedicated
// control wiring, any visiting order works — consecutive lane nodes need
// not be linked in the data network. A router holding a presumed-
// deadlocked packet captures the passing token and switches exactly one
// packet onto the Deadlock Buffer lane; propagation is inhibited until the
// destination node receives that packet's header, at which point the token
// resumes from the destination.
type Token struct {
	order  []topology.Node
	index  map[topology.Node]int
	pos    int
	speed  int // ring hops advanced per cycle
	held   bool
	holder *packet.Packet

	seizures      int64
	transitCycles int64 // cycles spent circulating free
	holdCycles    int64 // cycles spent held by a recovering packet
}

// NewToken builds a token circulating topo's declared recovery lane at the
// given hops-per-cycle speed. The caller (network construction) has
// already validated that the lane is a permutation of the nodes.
func NewToken(topo topology.Graph, hopsPerCycle int) *Token {
	order := topo.RecoveryLane()
	idx := make(map[topology.Node]int, len(order))
	for i, node := range order {
		idx[node] = i
	}
	if hopsPerCycle < 1 {
		hopsPerCycle = 1
	}
	return &Token{order: order, index: idx, speed: hopsPerCycle}
}

// Held reports whether a recovering packet currently holds the token.
func (t *Token) Held() bool { return t.held }

// Holder returns the packet holding the token, if any.
func (t *Token) Holder() *packet.Packet { return t.holder }

// Position returns the node the token currently sits at.
func (t *Token) Position() topology.Node { return t.order[t.pos] }

// Seizures returns how many times the token has been captured.
func (t *Token) Seizures() int64 { return t.seizures }

// TransitCycles returns the cycles the token has spent circulating free.
func (t *Token) TransitCycles() int64 { return t.transitCycles }

// HoldCycles returns the cycles the token has spent held by recovering
// packets (propagation inhibited, paper Assumption 5).
func (t *Token) HoldCycles() int64 { return t.holdCycles }

// Step advances the token: if free, it visits up to speed routers this
// cycle and is captured by the first one holding a presumed-deadlocked
// packet, which is immediately switched onto the Deadlock Buffer lane and
// returned (nil when nothing was captured).
func (t *Token) Step(routers []*router.Router, now sim.Cycle) *packet.Packet {
	if t.held {
		t.holdCycles++
		return nil
	}
	t.transitCycles++
	for h := 0; h < t.speed; h++ {
		r := routers[t.order[t.pos]]
		if port, vc, ok := r.MostStarved(); ok {
			p := r.Recover(port, vc, now)
			t.held = true
			t.holder = p
			t.seizures++
			return p
		}
		t.pos = (t.pos + 1) % len(t.order)
	}
	return nil
}

// Release frees the token at the destination node that consumed the
// recovered packet's header, resuming circulation from there; it reports
// whether a release actually happened.
func (t *Token) Release(p *packet.Packet, at topology.Node) bool {
	// Only the packet that captured the token may release it (Assumption
	// 6); headers of earlier recovered packets still draining their tails
	// must not free it.
	if !t.held || t.holder != p {
		return false
	}
	t.held = false
	t.holder = nil
	idx, ok := t.index[at]
	if !ok {
		panic(fmt.Sprintf("network: token released at unknown node %d", at))
	}
	t.pos = idx
	return true
}

// Drop frees the token if p holds it, without moving the circulation point:
// used when a reconfiguration event removes the holder from the network
// before its header could reach the destination. Reports whether the token
// was actually held by p.
func (t *Token) Drop(p *packet.Packet) bool {
	if !t.held || t.holder != p {
		return false
	}
	t.held = false
	t.holder = nil
	return true
}
