package network

import (
	"time"

	"repro/internal/telemetry"
)

// stepPhase indexes one timed region of Network.Step.
type stepPhase int

const (
	phaseInject stepPhase = iota
	phaseRouteCompute
	phaseSwitchAlloc
	phaseDBResolve
	phaseCommit
	phaseTimers
	phaseFlush
	phaseRecovery
	phaseActiveSweep
	phaseStepTotal
	numPhases
)

// phaseNames are the `phase` label values, index-aligned with the constants.
var phaseNames = [numPhases]string{
	"inject", "route_compute", "switch_allocate", "db_resolve", "commit",
	"timers", "flush", "recovery", "active_sweep", "step_total",
}

// phaseProfiler times Step's phases into per-phase wall-clock histograms.
// It activates on every Nth cycle (cycle-sampled, so steady-state overhead
// is bounded by 1/N) and is strictly off the digest path: it reads
// time.Now() and writes histograms, never simulation state, so profiled
// and unprofiled runs are bit-identical (the golden-digest suite runs with
// it on).
//
// The fused route-compute + switch-allocate phase fans out across kernel
// shards; each shard accumulates its two nanosecond totals into its own
// slot (written before the kernel barrier, read after — the barrier's
// channel handoff orders them), and flushStage folds the slots into the
// two histograms on the stepping goroutine.
type phaseProfiler struct {
	every  int64
	active bool
	hists  [numPhases]*telemetry.Histogram

	shardRoute  []int64 // per-shard StageRouting nanos this profiled cycle
	shardSwitch []int64 // per-shard StageSwitch nanos this profiled cycle
}

// newPhaseProfiler registers the per-phase histograms (one
// disha_step_phase_seconds family, labeled by phase) and returns a
// profiler sampling every `every` cycles across `shards` stage shards.
func newPhaseProfiler(reg *telemetry.Registry, every, shards int) *phaseProfiler {
	if every < 1 {
		every = 1
	}
	if shards < 1 {
		shards = 1
	}
	p := &phaseProfiler{
		every:       int64(every),
		shardRoute:  make([]int64, shards),
		shardSwitch: make([]int64, shards),
	}
	bounds := telemetry.ExponentialBuckets(1e-7, 2, 20) // 100ns .. ~52ms
	for ph := stepPhase(0); ph < numPhases; ph++ {
		p.hists[ph] = reg.Histogram("disha_step_phase_seconds",
			"Wall-clock seconds one Step phase took on a profiled cycle.",
			telemetry.Labels{{Key: "phase", Value: phaseNames[ph]}}, bounds)
	}
	return p
}

// begin decides whether this cycle is profiled and, if so, clears the
// per-shard stage accumulators. Call at the top of Step.
func (p *phaseProfiler) begin(cycle int64) bool {
	p.active = cycle%p.every == 0
	if p.active {
		for i := range p.shardRoute {
			p.shardRoute[i], p.shardSwitch[i] = 0, 0
		}
	}
	return p.active
}

// lap records the time since t0 into the phase's histogram and returns the
// new phase start.
func (p *phaseProfiler) lap(ph stepPhase, t0 time.Time) time.Time {
	now := time.Now()
	p.hists[ph].Observe(now.Sub(t0).Seconds())
	return now
}

// observe records one explicit duration.
func (p *phaseProfiler) observe(ph stepPhase, d time.Duration) {
	p.hists[ph].Observe(d.Seconds())
}

// flushStage folds the per-shard route/switch nanosecond totals into the
// route-compute and switch-allocate histograms (one observation each per
// profiled cycle: the summed across-routers time, comparable with the
// serial phases). Call after the stage barrier, on the stepping goroutine.
func (p *phaseProfiler) flushStage() {
	var route, sw int64
	for i := range p.shardRoute {
		route += p.shardRoute[i]
		sw += p.shardSwitch[i]
	}
	p.hists[phaseRouteCompute].Observe(float64(route) / 1e9)
	p.hists[phaseSwitchAlloc].Observe(float64(sw) / 1e9)
}
