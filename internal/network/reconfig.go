package network

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file implements dynamic reconfiguration: mid-run topology mutations
// (kill/heal links and routers, swap the routing function) applied between
// cycles under a DBR-style protocol (arXiv 1211.5747). The protocol quiesces
// only the resources a mutation touches: packets whose flits would be lost
// on the removed resource are dropped and accounted, surviving packets
// holding a now-stale route are returned to the unrouted state and re-route
// next cycle, and anything the post-change routing function can no longer
// make progress for times out and escapes through the Deadlock Buffer lane —
// the network is never drained. Every mutation runs in the serial prelude of
// Step (before the clock ticks), so it composes with the sharded kernel and
// the active-set scheduler without races, and every applied mutation is
// recorded in the reconfiguration log so snapshots can replay the topology's
// history on restore.

// ReconfigKind enumerates the dynamic reconfiguration event types.
type ReconfigKind int

const (
	// ReconfigKillLink severs the bidirectional link (Node, Port) mid-run,
	// dropping any packet with flits committed to the link.
	ReconfigKillLink ReconfigKind = iota
	// ReconfigHealLink restores a link previously killed (or failed via
	// FailLink) with clean virtual channels on both ends.
	ReconfigHealLink
	// ReconfigKillRouter removes router Node entirely: its buffered packets,
	// its source queue, and every packet in the network addressed to it are
	// dropped, and all its links go down.
	ReconfigKillRouter
	// ReconfigHealRouter revives a killed router, reconnecting every link
	// whose far endpoint is alive and not individually failed.
	ReconfigHealRouter
	// ReconfigSwapAlgorithm swaps the routing function (by Name) on every
	// router; granted routes finish under the old function.
	ReconfigSwapAlgorithm
)

var reconfigKindNames = [...]string{"kill-link", "heal-link", "kill-router", "heal-router", "swap-algorithm"}

// String returns the kind's schedule-file name (e.g. "kill-link").
func (k ReconfigKind) String() string {
	if k >= 0 && int(k) < len(reconfigKindNames) {
		return reconfigKindNames[k]
	}
	return fmt.Sprintf("ReconfigKind(%d)", int(k))
}

// ParseReconfigKind maps a kind's string form (as used in chaos schedule
// files and snapshots) back to the ReconfigKind, reporting whether the name
// is known.
func ParseReconfigKind(s string) (ReconfigKind, bool) {
	for i, name := range reconfigKindNames {
		if name == s {
			return ReconfigKind(i), true
		}
	}
	return 0, false
}

// ReconfigEvent is one scheduled topology or routing mutation. Node/Port
// identify the target link or router (Port is ignored for router and swap
// events); Alg names the routing function for swap events (routing.ByName).
type ReconfigEvent struct {
	// Cycle is when the event applies: in the prelude of the Step executed
	// with the clock standing at Cycle, i.e. before the tick that produces
	// Cycle+1. A checkpoint written at Cycle therefore captures the state
	// just before the event — re-arming the same schedule after a restore
	// replays it exactly.
	Cycle sim.Cycle
	Kind  ReconfigKind
	Node  topology.Node
	Port  int
	Alg   string
}

// String renders the event compactly, e.g. "@200 kill-link node=14 port=2".
func (e ReconfigEvent) String() string {
	switch e.Kind {
	case ReconfigSwapAlgorithm:
		return fmt.Sprintf("@%d %s %s", e.Cycle, e.Kind, e.Alg)
	case ReconfigKillRouter, ReconfigHealRouter:
		return fmt.Sprintf("@%d %s node=%d", e.Cycle, e.Kind, e.Node)
	default:
		return fmt.Sprintf("@%d %s node=%d port=%d", e.Cycle, e.Kind, e.Node, e.Port)
	}
}

// ReconfigOutcome records one attempted reconfiguration event: whether it
// applied (scheduled events that fail validation — e.g. a kill that would
// disconnect the network — are skipped with a reason, not fatal), and the
// packet/flit loss it caused. Applied outcomes are replayed by snapshot
// restore to reconstruct the topology's history.
type ReconfigOutcome struct {
	ReconfigEvent
	Applied bool
	// Reason explains a skipped event; empty when Applied.
	Reason string
	// PacketsLost / FlitsLost count in-flight packets (and their buffered
	// flits) this event dropped; PacketsUnroutable counts packets dropped
	// before injection because the event made their destination unreachable.
	PacketsLost       int64
	FlitsLost         int64
	PacketsUnroutable int64
}

// String renders the outcome: the event plus either its loss tally or the
// reason it was skipped.
func (o ReconfigOutcome) String() string {
	if !o.Applied {
		return fmt.Sprintf("%s SKIPPED (%s)", o.ReconfigEvent, o.Reason)
	}
	return fmt.Sprintf("%s lost=%d flits=%d unroutable=%d", o.ReconfigEvent, o.PacketsLost, o.FlitsLost, o.PacketsUnroutable)
}

// ScheduleReconfig arms a schedule of reconfiguration events, replacing any
// previously armed schedule. Events must be sorted by non-decreasing Cycle;
// events whose Cycle has already passed are silently dropped (after a
// snapshot restore they are already reflected in the restored state, via the
// reconfiguration log). Scheduled events apply inside Step — an armed but
// empty (or fully consumed) schedule costs one integer compare per cycle,
// and no schedule at all costs the same, so runs without chaos are
// bit-identical to builds that predate this subsystem.
func (n *Network) ScheduleReconfig(events []ReconfigEvent) error {
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			return fmt.Errorf("network: reconfiguration schedule not sorted: event %d at cycle %d follows cycle %d",
				i, events[i].Cycle, events[i-1].Cycle)
		}
	}
	now := n.clock.Now()
	sched := make([]ReconfigEvent, 0, len(events))
	for _, ev := range events {
		if ev.Cycle < now {
			continue
		}
		sched = append(sched, ev)
	}
	n.sched, n.schedNext = sched, 0
	return nil
}

// PendingReconfigs returns how many armed scheduled events have not yet
// applied.
func (n *Network) PendingReconfigs() int { return len(n.sched) - n.schedNext }

// ReconfigCount returns the number of reconfiguration log entries without
// copying the log; pollers call it every cycle and fetch ReconfigLog only
// when it grows.
func (n *Network) ReconfigCount() int { return len(n.reconfigLog) }

// ReconfigLog returns a copy of every reconfiguration outcome so far, in
// application order: scheduled events (applied or skipped) and successful
// manual KillLink/HealLink/KillRouter/HealRouter/SwapAlgorithm/FailLink
// calls.
func (n *Network) ReconfigLog() []ReconfigOutcome {
	return append([]ReconfigOutcome(nil), n.reconfigLog...)
}

// CurrentAlgorithm returns the routing function currently installed (the
// configured one until a swap event replaces it).
func (n *Network) CurrentAlgorithm() routing.Algorithm { return n.curAlg }

// DeadRouters returns how many routers are currently killed.
func (n *Network) DeadRouters() int { return n.deadCount }

// RouterDead reports whether the given router is currently killed.
func (n *Network) RouterDead(node topology.Node) bool {
	return n.deadCount != 0 && n.routerDead[node]
}

// RecoveryBacklog sums recovery-resource occupancy across all routers:
// presumed counts input VCs holding a presumed-deadlocked header, busy
// counts Deadlock Buffer lane flits, lane ownerships and DB-granted input
// VCs. presumed == 0 && busy == 0 is the chaos runner's "reconverged"
// condition after a reconfiguration event.
func (n *Network) RecoveryBacklog() (presumed, busy int) {
	for _, r := range n.routers {
		p, b := r.RecoveryBusy()
		presumed += p
		busy += b
	}
	return presumed, busy
}

// KillLink severs the bidirectional link between node and its neighbor on
// port immediately (at the current cycle), under the reconfiguration
// protocol: packets with flits committed to the link are dropped and
// counted, survivors aimed at it are un-routed to re-route next cycle, and
// the Deadlock Buffer next-hop table is rebuilt over the remaining links.
func (n *Network) KillLink(node topology.Node, port int) error {
	return n.applyNow(ReconfigEvent{Cycle: n.clock.Now(), Kind: ReconfigKillLink, Node: node, Port: port})
}

// HealLink restores a previously killed (or FailLink-failed) link with
// clean virtual channels on both ends; routing resumes over it next cycle.
func (n *Network) HealLink(node topology.Node, port int) error {
	return n.applyNow(ReconfigEvent{Cycle: n.clock.Now(), Kind: ReconfigHealLink, Node: node, Port: port})
}

// KillRouter removes a router mid-run: every packet buffered there, queued
// at its source, or addressed to it anywhere in the network is dropped and
// counted, and all its links go down. The live remainder must stay
// connected.
func (n *Network) KillRouter(node topology.Node) error {
	return n.applyNow(ReconfigEvent{Cycle: n.clock.Now(), Kind: ReconfigKillRouter, Node: node})
}

// HealRouter revives a killed router, reconnecting each of its links whose
// far endpoint is alive and not individually failed. Its source resumes
// generating traffic next cycle.
func (n *Network) HealRouter(node topology.Node) error {
	return n.applyNow(ReconfigEvent{Cycle: n.clock.Now(), Kind: ReconfigHealRouter, Node: node})
}

// SwapAlgorithm swaps the routing function on every router. Packets already
// holding a granted route finish their hop under the old function; any
// packet the new function cannot make progress for times out and escapes
// through the Deadlock Buffer lane (the DBR argument for reconfiguring
// routing under load).
func (n *Network) SwapAlgorithm(alg routing.Algorithm) error {
	if alg == nil {
		return fmt.Errorf("network: nil algorithm")
	}
	return n.applyNow(ReconfigEvent{Cycle: n.clock.Now(), Kind: ReconfigSwapAlgorithm, Alg: alg.Name()})
}

// applyNow executes a manual (API-initiated) event: validation failures
// return an error and leave no trace; successes are recorded in the
// reconfiguration log for snapshot replay.
func (n *Network) applyNow(ev ReconfigEvent) error {
	before := n.counters
	reason := n.applyMutation(ev)
	if reason != "" {
		return fmt.Errorf("network: %s", reason)
	}
	n.logOutcome(ev, "", before)
	return nil
}

// applyScheduled applies every armed event due at the current cycle, in
// order. Unlike the manual path, scheduled events that fail validation are
// recorded as skipped rather than aborting the run: a chaos campaign's
// schedule is generated against a model of the topology and an occasional
// infeasible event (e.g. a kill that would disconnect) is part of the
// deterministic timeline, not an error.
func (n *Network) applyScheduled() {
	now := n.clock.Now()
	for n.schedNext < len(n.sched) && n.sched[n.schedNext].Cycle <= now {
		ev := n.sched[n.schedNext]
		n.schedNext++
		before := n.counters
		reason := n.applyMutation(ev)
		n.logOutcome(ev, reason, before)
	}
}

func (n *Network) logOutcome(ev ReconfigEvent, reason string, before Counters) {
	n.reconfigLog = append(n.reconfigLog, ReconfigOutcome{
		ReconfigEvent:     ev,
		Applied:           reason == "",
		Reason:            reason,
		PacketsLost:       n.counters.PacketsLost - before.PacketsLost,
		FlitsLost:         n.counters.FlitsLost - before.FlitsLost,
		PacketsUnroutable: n.counters.PacketsUnroutable - before.PacketsUnroutable,
	})
	n.countersValid = false
}

// applyMutation dispatches one event, returning "" on success or the reason
// it could not apply. Called only between cycles (Step prelude), never
// concurrently with the sharded kernel.
func (n *Network) applyMutation(ev ReconfigEvent) string {
	switch ev.Kind {
	case ReconfigKillLink:
		return n.applyKillLink(ev.Node, ev.Port)
	case ReconfigHealLink:
		return n.applyHealLink(ev.Node, ev.Port)
	case ReconfigKillRouter:
		return n.applyKillRouter(ev.Node)
	case ReconfigHealRouter:
		return n.applyHealRouter(ev.Node)
	case ReconfigSwapAlgorithm:
		return n.applySwapAlgorithm(ev.Alg)
	default:
		return fmt.Sprintf("unknown reconfiguration kind %d", int(ev.Kind))
	}
}

// reversePort returns the input port at the neighbor reached over (node,
// port). Network construction validated that every link in the topology has
// a paired reverse channel, so this cannot fail for an existing link; it
// returns -1 for a port with no neighbor.
func (n *Network) reversePort(node topology.Node, port int) int {
	rev, ok := n.topo.ReversePortAt(node, port)
	if !ok {
		return -1
	}
	return rev
}

// linkKey canonicalizes a link's (node, port) so both directions map to one
// identity: the smaller endpoint's side wins (smaller port for a radix-2
// wraparound link joining a node to itself).
func (n *Network) linkKey(node topology.Node, port int) [2]int {
	nb, ok := n.topo.Neighbor(node, port)
	if !ok {
		return [2]int{int(node), port}
	}
	rev := n.reversePort(node, port)
	if int(nb) < int(node) || (nb == node && rev < port) {
		return [2]int{int(nb), rev}
	}
	return [2]int{int(node), port}
}

func (n *Network) applyKillLink(node topology.Node, port int) string {
	if n.cfg.Router.Recovery == router.RecoveryConcurrent {
		return "reconfiguration is not supported with concurrent recovery (its Hamiltonian lanes assume an intact path)"
	}
	if int(node) < 0 || int(node) >= len(n.routers) || port < 0 || port >= n.topo.Degree() {
		return fmt.Sprintf("no such link %d/%d", node, port)
	}
	if n.RouterDead(node) {
		return fmt.Sprintf("router %d is dead; its links are already down", node)
	}
	a := n.routers[node]
	b := a.Neighbor(port)
	if b == nil {
		return fmt.Sprintf("link %d/%d does not exist (or already failed)", node, port)
	}
	rev := n.reversePort(node, port)
	// Probe connectivity with the link removed before committing to anything.
	a.Disconnect(port)
	b.Disconnect(rev)
	ok := n.liveConnectedExcluding(-1)
	a.Connect(port, b)
	b.Connect(rev, a)
	if !ok {
		return fmt.Sprintf("failing link %d/%d would disconnect the network", node, port)
	}
	// Parked routers replay their skipped cycles before any state is read or
	// mutated, so victim scans see exactly what a never-skipping kernel would.
	n.syncIdle()
	victims := a.LinkVictims(port, n.victimScratch[:0])
	victims = b.LinkVictims(rev, victims)
	n.dropVictims(victims)
	a.ReleaseGrants(port)
	b.ReleaseGrants(rev)
	a.Disconnect(port)
	b.Disconnect(rev)
	a.ResetOutputPort(port)
	b.ResetOutputPort(rev)
	n.linkDown[n.linkKey(node, port)] = true
	n.failedLinks++
	n.afterTopologyChange()
	return ""
}

func (n *Network) applyHealLink(node topology.Node, port int) string {
	if int(node) < 0 || int(node) >= len(n.routers) || port < 0 || port >= n.topo.Degree() {
		return fmt.Sprintf("no such link %d/%d", node, port)
	}
	nb, ok := n.topo.Neighbor(node, port)
	if !ok {
		return fmt.Sprintf("no such link %d/%d", node, port)
	}
	key := n.linkKey(node, port)
	if !n.linkDown[key] {
		return fmt.Sprintf("link %d/%d is not failed", node, port)
	}
	if n.RouterDead(node) || n.RouterDead(nb) {
		return fmt.Sprintf("an endpoint of link %d/%d is dead; heal the router instead", node, port)
	}
	a, b := n.routers[node], n.routers[nb]
	rev := n.reversePort(node, port)
	a.Connect(port, b)
	b.Connect(rev, a)
	// The kill already reset both ends; reset again so a heal is clean even
	// after a snapshot restore replayed only the wiring.
	a.ResetOutputPort(port)
	b.ResetOutputPort(rev)
	delete(n.linkDown, key)
	n.failedLinks--
	n.afterTopologyChange()
	return ""
}

func (n *Network) applyKillRouter(node topology.Node) string {
	if n.cfg.Router.Recovery == router.RecoveryConcurrent {
		return "reconfiguration is not supported with concurrent recovery (its Hamiltonian lanes assume an intact path)"
	}
	if int(node) < 0 || int(node) >= len(n.routers) {
		return fmt.Sprintf("no such router %d", node)
	}
	if n.routerDead[node] {
		return fmt.Sprintf("router %d is already dead", node)
	}
	if !n.liveConnectedExcluding(int(node)) {
		return fmt.Sprintf("killing router %d would disconnect (or empty) the live network", node)
	}
	n.syncIdle()
	d := n.routers[node]
	// Three victim classes: packets buffered at the dying router, packets
	// waiting (or streaming) at its source, and packets anywhere in the
	// network addressed to it — none can ever be delivered.
	victims := d.LocalPackets(n.victimScratch[:0])
	q := &n.nis[node]
	if q.cur != nil {
		victims = append(victims, q.cur)
	}
	for i := q.qhead; i < len(q.queue); i++ {
		victims = append(victims, q.queue[i])
	}
	for _, p := range n.collectPackets() {
		if p.Dst == node {
			victims = append(victims, p)
		}
	}
	n.dropVictims(victims)
	for p := 0; p < n.topo.Degree(); p++ {
		nb := d.Neighbor(p)
		if nb == nil {
			continue
		}
		rev := n.reversePort(node, p)
		// Surviving packets at the neighbor still aimed into the dying router
		// re-route next cycle.
		nb.ReleaseGrants(rev)
		d.Disconnect(p)
		nb.Disconnect(rev)
		d.ResetOutputPort(p)
		nb.ResetOutputPort(rev)
	}
	n.routerDead[node] = true
	n.deadCount++
	n.afterTopologyChange()
	return ""
}

func (n *Network) applyHealRouter(node topology.Node) string {
	if int(node) < 0 || int(node) >= len(n.routers) {
		return fmt.Sprintf("no such router %d", node)
	}
	if !n.routerDead[node] {
		return fmt.Sprintf("router %d is not dead", node)
	}
	// The healed router must rejoin the (connected) live component through at
	// least one restorable link, or it would come back isolated.
	restorable := 0
	for p := 0; p < n.topo.Degree(); p++ {
		nb, ok := n.topo.Neighbor(node, p)
		if !ok || n.routerDead[nb] {
			continue
		}
		if n.linkDown[n.linkKey(node, p)] {
			continue
		}
		restorable++
	}
	if restorable == 0 {
		return fmt.Sprintf("healing router %d would leave it isolated (every link is down or leads to a dead router)", node)
	}
	n.routerDead[node] = false
	n.deadCount--
	d := n.routers[node]
	for p := 0; p < n.topo.Degree(); p++ {
		nb, ok := n.topo.Neighbor(node, p)
		if !ok || n.routerDead[nb] || n.linkDown[n.linkKey(node, p)] {
			continue
		}
		b := n.routers[nb]
		rev := n.reversePort(node, p)
		d.Connect(p, b)
		b.Connect(rev, d)
		d.ResetOutputPort(p)
		b.ResetOutputPort(rev)
	}
	n.afterTopologyChange()
	return ""
}

func (n *Network) applySwapAlgorithm(name string) string {
	alg, err := routing.ByName(name)
	if err != nil {
		return err.Error()
	}
	if need := alg.MinVCs(n.topo); n.cfg.Router.VCs < need {
		return fmt.Sprintf("%s needs >= %d VCs on %s, have %d", alg.Name(), need, n.topo.Name(), n.cfg.Router.VCs)
	}
	n.curAlg = alg
	for _, r := range n.routers {
		r.SetAlgorithm(alg)
	}
	return ""
}

// afterTopologyChange rebuilds the Deadlock Buffer next-hop table over the
// surviving links and refreshes every lane whose header is still at the
// lane head (frozen chains keep their established route; if one crossed the
// removed resource its packet was already dropped as a victim).
func (n *Network) afterTopologyChange() {
	n.rebuildDBTable()
	for _, r := range n.routers {
		r.RefreshDBRoutes()
	}
}

// dropVictims drops each distinct packet in victims (the list may contain
// duplicates — a packet can be a victim at both endpoints of a link) and
// returns the scratch buffers to their pools.
func (n *Network) dropVictims(victims []*packet.Packet) {
	if n.seenScratch == nil {
		n.seenScratch = make(map[*packet.Packet]bool)
	}
	seen := n.seenScratch
	for _, p := range victims {
		if seen[p] {
			continue
		}
		seen[p] = true
		n.dropPacket(p)
	}
	for p := range seen {
		delete(seen, p)
	}
	for i := range victims {
		victims[i] = nil
	}
	n.victimScratch = victims[:0]
}

// dropPacket removes every trace of p from the network — input VCs, output
// ownership, Deadlock Buffer lanes, its source queue and injection stream,
// and the recovery Token if p holds it — and accounts the loss: an injected
// packet counts as PacketsLost with its discarded flits in FlitsLost; a
// packet dropped before injection (queued for a destination that just died)
// counts as PacketsUnroutable. Unlike abort-retry kills, dropped packets are
// not retransmitted, and partial delivery is tolerated: a packet whose head
// already reached its destination simply never delivers its tail.
func (n *Network) dropPacket(p *packet.Packet) {
	flits := 0
	for _, r := range n.routers {
		flits += r.PurgePacket(p)
		flits += r.PurgeDB(p)
	}
	q := &n.nis[p.Src]
	if q.cur == p {
		q.cur, q.seq = nil, 0
	}
	q.remove(p)
	if n.token != nil {
		n.token.Drop(p)
	}
	if p.InjectedAt >= 0 {
		n.outstanding[p.Src]--
		n.counters.PacketsLost++
		n.counters.FlitsLost += int64(flits)
	} else {
		n.counters.PacketsUnroutable++
	}
	n.traceEvent(trace.Drop, p.Src, p.ID)
	if n.tel != nil {
		n.tel.Episodes.Killed(int64(p.ID), int64(n.clock.Now()))
	}
}

// replayOutcome re-applies one logged reconfiguration event's topology-side
// effects during snapshot restore: wiring, link/router liveness flags and
// the routing function. Victim drops, channel resets and counter updates are
// NOT repeated — the decoded state already reflects them. It reports whether
// the event changed the topology (the caller rebuilds the DB next-hop table
// once, after the whole log).
func (n *Network) replayOutcome(o ReconfigOutcome) (topoChanged bool, err error) {
	n.reconfigLog = append(n.reconfigLog, o)
	if !o.Applied {
		return false, nil
	}
	switch o.Kind {
	case ReconfigKillLink:
		if int(o.Node) < 0 || int(o.Node) >= len(n.routers) || o.Port < 0 || o.Port >= n.topo.Degree() {
			return false, fmt.Errorf("no such link")
		}
		a := n.routers[o.Node]
		b := a.Neighbor(o.Port)
		if b == nil {
			return false, fmt.Errorf("link already down")
		}
		a.Disconnect(o.Port)
		b.Disconnect(n.reversePort(o.Node, o.Port))
		n.linkDown[n.linkKey(o.Node, o.Port)] = true
		n.failedLinks++
		return true, nil
	case ReconfigHealLink:
		if int(o.Node) < 0 || int(o.Node) >= len(n.routers) || o.Port < 0 || o.Port >= n.topo.Degree() {
			return false, fmt.Errorf("no such link")
		}
		nb, ok := n.topo.Neighbor(o.Node, o.Port)
		if !ok {
			return false, fmt.Errorf("no such link")
		}
		key := n.linkKey(o.Node, o.Port)
		if !n.linkDown[key] {
			return false, fmt.Errorf("link was not down")
		}
		n.routers[o.Node].Connect(o.Port, n.routers[nb])
		n.routers[nb].Connect(n.reversePort(o.Node, o.Port), n.routers[o.Node])
		delete(n.linkDown, key)
		n.failedLinks--
		return true, nil
	case ReconfigKillRouter:
		if int(o.Node) < 0 || int(o.Node) >= len(n.routers) {
			return false, fmt.Errorf("no such router")
		}
		if n.routerDead[o.Node] {
			return false, fmt.Errorf("router already dead")
		}
		d := n.routers[o.Node]
		for p := 0; p < n.topo.Degree(); p++ {
			if nb := d.Neighbor(p); nb != nil {
				d.Disconnect(p)
				nb.Disconnect(n.reversePort(o.Node, p))
			}
		}
		n.routerDead[o.Node] = true
		n.deadCount++
		return true, nil
	case ReconfigHealRouter:
		if int(o.Node) < 0 || int(o.Node) >= len(n.routers) || !n.routerDead[o.Node] {
			return false, fmt.Errorf("router was not dead")
		}
		n.routerDead[o.Node] = false
		n.deadCount--
		d := n.routers[o.Node]
		for p := 0; p < n.topo.Degree(); p++ {
			nb, ok := n.topo.Neighbor(o.Node, p)
			if !ok || n.routerDead[nb] || n.linkDown[n.linkKey(o.Node, p)] {
				continue
			}
			d.Connect(p, n.routers[nb])
			n.routers[nb].Connect(n.reversePort(o.Node, p), d)
		}
		return true, nil
	case ReconfigSwapAlgorithm:
		alg, err := routing.ByName(o.Alg)
		if err != nil {
			return false, err
		}
		n.curAlg = alg
		for _, r := range n.routers {
			r.SetAlgorithm(alg)
		}
		return false, nil
	default:
		return false, fmt.Errorf("unknown kind %d", int(o.Kind))
	}
}

// liveConnectedExcluding checks that every live router (dead routers and,
// when exclude >= 0, the router about to die are not counted) is reachable
// from any other over live links. Links are killed in pairs, so the live
// graph is symmetric and one BFS suffices. An empty live set is reported as
// disconnected: killing the last router is rejected.
func (n *Network) liveConnectedExcluding(exclude int) bool {
	alive, start := 0, -1
	for i := range n.routers {
		if i == exclude || (n.deadCount != 0 && n.routerDead[i]) {
			continue
		}
		alive++
		if start < 0 {
			start = i
		}
	}
	if alive == 0 {
		return false
	}
	seen := make([]bool, len(n.routers))
	queue := []topology.Node{topology.Node(start)}
	seen[start] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		r := n.routers[cur]
		for p := 0; p < n.topo.Degree(); p++ {
			nb := r.Neighbor(p)
			if nb == nil || int(nb.NodeID()) == exclude || seen[nb.NodeID()] {
				continue
			}
			seen[nb.NodeID()] = true
			count++
			queue = append(queue, nb.NodeID())
		}
	}
	return count == alive
}
