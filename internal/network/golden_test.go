package network

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Regenerate the golden digests after an intentional behavior change with:
//
//	go test ./internal/network -run TestGoldenDigests -update-golden
//
// Then inspect the diff of testdata/golden_digests.json and explain the
// change in the commit message: a digest change means every simulation
// result in results/ shifts too.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digests.json from the current kernel")

const goldenFile = "testdata/golden_digests.json"

// goldenCase is one pinned simulation: a routing algorithm on an 8x8
// network, fixed seed, fixed cycle count. The DISHA case is tuned to be
// deadlock-prone (tight buffers, low T_out, high load) so the digest also
// pins detection and Token-recovery behavior, not just benign routing.
type goldenCase struct {
	name   string
	cycles int
	build  func() Config
}

func goldenCases() []goldenCase {
	seqRecovery := func(alg routing.Algorithm, topo topology.Topology, load float64) Config {
		cfg := testConfig(topo, alg, load, 42)
		return cfg
	}
	return []goldenCase{
		{
			name:   "disha",
			cycles: 600,
			build: func() Config {
				cfg := testConfig(topology.MustTorus(8, 8), routing.Disha(0), 0.6, 42)
				cfg.Router.VCs = 2
				cfg.Router.BufferDepth = 1
				cfg.Router.Timeout = 4
				return cfg
			},
		},
		{
			name:   "dor",
			cycles: 600,
			build:  func() Config { return seqRecovery(routing.DOR(), topology.MustTorus(8, 8), 0.4) },
		},
		{
			name:   "negfirst",
			cycles: 600,
			build:  func() Config { return seqRecovery(routing.NegativeFirst(), topology.MustMesh(8, 8), 0.4) },
		},
		{
			name:   "dallyaoki",
			cycles: 600,
			build:  func() Config { return seqRecovery(routing.DallyAoki(), topology.MustTorus(8, 8), 0.4) },
		},
		{
			name:   "duato",
			cycles: 600,
			build:  func() Config { return seqRecovery(routing.Duato(), topology.MustTorus(8, 8), 0.5) },
		},
		// Non-cube digraph topologies route the Deadlock Buffer lane by the
		// BFS next-hop table instead of dimension order; these cases pin
		// that machinery (and Token circulation over a declared, non-
		// serpentine lane) with the same tight deadlock-prone knobs.
		{
			name:   "fullmesh",
			cycles: 600,
			build: func() Config {
				cfg := testConfig(topology.MustFullMesh(16), routing.Disha(1), 0.4, 42)
				cfg.Router.VCs = 2
				cfg.Router.BufferDepth = 1
				cfg.Router.Timeout = 4
				return cfg
			},
		},
		{
			name:   "dragonfly",
			cycles: 600,
			build: func() Config {
				cfg := testConfig(topology.MustDragonfly(4, 2), routing.Disha(2), 0.5, 42)
				cfg.Router.VCs = 2
				cfg.Router.BufferDepth = 2
				cfg.Router.Timeout = 8
				return cfg
			},
		},
		{
			name:   "fattree",
			cycles: 600,
			build: func() Config {
				cfg := testConfig(topology.MustFatTree(4), routing.Disha(1), 0.5, 42)
				cfg.Router.VCs = 2
				cfg.Router.BufferDepth = 2
				cfg.Router.Timeout = 8
				return cfg
			},
		},
	}
}

// runCase steps a fresh network for the case's cycle budget with the given
// shard count, checking structural invariants along the way, and returns the
// final state fingerprint.
func runCase(t *testing.T, gc goldenCase, shards int) string {
	return runCaseKernel(t, gc, KernelConfig{Shards: shards})
}

// runCaseKernel is runCase with full kernel-knob control: shard count,
// reference vs optimized scan path, active-set scheduler on or off. Every
// combination must land on the same committed digest.
func runCaseKernel(t *testing.T, gc goldenCase, kern KernelConfig) string {
	t.Helper()
	cfg := gc.build()
	cfg.Kernel = kern
	n := mustNet(t, cfg)
	defer n.Close()
	for i := 0; i < gc.cycles; i++ {
		n.Step()
		if i%50 == 49 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d (kernel=%+v): %v", i+1, kern, err)
			}
		}
	}
	return n.FingerprintHex()
}

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	var m map[string]string
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	return m
}

// TestGoldenDigests pins the simulation's full observable behavior — five
// routing algorithms on cubes plus DISHA on the three non-cube digraph
// topologies, fixed seeds — against committed SHA-256 digests,
// and proves the parallel kernel's determinism contract: Shards ∈ {1,2,4,8}
// must produce byte-identical state to the serial kernel.
func TestGoldenDigests(t *testing.T) {
	digests := make(map[string]string)
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			serial := runCase(t, gc, 0)
			for _, shards := range []int{1, 2, 4, 8} {
				if got := runCase(t, gc, shards); got != serial {
					t.Fatalf("shards=%d digest %s differs from serial %s", shards, got, serial)
				}
			}
			digests[gc.name] = serial
		})
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(digests, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenFile)
		return
	}

	want := readGolden(t)
	for name, got := range digests {
		if want[name] == "" {
			t.Errorf("%s: no golden digest committed (run with -update-golden)", name)
		} else if got != want[name] {
			t.Errorf("%s: digest %s, golden %s — simulation behavior changed; if intentional, regenerate with -update-golden", name, got, want[name])
		}
	}
}

// TestGoldenKernelVariants proves every kernel knob digest-invariant against
// the same committed goldens: the retained reference scan path (serial and
// sharded), the active-set scheduler disabled, and both at once must all
// land on the digests the optimized SoA path produced. A divergence here
// with TestGoldenDigests green means the reference and optimized scans have
// drifted apart — exactly the regression the SoA refactor's conformance
// layer exists to catch.
func TestGoldenKernelVariants(t *testing.T) {
	if *updateGolden {
		t.Skip("golden digests are updated by TestGoldenDigests")
	}
	want := readGolden(t)
	variants := []struct {
		name string
		kern KernelConfig
	}{
		{"reference-serial", KernelConfig{ReferenceScan: true}},
		{"reference-shards4", KernelConfig{ReferenceScan: true, Shards: 4}},
		{"activeset-off", KernelConfig{DisableActiveSet: true}},
		{"reference-activeset-off", KernelConfig{ReferenceScan: true, DisableActiveSet: true}},
	}
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			for _, v := range variants {
				if got := runCaseKernel(t, gc, v.kern); got != want[gc.name] {
					t.Errorf("%s: digest %s, golden %s", v.name, got, want[gc.name])
				}
			}
		})
	}
}

// TestGoldenDishaExercisesRecovery guards the DISHA golden case against
// silently degenerating into benign traffic: the digest only pins recovery
// behavior if deadlocks actually occur.
func TestGoldenDishaExercisesRecovery(t *testing.T) {
	var disha goldenCase
	for _, gc := range goldenCases() {
		if gc.name == "disha" {
			disha = gc
		}
	}
	cfg := disha.build()
	n := mustNet(t, cfg)
	defer n.Close()
	n.Run(disha.cycles)
	c := n.Counters()
	if c.TimeoutEvents == 0 || c.TokenSeizures == 0 {
		t.Fatalf("golden disha case is not deadlock-prone: timeouts=%d seizures=%d", c.TimeoutEvents, c.TokenSeizures)
	}
}
