package network

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

func abortRetryConfig(seed uint64) Config {
	topo := topology.MustTorus(4, 4)
	cfg := testConfig(topo, routing.Disha(0), 0.9, seed)
	cfg.Router.VCs = 1
	cfg.Router.BufferDepth = 1
	cfg.Router.Timeout = 8
	cfg.Router.Recovery = router.RecoveryAbortRetry
	cfg.Router.DeadlockBufferDepth = 0 // no DB hardware needed at all
	return cfg
}

// TestAbortRetryDrains stresses the most deadlock-prone configuration under
// kill-and-retransmit recovery: kills must happen and every packet must
// still be delivered exactly once.
func TestAbortRetryDrains(t *testing.T) {
	n := mustNet(t, abortRetryConfig(12))
	if n.Token() != nil {
		t.Fatal("abort-retry must not create a token")
	}
	delivered := map[packet.ID]bool{}
	n.OnDeliver = func(p *packet.Packet) {
		if delivered[p.ID] {
			t.Fatalf("packet %v delivered twice", p)
		}
		delivered[p.ID] = true
	}
	drain(t, n, 4000, 120000)
	c := n.Counters()
	if c.PacketsKilled == 0 {
		t.Fatal("expected kills under saturating 1-VC load")
	}
	// Identity: each kill re-counts the packet as injected on retry.
	if c.PacketsDelivered != c.PacketsInjected-c.PacketsKilled {
		t.Fatalf("delivered %d != injected %d - killed %d",
			c.PacketsDelivered, c.PacketsInjected, c.PacketsKilled)
	}
	if c.Recoveries != 0 || c.TokenSeizures != 0 {
		t.Fatal("abort-retry must not use the Deadlock Buffer lane")
	}
}

// TestAbortRetrySeeds covers several deadlock shapes.
func TestAbortRetrySeeds(t *testing.T) {
	for _, seed := range []uint64{4, 8, 9, 10, 16, 17} {
		n := mustNet(t, abortRetryConfig(seed))
		drain(t, n, 3000, 120000)
	}
}

// TestAbortRetryLatencyPenalty verifies the paper's Section 1 criticism:
// killed packets suffer increased latencies. Every retried packet's age
// must exceed the no-contention minimum by at least one full time-out.
func TestAbortRetryRetriedPacketState(t *testing.T) {
	n := mustNet(t, abortRetryConfig(12))
	retried := 0
	n.OnDeliver = func(p *packet.Packet) {
		if p.Retries > 0 {
			retried++
			if !p.TimedOut {
				t.Fatalf("retried packet %v not marked timed out", p)
			}
			if p.OnDB || p.SeizedToken {
				t.Fatalf("abort-retry packet %v has DB-lane state", p)
			}
			if p.Age() < 8 {
				t.Fatalf("retried packet %v impossibly fast", p)
			}
		}
	}
	drain(t, n, 4000, 120000)
	if retried == 0 {
		t.Skip("no retries at this seed")
	}
}

// TestAbortRetryCreditIntegrity kills packets mid-flight and then checks
// that the credit invariant holds on every link afterwards (purging must
// return exactly the purged flits' credits).
func TestAbortRetryCreditIntegrity(t *testing.T) {
	n := mustNet(t, abortRetryConfig(12))
	topo := n.Topo()
	n.Run(2000)
	if n.Counters().PacketsKilled == 0 {
		t.Skip("no kills at this seed")
	}
	for i, u := range n.Routers() {
		for q := 0; q < topo.Degree(); q++ {
			v, ok := topo.Neighbor(topology.Node(i), q)
			if !ok {
				continue
			}
			down := n.Routers()[v]
			rev := topology.ReversePort(q)
			for vc := 0; vc < 1; vc++ {
				if u.Credits(q, vc)+down.InputOccupancy(rev, vc) != 1 {
					t.Fatalf("credit invariant violated at node %d port %d vc %d", i, q, vc)
				}
			}
		}
	}
	if !n.RunUntilDrained(120000) {
		t.Fatal("did not drain after kills")
	}
}

// TestAbortRetryNeedsNoDeadlockBuffer checks the configuration claim: the
// mode works with DeadlockBufferDepth 0, while DB-lane modes reject it.
func TestAbortRetryNeedsNoDeadlockBuffer(t *testing.T) {
	cfg := abortRetryConfig(1)
	if _, err := New(cfg); err != nil {
		t.Fatalf("abort-retry with no DB rejected: %v", err)
	}
	cfg.Router.Recovery = router.RecoverySequential
	if _, err := New(cfg); err == nil {
		t.Fatal("sequential recovery without a Deadlock Buffer must be rejected")
	}
}
