package network

import (
	"strings"
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

// badLaneGraph overrides a sound topology's declared recovery lane, so the
// constructor's lane validation can be exercised in isolation.
type badLaneGraph struct {
	topology.Graph
	lane []topology.Node
}

func (b badLaneGraph) RecoveryLane() []topology.Node {
	out := make([]topology.Node, len(b.lane))
	copy(out, b.lane)
	return out
}

// TestRejectsUnpairedLinks pins the graceful rejection of digraphs whose
// links have no antiparallel twin: wormhole credits and purges flow along
// the reverse channel, so wiring such a topology used to corrupt credit
// state (or panic) instead of failing construction.
func TestRejectsUnpairedLinks(t *testing.T) {
	uniring, err := topology.NewDigraph("uniring-4", [][]int{{1}, {2}, {3}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(testConfig(uniring, routing.Disha(0), 0.2, 1))
	if err == nil || !strings.Contains(err.Error(), "no reverse channel") {
		t.Fatalf("unpaired digraph: err = %v, want reverse-channel rejection", err)
	}
}

// TestRejectsBadRecoveryLane pins the constructor-time validation of the
// declared recovery lane. A lane that skips nodes, repeats a node, or (for
// concurrent recovery) steps between unlinked nodes used to panic deep in
// wiring; every shape must now surface as an error from New.
func TestRejectsBadRecoveryLane(t *testing.T) {
	base := topology.MustHypercube(2)
	cases := []struct {
		name string
		lane []topology.Node
		mode router.RecoveryMode
		want string
	}{
		{"truncated", []topology.Node{0, 1}, router.RecoverySequential, "visits 2 of 4"},
		{"duplicate", []topology.Node{0, 1, 1, 2}, router.RecoverySequential, "not a permutation"},
		// 0,1,2,3 is a permutation, but 1->2 flips two bits: not a
		// hypercube link, which only concurrent recovery requires.
		{"unlinked step", []topology.Node{0, 1, 2, 3}, router.RecoveryConcurrent, "not a link"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := testConfig(badLaneGraph{base, c.lane}, routing.Disha(0), 0.2, 1)
			cfg.Router.Recovery = c.mode
			_, err := New(cfg)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want %q", err, c.want)
			}
		})
	}
	// The identity lane 0,1,2,3 is fine for Token-serialized recovery,
	// which puts no adjacency requirement on the lane.
	cfg := testConfig(badLaneGraph{base, []topology.Node{0, 1, 2, 3}}, routing.Disha(0), 0.2, 1)
	cfg.Router.Recovery = router.RecoverySequential
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("identity lane rejected for sequential recovery: %v", err)
	}
	n.Close()
}

// TestDigraphTopologiesDrain runs DISHA with Token recovery end-to-end on
// each non-cube constructor: inject, deliver, drain, and keep every
// structural invariant intact.
func TestDigraphTopologiesDrain(t *testing.T) {
	for _, g := range []topology.Graph{
		topology.MustFullMesh(8),
		topology.MustDragonfly(2, 1),
		topology.MustFatTree(4),
	} {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			cfg := testConfig(g, routing.Disha(1), 0.2, 11)
			cfg.Router.VCs = 2
			cfg.Router.BufferDepth = 2
			cfg.Router.Timeout = 8
			n := mustNet(t, cfg)
			defer n.Close()
			drain(t, n, 400, 20000)
			if n.Counters().PacketsDelivered == 0 {
				t.Fatal("no packets delivered")
			}
			if err := n.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDigraphRejectsCoordinateAlgorithms pins the MinVCs gate: the DOR
// family needs cube coordinates and must be refused on a digraph with a
// clear error instead of a type-assertion panic at routing time.
func TestDigraphRejectsCoordinateAlgorithms(t *testing.T) {
	g := topology.MustFullMesh(8)
	for _, alg := range []routing.Algorithm{
		routing.DOR(), routing.NegativeFirst(), routing.DallyAoki(), routing.Duato(),
	} {
		_, err := New(testConfig(g, alg, 0.2, 1))
		if err == nil || !strings.Contains(err.Error(), "not supported on") {
			t.Fatalf("%s on %s: err = %v, want coordinate rejection", alg.Name(), g.Name(), err)
		}
	}
}
