// Package metrics provides the measurement primitives the experiment
// harness uses: latency sample collection with summary statistics,
// histograms, and labeled (x, y) series matching the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Collector accumulates scalar samples (latencies in cycles, typically).
type Collector struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *Collector) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// Count returns the number of samples collected.
func (c *Collector) Count() int { return len(c.samples) }

// Reset discards all samples.
func (c *Collector) Reset() {
	c.samples = c.samples[:0]
	c.sorted = false
}

// Samples exposes the raw sample slice for checkpoint serialization. The
// returned slice aliases the collector's storage and reflects its current
// internal order (insertion order until the first order-statistic query
// sorts in place) — callers must copy before mutating and snapshot before
// querying percentiles if insertion order matters.
func (c *Collector) Samples() []float64 { return c.samples }

// RestoreSamples replaces the collector's contents with vs (taking
// ownership of the slice), reversing Samples across a checkpoint.
func (c *Collector) RestoreSamples(vs []float64) {
	c.samples = vs
	c.sorted = false
}

// Mean returns the sample mean, or 0 with no samples.
func (c *Collector) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// StdDev returns the population standard deviation.
func (c *Collector) StdDev() float64 {
	n := len(c.samples)
	if n == 0 {
		return 0
	}
	m := c.Mean()
	ss := 0.0
	for _, v := range c.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest sample, or 0 with no samples.
func (c *Collector) Min() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return c.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (c *Collector) Max() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted samples.
func (c *Collector) Percentile(p float64) float64 {
	n := len(c.samples)
	if n == 0 {
		return 0
	}
	c.ensureSorted()
	if p <= 0 {
		return c.samples[0]
	}
	if p >= 100 {
		return c.samples[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return c.samples[rank-1]
}

func (c *Collector) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Summary is a fixed snapshot of a Collector.
type Summary struct {
	Count         int
	Mean, StdDev  float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes all summary statistics at once.
func (c *Collector) Summarize() Summary {
	return Summary{
		Count:  c.Count(),
		Mean:   c.Mean(),
		StdDev: c.StdDev(),
		Min:    c.Min(),
		Max:    c.Max(),
		P50:    c.Percentile(50),
		P95:    c.Percentile(95),
		P99:    c.Percentile(99),
	}
}

// String renders the summary on one line for reports and logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.0f p50=%.0f p95=%.0f p99=%.0f max=%.0f",
		s.Count, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Histogram counts samples into uniform-width buckets over [lo, hi); values
// outside the range land in the first/last bucket.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	count   int64
}

// NewHistogram builds a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
}

// Count returns total samples recorded.
func (h *Histogram) Count() int64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.buckets))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// Render draws a simple ASCII bar chart, one line per bucket.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	var max int64 = 1
	for _, b := range h.buckets {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	for i, b := range h.buckets {
		lo, hi := h.BucketBounds(i)
		bar := strings.Repeat("#", int(float64(width)*float64(b)/float64(max)))
		fmt.Fprintf(&sb, "[%8.1f,%8.1f) %8d %s\n", lo, hi, b, bar)
	}
	return sb.String()
}

// --- Mean ± confidence interval ------------------------------------------------

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CI95 returns the 95% confidence halfwidth t * s / sqrt(n) of the mean of
// xs (sample standard deviation, Student-t quantile), or 0 with fewer than
// two samples. It serves both batch-means latency intervals and
// across-replica aggregation in the experiment engine.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	s := math.Sqrt(ss / float64(n-1))
	return TQuantile95(n-1) * s / math.Sqrt(float64(n))
}

// MeanCI is a mean with its 95% confidence halfwidth.
type MeanCI struct {
	Mean float64
	CI95 float64
}

// MeanCI95 summarizes xs as mean ± 95% CI.
func MeanCI95(xs []float64) MeanCI {
	return MeanCI{Mean: Mean(xs), CI95: CI95(xs)}
}

// String renders the estimate as "mean ± half-width".
func (m MeanCI) String() string {
	return fmt.Sprintf("%.2f ± %.2f", m.Mean, m.CI95)
}

// TQuantile95 returns the two-sided 95% Student-t quantile for df degrees of
// freedom (df >= 1), falling back to the normal quantile for large df.
func TQuantile95(df int) float64 {
	table := []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	}
	if df < 1 {
		return table[0]
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}

// Point is one measurement of a sweep: x is the independent variable (load
// rate), and the named fields mirror what the paper's figures plot.
type Point struct {
	X          float64 // offered load rate
	Latency    float64 // mean packet latency, cycles
	Throughput float64 // normalized accepted traffic (fraction of capacity)
	Extra      map[string]float64
}

// Series is a labeled sequence of points, e.g. one curve of Figure 4.
type Series struct {
	Label  string
	Points []Point
}

// Append adds a point keeping X order (appends are expected in order).
func (s *Series) Append(p Point) { s.Points = append(s.Points, p) }

// CSV renders the series as lines "label,x,latency,throughput[,extras]"
// with a header derived from the first point's Extra keys (sorted).
func (s *Series) CSV() string {
	var sb strings.Builder
	keys := s.extraKeys()
	sb.WriteString("series,load,latency,throughput")
	for _, k := range keys {
		sb.WriteString("," + k)
	}
	sb.WriteString("\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%s,%.4f,%.3f,%.4f", s.Label, p.X, p.Latency, p.Throughput)
		for _, k := range keys {
			fmt.Fprintf(&sb, ",%.6g", p.Extra[k])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func (s *Series) extraKeys() []string {
	if len(s.Points) == 0 {
		return nil
	}
	keys := make([]string, 0, len(s.Points[0].Extra))
	for k := range s.Points[0].Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SaturationLoad estimates the saturation point of a latency-vs-load curve:
// the smallest X whose latency exceeds threshold times the zero-load
// latency (the curve's first point). It returns the last X plus one step if
// the curve never saturates within the sweep.
func (s *Series) SaturationLoad(threshold float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	base := s.Points[0].Latency
	if base <= 0 {
		base = 1
	}
	for _, p := range s.Points {
		if p.Latency > base*threshold {
			return p.X
		}
	}
	last := s.Points[len(s.Points)-1].X
	if len(s.Points) > 1 {
		last += s.Points[len(s.Points)-1].X - s.Points[len(s.Points)-2].X
	}
	return last
}

// PeakThroughput returns the maximum throughput reached across the sweep.
func (s *Series) PeakThroughput() float64 {
	peak := 0.0
	for _, p := range s.Points {
		if p.Throughput > peak {
			peak = p.Throughput
		}
	}
	return peak
}
