package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCollectorEmpty(t *testing.T) {
	var c Collector
	if c.Count() != 0 || c.Mean() != 0 || c.StdDev() != 0 || c.Min() != 0 || c.Max() != 0 || c.Percentile(50) != 0 {
		t.Fatal("empty collector must be all zeros")
	}
}

func TestCollectorStats(t *testing.T) {
	var c Collector
	for _, v := range []float64{4, 2, 8, 6} {
		c.Add(v)
	}
	if c.Count() != 4 {
		t.Fatalf("count %d", c.Count())
	}
	if c.Mean() != 5 {
		t.Fatalf("mean %v", c.Mean())
	}
	if c.Min() != 2 || c.Max() != 8 {
		t.Fatalf("min/max %v/%v", c.Min(), c.Max())
	}
	// population sd of {2,4,6,8} = sqrt(5)
	if math.Abs(c.StdDev()-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("sd %v", c.StdDev())
	}
	if c.Percentile(50) != 4 {
		t.Fatalf("p50 %v", c.Percentile(50))
	}
	if c.Percentile(0) != 2 || c.Percentile(100) != 8 {
		t.Fatal("extreme percentiles wrong")
	}
}

func TestCollectorAddAfterSort(t *testing.T) {
	var c Collector
	c.Add(5)
	_ = c.Min() // forces sort
	c.Add(1)
	if c.Min() != 1 {
		t.Fatal("sort cache not invalidated by Add")
	}
}

func TestCollectorReset(t *testing.T) {
	var c Collector
	c.Add(1)
	c.Reset()
	if c.Count() != 0 || c.Mean() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSummarize(t *testing.T) {
	var c Collector
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	s := c.Summarize()
	if s.Count != 100 || s.Mean != 50.5 || s.P50 != 50 || s.P95 != 95 || s.P99 != 99 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Fatal("summary string missing count")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var c Collector
		for _, v := range raw {
			c.Add(float64(v))
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := c.Percentile(a), c.Percentile(b)
		return pa <= pb && pa >= c.Min() && pb <= c.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Bucket(0) != 3 { // 0, 1.9, -3 (clamped)
		t.Fatalf("bucket0 %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(2) != 1 {
		t.Fatal("mid buckets wrong")
	}
	if h.Bucket(4) != 2 { // 9.9 and 42 (clamped)
		t.Fatalf("bucket4 %d", h.Bucket(4))
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bounds %v %v", lo, hi)
	}
	if h.Buckets() != 5 {
		t.Fatal("bucket count")
	}
	if !strings.Contains(h.Render(10), "#") {
		t.Fatal("render missing bars")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Label: "disha-m0"}
	s.Append(Point{X: 0.1, Latency: 40, Throughput: 0.1, Extra: map[string]float64{"seizures": 0}})
	s.Append(Point{X: 0.2, Latency: 45, Throughput: 0.2, Extra: map[string]float64{"seizures": 3}})
	csv := s.CSV()
	if !strings.HasPrefix(csv, "series,load,latency,throughput,seizures\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "disha-m0,0.1000,40.000,0.1000,0") {
		t.Fatalf("csv row wrong: %q", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatal("csv line count wrong")
	}
}

func TestSaturationLoad(t *testing.T) {
	s := Series{Label: "x"}
	for i, lat := range []float64{40, 42, 45, 60, 400, 2000} {
		s.Append(Point{X: 0.1 * float64(i+1), Latency: lat})
	}
	// Threshold 3x base (40) = 120: first exceeded at X=0.5.
	if got := s.SaturationLoad(3); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("saturation %v, want 0.5", got)
	}
	// Never saturates: returns last + step.
	flat := Series{Label: "y"}
	flat.Append(Point{X: 0.1, Latency: 40})
	flat.Append(Point{X: 0.2, Latency: 41})
	if got := flat.SaturationLoad(3); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("unsaturated estimate %v, want 0.3", got)
	}
}

func TestSaturationLoadEdgeCases(t *testing.T) {
	var empty Series
	if empty.SaturationLoad(3) != 0 {
		t.Fatal("empty series saturation must be 0")
	}
	one := Series{Points: []Point{{X: 0.1, Latency: 10}}}
	if got := one.SaturationLoad(3); got != 0.1 {
		t.Fatalf("single-point unsaturated estimate %v", got)
	}
}

func TestPeakThroughput(t *testing.T) {
	s := Series{}
	for _, th := range []float64{0.1, 0.35, 0.3} {
		s.Append(Point{Throughput: th})
	}
	if s.PeakThroughput() != 0.35 {
		t.Fatalf("peak %v", s.PeakThroughput())
	}
}

func TestMeanAndCI95(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{3, 5}) != 4 {
		t.Fatal("mean wrong")
	}
	if CI95(nil) != 0 || CI95([]float64{5}) != 0 {
		t.Fatal("degenerate CIs must be zero")
	}
	// Identical samples: zero variance, zero CI.
	if CI95([]float64{7, 7, 7, 7}) != 0 {
		t.Fatal("zero-variance CI must be zero")
	}
	// Known case: {1,2,3}, sd=1, t(2)=4.303 -> 4.303/sqrt(3)=2.484...
	got := CI95([]float64{1, 2, 3})
	if got < 2.4 || got > 2.6 {
		t.Fatalf("CI95({1,2,3}) = %v", got)
	}
	mc := MeanCI95([]float64{1, 2, 3})
	if mc.Mean != 2 || mc.CI95 != got {
		t.Fatalf("MeanCI95 = %+v", mc)
	}
	if !strings.Contains(mc.String(), "±") {
		t.Fatalf("MeanCI string %q", mc.String())
	}
}

func TestTQuantile95(t *testing.T) {
	if TQuantile95(0) != 12.706 || TQuantile95(1) != 12.706 || TQuantile95(4) != 2.776 || TQuantile95(100) != 1.960 {
		t.Fatal("t quantiles wrong")
	}
}
