//go:build race

package chaos

// raceEnabled lets slow tests skip under the race detector; the CI chaos
// job runs them in a dedicated non-instrumented step instead.
const raceEnabled = true
