package chaos

import (
	"fmt"
	"strings"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// EventReport is the measured outcome of one schedule event. Skipped events
// (infeasible at apply time — e.g. a kill that would disconnect the fabric)
// are closed immediately with zero latencies; applied events stay open until
// the runner observes recovery and reconvergence.
type EventReport struct {
	network.ReconfigOutcome
	// AppliedAt is the clock value just after the Step that applied (or
	// skipped) the event.
	AppliedAt sim.Cycle
	// RecoveryCycles is how many cycles after AppliedAt until no header
	// anywhere was presumed deadlocked (-1 while still recovering).
	RecoveryCycles int64
	// ReconvergeCycles is how many cycles after AppliedAt until, in
	// addition, every Deadlock Buffer lane drained — the DBR notion of the
	// network having reconverged onto the new topology (-1 while pending).
	ReconvergeCycles int64
}

// Runner arms a chaos schedule on a network and measures per-event recovery
// latency and time-to-reconverge as it steps. It only reads network state
// between Steps (ReconfigCount, ReconfigLog, RecoveryBacklog), so driving a
// run through a Runner leaves fingerprints byte-identical to arming the
// schedule and stepping the network directly.
type Runner struct {
	net     *network.Network
	reports []EventReport
	open    int // reports with ReconvergeCycles still pending
	seen    int // reconfig-log entries already turned into reports

	histRecovery   *telemetry.Histogram
	histReconverge *telemetry.Histogram
}

// chaosHistBounds buckets recovery/reconverge latencies in cycles.
var chaosHistBounds = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// NewRunner arms the schedule on the network (events before the current
// cycle are dropped, matching ScheduleReconfig) and returns a runner that
// measures each event as the run proceeds. Events already in the network's
// reconfiguration log (e.g. replayed from a checkpoint) are not re-reported.
func NewRunner(net *network.Network, s *Schedule) (*Runner, error) {
	events, err := s.Reconfig()
	if err != nil {
		return nil, err
	}
	if err := net.ScheduleReconfig(events); err != nil {
		return nil, err
	}
	r := &Runner{net: net, seen: net.ReconfigCount()}
	if hub := net.Telemetry(); hub != nil && hub.Registry != nil {
		r.histRecovery = hub.Registry.Histogram("disha_chaos_recovery_cycles",
			"Cycles from a chaos event until no header is presumed deadlocked.",
			nil, chaosHistBounds)
		r.histReconverge = hub.Registry.Histogram("disha_chaos_reconverge_cycles",
			"Cycles from a chaos event until the Deadlock Buffer lane drains.",
			nil, chaosHistBounds)
	}
	return r, nil
}

// Step advances the network one cycle and folds any newly applied events
// and recovery progress into the reports.
func (r *Runner) Step() {
	r.net.Step()
	r.observe()
}

// Run steps the network the given number of cycles.
func (r *Runner) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		r.Step()
	}
}

// RunTo steps until the clock reaches the given cycle.
func (r *Runner) RunTo(cycle sim.Cycle) {
	for r.net.Now() < cycle {
		r.Step()
	}
}

// observe turns new reconfiguration-log entries into reports and closes
// open reports once the network has recovered and reconverged. It reads
// but never mutates network state.
func (r *Runner) observe() {
	if n := r.net.ReconfigCount(); n > r.seen {
		log := r.net.ReconfigLog()
		now := r.net.Now()
		for _, o := range log[r.seen:] {
			rep := EventReport{
				ReconfigOutcome:  o,
				AppliedAt:        now,
				RecoveryCycles:   -1,
				ReconvergeCycles: -1,
			}
			if !o.Applied {
				rep.RecoveryCycles = 0
				rep.ReconvergeCycles = 0
			} else {
				r.open++
			}
			r.reports = append(r.reports, rep)
		}
		r.seen = n
	}
	if r.open == 0 {
		return
	}
	presumed, busy := r.net.RecoveryBacklog()
	if presumed != 0 {
		return
	}
	now := r.net.Now()
	for i := range r.reports {
		rep := &r.reports[i]
		if !rep.Applied || rep.ReconvergeCycles >= 0 {
			continue
		}
		if rep.RecoveryCycles < 0 {
			rep.RecoveryCycles = int64(now - rep.AppliedAt)
			if r.histRecovery != nil {
				r.histRecovery.Observe(float64(rep.RecoveryCycles))
			}
		}
		if busy == 0 {
			rep.ReconvergeCycles = int64(now - rep.AppliedAt)
			if r.histReconverge != nil {
				r.histReconverge.Observe(float64(rep.ReconvergeCycles))
			}
			r.open--
		}
	}
}

// Sync folds the network's current state into the reports without stepping.
// Call it after stepping the network outside the runner (e.g. a drain), so
// events that recovered during those cycles are closed.
func (r *Runner) Sync() { r.observe() }

// Reports returns a copy of the per-event reports accumulated so far.
func (r *Runner) Reports() []EventReport {
	return append([]EventReport(nil), r.reports...)
}

// Open returns how many applied events have not yet reconverged.
func (r *Runner) Open() int { return r.open }

// Summary aggregates the campaign: event counts, total losses, and worst
// latencies among closed events.
type Summary struct {
	Events            int
	Applied           int
	Skipped           int
	Open              int
	PacketsLost       int64
	FlitsLost         int64
	PacketsUnroutable int64
	MaxRecovery       int64
	MaxReconverge     int64
}

// Summary computes aggregate statistics over the reports so far.
func (r *Runner) Summary() Summary {
	var s Summary
	s.Events = len(r.reports)
	s.Open = r.open
	for i := range r.reports {
		rep := &r.reports[i]
		if !rep.Applied {
			s.Skipped++
			continue
		}
		s.Applied++
		s.PacketsLost += rep.PacketsLost
		s.FlitsLost += rep.FlitsLost
		s.PacketsUnroutable += rep.PacketsUnroutable
		if rep.RecoveryCycles > s.MaxRecovery {
			s.MaxRecovery = rep.RecoveryCycles
		}
		if rep.ReconvergeCycles > s.MaxReconverge {
			s.MaxReconverge = rep.ReconvergeCycles
		}
	}
	return s
}

// FormatReports renders the per-event reports as a fixed-width table for
// disha-sim's chaos output.
func FormatReports(reports []EventReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-40s %-8s %6s %6s %8s %8s\n",
		"cycle", "event", "status", "lost", "flits", "recover", "reconv")
	for i := range reports {
		rep := &reports[i]
		status := "applied"
		if !rep.Applied {
			status = "skipped"
		}
		rec, conv := "-", "-"
		if rep.Applied && rep.RecoveryCycles >= 0 {
			rec = fmt.Sprintf("%d", rep.RecoveryCycles)
		}
		if rep.Applied && rep.ReconvergeCycles >= 0 {
			conv = fmt.Sprintf("%d", rep.ReconvergeCycles)
		}
		fmt.Fprintf(&b, "%-7d %-40s %-8s %6d %6d %8s %8s\n",
			int64(rep.Cycle), rep.ReconfigEvent.String(), status,
			rep.PacketsLost, rep.FlitsLost, rec, conv)
	}
	return b.String()
}
