package chaos

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func testConfig(topo topology.Graph, load float64, seed uint64) network.Config {
	rc := router.Default()
	rc.Timeout = 8
	rc.DeadlockBufferDepth = 1
	return network.Config{
		Topo:      topo,
		Router:    rc,
		Algorithm: routing.Disha(2),
		Pattern:   traffic.Uniform(topo),
		LoadRate:  load,
		MsgLen:    8,
		Seed:      seed,
	}
}

func mustNet(t *testing.T, cfg network.Config) *network.Network {
	t.Helper()
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestGenerateDeterministic: the same (topology, seed, knobs) must yield a
// byte-identical schedule, and a different seed a different one.
func TestGenerateDeterministic(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	cfg := CampaignConfig{Topo: topo, Seed: 42, Events: 30, RouterKills: true,
		Algorithms: []string{"disha-m1", "disha-m3"}}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	if len(a.Events) != 30 {
		t.Fatalf("wanted 30 events, got %d", len(a.Events))
	}
}

// TestScheduleJSONRoundTrip: Save → Load preserves the schedule exactly.
func TestScheduleJSONRoundTrip(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	s, err := Generate(CampaignConfig{Topo: topo, Seed: 7, Events: 10})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, loaded) {
		t.Fatalf("round trip changed the schedule:\n%+v\n%+v", s, loaded)
	}
}

// TestScheduleValidation rejects malformed schedules.
func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{Events: []Event{{Cycle: 10, Kind: "explode"}}},
		{Events: []Event{{Cycle: -1, Kind: "kill-link"}}},
		{Events: []Event{{Cycle: 20, Kind: "kill-link"}, {Cycle: 10, Kind: "heal-link"}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("schedule %d accepted", i)
		}
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

// TestCampaignAcceptance is the PR's acceptance criterion: a seeded chaos
// campaign with at least 20 kill/heal events on a 16x16 torus runs to
// completion with zero undelivered non-dropped packets, reports per-event
// recovery latency and time-to-reconverge, and replays byte-identically
// from a mid-campaign checkpoint.
func TestCampaignAcceptance(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("16x16 campaign is slow; CI runs it in a dedicated non-race step")
	}
	topo := topology.MustTorus(16, 16)
	sched, err := Generate(CampaignConfig{
		Topo: topo, Seed: 11, Events: 24, Start: 200, Spacing: 150, RouterKills: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) < 20 {
		t.Fatalf("campaign too small: %d events", len(sched.Events))
	}

	cfg := testConfig(topo, 0.35, 11)
	net := mustNet(t, cfg)
	defer net.Close()
	run, err := NewRunner(net, sched)
	if err != nil {
		t.Fatal(err)
	}
	run.RunTo(3500)

	// Mid-campaign checkpoint for the replay half below.
	var ckpt bytes.Buffer
	if err := net.Snapshot(&ckpt); err != nil {
		t.Fatal(err)
	}

	run.RunTo(5500)
	net.StopInjection()
	if !net.RunUntilDrained(120000) {
		t.Fatalf("campaign did not drain: in-flight=%d", net.InFlight())
	}
	run.Sync()

	c := net.Counters()
	if c.PacketsInjected != c.PacketsDelivered+c.PacketsLost {
		t.Fatalf("undelivered non-dropped packets: injected=%d delivered=%d lost=%d",
			c.PacketsInjected, c.PacketsDelivered, c.PacketsLost)
	}
	sum := run.Summary()
	applied := 0
	for _, rep := range run.Reports() {
		if !rep.Applied {
			continue
		}
		applied++
		if rep.RecoveryCycles < 0 || rep.ReconvergeCycles < 0 {
			t.Errorf("event %v never reconverged (recovery=%d reconverge=%d)",
				rep.ReconfigEvent, rep.RecoveryCycles, rep.ReconvergeCycles)
		}
	}
	if applied < 20 {
		t.Fatalf("fewer than 20 events applied: %d (skipped %d)", applied, sum.Skipped)
	}
	if sum.Open != 0 {
		t.Fatalf("%d events still open after drain", sum.Open)
	}
	finalDigest := net.FingerprintHex()
	finalLog := net.ReconfigLog()

	// Replay: fresh network, restore the checkpoint, re-arm the same
	// schedule, drive to the same point — byte-identical state and log.
	net2 := mustNet(t, cfg)
	defer net2.Close()
	if err := net2.Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	run2, err := NewRunner(net2, sched)
	if err != nil {
		t.Fatal(err)
	}
	run2.RunTo(5500)
	net2.StopInjection()
	if !net2.RunUntilDrained(120000) {
		t.Fatal("replay did not drain")
	}
	if got := net2.FingerprintHex(); got != finalDigest {
		t.Fatalf("replay diverged: %s vs %s", got, finalDigest)
	}
	log2 := net2.ReconfigLog()
	if !reflect.DeepEqual(finalLog, log2) {
		t.Fatalf("replayed reconfiguration log differs:\n%v\n%v", finalLog, log2)
	}
}

// TestCampaignShardedRaceClean runs a moderate campaign under the sharded
// kernel and compares against serial — small enough for the race detector,
// which is the point: chaos mutations must be race-clean under the sharded
// kernel and the active-set scheduler.
func TestCampaignShardedRaceClean(t *testing.T) {
	topo := topology.MustTorus(8, 8)
	sched, err := Generate(CampaignConfig{
		Topo: topo, Seed: 5, Events: 12, Start: 150, Spacing: 200, RouterKills: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) string {
		cfg := testConfig(topo, 0.4, 5)
		cfg.Kernel.Shards = shards
		net := mustNet(t, cfg)
		defer net.Close()
		r, err := NewRunner(net, sched)
		if err != nil {
			t.Fatal(err)
		}
		r.Run(4000)
		return net.FingerprintHex()
	}
	if serial, sharded := run(1), run(4); serial != sharded {
		t.Fatalf("sharded campaign diverged: %s vs %s", serial, sharded)
	}
}

// TestRunnerPresenceInvisible: driving a network through a Runner must not
// perturb it — fingerprints match arming the schedule and stepping raw.
func TestRunnerPresenceInvisible(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	sched, err := Generate(CampaignConfig{Topo: topo, Seed: 3, Events: 6, Start: 100, Spacing: 150})
	if err != nil {
		t.Fatal(err)
	}

	raw := mustNet(t, testConfig(topo, 0.4, 5))
	defer raw.Close()
	events, err := sched.Reconfig()
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.ScheduleReconfig(events); err != nil {
		t.Fatal(err)
	}
	raw.Run(1500)

	observed := mustNet(t, testConfig(topo, 0.4, 5))
	defer observed.Close()
	run, err := NewRunner(observed, sched)
	if err != nil {
		t.Fatal(err)
	}
	run.Run(1500)

	if a, b := raw.FingerprintHex(), observed.FingerprintHex(); a != b {
		t.Fatalf("runner observation perturbed the simulation: %s vs %s", a, b)
	}
}

// TestInfeasibleEventsSkippedDeterministically: a schedule naming a
// disconnecting kill is not an error — the network logs it as skipped, and
// both kernel variants agree on the outcome.
func TestInfeasibleEventsSkippedDeterministically(t *testing.T) {
	topo := topology.MustMesh(2, 2)
	s := &Schedule{Events: []Event{
		{Cycle: 50, Kind: "kill-link", Node: 0, Port: topology.PortFor(0, 1)},
		// This second cut would isolate corner 0: it must be skipped.
		{Cycle: 100, Kind: "kill-link", Node: 0, Port: topology.PortFor(1, 1)},
	}}
	net := mustNet(t, testConfig(topo, 0.0, 1))
	defer net.Close()
	run, err := NewRunner(net, s)
	if err != nil {
		t.Fatal(err)
	}
	run.Run(200)
	reps := run.Reports()
	if len(reps) != 2 {
		t.Fatalf("wanted 2 reports, got %d", len(reps))
	}
	if !reps[0].Applied || reps[1].Applied {
		t.Fatalf("wanted applied+skipped, got %v / %v", reps[0].ReconfigOutcome, reps[1].ReconfigOutcome)
	}
	if reps[1].Reason == "" {
		t.Fatal("skipped event has no reason")
	}
}

// TestCampaignAcceptanceFullMesh re-validates the campaign acceptance
// criterion on a non-cube topology class: a seeded kill/heal campaign on a
// 16-node full mesh runs to completion with a balanced loss ledger
// (injected = delivered + lost), every applied event reconverges, and the
// final state is reproducible from the same seed. The full mesh exercises
// the digraph path end-to-end: BFS Deadlock Buffer lane tables, their
// rebuild after reconfiguration, and canonical link keying without cube
// port conventions.
func TestCampaignAcceptanceFullMesh(t *testing.T) {
	topo := topology.MustFullMesh(16)
	sched, err := Generate(CampaignConfig{
		Topo: topo, Seed: 9, Events: 16, Start: 150, Spacing: 120, RouterKills: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func() (string, *network.Network, *Runner) {
		cfg := testConfig(topo, 0.25, 9)
		net := mustNet(t, cfg)
		r, err := NewRunner(net, sched)
		if err != nil {
			t.Fatal(err)
		}
		r.RunTo(2600)
		net.StopInjection()
		if !net.RunUntilDrained(60000) {
			t.Fatalf("campaign did not drain: in-flight=%d", net.InFlight())
		}
		r.Sync()
		return net.FingerprintHex(), net, r
	}

	digest, net, runner := run()
	defer net.Close()

	c := net.Counters()
	if c.PacketsInjected != c.PacketsDelivered+c.PacketsLost {
		t.Fatalf("loss ledger unbalanced: injected=%d delivered=%d lost=%d",
			c.PacketsInjected, c.PacketsDelivered, c.PacketsLost)
	}
	if c.PacketsDelivered == 0 {
		t.Fatal("campaign delivered nothing")
	}
	sum := runner.Summary()
	if sum.Applied == 0 {
		t.Fatalf("no events applied (skipped %d)", sum.Skipped)
	}
	if sum.Open != 0 {
		t.Fatalf("%d events still open after drain", sum.Open)
	}
	for _, rep := range runner.Reports() {
		if rep.Applied && (rep.RecoveryCycles < 0 || rep.ReconvergeCycles < 0) {
			t.Errorf("event %v never reconverged (recovery=%d reconverge=%d)",
				rep.ReconfigEvent, rep.RecoveryCycles, rep.ReconvergeCycles)
		}
	}

	// Same seed, same schedule: the rerun must land on the same digest.
	digest2, net2, _ := run()
	defer net2.Close()
	if digest2 != digest {
		t.Fatalf("rerun diverged: %s vs %s", digest2, digest)
	}
}
