package chaos

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// CampaignConfig parameterizes Generate. Zero values get sensible defaults
// (see Generate); only Topo is mandatory.
type CampaignConfig struct {
	// Topo is the topology the campaign targets; link candidates and
	// feasibility modeling come from it. Any Graph works — campaigns do not
	// need coordinates.
	Topo topology.Graph
	// Seed drives the deterministic RNG; the same (Topo, Seed, knobs)
	// always yields the byte-identical schedule.
	Seed uint64
	// Events is how many events to emit (default 20).
	Events int
	// Start is the cycle of the first event (default 200, past warmup).
	Start int64
	// Spacing is the mean gap between events in cycles (default 300); the
	// actual gap is uniform in [Spacing/2, 3*Spacing/2).
	Spacing int64
	// RouterKills enables kill-router/heal-router events alongside link
	// events (roughly one event in four targets a router when set).
	RouterKills bool
	// MaxDown bounds how many links the generator lets be down at once
	// (default 3); at the cap it emits heals instead of kills.
	MaxDown int
	// Algorithms, when non-empty, mixes swap-algorithm events over these
	// routing names (roughly one event in eight).
	Algorithms []string
}

// linkRef is a canonical link identity matching the network's internal
// key: the smaller endpoint and its port (for radix-2 self-links, the
// smaller port).
type linkRef struct {
	node, port int
}

func canonicalLink(topo topology.Graph, node, port int) (linkRef, bool) {
	nb, ok := topo.Neighbor(topology.Node(node), port)
	if !ok {
		return linkRef{}, false
	}
	rev, paired := topo.ReversePortAt(topology.Node(node), port)
	if !paired {
		// A one-way channel has no second identity; it keys as itself.
		return linkRef{node, port}, true
	}
	if int(nb) < node || (int(nb) == node && rev < port) {
		return linkRef{int(nb), rev}, true
	}
	return linkRef{node, port}, true
}

// Generate builds a seeded random kill/heal campaign over the topology.
// The generator tracks a model of which links are down and which routers
// are dead so most events are feasible, but it does not simulate the
// network: events the live run cannot apply (e.g. a kill that would
// disconnect the fabric, or a kill colliding with an in-progress recovery)
// are skipped deterministically by the network and logged as such — they
// are part of the timeline, not errors. All random choices use index-based
// picks from slices so the schedule is identical across runs and platforms.
func Generate(cfg CampaignConfig) (*Schedule, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("chaos: Generate requires a topology")
	}
	if cfg.Events <= 0 {
		cfg.Events = 20
	}
	if cfg.Start <= 0 {
		cfg.Start = 200
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = 300
	}
	if cfg.MaxDown <= 0 {
		cfg.MaxDown = 3
	}

	topo := cfg.Topo
	rng := sim.NewRNG(cfg.Seed)

	// All links, canonically keyed, in deterministic (node, port) order.
	var allLinks []linkRef
	seen := make(map[linkRef]bool)
	for node := 0; node < topo.Nodes(); node++ {
		for port := 0; port < topo.Degree(); port++ {
			ref, ok := canonicalLink(topo, node, port)
			if !ok || seen[ref] {
				continue
			}
			seen[ref] = true
			allLinks = append(allLinks, ref)
		}
	}

	var down []linkRef // model: links currently down
	var dead []int     // model: routers currently dead
	isDead := func(n int) bool {
		for _, d := range dead {
			if d == n {
				return true
			}
		}
		return false
	}
	isDown := func(ref linkRef) bool {
		for _, d := range down {
			if d == ref {
				return true
			}
		}
		return false
	}

	s := &Schedule{
		Name: fmt.Sprintf("campaign-%s-seed%d", topo.Name(), cfg.Seed),
		Seed: cfg.Seed,
	}
	cycle := cfg.Start
	for len(s.Events) < cfg.Events {
		// Event class: link (default), router (1/4 when enabled), swap
		// (1/8 when algorithms are given). Draw order is fixed so the
		// stream of RNG consumption is part of the schedule's identity.
		roll := rng.Intn(8)
		switch {
		case len(cfg.Algorithms) > 0 && roll == 7:
			alg := cfg.Algorithms[rng.Intn(len(cfg.Algorithms))]
			s.Events = append(s.Events, Event{Cycle: cycle, Kind: "swap-algorithm", Alg: alg})
		case cfg.RouterKills && roll >= 5:
			if len(dead) > 0 && (rng.Bernoulli(0.5) || len(dead) >= cfg.MaxDown) {
				i := rng.Intn(len(dead))
				node := dead[i]
				dead = append(dead[:i], dead[i+1:]...)
				s.Events = append(s.Events, Event{Cycle: cycle, Kind: "heal-router", Node: node})
			} else {
				node := rng.Intn(topo.Nodes())
				if isDead(node) {
					continue // re-roll without advancing the cycle
				}
				dead = append(dead, node)
				s.Events = append(s.Events, Event{Cycle: cycle, Kind: "kill-router", Node: node})
			}
		default:
			if len(down) > 0 && (len(down) >= cfg.MaxDown || rng.Bernoulli(0.5)) {
				i := rng.Intn(len(down))
				ref := down[i]
				down = append(down[:i], down[i+1:]...)
				s.Events = append(s.Events, Event{Cycle: cycle, Kind: "heal-link", Node: ref.node, Port: ref.port})
			} else {
				ref := allLinks[rng.Intn(len(allLinks))]
				if isDown(ref) || isDead(ref.node) {
					continue
				}
				down = append(down, ref)
				s.Events = append(s.Events, Event{Cycle: cycle, Kind: "kill-link", Node: ref.node, Port: ref.port})
			}
		}
		cycle += cfg.Spacing/2 + int64(rng.Intn(int(cfg.Spacing)))
	}
	return s, nil
}

// Reconverged reports whether the network has fully recovered from all
// applied events so far: no header presumed deadlocked and no Deadlock
// Buffer activity anywhere.
func Reconverged(net *network.Network) bool {
	presumed, busy := net.RecoveryBacklog()
	return presumed == 0 && busy == 0
}
