// Package chaos generates, loads and executes reconfiguration campaigns:
// seeded random schedules of link/router kill and heal events (plus routing
// swaps) applied to a live network mid-run through the dynamic
// reconfiguration subsystem (internal/network/reconfig.go). Campaigns are
// deterministic — a (seed, schedule) pair reproduces the identical run
// byte-for-byte, under any kernel shard count and scheduler setting — and
// the runner measures, per event, the packets lost, the recovery latency
// (cycles until no header remains presumed deadlocked) and the time to
// reconverge (cycles until the Deadlock Buffer lane has fully drained). See
// CHAOS.md for the protocol and the replay workflow.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Event is one schedule entry in the JSON event-schedule file format.
// Kind is a network.ReconfigKind string: "kill-link", "heal-link",
// "kill-router", "heal-router" or "swap-algorithm". Node/Port locate the
// target (Port is meaningless for router events); Alg names the routing
// function for swaps (routing.ByName).
type Event struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Node  int    `json:"node,omitempty"`
	Port  int    `json:"port,omitempty"`
	Alg   string `json:"alg,omitempty"`
}

// Schedule is a chaos campaign: an ordered list of reconfiguration events,
// plus the generator seed when Generate produced it (0 for hand-written
// schedules). The JSON form is the on-disk event-schedule file format
// accepted by disha-sim -chaos-script, disha-bisect -chaos-script and
// disha-sweep -chaos.
type Schedule struct {
	Name   string  `json:"name,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// Validate checks the schedule is well-formed: known kinds, non-negative
// cycles and fields, events sorted by non-decreasing cycle.
func (s *Schedule) Validate() error {
	for i, ev := range s.Events {
		if _, ok := network.ParseReconfigKind(ev.Kind); !ok {
			return fmt.Errorf("chaos: event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.Cycle < 0 {
			return fmt.Errorf("chaos: event %d: negative cycle %d", i, ev.Cycle)
		}
		if ev.Node < 0 || ev.Port < 0 {
			return fmt.Errorf("chaos: event %d: negative node or port", i)
		}
		if i > 0 && ev.Cycle < s.Events[i-1].Cycle {
			return fmt.Errorf("chaos: event %d at cycle %d follows cycle %d; schedules must be sorted",
				i, ev.Cycle, s.Events[i-1].Cycle)
		}
	}
	return nil
}

// Reconfig lowers the schedule to the network's event representation,
// validating it first.
func (s *Schedule) Reconfig() ([]network.ReconfigEvent, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make([]network.ReconfigEvent, len(s.Events))
	for i, ev := range s.Events {
		kind, _ := network.ParseReconfigKind(ev.Kind)
		out[i] = network.ReconfigEvent{
			Cycle: sim.Cycle(ev.Cycle),
			Kind:  kind,
			Node:  topology.Node(ev.Node),
			Port:  ev.Port,
			Alg:   ev.Alg,
		}
	}
	return out, nil
}

// Parse decodes a JSON schedule and validates it.
func Parse(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("chaos: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a JSON schedule file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: read schedule: %w", err)
	}
	return Parse(data)
}

// Save writes the schedule as indented JSON.
func (s *Schedule) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
