// Package fabric is the distributed sweep fabric: a coordinator that
// decomposes sweeps into point-grained work units and leases them to remote
// workers over HTTP, and the worker loop that executes leased points through
// the deterministic harness and uploads results.
//
// The design borrows the paper's own recovery philosophy: instead of trying
// to prevent worker failure, the coordinator presumes it on a time-out — a
// lease that is not renewed before its TTL expires is treated as dead and
// its work unit re-dispatched to the next worker, exactly as DISHA presumes
// deadlock after T_out cycles and routes the blocked packet through the
// recovery lane. Progressive recovery is possible too: workers stream
// mid-point checkpoint blobs to the coordinator, and a re-dispatched lease
// carries the last blob so the next worker resumes mid-flight rather than
// from scratch.
//
// Correctness rests on the engine's determinism contract (PR 2): a point's
// result is a pure function of its job key and derived seed, so it does not
// matter which worker runs it, how often it is re-dispatched, or whether a
// presumed-dead worker was actually alive and uploads a duplicate — the
// first result to arrive is the only possible result. That same purity
// makes results cacheable: every unit is keyed by a content fingerprint
// (SHA-256 over job key + seed), finished points land in a shared cache,
// and identical sub-requests across concurrent clients dedupe to at most
// one execution.
//
// Coordinator HTTP API (mounted under /fleet/ by the job server):
//
//	POST /fleet/register    worker announces itself -> lease TTL, poll/heartbeat cadence
//	POST /fleet/lease       acquire the next work unit (204 when none pending)
//	POST /fleet/heartbeat   renew held leases; response lists leases to drop
//	POST /fleet/result      upload a finished point (or a worker-side error)
//	POST /fleet/checkpoint  stream a mid-point checkpoint blob
//	GET  /fleet/status      coordinator stats (JSON)
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/harness"
)

// PointSpec is the portable description of one sweep point: everything a
// worker needs to rebuild the harness spec (via harness.SpecFor) and run
// exactly the point the coordinator leased. The fields mirror the job
// server's SweepRequest plus the point coordinates within the sweep.
type PointSpec struct {
	// Figure and Scale select the canned paper sweep ("3a".."7" at "paper"
	// or "small" scale).
	Figure string `json:"figure"`
	Scale  string `json:"scale,omitempty"`
	// Warmup/Measure/Seed override the scale's cycle counts and base seed
	// (zero keeps the default), matching SweepRequest semantics.
	Warmup  int    `json:"warmup,omitempty"`
	Measure int    `json:"measure,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Alg is the curve label within the figure; Load and Replica locate the
	// point on that curve.
	Alg     string  `json:"alg"`
	Load    float64 `json:"load"`
	Replica int     `json:"replica"`
}

// Spec rebuilds the harness spec this point belongs to.
func (p PointSpec) Spec() (*harness.Spec, error) {
	return harness.SpecFor(p.Figure, p.Scale, p.Warmup, p.Measure, p.Seed, nil)
}

// Fingerprint derives the content identity of a point execution from its
// engine job key and derived seed. The key embeds the full spec
// configuration (figure, scale knobs, cycle counts, base seed — see
// harness.PointKey) and the seed pins the random stream, so two units with
// equal fingerprints are guaranteed to produce byte-identical results; the
// shared result cache and cross-client dedupe key on it.
func Fingerprint(key string, seed uint64) string {
	h := sha256.New()
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	h.Write(s[:])
	h.Write([]byte(key))
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// WorkUnit is one leased point: identity, spec, and (on re-dispatch) the
// last checkpoint blob a previous lease holder streamed up.
type WorkUnit struct {
	Key         string    `json:"key"`
	Fingerprint string    `json:"fingerprint"`
	Seed        uint64    `json:"seed"`
	Point       PointSpec `json:"point"`
	// Checkpoint, when non-empty, is a sealed harness checkpoint of a prior
	// partial execution of this unit; the worker resumes from it.
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// Attempt counts dispatches of this unit (1 = first lease).
	Attempt int `json:"attempt"`
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// RegisterResponse tells the worker the fleet's operating parameters.
type RegisterResponse struct {
	// LeaseTTLSeconds is how long a lease stays valid without a heartbeat.
	LeaseTTLSeconds float64 `json:"lease_ttl_seconds"`
	// PollSeconds is the idle polling cadence for lease acquisition.
	PollSeconds float64 `json:"poll_seconds"`
	// HeartbeatSeconds is how often a busy worker must renew its leases.
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
	// CheckpointEvery, when positive, asks workers to checkpoint in-progress
	// points every that many cycles and stream the blobs up.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// LeaseRequest asks for the next work unit.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries at most one work unit (nil means nothing pending;
// the endpoint then responds 204 with no body).
type LeaseResponse struct {
	Unit *WorkUnit `json:"unit,omitempty"`
}

// HeartbeatRequest renews the leases a worker holds and marks it live.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	// Fingerprints of the units the worker believes it holds.
	Fingerprints []string `json:"fingerprints,omitempty"`
}

// HeartbeatResponse lists leases the coordinator no longer recognizes as
// held by this worker (expired and re-dispatched, or already completed);
// the worker should stop wasting cycles on them when convenient.
type HeartbeatResponse struct {
	Drop []string `json:"drop,omitempty"`
}

// ResultUpload delivers a finished point, or a worker-side failure.
type ResultUpload struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
	Key         string `json:"key"`
	// Result is the measured point; nil when Error is set.
	Result *harness.PointResult `json:"result,omitempty"`
	// Error reports a worker-side execution failure for this unit.
	Error string `json:"error,omitempty"`
}

// CheckpointUpload streams a mid-point checkpoint blob to the coordinator.
type CheckpointUpload struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
	// Blob is the sealed harness checkpoint (see internal/snapshot).
	Blob []byte `json:"blob"`
}
