package fabric

import (
	"sync"
	"time"
)

// RateLimiter is a per-client token bucket: every client identity gets
// Burst tokens refilled at Rate tokens/second, and each admitted request
// spends one. It is the coordinator-side admission control for job
// submissions — a single hot client cannot starve the fleet for everyone
// else.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter admitting rate requests/second with the
// given burst per client. A nil *RateLimiter admits everything, so callers
// can thread an optional limiter without nil checks.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// Allow reports whether a request from client is admitted now. When it is
// not, retryAfter is how long the client must wait for the next token —
// the value the HTTP layer puts in the Retry-After header.
func (l *RateLimiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[client]
	if !found {
		// Opportunistic GC: before adding a client, drop buckets that have
		// refilled completely — they carry no state worth keeping.
		if len(l.buckets) >= 4096 {
			for id, old := range l.buckets {
				if old.tokens+now.Sub(old.last).Seconds()*l.rate >= l.burst {
					delete(l.buckets, id)
				}
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}
