package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
)

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the base URL of the coordinator's fleet API, e.g.
	// "http://host:8080/fleet".
	Coordinator string
	// ID names this worker; it must be unique within the fleet (the default
	// is hostname-pid).
	ID string
	// Parallel is how many points this worker executes concurrently
	// (default 1). Each slot runs its own lease loop.
	Parallel int
	// CheckpointDir is the local directory for mid-point checkpoint files;
	// empty uses a per-run temp directory. Re-dispatched units resume from
	// the coordinator-supplied blob placed here.
	CheckpointDir string
	// Shards configures each simulation's intra-run parallel kernel (0/1 =
	// serial; results identical either way).
	Shards int
	// Client is the HTTP client used for all coordinator calls (default:
	// a client with a 30s timeout).
	Client *http.Client
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Worker is the fleet worker loop: it registers with the coordinator,
// leases work units, executes them through the deterministic harness
// (streaming checkpoint blobs up), and uploads results. Run blocks until
// the context is canceled; cancellation is graceful — points already
// executing finish and upload before Run returns.
type Worker struct {
	opts   WorkerOptions
	client *http.Client

	mu     sync.Mutex
	leases map[string]struct{} // fingerprints currently held, for heartbeats

	reg RegisterResponse
}

// NewWorker builds a worker. Run starts it.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{
		opts:   opts,
		client: client,
		leases: make(map[string]struct{}),
	}
}

// ID returns the worker's fleet identity.
func (w *Worker) ID() string { return w.opts.ID }

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// post sends one JSON request to the coordinator. A nil out skips decoding;
// 204 responses leave out untouched and return (false, nil).
func (w *Worker) post(ctx context.Context, path string, in, out any) (ok bool, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return false, fmt.Errorf("%s: %s (%s)", path, resp.Status, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, fmt.Errorf("%s: decode response: %w", path, err)
		}
	}
	return true, nil
}

// Run executes the worker loop until ctx is canceled. It returns a non-nil
// error only when startup fails (registration, checkpoint dir); a canceled
// context is a clean shutdown and returns nil.
func (w *Worker) Run(ctx context.Context) error {
	ckptDir := w.opts.CheckpointDir
	if ckptDir == "" {
		dir, err := os.MkdirTemp("", "disha-worker-")
		if err != nil {
			return fmt.Errorf("worker: checkpoint dir: %w", err)
		}
		defer os.RemoveAll(dir)
		ckptDir = dir
	} else if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		return fmt.Errorf("worker: checkpoint dir: %w", err)
	}

	// Register, retrying while the coordinator comes up.
	for {
		if _, err := w.post(ctx, "/register", RegisterRequest{Worker: w.opts.ID}, &w.reg); err == nil {
			break
		} else if ctx.Err() != nil {
			return nil
		} else {
			w.logf("register: %v (retrying)", err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(time.Second):
		}
	}
	w.logf("registered with %s (lease ttl %.1fs, poll %.1fs, parallel %d)",
		w.opts.Coordinator, w.reg.LeaseTTLSeconds, w.reg.PollSeconds, w.opts.Parallel)

	// Background heartbeat: renews every held lease at the advertised
	// cadence so a busy worker's leases never expire under it.
	hbCtx, stopHB := context.WithCancel(context.Background())
	defer stopHB()
	go w.heartbeatLoop(hbCtx)

	var wg sync.WaitGroup
	for i := 0; i < w.opts.Parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.leaseLoop(ctx, ckptDir)
		}()
	}
	wg.Wait()
	return nil
}

// heartbeatLoop renews held leases until its context is canceled. It runs
// on a background context so in-flight points keep their leases alive even
// while the main context is already canceled (graceful drain).
func (w *Worker) heartbeatLoop(ctx context.Context) {
	interval := time.Duration(w.reg.HeartbeatSeconds * float64(time.Second))
	if interval <= 0 {
		interval = 5 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			w.mu.Lock()
			fps := make([]string, 0, len(w.leases))
			for fp := range w.leases {
				fps = append(fps, fp)
			}
			w.mu.Unlock()
			if len(fps) == 0 {
				continue
			}
			var resp HeartbeatResponse
			if _, err := w.post(ctx, "/heartbeat", HeartbeatRequest{Worker: w.opts.ID, Fingerprints: fps}, &resp); err != nil {
				w.logf("heartbeat: %v", err)
			}
			// Dropped leases (expired and re-dispatched) are informational:
			// the point finishes anyway and the upload dedupes server-side.
		}
	}
}

// leaseLoop is one execution slot: lease, execute, upload, repeat.
func (w *Worker) leaseLoop(ctx context.Context, ckptDir string) {
	poll := time.Duration(w.reg.PollSeconds * float64(time.Second))
	if poll <= 0 {
		poll = time.Second
	}
	for {
		if ctx.Err() != nil {
			return
		}
		var lease LeaseResponse
		got, err := w.post(ctx, "/lease", LeaseRequest{Worker: w.opts.ID}, &lease)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("lease: %v", err)
			got = false
		}
		if !got || lease.Unit == nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(poll):
			}
			continue
		}
		w.execute(lease.Unit, ckptDir)
	}
}

// execute runs one leased unit to completion and uploads the outcome. It
// deliberately takes no context: once leased, a point runs to completion
// and uploads even during shutdown — abandoning it would only cost the
// fleet a lease-TTL wait before re-dispatch.
func (w *Worker) execute(wu *WorkUnit, ckptDir string) {
	w.mu.Lock()
	w.leases[wu.Fingerprint] = struct{}{}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.leases, wu.Fingerprint)
		w.mu.Unlock()
	}()

	start := time.Now()
	pr, err := w.runUnit(wu, ckptDir)
	up := ResultUpload{Worker: w.opts.ID, Fingerprint: wu.Fingerprint, Key: wu.Key}
	if err != nil {
		up.Error = err.Error()
		w.logf("unit %s failed after %v: %v", wu.Fingerprint, time.Since(start).Round(time.Millisecond), err)
	} else {
		up.Result = &pr
		w.logf("unit %s done in %v (alg=%s load=%.2f attempt=%d)",
			wu.Fingerprint, time.Since(start).Round(time.Millisecond), wu.Point.Alg, wu.Point.Load, wu.Attempt)
	}
	// Upload with retries: a transient coordinator hiccup must not discard
	// a finished simulation.
	uploadCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for attempt := 0; ; attempt++ {
		if _, err := w.post(uploadCtx, "/result", up, nil); err == nil {
			return
		} else if attempt >= 5 || uploadCtx.Err() != nil {
			w.logf("result upload %s abandoned: %v", wu.Fingerprint, err)
			return
		} else {
			w.logf("result upload %s: %v (retrying)", wu.Fingerprint, err)
		}
		time.Sleep(time.Duration(attempt+1) * 500 * time.Millisecond)
	}
}

// runUnit rebuilds the spec, validates the unit's identity against the
// locally derived key and seed (a mismatched coordinator must not poison
// the shared cache), places any coordinator-supplied checkpoint blob, and
// runs the point.
func (w *Worker) runUnit(wu *WorkUnit, ckptDir string) (harness.PointResult, error) {
	spec, err := wu.Point.Spec()
	if err != nil {
		return harness.PointResult{}, fmt.Errorf("rebuild spec: %w", err)
	}
	spec.Shards = w.opts.Shards
	if err := spec.Normalize(); err != nil {
		return harness.PointResult{}, err
	}
	key := spec.PointKey(wu.Point.Alg, wu.Point.Load, wu.Point.Replica)
	if key != wu.Key {
		return harness.PointResult{}, fmt.Errorf("unit key mismatch: coordinator %q, derived %q", wu.Key, key)
	}
	if seed := engine.SeedFor(spec.Seed, key); seed != wu.Seed {
		return harness.PointResult{}, fmt.Errorf("unit seed mismatch: coordinator %x, derived %x", wu.Seed, seed)
	}

	po := harness.PointOptions{Key: key}
	if w.reg.CheckpointEvery > 0 {
		po.CheckpointEvery = w.reg.CheckpointEvery
		po.CheckpointDir = ckptDir
		po.OnCheckpoint = func(data []byte) error {
			// Best effort: a failed stream only costs resume granularity.
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := w.post(ctx, "/checkpoint", CheckpointUpload{
				Worker: w.opts.ID, Fingerprint: wu.Fingerprint, Blob: data,
			}, nil); err != nil {
				w.logf("checkpoint upload %s: %v", wu.Fingerprint, err)
			}
			return nil
		}
		if len(wu.Checkpoint) > 0 {
			// A prior lease holder got partway: resume from its blob.
			path := harness.CheckpointPath(ckptDir, key)
			if err := os.WriteFile(path, wu.Checkpoint, 0o644); err != nil {
				return harness.PointResult{}, fmt.Errorf("place checkpoint: %w", err)
			}
			w.logf("unit %s resuming from %d-byte checkpoint (attempt %d)", wu.Fingerprint, len(wu.Checkpoint), wu.Attempt)
		}
	}
	return spec.RunPoint(wu.Point.Alg, wu.Point.Load, wu.Seed, po)
}
