package fabric

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

func TestFingerprintIdentity(t *testing.T) {
	a := Fingerprint("key-a", 1)
	if a != Fingerprint("key-a", 1) {
		t.Fatal("fingerprint must be deterministic")
	}
	if a == Fingerprint("key-b", 1) {
		t.Fatal("distinct keys must fingerprint differently")
	}
	if a == Fingerprint("key-a", 2) {
		t.Fatal("distinct seeds must fingerprint differently")
	}
	if len(a) != 32 {
		t.Fatalf("fingerprint %q has length %d, want 32 hex chars", a, len(a))
	}
}

// task builds a synthetic point task; the coordinator never interprets the
// spec fields, so placeholders suffice for coordinator-level tests.
func task(n int) (harness.PointTask, PointSpec) {
	key := fmt.Sprintf("unit-%03d", n)
	return harness.PointTask{Key: key, Seed: uint64(1000 + n), Alg: "disha-m3", Load: 0.4},
		PointSpec{Figure: "4", Scale: "small", Alg: "disha-m3", Load: 0.4}
}

func resultFor(n int) harness.PointResult {
	return harness.PointResult{Load: 0.4, MeanLatency: float64(100 + n), Delivered: int64(n)}
}

func TestExecuteRunsLocallyWithoutWorkersAndCaches(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: 5 * time.Second})
	defer c.Close()
	tk, ps := task(1)
	calls := 0
	local := func() (harness.PointResult, error) { calls++; return resultFor(1), nil }

	pr, err := c.Execute(tk, ps, local)
	if err != nil {
		t.Fatal(err)
	}
	if pr.MeanLatency != 101 {
		t.Fatalf("wrong result: %+v", pr)
	}
	if calls != 1 {
		t.Fatalf("local fallback ran %d times, want 1", calls)
	}

	// Identical resubmission: served from the cache, no second execution.
	if _, err := c.Execute(tk, ps, local); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("cache miss on identical unit: local ran %d times", calls)
	}
	st := c.Stats()
	if st.CacheHits != 1 || st.LocalRuns != 1 || st.RemoteRuns != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRemoteLeaseDeliverAndConcurrentDedupe(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: 5 * time.Second})
	defer c.Close()
	c.Heartbeat("w1", nil) // mark a worker live so units queue for the fleet

	tk, ps := task(2)
	localRan := false
	local := func() (harness.PointResult, error) { localRan = true; return resultFor(2), nil }

	var wg sync.WaitGroup
	results := make([]harness.PointResult, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = c.Execute(tk, ps, local)
		}()
	}

	// Wait until the unit is queued, then play the worker.
	var wu *WorkUnit
	for deadline := time.Now().Add(5 * time.Second); wu == nil; {
		if time.Now().After(deadline) {
			t.Fatal("unit never became leasable")
		}
		wu = c.Lease("w1")
		if wu == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if wu.Key != tk.Key || wu.Seed != tk.Seed || wu.Attempt != 1 {
		t.Fatalf("lease: %+v", wu)
	}
	if again := c.Lease("w1"); again != nil {
		t.Fatalf("unit leased twice: %+v", again)
	}
	res := resultFor(2)
	c.Deliver(ResultUpload{Worker: "w1", Fingerprint: wu.Fingerprint, Key: wu.Key, Result: &res})
	wg.Wait()

	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].MeanLatency != 102 {
			t.Fatalf("waiter %d got %+v", i, results[i])
		}
	}
	if localRan {
		t.Fatal("local fallback ran despite a live worker")
	}
	st := c.Stats()
	if st.RemoteRuns != 1 || st.Deduped != 1 || st.UnitsInFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// A duplicate upload from a presumed-dead worker is counted and dropped.
	c.Deliver(ResultUpload{Worker: "w0", Fingerprint: wu.Fingerprint, Key: wu.Key, Result: &res})
	if st := c.Stats(); st.DuplicateResults != 1 {
		t.Fatalf("duplicate upload not counted: %+v", st)
	}
}

func TestLeaseExpiryRedispatchCarriesCheckpoint(t *testing.T) {
	// Worker A leases a unit, streams a checkpoint blob, then goes silent
	// (simulating a SIGKILL). The sweeper must presume it dead after the
	// lease TTL and re-dispatch the unit — checkpoint attached — to worker
	// B, whose result then settles the waiters.
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: 200 * time.Millisecond})
	defer c.Close()

	// Worker B heartbeats continuously so the fleet always has a live
	// worker (otherwise the sweeper would pull the unit in-process).
	stopHB := make(chan struct{})
	defer close(stopHB)
	go func() {
		for {
			select {
			case <-stopHB:
				return
			case <-time.After(25 * time.Millisecond):
				c.Heartbeat("wB", nil)
			}
		}
	}()
	c.Heartbeat("wB", nil)

	tk, ps := task(3)
	done := make(chan harness.PointResult, 1)
	go func() {
		pr, err := c.Execute(tk, ps, func() (harness.PointResult, error) {
			t.Error("local fallback must not run")
			return harness.PointResult{}, nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- pr
	}()

	// Worker A takes the lease and checkpoints some progress.
	var wu *WorkUnit
	for deadline := time.Now().Add(5 * time.Second); wu == nil; {
		if time.Now().After(deadline) {
			t.Fatal("unit never became leasable")
		}
		if wu = c.Lease("wA"); wu == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	c.StoreCheckpoint("wA", wu.Fingerprint, []byte("blob-at-cycle-1000"))
	// ...and is never heard from again.

	var re *WorkUnit
	for deadline := time.Now().Add(10 * time.Second); re == nil; {
		if time.Now().After(deadline) {
			t.Fatal("expired lease was never re-dispatched")
		}
		if re = c.Lease("wB"); re == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if re.Fingerprint != wu.Fingerprint {
		t.Fatalf("re-dispatched unit %q, want %q", re.Fingerprint, wu.Fingerprint)
	}
	if re.Attempt != 2 {
		t.Fatalf("re-dispatch attempt = %d, want 2", re.Attempt)
	}
	if string(re.Checkpoint) != "blob-at-cycle-1000" {
		t.Fatalf("re-dispatch lost the checkpoint blob: %q", re.Checkpoint)
	}
	res := resultFor(3)
	c.Deliver(ResultUpload{Worker: "wB", Fingerprint: re.Fingerprint, Key: re.Key, Result: &res})
	select {
	case pr := <-done:
		if pr.MeanLatency != 103 {
			t.Fatalf("waiter got %+v", pr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never settled after re-dispatched delivery")
	}
	if st := c.Stats(); st.Redispatches == 0 {
		t.Fatalf("redispatch not counted: %+v", st)
	}
}

func TestWorkerErrorsExhaustAttemptsThenRunLocally(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: 5 * time.Second, MaxAttempts: 1})
	defer c.Close()
	c.Heartbeat("w1", nil)

	tk, ps := task(4)
	done := make(chan harness.PointResult, 1)
	go func() {
		pr, err := c.Execute(tk, ps, func() (harness.PointResult, error) { return resultFor(4), nil })
		if err != nil {
			t.Error(err)
		}
		done <- pr
	}()

	var wu *WorkUnit
	for deadline := time.Now().Add(5 * time.Second); wu == nil; {
		if time.Now().After(deadline) {
			t.Fatal("unit never became leasable")
		}
		if wu = c.Lease("w1"); wu == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	c.Deliver(ResultUpload{Worker: "w1", Fingerprint: wu.Fingerprint, Key: wu.Key, Error: "simulated worker failure"})
	select {
	case pr := <-done:
		if pr.MeanLatency != 104 {
			t.Fatalf("local fallback result: %+v", pr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unit never fell back to local execution")
	}
	st := c.Stats()
	if st.WorkerErrors != 1 || st.LocalRuns != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQueueBoundOverflowsToLocal(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: 5 * time.Second, MaxQueue: 1})
	defer c.Close()
	c.Heartbeat("w1", nil)

	tk1, ps1 := task(5)
	tk2, ps2 := task(6)
	first := make(chan harness.PointResult, 1)
	go func() {
		pr, _ := c.Execute(tk1, ps1, func() (harness.PointResult, error) { return resultFor(5), nil })
		first <- pr
	}()
	// Wait for the first unit to occupy the queue.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if c.Stats().QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first unit never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Second unit overflows the bounded queue and runs locally.
	pr, err := c.Execute(tk2, ps2, func() (harness.PointResult, error) { return resultFor(6), nil })
	if err != nil {
		t.Fatal(err)
	}
	if pr.MeanLatency != 106 {
		t.Fatalf("overflow result: %+v", pr)
	}
	if st := c.Stats(); st.QueueFull != 1 {
		t.Fatalf("queue-full overflow not counted: %+v", st)
	}

	// Drain the first unit so its goroutine settles.
	wu := c.Lease("w1")
	if wu == nil {
		t.Fatal("first unit not leasable")
	}
	res := resultFor(5)
	c.Deliver(ResultUpload{Worker: "w1", Fingerprint: wu.Fingerprint, Key: wu.Key, Result: &res})
	<-first
}

func TestFleetMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second, Registry: reg})
	defer c.Close()
	names := reg.Names()
	want := []string{
		"fleet_workers_live", "fleet_leases_outstanding", "fleet_queue_depth",
		"fleet_cache_hit_rate", "fleet_cache_hits_total", "fleet_cache_misses_total",
		"fleet_redispatch_total", "fleet_remote_runs_total", "fleet_local_runs_total",
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Fatalf("metric %s not registered (have %v)", n, names)
		}
	}
}

func TestRateLimiterTokenBucket(t *testing.T) {
	l := NewRateLimiter(10, 2) // 10/s, burst 2
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry <= 0 || retry > 150*time.Millisecond {
		t.Fatalf("retryAfter = %v, want ~100ms at 10 tokens/s", retry)
	}
	// A different client has its own bucket.
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("independent client throttled by alice's bucket")
	}
	// Tokens refill with time.
	time.Sleep(120 * time.Millisecond)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("bucket did not refill")
	}
	// A nil limiter admits everything.
	var nilL *RateLimiter
	if ok, _ := nilL.Allow("anyone"); !ok {
		t.Fatal("nil limiter must admit")
	}
}
