package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxUploadBytes bounds worker upload bodies. Checkpoint blobs are the
// largest payload: a full 16x16 network snapshot is a few MiB, so 64 MiB
// leaves generous headroom while keeping a hostile client from streaming
// an unbounded body into the decoder.
const maxUploadBytes = 64 << 20

// Handler returns the coordinator's HTTP API. Mount it under a /fleet/
// prefix with http.StripPrefix (the job server does this in fleet mode).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /register", c.handleRegister)
	mux.HandleFunc("POST /lease", c.handleLease)
	mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /result", c.handleResult)
	mux.HandleFunc("POST /checkpoint", c.handleCheckpoint)
	mux.HandleFunc("GET /status", c.handleStatus)
	return mux
}

// decodeBody decodes a bounded JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return err
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		err := fmt.Errorf("unexpected data after JSON body")
		writeError(w, http.StatusBadRequest, "%v", err)
		return err
	}
	return nil
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "register: empty worker id")
		return
	}
	c.mu.Lock()
	c.workers[req.Worker] = time.Now()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, RegisterResponse{
		LeaseTTLSeconds:  c.opts.LeaseTTL.Seconds(),
		PollSeconds:      c.opts.PollInterval.Seconds(),
		HeartbeatSeconds: (c.opts.LeaseTTL / 3).Seconds(),
		CheckpointEvery:  c.opts.CheckpointEvery,
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "lease: empty worker id")
		return
	}
	wu := c.Lease(req.Worker)
	if wu == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Unit: wu})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "heartbeat: empty worker id")
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Drop: c.Heartbeat(req.Worker, req.Fingerprints)})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var up ResultUpload
	if err := decodeBody(w, r, &up); err != nil {
		return
	}
	if up.Worker == "" || up.Fingerprint == "" {
		writeError(w, http.StatusBadRequest, "result: empty worker id or fingerprint")
		return
	}
	if up.Result == nil && up.Error == "" {
		writeError(w, http.StatusBadRequest, "result: neither result nor error present")
		return
	}
	c.Deliver(up)
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var up CheckpointUpload
	if err := decodeBody(w, r, &up); err != nil {
		return
	}
	if up.Worker == "" || up.Fingerprint == "" {
		writeError(w, http.StatusBadRequest, "checkpoint: empty worker id or fingerprint")
		return
	}
	c.StoreCheckpoint(up.Worker, up.Fingerprint, up.Blob)
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
