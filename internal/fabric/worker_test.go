package fabric

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
)

// tinyPoint is a fast real simulation point: figure 3a at small scale with
// short cycle counts, one curve, one load.
func tinyPoint(t *testing.T) (harness.PointTask, PointSpec, *harness.Spec) {
	t.Helper()
	ps := PointSpec{
		Figure: "3a", Scale: "small", Warmup: 40, Measure: 80,
		Alg: "disha-m3-tout4", Load: 0.2, Replica: 0,
	}
	spec, err := ps.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	key := spec.PointKey(ps.Alg, ps.Load, ps.Replica)
	seed := engine.SeedFor(spec.Seed, key)
	return harness.PointTask{Key: key, Seed: seed, Alg: ps.Alg, Load: ps.Load, Replica: ps.Replica}, ps, spec
}

// TestWorkerExecutesLeasedPointOverHTTP drives the full remote path: a real
// worker loop against the coordinator's HTTP API executes a real simulation
// point, and the uploaded result is byte-identical to running the same point
// in-process — the determinism contract the whole fabric rests on.
func TestWorkerExecutesLeasedPointOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation point")
	}
	tk, ps, spec := tinyPoint(t)

	// Reference: the same point computed serially in this process.
	want, err := spec.RunPoint(ps.Alg, ps.Load, tk.Seed, harness.PointOptions{Key: tk.Key})
	if err != nil {
		t.Fatal(err)
	}

	c := NewCoordinator(CoordinatorOptions{LeaseTTL: 2 * time.Second})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan error, 1)
	w := NewWorker(WorkerOptions{
		Coordinator:   srv.URL,
		ID:            "wtest",
		CheckpointDir: t.TempDir(),
		Logf:          t.Logf,
	})
	go func() { workerDone <- w.Run(ctx) }()

	// Wait for the worker to register so Execute dispatches remotely.
	for deadline := time.Now().Add(10 * time.Second); c.Stats().WorkersLive == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	got, err := c.Execute(tk, ps, func() (harness.PointResult, error) {
		t.Error("local fallback must not run with a live worker")
		return harness.PointResult{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("remote result diverges from serial run:\nremote: %+v\nserial: %+v", got, want)
	}
	st := c.Stats()
	if st.RemoteRuns != 1 || st.LocalRuns != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// Resubmission is a pure cache hit — the worker is never consulted.
	again, err := c.Execute(tk, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("cached result diverges: %+v", again)
	}
	if st := c.Stats(); st.CacheHits != 1 {
		t.Fatalf("no cache hit on resubmission: %+v", st)
	}

	cancel()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain after cancel")
	}
}

// TestWorkerRejectsMismatchedUnit checks the cache-poisoning guard: a unit
// whose key or seed does not match what the worker derives from the spec is
// refused, not executed.
func TestWorkerRejectsMismatchedUnit(t *testing.T) {
	tk, ps, _ := tinyPoint(t)
	w := NewWorker(WorkerOptions{Coordinator: "http://unused", ID: "wtest"})

	wu := &WorkUnit{Key: tk.Key + "-tampered", Fingerprint: "f", Seed: tk.Seed, Point: ps, Attempt: 1}
	if _, err := w.runUnit(wu, t.TempDir()); err == nil || !strings.Contains(err.Error(), "key mismatch") {
		t.Fatalf("tampered key: err = %v, want key mismatch", err)
	}

	wu = &WorkUnit{Key: tk.Key, Fingerprint: "f", Seed: tk.Seed + 1, Point: ps, Attempt: 1}
	if _, err := w.runUnit(wu, t.TempDir()); err == nil || !strings.Contains(err.Error(), "seed mismatch") {
		t.Fatalf("tampered seed: err = %v, want seed mismatch", err)
	}

	wu = &WorkUnit{Key: "k", Fingerprint: "f", Seed: 1, Point: PointSpec{Figure: "nope"}, Attempt: 1}
	if _, err := w.runUnit(wu, t.TempDir()); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("bad figure: err = %v, want unknown figure", err)
	}
}
