package fabric_test

import (
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/harness"
)

// fleetSpec is the sweep the integration test runs: figure 3a at small
// scale with cycle counts long enough that every worker is mid-point when
// one of them is killed. 2 curves x 3 loads = 6 points.
const (
	fleetWarmup  = 200
	fleetMeasure = 4000
)

func fleetLoads() []float64 { return []float64{0.2, 0.3, 0.4} }

func fleetHarnessSpec(t *testing.T) *harness.Spec {
	t.Helper()
	spec, err := harness.SpecFor("3a", "small", fleetWarmup, fleetMeasure, 0, fleetLoads())
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// fleetRunOptions routes every point of a sweep through the coordinator.
func fleetRunOptions(c *fabric.Coordinator) harness.RunOptions {
	return harness.RunOptions{
		Parallel: 4,
		PointRunner: func(pt harness.PointTask, local func() (harness.PointResult, error)) (harness.PointResult, error) {
			return c.Execute(pt, fabric.PointSpec{
				Figure: "3a", Scale: "small",
				Warmup: fleetWarmup, Measure: fleetMeasure,
				Alg: pt.Alg, Load: pt.Load, Replica: pt.Replica,
			}, local)
		},
	}
}

// buildWorker compiles cmd/disha-worker into a temp dir and returns the
// binary path.
func buildWorker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "disha-worker")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/disha-worker")
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build disha-worker: %v\n%s", err, out)
	}
	return bin
}

type logWriter struct{ t *testing.T }

func (w logWriter) Write(p []byte) (int, error) { w.t.Logf("%s", p); return len(p), nil }

// startWorkerProc launches one disha-worker process against the coordinator
// URL and returns its exec handle.
func startWorkerProc(t *testing.T, bin, url, id string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-coordinator", url, "-id", id, "-checkpoint-dir", t.TempDir())
	cmd.Stderr = logWriter{t}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", id, err)
	}
	return cmd
}

// TestFleetSurvivesWorkerKill is the fabric's end-to-end proof, run across
// real process boundaries: three disha-worker processes serve a sweep over
// localhost HTTP, one of them is SIGKILLed while all three are mid-point,
// and the final aggregated CSV is still byte-identical to a serial
// single-process run — the killed worker's lease expires, its point is
// re-dispatched (resuming from its last streamed checkpoint), and
// determinism guarantees the replacement execution produces the same bytes.
// A duplicate submission afterwards is served entirely from the result
// cache, and every point executed at most once.
func TestFleetSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}

	// Serial reference, computed entirely in this process with no fabric.
	serial, _, err := fleetHarnessSpec(t).RunWith(harness.RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := serial.CSV()

	bin := buildWorker(t)
	c := fabric.NewCoordinator(fabric.CoordinatorOptions{
		LeaseTTL:        2 * time.Second,
		MaxAttempts:     5,
		CheckpointEvery: 500, // workers stream blobs; the re-dispatch resumes mid-point
	})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	workers := make([]*exec.Cmd, 3)
	for i := range workers {
		workers[i] = startWorkerProc(t, bin, srv.URL, []string{"w-alpha", "w-bravo", "w-charlie"}[i])
	}
	defer func() {
		for _, w := range workers {
			if w.Process != nil {
				w.Process.Kill()
				w.Wait()
			}
		}
	}()

	// All three workers must be registered before the sweep starts, so no
	// point falls back to local execution.
	for deadline := time.Now().Add(60 * time.Second); c.Stats().WorkersLive < 3; {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never assembled: %+v", c.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Run the sweep through the fabric, and kill one worker the moment all
	// three hold a lease (each runs one point at a time, so three
	// outstanding leases means the victim is provably mid-point).
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for deadline := time.Now().Add(60 * time.Second); ; {
			st := c.Stats()
			if st.LeasesOutstanding >= 3 {
				t.Logf("killing w-alpha with %d leases outstanding", st.LeasesOutstanding)
				workers[0].Process.Kill() // SIGKILL: no drain, no goodbye
				workers[0].Wait()
				return
			}
			if time.Now().After(deadline) || st.UnitsInFlight == 0 && st.RemoteRuns > 0 {
				t.Log("sweep finished before three leases were ever outstanding; kill skipped")
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	res, report, err := fleetHarnessSpec(t).RunWith(fleetRunOptions(c))
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	if report.Failed() != 0 {
		t.Fatalf("fleet sweep failures: %+v", report.Failures)
	}
	if got := res.CSV(); got != wantCSV {
		t.Fatalf("fleet CSV diverges from serial run after worker kill:\n--- serial ---\n%s--- fleet ---\n%s", wantCSV, got)
	}

	st := c.Stats()
	t.Logf("after kill: %v", st)
	total := int64(2 * len(fleetLoads()))
	// Each point executed at most once: every settle is exactly one remote
	// or one local run, and duplicates from the killed worker are impossible
	// (SIGKILL uploads nothing).
	if st.RemoteRuns+st.LocalRuns != total {
		t.Fatalf("points executed %d times, want %d: %+v", st.RemoteRuns+st.LocalRuns, total, st)
	}
	if st.RemoteRuns == 0 {
		t.Fatalf("nothing ran on the fleet: %+v", st)
	}
	if st.Redispatches == 0 {
		t.Fatalf("killed worker's lease was never re-dispatched: %+v", st)
	}

	// Duplicate submission: the identical sweep resolves entirely from the
	// shared result cache — cache-hit counter moves, execution counters do
	// not, bytes stay identical.
	res2, _, err := fleetHarnessSpec(t).RunWith(fleetRunOptions(c))
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.CSV(); got != wantCSV {
		t.Fatal("cached duplicate submission diverges")
	}
	st2 := c.Stats()
	if st2.CacheHits < total {
		t.Fatalf("duplicate submission missed the cache: %+v", st2)
	}
	if st2.RemoteRuns+st2.LocalRuns != total {
		t.Fatalf("duplicate submission re-executed points: %+v", st2)
	}

	// Graceful exit for the survivors: SIGTERM drains them cleanly.
	for _, w := range workers[1:] {
		w.Process.Signal(os.Interrupt)
	}
	for _, w := range workers[1:] {
		done := make(chan error, 1)
		go func() { done <- w.Wait() }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("worker did not drain on SIGINT")
		}
	}
}
