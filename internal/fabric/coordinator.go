package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// LeaseTTL is how long a lease survives without a heartbeat before the
	// worker is presumed dead and the unit re-dispatched (default 15s).
	LeaseTTL time.Duration
	// MaxQueue bounds the number of work units waiting for a lease; units
	// submitted beyond it run locally instead of queueing (default 1024).
	MaxQueue int
	// MaxAttempts bounds how often a unit is dispatched to workers before
	// the coordinator gives up on the fleet and runs it locally (default 3).
	MaxAttempts int
	// CheckpointEvery, when positive, asks workers to checkpoint in-progress
	// points every that many cycles and stream the blobs up, so a
	// re-dispatched unit resumes mid-point (0 = start over on re-dispatch).
	CheckpointEvery int
	// Registry, when non-nil, receives the fleet gauges and counters
	// (workers live, leases outstanding, queue depth, cache hits/misses,
	// re-dispatches, ...).
	Registry *telemetry.Registry
	// PollInterval is the idle lease-poll cadence advertised to workers
	// (default LeaseTTL/10, min 100ms).
	PollInterval time.Duration
}

// unitState tracks where a work unit is in its lifecycle. Completed units
// leave the table entirely — their result lives in the cache.
type unitState int

const (
	unitPending unitState = iota // queued, waiting for a lease
	unitLeased                   // held by a worker, lease unexpired
	unitLocal                    // executing in-process (fallback path)
)

// unitResult is what waiters receive when a unit settles.
type unitResult struct {
	pr  harness.PointResult
	err error
}

// unit is one in-flight work unit.
type unit struct {
	wu      WorkUnit
	local   func() (harness.PointResult, error)
	waiters []chan unitResult
	state   unitState
	worker  string    // lease holder when leased
	expires time.Time // lease expiry when leased
	ckpt    []byte    // latest checkpoint blob streamed by a lease holder
}

// Coordinator decomposes sweeps into point work units, leases them to
// workers, re-dispatches expired leases, and caches results by content
// fingerprint. Create with NewCoordinator; mount Handler under /fleet/.
type Coordinator struct {
	opts CoordinatorOptions

	mu      sync.Mutex
	units   map[string]*unit // by fingerprint: pending, leased or local
	queue   []string         // fingerprints awaiting lease, FIFO
	cache   map[string]harness.PointResult
	workers map[string]time.Time // worker id -> last contact

	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	deduped      atomic.Int64 // waiters attached to an in-flight unit
	redispatches atomic.Int64
	remoteRuns   atomic.Int64 // results computed by fleet workers
	localRuns    atomic.Int64 // results computed in-process (fallback)
	dupResults   atomic.Int64 // uploads for already-settled units
	queueFull    atomic.Int64 // submissions pushed to local by the bound
	workerErrors atomic.Int64 // worker-side failures uploaded

	done chan struct{}
}

// NewCoordinator starts a coordinator and its lease-expiry sweeper.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 1024
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = opts.LeaseTTL / 10
		if opts.PollInterval < 100*time.Millisecond {
			opts.PollInterval = 100 * time.Millisecond
		}
	}
	c := &Coordinator{
		opts:    opts,
		units:   make(map[string]*unit),
		cache:   make(map[string]harness.PointResult),
		workers: make(map[string]time.Time),
		done:    make(chan struct{}),
	}
	if reg := opts.Registry; reg != nil {
		c.RegisterMetrics(reg)
	}
	go c.sweeper()
	return c
}

// RegisterMetrics registers the fleet gauges and counters on reg. It is
// called by NewCoordinator when Options.Registry is set; callers that build
// the registry later (e.g. the job server owns it) call it directly.
func (c *Coordinator) RegisterMetrics(reg *telemetry.Registry) {
	{
		reg.GaugeFunc("fleet_workers_live", "fleet workers seen within the liveness window", nil,
			func() float64 { return float64(c.Stats().WorkersLive) })
		reg.GaugeFunc("fleet_leases_outstanding", "work units currently leased to workers", nil,
			func() float64 { return float64(c.Stats().LeasesOutstanding) })
		reg.GaugeFunc("fleet_queue_depth", "work units waiting for a lease", nil,
			func() float64 { return float64(c.Stats().QueueDepth) })
		reg.GaugeFunc("fleet_cache_hit_rate", "fraction of point executions served from the result cache", nil,
			func() float64 {
				h, m := c.cacheHits.Load(), c.cacheMisses.Load()
				if h+m == 0 {
					return 0
				}
				return float64(h) / float64(h+m)
			})
		reg.CounterFunc("fleet_cache_hits_total", "point executions served from the result cache", nil, c.cacheHits.Load)
		reg.CounterFunc("fleet_cache_misses_total", "point executions not present in the result cache", nil, c.cacheMisses.Load)
		reg.CounterFunc("fleet_dedup_total", "point executions coalesced onto an already in-flight unit", nil, c.deduped.Load)
		reg.CounterFunc("fleet_redispatch_total", "expired leases re-dispatched to another worker", nil, c.redispatches.Load)
		reg.CounterFunc("fleet_remote_runs_total", "points computed by fleet workers", nil, c.remoteRuns.Load)
		reg.CounterFunc("fleet_local_runs_total", "points computed in-process (no live workers, queue bound, or attempts exhausted)", nil, c.localRuns.Load)
		reg.CounterFunc("fleet_duplicate_results_total", "result uploads for already-settled units", nil, c.dupResults.Load)
		reg.CounterFunc("fleet_worker_errors_total", "worker-side execution failures uploaded", nil, c.workerErrors.Load)
	}
}

// Close stops the lease sweeper. In-flight Execute calls settle normally.
func (c *Coordinator) Close() {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// livenessWindow is how long after its last contact a worker still counts
// as live: two lease TTLs, i.e. several missed heartbeats.
func (c *Coordinator) livenessWindow() time.Duration { return 2 * c.opts.LeaseTTL }

// liveWorkersLocked counts workers seen within the liveness window.
// Callers hold c.mu.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, seen := range c.workers {
		if now.Sub(seen) <= c.livenessWindow() {
			n++
		}
	}
	return n
}

// Execute runs one point through the fabric and blocks until its result is
// available: from the shared cache, from a worker that leased the unit, or
// from the local fallback closure when no live workers exist, the queue is
// at its bound, or the fleet exhausted its dispatch attempts. Concurrent
// Executes with the same fingerprint coalesce onto a single execution.
func (c *Coordinator) Execute(t harness.PointTask, point PointSpec, local func() (harness.PointResult, error)) (harness.PointResult, error) {
	fp := Fingerprint(t.Key, t.Seed)

	c.mu.Lock()
	if pr, ok := c.cache[fp]; ok {
		c.mu.Unlock()
		c.cacheHits.Add(1)
		return pr, nil
	}
	c.cacheMisses.Add(1)
	if u, ok := c.units[fp]; ok {
		// Same point already in flight (another client, another replica
		// pass): wait for that execution instead of starting a second one.
		c.deduped.Add(1)
		ch := make(chan unitResult, 1)
		u.waiters = append(u.waiters, ch)
		c.mu.Unlock()
		r := <-ch
		return r.pr, r.err
	}

	u := &unit{
		wu: WorkUnit{
			Key: t.Key, Fingerprint: fp, Seed: t.Seed, Point: point,
		},
		local: local,
	}
	ch := make(chan unitResult, 1)
	u.waiters = append(u.waiters, ch)
	c.units[fp] = u

	now := time.Now()
	switch {
	case c.liveWorkersLocked(now) == 0:
		// No fleet: run in-process, but keep the unit visible so concurrent
		// duplicates still coalesce onto this execution.
		c.runLocalLocked(u)
	case len(c.queue) >= c.opts.MaxQueue:
		// Admission control: a bounded queue keeps a flood of units from
		// accumulating unboundedly; overflow executes locally instead.
		c.queueFull.Add(1)
		c.runLocalLocked(u)
	default:
		u.state = unitPending
		c.queue = append(c.queue, fp)
	}
	c.mu.Unlock()

	r := <-ch
	return r.pr, r.err
}

// runLocalLocked transitions a unit to in-process execution. Caller holds
// c.mu; the execution itself happens on a fresh goroutine.
func (c *Coordinator) runLocalLocked(u *unit) {
	u.state = unitLocal
	c.localRuns.Add(1)
	go func() {
		pr, err := u.local()
		c.settle(u.wu.Fingerprint, pr, err)
	}()
}

// settle completes a unit: caches the result (on success), wakes every
// waiter, and drops the unit from the table.
func (c *Coordinator) settle(fp string, pr harness.PointResult, err error) {
	c.mu.Lock()
	u, ok := c.units[fp]
	if !ok {
		c.mu.Unlock()
		return
	}
	if err == nil {
		c.cache[fp] = pr
	}
	delete(c.units, fp)
	waiters := u.waiters
	u.waiters = nil
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- unitResult{pr: pr, err: err}
	}
}

// Lease hands the next pending unit to a worker, starting its TTL clock.
// It returns nil when nothing is pending. Any contact marks the worker
// live.
func (c *Coordinator) Lease(workerID string) *WorkUnit {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[workerID] = now
	for len(c.queue) > 0 {
		fp := c.queue[0]
		c.queue = c.queue[1:]
		u, ok := c.units[fp]
		if !ok || u.state != unitPending {
			continue // settled or re-dispatched while queued; skip the stale entry
		}
		u.state = unitLeased
		u.worker = workerID
		u.expires = now.Add(c.opts.LeaseTTL)
		u.wu.Attempt++
		wu := u.wu
		wu.Checkpoint = u.ckpt
		return &wu
	}
	return nil
}

// Heartbeat renews the given leases for a worker and returns the
// fingerprints the coordinator no longer recognizes as held by it.
func (c *Coordinator) Heartbeat(workerID string, fingerprints []string) (drop []string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[workerID] = now
	for _, fp := range fingerprints {
		u, ok := c.units[fp]
		if !ok || u.state != unitLeased || u.worker != workerID {
			drop = append(drop, fp)
			continue
		}
		u.expires = now.Add(c.opts.LeaseTTL)
	}
	return drop
}

// StoreCheckpoint records the latest mid-point checkpoint blob for a unit,
// to be handed to the next lease holder if this one dies.
func (c *Coordinator) StoreCheckpoint(workerID, fp string, blob []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[workerID] = time.Now()
	if u, ok := c.units[fp]; ok && len(blob) > 0 {
		u.ckpt = blob
	}
}

// Deliver accepts a worker's result upload. Because every unit is a pure
// function of (key, seed), the first result to arrive is authoritative;
// late duplicates from presumed-dead workers are counted and dropped. A
// worker-side error re-queues the unit until MaxAttempts dispatches have
// been spent, then falls back to local execution.
func (c *Coordinator) Deliver(up ResultUpload) {
	c.mu.Lock()
	c.workers[up.Worker] = time.Now()
	u, ok := c.units[up.Fingerprint]
	if !ok {
		c.mu.Unlock()
		c.dupResults.Add(1)
		return
	}
	if up.Error != "" {
		c.workerErrors.Add(1)
		if u.wu.Attempt >= c.opts.MaxAttempts {
			c.runLocalLocked(u)
			c.mu.Unlock()
			return
		}
		u.state = unitPending
		u.worker = ""
		c.queue = append(c.queue, up.Fingerprint)
		c.mu.Unlock()
		return
	}
	if up.Result == nil {
		c.mu.Unlock()
		return
	}
	// Success: settle under the same lock so a racing duplicate upload
	// cannot double-settle (or double-count) the unit.
	c.cache[up.Fingerprint] = *up.Result
	delete(c.units, up.Fingerprint)
	waiters := u.waiters
	u.waiters = nil
	c.mu.Unlock()
	c.remoteRuns.Add(1)
	for _, ch := range waiters {
		ch <- unitResult{pr: *up.Result}
	}
}

// sweeper is the recovery loop: it expires dead leases (re-dispatching
// their units, checkpoint blob attached) and, when the fleet has no live
// workers, drains pending units to local execution so progress never
// depends on a worker coming back.
func (c *Coordinator) sweeper() {
	tick := time.NewTicker(c.opts.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.sweep(time.Now())
		}
	}
}

// sweep performs one expiry pass (split out for tests).
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	for fp, u := range c.units {
		if u.state == unitLeased && now.After(u.expires) {
			// Presume the holder dead (it may not be — determinism makes a
			// late duplicate harmless) and hand the unit to the next worker.
			c.redispatches.Add(1)
			if u.wu.Attempt >= c.opts.MaxAttempts {
				c.runLocalLocked(u)
				continue
			}
			u.state = unitPending
			u.worker = ""
			c.queue = append(c.queue, fp)
		}
	}
	if c.liveWorkersLocked(now) == 0 {
		// Fleet gone: pull every pending unit in-process.
		for _, fp := range c.queue {
			if u, ok := c.units[fp]; ok && u.state == unitPending {
				c.runLocalLocked(u)
			}
		}
		c.queue = c.queue[:0]
	}
	c.mu.Unlock()
}

// Stats is a point-in-time snapshot of the coordinator's state, served by
// GET /fleet/status and asserted on by tests.
type Stats struct {
	WorkersLive       int   `json:"workers_live"`
	LeasesOutstanding int   `json:"leases_outstanding"`
	QueueDepth        int   `json:"queue_depth"`
	UnitsInFlight     int   `json:"units_in_flight"`
	CacheSize         int   `json:"cache_size"`
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	Deduped           int64 `json:"deduped"`
	Redispatches      int64 `json:"redispatches"`
	RemoteRuns        int64 `json:"remote_runs"`
	LocalRuns         int64 `json:"local_runs"`
	DuplicateResults  int64 `json:"duplicate_results"`
	QueueFull         int64 `json:"queue_full"`
	WorkerErrors      int64 `json:"worker_errors"`
}

// Stats gathers the current snapshot.
func (c *Coordinator) Stats() Stats {
	now := time.Now()
	c.mu.Lock()
	leased := 0
	pending := 0
	for _, u := range c.units {
		switch u.state {
		case unitLeased:
			leased++
		case unitPending:
			pending++
		}
	}
	st := Stats{
		WorkersLive:       c.liveWorkersLocked(now),
		LeasesOutstanding: leased,
		QueueDepth:        pending,
		UnitsInFlight:     len(c.units),
		CacheSize:         len(c.cache),
	}
	c.mu.Unlock()
	st.CacheHits = c.cacheHits.Load()
	st.CacheMisses = c.cacheMisses.Load()
	st.Deduped = c.deduped.Load()
	st.Redispatches = c.redispatches.Load()
	st.RemoteRuns = c.remoteRuns.Load()
	st.LocalRuns = c.localRuns.Load()
	st.DuplicateResults = c.dupResults.Load()
	st.QueueFull = c.queueFull.Load()
	st.WorkerErrors = c.workerErrors.Load()
	return st
}

// String renders a one-line fleet summary for logs.
func (s Stats) String() string {
	return fmt.Sprintf("workers=%d leased=%d queued=%d cache=%d (hits=%d) redispatch=%d remote=%d local=%d",
		s.WorkersLive, s.LeasesOutstanding, s.QueueDepth, s.CacheSize, s.CacheHits, s.Redispatches, s.RemoteRuns, s.LocalRuns)
}
