package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBuildMatchesBuildzEndpoint pins the -version/buildz consistency
// contract: the struct Build() returns (what every cmd binary's -version
// flag prints) must be byte-for-byte the same data /buildz serves.
func TestBuildMatchesBuildzEndpoint(t *testing.T) {
	h := Handler(NewRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/buildz", nil))
	if rec.Code != 200 {
		t.Fatalf("/buildz status %d", rec.Code)
	}
	var served BuildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &served); err != nil {
		t.Fatalf("/buildz body: %v", err)
	}
	direct := Build()
	a, _ := json.Marshal(direct)
	b, _ := json.Marshal(served)
	if string(a) != string(b) {
		t.Fatalf("Build() and /buildz disagree:\nBuild():  %s\n/buildz:  %s", a, b)
	}
	if direct.GoVersion == "" {
		t.Fatal("Build() must always report a Go version")
	}
}

// TestBuildInfoString checks the one-line rendering used by -version.
func TestBuildInfoString(t *testing.T) {
	b := BuildInfo{
		GoVersion: "go1.22.0",
		Path:      "repro/cmd/disha-serve",
		Module:    "repro",
		Version:   "(devel)",
		Settings:  map[string]string{"vcs.revision": "abcdef0123456789", "vcs.modified": "true"},
	}
	got := b.String()
	for _, want := range []string{"repro/cmd/disha-serve", "(devel)", "go1.22.0", "vcs.revision=abcdef012345", "+dirty"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "abcdef0123456789") {
		t.Fatalf("String() = %q, revision must be truncated to 12 chars", got)
	}

	// A binary with no module metadata still renders something sensible.
	bare := BuildInfo{GoVersion: "go1.22.0"}
	if got := bare.String(); !strings.Contains(got, "unknown") || !strings.Contains(got, "go1.22.0") {
		t.Fatalf("bare String() = %q", got)
	}
}
