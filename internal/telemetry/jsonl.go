package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Line is the decoded superset of every JSONL record type the simulator
// emits. Type discriminates: "meta", "sample", "event", "snapshot",
// "counters", "span". Producers write type-specific subsets; consumers
// (the disha-trace CLI, tests) decode into this struct.
type Line struct {
	Type  string `json:"type"`
	Cycle int64  `json:"cycle,omitempty"`

	// meta: free-form run description (topology, algorithm, seed, ...).
	Meta map[string]string `json:"meta,omitempty"`

	// sample: one sampled probe value.
	Name   string            `json:"name,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`

	// event: one trace.Buffer event (kind is the trace.Kind string form).
	Kind string `json:"kind,omitempty"`
	Node int    `json:"node,omitempty"`
	Pkt  int64  `json:"pkt,omitempty"`

	// snapshot: one flight-recorder dump.
	Snapshot *Snapshot `json:"snapshot,omitempty"`

	// span: one closed recovery-episode span.
	Span *EpisodeSpan `json:"span,omitempty"`

	// counters: end-of-run network totals.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// JSONLWriter streams telemetry records as JSON Lines. All methods must be
// called from a single goroutine (the simulation loop); Flush before reading
// the underlying writer.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL encoder.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

func (w *JSONLWriter) write(v any) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(v)
}

// Meta writes the run-description header line.
func (w *JSONLWriter) Meta(meta map[string]string) {
	w.write(Line{Type: "meta", Meta: meta})
}

// Sample writes one sampled probe value.
func (w *JSONLWriter) Sample(cycle int64, name string, labels Labels, value float64) {
	w.write(Line{Type: "sample", Cycle: cycle, Name: name, Labels: labels.Map(), Value: value})
}

// Event writes one trace event.
func (w *JSONLWriter) Event(cycle int64, kind string, node int, pkt int64) {
	w.write(Line{Type: "event", Cycle: cycle, Kind: kind, Node: node, Pkt: pkt})
}

// WriteSnapshot writes one flight-recorder dump.
func (w *JSONLWriter) WriteSnapshot(s *Snapshot) {
	w.write(Line{Type: "snapshot", Cycle: s.Cycle, Snapshot: s})
}

// WriteSpan writes one closed recovery-episode span.
func (w *JSONLWriter) WriteSpan(s *EpisodeSpan) {
	w.write(Line{Type: "span", Cycle: s.End, Span: s})
}

// WriteCounters writes end-of-run totals.
func (w *JSONLWriter) WriteCounters(cycle int64, counters map[string]int64) {
	w.write(Line{Type: "counters", Cycle: cycle, Counters: counters})
}

// Flush drains the buffer and returns the first error encountered by any
// prior write.
func (w *JSONLWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// ReadJSONL decodes every line of a JSONL stream, reporting the first
// malformed line by number.
func ReadJSONL(r io.Reader) ([]Line, error) {
	var out []Line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // snapshots can be large lines
	lineno := 0
	for sc.Scan() {
		lineno++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l Line
		if err := json.Unmarshal(raw, &l); err != nil {
			return out, fmt.Errorf("telemetry: line %d: %w", lineno, err)
		}
		out = append(out, l)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
