package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry's last published
// snapshot at /metrics and the standard pprof profiles under /debug/pprof/.
// The handler itself never touches live simulation state, so it is safe to
// serve from any goroutine while the simulation runs — the simulation
// thread refreshes the snapshot via Registry.Publish.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		body := reg.Published()
		if body == nil {
			// Before the first publish: nothing sampled yet.
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Write(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves Handler(reg) in a background goroutine.
// It returns the bound listener address (useful with ":0") and a shutdown
// function.
func Serve(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	// No WriteTimeout: /debug/pprof/profile and /debug/pprof/trace stream
	// for their requested duration. The read-side timeouts bound how long a
	// client can hold a connection open without sending a complete request
	// (slowloris).
	srv := &http.Server{
		Handler:           Handler(reg),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
