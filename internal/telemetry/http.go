package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"time"
)

// Handler returns an http.Handler exposing the registry's last published
// snapshot at /metrics, a liveness probe at /healthz, build metadata at
// /buildz (from debug.ReadBuildInfo) and the standard pprof profiles under
// /debug/pprof/. The handler itself never touches live simulation state,
// so it is safe to serve from any goroutine while the simulation runs —
// the simulation thread refreshes the snapshot via Registry.Publish.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		body := reg.Published()
		if body == nil {
			// Before the first publish: nothing sampled yet.
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Write(body)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/buildz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(buildInfo())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// BuildInfo is the /buildz response body: the module path and version plus
// the VCS/toolchain settings the Go linker stamped into the binary.
type BuildInfo struct {
	GoVersion string            `json:"go_version"`
	Path      string            `json:"path,omitempty"`
	Module    string            `json:"module,omitempty"`
	Version   string            `json:"version,omitempty"`
	Settings  map[string]string `json:"settings,omitempty"`
}

// Build returns the process's condensed build metadata — the same struct
// the /buildz endpoint serves. Every cmd binary's -version flag prints
// Build().String(), so the CLI and HTTP views of a deployment can never
// disagree about what is running.
func Build() BuildInfo { return buildInfo() }

// String renders the one-line form the -version flag prints:
// "path version (go_version, vcs.revision=...)".
func (b BuildInfo) String() string {
	path := b.Path
	if path == "" {
		path = b.Module
	}
	if path == "" {
		path = "unknown"
	}
	version := b.Version
	if version == "" {
		version = "(devel)"
	}
	s := path + " " + version + " (" + b.GoVersion
	if rev, ok := b.Settings["vcs.revision"]; ok {
		r := rev
		if len(r) > 12 {
			r = r[:12]
		}
		s += ", vcs.revision=" + r
		if b.Settings["vcs.modified"] == "true" {
			s += "+dirty"
		}
	}
	return s + ")"
}

// buildInfo condenses debug.ReadBuildInfo for JSON exposition. Binaries
// built without module metadata (rare) get just the Go version.
func buildInfo() BuildInfo {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return BuildInfo{GoVersion: "unknown"}
	}
	out := BuildInfo{
		GoVersion: bi.GoVersion,
		Path:      bi.Path,
		Module:    bi.Main.Path,
		Version:   bi.Main.Version,
	}
	if len(bi.Settings) > 0 {
		out.Settings = make(map[string]string, len(bi.Settings))
		for _, s := range bi.Settings {
			out.Settings[s.Key] = s.Value
		}
	}
	return out
}

// Serve listens on addr and serves Handler(reg) in a background goroutine.
// It returns the bound listener address (useful with ":0") and a shutdown
// function.
func Serve(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	// No WriteTimeout: /debug/pprof/profile and /debug/pprof/trace stream
	// for their requested duration. The read-side timeouts bound how long a
	// client can hold a connection open without sending a complete request
	// (slowloris).
	srv := &http.Server{
		Handler:           Handler(reg),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
