package telemetry

import (
	"fmt"
	"sort"
)

// Histogram is a fixed-bucket distribution metric: observations fall into
// the first bucket whose upper bound is >= the value (Prometheus `le`
// semantics), with an implicit +Inf bucket catching the rest. Like Counter
// and Gauge it is single-writer: all Observe calls must come from the one
// goroutine that owns the instrumented state (the simulation loop); the
// rendered exposition crosses goroutines only through Registry.Publish.
//
// Histograms are mergeable: two histograms with identical bounds can be
// combined with Merge, which is how per-shard measurements aggregate into
// one distribution without any locking — each shard observes into its own
// histogram and the owning goroutine merges after the phase barrier.
//
// A nil *Histogram is safe: Observe is a no-op and reads return zeros, so
// instrumentation sites need no enabled-checks of their own.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1, last entry is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given bucket upper bounds. The
// bounds must be non-empty and strictly ascending; it panics otherwise
// (bucket layout is a programming decision, not runtime input). The slice
// is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly ascending at index %d (%g <= %g)",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor: start, start*factor, ... It panics on start <= 0,
// factor <= 1 or count < 1.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns count upper bounds starting at start and stepping
// by width: start, start+width, ... It panics on width <= 0 or count < 1.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("telemetry: LinearBuckets needs width > 0, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// sort.SearchFloat64s finds the first bound >= v for `le` (inclusive
	// upper bound) semantics: a value equal to a bound lands in that bound's
	// bucket, matching the Prometheus text-format contract.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
// Callers must not mutate the returned slice.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket (non-cumulative) observation counts;
// the last entry is the +Inf bucket. Callers must not mutate the result.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// Merge adds other's observations into h. Both histograms must have
// identical bucket bounds; Merge returns an error otherwise and leaves h
// unchanged. Merging a nil or empty other is a no-op.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil || other.count == 0 {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("telemetry: merging histograms with %d vs %d buckets", len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("telemetry: merging histograms with different bound %d: %g vs %g",
				i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.sum += other.sum
	h.count += other.count
	return nil
}

// Reset clears all observations, keeping the bucket layout. No-op on nil.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.count = 0, 0
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing it, the same estimate
// Prometheus's histogram_quantile computes. It returns 0 with no
// observations; values in the +Inf bucket clamp to the largest finite
// bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}
