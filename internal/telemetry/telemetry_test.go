package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("disha_test_total", "A test counter.", Labels{{Key: "node", Value: "3"}})
	c.Add(41)
	c.Inc()
	r.GaugeFunc("disha_test_gauge", "A test gauge.", nil, func() float64 { return 2.5 })

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# HELP disha_test_total A test counter.\n" +
		"# TYPE disha_test_total counter\n" +
		"disha_test_total{node=\"3\"} 42\n" +
		"# HELP disha_test_gauge A test gauge.\n" +
		"# TYPE disha_test_gauge gauge\n" +
		"disha_test_gauge 2.5\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistrySharedFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("disha_shared_total", "Shared.", Labels{{Key: "node", Value: "0"}})
	r.Counter("disha_shared_total", "Shared.", Labels{{Key: "node", Value: "1"}})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "# TYPE disha_shared_total") != 1 {
		t.Fatalf("family header repeated:\n%s", buf.String())
	}
	if len(r.Names()) != 1 {
		t.Fatalf("Names() = %v, want one family", r.Names())
	}
}

func TestPublishSnapshot(t *testing.T) {
	r := NewRegistry()
	v := int64(0)
	r.CounterFunc("disha_live_total", "Live.", nil, func() int64 { return v })
	if r.Published() != nil {
		t.Fatal("Published before first Publish must be nil")
	}
	v = 7
	r.Publish()
	snap := r.Published()
	v = 8 // must not affect the published snapshot
	if !strings.Contains(string(snap), "disha_live_total 7") {
		t.Fatalf("snapshot does not hold published value:\n%s", snap)
	}
}

func TestNilMetricSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	c.Add(5)
	c.Inc()
	g.Set(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics must read zero")
	}
}

func TestSamplerRingWraps(t *testing.T) {
	s := NewSampler(10, 4)
	cur := 0.0
	ts := s.AddProbe(Probe{Name: "p", Fn: func() float64 { return cur }})
	for c := int64(0); c <= 70; c++ {
		if !s.Due(c) {
			continue
		}
		cur = float64(c)
		s.Sample(c)
	}
	if ts.Len() != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", ts.Len())
	}
	cycles, values := ts.Points()
	wantCycles := []int64{40, 50, 60, 70}
	for i, c := range wantCycles {
		if cycles[i] != c || values[i] != float64(c) {
			t.Fatalf("point %d = (%d, %g), want (%d, %d)", i, cycles[i], values[i], c, c)
		}
	}
	ms := ts.MetricsSeries()
	if len(ms.Points) != 4 || ms.Points[0].X != 40 || ms.Points[0].Latency != 40 {
		t.Fatalf("MetricsSeries conversion wrong: %+v", ms.Points)
	}
}

func TestSamplerEmit(t *testing.T) {
	s := NewSampler(1, 8)
	s.AddProbe(Probe{Name: "q", Fn: func() float64 { return 3 }})
	var got []int64
	s.Emit = func(cycle int64, name string, _ Labels, v float64) {
		if name != "q" || v != 3 {
			t.Fatalf("emit (%s, %g)", name, v)
		}
		got = append(got, cycle)
	}
	s.Sample(5)
	s.Sample(6)
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("emitted cycles %v", got)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3, 100, 2)
	for c := int64(1); c <= 5; c++ {
		fr := f.BeginFrame(c)
		fr.Routers = append(fr.Routers, RouterFrame{Node: int32(c), Blocked: 1})
	}
	frames := f.Frames()
	if len(frames) != 3 {
		t.Fatalf("retained %d frames, want 3", len(frames))
	}
	for i, want := range []int64{3, 4, 5} {
		if frames[i].Cycle != want {
			t.Fatalf("frame %d cycle %d, want %d", i, frames[i].Cycle, want)
		}
	}
	// Frames must be deep copies: BeginFrame reuses the oldest slot's backing
	// array, which must not show through previously returned snapshots.
	fr := f.BeginFrame(6)
	fr.Routers = append(fr.Routers, RouterFrame{Node: 99})
	if frames[0].Routers[0].Node != 3 {
		t.Fatal("Frames aliases the live ring")
	}
}

func TestFlightRecorderThrottle(t *testing.T) {
	f := NewFlightRecorder(4, 100, 2)
	if !f.ShouldSnapshot(10) {
		t.Fatal("first snapshot must be allowed")
	}
	f.AddSnapshot(&Snapshot{Cycle: 10})
	if f.ShouldSnapshot(50) {
		t.Fatal("snapshot inside cooldown window allowed")
	}
	if !f.ShouldSnapshot(110) {
		t.Fatal("snapshot after cooldown refused")
	}
	f.AddSnapshot(&Snapshot{Cycle: 110})
	if f.ShouldSnapshot(500) {
		t.Fatal("snapshot beyond MaxSnapshots allowed")
	}
	if len(f.Snapshots()) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(f.Snapshots()))
	}
}

func TestJSONLRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Meta(map[string]string{"alg": "disha"})
	w.Sample(100, "disha_blocked_headers", Labels{{Key: "node", Value: "2"}}, 4)
	w.Event(123, "timeout", 7, 55)
	w.WriteSnapshot(&Snapshot{
		Cycle: 130, TriggerNode: 7, TriggerPkt: 55,
		Frames:       []Frame{{Cycle: 129, Routers: []RouterFrame{{Node: 7, Blocked: 2}}}},
		WFG:          []WFGNode{{Node: 7, Pkt: 55, WaitsOn: []int64{56}, Deadlocked: true}},
		TrueDeadlock: true,
	})
	w.WriteCounters(200, map[string]int64{"packets_delivered": 9})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	lines, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 {
		t.Fatalf("decoded %d lines, want 5", len(lines))
	}
	if lines[0].Type != "meta" || lines[0].Meta["alg"] != "disha" {
		t.Fatalf("meta line %+v", lines[0])
	}
	if l := lines[1]; l.Type != "sample" || l.Cycle != 100 || l.Name != "disha_blocked_headers" ||
		l.Labels["node"] != "2" || l.Value != 4 {
		t.Fatalf("sample line %+v", l)
	}
	if l := lines[2]; l.Type != "event" || l.Kind != "timeout" || l.Node != 7 || l.Pkt != 55 {
		t.Fatalf("event line %+v", l)
	}
	s := lines[3].Snapshot
	if s == nil || !s.TrueDeadlock || len(s.Frames) != 1 || len(s.WFG) != 1 || s.WFG[0].WaitsOn[0] != 56 {
		t.Fatalf("snapshot line %+v", lines[3])
	}
	if lines[4].Counters["packets_delivered"] != 9 {
		t.Fatalf("counters line %+v", lines[4])
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"type\":\"meta\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line not reported")
	}
}

func TestHubTrigger(t *testing.T) {
	h := NewHub(Options{})
	if _, _, ok := h.TakeTrigger(); ok {
		t.Fatal("fresh hub has a trigger")
	}
	h.NoteTimeout(3, 10)
	h.NoteTimeout(4, 11) // first presumption of the cycle wins
	node, pkt, ok := h.TakeTrigger()
	if !ok || node != 3 || pkt != 10 {
		t.Fatalf("trigger (%d, %d, %v)", node, pkt, ok)
	}
	if _, _, ok := h.TakeTrigger(); ok {
		t.Fatal("trigger not consumed")
	}
}

func TestOptionsDisable(t *testing.T) {
	h := NewHub(Options{SampleEvery: -1, FlightDepth: -1})
	if h.Sampler != nil || h.Recorder != nil {
		t.Fatal("negative options must disable sampler and recorder")
	}
	if NewHub(Options{}).Sampler == nil || NewHub(Options{}).Recorder == nil {
		t.Fatal("defaults must enable sampler and recorder")
	}
}
