package telemetry

import (
	"bytes"
	"testing"
)

func TestEpisodeLifecycleDelivered(t *testing.T) {
	r := NewRegistry()
	tr := NewEpisodeTracker(8)
	tr.Register(r)

	tr.Open(7, 3, 100)
	if !tr.HasPending() {
		t.Fatal("HasPending() = false after Open, want true")
	}
	tr.LabelPending(true, map[int64]bool{7: true})
	if tr.HasPending() {
		t.Error("HasPending() = true after LabelPending, want false")
	}
	tr.Capture(7, 104)
	tr.Recovered(7, 105)
	tr.Release(7, 130)
	tr.Delivered(7, 132)

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("Spans() = %d spans, want 1", len(spans))
	}
	s := spans[0]
	want := EpisodeSpan{
		Seq: 0, Pkt: 7, Node: 3, Start: 100,
		Capture: 104, Recover: 105, Release: 130, End: 132,
		Outcome: "delivered", TrueCycle: true, Member: true,
	}
	if *s != want {
		t.Errorf("span = %+v, want %+v", *s, want)
	}
	if tr.OpenCount() != 0 {
		t.Errorf("OpenCount() = %d, want 0", tr.OpenCount())
	}
	if tr.Total() != 1 {
		t.Errorf("Total() = %d, want 1", tr.Total())
	}

	got := map[string]float64{}
	for _, sm := range r.Gather() {
		got[sm.Name+sm.Labels.render()] = sm.Value
	}
	if v := got[`disha_episodes_total{verdict="true-cycle"}`]; v != 1 {
		t.Errorf("true-cycle counter = %g, want 1", v)
	}
	if v := got[`disha_episode_outcomes_total{outcome="delivered"}`]; v != 1 {
		t.Errorf("delivered counter = %g, want 1", v)
	}
	if v := got["disha_episode_resolve_cycles_count"]; v != 1 {
		t.Errorf("resolve histogram count = %g, want 1", v)
	}
	if v := got["disha_episode_resolve_cycles_sum"]; v != 32 {
		t.Errorf("resolve histogram sum = %g, want 32 (132-100)", v)
	}
	if v := got["disha_episode_db_cycles_sum"]; v != 27 {
		t.Errorf("db histogram sum = %g, want 27 (132-105)", v)
	}
	if v := got["disha_episodes_open"]; v != 0 {
		t.Errorf("open gauge = %g, want 0", v)
	}
}

func TestEpisodeFalsePresumption(t *testing.T) {
	r := NewRegistry()
	tr := NewEpisodeTracker(8)
	tr.Register(r)

	// Congestion drains on its own: no Token capture, no DB switch.
	tr.Open(9, 1, 50)
	tr.LabelPending(false, nil)
	tr.Delivered(9, 60)

	s := tr.Spans()[0]
	if s.TrueCycle || s.Member {
		t.Errorf("false presumption labeled TrueCycle=%v Member=%v, want false/false", s.TrueCycle, s.Member)
	}
	if s.Capture != -1 || s.Recover != -1 || s.Release != -1 {
		t.Errorf("unreached phases should stay -1: capture=%d recover=%d release=%d",
			s.Capture, s.Recover, s.Release)
	}
	got := map[string]float64{}
	for _, sm := range r.Gather() {
		got[sm.Name+sm.Labels.render()] = sm.Value
	}
	if v := got[`disha_episodes_total{verdict="false-presumption"}`]; v != 1 {
		t.Errorf("false-presumption counter = %g, want 1", v)
	}
	// No DB time to observe when the packet never entered the lane.
	if v := got["disha_episode_db_cycles_count"]; v != 0 {
		t.Errorf("db histogram count = %g, want 0", v)
	}
}

func TestEpisodeKilled(t *testing.T) {
	tr := NewEpisodeTracker(8)
	tr.Open(4, 2, 10)
	tr.LabelPending(true, nil)
	tr.Killed(4, 25)
	s := tr.Spans()[0]
	if s.Outcome != "killed" || s.End != 25 {
		t.Errorf("killed span = %+v, want outcome=killed end=25", *s)
	}
	if s.TrueCycle != true || s.Member != false {
		t.Errorf("span verdict = TrueCycle=%v Member=%v, want true/false", s.TrueCycle, s.Member)
	}
	// A killed packet that is re-injected and re-presumed opens a NEW span.
	tr.Open(4, 2, 40)
	if tr.OpenCount() != 1 || tr.Total() != 2 {
		t.Errorf("after re-presumption: OpenCount=%d Total=%d, want 1, 2", tr.OpenCount(), tr.Total())
	}
}

func TestEpisodeReopenAbsorbed(t *testing.T) {
	tr := NewEpisodeTracker(8)
	tr.Open(1, 0, 10)
	tr.LabelPending(false, nil)
	tr.Open(1, 5, 20) // header re-crossed T_out while still blocked
	if tr.Total() != 1 {
		t.Fatalf("Total() = %d after re-open, want 1 (absorbed)", tr.Total())
	}
	tr.Delivered(1, 30)
	s := tr.Spans()[0]
	if s.Start != 10 || s.Node != 0 {
		t.Errorf("re-open must keep the original span: start=%d node=%d, want 10, 0", s.Start, s.Node)
	}
	// First-write-wins on phase marks too.
	tr.Open(2, 0, 40)
	tr.LabelPending(false, nil)
	tr.Capture(2, 41)
	tr.Capture(2, 45)
	tr.Delivered(2, 50)
	if got := tr.Spans()[1].Capture; got != 41 {
		t.Errorf("second Capture overwrote the first: %d, want 41", got)
	}
}

func TestEpisodeFlushOpen(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	tr := NewEpisodeTracker(8)
	tr.SetWriter(w)

	// Open out of pkt order; FlushOpen must emit in Seq order.
	tr.Open(30, 0, 5)
	tr.Open(10, 1, 6)
	tr.Open(20, 2, 7)
	tr.LabelPending(false, nil)
	tr.FlushOpen(100)

	if tr.OpenCount() != 0 {
		t.Errorf("OpenCount() = %d after FlushOpen, want 0", tr.OpenCount())
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	for i, l := range lines {
		if l.Type != "span" || l.Span == nil {
			t.Fatalf("line %d: type=%q span=%v, want span line", i, l.Type, l.Span)
		}
		if l.Span.Seq != int64(i) {
			t.Errorf("line %d: Seq = %d, want %d (Seq order)", i, l.Span.Seq, i)
		}
		if l.Span.Outcome != "open" || l.Span.End != 100 {
			t.Errorf("line %d: outcome=%q end=%d, want open/100", i, l.Span.Outcome, l.Span.End)
		}
		if l.Cycle != 100 {
			t.Errorf("line %d: Cycle = %d, want 100 (span End)", i, l.Cycle)
		}
	}
}

func TestEpisodeRingEviction(t *testing.T) {
	tr := NewEpisodeTracker(2)
	for pkt := int64(0); pkt < 4; pkt++ {
		tr.Open(pkt, 0, pkt*10)
		tr.LabelPending(false, nil)
		tr.Delivered(pkt, pkt*10+5)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans() = %d, want 2 (ring depth)", len(spans))
	}
	if spans[0].Pkt != 2 || spans[1].Pkt != 3 {
		t.Errorf("ring holds pkts %d,%d, want 2,3 (oldest evicted, oldest-first order)",
			spans[0].Pkt, spans[1].Pkt)
	}
	if tr.Total() != 4 {
		t.Errorf("Total() = %d, want 4 (eviction does not forget totals)", tr.Total())
	}
}

func TestEpisodeSpanJSONLRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	s := &EpisodeSpan{
		Seq: 3, Pkt: 42, Node: 6, Start: 10, Capture: 12, Recover: 13,
		Release: 20, End: 22, Outcome: "delivered", TrueCycle: true, Member: true,
	}
	w.WriteSpan(s)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(lines) != 1 || lines[0].Type != "span" || lines[0].Span == nil {
		t.Fatalf("decoded %+v, want one span line", lines)
	}
	if got := *lines[0].Span; got != *s {
		t.Errorf("roundtripped span = %+v, want %+v", got, *s)
	}
}

func TestEpisodeTrackerNilSafety(t *testing.T) {
	var tr *EpisodeTracker
	tr.Open(1, 0, 0)
	tr.LabelPending(true, nil)
	tr.Capture(1, 1)
	tr.Recovered(1, 2)
	tr.Release(1, 3)
	tr.Delivered(1, 4)
	tr.Killed(1, 5)
	tr.FlushOpen(6)
	tr.SetWriter(nil)
	tr.Register(NewRegistry())
	if tr.HasPending() || tr.OpenCount() != 0 || tr.Total() != 0 || tr.Spans() != nil {
		t.Error("nil tracker reads should be zero values")
	}
	// Unregistered tracker (nil metrics) must also close spans safely.
	live := NewEpisodeTracker(1)
	live.Open(1, 0, 0)
	live.LabelPending(true, nil)
	live.Delivered(1, 5)
	if live.Total() != 1 {
		t.Errorf("unregistered tracker Total() = %d, want 1", live.Total())
	}
}

func TestHubEpisodeOptions(t *testing.T) {
	h := NewHub(Options{})
	if h.Episodes == nil {
		t.Error("default Options should enable the episode tracker")
	}
	h = NewHub(Options{EpisodeDepth: -1})
	if h.Episodes != nil {
		t.Error("EpisodeDepth < 0 should disable the episode tracker")
	}
}
