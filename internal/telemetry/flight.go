package telemetry

// RouterFrame is the condensed state of one router at one cycle. Frames are
// sparse: routers whose fields are all zero are omitted.
type RouterFrame struct {
	Node     int32 `json:"node"`
	Blocked  int32 `json:"blocked"`            // headers that failed to advance this cycle
	Presumed int32 `json:"presumed,omitempty"` // headers past T_out
	DBOcc    int32 `json:"db,omitempty"`       // flits in the Deadlock Buffer lane(s)
}

// Frame is one cycle's sparse network state.
type Frame struct {
	Cycle   int64         `json:"cycle"`
	Routers []RouterFrame `json:"routers"`
}

// WFGNode is one blocked header in a wait-for-graph snapshot.
type WFGNode struct {
	Node       int     `json:"node"`
	Pkt        int64   `json:"pkt"`
	WaitsOn    []int64 `json:"waits_on,omitempty"`
	Deadlocked bool    `json:"deadlocked,omitempty"`
}

// Snapshot is a flight-recorder dump taken on a deadlock presumption: the
// last K cycles of per-router state plus the instantaneous wait-for-graph.
type Snapshot struct {
	Cycle        int64     `json:"cycle"`
	TriggerNode  int       `json:"trigger_node"`
	TriggerPkt   int64     `json:"trigger_pkt"`
	Frames       []Frame   `json:"frames"`
	WFG          []WFGNode `json:"wfg,omitempty"`
	TrueDeadlock bool      `json:"true_deadlock"`
}

// FlightRecorder keeps a ring of the last depth frames and throttles
// snapshot dumps (a saturated network presumes deadlock every few cycles;
// one post-mortem per episode is what a human wants to read).
type FlightRecorder struct {
	frames []Frame
	next   int
	full   bool

	cooldown  int64 // min cycles between snapshots
	lastSnap  int64
	maxSnaps  int
	snapshots []*Snapshot
}

// NewFlightRecorder keeps depth frames, allows one snapshot per cooldown
// cycles, and retains at most maxSnaps snapshots in memory.
func NewFlightRecorder(depth int, cooldown int64, maxSnaps int) *FlightRecorder {
	if depth < 1 {
		depth = 1
	}
	if maxSnaps < 1 {
		maxSnaps = 1
	}
	f := &FlightRecorder{
		frames:   make([]Frame, depth),
		cooldown: cooldown,
		lastSnap: -1 << 62,
		maxSnaps: maxSnaps,
	}
	for i := range f.frames {
		f.frames[i].Routers = make([]RouterFrame, 0, 16)
	}
	return f
}

// Depth returns the number of frames retained.
func (f *FlightRecorder) Depth() int { return len(f.frames) }

// BeginFrame claims the ring slot for this cycle and returns it with an
// empty (reused) router list; the caller appends sparse RouterFrames.
func (f *FlightRecorder) BeginFrame(cycle int64) *Frame {
	fr := &f.frames[f.next]
	fr.Cycle = cycle
	fr.Routers = fr.Routers[:0]
	f.next++
	if f.next == len(f.frames) {
		f.next = 0
		f.full = true
	}
	return fr
}

// Frames returns deep copies of the retained frames oldest-first (a snapshot
// must not alias the ring, which keeps being overwritten).
func (f *FlightRecorder) Frames() []Frame {
	var src []Frame
	if f.full {
		src = append(src, f.frames[f.next:]...)
		src = append(src, f.frames[:f.next]...)
	} else {
		src = append(src, f.frames[:f.next]...)
	}
	out := make([]Frame, len(src))
	for i, fr := range src {
		out[i] = Frame{Cycle: fr.Cycle, Routers: append([]RouterFrame(nil), fr.Routers...)}
	}
	return out
}

// ShouldSnapshot reports whether a snapshot is currently allowed (cooldown
// elapsed, retention cap not reached).
func (f *FlightRecorder) ShouldSnapshot(cycle int64) bool {
	return len(f.snapshots) < f.maxSnaps && cycle-f.lastSnap >= f.cooldown
}

// AddSnapshot retains a snapshot and starts the cooldown window.
func (f *FlightRecorder) AddSnapshot(s *Snapshot) {
	f.lastSnap = s.Cycle
	f.snapshots = append(f.snapshots, s)
}

// Snapshots returns the retained snapshots in capture order.
func (f *FlightRecorder) Snapshots() []*Snapshot { return f.snapshots }
