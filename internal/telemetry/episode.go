package telemetry

import "sort"

// EpisodeSpan is one recovery episode rendered as a structured span: the
// lifecycle of a single deadlock presumption from the cycle a blocked
// header crossed T_out through Token capture, Deadlock-Buffer routing and
// final delivery or abort. Cycle fields use -1 as "did not happen":
// a false presumption that drains on its own never captures the Token, so
// Capture/Recover/Release stay -1 while End records the delivery.
type EpisodeSpan struct {
	// Seq is the episode's monotonically increasing sequence number,
	// assigned in presumption order (deterministic across runs).
	Seq int64 `json:"seq"`
	// Pkt is the presumed packet's ID.
	Pkt int64 `json:"pkt"`
	// Node is the router where the presumption fired.
	Node int `json:"node"`
	// Start is the presumption cycle (T_elapsed crossed T_out).
	Start int64 `json:"start"`
	// Capture is the cycle the packet's router seized the Token (-1 if the
	// episode resolved without sequential recovery).
	Capture int64 `json:"capture"`
	// Recover is the cycle the packet was switched onto the Deadlock
	// Buffer lane (-1 if it was never recovered).
	Recover int64 `json:"recover"`
	// Release is the cycle the destination released the Token (-1 if this
	// episode's packet did not hold it).
	Release int64 `json:"release"`
	// End is the cycle the episode closed (-1 while still open).
	End int64 `json:"end"`
	// Outcome is "delivered", "killed" (abort-and-retry purged the packet)
	// or "open" (still unresolved when the run ended).
	Outcome string `json:"outcome"`
	// TrueCycle is the WFG analyzer's verdict at presumption time: true
	// when the wait-for graph held a genuine cycle that cycle, false for a
	// false presumption (congestion that would have drained on its own).
	TrueCycle bool `json:"true_cycle"`
	// Member is true when this packet itself was part of the deadlocked
	// set (a true cycle can exist without containing this packet).
	Member bool `json:"member"`
}

// EpisodeTracker turns recovery lifecycles into EpisodeSpans: the network
// opens a span on each presumption, marks Token capture / DB switch /
// Token release / delivery or kill as they happen, and the tracker labels
// each new span true-cycle vs false-presumption from the WFG analysis run
// the same cycle. Closed spans land in a bounded ring, stream to the JSONL
// writer (if set), and feed the time-to-resolve / time-in-DB histograms.
//
// Like the rest of the package it is single-writer (simulation goroutine)
// and nil-safe: every method no-ops on a nil receiver, so instrumentation
// sites need no enabled-checks.
type EpisodeTracker struct {
	open    map[int64]*EpisodeSpan
	pending []*EpisodeSpan // opened this cycle, awaiting the WFG verdict
	closed  []*EpisodeSpan // ring of most recent closed spans
	next    int
	seq     int64
	writer  *JSONLWriter

	// Registered metrics (nil until Register; nil-safe to update).
	histResolve  *Histogram
	histInDB     *Histogram
	cntTrue      *Counter
	cntFalse     *Counter
	cntDelivered *Counter
	cntKilled    *Counter
}

// NewEpisodeTracker returns a tracker retaining the most recent depth
// closed spans (minimum 1).
func NewEpisodeTracker(depth int) *EpisodeTracker {
	if depth < 1 {
		depth = 1
	}
	return &EpisodeTracker{
		open:   make(map[int64]*EpisodeSpan),
		closed: make([]*EpisodeSpan, 0, depth),
	}
}

// SetWriter streams every closed span as a JSONL "span" line. Nil detaches.
func (t *EpisodeTracker) SetWriter(w *JSONLWriter) {
	if t == nil {
		return
	}
	t.writer = w
}

// Register adds the tracker's derived metrics to reg: episode-verdict and
// outcome counters, time-to-resolve and time-in-DB cycle histograms, and
// an open-episodes gauge.
func (t *EpisodeTracker) Register(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	cycles := ExponentialBuckets(1, 2, 12) // 1 .. 2048 cycles
	t.histResolve = reg.Histogram("disha_episode_resolve_cycles",
		"Cycles from deadlock presumption to episode close (delivery or kill).", nil, cycles)
	t.histInDB = reg.Histogram("disha_episode_db_cycles",
		"Cycles a recovered packet spent on the Deadlock Buffer lane before delivery.", nil, cycles)
	t.cntTrue = reg.Counter("disha_episodes_total",
		"Recovery episodes by WFG verdict at presumption time.",
		Labels{{Key: "verdict", Value: "true-cycle"}})
	t.cntFalse = reg.Counter("disha_episodes_total",
		"Recovery episodes by WFG verdict at presumption time.",
		Labels{{Key: "verdict", Value: "false-presumption"}})
	t.cntDelivered = reg.Counter("disha_episode_outcomes_total",
		"Closed recovery episodes by outcome.",
		Labels{{Key: "outcome", Value: "delivered"}})
	t.cntKilled = reg.Counter("disha_episode_outcomes_total",
		"Closed recovery episodes by outcome.",
		Labels{{Key: "outcome", Value: "killed"}})
	reg.GaugeFunc("disha_episodes_open",
		"Recovery episodes currently unresolved.", nil,
		func() float64 { return float64(t.OpenCount()) })
}

// Open starts an episode for a presumed packet. A packet whose episode is
// already open (a header re-crossing T_out while still blocked) is not
// re-opened; the original span keeps running.
func (t *EpisodeTracker) Open(pkt int64, node int, cycle int64) {
	if t == nil {
		return
	}
	if _, ok := t.open[pkt]; ok {
		return
	}
	s := &EpisodeSpan{
		Seq: t.seq, Pkt: pkt, Node: node, Start: cycle,
		Capture: -1, Recover: -1, Release: -1, End: -1, Outcome: "open",
	}
	t.seq++
	t.open[pkt] = s
	t.pending = append(t.pending, s)
}

// HasPending reports whether any spans opened this cycle still await their
// WFG verdict (the network uses this to decide whether to run the
// analyzer).
func (t *EpisodeTracker) HasPending() bool {
	return t != nil && len(t.pending) > 0
}

// LabelPending applies the WFG verdict to every span opened this cycle:
// trueCycle is the global "the graph holds a cycle now" verdict and member
// marks the packet IDs inside the deadlocked set. Call once per
// presumption cycle, after the analyzer ran and before recovery proceeds.
func (t *EpisodeTracker) LabelPending(trueCycle bool, member map[int64]bool) {
	if t == nil {
		return
	}
	for _, s := range t.pending {
		s.TrueCycle = trueCycle
		s.Member = member[s.Pkt]
		if trueCycle {
			t.cntTrue.Inc()
		} else {
			t.cntFalse.Inc()
		}
	}
	t.pending = t.pending[:0]
}

// Capture marks the cycle the presumed packet's router seized the Token.
func (t *EpisodeTracker) Capture(pkt, cycle int64) {
	if t == nil {
		return
	}
	if s, ok := t.open[pkt]; ok && s.Capture < 0 {
		s.Capture = cycle
	}
}

// Recovered marks the cycle the packet switched onto the Deadlock Buffer.
func (t *EpisodeTracker) Recovered(pkt, cycle int64) {
	if t == nil {
		return
	}
	if s, ok := t.open[pkt]; ok && s.Recover < 0 {
		s.Recover = cycle
	}
}

// Release marks the cycle the destination released the Token this
// episode's packet held.
func (t *EpisodeTracker) Release(pkt, cycle int64) {
	if t == nil {
		return
	}
	if s, ok := t.open[pkt]; ok && s.Release < 0 {
		s.Release = cycle
	}
}

// Delivered closes the episode: the packet's tail was consumed at its
// destination.
func (t *EpisodeTracker) Delivered(pkt, cycle int64) {
	t.close(pkt, cycle, "delivered")
}

// Killed closes the episode: abort-and-retry recovery purged the packet.
func (t *EpisodeTracker) Killed(pkt, cycle int64) {
	t.close(pkt, cycle, "killed")
}

func (t *EpisodeTracker) close(pkt, cycle int64, outcome string) {
	if t == nil {
		return
	}
	s, ok := t.open[pkt]
	if !ok {
		return
	}
	delete(t.open, pkt)
	s.End = cycle
	s.Outcome = outcome
	t.histResolve.Observe(float64(cycle - s.Start))
	if s.Recover >= 0 {
		t.histInDB.Observe(float64(cycle - s.Recover))
	}
	switch outcome {
	case "delivered":
		t.cntDelivered.Inc()
	case "killed":
		t.cntKilled.Inc()
	}
	t.retain(s)
	if t.writer != nil {
		t.writer.WriteSpan(s)
	}
}

// retain appends a closed span to the bounded ring, evicting the oldest.
func (t *EpisodeTracker) retain(s *EpisodeSpan) {
	if len(t.closed) < cap(t.closed) {
		t.closed = append(t.closed, s)
		return
	}
	t.closed[t.next] = s
	t.next = (t.next + 1) % cap(t.closed)
}

// FlushOpen closes out every still-open span at end of run with outcome
// "open" (End set to the final cycle, no histogram observations — the
// episode never resolved), in Seq order so the JSONL stream stays
// deterministic.
func (t *EpisodeTracker) FlushOpen(cycle int64) {
	if t == nil || len(t.open) == 0 {
		return
	}
	spans := make([]*EpisodeSpan, 0, len(t.open))
	for _, s := range t.open {
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
	for _, s := range spans {
		delete(t.open, s.Pkt)
		s.End = cycle
		t.retain(s)
		if t.writer != nil {
			t.writer.WriteSpan(s)
		}
	}
}

// OpenCount returns how many episodes are currently unresolved.
func (t *EpisodeTracker) OpenCount() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// Total returns how many episodes were ever opened.
func (t *EpisodeTracker) Total() int64 {
	if t == nil {
		return 0
	}
	return t.seq
}

// Spans returns the retained closed spans, oldest-first.
func (t *EpisodeTracker) Spans() []*EpisodeSpan {
	if t == nil {
		return nil
	}
	out := make([]*EpisodeSpan, 0, len(t.closed))
	if len(t.closed) == cap(t.closed) {
		out = append(out, t.closed[t.next:]...)
		out = append(out, t.closed[:t.next]...)
		return out
	}
	return append(out, t.closed...)
}
