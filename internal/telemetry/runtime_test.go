package telemetry

import "testing"

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	got := map[string]float64{}
	for _, s := range r.Gather() {
		got[s.Name] = s.Value
	}
	if v, ok := got["go_goroutines"]; !ok || v < 1 {
		t.Errorf("go_goroutines = %g (present=%v), want >= 1", v, ok)
	}
	if v, ok := got["go_heap_alloc_bytes"]; !ok || v <= 0 {
		t.Errorf("go_heap_alloc_bytes = %g (present=%v), want > 0", v, ok)
	}
	if _, ok := got["go_gc_pause_total_seconds"]; !ok {
		t.Error("go_gc_pause_total_seconds not registered")
	}
	// Nil-safe.
	RegisterRuntimeMetrics(nil)
	AddRuntimeProbes(nil)
}

func TestRuntimeProbes(t *testing.T) {
	s := NewSampler(4, 8)
	AddRuntimeProbes(s)
	s.Sample(0)
	found := false
	for _, ts := range s.Series() {
		if ts.Name != "go_goroutines" {
			continue
		}
		if _, values := ts.Points(); len(values) == 1 && values[0] >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("sampler did not record a go_goroutines probe sample")
	}
}
