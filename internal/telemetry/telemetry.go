// Package telemetry is the simulator's observability layer: a registry of
// named counters, gauges and fixed-bucket histograms (Prometheus text
// exposition), a cycle-driven sampler that snapshots selected gauges into
// ring-buffered time series, a flight recorder that retains the last K
// cycles of condensed per-router state for post-mortem dumps on deadlock
// presumption, a recovery-episode span tracer that turns every deadlock
// presumption into a labeled lifecycle record, and a JSONL writer/reader
// for exporting samples, trace events, snapshots and episode spans.
//
// The package is deliberately passive and single-threaded: all mutation
// (registration, counter updates, sampling, frame capture) happens on the
// simulation goroutine, in cycle order, so enabling telemetry never changes
// simulation results. The only concurrency concession is Registry.Publish,
// which renders the current values into an immutable byte snapshot that the
// HTTP exposition handler serves from any goroutine.
package telemetry

import (
	"io"
	"sort"
	"strconv"
	"sync/atomic"
)

// Label is one exposition label (key="value").
type Label struct {
	Key, Value string
}

// Labels is an ordered label set. Order is preserved in the rendered output.
type Labels []Label

// Map converts the label set to a map (for JSONL export).
func (ls Labels) Map() map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	out := []byte{'{'}
	for i, l := range ls {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, l.Key...)
		out = append(out, '=', '"')
		out = append(out, l.Value...)
		out = append(out, '"')
	}
	out = append(out, '}')
	return string(out)
}

// Counter is a monotonically increasing metric. It either accumulates pushed
// increments (Add/Inc) or pulls its value from a callback registered with
// Registry.CounterFunc. A nil *Counter is safe to use and costs one branch,
// so instrumentation sites need no enabled-checks of their own.
type Counter struct {
	v  int64
	fn func() int64
}

// Add increments the counter by d. No-op on a nil or callback-backed counter.
func (c *Counter) Add(d int64) {
	if c == nil || c.fn != nil {
		return
	}
	c.v += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	if c.fn != nil {
		return c.fn()
	}
	return c.v
}

// Gauge is a point-in-time metric: a pushed value (Set) or a pull callback
// (Registry.GaugeFunc). A nil *Gauge is safe to use.
type Gauge struct {
	v  float64
	fn func() float64
}

// Set stores the gauge value. No-op on a nil or callback-backed gauge.
func (g *Gauge) Set(v float64) {
	if g == nil || g.fn != nil {
		return
	}
	g.v = v
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

// metricEntry is one labeled instance of a metric family.
type metricEntry struct {
	labels   string
	labelSet Labels
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// family groups all labeled instances of one metric name.
type family struct {
	name, help string
	kind       string // "counter", "gauge" or "histogram"
	entries    []*metricEntry
}

// Registry holds registered metrics and renders them in the Prometheus text
// exposition format. Registration and value access happen on the simulation
// goroutine; Publish/Published bridge to the HTTP handler.
type Registry struct {
	families  []*family
	byName    map[string]*family
	published atomic.Value // []byte
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) lookup(name, help, kind string) *family {
	if f, ok := r.byName[name]; ok {
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers a push-style counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	f := r.lookup(name, help, "counter")
	f.entries = append(f.entries, &metricEntry{labels: labels.render(), labelSet: labels, counter: c})
	return c
}

// CounterFunc registers a pull-style counter whose value is read from fn at
// render time (on the simulation goroutine only).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	f := r.lookup(name, help, "counter")
	f.entries = append(f.entries, &metricEntry{labels: labels.render(), labelSet: labels, counter: &Counter{fn: fn}})
}

// Gauge registers a push-style gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	f := r.lookup(name, help, "gauge")
	f.entries = append(f.entries, &metricEntry{labels: labels.render(), labelSet: labels, gauge: g})
	return g
}

// GaugeFunc registers a pull-style gauge.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	f := r.lookup(name, help, "gauge")
	f.entries = append(f.entries, &metricEntry{labels: labels.render(), labelSet: labels, gauge: &Gauge{fn: fn}})
}

// Histogram registers a fixed-bucket histogram with the given bucket upper
// bounds (see NewHistogram for the bound rules). It renders in the
// Prometheus text format as cumulative `name_bucket{le="..."}` series plus
// `name_sum` and `name_count`.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	f := r.lookup(name, help, "histogram")
	f.entries = append(f.entries, &metricEntry{labels: labels.render(), labelSet: labels, hist: h})
	return h
}

// Sample is one gathered metric value.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Gather evaluates every registered metric. Call only from the goroutine
// that owns the instrumented state (the simulation loop). A histogram
// contributes two samples, its observation count as `name_count` and its
// value sum as `name_sum`.
func (r *Registry) Gather() []Sample {
	var out []Sample
	for _, f := range r.families {
		for _, e := range f.entries {
			switch {
			case e.hist != nil:
				out = append(out,
					Sample{Name: f.name + "_count", Labels: e.labelSet, Value: float64(e.hist.Count())},
					Sample{Name: f.name + "_sum", Labels: e.labelSet, Value: e.hist.Sum()})
			case e.counter != nil:
				out = append(out, Sample{Name: f.name, Labels: e.labelSet, Value: float64(e.counter.Value())})
			default:
				out = append(out, Sample{Name: f.name, Labels: e.labelSet, Value: e.gauge.Value()})
			}
		}
	}
	return out
}

// renderText appends the Prometheus text exposition of all metrics to buf.
func (r *Registry) renderText(buf []byte) []byte {
	for _, f := range r.families {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, '\n')
		buf = append(buf, "# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind...)
		buf = append(buf, '\n')
		for _, e := range f.entries {
			if e.hist != nil {
				buf = e.renderHistogram(buf, f.name)
				continue
			}
			buf = append(buf, f.name...)
			buf = append(buf, e.labels...)
			buf = append(buf, ' ')
			if e.counter != nil {
				buf = strconv.AppendInt(buf, e.counter.Value(), 10)
			} else {
				buf = strconv.AppendFloat(buf, e.gauge.Value(), 'g', -1, 64)
			}
			buf = append(buf, '\n')
		}
	}
	return buf
}

// renderHistogram appends one histogram entry in the Prometheus text
// format: cumulative `name_bucket{...,le="bound"}` lines (ending with the
// mandatory le="+Inf" bucket), then `name_sum` and `name_count`.
func (e *metricEntry) renderHistogram(buf []byte, name string) []byte {
	h := e.hist
	cum := uint64(0)
	counts := h.BucketCounts()
	for i, bound := range h.Bounds() {
		cum += counts[i]
		buf = append(buf, name...)
		buf = append(buf, "_bucket"...)
		buf = e.appendLabelsWithLE(buf, strconv.FormatFloat(bound, 'g', -1, 64))
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_bucket"...)
	buf = e.appendLabelsWithLE(buf, "+Inf")
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Count(), 10)
	buf = append(buf, '\n')

	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = append(buf, e.labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, h.Sum(), 'g', -1, 64)
	buf = append(buf, '\n')

	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = append(buf, e.labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Count(), 10)
	buf = append(buf, '\n')
	return buf
}

// appendLabelsWithLE renders the entry's label set with an le="bound" pair
// appended (the bucket bound label the histogram exposition requires).
func (e *metricEntry) appendLabelsWithLE(buf []byte, le string) []byte {
	buf = append(buf, '{')
	for _, l := range e.labelSet {
		buf = append(buf, l.Key...)
		buf = append(buf, '=', '"')
		buf = append(buf, l.Value...)
		buf = append(buf, '"', ',')
	}
	buf = append(buf, `le="`...)
	buf = append(buf, le...)
	buf = append(buf, '"', '}')
	return buf
}

// WriteText writes the live exposition to w. Call only from the simulation
// goroutine (use Publish/Published for cross-goroutine access).
func (r *Registry) WriteText(w io.Writer) error {
	_, err := w.Write(r.renderText(nil))
	return err
}

// Publish renders the current values into an immutable snapshot served by
// Published (and hence the HTTP handler). Call from the simulation goroutine
// at a cadence of your choosing (the Hub publishes on every sample tick).
func (r *Registry) Publish() {
	r.published.Store(r.renderText(nil))
}

// Published returns the most recently published exposition snapshot (nil
// before the first Publish). Safe from any goroutine.
func (r *Registry) Published() []byte {
	b, _ := r.published.Load().([]byte)
	return b
}

// Names returns all registered family names, sorted (tests, tooling).
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
