package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestHealthzEndpoint(t *testing.T) {
	h := Handler(NewRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	if got := rec.Body.String(); got != "ok\n" {
		t.Errorf("GET /healthz body = %q, want %q", got, "ok\n")
	}
}

func TestBuildzEndpoint(t *testing.T) {
	h := Handler(NewRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/buildz", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /buildz = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("GET /buildz Content-Type = %q", ct)
	}
	var bi BuildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &bi); err != nil {
		t.Fatalf("GET /buildz: invalid JSON: %v\nbody: %s", err, rec.Body.String())
	}
	if bi.GoVersion == "" {
		t.Error("GET /buildz: go_version is empty")
	}
}
