package telemetry

// Options configures a Hub. The zero value enables sampling every 100
// cycles with a 64-frame flight recorder and no JSONL output.
type Options struct {
	// SampleEvery is the gauge sampling period in cycles (default 100).
	// Negative disables sampling entirely.
	SampleEvery int
	// SeriesDepth is the per-probe time-series ring capacity (default 512).
	SeriesDepth int
	// FlightDepth is how many cycles of per-router frames the flight
	// recorder retains (default 64). Negative disables the recorder.
	FlightDepth int
	// SnapshotCooldown is the minimum number of cycles between two
	// flight-recorder dumps (default 500).
	SnapshotCooldown int64
	// MaxSnapshots bounds retained (and written) dumps per run (default 16).
	MaxSnapshots int
	// Writer, when set, streams samples, snapshots, episode spans and (if
	// the caller tees the trace buffer into it) events as JSON Lines.
	Writer *JSONLWriter
	// EpisodeDepth is how many closed recovery-episode spans the episode
	// tracker retains (default 256). Negative disables episode tracking.
	EpisodeDepth int
	// ProfileEvery enables the kernel phase profiler on every Nth cycle
	// (0 disables it). Profiling reads the wall clock but never simulation
	// state, so it cannot perturb results — only add overhead.
	ProfileEvery int
}

func (o *Options) normalize() {
	if o.SampleEvery == 0 {
		o.SampleEvery = 100
	}
	if o.SeriesDepth == 0 {
		o.SeriesDepth = 512
	}
	if o.FlightDepth == 0 {
		o.FlightDepth = 64
	}
	if o.SnapshotCooldown == 0 {
		o.SnapshotCooldown = 500
	}
	if o.MaxSnapshots == 0 {
		o.MaxSnapshots = 16
	}
	if o.EpisodeDepth == 0 {
		o.EpisodeDepth = 256
	}
}

// Hub bundles one simulation's telemetry: the metric registry, the cycle
// sampler (nil when disabled), the flight recorder (nil when disabled) and
// the optional JSONL writer. The network drives it once per cycle.
type Hub struct {
	Registry *Registry
	Sampler  *Sampler
	Recorder *FlightRecorder
	Writer   *JSONLWriter
	Episodes *EpisodeTracker

	// Pending snapshot trigger (set on deadlock presumption, consumed by
	// the network's telemetry tick at the end of the same cycle).
	trigArmed bool
	trigNode  int
	trigPkt   int64
}

// NewHub builds the telemetry bundle for one simulation.
func NewHub(o Options) *Hub {
	o.normalize()
	h := &Hub{Registry: NewRegistry(), Writer: o.Writer}
	if o.SampleEvery > 0 {
		h.Sampler = NewSampler(int64(o.SampleEvery), o.SeriesDepth)
		if o.Writer != nil {
			h.Sampler.Emit = o.Writer.Sample
		}
	}
	if o.FlightDepth > 0 {
		h.Recorder = NewFlightRecorder(o.FlightDepth, o.SnapshotCooldown, o.MaxSnapshots)
	}
	if o.EpisodeDepth > 0 {
		h.Episodes = NewEpisodeTracker(o.EpisodeDepth)
		h.Episodes.Register(h.Registry)
		h.Episodes.SetWriter(o.Writer)
	}
	return h
}

// NoteTimeout arms the snapshot trigger for this cycle's deadlock
// presumption. The first presumption of a cycle wins.
func (h *Hub) NoteTimeout(node int, pkt int64) {
	if h.trigArmed {
		return
	}
	h.trigArmed = true
	h.trigNode = node
	h.trigPkt = pkt
}

// TakeTrigger consumes the pending snapshot trigger, if any.
func (h *Hub) TakeTrigger() (node int, pkt int64, ok bool) {
	if !h.trigArmed {
		return 0, 0, false
	}
	h.trigArmed = false
	return h.trigNode, h.trigPkt, true
}
