package telemetry

import (
	"repro/internal/metrics"
)

// Probe is one sampled quantity: a named pull callback evaluated on every
// sample tick.
type Probe struct {
	Name   string
	Labels Labels
	Fn     func() float64
}

// TimeSeries is a ring-buffered (cycle, value) history of one probe.
type TimeSeries struct {
	Name   string
	Labels Labels

	cycles []int64
	values []float64
	next   int
	full   bool
}

func newTimeSeries(name string, labels Labels, capacity int) *TimeSeries {
	if capacity < 1 {
		capacity = 1
	}
	return &TimeSeries{
		Name:   name,
		Labels: labels,
		cycles: make([]int64, capacity),
		values: make([]float64, capacity),
	}
}

func (ts *TimeSeries) append(cycle int64, v float64) {
	ts.cycles[ts.next] = cycle
	ts.values[ts.next] = v
	ts.next++
	if ts.next == len(ts.cycles) {
		ts.next = 0
		ts.full = true
	}
}

// Len returns the number of retained samples.
func (ts *TimeSeries) Len() int {
	if ts.full {
		return len(ts.cycles)
	}
	return ts.next
}

// Points returns the retained (cycle, value) pairs oldest-first.
func (ts *TimeSeries) Points() (cycles []int64, values []float64) {
	if !ts.full {
		return append([]int64(nil), ts.cycles[:ts.next]...), append([]float64(nil), ts.values[:ts.next]...)
	}
	n := len(ts.cycles)
	cycles = make([]int64, 0, n)
	values = make([]float64, 0, n)
	cycles = append(cycles, ts.cycles[ts.next:]...)
	cycles = append(cycles, ts.cycles[:ts.next]...)
	values = append(values, ts.values[ts.next:]...)
	values = append(values, ts.values[:ts.next]...)
	return cycles, values
}

// MetricsSeries converts the ring into a metrics.Series (X = cycle,
// Latency = sampled value) so internal/plot can chart it directly.
func (ts *TimeSeries) MetricsSeries() metrics.Series {
	label := ts.Name
	if ls := ts.Labels.render(); ls != "" {
		label += ls
	}
	s := metrics.Series{Label: label}
	cycles, values := ts.Points()
	for i := range cycles {
		s.Append(metrics.Point{X: float64(cycles[i]), Latency: values[i]})
	}
	return s
}

// Sampler snapshots registered probes every Every cycles into per-probe
// ring-buffered time series.
type Sampler struct {
	every int64
	depth int

	probes []Probe
	series []*TimeSeries

	// Emit, when set, receives every sampled value (the Hub uses it to
	// stream JSONL sample lines).
	Emit func(cycle int64, name string, labels Labels, value float64)
}

// NewSampler builds a sampler ticking every `every` cycles, keeping `depth`
// samples per probe.
func NewSampler(every int64, depth int) *Sampler {
	if every < 1 {
		every = 1
	}
	if depth < 1 {
		depth = 1
	}
	return &Sampler{every: every, depth: depth}
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() int64 { return s.every }

// AddProbe registers one sampled quantity.
func (s *Sampler) AddProbe(p Probe) *TimeSeries {
	ts := newTimeSeries(p.Name, p.Labels, s.depth)
	s.probes = append(s.probes, p)
	s.series = append(s.series, ts)
	return ts
}

// Due reports whether a sample is scheduled for this cycle.
func (s *Sampler) Due(cycle int64) bool {
	return cycle%s.every == 0
}

// Sample evaluates every probe at the given cycle, appends to the rings and
// forwards values to Emit.
func (s *Sampler) Sample(cycle int64) {
	for i, p := range s.probes {
		v := p.Fn()
		s.series[i].append(cycle, v)
		if s.Emit != nil {
			s.Emit(cycle, p.Name, p.Labels, v)
		}
	}
}

// Series returns all probe rings in registration order.
func (s *Sampler) Series() []*TimeSeries { return s.series }

// MetricsSeries converts every ring for plotting.
func (s *Sampler) MetricsSeries() []metrics.Series {
	out := make([]metrics.Series, 0, len(s.series))
	for _, ts := range s.series {
		out = append(out, ts.MetricsSeries())
	}
	return out
}
