package telemetry

import "runtime"

// RegisterRuntimeMetrics adds Go process gauges — goroutine count, heap
// bytes in use and cumulative GC pause time — to the registry as pull
// callbacks. They describe the host process, not the simulation, so they
// carry no determinism obligations; runtime.ReadMemStats is evaluated once
// per render/sample, never on the simulation hot path.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.", nil,
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	reg.GaugeFunc("go_gc_pause_total_seconds",
		"Cumulative stop-the-world GC pause time.", nil,
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.PauseTotalNs) / 1e9
		})
}

// AddRuntimeProbes samples the same Go process gauges into the cycle
// sampler's time-series rings, so runtime behavior lines up on the cycle
// axis with the sim gauges. Nil-safe on a disabled sampler.
func AddRuntimeProbes(s *Sampler) {
	if s == nil {
		return
	}
	s.AddProbe(Probe{Name: "go_goroutines", Fn: func() float64 {
		return float64(runtime.NumGoroutine())
	}})
	s.AddProbe(Probe{Name: "go_heap_alloc_bytes", Fn: func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	}})
	s.AddProbe(Probe{Name: "go_gc_pause_total_seconds", Fn: func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.PauseTotalNs) / 1e9
	}})
}
