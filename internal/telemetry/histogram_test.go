package telemetry

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})

	// A value equal to a bound lands in that bound's bucket (`le` is
	// inclusive), values below the first bound land in the first bucket, and
	// values above the last bound land in the implicit +Inf bucket.
	cases := []struct {
		v      float64
		bucket int
	}{
		{-3, 0},
		{0, 0},
		{1, 0},
		{1.0000001, 1},
		{2, 1},
		{3.999, 2},
		{4, 2},
		{4.0001, 3},
		{math.Inf(1), 3},
	}
	for _, c := range cases {
		before := append([]uint64(nil), h.BucketCounts()...)
		h.Observe(c.v)
		after := h.BucketCounts()
		for i := range after {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if after[i] != want {
				t.Errorf("Observe(%g): bucket %d count = %d, want %d", c.v, i, after[i], want)
			}
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Errorf("Count() = %d, want %d", got, len(cases))
	}
}

func TestHistogramGoldenRender(t *testing.T) {
	r := NewRegistry()
	lat := r.Histogram("disha_test_latency_seconds", "Test latency.",
		Labels{{Key: "stage", Value: "route"}}, []float64{0.5, 1, 2})
	for _, v := range []float64{0.25, 0.5, 0.75, 3} {
		lat.Observe(v)
	}
	plain := r.Histogram("disha_plain_seconds", "Plain.", nil, []float64{1, 2})
	plain.Observe(1.5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	golden := filepath.Join("testdata", "histogram_golden.txt")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture: %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("exposition mismatch with %s\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge(same bounds) = %v", err)
	}
	if got, want := a.Count(), uint64(3); got != want {
		t.Errorf("merged Count() = %d, want %d", got, want)
	}
	if got, want := a.Sum(), 12.0; got != want {
		t.Errorf("merged Sum() = %g, want %g", got, want)
	}
	wantBuckets := []uint64{1, 1, 1}
	for i, c := range a.BucketCounts() {
		if c != wantBuckets[i] {
			t.Errorf("merged bucket %d = %d, want %d", i, c, wantBuckets[i])
		}
	}

	// Mismatched bounds: error, receiver unchanged.
	c := NewHistogram([]float64{1, 3})
	c.Observe(2)
	if err := a.Merge(c); err == nil {
		t.Error("Merge(different bounds) = nil error, want error")
	}
	d := NewHistogram([]float64{1, 2, 4})
	d.Observe(2)
	if err := a.Merge(d); err == nil {
		t.Error("Merge(different bucket count) = nil error, want error")
	}
	if got, want := a.Count(), uint64(3); got != want {
		t.Errorf("Count() after failed merges = %d, want %d (unchanged)", got, want)
	}

	// Merging a nil or empty source is a no-op, not an error.
	if err := a.Merge(nil); err != nil {
		t.Errorf("Merge(nil) = %v, want nil", err)
	}
	if err := a.Merge(NewHistogram([]float64{99})); err != nil {
		t.Errorf("Merge(empty, different bounds) = %v, want nil (empty is a no-op)", err)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("after Reset: Count=%d Sum=%g, want zeros", h.Count(), h.Sum())
	}
	for i, c := range h.BucketCounts() {
		if c != 0 {
			t.Errorf("after Reset: bucket %d = %d, want 0", i, c)
		}
	}
	h.Observe(0.5)
	if h.Count() != 1 {
		t.Errorf("Observe after Reset: Count=%d, want 1", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	for i := 0; i < 10; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(15) // second bucket
	}
	// Median rank 10 sits exactly at the first/second bucket boundary: the
	// interpolated estimate is the first bound.
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("Quantile(0.5) = %g, want 10", got)
	}
	// 0.75 → rank 15, midway through the second bucket: 10 + 10*(5/10) = 15.
	if got := h.Quantile(0.75); got != 15 {
		t.Errorf("Quantile(0.75) = %g, want 15", got)
	}
	// +Inf bucket clamps to the largest finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("Quantile in +Inf bucket = %g, want clamp to 2", got)
	}
	// Out-of-range q is clamped, empty histogram returns 0.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("Quantile(-1) = %g, want Quantile(0) = %g", got, h.Quantile(0))
	}
	if got := NewHistogram([]float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("Quantile on empty histogram = %g, want 0", got)
	}
}

func TestHistogramBucketHelpers(t *testing.T) {
	wantExp := []float64{1, 2, 4, 8}
	for i, b := range ExponentialBuckets(1, 2, 4) {
		if b != wantExp[i] {
			t.Errorf("ExponentialBuckets[%d] = %g, want %g", i, b, wantExp[i])
		}
	}
	wantLin := []float64{5, 7.5, 10}
	for i, b := range LinearBuckets(5, 2.5, 3) {
		if b != wantLin[i] {
			t.Errorf("LinearBuckets[%d] = %g, want %g", i, b, wantLin[i])
		}
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewHistogram(empty)", func() { NewHistogram(nil) })
	mustPanic("NewHistogram(descending)", func() { NewHistogram([]float64{2, 1}) })
	mustPanic("NewHistogram(duplicate)", func() { NewHistogram([]float64{1, 1}) })
	mustPanic("ExponentialBuckets(start=0)", func() { ExponentialBuckets(0, 2, 3) })
	mustPanic("ExponentialBuckets(factor=1)", func() { ExponentialBuckets(1, 1, 3) })
	mustPanic("LinearBuckets(width=0)", func() { LinearBuckets(1, 0, 3) })
}

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.Reset()
	if err := h.Merge(NewHistogram([]float64{1})); err != nil {
		t.Errorf("nil.Merge = %v, want nil", err)
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram reads should be zero")
	}
	if h.Bounds() != nil || h.BucketCounts() != nil {
		t.Error("nil histogram slices should be nil")
	}
}

func TestHistogramGatherSamples(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("disha_hist_gather", "Gather test.", nil, []float64{1})
	h.Observe(0.5)
	h.Observe(2.5)

	got := map[string]float64{}
	for _, s := range r.Gather() {
		got[s.Name] = s.Value
	}
	if v, ok := got["disha_hist_gather_count"]; !ok || v != 2 {
		t.Errorf("Gather disha_hist_gather_count = %g (present=%v), want 2", v, ok)
	}
	if v, ok := got["disha_hist_gather_sum"]; !ok || v != 3 {
		t.Errorf("Gather disha_hist_gather_sum = %g (present=%v), want 3", v, ok)
	}
}
