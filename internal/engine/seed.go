package engine

// Seed derivation. Every job's simulation seed is a pure function of the
// engine's base seed and the job's identity key — never of the worker that
// ran it or the order it completed in. That invariant is what makes a
// parallel sweep bit-identical to a serial one: reordering or re-running
// jobs cannot change the random streams they consume.
//
// The derivation folds the key into 64 bits with FNV-1a and then pushes the
// mix through two rounds of the splitmix64 finalizer, the same generator the
// simulation RNG (internal/sim) uses for state expansion. splitmix64 is a
// bijection on 64-bit integers, so distinct (base, key-hash) mixes can only
// collide if FNV collides on the keys themselves.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv64 hashes a job key with FNV-1a.
func fnv64(key string) uint64 {
	var h uint64 = fnvOffset
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// splitmix64 is the splitmix64 output finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SeedFor derives the deterministic simulation seed for the job identified
// by key under the engine base seed.
func SeedFor(base uint64, key string) uint64 {
	return splitmix64(splitmix64(base ^ fnv64(key)))
}
