package engine

import (
	"sync"

	"repro/internal/telemetry"
)

// Metrics exports engine progress through an internal/telemetry registry:
// jobs done/failed/retried, batch totals, elapsed time and the ETA estimate.
// Unlike the simulator's telemetry (which is strictly single-goroutine, see
// package telemetry), engine progress is inherently concurrent with whatever
// else updates the registry — an HTTP server's own metrics, for example — so
// all writes and every Publish go through one mutex owned here. Other
// writers to the same registry must either share this mutex via Locked or
// register pull-style metrics over atomic values, which are safe to render
// from any goroutine.
type Metrics struct {
	mu  sync.Mutex
	reg *telemetry.Registry

	runsStarted  *telemetry.Counter
	runsFinished *telemetry.Counter
	jobsDone     *telemetry.Counter
	jobsFailed   *telemetry.Counter
	jobsRetried  *telemetry.Counter
	jobsRestored *telemetry.Counter

	jobsTotal      *telemetry.Gauge
	jobsRemaining  *telemetry.Gauge
	etaSeconds     *telemetry.Gauge
	elapsedSeconds *telemetry.Gauge
	running        *telemetry.Gauge
}

// NewMetrics registers the engine metric families on reg. Call once per
// registry; the returned Metrics may be shared by any number of sequential
// or concurrent engine runs (counters accumulate across runs, gauges track
// the most recent update).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		reg:            reg,
		runsStarted:    reg.Counter("engine_runs_started_total", "engine batches started", nil),
		runsFinished:   reg.Counter("engine_runs_finished_total", "engine batches finished", nil),
		jobsDone:       reg.Counter("engine_jobs_done_total", "jobs completed successfully", nil),
		jobsFailed:     reg.Counter("engine_jobs_failed_total", "jobs that exhausted their retries", nil),
		jobsRetried:    reg.Counter("engine_jobs_retried_total", "extra attempts spent on failing jobs", nil),
		jobsRestored:   reg.Counter("engine_jobs_restored_total", "jobs served from a resume journal", nil),
		jobsTotal:      reg.Gauge("engine_jobs_total", "jobs in the current batch", nil),
		jobsRemaining:  reg.Gauge("engine_jobs_remaining", "jobs not yet settled in the current batch", nil),
		etaSeconds:     reg.Gauge("engine_eta_seconds", "estimated remaining wall time of the current batch", nil),
		elapsedSeconds: reg.Gauge("engine_elapsed_seconds", "wall time spent on the current batch", nil),
		running:        reg.Gauge("engine_running", "1 while a batch is in flight", nil),
	}
}

// Registry returns the registry the metrics publish into.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// Locked runs fn while holding the metrics mutex, letting co-tenants of the
// registry (push-style gauges of an embedding server, say) mutate and
// publish without racing the engine.
func (m *Metrics) Locked(fn func(reg *telemetry.Registry)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(m.reg)
}

// Publish renders the registry snapshot for HTTP exposition.
func (m *Metrics) Publish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg.Publish()
}

func (m *Metrics) beginRun(total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runsStarted.Inc()
	m.jobsTotal.Set(float64(total))
	m.jobsRemaining.Set(float64(total))
	m.etaSeconds.Set(0)
	m.elapsedSeconds.Set(0)
	m.running.Set(1)
	m.reg.Publish()
}

func (m *Metrics) observe(st Status, failed, fromJournal bool, retries int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case failed:
		m.jobsFailed.Inc()
	case fromJournal:
		m.jobsDone.Inc()
		m.jobsRestored.Inc()
	default:
		m.jobsDone.Inc()
	}
	if retries > 0 {
		m.jobsRetried.Add(int64(retries))
	}
	m.jobsRemaining.Set(float64(st.Total - st.Done - st.Failed))
	m.etaSeconds.Set(st.ETA.Seconds())
	m.elapsedSeconds.Set(st.Elapsed.Seconds())
	m.reg.Publish()
}

func (m *Metrics) endRun(st Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runsFinished.Inc()
	m.running.Set(0)
	m.etaSeconds.Set(0)
	m.elapsedSeconds.Set(st.Elapsed.Seconds())
	m.reg.Publish()
}
