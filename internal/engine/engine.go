// Package engine is the deterministic parallel experiment engine: it fans a
// batch of independent jobs (one simulation point each, typically) out
// across a worker pool while keeping results bit-identical to a serial run.
//
// Determinism rests on two rules. First, a job's random seed is derived only
// from the engine's base seed and the job's identity key (SeedFor), never
// from the worker that picked it up or the order jobs finish in. Second, the
// engine returns results keyed by job identity and the caller assembles them
// in its own fixed order, so completion order is invisible downstream.
// Together they make `Workers: 1` and `Workers: 64` produce the same bytes.
//
// Around that core the engine provides the operational features a long
// sweep needs: panic isolation with per-job retries and a failed-jobs
// report, a JSONL checkpoint journal so a killed sweep resumes where it left
// off, and live progress (done/total, ETA) exported through an
// internal/telemetry registry.
package engine

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Job is one unit of work: an identity key and a function that computes the
// result from the job's derived seed. Run must be self-contained — it may
// not share mutable state with other jobs, because jobs execute concurrently.
type Job[T any] struct {
	// Key uniquely identifies the job within the batch (e.g.
	// "fig4-uniform/disha-m3@0.60#2"). It keys the seed derivation, the
	// checkpoint journal and the result map.
	Key string
	// Run computes the job's result. It is retried on error or panic.
	Run func(seed uint64) (T, error)
}

// Status is a progress snapshot passed to the OnDone callback and exported
// through telemetry.
type Status struct {
	Total       int // jobs in the batch
	Done        int // completed successfully (including journal restores)
	FromJournal int // of Done, restored from the resume journal
	Failed      int // exhausted their retries
	Retried     int // extra attempts spent across all jobs
	Elapsed     time.Duration
	// ETA estimates the remaining wall time from the live (non-restored)
	// completion rate; zero until the first live job completes.
	ETA time.Duration
}

// JobResult describes one settled job (success, restore or failure).
type JobResult[T any] struct {
	Key         string
	Seed        uint64
	Value       T
	Err         string // "" on success
	Attempts    int
	Elapsed     time.Duration
	FromJournal bool
}

// Failure is one job that exhausted its retries.
type Failure struct {
	Key      string
	Err      string
	Attempts int
}

// Report summarizes a finished batch.
type Report struct {
	Total       int
	Completed   int // successful jobs, journal restores included
	FromJournal int
	Retried     int
	Aborted     int       // jobs never dispatched because Stop closed mid-run
	Failures    []Failure // in batch order
	Elapsed     time.Duration
	Workers     int
}

// Failed returns the number of jobs that did not complete.
func (r *Report) Failed() int { return len(r.Failures) }

// String renders the one-line summary CLIs print after a sweep.
func (r *Report) String() string {
	s := fmt.Sprintf("%d/%d jobs completed in %v (%d workers", r.Completed, r.Total,
		r.Elapsed.Round(time.Millisecond), r.Workers)
	if r.FromJournal > 0 {
		s += fmt.Sprintf(", %d restored from journal", r.FromJournal)
	}
	if r.Retried > 0 {
		s += fmt.Sprintf(", %d retries", r.Retried)
	}
	s += ")"
	if r.Aborted > 0 {
		s += fmt.Sprintf("; %d aborted by drain", r.Aborted)
	}
	if len(r.Failures) > 0 {
		s += fmt.Sprintf("; %d FAILED", len(r.Failures))
	}
	return s
}

// Config controls one engine run.
type Config[T any] struct {
	// Workers is the worker-pool size; 0 or negative means GOMAXPROCS.
	Workers int
	// Seed is the base seed every job seed is derived from (SeedFor).
	Seed uint64
	// Retries is how many additional attempts a failing job gets (0 = one
	// attempt total). Panics count as failures and are isolated per job.
	Retries int
	// Journal, when non-empty, is the JSONL checkpoint file completed jobs
	// are appended to. With Resume false an existing file is truncated.
	Journal string
	// Resume replays the journal before running: jobs already recorded are
	// served from the journal and not re-executed.
	Resume bool
	// Metrics, when non-nil, receives live progress (jobs done/total, ETA)
	// on the telemetry registry it was built from.
	Metrics *Metrics
	// Stop, when non-nil, makes the run drainable: once the channel is
	// closed no further jobs are handed to workers, jobs already executing
	// finish (and are journaled) normally, and the undispatched remainder is
	// counted in Report.Aborted instead of being run. Results stay
	// deterministic — a drained run is a prefix-complete subset of the full
	// batch, and resuming from its journal completes the rest.
	Stop <-chan struct{}
	// OnDone, when non-nil, is called after every settled job (success,
	// journal restore or final failure), always from the calling goroutine.
	OnDone func(Status, JobResult[T])
}

// outcome travels from a worker to the collector.
type outcome[T any] struct {
	index    int
	seed     uint64
	value    T
	err      string
	attempts int
	elapsed  time.Duration
}

// Run executes the batch and returns the results of all successful jobs
// keyed by job key, plus a report of failures and journal restores. The
// returned error covers setup problems (duplicate keys, unreadable journal);
// job failures are reported, not returned, so callers can use partial
// results. Callbacks and metrics updates happen on the calling goroutine.
func Run[T any](cfg Config[T], jobs []Job[T]) (map[string]T, *Report, error) {
	start := time.Now()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}

	seen := make(map[string]struct{}, len(jobs))
	for _, j := range jobs {
		if j.Key == "" || j.Run == nil {
			return nil, nil, fmt.Errorf("engine: job with empty key or nil run")
		}
		if _, dup := seen[j.Key]; dup {
			return nil, nil, fmt.Errorf("engine: duplicate job key %q", j.Key)
		}
		seen[j.Key] = struct{}{}
	}

	restored := map[string]journalRecord{}
	if cfg.Resume && cfg.Journal != "" {
		var err error
		if restored, err = readJournal(cfg.Journal); err != nil {
			return nil, nil, err
		}
	}
	var journal *journalWriter
	if cfg.Journal != "" {
		var err error
		if journal, err = openJournal(cfg.Journal, cfg.Resume); err != nil {
			return nil, nil, err
		}
		defer journal.close()
	}

	results := make(map[string]T, len(jobs))
	report := &Report{Total: len(jobs), Workers: workers}
	st := Status{Total: len(jobs)}
	if cfg.Metrics != nil {
		cfg.Metrics.beginRun(len(jobs))
	}
	settle := func(res JobResult[T]) {
		st.Elapsed = time.Since(start)
		live := st.Done - st.FromJournal
		if remaining := st.Total - st.Done - st.Failed; live > 0 && remaining > 0 {
			st.ETA = time.Duration(float64(st.Elapsed) / float64(live) * float64(remaining))
		} else {
			st.ETA = 0
		}
		if cfg.Metrics != nil {
			cfg.Metrics.observe(st, res.Err != "", res.FromJournal, res.Attempts-1)
		}
		if cfg.OnDone != nil {
			cfg.OnDone(st, res)
		}
	}

	// Serve journal restores first, in batch order, so resumed runs report
	// progress deterministically before live work starts.
	pending := make([]int, 0, len(jobs))
	for i, j := range jobs {
		rec, ok := restored[j.Key]
		if ok {
			var v T
			if err := json.Unmarshal(rec.Value, &v); err == nil {
				results[j.Key] = v
				st.Done++
				st.FromJournal++
				report.Completed++
				report.FromJournal++
				settle(JobResult[T]{
					Key: j.Key, Seed: rec.Seed, Value: v,
					Attempts: rec.Attempts, FromJournal: true,
				})
				continue
			}
			// Undecodable record (type changed, torn write): recompute.
		}
		pending = append(pending, i)
	}

	// Fan the remaining jobs out. Workers only compute; every mutation of
	// results, journal, metrics and callbacks happens here on the collector
	// side, in completion order, which the deterministic seed derivation
	// makes harmless.
	jobCh := make(chan int)
	outCh := make(chan outcome[T], workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				job := jobs[i]
				seed := SeedFor(cfg.Seed, job.Key)
				jobStart := time.Now()
				var (
					v        T
					errMsg   string
					attempts int
				)
				for attempts = 1; ; attempts++ {
					var err error
					v, err = runIsolated(job, seed)
					if err == nil {
						errMsg = ""
						break
					}
					errMsg = err.Error()
					if attempts > cfg.Retries {
						break
					}
				}
				outCh <- outcome[T]{
					index: i, seed: seed, value: v, err: errMsg,
					attempts: attempts, elapsed: time.Since(jobStart),
				}
			}
		}()
	}
	// The dispatcher reports how many jobs it actually handed out: with a
	// Stop channel the count can fall short of len(pending), and the
	// collector must not wait for outcomes that will never arrive.
	dispatchedCh := make(chan int, 1)
	go func() {
		n := 0
		for _, i := range pending {
			if cfg.Stop != nil {
				// Check Stop with priority: a bare two-way select would keep
				// dispatching at random after the close, since select picks
				// among ready cases uniformly.
				select {
				case <-cfg.Stop:
					close(jobCh)
					dispatchedCh <- n
					return
				default:
				}
				select {
				case <-cfg.Stop:
					close(jobCh)
					dispatchedCh <- n
					return
				case jobCh <- i:
				}
			} else {
				jobCh <- i
			}
			n++
		}
		close(jobCh)
		dispatchedCh <- n
	}()

	failures := make(map[int]Failure)
	received, dispatched := 0, -1
	for dispatched < 0 || received < dispatched {
		var o outcome[T]
		select {
		case o = <-outCh:
		case n := <-dispatchedCh:
			dispatched = n
			continue
		}
		received++
		key := jobs[o.index].Key
		st.Retried += o.attempts - 1
		report.Retried += o.attempts - 1
		if o.err != "" {
			st.Failed++
			failures[o.index] = Failure{Key: key, Err: o.err, Attempts: o.attempts}
			settle(JobResult[T]{
				Key: key, Seed: o.seed, Err: o.err,
				Attempts: o.attempts, Elapsed: o.elapsed,
			})
			continue
		}
		results[key] = o.value
		st.Done++
		report.Completed++
		if journal != nil {
			raw, err := json.Marshal(o.value)
			if err == nil {
				err = journal.append(journalRecord{
					Key: key, Seed: o.seed, Attempts: o.attempts,
					ElapsedMS: float64(o.elapsed) / float64(time.Millisecond),
					Value:     raw,
				})
			}
			if err != nil {
				// A dead journal must not kill the sweep; surface it as a
				// (checkpointing) failure in the report instead.
				failures[-1-o.index] = Failure{Key: key + " (journal)", Err: err.Error(), Attempts: o.attempts}
			}
		}
		settle(JobResult[T]{
			Key: key, Seed: o.seed, Value: o.value,
			Attempts: o.attempts, Elapsed: o.elapsed,
		})
	}
	wg.Wait()
	report.Aborted = len(pending) - dispatched

	// Failures in deterministic batch order, not completion order.
	idxs := make([]int, 0, len(failures))
	for i := range failures {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		report.Failures = append(report.Failures, failures[i])
	}
	report.Elapsed = time.Since(start)
	if cfg.Metrics != nil {
		cfg.Metrics.endRun(st)
	}
	return results, report, nil
}

// runIsolated invokes the job, converting a panic into an error so one bad
// simulation point cannot take down the whole sweep.
func runIsolated[T any](job Job[T], seed uint64) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return job.Run(seed)
}
