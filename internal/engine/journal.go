package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// The checkpoint journal is a JSON-Lines file of completed job results. The
// engine appends one record per success, flushing per line so that a killed
// sweep loses at most the job in flight; on resume it replays the journal,
// skips every recorded job and serves the recorded values instead. Records
// whose key matches no current job are ignored, torn trailing lines (from a
// kill mid-write) are skipped, and a later record for the same key wins, so
// a journal may be reused across retries of the same sweep.

// journalRecord is one completed job, as stored on disk.
type journalRecord struct {
	Key       string          `json:"key"`
	Seed      uint64          `json:"seed"`
	Attempts  int             `json:"attempts"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Value     json.RawMessage `json:"value"`
}

// readJournal loads every well-formed record from path, last record per key
// winning. A missing file is not an error (resume of a sweep that never
// started is an empty journal).
func readJournal(path string) (map[string]journalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]journalRecord{}, nil
		}
		return nil, fmt.Errorf("engine: open journal: %w", err)
	}
	defer f.Close()
	out := make(map[string]journalRecord)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" || rec.Value == nil {
			continue // torn or foreign line; recompute that job instead
		}
		out[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("engine: read journal: %w", err)
	}
	return out, nil
}

// journalWriter appends records to the journal file, one flushed line each.
type journalWriter struct {
	f *os.File
}

// openJournal opens path for appending (creating it if needed). With resume
// false any existing content is truncated first — a fresh run must not
// inherit another sweep's checkpoints.
func openJournal(path string, resume bool) (*journalWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: open journal: %w", err)
	}
	return &journalWriter{f: f}, nil
}

// append writes one record and flushes it to the OS.
func (w *journalWriter) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("engine: encode journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("engine: write journal: %w", err)
	}
	return nil
}

func (w *journalWriter) close() error { return w.f.Close() }
