package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// simJob mimics a simulation point: its result is a pure function of the
// seed the engine hands it, so any seed-derivation or ordering bug shows up
// as a value difference.
type simResult struct {
	Key  string  `json:"key"`
	Sum  uint64  `json:"sum"`
	Mean float64 `json:"mean"`
}

func simJobs(n int, jitter bool) []Job[simResult] {
	jobs := make([]Job[simResult], 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("point-%02d", i)
		jobs = append(jobs, Job[simResult]{
			Key: key,
			Run: func(seed uint64) (simResult, error) {
				rng := sim.NewRNG(seed)
				if jitter {
					// Shuffle completion order so parallel runs finish in a
					// different order than serial ones.
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				}
				var sum uint64
				var mean float64
				for k := 0; k < 100; k++ {
					sum += rng.Uint64() >> 32
					mean += rng.Float64()
				}
				return simResult{Key: key, Sum: sum, Mean: mean / 100}, nil
			},
		})
	}
	return jobs
}

// assemble renders results in batch order — the deterministic aggregation a
// real caller performs.
func assemble(t *testing.T, jobs []Job[simResult], results map[string]simResult) []byte {
	t.Helper()
	ordered := make([]simResult, 0, len(jobs))
	for _, j := range jobs {
		r, ok := results[j.Key]
		if !ok {
			t.Fatalf("missing result for %s", j.Key)
		}
		ordered = append(ordered, r)
	}
	b, err := json.Marshal(ordered)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDeterminismParallelMatchesSerial(t *testing.T) {
	jobs := simJobs(24, true)
	serial, repS, err := Run(Config[simResult]{Workers: 1, Seed: 42}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, repP, err := Run(Config[simResult]{Workers: 8, Seed: 42}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if repS.Failed() != 0 || repP.Failed() != 0 {
		t.Fatalf("unexpected failures: serial=%d parallel=%d", repS.Failed(), repP.Failed())
	}
	a, b := assemble(t, jobs, serial), assemble(t, jobs, parallel)
	if string(a) != string(b) {
		t.Fatalf("parallel run diverged from serial:\nserial:   %s\nparallel: %s", a, b)
	}
	// A different base seed must change the results.
	other, _, err := Run(Config[simResult]{Workers: 8, Seed: 43}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if string(assemble(t, jobs, other)) == string(a) {
		t.Fatal("base seed does not reach the jobs")
	}
}

func TestSeedForIsIdentityKeyed(t *testing.T) {
	if SeedFor(1, "a") != SeedFor(1, "a") {
		t.Fatal("SeedFor must be deterministic")
	}
	if SeedFor(1, "a") == SeedFor(1, "b") {
		t.Fatal("distinct keys must get distinct seeds")
	}
	if SeedFor(1, "a") == SeedFor(2, "a") {
		t.Fatal("distinct base seeds must get distinct seeds")
	}
	// Zero base stays usable (the harness default seed may be anything).
	if SeedFor(0, "a") == SeedFor(0, "b") {
		t.Fatal("zero base must still separate keys")
	}
}

func TestResumeEqualsUninterrupted(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal.jsonl")
	jobs := simJobs(12, false)

	clean, _, err := Run(Config[simResult]{Workers: 4, Seed: 7}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := assemble(t, jobs, clean)

	// First attempt: half the jobs fail (simulating a sweep that died
	// partway); the journal checkpoints the successes.
	flaky := make([]Job[simResult], len(jobs))
	copy(flaky, jobs)
	for i := range flaky {
		if i%2 == 1 {
			flaky[i].Run = func(uint64) (simResult, error) {
				return simResult{}, fmt.Errorf("injected crash")
			}
		}
	}
	_, rep, err := Run(Config[simResult]{Workers: 4, Seed: 7, Journal: journal}, flaky)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 6 || rep.Completed != 6 {
		t.Fatalf("partial run: completed=%d failed=%d", rep.Completed, rep.Failed())
	}

	// Resume with the healthy jobs: the six checkpointed jobs must be served
	// from the journal, the rest recomputed, and the assembled bytes must
	// equal the uninterrupted run.
	resumed, rep2, err := Run(Config[simResult]{Workers: 4, Seed: 7, Journal: journal, Resume: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FromJournal != 6 {
		t.Fatalf("restored %d jobs from journal, want 6", rep2.FromJournal)
	}
	if got := assemble(t, jobs, resumed); string(got) != string(want) {
		t.Fatalf("resumed run diverged from uninterrupted run:\nwant %s\ngot  %s", want, got)
	}

	// Resuming a fully journaled sweep must not run any job at all.
	poisoned := make([]Job[simResult], len(jobs))
	copy(poisoned, jobs)
	for i := range poisoned {
		poisoned[i].Run = func(uint64) (simResult, error) {
			panic("job executed despite full journal")
		}
	}
	all, rep3, err := Run(Config[simResult]{Workers: 4, Seed: 7, Journal: journal, Resume: true}, poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.FromJournal != len(jobs) || rep3.Failed() != 0 {
		t.Fatalf("full resume: restored=%d failed=%d", rep3.FromJournal, rep3.Failed())
	}
	if got := assemble(t, jobs, all); string(got) != string(want) {
		t.Fatal("journal round-trip changed the results")
	}
}

func TestJournalToleratesTornLines(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal.jsonl")
	jobs := simJobs(4, false)
	if _, _, err := Run(Config[simResult]{Workers: 2, Seed: 3, Journal: journal}, jobs); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: append garbage and a torn JSON prefix.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json\n{\"key\":\"point-00\",\"val"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	res, rep, err := Run(Config[simResult]{Workers: 2, Seed: 3, Journal: journal, Resume: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromJournal != 4 || len(res) != 4 {
		t.Fatalf("torn journal broke resume: restored=%d results=%d", rep.FromJournal, len(res))
	}
}

func TestJournalResumeSkipsTruncatedLastLine(t *testing.T) {
	// A SIGKILL can land mid-append, leaving the journal's final record cut
	// short at an arbitrary byte. Resume must treat the partial line as
	// never-written — recompute exactly that job — and still produce results
	// identical to an uninterrupted run.
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal.jsonl")
	jobs := simJobs(6, false)

	clean, _, err := Run(Config[simResult]{Workers: 2, Seed: 11}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := assemble(t, jobs, clean)

	if _, _, err := Run(Config[simResult]{Workers: 2, Seed: 11, Journal: journal}, jobs); err != nil {
		t.Fatal(err)
	}
	// Truncate the file mid-way through its last line (drop the trailing
	// "}\n" plus a few value bytes) to simulate the crash.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimRight(string(data), "\n")
	lines := strings.Split(body, "\n")
	if len(lines) != 6 {
		t.Fatalf("journal has %d lines, want 6", len(lines))
	}
	last := lines[len(lines)-1]
	truncated := strings.Join(lines[:len(lines)-1], "\n") + "\n" + last[:len(last)/2]
	if err := os.WriteFile(journal, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	res, rep, err := Run(Config[simResult]{Workers: 2, Seed: 11, Journal: journal, Resume: true}, jobs)
	if err != nil {
		t.Fatalf("resume over a truncated journal must not fail: %v", err)
	}
	if rep.FromJournal != 5 {
		t.Fatalf("restored %d jobs, want 5 (the torn record must be recomputed)", rep.FromJournal)
	}
	if rep.Failed() != 0 {
		t.Fatalf("unexpected failures: %v", rep.Failures)
	}
	if got := assemble(t, jobs, res); string(got) != string(want) {
		t.Fatalf("truncated-journal resume diverged:\nwant %s\ngot  %s", want, got)
	}
}

func TestStopDrainsWithoutDispatchingMore(t *testing.T) {
	// Closing Stop mid-run must let in-flight jobs finish, journal them, and
	// count the undispatched remainder as Aborted — and a resumed run must
	// complete the batch with results identical to an uninterrupted one.
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal.jsonl")
	jobs := simJobs(10, false)

	clean, _, err := Run(Config[simResult]{Workers: 2, Seed: 5}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := assemble(t, jobs, clean)

	stop := make(chan struct{})
	var settled atomic.Int64
	gate := make(chan struct{})
	gated := make([]Job[simResult], len(jobs))
	copy(gated, jobs)
	for i := range gated {
		run := jobs[i].Run
		gated[i].Run = func(seed uint64) (simResult, error) {
			<-gate // hold every dispatched job until the drain is signaled
			return run(seed)
		}
	}
	done := make(chan struct{})
	var rep *Report
	go func() {
		defer close(done)
		_, rep, err = Run(Config[simResult]{
			Workers: 2, Seed: 5, Journal: journal, Stop: stop,
			OnDone: func(Status, JobResult[simResult]) { settled.Add(1) },
		}, gated)
	}()
	close(stop) // drain before any job can complete...
	close(gate) // ...then release the (at most workers+1 queued) in-flight jobs
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted == 0 {
		t.Fatalf("drain dispatched the whole batch (aborted=0, completed=%d)", rep.Completed)
	}
	if rep.Completed+rep.Aborted != rep.Total {
		t.Fatalf("completed=%d + aborted=%d != total=%d", rep.Completed, rep.Aborted, rep.Total)
	}

	// Resume finishes the batch; the combined results match the clean run.
	res, rep2, err := Run(Config[simResult]{Workers: 2, Seed: 5, Journal: journal, Resume: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FromJournal != rep.Completed {
		t.Fatalf("resume restored %d, want %d", rep2.FromJournal, rep.Completed)
	}
	if got := assemble(t, jobs, res); string(got) != string(want) {
		t.Fatal("drain+resume changed the results")
	}
}

func TestFreshRunTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal.jsonl")
	jobs := simJobs(3, false)
	if _, _, err := Run(Config[simResult]{Workers: 1, Seed: 1, Journal: journal}, jobs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(Config[simResult]{Workers: 1, Seed: 1, Journal: journal}, jobs[:1]); err != nil {
		t.Fatal(err)
	}
	recs, err := readJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("non-resume run must truncate the journal, found %d records", len(recs))
	}
}

func TestPanicIsolationAndRetry(t *testing.T) {
	var firstAttempts atomic.Int64
	jobs := []Job[simResult]{
		{Key: "flaky", Run: func(seed uint64) (simResult, error) {
			if firstAttempts.Add(1) == 1 {
				panic("transient panic")
			}
			return simResult{Key: "flaky", Sum: seed}, nil
		}},
		{Key: "doomed", Run: func(uint64) (simResult, error) {
			panic("permanent panic")
		}},
		{Key: "healthy", Run: func(seed uint64) (simResult, error) {
			return simResult{Key: "healthy", Sum: seed}, nil
		}},
	}
	res, rep, err := Run(Config[simResult]{Workers: 2, Seed: 9, Retries: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 || rep.Failures[0].Key != "doomed" {
		t.Fatalf("failures = %+v, want only doomed", rep.Failures)
	}
	if !strings.Contains(rep.Failures[0].Err, "permanent panic") {
		t.Fatalf("failure should carry the panic message, got %q", rep.Failures[0].Err)
	}
	if rep.Failures[0].Attempts != 2 {
		t.Fatalf("doomed attempts = %d, want 2 (one retry)", rep.Failures[0].Attempts)
	}
	if _, ok := res["flaky"]; !ok {
		t.Fatal("flaky job must succeed on retry")
	}
	if _, ok := res["healthy"]; !ok {
		t.Fatal("healthy job lost")
	}
	if rep.Retried < 2 {
		t.Fatalf("retried = %d, want >= 2", rep.Retried)
	}
}

func TestBadBatchesRejected(t *testing.T) {
	ok := func(uint64) (simResult, error) { return simResult{}, nil }
	if _, _, err := Run(Config[simResult]{}, []Job[simResult]{{Key: "a", Run: ok}, {Key: "a", Run: ok}}); err == nil {
		t.Fatal("duplicate keys must be rejected")
	}
	if _, _, err := Run(Config[simResult]{}, []Job[simResult]{{Key: "", Run: ok}}); err == nil {
		t.Fatal("empty key must be rejected")
	}
	if _, _, err := Run(Config[simResult]{}, []Job[simResult]{{Key: "a"}}); err == nil {
		t.Fatal("nil run must be rejected")
	}
}

func TestProgressCallbackAndMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	jobs := simJobs(10, false)
	var calls int
	var lastDone int
	_, rep, err := Run(Config[simResult]{
		Workers: 4, Seed: 5, Metrics: m,
		OnDone: func(st Status, jr JobResult[simResult]) {
			calls++
			if st.Total != 10 {
				t.Errorf("status total = %d", st.Total)
			}
			if st.Done < lastDone {
				t.Errorf("done went backwards: %d -> %d", lastDone, st.Done)
			}
			lastDone = st.Done
			if jr.Key == "" {
				t.Error("job result without key")
			}
		},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 10 || rep.Completed != 10 {
		t.Fatalf("OnDone calls = %d, completed = %d", calls, rep.Completed)
	}
	text := string(reg.Published())
	for _, want := range []string{
		"engine_jobs_done_total 10",
		"engine_jobs_total 10",
		"engine_jobs_remaining 0",
		"engine_runs_finished_total 1",
		"engine_running 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("published metrics missing %q:\n%s", want, text)
		}
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Total: 10, Completed: 8, FromJournal: 3, Retried: 2, Workers: 4,
		Failures: []Failure{{Key: "x"}, {Key: "y"}}, Elapsed: 1500 * time.Millisecond}
	s := r.String()
	for _, want := range []string{"8/10", "4 workers", "3 restored", "2 retries", "2 FAILED"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}
