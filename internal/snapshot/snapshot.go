// Package snapshot is the versioned binary serialization layer behind the
// simulator's checkpoint/restore subsystem. It provides a small
// deterministic codec (Writer/Reader over little-endian fixed-width fields
// with length-prefixed strings), a sealed container format (magic + version
// header and a SHA-256 trailer so corrupt or truncated files are rejected,
// never mis-decoded), and atomic file helpers so a checkpoint killed
// mid-write can never shadow a good one.
//
// The codec is deliberately primitive: every field has one encoding, writes
// are append-only, and reads are bounds-checked with a sticky error, so a
// decoder walked over hostile input returns an error instead of panicking
// (FuzzOpen and the network snapshot fuzz target enforce this). Higher
// layers — internal/router, internal/network, internal/harness — compose
// their formats from these primitives.
package snapshot

import (
	"fmt"
	"math"
)

// Writer accumulates a deterministic binary encoding. The zero value is
// ready to use; retrieve the result with Bytes.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded payload accumulated so far.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends an unsigned 64-bit value (little endian).
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as a signed 64-bit value.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 appends a float64 by its IEEE-754 bit pattern, so the decoded value is
// bit-identical (NaN payloads included).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.I64(int64(len(s)))
	w.buf = append(w.buf, s...)
}

// F64s appends a length-prefixed slice of float64 values.
func (w *Writer) F64s(vs []float64) {
	w.I64(int64(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// Blob appends a length-prefixed byte slice; higher-level checkpoint formats
// use it to embed nested containers (e.g. a whole network snapshot).
func (w *Writer) Blob(b []byte) {
	w.I64(int64(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader decodes a payload produced by Writer. All methods share a sticky
// error: after the first failure every subsequent read returns the zero
// value, so decoders can run a straight-line field walk and check Err once
// per section. Reads never panic on truncated or corrupt input.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes (0 after an error).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

// Fail records err (if no earlier error is sticky yet) and returns it.
// Decoders use it to surface semantic validation failures through the same
// channel as framing errors.
func (r *Reader) Fail(format string, args ...any) error {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
	return r.err
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.err = fmt.Errorf("snapshot: truncated input: need %d bytes at offset %d, have %d", n, r.off, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads an unsigned 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int stored as a signed 64-bit value, failing if it does not
// fit the platform's int.
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.Fail("snapshot: value %d overflows int", v)
		return 0
	}
	return int(v)
}

// Bool reads a boolean, failing on any byte other than 0 or 1.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("snapshot: invalid bool byte %d", b[0])
		return false
	}
}

// F64 reads a float64 from its bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length/count field and validates 0 <= n <= max. Decoders pass
// a bound derived from the remaining input (or the receiving structure's
// capacity) so hostile counts cannot trigger huge allocations or index
// panics.
func (r *Reader) Len(max int) int {
	n := r.I64()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > int64(max) {
		r.Fail("snapshot: length %d outside [0, %d]", n, max)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string, bounded by the remaining input.
func (r *Reader) String() string {
	n := r.Len(r.Remaining())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed byte slice, bounded by the remaining input.
// The returned slice aliases the reader's buffer.
func (r *Reader) Blob() []byte {
	n := r.Len(r.Remaining())
	return r.take(n)
}

// F64s reads a length-prefixed float64 slice, bounded by the remaining
// input.
func (r *Reader) F64s() []float64 {
	n := r.Len(r.Remaining() / 8)
	if r.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	if r.err != nil {
		return nil
	}
	return vs
}

// Expect reads an int64 and fails unless it equals want; format headers use
// it to pin structural constants (node counts, VC counts) against the
// receiving configuration.
func (r *Reader) Expect(want int64, what string) {
	got := r.I64()
	if r.err == nil && got != want {
		r.Fail("snapshot: %s mismatch: snapshot has %d, this configuration has %d", what, got, want)
	}
}

// ExpectString reads a string and fails unless it equals want.
func (r *Reader) ExpectString(want, what string) {
	got := r.String()
	if r.err == nil && got != want {
		r.Fail("snapshot: %s mismatch: snapshot has %q, this configuration has %q", what, got, want)
	}
}
