package snapshot

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
)

// Container format: an 8-byte magic naming the snapshot kind, a 4-byte
// little-endian format version, the payload, and a SHA-256 digest of
// everything before it. The digest makes bit rot and torn writes loud:
// Open rejects a damaged file with an error instead of handing a
// half-decoded state to the simulator.

const (
	magicLen   = 8
	versionLen = 4
	sumLen     = sha256.Size
)

// Seal wraps payload in a container: magic (exactly 8 bytes) + version +
// payload + SHA-256 trailer. It panics if magic is not 8 bytes long —
// container kinds are compile-time constants.
func Seal(magic string, version uint32, payload []byte) []byte {
	if len(magic) != magicLen {
		panic(fmt.Sprintf("snapshot: magic %q must be exactly %d bytes", magic, magicLen))
	}
	out := make([]byte, 0, magicLen+versionLen+len(payload)+sumLen)
	out = append(out, magic...)
	out = append(out, byte(version), byte(version>>8), byte(version>>16), byte(version>>24))
	out = append(out, payload...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// Open validates a sealed container: the magic and version must match and
// the SHA-256 trailer must verify. It returns the payload. All failure modes
// (wrong kind, future version, truncation, corruption) are errors.
func Open(data []byte, magic string, version uint32) ([]byte, error) {
	if len(magic) != magicLen {
		panic(fmt.Sprintf("snapshot: magic %q must be exactly %d bytes", magic, magicLen))
	}
	if len(data) < magicLen+versionLen+sumLen {
		return nil, fmt.Errorf("snapshot: container too short (%d bytes)", len(data))
	}
	if string(data[:magicLen]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (want %q)", data[:magicLen], magic)
	}
	body, trailer := data[:len(data)-sumLen], data[len(data)-sumLen:]
	sum := sha256.Sum256(body)
	if sum != [sumLen]byte(trailer) {
		return nil, fmt.Errorf("snapshot: checksum mismatch: file is corrupt or was not written atomically")
	}
	v := uint32(data[magicLen]) | uint32(data[magicLen+1])<<8 | uint32(data[magicLen+2])<<16 | uint32(data[magicLen+3])<<24
	if v != version {
		return nil, fmt.Errorf("snapshot: format version %d not supported (this build reads version %d)", v, version)
	}
	return body[magicLen+versionLen:], nil
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory followed by a rename, so a crash mid-write leaves either the old
// checkpoint or the new one — never a torn file.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: write %s: %w", path, werr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: commit %s: %w", path, err)
	}
	return nil
}
