package snapshot

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U64(0xdeadbeefcafef00d)
	w.I64(-42)
	w.Int(7)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.14159)
	w.F64(math.Inf(-1))
	w.String("")
	w.String("hello, 网络")
	w.F64s(nil)
	w.F64s([]float64{1.5, -2.5, 0})

	r := NewReader(w.Bytes())
	if got := r.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.String(); got != "hello, 网络" {
		t.Errorf("String = %q", got)
	}
	if got := r.F64s(); len(got) != 0 {
		t.Errorf("empty F64s = %v", got)
	}
	if got := r.F64s(); len(got) != 3 || got[0] != 1.5 || got[1] != -2.5 || got[2] != 0 {
		t.Errorf("F64s = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestF64NaNBitPattern(t *testing.T) {
	// A NaN payload must survive bit-identically; comparing values would lose it.
	nan := math.Float64frombits(0x7ff8000000abc123)
	var w Writer
	w.F64(nan)
	r := NewReader(w.Bytes())
	if got := math.Float64bits(r.F64()); got != 0x7ff8000000abc123 {
		t.Fatalf("NaN bits = %#x", got)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2, 3}) // too short for any 8-byte field
	if r.U64() != 0 || r.Err() == nil {
		t.Fatal("truncated U64 did not error")
	}
	first := r.Err()
	// Every later read must keep returning zero values and the first error.
	if r.I64() != 0 || r.Int() != 0 || r.Bool() || r.F64() != 0 || r.String() != "" || r.F64s() != nil {
		t.Fatal("reads after error returned non-zero values")
	}
	if r.Err() != first {
		t.Fatal("error was replaced after becoming sticky")
	}
	if r.Remaining() != 0 {
		t.Fatal("Remaining must be 0 after an error")
	}
}

func TestReaderBoolRejectsJunk(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestReaderLenBounds(t *testing.T) {
	var w Writer
	w.I64(100)
	r := NewReader(w.Bytes())
	if r.Len(10) != 0 || r.Err() == nil {
		t.Fatal("length above max accepted")
	}

	w = Writer{}
	w.I64(-1)
	r = NewReader(w.Bytes())
	if r.Len(10) != 0 || r.Err() == nil {
		t.Fatal("negative length accepted")
	}
}

func TestReaderStringHostileLength(t *testing.T) {
	// A string claiming more bytes than remain must error, not allocate.
	var w Writer
	w.I64(1 << 40)
	r := NewReader(w.Bytes())
	if r.String() != "" || r.Err() == nil {
		t.Fatal("hostile string length accepted")
	}
}

func TestExpect(t *testing.T) {
	var w Writer
	w.I64(8)
	w.String("torus-8x8")
	r := NewReader(w.Bytes())
	r.Expect(8, "degree")
	r.ExpectString("torus-8x8", "topology")
	if err := r.Err(); err != nil {
		t.Fatalf("matching Expect failed: %v", err)
	}

	r = NewReader(w.Bytes())
	r.Expect(9, "degree")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "degree") {
		t.Fatalf("Expect mismatch error = %v", err)
	}

	r = NewReader(w.Bytes())
	r.Expect(8, "degree")
	r.ExpectString("mesh-8x8", "topology")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("ExpectString mismatch error = %v", err)
	}
}

func TestSealOpen(t *testing.T) {
	payload := []byte("the quick brown packet")
	sealed := Seal("TESTMAGC", 3, payload)

	got, err := Open(sealed, "TESTMAGC", 3)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}

	if _, err := Open(sealed, "OTHERMAG", 3); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := Open(sealed, "TESTMAGC", 4); err == nil {
		t.Fatal("wrong version accepted")
	}
	for cut := 0; cut < len(sealed); cut++ {
		if _, err := Open(sealed[:cut], "TESTMAGC", 3); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for pos := 0; pos < len(sealed); pos++ {
		mut := bytes.Clone(sealed)
		mut[pos] ^= 1
		if _, err := Open(mut, "TESTMAGC", 3); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}

func TestSealEmptyPayload(t *testing.T) {
	sealed := Seal("TESTMAGC", 1, nil)
	got, err := Open(sealed, "TESTMAGC", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("payload = %q", got)
	}
}

func TestSealBadMagicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short magic did not panic")
		}
	}()
	Seal("short", 1, nil)
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestWriteFileAtomicBadDir(t *testing.T) {
	if err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

// FuzzOpen asserts the container parser never panics and never accepts
// corrupt input as a different payload.
func FuzzOpen(f *testing.F) {
	f.Add(Seal("TESTMAGC", 1, []byte("payload")))
	f.Add([]byte{})
	f.Add([]byte("TESTMAGC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Open(data, "TESTMAGC", 1)
		if err != nil {
			return
		}
		// If Open accepts, resealing the payload must reproduce the input.
		if !bytes.Equal(Seal("TESTMAGC", 1, payload), data) {
			t.Fatal("Open accepted a container Seal would not produce")
		}
	})
}
