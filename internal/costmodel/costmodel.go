// Package costmodel implements Chien's router cost and speed model as used
// in the paper's Section 3.4 to compare Disha's hardware cost against the
// *-Channels router. For a 0.8 micron CMOS process the module delays are
//
//	T_fc  = 2.2 ns                    (flow controller)
//	T_cb  = 0.4 + 0.6 log2(P) ns      (crossbar with P inputs)
//	T_vcc = 1.24 + 0.6 log2(V) ns     (virtual channel controller, V VCs)
//
// and the data-through cycle time is their sum. The crossbar input count P
// for a wormhole router is one input per virtual channel per network port
// plus one injection input; Disha adds exactly one more input for the
// central Deadlock Buffer while leaving the VCC untouched, which yields the
// paper's 7.0 ns vs 7.1 ns comparison (a ~1.4% data-through penalty bought
// with full routing adaptivity on every VC).
package costmodel

import (
	"fmt"
	"math"
)

// Process-calibrated constants from Chien's model (0.8 micron CMOS).
const (
	FlowControllerDelayNS = 2.2
	crossbarBaseNS        = 0.4
	crossbarPerLog2NS     = 0.6
	vccBaseNS             = 1.24
	vccPerLog2NS          = 0.6
)

// CrossbarDelayNS returns the crossbar traversal delay for a crossbar with
// the given number of inputs.
func CrossbarDelayNS(inputs int) float64 {
	if inputs < 1 {
		panic("costmodel: crossbar needs at least one input")
	}
	return crossbarBaseNS + crossbarPerLog2NS*math.Log2(float64(inputs))
}

// VCCDelayNS returns the virtual channel controller delay for multiplexing
// vcs virtual channels onto one physical channel.
func VCCDelayNS(vcs int) float64 {
	if vcs < 1 {
		panic("costmodel: need at least one virtual channel")
	}
	return vccBaseNS + vccPerLog2NS*math.Log2(float64(vcs))
}

// Router describes the structural parameters that determine data-through
// delay.
type Router struct {
	// Name labels the design in reports.
	Name string
	// Degree is the number of network ports (2n for a k-ary n-cube).
	Degree int
	// VCs is the number of virtual channels per physical channel.
	VCs int
	// InjectionInputs is the number of injection channels (1 in the paper).
	InjectionInputs int
	// DeadlockBufferInputs is 1 for a Disha router (the central Deadlock
	// Buffer is one extra crossbar input), 0 otherwise.
	DeadlockBufferInputs int
}

// CrossbarInputs returns P: one crossbar input per VC per network port,
// plus injection and Deadlock Buffer inputs.
func (r Router) CrossbarInputs() int {
	return r.Degree*r.VCs + r.InjectionInputs + r.DeadlockBufferInputs
}

// DataThroughNS returns the router's data-through cycle time
// T_fc + T_cb + T_vcc in nanoseconds.
func (r Router) DataThroughNS() float64 {
	return FlowControllerDelayNS + CrossbarDelayNS(r.CrossbarInputs()) + VCCDelayNS(r.VCs)
}

// StarChannels returns the paper's reference design: the *-Channels router
// (deadlock avoidance per Duato's theory) on a 2D mesh with the given VCs.
func StarChannels(degree, vcs int) Router {
	return Router{Name: "*-channels", Degree: degree, VCs: vcs, InjectionInputs: 1}
}

// Disha returns a Disha router with the same link configuration plus the
// central Deadlock Buffer input.
func Disha(degree, vcs int) Router {
	return Router{Name: "disha", Degree: degree, VCs: vcs, InjectionInputs: 1, DeadlockBufferInputs: 1}
}

// Comparison is one row of the Section 3.4 cost table.
type Comparison struct {
	Router                Router
	CrossbarIn            int
	Tfc, Tcb, Tvcc, Total float64
}

// Compare evaluates a set of routers under the model.
func Compare(routers ...Router) []Comparison {
	out := make([]Comparison, 0, len(routers))
	for _, r := range routers {
		out = append(out, Comparison{
			Router:     r,
			CrossbarIn: r.CrossbarInputs(),
			Tfc:        FlowControllerDelayNS,
			Tcb:        CrossbarDelayNS(r.CrossbarInputs()),
			Tvcc:       VCCDelayNS(r.VCs),
			Total:      r.DataThroughNS(),
		})
	}
	return out
}

// PaperTable reproduces the Section 3.4 comparison: a 2D mesh with three
// virtual channels per physical channel, *-Channels vs Disha.
func PaperTable() []Comparison {
	return Compare(StarChannels(4, 3), Disha(4, 3))
}

// FormatTable renders comparisons as an aligned text table.
func FormatTable(rows []Comparison) string {
	s := fmt.Sprintf("%-12s %8s %8s %8s %8s %10s\n", "router", "xbar-in", "T_fc", "T_cb", "T_vcc", "T_through")
	for _, c := range rows {
		s += fmt.Sprintf("%-12s %8d %8.2f %8.2f %8.2f %8.2f ns\n",
			c.Router.Name, c.CrossbarIn, c.Tfc, c.Tcb, c.Tvcc, c.Total)
	}
	return s
}
