package costmodel

import (
	"math"
	"strings"
	"testing"
)

func TestModuleDelays(t *testing.T) {
	if CrossbarDelayNS(1) != 0.4 {
		t.Fatalf("T_cb(1) = %v", CrossbarDelayNS(1))
	}
	if math.Abs(CrossbarDelayNS(8)-(0.4+0.6*3)) > 1e-12 {
		t.Fatalf("T_cb(8) = %v", CrossbarDelayNS(8))
	}
	if VCCDelayNS(1) != 1.24 {
		t.Fatalf("T_vcc(1) = %v", VCCDelayNS(1))
	}
	if math.Abs(VCCDelayNS(4)-(1.24+1.2)) > 1e-12 {
		t.Fatalf("T_vcc(4) = %v", VCCDelayNS(4))
	}
}

func TestDelayPanics(t *testing.T) {
	for _, f := range []func(){
		func() { CrossbarDelayNS(0) },
		func() { VCCDelayNS(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input did not panic")
				}
			}()
			f()
		}()
	}
}

// TestPaperNumbers verifies the Section 3.4 headline: the *-Channels router
// comes to 7.0 ns data-through and Disha to 7.1 ns on a 2D mesh with three
// VCs per physical channel.
func TestPaperNumbers(t *testing.T) {
	rows := PaperTable()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	star, disha := rows[0], rows[1]
	if star.CrossbarIn != 13 { // 4 ports x 3 VCs + injection
		t.Fatalf("*-Channels crossbar inputs = %d, want 13", star.CrossbarIn)
	}
	if disha.CrossbarIn != 14 { // + central Deadlock Buffer
		t.Fatalf("Disha crossbar inputs = %d, want 14", disha.CrossbarIn)
	}
	if math.Abs(star.Total-7.0) > 0.05 {
		t.Fatalf("T_*-channels = %.3f ns, paper says 7.0", star.Total)
	}
	if math.Abs(disha.Total-7.1) > 0.05 {
		t.Fatalf("T_disha = %.3f ns, paper says 7.1", disha.Total)
	}
	// The VCC is untouched by the Deadlock Buffer.
	if star.Tvcc != disha.Tvcc {
		t.Fatal("Disha must not change VCC delay")
	}
	if disha.Total <= star.Total {
		t.Fatal("Disha adds exactly one crossbar input; delay must grow slightly")
	}
	penalty := (disha.Total - star.Total) / star.Total
	if penalty > 0.02 {
		t.Fatalf("penalty %.4f should be under 2%%", penalty)
	}
}

func TestDataThroughMonotoneInVCs(t *testing.T) {
	prev := 0.0
	for v := 1; v <= 8; v++ {
		d := StarChannels(4, v).DataThroughNS()
		if d <= prev {
			t.Fatalf("data-through not monotone at %d VCs", v)
		}
		prev = d
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable(PaperTable())
	for _, want := range []string{"*-channels", "disha", "T_through", "ns"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestCompareCustom(t *testing.T) {
	// 3D torus Disha router with 2 VCs: 6*2+1+1 = 14 inputs.
	r := Disha(6, 2)
	if r.CrossbarInputs() != 14 {
		t.Fatalf("inputs = %d", r.CrossbarInputs())
	}
	rows := Compare(r)
	if len(rows) != 1 || rows[0].Total != r.DataThroughNS() {
		t.Fatal("Compare mismatch")
	}
}
