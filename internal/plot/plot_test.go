package plot

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func demoSeries() []metrics.Series {
	a := metrics.Series{Label: "disha-m0"}
	b := metrics.Series{Label: "duato"}
	for i := 1; i <= 8; i++ {
		x := 0.1 * float64(i)
		a.Append(metrics.Point{X: x, Latency: 40 + 100*x*x, Throughput: x * 0.9})
		b.Append(metrics.Point{X: x, Latency: 40 + 400*x*x, Throughput: x * 0.7})
	}
	return []metrics.Series{a, b}
}

func TestRenderBasics(t *testing.T) {
	s := Render(Config{Title: "demo", Width: 40, Height: 10, XLabel: "load", YLabel: "latency"},
		demoSeries(), func(p metrics.Point) float64 { return p.Latency })
	if !strings.Contains(s, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Fatalf("missing curve markers:\n%s", s)
	}
	if !strings.Contains(s, "* disha-m0") || !strings.Contains(s, "o duato") {
		t.Fatalf("missing legend:\n%s", s)
	}
	if !strings.Contains(s, "x: load, y: latency") {
		t.Fatal("missing axis labels")
	}
	lines := strings.Split(s, "\n")
	// Title + height rows + axis + ticks + labels + legend.
	if len(lines) < 10+4 {
		t.Fatalf("unexpectedly short output (%d lines)", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	s := Render(Config{Title: "empty"}, nil, func(p metrics.Point) float64 { return p.Latency })
	if !strings.Contains(s, "no data") {
		t.Fatalf("empty render: %q", s)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	one := metrics.Series{Label: "x", Points: []metrics.Point{{X: 0.5, Latency: 10}}}
	s := Render(Config{Width: 20, Height: 5}, []metrics.Series{one},
		func(p metrics.Point) float64 { return p.Latency })
	if !strings.Contains(s, "*") {
		t.Fatalf("single point missing:\n%s", s)
	}
}

func TestYMaxClipping(t *testing.T) {
	s := Render(Config{Width: 30, Height: 8, YMax: 100, XLabel: "x", YLabel: "y"},
		demoSeries(), func(p metrics.Point) float64 { return p.Latency })
	if !strings.Contains(s, "clipped at 100") {
		t.Fatalf("clip note missing:\n%s", s)
	}
	if !strings.Contains(s, "       100 |") {
		t.Fatalf("top axis label should be the clip value:\n%s", s)
	}
}

func TestLogYSkipsNonPositive(t *testing.T) {
	srs := metrics.Series{Label: "l", Points: []metrics.Point{
		{X: 0.1, Latency: 0}, {X: 0.2, Latency: 10}, {X: 0.3, Latency: 1000},
	}}
	s := Render(Config{Width: 20, Height: 6, LogY: true, XLabel: "x", YLabel: "y"},
		[]metrics.Series{srs}, func(p metrics.Point) float64 { return p.Latency })
	if !strings.Contains(s, "log scale") {
		t.Fatal("log scale note missing")
	}
	if !strings.Contains(s, "1000 |") {
		t.Fatalf("log top label should be raw value:\n%s", s)
	}
}

func TestCollisionsMarked(t *testing.T) {
	a := metrics.Series{Label: "a", Points: []metrics.Point{{X: 0.5, Latency: 10}, {X: 1, Latency: 20}}}
	b := metrics.Series{Label: "b", Points: []metrics.Point{{X: 0.5, Latency: 10}, {X: 1, Latency: 5}}}
	s := Render(Config{Width: 10, Height: 5}, []metrics.Series{a, b},
		func(p metrics.Point) float64 { return p.Latency })
	if !strings.Contains(s, "?") {
		t.Fatalf("overlapping points should collide:\n%s", s)
	}
}

func TestConvenienceWrappers(t *testing.T) {
	if !strings.Contains(Latency("t", demoSeries()), "log scale") {
		t.Fatal("Latency wrapper must use a log axis")
	}
	if !strings.Contains(Throughput("t", demoSeries()), "accepted") {
		t.Fatal("Throughput wrapper missing axis label")
	}
}
