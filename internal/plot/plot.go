// Package plot renders experiment curves as ASCII charts so that
// cmd/disha-sweep can show the paper's figures directly in a terminal,
// without any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
)

// Config controls chart geometry and scaling.
type Config struct {
	// Width and Height are the plot area in characters (excluding axes).
	Width, Height int
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// YMax clips the y axis (0 = auto). Latency curves explode past
	// saturation; clipping keeps the pre-saturation region readable.
	YMax float64
	// LogY plots log10(y) (useful for latency blow-ups).
	LogY bool
}

// markers label up to ten curves.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '=', '~'}

// Render draws the series as a scatter chart with a shared x/y scale and a
// legend mapping markers to labels. Y values are taken from extract.
func Render(cfg Config, series []metrics.Series, extract func(metrics.Point) float64) string {
	if cfg.Width <= 0 {
		cfg.Width = 60
	}
	if cfg.Height <= 0 {
		cfg.Height = 20
	}

	// Collect bounds.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := 0.0, math.Inf(-1)
	type pt struct {
		x, y float64
		m    byte
	}
	var pts []pt
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			y := extract(p)
			if cfg.YMax > 0 && y > cfg.YMax {
				y = cfg.YMax
			}
			if cfg.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			pts = append(pts, pt{p.X, y, m})
			xMin = math.Min(xMin, p.X)
			xMax = math.Max(xMax, p.X)
			yMax = math.Max(yMax, y)
		}
	}
	if len(pts) == 0 {
		return cfg.Title + "\n(no data)\n"
	}
	if cfg.LogY {
		yMin = math.Inf(1)
		for _, p := range pts {
			yMin = math.Min(yMin, p.y)
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for _, p := range pts {
		col := int((p.x - xMin) / (xMax - xMin) * float64(cfg.Width-1))
		row := int((p.y - yMin) / (yMax - yMin) * float64(cfg.Height-1))
		row = cfg.Height - 1 - row // origin bottom-left
		if grid[row][col] == ' ' {
			grid[row][col] = p.m
		} else if grid[row][col] != p.m {
			grid[row][col] = '?' // collision between curves
		}
	}

	var sb strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&sb, "%s\n", cfg.Title)
	}
	yTop, yBot := yMax, yMin
	if cfg.LogY {
		yTop, yBot = math.Pow(10, yMax), math.Pow(10, yMin)
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.4g", yTop)
		case cfg.Height - 1:
			label = fmt.Sprintf("%10.4g", yBot)
		case cfg.Height / 2:
			mid := (yMax + yMin) / 2
			if cfg.LogY {
				mid = math.Pow(10, mid)
			}
			label = fmt.Sprintf("%10.4g", mid)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&sb, "%10s +%s\n", "", strings.Repeat("-", cfg.Width))
	fmt.Fprintf(&sb, "%10s  %-*.4g%*.4g\n", "", cfg.Width/2, xMin, cfg.Width-cfg.Width/2, xMax)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&sb, "%10s  x: %s, y: %s", "", cfg.XLabel, cfg.YLabel)
		if cfg.LogY {
			sb.WriteString(" (log scale)")
		}
		if cfg.YMax > 0 {
			fmt.Fprintf(&sb, " (clipped at %.4g)", cfg.YMax)
		}
		sb.WriteString("\n")
	}
	// Legend, in series order.
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	fmt.Fprintf(&sb, "%10s  %s\n", "", strings.Join(legend, "   "))
	return sb.String()
}

// Latency renders a latency-vs-load chart on a log y axis.
func Latency(title string, series []metrics.Series) string {
	return Render(Config{
		Title: title, XLabel: "offered load (fraction of capacity)", YLabel: "mean latency (cycles)",
		LogY: true,
	}, series, func(p metrics.Point) float64 { return p.Latency })
}

// Throughput renders a throughput-vs-load chart.
func Throughput(title string, series []metrics.Series) string {
	return Render(Config{
		Title: title, XLabel: "offered load (fraction of capacity)", YLabel: "accepted (fraction of capacity)",
	}, series, func(p metrics.Point) float64 { return p.Throughput })
}

// TimeSeries renders telemetry sampler rings (X = simulation cycle, value
// carried in the Latency field, as telemetry.TimeSeries.MetricsSeries
// produces them) as a value-vs-cycle chart.
func TimeSeries(title string, series []metrics.Series) string {
	return Render(Config{
		Title: title, XLabel: "cycle", YLabel: "sampled value",
	}, series, func(p metrics.Point) float64 { return p.Latency })
}
