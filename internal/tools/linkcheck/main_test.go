package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGoodLinksPass(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "OTHER.md", "# Other\n")
	doc := write(t, dir, "DOC.md", `# My Doc

## Deep Section: with punctuation!

See [other](OTHER.md), [a section](#deep-section-with-punctuation),
[an anchor elsewhere](OTHER.md#other), and [the web](https://example.com).

`+"```go\nnot := a[link](x)\n```\n")
	problems, err := checkMarkdown(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestBrokenLinksFlagged(t *testing.T) {
	dir := t.TempDir()
	doc := write(t, dir, "DOC.md", `# Title

[missing file](NOPE.md) and [missing heading](#no-such-section).
`)
	problems, err := checkMarkdown(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("got %d problems %v, want 2", len(problems), problems)
	}
	if !strings.Contains(problems[0], "NOPE.md") || !strings.Contains(problems[1], "#no-such-section") {
		t.Fatalf("wrong problems: %v", problems)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Simple":                      "simple",
		"Two Words":                   "two-words",
		"Punct, (removed)!":           "punct-removed",
		"`code` and *stars*":          "code-and-stars",
		"Checkpointing long sweeps":   "checkpointing-long-sweeps",
		"snake_case stays":            "snake_case-stays",
		"  trimmed  ":                 "trimmed",
		"Mixed: CASE-and-hyphens":     "mixed-case-and-hyphens",
		"8. Known baseline deviation": "8-known-baseline-deviation",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}
