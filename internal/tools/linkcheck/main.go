// Command linkcheck is an offline markdown link checker for CI: it scans
// the files named on the command line for [text](target) links and exits
// non-zero if a relative target does not exist on disk or a same-file
// #fragment does not match any heading's GitHub-style anchor.
//
// Usage:
//
//	go run ./internal/tools/linkcheck README.md DESIGN.md EXPERIMENTS.md
//
// External links (http://, https://, mailto:) are not fetched — CI stays
// hermetic — so only repository-relative references are validated.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	linkRE    = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)
	// slugDropRE removes everything GitHub's anchor algorithm drops:
	// anything that is not a letter, digit, underscore, space, or hyphen.
	slugDropRE = regexp.MustCompile(`[^\p{L}\p{N}_ -]`)
	fenceRE    = regexp.MustCompile("(?ms)^```.*?^```[ \t]*$")
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md> [file.md...]")
		os.Exit(2)
	}
	broken := 0
	for _, path := range flag.Args() {
		problems, err := checkMarkdown(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Println(p)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkMarkdown validates every link in one markdown file and returns a
// "file: target: reason" line per broken link.
func checkMarkdown(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Fenced code blocks routinely contain bracketed text that is not a
	// link (array literals, shell output); strip them before scanning.
	text := fenceRE.ReplaceAllString(string(raw), "")
	anchors := headingAnchors(string(raw))

	var problems []string
	for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
		target := m[1]
		switch {
		case strings.HasPrefix(target, "http://"),
			strings.HasPrefix(target, "https://"),
			strings.HasPrefix(target, "mailto:"):
			continue
		case strings.HasPrefix(target, "#"):
			if !anchors[strings.TrimPrefix(target, "#")] {
				problems = append(problems, fmt.Sprintf("%s: %s: no such heading", path, target))
			}
		default:
			file, _, _ := strings.Cut(target, "#")
			rel := filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(rel); err != nil {
				problems = append(problems, fmt.Sprintf("%s: %s: no such file", path, target))
			}
		}
	}
	return problems, nil
}

// headingAnchors returns the set of GitHub-style anchor slugs for every
// heading in the document: lowercase, punctuation dropped, spaces
// hyphenated.
func headingAnchors(text string) map[string]bool {
	anchors := make(map[string]bool)
	for _, m := range headingRE.FindAllStringSubmatch(text, -1) {
		anchors[slug(m[1])] = true
	}
	return anchors
}

func slug(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	// Inline code and emphasis markers vanish in GitHub slugs.
	s = strings.NewReplacer("`", "", "*", "").Replace(s)
	s = slugDropRE.ReplaceAllString(s, "")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}
