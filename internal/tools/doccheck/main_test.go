package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, f)
}

func TestFlagsUndocumentedExports(t *testing.T) {
	src := `package p

func Exported() {}

type Thing struct{}

func (t *Thing) Method() {}

const Answer = 42

var Global int
`
	got := check(t, src)
	want := []string{"Exported", "Thing", "Thing.Method", "Answer", "Global"}
	if len(got) != len(want) {
		t.Fatalf("got %d problems %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if !strings.HasSuffix(got[i], " "+w) {
			t.Errorf("problem %d = %q, want suffix %q", i, got[i], w)
		}
	}
}

func TestAcceptsDocumentedAndUnexported(t *testing.T) {
	src := `package p

// Exported does things.
func Exported() {}

func helper() {}

type inner struct{}

func (i inner) Visible() {} // method on unexported type: skipped

// Modes of operation.
const (
	ModeA = iota
	ModeB
)

type many struct{}

var (
	// Limit bounds things.
	Limit = 10
	quiet = true
)
`
	if got := check(t, src); len(got) != 0 {
		t.Fatalf("unexpected problems: %v", got)
	}
}

func TestCheckDirSkipsTests(t *testing.T) {
	// This package's own main.go is documented; _test.go files are skipped,
	// so doccheck run on itself must be clean.
	got, err := checkDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("doccheck is not self-clean: %v", got)
	}
}
