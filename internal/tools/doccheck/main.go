// Command doccheck is a dependency-free godoc completeness gate for CI: it
// parses the packages named on the command line and exits non-zero if any
// exported top-level identifier — function, method on an exported type,
// type, constant, or variable — lacks a doc comment.
//
// Usage:
//
//	go run ./internal/tools/doccheck ./internal/network ./internal/engine
//
// A grouped declaration (a parenthesized const/var/type block) passes if
// either the group or the individual spec carries the comment, matching
// the convention used for enum-style const blocks. Test files are skipped.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [package-dir...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range flag.Args() {
		p, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and returns one
// "file:line: identifier" string per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var problems []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		problems = append(problems, checkFile(fset, f)...)
	}
	return problems, nil
}

func checkFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv := receiverType(d); recv != "" {
				if !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				report(d.Pos(), recv+"."+d.Name.Name)
			} else {
				report(d.Pos(), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
						report(s.Pos(), s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || d.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType returns the name of a method's receiver type ("" for plain
// functions), with any pointer and type parameters stripped.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
