package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkStepSerial/torus16-8   \t     400\t   123456 ns/op\t       0 B/op\t       0 allocs/op\t       256 routers/step"
	name, ns, ok := parseBenchLine(line)
	if !ok || name != "BenchmarkStepSerial/torus16" || ns != 123456 {
		t.Fatalf("parsed (%q, %v, %v)", name, ns, ok)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t1.234s",
		"BenchmarkNoNsop 10 5 MB/s",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q unexpectedly parsed", bad)
		}
	}
}

func TestParseGate(t *testing.T) {
	gt, err := parseGate("BenchmarkStepActiveSet/load0.1:BenchmarkStepSerial/load0.1:0.667")
	if err != nil {
		t.Fatal(err)
	}
	if gt.candidate != "BenchmarkStepActiveSet/load0.1" ||
		gt.baseline != "BenchmarkStepSerial/load0.1" || gt.maxRatio != 0.667 {
		t.Fatalf("parsed %+v", gt)
	}
	for _, bad := range []string{
		"",
		"a:b",
		"a:b:c:d",
		"a:b:zero",
		"a:b:-1",
		"a:b:0",
		":b:1.0",
		"a::1.0",
	} {
		if _, err := parseGate(bad); err == nil {
			t.Fatalf("gate %q unexpectedly parsed", bad)
		}
	}
}

func TestEvalGate(t *testing.T) {
	samples := map[string][]float64{
		"Base": {100, 110, 90, 105, 95}, // median 100
		"Fast": {40, 50, 45},            // median 45
		"Slow": {200, 210, 190},         // median 200
	}
	if r := evalGate(gate{candidate: "Fast", baseline: "Base", maxRatio: 0.667}, samples); !r.ok() || r.ratio != 0.45 {
		t.Fatalf("fast candidate: %+v", r)
	}
	if r := evalGate(gate{candidate: "Slow", baseline: "Base", maxRatio: 1.0}, samples); r.ok() {
		t.Fatalf("slow candidate passed gate: %+v", r)
	}
	// Missing benchmarks must fail rather than silently disarm the gate.
	if r := evalGate(gate{candidate: "Gone", baseline: "Base", maxRatio: 1.0}, samples); r.ok() || r.missing != "Gone" {
		t.Fatalf("missing candidate: %+v", r)
	}
	if r := evalGate(gate{candidate: "Fast", baseline: "Gone", maxRatio: 1.0}, samples); r.ok() || r.missing != "Gone" {
		t.Fatalf("missing baseline: %+v", r)
	}
}

func TestRenderTable(t *testing.T) {
	samples := map[string][]float64{
		"Base": {100},
		"Fast": {45},
		"Slow": {200},
	}
	table := renderTable([]gateResult{
		evalGate(gate{candidate: "Fast", baseline: "Base", maxRatio: 0.667}, samples),
		evalGate(gate{candidate: "Slow", baseline: "Base", maxRatio: 1.0}, samples),
		evalGate(gate{candidate: "Gone", baseline: "Base", maxRatio: 1.0}, samples),
	})
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header + 3 rows:\n%s", len(lines), table)
	}
	for i, want := range []string{"RESULT", "PASS", "FAIL", "MISSING Gone"} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d missing %q:\n%s", i, want, table)
		}
	}
	// Every row must carry both medians (or "-") so a failure is diagnosable
	// from the table alone.
	if !strings.Contains(lines[1], "45 (n=1)") || !strings.Contains(lines[1], "100 (n=1)") {
		t.Errorf("pass row lacks medians:\n%s", table)
	}
	if !strings.Contains(lines[3], "-") {
		t.Errorf("missing row lacks placeholder:\n%s", table)
	}
}

func TestGateListSet(t *testing.T) {
	var gl gateList
	if err := gl.Set("A:B:1.0"); err != nil {
		t.Fatal(err)
	}
	if err := gl.Set("C:D:0.5"); err != nil {
		t.Fatal(err)
	}
	if len(gl) != 2 || gl[1].candidate != "C" || gl[1].maxRatio != 0.5 {
		t.Fatalf("gate list %+v", gl)
	}
	if gl.String() == "" {
		t.Fatal("empty String()")
	}
	if err := gl.Set("nope"); err == nil {
		t.Fatal("bad gate accepted")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}
