package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkStepSerial/torus16-8   \t     400\t   123456 ns/op\t       0 B/op\t       0 allocs/op\t       256 routers/step"
	name, ns, ok := parseBenchLine(line)
	if !ok || name != "BenchmarkStepSerial/torus16" || ns != 123456 {
		t.Fatalf("parsed (%q, %v, %v)", name, ns, ok)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t1.234s",
		"BenchmarkNoNsop 10 5 MB/s",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q unexpectedly parsed", bad)
		}
	}
}

func TestParseGate(t *testing.T) {
	gt, err := parseGate("BenchmarkStepActiveSet/load0.1:BenchmarkStepSerial/load0.1:0.667")
	if err != nil {
		t.Fatal(err)
	}
	if gt.candidate != "BenchmarkStepActiveSet/load0.1" ||
		gt.baseline != "BenchmarkStepSerial/load0.1" || gt.maxRatio != 0.667 {
		t.Fatalf("parsed %+v", gt)
	}
	for _, bad := range []string{
		"",
		"a:b",
		"a:b:c:d",
		"a:b:zero",
		"a:b:-1",
		"a:b:0",
		":b:1.0",
		"a::1.0",
	} {
		if _, err := parseGate(bad); err == nil {
			t.Fatalf("gate %q unexpectedly parsed", bad)
		}
	}
}

func TestCheckGate(t *testing.T) {
	samples := map[string][]float64{
		"Base": {100, 110, 90, 105, 95}, // median 100
		"Fast": {40, 50, 45},            // median 45
		"Slow": {200, 210, 190},         // median 200
	}
	if msg, ok := checkGate(gate{candidate: "Fast", baseline: "Base", maxRatio: 0.667}, samples); !ok {
		t.Fatalf("fast candidate failed gate:\n%s", msg)
	}
	if msg, ok := checkGate(gate{candidate: "Slow", baseline: "Base", maxRatio: 1.0}, samples); ok {
		t.Fatalf("slow candidate passed gate:\n%s", msg)
	}
	// Missing benchmarks must fail rather than silently disarm the gate.
	if _, ok := checkGate(gate{candidate: "Gone", baseline: "Base", maxRatio: 1.0}, samples); ok {
		t.Fatal("missing candidate passed gate")
	}
	if _, ok := checkGate(gate{candidate: "Fast", baseline: "Gone", maxRatio: 1.0}, samples); ok {
		t.Fatal("missing baseline passed gate")
	}
}

func TestGateListSet(t *testing.T) {
	var gl gateList
	if err := gl.Set("A:B:1.0"); err != nil {
		t.Fatal(err)
	}
	if err := gl.Set("C:D:0.5"); err != nil {
		t.Fatal(err)
	}
	if len(gl) != 2 || gl[1].candidate != "C" || gl[1].maxRatio != 0.5 {
		t.Fatalf("gate list %+v", gl)
	}
	if gl.String() == "" {
		t.Fatal("empty String()")
	}
	if err := gl.Set("nope"); err == nil {
		t.Fatal("bad gate accepted")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}
