package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkStepSerial/torus16-8   \t     400\t   123456 ns/op\t       0 B/op\t       0 allocs/op\t       256 routers/step"
	name, ns, ok := parseBenchLine(line)
	if !ok || name != "BenchmarkStepSerial/torus16" || ns != 123456 {
		t.Fatalf("parsed (%q, %v, %v)", name, ns, ok)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t1.234s",
		"BenchmarkNoNsop 10 5 MB/s",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q unexpectedly parsed", bad)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}
