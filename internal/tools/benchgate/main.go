// Command benchgate is a dependency-free benchstat-style gate for CI: it
// parses `go test -bench` output, summarizes benchmarks as medians of their
// ns/op samples, and exits non-zero when any candidate's median exceeds its
// baseline's by more than the allowed ratio.
//
// Gates are given with the repeatable -gate flag as
// "candidate:baseline:max-ratio" triples:
//
//	go test -bench 'BenchmarkStep' -count 5 . | tee bench.txt
//	go run ./internal/tools/benchgate \
//	    -gate 'BenchmarkStepSharded/torus16:BenchmarkStepSerial/torus16:1.0' \
//	    -gate 'BenchmarkStepActiveSet/load0.1:BenchmarkStepSerial/load0.1:0.667' \
//	    bench.txt
//
// The first gate above requires the sharded kernel to be at least as fast as
// serial; the second requires the active-set scheduler to run the idle-heavy
// 0.1-load simulation in at most 2/3 of the full scan's time (>= 1.5x
// cycles/sec). Medians over the -count repetitions absorb scheduler noise
// the way benchstat's summary statistics do.
//
// The legacy single-comparison flags -serial/-sharded/-max-ratio are still
// honored when no -gate is given.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gate is one candidate-vs-baseline comparison: fail when the candidate's
// median ns/op exceeds baseline median * maxRatio.
type gate struct {
	candidate string
	baseline  string
	maxRatio  float64
}

// gateList collects repeated -gate flags.
type gateList []gate

func (g *gateList) String() string {
	parts := make([]string, len(*g))
	for i, gt := range *g {
		parts[i] = fmt.Sprintf("%s:%s:%g", gt.candidate, gt.baseline, gt.maxRatio)
	}
	return strings.Join(parts, ",")
}

func (g *gateList) Set(s string) error {
	gt, err := parseGate(s)
	if err != nil {
		return err
	}
	*g = append(*g, gt)
	return nil
}

// parseGate splits a "candidate:baseline:max-ratio" triple. Benchmark names
// never contain ':', so a plain 3-way split is unambiguous.
func parseGate(s string) (gate, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return gate{}, fmt.Errorf("gate %q: want candidate:baseline:max-ratio", s)
	}
	ratio, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || ratio <= 0 {
		return gate{}, fmt.Errorf("gate %q: bad max-ratio %q", s, parts[2])
	}
	if parts[0] == "" || parts[1] == "" {
		return gate{}, fmt.Errorf("gate %q: empty benchmark name", s)
	}
	return gate{candidate: parts[0], baseline: parts[1], maxRatio: ratio}, nil
}

func main() {
	var gates gateList
	var (
		serial   = flag.String("serial", "BenchmarkStepSerial/torus16", "legacy: baseline benchmark name (ignored when -gate is used)")
		sharded  = flag.String("sharded", "BenchmarkStepSharded/torus16", "legacy: candidate benchmark name (ignored when -gate is used)")
		maxRatio = flag.Float64("max-ratio", 1.0, "legacy: fail when candidate median ns/op > baseline median * ratio (ignored when -gate is used)")
	)
	flag.Var(&gates, "gate", "repeatable candidate:baseline:max-ratio comparison (e.g. BenchmarkStepSharded/torus16:BenchmarkStepSerial/torus16:1.0)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] bench-output.txt")
		os.Exit(2)
	}
	if len(gates) == 0 {
		gates = gateList{{candidate: *sharded, baseline: *serial, maxRatio: *maxRatio}}
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()

	samples := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, nsPerOp, ok := parseBenchLine(sc.Text())
		if ok {
			samples[name] = append(samples[name], nsPerOp)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err.Error())
	}

	failed := false
	for _, gt := range gates {
		msg, ok := checkGate(gt, samples)
		fmt.Print(msg)
		if !ok {
			failed = true
		}
	}
	if failed {
		fail("one or more gates failed")
	}
}

// checkGate evaluates one gate against the parsed samples and returns a
// human-readable report plus whether the gate passed. A missing benchmark is
// a failure: a renamed benchmark must not silently disarm its gate.
func checkGate(gt gate, samples map[string][]float64) (string, bool) {
	base := median(samples[gt.baseline])
	cand := median(samples[gt.candidate])
	if base == 0 {
		return fmt.Sprintf("benchgate: no samples for baseline %q\n", gt.baseline), false
	}
	if cand == 0 {
		return fmt.Sprintf("benchgate: no samples for candidate %q\n", gt.candidate), false
	}
	ratio := cand / base
	var b strings.Builder
	fmt.Fprintf(&b, "benchgate: %s median %.0f ns/op (%d samples)\n", gt.baseline, base, len(samples[gt.baseline]))
	fmt.Fprintf(&b, "benchgate: %s median %.0f ns/op (%d samples)\n", gt.candidate, cand, len(samples[gt.candidate]))
	fmt.Fprintf(&b, "benchgate: ratio %.3f (limit %.3f)\n", ratio, gt.maxRatio)
	if ratio > gt.maxRatio {
		fmt.Fprintf(&b, "benchgate: FAIL: candidate regressed: %.3f > %.3f\n", ratio, gt.maxRatio)
		return b.String(), false
	}
	return b.String(), true
}

// parseBenchLine extracts the benchmark name (GOMAXPROCS suffix stripped)
// and ns/op from one `go test -bench` result line.
func parseBenchLine(line string) (name string, nsPerOp float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip -<GOMAXPROCS>
		}
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "benchgate:", msg)
	os.Exit(1)
}
