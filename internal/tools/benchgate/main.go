// Command benchgate is a dependency-free benchstat-style gate for CI: it
// parses `go test -bench` output, summarizes benchmarks as medians of their
// ns/op samples, evaluates every gate, prints one per-gate summary table,
// and exits non-zero when any candidate's median exceeds its baseline's by
// more than the allowed ratio.
//
// Gates are given with the repeatable -gate flag as
// "candidate:baseline:max-ratio" triples:
//
//	go test -bench 'BenchmarkStep' -count 5 . | tee bench.txt
//	go run ./internal/tools/benchgate \
//	    -gate 'BenchmarkStepSharded/torus16/load0.5:BenchmarkStepSerial/torus16/load0.5:1.0' \
//	    -gate 'BenchmarkStepSerial/torus16/load0.5:BenchmarkStepReference/torus16/load0.5:0.87' \
//	    bench.txt
//
// The first gate above requires the sharded kernel to be at least as fast as
// serial; the second requires the optimized struct-of-arrays scan path to
// clear 1.15x the reference scan's cycles/sec (ns/op ratio <= 0.87). All
// gates are always evaluated — a failing gate never hides the state of the
// others — and the table marks each row PASS, FAIL, or MISSING (a renamed
// benchmark must not silently disarm its gate). Medians over the -count
// repetitions absorb scheduler noise the way benchstat's summary statistics
// do.
//
// The legacy single-comparison flags -serial/-sharded/-max-ratio are still
// honored when no -gate is given.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// gate is one candidate-vs-baseline comparison: fail when the candidate's
// median ns/op exceeds baseline median * maxRatio.
type gate struct {
	candidate string
	baseline  string
	maxRatio  float64
}

// gateList collects repeated -gate flags.
type gateList []gate

func (g *gateList) String() string {
	parts := make([]string, len(*g))
	for i, gt := range *g {
		parts[i] = fmt.Sprintf("%s:%s:%g", gt.candidate, gt.baseline, gt.maxRatio)
	}
	return strings.Join(parts, ",")
}

func (g *gateList) Set(s string) error {
	gt, err := parseGate(s)
	if err != nil {
		return err
	}
	*g = append(*g, gt)
	return nil
}

// parseGate splits a "candidate:baseline:max-ratio" triple. Benchmark names
// never contain ':', so a plain 3-way split is unambiguous.
func parseGate(s string) (gate, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return gate{}, fmt.Errorf("gate %q: want candidate:baseline:max-ratio", s)
	}
	ratio, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || ratio <= 0 {
		return gate{}, fmt.Errorf("gate %q: bad max-ratio %q", s, parts[2])
	}
	if parts[0] == "" || parts[1] == "" {
		return gate{}, fmt.Errorf("gate %q: empty benchmark name", s)
	}
	return gate{candidate: parts[0], baseline: parts[1], maxRatio: ratio}, nil
}

func main() {
	var gates gateList
	var (
		serial   = flag.String("serial", "BenchmarkStepSerial/torus16", "legacy: baseline benchmark name (ignored when -gate is used)")
		sharded  = flag.String("sharded", "BenchmarkStepSharded/torus16", "legacy: candidate benchmark name (ignored when -gate is used)")
		maxRatio = flag.Float64("max-ratio", 1.0, "legacy: fail when candidate median ns/op > baseline median * ratio (ignored when -gate is used)")
	)
	flag.Var(&gates, "gate", "repeatable candidate:baseline:max-ratio comparison (e.g. BenchmarkStepSharded/torus16/load0.5:BenchmarkStepSerial/torus16/load0.5:1.0)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] bench-output.txt")
		os.Exit(2)
	}
	if len(gates) == 0 {
		gates = gateList{{candidate: *sharded, baseline: *serial, maxRatio: *maxRatio}}
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()

	samples := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, nsPerOp, ok := parseBenchLine(sc.Text())
		if ok {
			samples[name] = append(samples[name], nsPerOp)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err.Error())
	}

	results := make([]gateResult, len(gates))
	failed := false
	for i, gt := range gates {
		results[i] = evalGate(gt, samples)
		if !results[i].ok() {
			failed = true
		}
	}
	fmt.Print(renderTable(results))
	if failed {
		fail("one or more gates failed")
	}
}

// gateResult is one evaluated gate: the medians, their ratio, and — when a
// benchmark produced no samples — which name was missing.
type gateResult struct {
	gate
	base, cand   float64
	baseN, candN int
	ratio        float64
	missing      string
}

func (r gateResult) ok() bool { return r.missing == "" && r.ratio <= r.maxRatio }

// evalGate evaluates one gate against the parsed samples. A missing
// benchmark is a failure: a renamed benchmark must not silently disarm its
// gate.
func evalGate(gt gate, samples map[string][]float64) gateResult {
	r := gateResult{
		gate:  gt,
		base:  median(samples[gt.baseline]),
		cand:  median(samples[gt.candidate]),
		baseN: len(samples[gt.baseline]),
		candN: len(samples[gt.candidate]),
	}
	switch {
	case r.base == 0:
		r.missing = gt.baseline
	case r.cand == 0:
		r.missing = gt.candidate
	default:
		r.ratio = r.cand / r.base
	}
	return r
}

// renderTable formats every gate as one row of an aligned table, so a CI
// log shows the complete picture — every comparison, every margin — in one
// glance even when only a single gate failed.
func renderTable(results []gateResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "CANDIDATE\tBASELINE\tCAND ns/op\tBASE ns/op\tRATIO\tLIMIT\tRESULT")
	for _, r := range results {
		switch {
		case r.missing != "":
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%.3f\tMISSING %s\n",
				r.candidate, r.baseline,
				sampleCell(r.cand, r.candN), sampleCell(r.base, r.baseN),
				"-", r.maxRatio, r.missing)
		case r.ratio > r.maxRatio:
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.3f\t%.3f\tFAIL\n",
				r.candidate, r.baseline,
				sampleCell(r.cand, r.candN), sampleCell(r.base, r.baseN),
				r.ratio, r.maxRatio)
		default:
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.3f\t%.3f\tPASS\n",
				r.candidate, r.baseline,
				sampleCell(r.cand, r.candN), sampleCell(r.base, r.baseN),
				r.ratio, r.maxRatio)
		}
	}
	w.Flush()
	return b.String()
}

// sampleCell formats a median with its sample count, or "-" when absent.
func sampleCell(med float64, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f (n=%d)", med, n)
}

// parseBenchLine extracts the benchmark name (GOMAXPROCS suffix stripped)
// and ns/op from one `go test -bench` result line.
func parseBenchLine(line string) (name string, nsPerOp float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip -<GOMAXPROCS>
		}
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "benchgate:", msg)
	os.Exit(1)
}
