// Command benchgate is a dependency-free benchstat-style gate for CI: it
// parses `go test -bench` output, summarizes two benchmarks as medians of
// their ns/op samples, and exits non-zero when the candidate's median
// exceeds the baseline's by more than the allowed ratio.
//
// Usage:
//
//	go test -bench 'BenchmarkStep(Serial|Sharded)/torus16' -count 5 . | tee bench.txt
//	go run ./internal/tools/benchgate \
//	    -serial BenchmarkStepSerial/torus16 \
//	    -sharded BenchmarkStepSharded/torus16 \
//	    -max-ratio 1.0 bench.txt
//
// With -max-ratio 1.0 the sharded kernel must be at least as fast as serial
// (median over the -count repetitions, which absorbs scheduler noise the way
// benchstat's summary statistics do).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		serial   = flag.String("serial", "BenchmarkStepSerial/torus16", "baseline benchmark name (sub-benchmark path, GOMAXPROCS suffix ignored)")
		sharded  = flag.String("sharded", "BenchmarkStepSharded/torus16", "candidate benchmark name")
		maxRatio = flag.Float64("max-ratio", 1.0, "fail when candidate median ns/op > baseline median * ratio")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] bench-output.txt")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()

	samples := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, nsPerOp, ok := parseBenchLine(sc.Text())
		if ok {
			samples[name] = append(samples[name], nsPerOp)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err.Error())
	}

	base := median(samples[*serial])
	cand := median(samples[*sharded])
	if base == 0 {
		fail(fmt.Sprintf("no samples for baseline %q", *serial))
	}
	if cand == 0 {
		fail(fmt.Sprintf("no samples for candidate %q", *sharded))
	}
	ratio := cand / base
	fmt.Printf("benchgate: %s median %.0f ns/op (%d samples)\n", *serial, base, len(samples[*serial]))
	fmt.Printf("benchgate: %s median %.0f ns/op (%d samples)\n", *sharded, cand, len(samples[*sharded]))
	fmt.Printf("benchgate: ratio %.3f (limit %.3f)\n", ratio, *maxRatio)
	if ratio > *maxRatio {
		fail(fmt.Sprintf("candidate regressed: %.3f > %.3f", ratio, *maxRatio))
	}
}

// parseBenchLine extracts the benchmark name (GOMAXPROCS suffix stripped)
// and ns/op from one `go test -bench` result line.
func parseBenchLine(line string) (name string, nsPerOp float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip -<GOMAXPROCS>
		}
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "benchgate:", msg)
	os.Exit(1)
}
