package harness

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func tinySpec() *Spec {
	return &Spec{
		Name:    "tiny",
		Topo:    func() topology.Graph { return topology.MustTorus(4, 4) },
		Pattern: uniformPattern,
		Algs: []AlgSpec{
			{Algorithm: routing.Disha(0), Recovery: true, Timeout: 8},
			{Algorithm: routing.DOR()},
		},
		Loads:   []float64{0.2, 0.5},
		MsgLen:  8,
		Warmup:  300,
		Measure: 800,
		Seed:    42,
	}
}

func TestRunProducesSeries(t *testing.T) {
	spec := tinySpec()
	var lines []string
	res, err := spec.Run(func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if len(lines) != 4 {
		t.Fatalf("progress lines = %d, want 4", len(lines))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Latency <= 0 {
				t.Fatalf("%s: non-positive latency at load %v", s.Label, p.X)
			}
			if p.Throughput <= 0 || p.Throughput > 1.2 {
				t.Fatalf("%s: implausible throughput %v", s.Label, p.Throughput)
			}
		}
	}
	for label, pts := range res.Points {
		for _, p := range pts {
			if p.Delivered == 0 {
				t.Fatalf("%s delivered nothing at load %v", label, p.Load)
			}
			if p.MeanNetLatency > p.MeanLatency+1e-9 {
				t.Fatalf("%s: network latency exceeds age", label)
			}
		}
	}
}

func TestThroughputTracksLoadBelowSaturation(t *testing.T) {
	spec := tinySpec()
	spec.Algs = spec.Algs[:1] // Disha only
	// 0.4 offered load already grazes saturation on the tiny 4x4 torus
	// (acceptance ~0.75x offered); stay clearly below it.
	spec.Loads = []float64{0.2, 0.35}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points[spec.Algs[0].label()]
	// Below saturation accepted ~= offered: throughput within 25% of load.
	for _, p := range pts {
		if p.Throughput < p.Load*0.75 || p.Throughput > p.Load*1.25 {
			t.Fatalf("throughput %v at load %v diverges from offered", p.Throughput, p.Load)
		}
	}
	if pts[1].Throughput <= pts[0].Throughput {
		t.Fatal("throughput must grow with load below saturation")
	}
}

func TestRecoveryFlagControlsRouterConfig(t *testing.T) {
	spec := tinySpec()
	spec.Loads = []float64{0.3}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	dor := res.Points["dor"][0]
	if dor.TokenSeizures != 0 || dor.TimeoutEvents != 0 {
		t.Fatal("avoidance curve must run without detection/recovery")
	}
}

func TestWFGSampling(t *testing.T) {
	spec := tinySpec()
	spec.Algs = []AlgSpec{{Algorithm: routing.Disha(0), Recovery: true, Timeout: 8}}
	spec.Loads = []float64{0.3}
	spec.WFGSampleEvery = 200
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points["disha-m0"][0]
	if p.WFGSamples != 4 { // 800 / 200
		t.Fatalf("WFG samples = %d, want 4", p.WFGSamples)
	}
}

func TestIncompleteSpecFails(t *testing.T) {
	if _, err := (&Spec{Name: "broken"}).Run(nil); err == nil {
		t.Fatal("incomplete spec must fail")
	}
}

func TestTablesAndCSV(t *testing.T) {
	spec := tinySpec()
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	lat := res.LatencyTable()
	if !strings.Contains(lat, "disha-m0") || !strings.Contains(lat, "dor") || !strings.Contains(lat, "0.50") {
		t.Fatalf("latency table malformed:\n%s", lat)
	}
	if !strings.Contains(res.ThroughputTable(), "throughput") {
		t.Fatal("throughput table malformed")
	}
	if !strings.Contains(res.SeizureTable(), "seizures") {
		t.Fatal("seizure table malformed")
	}
	csv := res.CSV()
	if !strings.Contains(csv, "series,load,latency,throughput") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
	if !strings.Contains(res.SaturationSummary(), "saturation") {
		t.Fatal("saturation summary malformed")
	}
}

func TestFigureSpecsConstruct(t *testing.T) {
	sc := SmallScale()
	figs := Figures(sc)
	for _, name := range []string{"3a", "3b", "4", "5", "6", "7"} {
		spec, ok := figs[name]
		if !ok {
			t.Fatalf("figure %s missing", name)
		}
		if err := spec.normalize(); err != nil {
			t.Fatalf("figure %s: %v", name, err)
		}
		topo := spec.Topo()
		if _, err := spec.Pattern(topo); err != nil {
			t.Fatalf("figure %s pattern: %v", name, err)
		}
	}
	if len(figs["3b"].Algs) != 4 {
		t.Fatal("fig3b must sweep 4 time-outs")
	}
	if len(figs["4"].Algs) != 6 {
		t.Fatal("fig4 must compare 6 schemes")
	}
	// Dally & Aoki must use min-congestion, everything else random.
	for _, a := range figs["4"].Algs {
		if a.Algorithm.Name() == "dally-aoki" {
			if a.Selection == nil || a.Selection.Name() != "min-congestion" {
				t.Fatal("dally-aoki must use min-congestion selection")
			}
		} else if a.Selection != nil {
			t.Fatalf("%s should default to random selection", a.Algorithm.Name())
		}
	}
}

// TestFigureSmoke runs a miniature Figure 4 end to end: at the modest load
// the adaptive Disha schemes must deliver packets, and every scheme's
// latency must be at least the no-contention minimum.
func TestFigureSmoke(t *testing.T) {
	sc := Scale{Radix: 4, MsgLen: 8, Warmup: 200, Measure: 600, Loads: []float64{0.3}, Seed: 7}
	res, err := Fig4(sc).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for label, pts := range res.Points {
		if pts[0].Delivered == 0 {
			t.Fatalf("%s delivered nothing", label)
		}
		if pts[0].MeanLatency < float64(sc.MsgLen) {
			t.Fatalf("%s latency %v below message serialization time", label, pts[0].MeanLatency)
		}
	}
}

func TestHotspotPatternFixedSpot(t *testing.T) {
	sc := SmallScale()
	spec := Fig7(sc)
	topo := spec.Topo()
	p1, err := spec.Pattern(topo)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := spec.Pattern(topo)
	if p1.Name() != p2.Name() {
		t.Fatal("hotspot pattern must be reproducible")
	}
	if !strings.Contains(p1.Name(), "hotspot-5%") {
		t.Fatalf("pattern name %q", p1.Name())
	}
}

func TestScaleDefaults(t *testing.T) {
	p := PaperScale()
	if p.Radix != 16 || p.MsgLen != 32 {
		t.Fatal("paper scale must match Section 4.1")
	}
	s := SmallScale()
	if s.Radix >= p.Radix {
		t.Fatal("small scale must be smaller than paper scale")
	}
	// Uniform capacity sanity at paper scale: full load equals one packet
	// per node every 64 cycles.
	topo := topology.MustTorus(16, 16)
	prob, err := traffic.InjectionProbability(topo, traffic.Uniform(topo), 32, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if prob < 0.014 || prob > 0.017 {
		t.Fatalf("full-load probability %v out of expected band", prob)
	}
}

func TestBatchMeansCI(t *testing.T) {
	spec := tinySpec()
	spec.Algs = spec.Algs[:1]
	spec.Loads = []float64{0.3}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[spec.Algs[0].label()][0]
	if p.LatencyCI95 <= 0 {
		t.Fatalf("expected a positive CI, got %v", p.LatencyCI95)
	}
	// The CI must be a plausible fraction of the mean at moderate load.
	if p.LatencyCI95 > p.MeanLatency {
		t.Fatalf("CI %v wider than the mean %v", p.LatencyCI95, p.MeanLatency)
	}
}

// TestEngineParallelDeterminism is the subsystem's core guarantee: a sweep
// run on one worker and on eight renders byte-identical tables and CSV.
func TestEngineParallelDeterminism(t *testing.T) {
	serialSpec, parallelSpec := tinySpec(), tinySpec()
	serialSpec.Replicas, parallelSpec.Replicas = 2, 2
	serial, _, err := serialSpec.RunWith(RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := parallelSpec.RunWith(RunOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != parallel.CSV() {
		t.Fatalf("parallel CSV diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.CSV(), parallel.CSV())
	}
	if serial.LatencyTable() != parallel.LatencyTable() ||
		serial.ThroughputTable() != parallel.ThroughputTable() ||
		serial.SaturationSummary() != parallel.SaturationSummary() {
		t.Fatal("parallel tables diverged from serial")
	}
}

// TestResumeFromJournalEqualsUninterrupted checks the checkpoint/resume path
// end to end at the harness level: a resumed sweep renders the same bytes as
// an uninterrupted one and actually restores points from the journal.
func TestResumeFromJournalEqualsUninterrupted(t *testing.T) {
	journal := t.TempDir() + "/sweep.journal.jsonl"
	full, _, err := tinySpec().RunWith(RunOptions{Parallel: 4, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	resumed, rep, err := tinySpec().RunWith(RunOptions{Parallel: 4, Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromJournal != rep.Total {
		t.Fatalf("restored %d/%d points from journal", rep.FromJournal, rep.Total)
	}
	if full.CSV() != resumed.CSV() {
		t.Fatalf("resumed CSV diverged:\n--- full ---\n%s--- resumed ---\n%s", full.CSV(), resumed.CSV())
	}
}

func TestReplicasAggregateMeanCI(t *testing.T) {
	spec := tinySpec()
	spec.Algs = spec.Algs[:1]
	spec.Loads = []float64{0.3}
	res, _, err := spec.RunWith(RunOptions{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[spec.Algs[0].label()][0]
	if p.Replicas != 3 {
		t.Fatalf("replicas = %d, want 3", p.Replicas)
	}
	if p.LatencyCI95 <= 0 || p.ThroughputCI95 <= 0 {
		t.Fatalf("across-replica CIs must be positive, got lat=%v thpt=%v", p.LatencyCI95, p.ThroughputCI95)
	}
	if p.Delivered == 0 || p.Throughput <= 0 {
		t.Fatal("aggregate lost the measurements")
	}
	// The replica mean must stay in the band the single runs occupy.
	single, _, err := spec.RunWith(RunOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp := single.Points[spec.Algs[0].label()][0]
	if p.MeanLatency < sp.MeanLatency*0.5 || p.MeanLatency > sp.MeanLatency*2 {
		t.Fatalf("replica mean %v implausibly far from single run %v", p.MeanLatency, sp.MeanLatency)
	}
}

// TestFailedPointsSurfaceInReport forces one curve to fail and checks the
// partial-results contract: completed curves survive, the report names the
// failures, and RunWith returns a non-nil error.
func TestFailedPointsSurfaceInReport(t *testing.T) {
	spec := tinySpec()
	spec.Algs = append(spec.Algs, AlgSpec{
		Label:     "broken",
		Algorithm: routing.Disha(0),
		Recovery:  true,
		Timeout:   -1, // invalid: router config rejects negative timeouts
	})
	res, rep, err := spec.RunWith(RunOptions{Parallel: 2})
	if err == nil {
		t.Fatal("expected an error for the broken curve")
	}
	if rep == nil || rep.Failed() != len(spec.Loads) {
		t.Fatalf("report = %+v, want %d failures", rep, len(spec.Loads))
	}
	if res == nil || len(res.Points["disha-m0"]) != len(spec.Loads) {
		t.Fatal("healthy curves must survive as partial results")
	}
	if len(res.Points["broken"]) != 0 {
		t.Fatal("broken curve must have no points")
	}
}

// TestParallelSpeedupSmoke is the CI wall-clock check: on a multi-core
// machine the parallel engine must beat the serial run on the same sweep.
// Single-core machines skip it (there is nothing to win).
func TestParallelSpeedupSmoke(t *testing.T) {
	if runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2 {
		t.Skipf("single-core machine (NumCPU=%d, GOMAXPROCS=%d): no speedup to measure",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	spec := func() *Spec {
		s := tinySpec()
		s.Topo = func() topology.Graph { return topology.MustTorus(8, 8) }
		s.Loads = []float64{0.2, 0.4, 0.6, 0.8}
		s.Warmup, s.Measure = 500, 2000
		return s
	}
	start := time.Now()
	if _, _, err := spec().RunWith(RunOptions{Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)
	start = time.Now()
	if _, _, err := spec().RunWith(RunOptions{Parallel: runtime.GOMAXPROCS(0)}); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial=%v parallel=%v speedup=%.2fx on %d cores", serial, parallel, speedup, runtime.GOMAXPROCS(0))
	if speedup <= 1 {
		t.Fatalf("parallel sweep (%v) not faster than serial (%v)", parallel, serial)
	}
}
