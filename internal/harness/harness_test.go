package harness

import (
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func tinySpec() *Spec {
	return &Spec{
		Name:    "tiny",
		Topo:    func() topology.Topology { return topology.MustTorus(4, 4) },
		Pattern: uniformPattern,
		Algs: []AlgSpec{
			{Algorithm: routing.Disha(0), Recovery: true, Timeout: 8},
			{Algorithm: routing.DOR()},
		},
		Loads:   []float64{0.2, 0.5},
		MsgLen:  8,
		Warmup:  300,
		Measure: 800,
		Seed:    42,
	}
}

func TestRunProducesSeries(t *testing.T) {
	spec := tinySpec()
	var lines []string
	res, err := spec.Run(func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if len(lines) != 4 {
		t.Fatalf("progress lines = %d, want 4", len(lines))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Latency <= 0 {
				t.Fatalf("%s: non-positive latency at load %v", s.Label, p.X)
			}
			if p.Throughput <= 0 || p.Throughput > 1.2 {
				t.Fatalf("%s: implausible throughput %v", s.Label, p.Throughput)
			}
		}
	}
	for label, pts := range res.Points {
		for _, p := range pts {
			if p.Delivered == 0 {
				t.Fatalf("%s delivered nothing at load %v", label, p.Load)
			}
			if p.MeanNetLatency > p.MeanLatency+1e-9 {
				t.Fatalf("%s: network latency exceeds age", label)
			}
		}
	}
}

func TestThroughputTracksLoadBelowSaturation(t *testing.T) {
	spec := tinySpec()
	spec.Algs = spec.Algs[:1] // Disha only
	spec.Loads = []float64{0.2, 0.4}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points[spec.Algs[0].label()]
	// Below saturation accepted ~= offered: throughput within 25% of load.
	for _, p := range pts {
		if p.Throughput < p.Load*0.75 || p.Throughput > p.Load*1.25 {
			t.Fatalf("throughput %v at load %v diverges from offered", p.Throughput, p.Load)
		}
	}
	if pts[1].Throughput <= pts[0].Throughput {
		t.Fatal("throughput must grow with load below saturation")
	}
}

func TestRecoveryFlagControlsRouterConfig(t *testing.T) {
	spec := tinySpec()
	spec.Loads = []float64{0.3}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	dor := res.Points["dor"][0]
	if dor.TokenSeizures != 0 || dor.TimeoutEvents != 0 {
		t.Fatal("avoidance curve must run without detection/recovery")
	}
}

func TestWFGSampling(t *testing.T) {
	spec := tinySpec()
	spec.Algs = []AlgSpec{{Algorithm: routing.Disha(0), Recovery: true, Timeout: 8}}
	spec.Loads = []float64{0.3}
	spec.WFGSampleEvery = 200
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points["disha-m0"][0]
	if p.WFGSamples != 4 { // 800 / 200
		t.Fatalf("WFG samples = %d, want 4", p.WFGSamples)
	}
}

func TestIncompleteSpecFails(t *testing.T) {
	if _, err := (&Spec{Name: "broken"}).Run(nil); err == nil {
		t.Fatal("incomplete spec must fail")
	}
}

func TestTablesAndCSV(t *testing.T) {
	spec := tinySpec()
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	lat := res.LatencyTable()
	if !strings.Contains(lat, "disha-m0") || !strings.Contains(lat, "dor") || !strings.Contains(lat, "0.50") {
		t.Fatalf("latency table malformed:\n%s", lat)
	}
	if !strings.Contains(res.ThroughputTable(), "throughput") {
		t.Fatal("throughput table malformed")
	}
	if !strings.Contains(res.SeizureTable(), "seizures") {
		t.Fatal("seizure table malformed")
	}
	csv := res.CSV()
	if !strings.Contains(csv, "series,load,latency,throughput") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
	if !strings.Contains(res.SaturationSummary(), "saturation") {
		t.Fatal("saturation summary malformed")
	}
}

func TestFigureSpecsConstruct(t *testing.T) {
	sc := SmallScale()
	figs := Figures(sc)
	for _, name := range []string{"3a", "3b", "4", "5", "6", "7"} {
		spec, ok := figs[name]
		if !ok {
			t.Fatalf("figure %s missing", name)
		}
		if err := spec.normalize(); err != nil {
			t.Fatalf("figure %s: %v", name, err)
		}
		topo := spec.Topo()
		if _, err := spec.Pattern(topo); err != nil {
			t.Fatalf("figure %s pattern: %v", name, err)
		}
	}
	if len(figs["3b"].Algs) != 4 {
		t.Fatal("fig3b must sweep 4 time-outs")
	}
	if len(figs["4"].Algs) != 6 {
		t.Fatal("fig4 must compare 6 schemes")
	}
	// Dally & Aoki must use min-congestion, everything else random.
	for _, a := range figs["4"].Algs {
		if a.Algorithm.Name() == "dally-aoki" {
			if a.Selection == nil || a.Selection.Name() != "min-congestion" {
				t.Fatal("dally-aoki must use min-congestion selection")
			}
		} else if a.Selection != nil {
			t.Fatalf("%s should default to random selection", a.Algorithm.Name())
		}
	}
}

// TestFigureSmoke runs a miniature Figure 4 end to end: at the modest load
// the adaptive Disha schemes must deliver packets, and every scheme's
// latency must be at least the no-contention minimum.
func TestFigureSmoke(t *testing.T) {
	sc := Scale{Radix: 4, MsgLen: 8, Warmup: 200, Measure: 600, Loads: []float64{0.3}, Seed: 7}
	res, err := Fig4(sc).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for label, pts := range res.Points {
		if pts[0].Delivered == 0 {
			t.Fatalf("%s delivered nothing", label)
		}
		if pts[0].MeanLatency < float64(sc.MsgLen) {
			t.Fatalf("%s latency %v below message serialization time", label, pts[0].MeanLatency)
		}
	}
}

func TestHotspotPatternFixedSpot(t *testing.T) {
	sc := SmallScale()
	spec := Fig7(sc)
	topo := spec.Topo()
	p1, err := spec.Pattern(topo)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := spec.Pattern(topo)
	if p1.Name() != p2.Name() {
		t.Fatal("hotspot pattern must be reproducible")
	}
	if !strings.Contains(p1.Name(), "hotspot-5%") {
		t.Fatalf("pattern name %q", p1.Name())
	}
}

func TestScaleDefaults(t *testing.T) {
	p := PaperScale()
	if p.Radix != 16 || p.MsgLen != 32 {
		t.Fatal("paper scale must match Section 4.1")
	}
	s := SmallScale()
	if s.Radix >= p.Radix {
		t.Fatal("small scale must be smaller than paper scale")
	}
	// Uniform capacity sanity at paper scale: full load equals one packet
	// per node every 64 cycles.
	topo := topology.MustTorus(16, 16)
	prob, err := traffic.InjectionProbability(topo, traffic.Uniform(topo), 32, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if prob < 0.014 || prob > 0.017 {
		t.Fatalf("full-load probability %v out of expected band", prob)
	}
}

func TestBatchMeansCI(t *testing.T) {
	spec := tinySpec()
	spec.Algs = spec.Algs[:1]
	spec.Loads = []float64{0.3}
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[spec.Algs[0].label()][0]
	if p.LatencyCI95 <= 0 {
		t.Fatalf("expected a positive CI, got %v", p.LatencyCI95)
	}
	// The CI must be a plausible fraction of the mean at moderate load.
	if p.LatencyCI95 > p.MeanLatency {
		t.Fatalf("CI %v wider than the mean %v", p.LatencyCI95, p.MeanLatency)
	}
}

func TestCI95Helper(t *testing.T) {
	if ci95(nil) != 0 || ci95([]float64{5}) != 0 {
		t.Fatal("degenerate CIs must be zero")
	}
	// Identical batches: zero variance, zero CI.
	if ci95([]float64{7, 7, 7, 7}) != 0 {
		t.Fatal("zero-variance CI must be zero")
	}
	// Known case: means {1,2,3}, sd=1, t(2)=4.303 -> 4.303/sqrt(3)=2.484...
	got := ci95([]float64{1, 2, 3})
	if got < 2.4 || got > 2.6 {
		t.Fatalf("ci95({1,2,3}) = %v", got)
	}
	if tQuantile95(0) != 12.706 || tQuantile95(4) != 2.776 || tQuantile95(100) != 1.960 {
		t.Fatal("t quantiles wrong")
	}
}
