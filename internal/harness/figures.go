package harness

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Scale sets the simulation size of a figure reproduction. PaperScale
// matches Section 4.1 (16x16 torus, 4 VCs, 32-flit messages); SmallScale is
// an 8x8 configuration for fast regression runs and benchmarks with the
// same qualitative behaviour.
type Scale struct {
	Radix   int
	MsgLen  int
	Warmup  int
	Measure int
	Loads   []float64
	Seed    uint64
}

// PaperScale reproduces the paper's simulation model.
func PaperScale() Scale {
	return Scale{
		Radix:   16,
		MsgLen:  32,
		Warmup:  3000,
		Measure: 10000,
		Loads:   []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Seed:    0xd15ab1e,
	}
}

// SmallScale is a fast configuration for tests and benchmarks.
func SmallScale() Scale {
	return Scale{
		Radix:   8,
		MsgLen:  16,
		Warmup:  1000,
		Measure: 3000,
		Loads:   []float64{0.2, 0.4, 0.6, 0.8},
		Seed:    0xd15ab1e,
	}
}

// SpecFor resolves one of the canned paper figures by name at the named
// scale ("paper" or "small"; empty means paper), with optional overrides:
// positive warmup/measure replace the scale's cycle counts, a non-zero seed
// replaces the base seed, and a non-empty loads slice replaces the swept
// load rates (each must lie in (0, 1]). It is the single spec-resolution
// path shared by the job server and the fleet worker, so both sides of a
// remote execution reconstruct byte-identical specs from the same request
// fields.
func SpecFor(figure, scale string, warmup, measure int, seed uint64, loads []float64) (*Spec, error) {
	var sc Scale
	switch scale {
	case "", "paper":
		sc = PaperScale()
	case "small":
		sc = SmallScale()
	default:
		return nil, fmt.Errorf("unknown scale %q (want \"paper\" or \"small\")", scale)
	}
	if warmup > 0 {
		sc.Warmup = warmup
	}
	if measure > 0 {
		sc.Measure = measure
	}
	if seed != 0 {
		sc.Seed = seed
	}
	spec, ok := Figures(sc)[figure]
	if !ok {
		return nil, fmt.Errorf("unknown figure %q (want 3a, 3b, 4, 5, 6, 7 or fullmesh)", figure)
	}
	if len(loads) > 0 {
		for _, l := range loads {
			if l <= 0 || l > 1 {
				return nil, fmt.Errorf("load %v out of (0, 1]", l)
			}
		}
		spec.Loads = loads
	}
	return spec, nil
}

func (sc Scale) torus() func() topology.Graph {
	return func() topology.Graph { return topology.MustTorus(sc.Radix, sc.Radix) }
}

func uniformPattern(topo topology.Graph) (traffic.Pattern, error) {
	return traffic.Uniform(topo), nil
}

// coordinated asserts that the spec's graph carries cube coordinates; the
// coordinate-dependent patterns (transpose, hot-spot placement) need them.
func coordinated(g topology.Graph) (topology.Topology, error) {
	t, ok := topology.Coordinated(g)
	if !ok {
		return nil, fmt.Errorf("harness: pattern needs a coordinate topology, have %s", g.Name())
	}
	return t, nil
}

// dishaCurves returns the paper's two Disha configurations: minimal (M=0)
// and misrouting up to three (M=3), both with sequential Token recovery.
func dishaCurves(timeout sim.Cycle) []AlgSpec {
	return []AlgSpec{
		{Algorithm: routing.Disha(0), Recovery: true, Timeout: timeout},
		{Algorithm: routing.Disha(3), Recovery: true, Timeout: timeout},
	}
}

// avoidanceCurves returns the four deadlock-avoidance baselines of Section
// 4.3. Dally & Aoki is "the only one simulated with a minimum congestion
// selection function"; the rest use random selection.
func avoidanceCurves() []AlgSpec {
	return []AlgSpec{
		{Algorithm: routing.Duato()},
		{Algorithm: routing.DallyAoki(), Selection: routing.MinCongestion()},
		{Algorithm: routing.NegativeFirst()},
		{Algorithm: routing.DOR()},
	}
}

// Fig3a is the deadlock characterization experiment: token seizures
// normalized by delivered packets vs load for two widely varying time-out
// thresholds (4 and 64), uniform traffic, Disha with a maximum misroute of
// three. The paper's claim: under 2% of injected packets ever seize the
// Token below saturation.
func Fig3a(sc Scale) *Spec {
	return &Spec{
		Name:    "fig3a-deadlock-characterization",
		Topo:    sc.torus(),
		Pattern: uniformPattern,
		Algs: []AlgSpec{
			{Label: "disha-m3-tout4", Algorithm: routing.Disha(3), Recovery: true, Timeout: 4},
			{Label: "disha-m3-tout64", Algorithm: routing.Disha(3), Recovery: true, Timeout: 64},
		},
		Loads:          sc.Loads,
		MsgLen:         sc.MsgLen,
		Warmup:         sc.Warmup,
		Measure:        sc.Measure,
		Seed:           sc.Seed,
		WFGSampleEvery: 500,
	}
}

// Fig3b is the time-out selection experiment: latency vs load for T_out in
// {4, 8, 16, 64}. Small time-outs trigger false detections, large ones
// delay recovery; 8-16 is the paper's sweet spot.
func Fig3b(sc Scale) *Spec {
	algs := make([]AlgSpec, 0, 4)
	for _, tout := range []sim.Cycle{4, 8, 16, 64} {
		algs = append(algs, AlgSpec{
			Label:     "disha-m3-tout" + itoa(int(tout)),
			Algorithm: routing.Disha(3),
			Recovery:  true,
			Timeout:   tout,
		})
	}
	return &Spec{
		Name:    "fig3b-timeout-selection",
		Topo:    sc.torus(),
		Pattern: uniformPattern,
		Algs:    algs,
		Loads:   sc.Loads,
		MsgLen:  sc.MsgLen,
		Warmup:  sc.Warmup,
		Measure: sc.Measure,
		Seed:    sc.Seed,
	}
}

// comparisonSpec builds the Figures 4-7 shape: Disha M=0 and M=3 against
// the four avoidance baselines under the given traffic pattern.
func comparisonSpec(name string, sc Scale, pattern func(topology.Graph) (traffic.Pattern, error)) *Spec {
	return &Spec{
		Name:    name,
		Topo:    sc.torus(),
		Pattern: pattern,
		Algs:    append(dishaCurves(8), avoidanceCurves()...),
		Loads:   sc.Loads,
		MsgLen:  sc.MsgLen,
		Warmup:  sc.Warmup,
		Measure: sc.Measure,
		Seed:    sc.Seed,
	}
}

// Fig4 compares all schemes under uniform traffic (paper: Disha M=0's
// latency rises linearly with load; M=3 saturates around 0.65 with Duato a
// distant second at 0.35; peak throughput ~35% over Duato and sustained).
func Fig4(sc Scale) *Spec { return comparisonSpec("fig4-uniform", sc, uniformPattern) }

// Fig5 compares all schemes under bit-reversal traffic (paper: Disha M=0
// saturates around 0.7, M=3 around 0.45; peak throughput ~50% over Duato).
func Fig5(sc Scale) *Spec {
	return comparisonSpec("fig5-bit-reversal", sc, func(t topology.Graph) (traffic.Pattern, error) {
		return traffic.BitReversal(t)
	})
}

// Fig6 compares all schemes under matrix-transpose traffic (paper: Disha
// M=0 saturates around 0.7, more than twice Duato; peak ~50% over Duato but
// not sustained).
func Fig6(sc Scale) *Spec {
	return comparisonSpec("fig6-transpose", sc, func(g topology.Graph) (traffic.Pattern, error) {
		t, err := coordinated(g)
		if err != nil {
			return nil, err
		}
		return traffic.Transpose(t)
	})
}

// Fig7 compares all schemes under hot-spot traffic: 5% of all traffic is
// directed at one (fixed) hot node on top of uniform background. The paper
// observes early saturation for every scheme, Disha M=3 slightly ahead of
// Duato, and Disha M=0 behind everyone — the one case where misrouting
// helps by steering around the hot region.
func Fig7(sc Scale) *Spec {
	spec := comparisonSpec("fig7-hotspot", sc, func(g topology.Graph) (traffic.Pattern, error) {
		t, err := coordinated(g)
		if err != nil {
			return nil, err
		}
		// A fixed, reproducible hot node away from (0,0).
		spot := t.NodeAt(topology.Coord{3 % t.Radix(0), 5 % t.Radix(1)})
		return traffic.HotSpot(traffic.Uniform(t), spot, 0.05), nil
	})
	// Hot-spot saturates early; sweep the low-load region more finely.
	spec.Loads = hotspotLoads(sc)
	return spec
}

func hotspotLoads(sc Scale) []float64 {
	if len(sc.Loads) > 0 && sc.Loads[len(sc.Loads)-1] <= 0.5 {
		return sc.Loads
	}
	return []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// FigFullMesh is the full-mesh baseline experiment (beyond the paper): on a
// complete graph of sc.Radix nodes every minimal route is the single direct
// hop, so minimal routing is deadlock-free with zero extra virtual channels —
// recovery hardware is pure overhead there. The experiment makes that
// measurable: Disha with the Token and Deadlock Buffer armed against the same
// fully adaptive algorithm with recovery disabled ("minimal-vcfree"). The two
// curves should coincide, and the armed curve's token-seizure ratio should
// stay zero at every load.
func FigFullMesh(sc Scale) *Spec {
	return &Spec{
		Name:    "fullmesh-baseline",
		Topo:    func() topology.Graph { return topology.MustFullMesh(sc.Radix) },
		Pattern: uniformPattern,
		Algs: []AlgSpec{
			{Label: "disha-recovery", Algorithm: routing.Disha(0), Recovery: true, Timeout: 8},
			{Label: "minimal-vcfree", Algorithm: routing.Disha(0), Recovery: false},
		},
		Loads:   sc.Loads,
		MsgLen:  sc.MsgLen,
		VCs:     1,
		Warmup:  sc.Warmup,
		Measure: sc.Measure,
		Seed:    sc.Seed,
	}
}

// Figures returns all canned figure specs keyed by their short name.
func Figures(sc Scale) map[string]*Spec {
	return map[string]*Spec{
		"3a":       Fig3a(sc),
		"3b":       Fig3b(sc),
		"4":        Fig4(sc),
		"5":        Fig5(sc),
		"6":        Fig6(sc),
		"7":        Fig7(sc),
		"fullmesh": FigFullMesh(sc),
	}
}
