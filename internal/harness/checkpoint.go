package harness

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/snapshot"
)

// Point-checkpoint container identity (the payload embeds a network
// snapshot, which carries its own magic and version).
const (
	checkpointMagic = "DISHACKP"
	// Version 2: Counters gained the reconfiguration loss fields
	// (PacketsLost, FlitsLost, PacketsUnroutable) and the embedded network
	// snapshot moved to its version 2 (reconfiguration log).
	checkpointVersion = 2
)

// checkpointSaveHook, when non-nil, runs after every successful checkpoint
// write; a non-nil return aborts the point with that error. Tests use it to
// simulate a crash immediately after a checkpoint lands on disk.
var checkpointSaveHook func(key string, cycle int) error

// pointProgress is the resumable cursor of one runPoint execution: how far
// warm-up and measurement have advanced, the batch-means accumulator, and
// the WFG sampling state. Together with the three latency collectors and
// the network snapshot it is everything a resumed point needs to finish
// with byte-identical results.
type pointProgress struct {
	warmupRan     int
	ran           int // measurement cycles completed
	batch         int // current batch index
	warmed        bool
	nextWFG       int
	wfgSamples    int64
	trueDeadlocks int64
	startCounters network.Counters
	batchMeans    []float64
}

// checkpointer persists one point's progress to a single atomic file.
// A nil *checkpointer disables checkpointing throughout runPoint.
type checkpointer struct {
	key    string
	path   string
	every  int
	next   int // global cycle (warm-up + measurement) of the next save
	onSave func(data []byte) error
}

// CheckpointPath returns the checkpoint file a given job key maps to inside
// dir. Exported so a fleet worker resuming a re-dispatched lease can place
// the coordinator-supplied checkpoint blob where RunPoint will find it.
func CheckpointPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, fmt.Sprintf("point-%x.ckpt", sum[:8]))
}

// newCheckpointer builds the checkpointer for a job key, or nil when the
// options do not enable checkpointing. The file name hashes the key, which
// embeds the full spec configuration: a stale checkpoint from a different
// sweep can never be picked up by accident (and the key stored inside the
// file is verified on load as a second line of defense).
func newCheckpointer(opts RunOptions, key string) *checkpointer {
	if opts.CheckpointEvery <= 0 || opts.CheckpointDir == "" {
		return nil
	}
	return &checkpointer{
		key:   key,
		path:  CheckpointPath(opts.CheckpointDir, key),
		every: opts.CheckpointEvery,
	}
}

// arm positions the next save strictly after the current global cycle.
func (ck *checkpointer) arm(globalCycle int) {
	ck.next = (globalCycle/ck.every + 1) * ck.every
}

// clamp limits a step so it never runs past the next checkpoint boundary.
func (ck *checkpointer) clamp(step, globalCycle int) int {
	if ck.next-globalCycle < step {
		return ck.next - globalCycle
	}
	return step
}

// due reports whether the point has just reached the checkpoint boundary.
func (ck *checkpointer) due(globalCycle int) bool { return globalCycle == ck.next }

// save atomically persists the point's complete state. The layout is
// key, progress cursor, start-of-measurement counters, batch means, the
// three collectors' raw samples, then the embedded network snapshot.
func (ck *checkpointer) save(st *pointProgress, age, netLat, batch *metrics.Collector, net *network.Network) error {
	var w snapshot.Writer
	w.String(ck.key)
	w.Int(st.warmupRan)
	w.Int(st.ran)
	w.Int(st.batch)
	w.Bool(st.warmed)
	w.Int(st.nextWFG)
	w.I64(st.wfgSamples)
	w.I64(st.trueDeadlocks)
	network.EncodeCounters(&w, st.startCounters)
	w.F64s(st.batchMeans)
	w.F64s(age.Samples())
	w.F64s(netLat.Samples())
	w.F64s(batch.Samples())
	var nb bytes.Buffer
	if err := net.Snapshot(&nb); err != nil {
		return fmt.Errorf("harness: checkpoint %s: %w", ck.key, err)
	}
	w.Blob(nb.Bytes())
	data := snapshot.Seal(checkpointMagic, checkpointVersion, w.Bytes())
	if err := snapshot.WriteFileAtomic(ck.path, data); err != nil {
		return fmt.Errorf("harness: checkpoint %s: %w", ck.key, err)
	}
	ck.next += ck.every
	if ck.onSave != nil {
		if err := ck.onSave(data); err != nil {
			return fmt.Errorf("harness: checkpoint hook %s: %w", ck.key, err)
		}
	}
	if checkpointSaveHook != nil {
		return checkpointSaveHook(ck.key, st.warmupRan+st.ran)
	}
	return nil
}

// load restores a previously saved checkpoint into st, the collectors and
// the freshly built network. It returns false with a nil error when no
// checkpoint exists (a normal cold start); any unreadable, corrupt or
// mismatched file is an error — silently restarting would hide data loss.
func (ck *checkpointer) load(st *pointProgress, age, netLat, batch *metrics.Collector, net *network.Network) (bool, error) {
	data, err := os.ReadFile(ck.path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("harness: read checkpoint: %w", err)
	}
	payload, err := snapshot.Open(data, checkpointMagic, checkpointVersion)
	if err != nil {
		return false, fmt.Errorf("harness: checkpoint %s: %w", ck.path, err)
	}
	r := snapshot.NewReader(payload)
	r.ExpectString(ck.key, "checkpoint job key")
	st.warmupRan = r.Int()
	st.ran = r.Int()
	st.batch = r.Int()
	st.warmed = r.Bool()
	st.nextWFG = r.Int()
	st.wfgSamples = r.I64()
	st.trueDeadlocks = r.I64()
	st.startCounters = network.DecodeCounters(r)
	st.batchMeans = r.F64s()
	age.RestoreSamples(r.F64s())
	netLat.RestoreSamples(r.F64s())
	batch.RestoreSamples(r.F64s())
	blob := r.Blob()
	if err := r.Err(); err != nil {
		return false, err
	}
	if r.Remaining() != 0 {
		return false, fmt.Errorf("harness: checkpoint %s: %d bytes of trailing garbage", ck.path, r.Remaining())
	}
	if err := net.Restore(bytes.NewReader(blob)); err != nil {
		return false, fmt.Errorf("harness: checkpoint %s: %w", ck.path, err)
	}
	return true, nil
}

// finish removes the checkpoint after the point completes: the result now
// lives in the engine journal, and a stale file must not shadow a future
// re-run with a fresh network.
func (ck *checkpointer) finish() {
	os.Remove(ck.path)
}
