package harness

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// checkpointSpec is a small but non-trivial sweep: two curves, two loads,
// deadlock-prone DISHA settings, batch means and WFG sampling all active so
// the checkpoint must carry every piece of measurement state.
func checkpointSpec() *Spec {
	return &Spec{
		Name:    "checkpoint-test",
		Topo:    func() topology.Graph { return topology.MustTorus(4, 4) },
		Pattern: func(t topology.Graph) (traffic.Pattern, error) { return traffic.Uniform(t), nil },
		Algs: []AlgSpec{
			{Algorithm: routing.Disha(0), Recovery: true, Timeout: 6},
			{Algorithm: routing.DOR()},
		},
		Loads:          []float64{0.30, 0.55},
		MsgLen:         8,
		VCs:            2,
		BufferDepth:    2,
		Warmup:         400,
		Measure:        1200,
		Seed:           11,
		WFGSampleEvery: 250,
		Batches:        3,
	}
}

// errSimulatedKill marks the hook-induced crash.
var errSimulatedKill = errors.New("simulated kill after checkpoint")

// TestCheckpointResumeIdenticalCSV is the acceptance scenario from the
// issue: a sweep is killed mid-point right after a checkpoint lands, the
// sweep is re-run against the same journal and checkpoint directory, and the
// final CSV must be byte-identical to an uninterrupted run's.
func TestCheckpointResumeIdenticalCSV(t *testing.T) {
	want, _, err := checkpointSpec().RunWith(RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := RunOptions{
		Parallel:        1,
		Journal:         filepath.Join(dir, "journal.jsonl"),
		Resume:          true,
		CheckpointEvery: 300,
		CheckpointDir:   filepath.Join(dir, "ckpt"),
	}

	// First attempt: die after the third checkpoint write — mid-measurement
	// of some point, with earlier points already in the journal.
	saves := 0
	checkpointSaveHook = func(key string, cycle int) error {
		saves++
		if saves == 3 {
			return errSimulatedKill
		}
		return nil
	}
	defer func() { checkpointSaveHook = nil }()
	if _, _, err := checkpointSpec().RunWith(opts); err == nil {
		t.Fatal("killed sweep reported success")
	}
	files, err := os.ReadDir(opts.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checkpoint file survived the kill")
	}

	// Second attempt: resume. The interrupted point must restart from its
	// checkpoint (counted as resumed loads), finish, and match the
	// uninterrupted CSV byte for byte.
	checkpointSaveHook = nil
	got, _, err := checkpointSpec().RunWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.CSV() != want.CSV() {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n--- uninterrupted\n%s--- resumed\n%s", want.CSV(), got.CSV())
	}

	// Completed points must clean their checkpoints up.
	files, err = os.ReadDir(opts.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("%d checkpoint files left after a successful sweep", len(files))
	}
}

// TestCheckpointKillDuringWarmup kills during the warm-up phase of the very
// first point, where measurement state is still empty — the cursor must
// still resume correctly into warm-up and produce identical results.
func TestCheckpointKillDuringWarmup(t *testing.T) {
	want, _, err := checkpointSpec().RunWith(RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := RunOptions{
		Parallel:        1,
		Journal:         filepath.Join(dir, "journal.jsonl"),
		Resume:          true,
		CheckpointEvery: 150, // first save lands at cycle 150 < Warmup 400
		CheckpointDir:   filepath.Join(dir, "ckpt"),
	}
	killed := false
	checkpointSaveHook = func(key string, cycle int) error {
		if !killed && cycle < 400 {
			killed = true
			return errSimulatedKill
		}
		return nil
	}
	defer func() { checkpointSaveHook = nil }()
	if _, _, err := checkpointSpec().RunWith(opts); err == nil {
		t.Fatal("killed sweep reported success")
	}
	if !killed {
		t.Fatal("kill hook never fired during warm-up")
	}
	checkpointSaveHook = nil
	got, _, err := checkpointSpec().RunWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.CSV() != want.CSV() {
		t.Fatal("resumed-from-warmup CSV differs from uninterrupted run")
	}
}

// TestCheckpointShardedKernel runs the interrupted sweep with the parallel
// kernel: checkpoints taken under Shards=2 must resume byte-identically too.
func TestCheckpointShardedKernel(t *testing.T) {
	serial, _, err := checkpointSpec().RunWith(RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded := checkpointSpec()
	sharded.Shards = 2

	dir := t.TempDir()
	opts := RunOptions{
		Parallel:        1,
		Journal:         filepath.Join(dir, "journal.jsonl"),
		Resume:          true,
		CheckpointEvery: 300,
		CheckpointDir:   filepath.Join(dir, "ckpt"),
	}
	saves := 0
	checkpointSaveHook = func(key string, cycle int) error {
		saves++
		if saves == 2 {
			return errSimulatedKill
		}
		return nil
	}
	defer func() { checkpointSaveHook = nil }()
	if _, _, err := sharded.RunWith(opts); err == nil {
		t.Fatal("killed sweep reported success")
	}
	checkpointSaveHook = nil
	resumed := checkpointSpec()
	resumed.Shards = 2
	got, _, err := resumed.RunWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.CSV() != serial.CSV() {
		t.Fatal("sharded resumed CSV differs from serial uninterrupted run")
	}
}

// TestCheckpointRejectsForeignFile plants a checkpoint whose embedded key
// belongs to a different sweep at the path a point expects; the point must
// fail loudly instead of loading foreign state.
func TestCheckpointRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	opts := RunOptions{
		Parallel:        1,
		CheckpointEvery: 300,
		CheckpointDir:   filepath.Join(dir, "ckpt"),
	}

	// Produce a genuine checkpoint file by killing the first save.
	checkpointSaveHook = func(string, int) error { return errSimulatedKill }
	if _, _, err := checkpointSpec().RunWith(opts); err == nil {
		t.Fatal("killed sweep reported success")
	}
	checkpointSaveHook = nil
	files, err := os.ReadDir(opts.CheckpointDir)
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint produced (err=%v)", err)
	}

	// A spec with a different seed hashes its keys to different paths; force
	// a collision by renaming the existing file onto the other spec's path.
	other := checkpointSpec()
	other.Seed = 999
	// Discover the other spec's expected path via its own killed first save.
	otherDir := filepath.Join(dir, "other")
	checkpointSaveHook = func(string, int) error { return errSimulatedKill }
	oOpts := opts
	oOpts.CheckpointDir = otherDir
	if _, _, err := other.RunWith(oOpts); err == nil {
		t.Fatal("killed sweep reported success")
	}
	checkpointSaveHook = nil
	oFiles, err := os.ReadDir(otherDir)
	if err != nil || len(oFiles) == 0 {
		t.Fatalf("no checkpoint produced for other spec (err=%v)", err)
	}
	src := filepath.Join(opts.CheckpointDir, files[0].Name())
	dst := filepath.Join(otherDir, oFiles[0].Name())
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resuming the other spec must now hit the key mismatch.
	if _, _, err := other.RunWith(oOpts); err == nil {
		t.Fatal("foreign checkpoint was accepted")
	}
}
