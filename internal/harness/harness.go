// Package harness runs the paper's experiments: it builds networks from
// declarative specs, applies the warm-up / measurement / drain methodology,
// normalizes throughput against network capacity, and renders the resulting
// curves as tables and CSV. The canned specs in figures.go correspond
// one-to-one to the paper's figures.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// AlgSpec describes one curve of an experiment: a routing algorithm with
// its selection function and recovery settings.
type AlgSpec struct {
	// Label names the curve; defaults to the algorithm name.
	Label     string
	Algorithm routing.Algorithm
	// Selection defaults to random (the paper simulates Dally & Aoki with
	// minimum-congestion and everything else with random selection).
	Selection routing.Selection
	// Recovery enables time-out detection, the Token and the Deadlock
	// Buffer. It must be true for Disha and false for avoidance schemes.
	Recovery bool
	// Timeout is T_out in cycles when Recovery is on (default 8).
	Timeout sim.Cycle
}

func (a AlgSpec) label() string {
	if a.Label != "" {
		return a.Label
	}
	return a.Algorithm.Name()
}

// Spec is a declarative experiment: a topology, a traffic pattern, a set of
// algorithm curves and a load sweep.
type Spec struct {
	Name string
	// Topo builds the network graph (fresh per run for safety).
	Topo func() topology.Topology
	// Pattern builds the workload for the topology.
	Pattern func(topology.Topology) (traffic.Pattern, error)
	Algs    []AlgSpec
	// Loads are the offered load rates swept (fraction of capacity).
	Loads  []float64
	MsgLen int
	// Router parameters shared by all curves (Timeout and
	// DeadlockBufferDepth are controlled per AlgSpec).
	VCs, BufferDepth int
	Alloc            router.AllocPolicy
	// Warmup cycles run before measurement; Measure cycles are observed.
	Warmup, Measure int
	Seed            uint64
	TokenHops       int
	// WFGSampleEvery, when positive, runs the wait-for-graph analyzer every
	// that many cycles during measurement and records true-deadlock
	// statistics (used for the deadlock characterization experiment).
	WFGSampleEvery int
	// Batches splits the measurement window for batch-means confidence
	// intervals on the latency estimate (default 5; 1 disables).
	Batches int
}

// PointResult is the measurement of one (algorithm, load) pair.
type PointResult struct {
	Load           float64
	MeanLatency    float64 // creation -> delivery, cycles
	LatencyCI95    float64 // batch-means 95% confidence halfwidth on MeanLatency
	MeanNetLatency float64 // injection -> delivery, cycles
	P95Latency     float64
	Delivered      int64
	Offered        int64
	Throughput     float64 // normalized accepted traffic, fraction of capacity
	TokenSeizures  int64   // during measurement
	SeizureRatio   float64 // seizures / delivered (Figure 3a's y-axis)
	TimeoutEvents  int64
	TrueDeadlocks  int64 // WFG-sampled deadlocked configurations (if enabled)
	WFGSamples     int64
	MisrouteHops   int64
}

// Result bundles an experiment's curves.
type Result struct {
	Spec   *Spec
	Series []metrics.Series
	Points map[string][]PointResult // keyed by curve label
}

// Run executes the experiment. progress, if non-nil, receives one line per
// completed point.
func (s *Spec) Run(progress func(string)) (*Result, error) {
	if err := s.normalize(); err != nil {
		return nil, err
	}
	res := &Result{Spec: s, Points: make(map[string][]PointResult)}
	for _, alg := range s.Algs {
		series := metrics.Series{Label: alg.label()}
		for _, load := range s.Loads {
			pr, err := s.runPoint(alg, load)
			if err != nil {
				return nil, fmt.Errorf("%s @%.2f: %w", alg.label(), load, err)
			}
			res.Points[alg.label()] = append(res.Points[alg.label()], pr)
			deadlockRate := 0.0
			if pr.WFGSamples > 0 {
				deadlockRate = float64(pr.TrueDeadlocks) / float64(pr.WFGSamples)
			}
			series.Append(metrics.Point{
				X:          pr.Load,
				Latency:    pr.MeanLatency,
				Throughput: pr.Throughput,
				Extra: map[string]float64{
					"seizure_ratio":      pr.SeizureRatio,
					"net_latency":        pr.MeanNetLatency,
					"p95":                pr.P95Latency,
					"latency_ci95":       pr.LatencyCI95,
					"true_deadlock_rate": deadlockRate,
				},
			})
			if progress != nil {
				progress(fmt.Sprintf("%-22s load=%.2f latency=%8.1f thpt=%.3f seiz=%d",
					alg.label(), pr.Load, pr.MeanLatency, pr.Throughput, pr.TokenSeizures))
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

func (s *Spec) normalize() error {
	if s.Topo == nil || s.Pattern == nil || len(s.Algs) == 0 || len(s.Loads) == 0 {
		return fmt.Errorf("harness: spec %q incomplete", s.Name)
	}
	if s.MsgLen == 0 {
		s.MsgLen = 32
	}
	if s.VCs == 0 {
		s.VCs = 4
	}
	if s.BufferDepth == 0 {
		s.BufferDepth = 2
	}
	if s.Warmup == 0 {
		s.Warmup = 2000
	}
	if s.Measure == 0 {
		s.Measure = 6000
	}
	if s.TokenHops == 0 {
		s.TokenHops = 4
	}
	if s.Batches == 0 {
		s.Batches = 5
	}
	if s.Batches < 1 {
		return fmt.Errorf("harness: batches %d < 1", s.Batches)
	}
	return nil
}

func (s *Spec) runPoint(alg AlgSpec, load float64) (PointResult, error) {
	topo := s.Topo()
	pattern, err := s.Pattern(topo)
	if err != nil {
		return PointResult{}, err
	}
	rc := router.Default()
	rc.VCs = s.VCs
	rc.BufferDepth = s.BufferDepth
	rc.Alloc = s.Alloc
	if alg.Recovery {
		rc.Timeout = alg.Timeout
		if rc.Timeout == 0 {
			rc.Timeout = 8
		}
		rc.DeadlockBufferDepth = 1
	} else {
		rc.Timeout = 0
		rc.DeadlockBufferDepth = 0
	}
	net, err := network.New(network.Config{
		Topo:              topo,
		Router:            rc,
		Algorithm:         alg.Algorithm,
		Selection:         alg.Selection,
		Pattern:           pattern,
		LoadRate:          load,
		MsgLen:            s.MsgLen,
		Seed:              s.Seed ^ hash(alg.label()) ^ uint64(load*1e6),
		TokenHopsPerCycle: s.TokenHops,
	})
	if err != nil {
		return PointResult{}, err
	}

	// Warm-up: run without collecting.
	net.Run(s.Warmup)
	startCounters := net.Counters()

	// Measurement: collect latency of every packet delivered in-window,
	// batched for the confidence interval.
	var age, netLat metrics.Collector
	batchMeans := make([]float64, 0, s.Batches)
	var batch metrics.Collector
	net.OnDeliver = func(p *packet.Packet) {
		age.Add(float64(p.Age()))
		netLat.Add(float64(p.NetworkLatency()))
		batch.Add(float64(p.Age()))
	}
	pr := PointResult{Load: load}
	ran := 0
	nextWFG := s.WFGSampleEvery
	for b := 0; b < s.Batches; b++ {
		target := (b + 1) * s.Measure / s.Batches
		for ran < target {
			step := target - ran
			if s.WFGSampleEvery > 0 && nextWFG-ran < step {
				step = nextWFG - ran
			}
			net.Run(step)
			ran += step
			if s.WFGSampleEvery > 0 && ran >= nextWFG {
				w := core.AnalyzeWFG(net.Routers())
				pr.WFGSamples++
				if w.TrueDeadlock() {
					pr.TrueDeadlocks++
				}
				nextWFG += s.WFGSampleEvery
			}
		}
		if batch.Count() > 0 {
			batchMeans = append(batchMeans, batch.Mean())
		}
		batch.Reset()
	}
	pr.LatencyCI95 = ci95(batchMeans)
	end := net.Counters()

	delivered := end.PacketsDelivered - startCounters.PacketsDelivered
	flits := end.FlitsDelivered - startCounters.FlitsDelivered
	pr.Delivered = delivered
	pr.Offered = end.PacketsOffered - startCounters.PacketsOffered
	pr.MeanLatency = age.Mean()
	pr.MeanNetLatency = netLat.Mean()
	pr.P95Latency = age.Percentile(95)
	pr.TokenSeizures = end.TokenSeizures - startCounters.TokenSeizures
	pr.TimeoutEvents = end.TimeoutEvents - startCounters.TimeoutEvents
	pr.MisrouteHops = end.MisrouteHops - startCounters.MisrouteHops
	if delivered > 0 {
		pr.SeizureRatio = float64(pr.TokenSeizures) / float64(delivered)
	}

	// Normalized accepted traffic: flits/node/cycle over the network's
	// capacity (the load normalization of Section 4.1 in reverse).
	st := traffic.MeasureMean(topo, pattern, 64)
	capacityFPC := float64(traffic.TotalChannels(topo)) / (float64(topo.Nodes()) * st.MeanDistance)
	accepted := float64(flits) / (float64(s.Measure) * float64(topo.Nodes()))
	pr.Throughput = accepted / capacityFPC
	return pr, nil
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Rendering -----------------------------------------------------------------

// LatencyTable renders mean latency vs load, one column per curve.
func (r *Result) LatencyTable() string {
	return r.table("latency (cycles)", func(p PointResult) float64 { return p.MeanLatency }, "%10.1f")
}

// ThroughputTable renders normalized accepted traffic vs load.
func (r *Result) ThroughputTable() string {
	return r.table("throughput (fraction of capacity)", func(p PointResult) float64 { return p.Throughput }, "%10.3f")
}

// SeizureTable renders token seizures normalized by delivered packets.
func (r *Result) SeizureTable() string {
	return r.table("token seizures / delivered packet", func(p PointResult) float64 { return p.SeizureRatio }, "%10.5f")
}

func (r *Result) table(title string, f func(PointResult) float64, cellFmt string) string {
	labels := make([]string, 0, len(r.Points))
	for l := range r.Points {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", r.Spec.Name, title)
	fmt.Fprintf(&sb, "%6s", "load")
	for _, l := range labels {
		fmt.Fprintf(&sb, " %20s", l)
	}
	sb.WriteString("\n")
	for i, load := range r.Spec.Loads {
		fmt.Fprintf(&sb, "%6.2f", load)
		for _, l := range labels {
			pts := r.Points[l]
			if i < len(pts) {
				fmt.Fprintf(&sb, " %20s", fmt.Sprintf(cellFmt, f(pts[i])))
			} else {
				fmt.Fprintf(&sb, " %20s", "-")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders every curve's points as CSV (one block per curve).
func (r *Result) CSV() string {
	var sb strings.Builder
	for _, s := range r.Series {
		sb.WriteString(s.CSV())
	}
	return sb.String()
}

// SaturationSummary reports each curve's saturation load (latency > 3x
// zero-load) and peak throughput — the numbers the paper quotes in prose.
func (r *Result) SaturationSummary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — saturation summary\n", r.Spec.Name)
	fmt.Fprintf(&sb, "%-22s %12s %12s\n", "curve", "saturation", "peak-thpt")
	for _, s := range r.Series {
		fmt.Fprintf(&sb, "%-22s %12.2f %12.3f\n", s.Label, s.SaturationLoad(3), s.PeakThroughput())
	}
	return sb.String()
}

// ci95 computes the batch-means 95% confidence halfwidth: t * s / sqrt(n)
// with Student-t quantiles for the small batch counts the harness uses.
func ci95(means []float64) float64 {
	n := len(means)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, m := range means {
		mean += m
	}
	mean /= float64(n)
	ss := 0.0
	for _, m := range means {
		d := m - mean
		ss += d * d
	}
	s := math.Sqrt(ss / float64(n-1))
	return tQuantile95(n-1) * s / math.Sqrt(float64(n))
}

// tQuantile95 returns the two-sided 95% Student-t quantile for df degrees
// of freedom (df >= 1), falling back to the normal quantile for large df.
func tQuantile95(df int) float64 {
	table := []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	}
	if df < 1 {
		return table[0]
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}
