// Package harness runs the paper's experiments: it builds networks from
// declarative specs, applies the warm-up / measurement / drain methodology,
// normalizes throughput against network capacity, and renders the resulting
// curves as tables and CSV. The canned specs in figures.go correspond
// one-to-one to the paper's figures.
package harness

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// AlgSpec describes one curve of an experiment: a routing algorithm with
// its selection function and recovery settings.
type AlgSpec struct {
	// Label names the curve; defaults to the algorithm name.
	Label     string
	Algorithm routing.Algorithm
	// Selection defaults to random (the paper simulates Dally & Aoki with
	// minimum-congestion and everything else with random selection).
	Selection routing.Selection
	// Recovery enables time-out detection, the Token and the Deadlock
	// Buffer. It must be true for Disha and false for avoidance schemes.
	Recovery bool
	// Timeout is T_out in cycles when Recovery is on (default 8).
	Timeout sim.Cycle
}

func (a AlgSpec) label() string {
	if a.Label != "" {
		return a.Label
	}
	return a.Algorithm.Name()
}

// Spec is a declarative experiment: a topology, a traffic pattern, a set of
// algorithm curves and a load sweep.
type Spec struct {
	Name string
	// Topo builds the network graph (fresh per run for safety). Any
	// topology.Graph works; coordinate-dependent patterns and algorithms
	// additionally need it to implement topology.Topology.
	Topo func() topology.Graph
	// Pattern builds the workload for the topology.
	Pattern func(topology.Graph) (traffic.Pattern, error)
	Algs    []AlgSpec
	// Loads are the offered load rates swept (fraction of capacity).
	Loads  []float64
	MsgLen int
	// Router parameters shared by all curves (Timeout and
	// DeadlockBufferDepth are controlled per AlgSpec).
	VCs, BufferDepth int
	Alloc            router.AllocPolicy
	// Warmup cycles run before measurement; Measure cycles are observed.
	Warmup, Measure int
	Seed            uint64
	TokenHops       int
	// WFGSampleEvery, when positive, runs the wait-for-graph analyzer every
	// that many cycles during measurement and records true-deadlock
	// statistics (used for the deadlock characterization experiment).
	WFGSampleEvery int
	// Batches splits the measurement window for batch-means confidence
	// intervals on the latency estimate (default 5; 1 disables).
	Batches int
	// Replicas runs every (algorithm, load) point this many times with
	// independent seeds and aggregates the replicas into mean ± 95% CI
	// (default 1). RunOptions.Replicas overrides it.
	Replicas int
	// Shards configures the intra-simulation parallel kernel: each run's
	// Step fans its router-local phases out across this many shards.
	// Results are byte-identical to serial (0/1); it composes with the
	// engine's across-point parallelism, so keep Shards*Parallelism within
	// the host's core count.
	Shards int
	// DisableActiveSet forces every run's kernel to visit all routers every
	// cycle instead of only the active set. Byte-identical either way; the
	// full scan is only useful as a benchmarking baseline.
	DisableActiveSet bool
	// Chaos, when non-empty, arms this reconfiguration event schedule on
	// every point's network (and re-arms it after a checkpoint resume —
	// already-applied events replay from the snapshot's reconfiguration log
	// and are dropped on arming). Event cycles are global: warm-up plus
	// measurement. The schedule participates in PointKey, so journal and
	// cache entries never leak between chaos and chaos-free sweeps.
	Chaos []network.ReconfigEvent
}

// PointResult is the measurement of one (algorithm, load) pair. With
// replication it is the across-replica aggregate: means ± 95% CI for the
// rate metrics, sums for the event counters.
type PointResult struct {
	Load           float64
	MeanLatency    float64 // creation -> delivery, cycles
	LatencyCI95    float64 // 95% CI halfwidth on MeanLatency: batch-means for a single run, across replicas otherwise
	MeanNetLatency float64 // injection -> delivery, cycles
	P95Latency     float64
	Delivered      int64
	Offered        int64
	Throughput     float64 // normalized accepted traffic, fraction of capacity
	ThroughputCI95 float64 // across-replica 95% CI halfwidth (0 for a single run)
	TokenSeizures  int64   // during measurement
	SeizureRatio   float64 // seizures / delivered (Figure 3a's y-axis)
	TimeoutEvents  int64
	TrueDeadlocks  int64 // WFG-sampled deadlocked configurations (if enabled)
	WFGSamples     int64
	MisrouteHops   int64
	PacketsLost    int64 // dropped by chaos reconfiguration events in-window
	Replicas       int   // independent runs aggregated into this point (>= 1)
}

// Result bundles an experiment's curves.
type Result struct {
	Spec   *Spec
	Series []metrics.Series
	Points map[string][]PointResult // keyed by curve label
}

// RunOptions controls how the experiment engine executes a Spec.
type RunOptions struct {
	// Parallel is the worker count; 0 means GOMAXPROCS, 1 forces a serial
	// run. Thanks to identity-keyed seeding the results are bit-identical
	// for every value.
	Parallel int
	// Replicas overrides Spec.Replicas when positive.
	Replicas int
	// Retries is how many extra attempts a failing point gets.
	Retries int
	// Journal, when non-empty, checkpoints completed points to this JSONL
	// file; Resume replays it so a killed sweep restarts where it left off.
	Journal string
	Resume  bool
	// CheckpointEvery, when positive and CheckpointDir is set, snapshots
	// every in-progress point's complete simulation state each time that
	// many cycles (warm-up plus measurement) elapse. A killed sweep then
	// resumes mid-point from the last checkpoint — not just at point
	// granularity like the journal — and the resumed run's results are
	// byte-identical to an uninterrupted one. Checkpoint files are removed
	// as their points complete.
	CheckpointEvery int
	// CheckpointDir is the directory holding per-point checkpoint files
	// (created if missing). Point identity is embedded in each file, so a
	// directory can safely be shared across different sweeps.
	CheckpointDir string
	// Progress, if non-nil, receives one line per settled point.
	Progress func(string)
	// PointRunner, if non-nil, intercepts every point's execution: instead
	// of simulating in-process the engine hands the task (plus a local
	// fallback closure) to this function, which may execute it anywhere — a
	// remote fleet worker, a shared result cache — as long as it returns the
	// value the local closure would. Determinism is preserved because the
	// task carries the engine-derived seed: any executor computing the same
	// pure function of (spec, alg, load, seed) returns identical bytes.
	PointRunner func(t PointTask, local func() (PointResult, error)) (PointResult, error)
	// Stop, if non-nil, drains the sweep when closed: in-flight points
	// finish (and are journaled), undispatched points are aborted (see
	// engine.Config.Stop).
	Stop <-chan struct{}
	// Status, if non-nil, receives the engine's structured progress
	// (done/total, ETA) after every settled point.
	Status func(engine.Status)
	// Metrics, if non-nil, exports live progress through its telemetry
	// registry (see engine.NewMetrics).
	Metrics *engine.Metrics
}

// Run executes the experiment across all available cores. progress, if
// non-nil, receives one line per completed point (in completion order; the
// results themselves are deterministic regardless of parallelism).
func (s *Spec) Run(progress func(string)) (*Result, error) {
	res, _, err := s.RunWith(RunOptions{Progress: progress})
	return res, err
}

// pointJob identifies one engine job of this spec.
type pointJob struct {
	alg     AlgSpec
	load    float64
	replica int
}

// PointTask is the portable identity of one engine point job, handed to
// RunOptions.PointRunner. Key and Seed pin the result bytes; Alg, Load and
// Replica let a remote executor rebuild the task from the spec.
type PointTask struct {
	Key     string
	Seed    uint64
	Alg     string
	Load    float64
	Replica int
}

// RunWith executes the experiment through the engine. On point failures it
// returns the partial Result (every fully-replicated point that did
// complete), the engine report naming the failed jobs, and a non-nil error.
func (s *Spec) RunWith(opts RunOptions) (*Result, *engine.Report, error) {
	if err := s.normalize(); err != nil {
		return nil, nil, err
	}
	if opts.CheckpointEvery > 0 && opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("harness: checkpoint dir: %w", err)
		}
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = s.Replicas
	}
	if replicas <= 0 {
		replicas = 1
	}

	meta := make(map[string]pointJob)
	var jobs []engine.Job[PointResult]
	for _, alg := range s.Algs {
		alg := alg
		for _, load := range s.Loads {
			load := load
			for r := 0; r < replicas; r++ {
				r := r
				key := s.PointKey(alg.label(), load, r)
				meta[key] = pointJob{alg: alg, load: load, replica: r}
				ck := newCheckpointer(opts, key)
				jobs = append(jobs, engine.Job[PointResult]{
					Key: key,
					Run: func(seed uint64) (PointResult, error) {
						local := func() (PointResult, error) {
							return s.runPoint(alg, load, seed, ck)
						}
						if opts.PointRunner != nil {
							return opts.PointRunner(PointTask{
								Key: key, Seed: seed, Alg: alg.label(), Load: load, Replica: r,
							}, local)
						}
						return local()
					},
				})
			}
		}
	}

	results, report, err := engine.Run(engine.Config[PointResult]{
		Workers: opts.Parallel,
		Seed:    s.Seed,
		Retries: opts.Retries,
		Journal: opts.Journal,
		Resume:  opts.Resume,
		Metrics: opts.Metrics,
		Stop:    opts.Stop,
		OnDone: func(st engine.Status, jr engine.JobResult[PointResult]) {
			if opts.Progress != nil {
				pj := meta[jr.Key]
				line := fmt.Sprintf("[%3d/%3d] %-22s load=%.2f", st.Done+st.Failed, st.Total, pj.alg.label(), pj.load)
				if replicas > 1 {
					line += fmt.Sprintf(" rep=%d", pj.replica)
				}
				switch {
				case jr.Err != "":
					line += " FAILED: " + firstLine(jr.Err)
				case jr.FromJournal:
					line += " (from journal)"
				default:
					line += fmt.Sprintf(" latency=%8.1f thpt=%.3f seiz=%d",
						jr.Value.MeanLatency, jr.Value.Throughput, jr.Value.TokenSeizures)
				}
				if st.ETA > 0 {
					line += fmt.Sprintf(" eta=%s", st.ETA.Round(1e9))
				}
				opts.Progress(line)
			}
			if opts.Status != nil {
				opts.Status(st)
			}
		},
	}, jobs)
	if err != nil {
		return nil, nil, err
	}

	// Assemble in spec order — never completion order — so parallel runs
	// render byte-identical tables and CSV.
	res := &Result{Spec: s, Points: make(map[string][]PointResult)}
	for _, alg := range s.Algs {
		series := metrics.Series{Label: alg.label()}
		for _, load := range s.Loads {
			reps := make([]PointResult, 0, replicas)
			complete := true
			for r := 0; r < replicas; r++ {
				key := s.PointKey(alg.label(), load, r)
				pr, ok := results[key]
				if !ok {
					complete = false
					break
				}
				reps = append(reps, pr)
			}
			if !complete {
				continue // failed point: reported via the engine report
			}
			pr := aggregateReplicas(load, reps)
			res.Points[alg.label()] = append(res.Points[alg.label()], pr)
			deadlockRate := 0.0
			if pr.WFGSamples > 0 {
				deadlockRate = float64(pr.TrueDeadlocks) / float64(pr.WFGSamples)
			}
			series.Append(metrics.Point{
				X:          pr.Load,
				Latency:    pr.MeanLatency,
				Throughput: pr.Throughput,
				Extra: map[string]float64{
					"seizure_ratio":      pr.SeizureRatio,
					"net_latency":        pr.MeanNetLatency,
					"p95":                pr.P95Latency,
					"latency_ci95":       pr.LatencyCI95,
					"throughput_ci95":    pr.ThroughputCI95,
					"true_deadlock_rate": deadlockRate,
				},
			})
		}
		res.Series = append(res.Series, series)
	}
	if report.Failed() > 0 {
		f := report.Failures[0]
		return res, report, fmt.Errorf("harness: %d/%d points failed (first: %s: %s)",
			report.Failed(), report.Total, f.Key, firstLine(f.Err))
	}
	return res, report, nil
}

// PointKey derives the engine job key of one (algorithm, load, replica)
// point. The key pins the full identity of the point — spec configuration
// included, so a journal cannot leak results across different scales or
// seeds of the same figure — and via engine.SeedFor it also pins the
// point's random stream. Remote executors use it as the content fingerprint
// input: two points with equal keys (and equal base seeds) are guaranteed
// to produce identical result bytes.
func (s *Spec) PointKey(algLabel string, load float64, replica int) string {
	cfgTag := fmt.Sprintf("%s|seed=%x|w=%d|m=%d|msg=%d|vc=%d|bd=%d",
		s.Name, s.Seed, s.Warmup, s.Measure, s.MsgLen, s.VCs, s.BufferDepth)
	if len(s.Chaos) > 0 {
		h := fnv.New64a()
		for _, ev := range s.Chaos {
			fmt.Fprintf(h, "%d|%d|%d|%d|%s;", ev.Cycle, ev.Kind, ev.Node, ev.Port, ev.Alg)
		}
		cfgTag += fmt.Sprintf("|chaos=%x", h.Sum64())
	}
	return fmt.Sprintf("%s/%s@%.4f#%d", cfgTag, algLabel, load, replica)
}

// PointOptions configures a single RunPoint execution (the fleet worker
// path). All fields are optional; the zero value runs the point without
// checkpointing.
type PointOptions struct {
	// Key is the engine job key of the point (Spec.PointKey). It names and
	// validates the checkpoint file, so it is required when checkpointing.
	Key string
	// CheckpointEvery/CheckpointDir enable mid-point checkpointing exactly
	// as in RunOptions: the point's full simulation state is persisted every
	// CheckpointEvery cycles, and an existing checkpoint for Key is resumed.
	CheckpointEvery int
	CheckpointDir   string
	// OnCheckpoint, if non-nil, receives the sealed checkpoint bytes after
	// every successful save — the hook a fleet worker uses to stream its
	// progress blob to the coordinator. A non-nil return aborts the point.
	OnCheckpoint func(data []byte) error
}

// RunPoint executes one (algorithm, load) point with an explicit seed and
// returns its measurement. It is the remote half of RunOptions.PointRunner:
// a fleet worker receives (alg label, load, seed) from the coordinator and
// computes here exactly what the coordinator's local fallback would, so the
// result bytes are identical wherever the point runs. The algorithm is
// selected by its curve label within this spec.
func (s *Spec) RunPoint(algLabel string, load float64, seed uint64, po PointOptions) (PointResult, error) {
	if err := s.normalize(); err != nil {
		return PointResult{}, err
	}
	var alg *AlgSpec
	for i := range s.Algs {
		if s.Algs[i].label() == algLabel {
			alg = &s.Algs[i]
			break
		}
	}
	if alg == nil {
		return PointResult{}, fmt.Errorf("harness: spec %q has no curve %q", s.Name, algLabel)
	}
	var ck *checkpointer
	if po.CheckpointEvery > 0 && po.CheckpointDir != "" {
		if po.Key == "" {
			return PointResult{}, fmt.Errorf("harness: RunPoint checkpointing requires PointOptions.Key")
		}
		if err := os.MkdirAll(po.CheckpointDir, 0o755); err != nil {
			return PointResult{}, fmt.Errorf("harness: checkpoint dir: %w", err)
		}
		ck = newCheckpointer(RunOptions{CheckpointEvery: po.CheckpointEvery, CheckpointDir: po.CheckpointDir}, po.Key)
		ck.onSave = po.OnCheckpoint
	}
	return s.runPoint(*alg, load, seed, ck)
}

// aggregateReplicas folds N independent runs of one point into means ± 95%
// CI (rates) and sums (event counters).
func aggregateReplicas(load float64, reps []PointResult) PointResult {
	if len(reps) == 1 {
		pr := reps[0]
		pr.Replicas = 1
		return pr
	}
	n := len(reps)
	lat := make([]float64, n)
	netLat := make([]float64, n)
	p95 := make([]float64, n)
	thpt := make([]float64, n)
	agg := PointResult{Load: load, Replicas: n}
	for i, r := range reps {
		lat[i], netLat[i], p95[i], thpt[i] = r.MeanLatency, r.MeanNetLatency, r.P95Latency, r.Throughput
		agg.Delivered += r.Delivered
		agg.Offered += r.Offered
		agg.TokenSeizures += r.TokenSeizures
		agg.TimeoutEvents += r.TimeoutEvents
		agg.TrueDeadlocks += r.TrueDeadlocks
		agg.WFGSamples += r.WFGSamples
		agg.MisrouteHops += r.MisrouteHops
		agg.PacketsLost += r.PacketsLost
	}
	agg.MeanLatency = metrics.Mean(lat)
	agg.LatencyCI95 = metrics.CI95(lat)
	agg.MeanNetLatency = metrics.Mean(netLat)
	agg.P95Latency = metrics.Mean(p95)
	agg.Throughput = metrics.Mean(thpt)
	agg.ThroughputCI95 = metrics.CI95(thpt)
	if agg.Delivered > 0 {
		agg.SeizureRatio = float64(agg.TokenSeizures) / float64(agg.Delivered)
	}
	return agg
}

// firstLine truncates multi-line errors (panic stacks) for progress output.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Normalize fills the spec's defaulted fields (message length, VCs, buffer
// depth, cycle counts, ...) exactly as RunWith does before deriving job
// keys. Remote executors must call it before PointKey so their keys match
// the coordinator's byte for byte.
func (s *Spec) Normalize() error { return s.normalize() }

func (s *Spec) normalize() error {
	if s.Topo == nil || s.Pattern == nil || len(s.Algs) == 0 || len(s.Loads) == 0 {
		return fmt.Errorf("harness: spec %q incomplete", s.Name)
	}
	if s.MsgLen == 0 {
		s.MsgLen = 32
	}
	if s.VCs == 0 {
		s.VCs = 4
	}
	if s.BufferDepth == 0 {
		s.BufferDepth = 2
	}
	if s.Warmup == 0 {
		s.Warmup = 2000
	}
	if s.Measure == 0 {
		s.Measure = 6000
	}
	if s.TokenHops == 0 {
		s.TokenHops = 4
	}
	if s.Batches == 0 {
		s.Batches = 5
	}
	if s.Batches < 1 {
		return fmt.Errorf("harness: batches %d < 1", s.Batches)
	}
	return nil
}

// runPoint measures one (algorithm, load) pair with the given simulation
// seed. It is called concurrently by engine workers: everything it touches
// (topology, pattern, network) is built fresh per call, and the stateless
// algorithm/selection values are safe to share.
//
// A non-nil checkpointer makes the point resumable: progress is persisted
// every CheckpointEvery cycles, a previous checkpoint (if present) is loaded
// before the first step, and because the simulation is deterministic the
// resumed point finishes with results byte-identical to an uninterrupted run
// (TestCheckpointResumeIdenticalCSV).
func (s *Spec) runPoint(alg AlgSpec, load float64, seed uint64, ck *checkpointer) (PointResult, error) {
	topo := s.Topo()
	pattern, err := s.Pattern(topo)
	if err != nil {
		return PointResult{}, err
	}
	rc := router.Default()
	rc.VCs = s.VCs
	rc.BufferDepth = s.BufferDepth
	rc.Alloc = s.Alloc
	if alg.Recovery {
		rc.Timeout = alg.Timeout
		if rc.Timeout == 0 {
			rc.Timeout = 8
		}
		rc.DeadlockBufferDepth = 1
	} else {
		rc.Timeout = 0
		rc.DeadlockBufferDepth = 0
	}
	net, err := network.New(network.Config{
		Topo:              topo,
		Router:            rc,
		Algorithm:         alg.Algorithm,
		Selection:         alg.Selection,
		Pattern:           pattern,
		LoadRate:          load,
		MsgLen:            s.MsgLen,
		Seed:              seed,
		TokenHopsPerCycle: s.TokenHops,
		Kernel:            network.KernelConfig{Shards: s.Shards, DisableActiveSet: s.DisableActiveSet},
	})
	if err != nil {
		return PointResult{}, err
	}
	defer net.Close()

	// The resumable cursor: a fresh start begins at zero everywhere; with
	// checkpointing enabled, a prior checkpoint reloads the cursor, the
	// collectors and the network, and the loops below continue from it.
	var age, netLat, batch metrics.Collector
	st := pointProgress{nextWFG: s.WFGSampleEvery}
	if ck != nil {
		if _, err := ck.load(&st, &age, &netLat, &batch, net); err != nil {
			return PointResult{}, err
		}
		ck.arm(st.warmupRan + st.ran)
	}
	// Arm the chaos schedule after any restore: events already applied were
	// replayed from the snapshot's reconfiguration log, and ScheduleReconfig
	// drops them as stale, so a resumed point replays the remaining
	// timeline exactly.
	if len(s.Chaos) > 0 {
		if err := net.ScheduleReconfig(s.Chaos); err != nil {
			return PointResult{}, err
		}
	}

	// Warm-up: run without collecting.
	for st.warmupRan < s.Warmup {
		step := s.Warmup - st.warmupRan
		if ck != nil {
			step = ck.clamp(step, st.warmupRan+st.ran)
		}
		net.Run(step)
		st.warmupRan += step
		if ck != nil && ck.due(st.warmupRan+st.ran) {
			if err := ck.save(&st, &age, &netLat, &batch, net); err != nil {
				return PointResult{}, err
			}
		}
	}
	if !st.warmed {
		st.warmed = true
		st.startCounters = net.Counters()
	}

	// Measurement: collect latency of every packet delivered in-window,
	// batched for the confidence interval. (The callback is reattached on
	// every entry — restore does not carry it — so a resumed point collects
	// exactly the deliveries an uninterrupted run would.)
	net.OnDeliver = func(p *packet.Packet) {
		age.Add(float64(p.Age()))
		netLat.Add(float64(p.NetworkLatency()))
		batch.Add(float64(p.Age()))
	}
	pr := PointResult{Load: load}
	for b := st.batch; b < s.Batches; b++ {
		st.batch = b
		target := (b + 1) * s.Measure / s.Batches
		for st.ran < target {
			step := target - st.ran
			if s.WFGSampleEvery > 0 && st.nextWFG-st.ran < step {
				step = st.nextWFG - st.ran
			}
			if ck != nil {
				step = ck.clamp(step, st.warmupRan+st.ran)
			}
			net.Run(step)
			st.ran += step
			if s.WFGSampleEvery > 0 && st.ran >= st.nextWFG {
				w := core.AnalyzeWFG(net.Routers())
				st.wfgSamples++
				if w.TrueDeadlock() {
					st.trueDeadlocks++
				}
				st.nextWFG += s.WFGSampleEvery
			}
			if ck != nil && ck.due(st.warmupRan+st.ran) {
				if err := ck.save(&st, &age, &netLat, &batch, net); err != nil {
					return PointResult{}, err
				}
			}
		}
		if batch.Count() > 0 {
			st.batchMeans = append(st.batchMeans, batch.Mean())
		}
		batch.Reset()
	}
	pr.WFGSamples = st.wfgSamples
	pr.TrueDeadlocks = st.trueDeadlocks
	pr.LatencyCI95 = metrics.CI95(st.batchMeans)
	end := net.Counters()

	if ck != nil {
		ck.finish()
	}
	startCounters := st.startCounters
	delivered := end.PacketsDelivered - startCounters.PacketsDelivered
	flits := end.FlitsDelivered - startCounters.FlitsDelivered
	pr.Delivered = delivered
	pr.Offered = end.PacketsOffered - startCounters.PacketsOffered
	pr.MeanLatency = age.Mean()
	pr.MeanNetLatency = netLat.Mean()
	pr.P95Latency = age.Percentile(95)
	pr.TokenSeizures = end.TokenSeizures - startCounters.TokenSeizures
	pr.TimeoutEvents = end.TimeoutEvents - startCounters.TimeoutEvents
	pr.MisrouteHops = end.MisrouteHops - startCounters.MisrouteHops
	pr.PacketsLost = end.PacketsLost - startCounters.PacketsLost
	if delivered > 0 {
		pr.SeizureRatio = float64(pr.TokenSeizures) / float64(delivered)
	}

	// Normalized accepted traffic: flits/node/cycle over the network's
	// capacity (the load normalization of Section 4.1 in reverse).
	ms := traffic.MeasureMean(topo, pattern, 64)
	capacityFPC := float64(traffic.TotalChannels(topo)) / (float64(topo.Nodes()) * ms.MeanDistance)
	accepted := float64(flits) / (float64(s.Measure) * float64(topo.Nodes()))
	pr.Throughput = accepted / capacityFPC
	return pr, nil
}

// --- Rendering -----------------------------------------------------------------

// LatencyTable renders mean latency vs load, one column per curve.
func (r *Result) LatencyTable() string {
	return r.table("latency (cycles)", func(p PointResult) float64 { return p.MeanLatency }, "%10.1f")
}

// ThroughputTable renders normalized accepted traffic vs load.
func (r *Result) ThroughputTable() string {
	return r.table("throughput (fraction of capacity)", func(p PointResult) float64 { return p.Throughput }, "%10.3f")
}

// SeizureTable renders token seizures normalized by delivered packets.
func (r *Result) SeizureTable() string {
	return r.table("token seizures / delivered packet", func(p PointResult) float64 { return p.SeizureRatio }, "%10.5f")
}

func (r *Result) table(title string, f func(PointResult) float64, cellFmt string) string {
	labels := make([]string, 0, len(r.Points))
	for l := range r.Points {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", r.Spec.Name, title)
	fmt.Fprintf(&sb, "%6s", "load")
	for _, l := range labels {
		fmt.Fprintf(&sb, " %20s", l)
	}
	sb.WriteString("\n")
	for i, load := range r.Spec.Loads {
		fmt.Fprintf(&sb, "%6.2f", load)
		for _, l := range labels {
			pts := r.Points[l]
			if i < len(pts) {
				fmt.Fprintf(&sb, " %20s", fmt.Sprintf(cellFmt, f(pts[i])))
			} else {
				fmt.Fprintf(&sb, " %20s", "-")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders every curve's points as CSV (one block per curve).
func (r *Result) CSV() string {
	var sb strings.Builder
	for _, s := range r.Series {
		sb.WriteString(s.CSV())
	}
	return sb.String()
}

// SaturationSummary reports each curve's saturation load (latency > 3x
// zero-load) and peak throughput — the numbers the paper quotes in prose.
func (r *Result) SaturationSummary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — saturation summary\n", r.Spec.Name)
	fmt.Fprintf(&sb, "%-22s %12s %12s\n", "curve", "saturation", "peak-thpt")
	for _, s := range r.Series {
		fmt.Fprintf(&sb, "%-22s %12.2f %12.3f\n", s.Label, s.SaturationLoad(3), s.PeakThroughput())
	}
	return sb.String()
}
