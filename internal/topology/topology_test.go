package topology

import (
	"testing"
	"testing/quick"
)

func TestPortHelpers(t *testing.T) {
	cases := []struct {
		port, dim, sign int
	}{
		{0, 0, 1}, {1, 0, -1}, {2, 1, 1}, {3, 1, -1}, {6, 3, 1}, {7, 3, -1},
	}
	for _, c := range cases {
		if PortDim(c.port) != c.dim {
			t.Errorf("PortDim(%d) = %d, want %d", c.port, PortDim(c.port), c.dim)
		}
		if PortSign(c.port) != c.sign {
			t.Errorf("PortSign(%d) = %d, want %d", c.port, PortSign(c.port), c.sign)
		}
		if PortFor(c.dim, c.sign) != c.port {
			t.Errorf("PortFor(%d,%d) = %d, want %d", c.dim, c.sign, PortFor(c.dim, c.sign), c.port)
		}
		if ReversePort(ReversePort(c.port)) != c.port {
			t.Errorf("ReversePort not an involution at %d", c.port)
		}
		if PortDim(ReversePort(c.port)) != c.dim || PortSign(ReversePort(c.port)) != -c.sign {
			t.Errorf("ReversePort(%d) wrong direction", c.port)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewTorus(); err == nil {
		t.Error("NewTorus() with no dims should fail")
	}
	if _, err := NewTorus(1); err == nil {
		t.Error("radix 1 should fail")
	}
	if _, err := NewMesh(4, 0); err == nil {
		t.Error("radix 0 should fail")
	}
	if _, err := NewTorus(16, 16); err != nil {
		t.Errorf("16x16 torus failed: %v", err)
	}
}

func TestBasicProperties(t *testing.T) {
	tor := MustTorus(4, 3)
	if tor.Nodes() != 12 || tor.Dims() != 2 || tor.Degree() != 4 {
		t.Fatalf("torus-4x3 basic properties wrong: %d nodes, %d dims, %d degree",
			tor.Nodes(), tor.Dims(), tor.Degree())
	}
	if tor.Radix(0) != 4 || tor.Radix(1) != 3 {
		t.Fatal("radix accessors wrong")
	}
	if !tor.Wrap() {
		t.Fatal("torus must wrap")
	}
	if tor.Name() != "torus-4x3" {
		t.Fatalf("name %q", tor.Name())
	}
	msh := MustMesh(5)
	if msh.Wrap() || msh.Name() != "mesh-5" {
		t.Fatalf("mesh properties wrong: %q wrap=%v", msh.Name(), msh.Wrap())
	}
}

func TestCoordRoundTrip(t *testing.T) {
	for _, topo := range []Topology{MustTorus(4, 5, 3), MustMesh(7, 2)} {
		for n := 0; n < topo.Nodes(); n++ {
			co := topo.Coord(Node(n))
			if got := topo.NodeAt(co); got != Node(n) {
				t.Fatalf("%s: NodeAt(Coord(%d)) = %d", topo.Name(), n, got)
			}
			for d := 0; d < topo.Dims(); d++ {
				if co[d] < 0 || co[d] >= topo.Radix(d) {
					t.Fatalf("%s: coord %v out of range", topo.Name(), co)
				}
			}
		}
	}
}

func TestTorusNeighbors(t *testing.T) {
	tor := MustTorus(4, 4)
	// Node (0,0): +X -> (1,0), -X -> (3,0) (wrap), +Y -> (0,1), -Y -> (0,3).
	n00 := tor.NodeAt(Coord{0, 0})
	want := map[int]Coord{
		0: {1, 0}, 1: {3, 0}, 2: {0, 1}, 3: {0, 3},
	}
	for port, co := range want {
		nb, ok := tor.Neighbor(n00, port)
		if !ok {
			t.Fatalf("torus port %d missing", port)
		}
		if !tor.Coord(nb).Equal(co) {
			t.Errorf("port %d: got %v, want %v", port, tor.Coord(nb), co)
		}
	}
}

func TestMeshBoundary(t *testing.T) {
	msh := MustMesh(4, 4)
	corner := msh.NodeAt(Coord{0, 0})
	if _, ok := msh.Neighbor(corner, 1); ok {
		t.Error("mesh corner has a -X neighbor")
	}
	if _, ok := msh.Neighbor(corner, 3); ok {
		t.Error("mesh corner has a -Y neighbor")
	}
	if nb, ok := msh.Neighbor(corner, 0); !ok || !msh.Coord(nb).Equal(Coord{1, 0}) {
		t.Error("mesh corner +X neighbor wrong")
	}
	far := msh.NodeAt(Coord{3, 3})
	if _, ok := msh.Neighbor(far, 0); ok {
		t.Error("mesh far corner has a +X neighbor")
	}
}

// Property: traversing a port and then its reverse returns to the origin.
func TestNeighborReverseProperty(t *testing.T) {
	topos := []Topology{MustTorus(4, 4), MustTorus(5, 3), MustMesh(4, 4), MustTorus(3, 3, 3)}
	for _, topo := range topos {
		for n := 0; n < topo.Nodes(); n++ {
			for p := 0; p < topo.Degree(); p++ {
				nb, ok := topo.Neighbor(Node(n), p)
				if !ok {
					continue
				}
				back, ok := topo.Neighbor(nb, ReversePort(p))
				if !ok || back != Node(n) {
					t.Fatalf("%s: node %d port %d does not reverse (got %d, ok=%v)",
						topo.Name(), n, p, back, ok)
				}
			}
		}
	}
}

func TestDistanceTorus(t *testing.T) {
	tor := MustTorus(16, 16)
	a := tor.NodeAt(Coord{0, 0})
	cases := []struct {
		to   Coord
		want int
	}{
		{Coord{0, 0}, 0},
		{Coord{1, 0}, 1},
		{Coord{15, 0}, 1}, // wrap
		{Coord{8, 0}, 8},  // half ring
		{Coord{9, 0}, 7},  // wrap shorter
		{Coord{5, 7}, 12},
		{Coord{12, 12}, 8}, // 4 + 4 via wrap
	}
	for _, c := range cases {
		if got := tor.Distance(a, tor.NodeAt(c.to)); got != c.want {
			t.Errorf("Distance((0,0),%v) = %d, want %d", c.to, got, c.want)
		}
	}
}

func TestDistanceMesh(t *testing.T) {
	msh := MustMesh(16, 16)
	a := msh.NodeAt(Coord{0, 0})
	if got := msh.Distance(a, msh.NodeAt(Coord{15, 15})); got != 30 {
		t.Errorf("mesh corner distance = %d, want 30", got)
	}
	if got := msh.Distance(a, msh.NodeAt(Coord{15, 0})); got != 15 {
		t.Errorf("mesh edge distance = %d, want 15", got)
	}
}

// Property tests on random tori: distance axioms and minimal-port coherence.
func TestDistanceAxiomsProperty(t *testing.T) {
	f := func(kRaw, aRaw, bRaw, cRaw uint16) bool {
		k := int(kRaw%7) + 2 // radix 2..8
		tor := MustTorus(k, k)
		a := Node(int(aRaw) % tor.Nodes())
		b := Node(int(bRaw) % tor.Nodes())
		c := Node(int(cRaw) % tor.Nodes())
		dab, dba := tor.Distance(a, b), tor.Distance(b, a)
		if dab != dba { // symmetry
			return false
		}
		if (dab == 0) != (a == b) { // identity
			return false
		}
		// triangle inequality
		return tor.Distance(a, c) <= dab+tor.Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every minimal port decreases distance by exactly one, and at
// least one minimal port exists whenever from != to; non-minimal ports never
// decrease distance.
func TestMinimalPortsProperty(t *testing.T) {
	f := func(kRaw, fromRaw, toRaw uint16, mesh bool) bool {
		k := int(kRaw%7) + 2
		var topo Topology
		if mesh {
			topo = MustMesh(k, k)
		} else {
			topo = MustTorus(k, k)
		}
		from := Node(int(fromRaw) % topo.Nodes())
		to := Node(int(toRaw) % topo.Nodes())
		min := topo.MinimalPorts(from, to)
		if from == to {
			return len(min) == 0
		}
		if len(min) == 0 {
			return false
		}
		isMin := map[int]bool{}
		for _, p := range min {
			isMin[p] = true
			nb, ok := topo.Neighbor(from, p)
			if !ok {
				return false
			}
			if topo.Distance(nb, to) != topo.Distance(from, to)-1 {
				return false
			}
		}
		for p := 0; p < topo.Degree(); p++ {
			if isMin[p] {
				continue
			}
			nb, ok := topo.Neighbor(from, p)
			if !ok {
				continue
			}
			if topo.Distance(nb, to) < topo.Distance(from, to) {
				return false // a profitable port was not reported minimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEquidistantRingBothDirectionsMinimal(t *testing.T) {
	tor := MustTorus(4)
	a, b := tor.NodeAt(Coord{0}), tor.NodeAt(Coord{2})
	ports := tor.MinimalPorts(a, b)
	if len(ports) != 2 {
		t.Fatalf("half-ring offset should have 2 minimal ports, got %v", ports)
	}
}

func TestDateline(t *testing.T) {
	tor := MustTorus(4, 4)
	if !tor.CrossesDateline(tor.NodeAt(Coord{3, 0}), 0) {
		t.Error("+X from x=3 should cross dateline")
	}
	if tor.CrossesDateline(tor.NodeAt(Coord{2, 0}), 0) {
		t.Error("+X from x=2 should not cross dateline")
	}
	if !tor.CrossesDateline(tor.NodeAt(Coord{0, 1}), 1) {
		t.Error("-X from x=0 should cross dateline")
	}
	if !tor.CrossesDateline(tor.NodeAt(Coord{1, 3}), 2) {
		t.Error("+Y from y=3 should cross dateline")
	}
	msh := MustMesh(4, 4)
	for n := 0; n < msh.Nodes(); n++ {
		for p := 0; p < msh.Degree(); p++ {
			if msh.CrossesDateline(Node(n), p) {
				t.Fatal("mesh must have no datelines")
			}
		}
	}
}

// Every dateline-free cycle check: following +X around a ring crosses the
// dateline exactly once.
func TestDatelineOncePerRing(t *testing.T) {
	tor := MustTorus(6, 3)
	n := tor.NodeAt(Coord{0, 0})
	crossings := 0
	cur := n
	for i := 0; i < 6; i++ {
		if tor.CrossesDateline(cur, 0) {
			crossings++
		}
		cur, _ = tor.Neighbor(cur, 0)
	}
	if cur != n || crossings != 1 {
		t.Fatalf("ring walk ended at %d with %d crossings", cur, crossings)
	}
}

func TestHamiltonianOrder(t *testing.T) {
	for _, topo := range []Topology{MustTorus(4, 4), MustMesh(5, 3), MustTorus(3, 3, 3), MustTorus(16, 16)} {
		order := topo.HamiltonianOrder()
		if len(order) != topo.Nodes() {
			t.Fatalf("%s: order has %d entries", topo.Name(), len(order))
		}
		seen := make([]bool, topo.Nodes())
		for _, n := range order {
			if seen[n] {
				t.Fatalf("%s: node %d visited twice", topo.Name(), n)
			}
			seen[n] = true
		}
		// Consecutive entries must be physical neighbors (distance 1).
		for i := 1; i < len(order); i++ {
			if topo.Distance(order[i-1], order[i]) != 1 {
				t.Fatalf("%s: order[%d]=%d and order[%d]=%d are not adjacent",
					topo.Name(), i-1, order[i-1], i, order[i])
			}
		}
	}
}

func TestHamiltonianOrderIsCopied(t *testing.T) {
	topo := MustTorus(4, 4)
	a := topo.HamiltonianOrder()
	a[0] = Node(99)
	b := topo.HamiltonianOrder()
	if b[0] == Node(99) {
		t.Fatal("HamiltonianOrder aliases internal state")
	}
}

func TestCoordHelpers(t *testing.T) {
	c := Coord{1, 2, 3}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Fatal("Clone aliases")
	}
	if !c.Equal(Coord{1, 2, 3}) || c.Equal(Coord{1, 2}) || c.Equal(Coord{1, 2, 4}) {
		t.Fatal("Equal wrong")
	}
	if c.String() != "(1,2,3)" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestNodeAtPanics(t *testing.T) {
	topo := MustTorus(4, 4)
	for _, co := range []Coord{{1}, {4, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeAt(%v) did not panic", co)
				}
			}()
			topo.NodeAt(co)
		}()
	}
}

func TestNeighborInvalidPort(t *testing.T) {
	topo := MustTorus(4, 4)
	if _, ok := topo.Neighbor(0, 4); ok {
		t.Error("port beyond degree should be invalid")
	}
	if _, ok := topo.Neighbor(0, -1); ok {
		t.Error("negative port should be invalid")
	}
}

func BenchmarkMinimalPorts(b *testing.B) {
	tor := MustTorus(16, 16)
	for i := 0; i < b.N; i++ {
		_ = tor.MinimalPorts(Node(i%256), Node((i*37)%256))
	}
}

func BenchmarkDistance(b *testing.B) {
	tor := MustTorus(16, 16)
	for i := 0; i < b.N; i++ {
		_ = tor.Distance(Node(i%256), Node((i*37)%256))
	}
}

func TestHypercube(t *testing.T) {
	h := MustHypercube(4)
	if h.Nodes() != 16 || h.Dims() != 4 || h.Wrap() {
		t.Fatalf("4-cube basics wrong: %d nodes, %d dims", h.Nodes(), h.Dims())
	}
	if h.Name() != "hypercube-4" {
		t.Fatalf("name %q", h.Name())
	}
	// Every node has exactly 4 wired ports (one per dimension), and each
	// neighbor differs in exactly one address bit.
	for n := 0; n < h.Nodes(); n++ {
		wired := 0
		for p := 0; p < h.Degree(); p++ {
			nb, ok := h.Neighbor(Node(n), p)
			if !ok {
				continue
			}
			wired++
			if diff := n ^ int(nb); diff&(diff-1) != 0 {
				t.Fatalf("neighbor %d of %d differs in more than one bit", nb, n)
			}
		}
		if wired != 4 {
			t.Fatalf("node %d has %d wired ports, want 4", n, wired)
		}
	}
	// Distance equals Hamming distance.
	for a := 0; a < h.Nodes(); a++ {
		for b := 0; b < h.Nodes(); b++ {
			want := 0
			for v := a ^ b; v != 0; v &= v - 1 {
				want++
			}
			if got := h.Distance(Node(a), Node(b)); got != want {
				t.Fatalf("distance(%d,%d) = %d, want Hamming %d", a, b, got, want)
			}
		}
	}
	if _, err := NewHypercube(0); err == nil {
		t.Fatal("0-dim hypercube should fail")
	}
}
