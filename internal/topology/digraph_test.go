package topology

import (
	"strings"
	"testing"
)

// checkGraph asserts the structural invariants every Graph must satisfy:
// in-range neighbors, correctly paired reverse ports, BFS distances that
// agree with adjacency, IsMinimal/MinimalPorts consistency, and a recovery
// lane that is a permutation of the nodes.
func checkGraph(t *testing.T, g Graph) {
	t.Helper()
	nodes := g.Nodes()
	for n := 0; n < nodes; n++ {
		for p := 0; p < g.Degree(); p++ {
			nb, ok := g.Neighbor(Node(n), p)
			if !ok {
				if _, rok := g.ReversePortAt(Node(n), p); rok {
					t.Fatalf("%s: unconnected port %d/%d has a reverse port", g.Name(), n, p)
				}
				continue
			}
			if int(nb) < 0 || int(nb) >= nodes || nb == Node(n) {
				t.Fatalf("%s: port %d/%d targets %d", g.Name(), n, p, nb)
			}
			if g.Distance(Node(n), nb) != 1 {
				t.Fatalf("%s: neighbor %d->%d at distance %d", g.Name(), n, nb, g.Distance(Node(n), nb))
			}
			if rp, ok := g.ReversePortAt(Node(n), p); ok {
				back, bok := g.Neighbor(nb, rp)
				if !bok || back != Node(n) {
					t.Fatalf("%s: reverse port %d of link %d--%d-->%d points at %d", g.Name(), rp, n, p, nb, back)
				}
				rrp, rok := g.ReversePortAt(nb, rp)
				if !rok || rrp != p {
					t.Fatalf("%s: reverse pairing of %d--%d-->%d not symmetric (got %d,%v)", g.Name(), n, p, nb, rrp, rok)
				}
			}
		}
		to := Node((n*31 + 7) % nodes)
		min := g.MinimalPorts(Node(n), to)
		inMin := map[int]bool{}
		for _, p := range min {
			inMin[p] = true
		}
		for p := 0; p < g.Degree(); p++ {
			if g.IsMinimal(Node(n), to, p) != inMin[p] {
				t.Fatalf("%s: IsMinimal(%d,%d,%d) disagrees with MinimalPorts %v", g.Name(), n, to, p, min)
			}
		}
	}
	lane := g.RecoveryLane()
	if len(lane) != nodes {
		t.Fatalf("%s: recovery lane covers %d of %d nodes", g.Name(), len(lane), nodes)
	}
	visited := make([]bool, nodes)
	for _, n := range lane {
		if int(n) < 0 || int(n) >= nodes || visited[n] {
			t.Fatalf("%s: recovery lane is not a permutation: %v", g.Name(), lane)
		}
		visited[n] = true
	}
}

func TestFullMesh(t *testing.T) {
	g, err := NewFullMesh(7)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 7 || g.Degree() != 6 {
		t.Fatalf("fullmesh-7: %d nodes degree %d", g.Nodes(), g.Degree())
	}
	for a := 0; a < 7; a++ {
		for b := 0; b < 7; b++ {
			want := 1
			if a == b {
				want = 0
			}
			if d := g.Distance(Node(a), Node(b)); d != want {
				t.Fatalf("distance %d->%d = %d, want %d", a, b, d, want)
			}
		}
	}
	checkGraph(t, g)
}

func TestFullMeshRejects(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 1<<10 + 1} {
		if _, err := NewFullMesh(n); err == nil {
			t.Fatalf("NewFullMesh(%d) accepted", n)
		}
	}
}

func TestDragonfly(t *testing.T) {
	a, h := 4, 2
	g, err := NewDragonfly(a, h)
	if err != nil {
		t.Fatal(err)
	}
	groups := a*h + 1
	if g.Nodes() != groups*a {
		t.Fatalf("dragonfly-%dx%d: %d nodes, want %d", a, h, g.Nodes(), groups*a)
	}
	if g.Degree() != a-1+h {
		t.Fatalf("dragonfly-%dx%d: degree %d, want %d", a, h, g.Degree(), a-1+h)
	}
	// Canonical dragonfly: minimal paths are at most local-global-local.
	for from := 0; from < g.Nodes(); from++ {
		for to := 0; to < g.Nodes(); to++ {
			if d := g.Distance(Node(from), Node(to)); d < 0 || d > 3 {
				t.Fatalf("distance %d->%d = %d, want 0..3", from, to, d)
			}
		}
	}
	// Exactly one global channel between every pair of groups.
	global := map[[2]int]int{}
	for n := 0; n < g.Nodes(); n++ {
		for p := a - 1; p < g.Degree(); p++ {
			nb, ok := g.Neighbor(Node(n), p)
			if !ok {
				t.Fatalf("global port %d/%d unconnected", n, p)
			}
			gu, gv := n/a, int(nb)/a
			if gu == gv {
				t.Fatalf("global port %d/%d stays inside group %d", n, p, gu)
			}
			global[[2]int{gu, gv}]++
		}
	}
	for u := 0; u < groups; u++ {
		for v := 0; v < groups; v++ {
			if u == v {
				continue
			}
			if global[[2]int{u, v}] != 1 {
				t.Fatalf("groups %d->%d linked by %d global channels, want 1", u, v, global[[2]int{u, v}])
			}
		}
	}
	checkGraph(t, g)
}

func TestDragonflyRejects(t *testing.T) {
	for _, ah := range [][2]int{{0, 1}, {1, 0}, {-2, 3}, {1 << 9, 1 << 9}} {
		if _, err := NewDragonfly(ah[0], ah[1]); err == nil {
			t.Fatalf("NewDragonfly(%d,%d) accepted", ah[0], ah[1])
		}
	}
}

func TestFatTree(t *testing.T) {
	k := 4
	g, err := NewFatTree(k)
	if err != nil {
		t.Fatal(err)
	}
	half := k / 2
	if g.Nodes() != k*k+half*half {
		t.Fatalf("fattree-%d: %d nodes, want %d", k, g.Nodes(), k*k+half*half)
	}
	// Edge switches leave their upper half of ports unconnected.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			n := Node(p*k + e)
			for q := half; q < g.Degree(); q++ {
				if _, ok := g.Neighbor(n, q); ok {
					t.Fatalf("edge switch %d has a connected upper port %d", n, q)
				}
			}
		}
	}
	// Every switch pair is reachable within the up-down diameter of 4.
	for from := 0; from < g.Nodes(); from++ {
		for to := 0; to < g.Nodes(); to++ {
			if d := g.Distance(Node(from), Node(to)); d < 0 || d > 4 {
				t.Fatalf("distance %d->%d = %d, want 0..4", from, to, d)
			}
		}
	}
	checkGraph(t, g)
}

func TestFatTreeRejects(t *testing.T) {
	for _, k := range []int{-2, 0, 3, 5, 1<<5 + 2} {
		if _, err := NewFatTree(k); err == nil {
			t.Fatalf("NewFatTree(%d) accepted", k)
		}
	}
}

func TestNewDigraphValidation(t *testing.T) {
	cases := []struct {
		name string
		adj  [][]int
	}{
		{"empty", nil},
		{"out of range", [][]int{{1}, {2}}},
		{"self loop", [][]int{{0}}},
	}
	for _, c := range cases {
		if _, err := NewDigraph(c.name, c.adj); err == nil {
			t.Fatalf("NewDigraph(%s) accepted", c.name)
		}
	}
}

func TestDigraphUnpairedReversePorts(t *testing.T) {
	// A unidirectional 3-ring: every link lacks an antiparallel twin.
	g, err := NewDigraph("uniring", [][]int{{1}, {2}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		if _, ok := g.ReversePortAt(Node(n), 0); ok {
			t.Fatalf("unidirectional link at node %d reports a reverse port", n)
		}
	}
	if d := g.Distance(0, 2); d != 2 {
		t.Fatalf("uniring distance 0->2 = %d, want 2", d)
	}
	if d := g.Distance(2, 0); d != 1 {
		t.Fatalf("uniring distance 2->0 = %d, want 1", d)
	}
}

func TestDigraphUnreachable(t *testing.T) {
	// 0 -> 1 with no way back: distance must report -1, not panic.
	g, err := NewDigraph("oneway", [][]int{{1}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Distance(1, 0); d != -1 {
		t.Fatalf("unreachable distance = %d, want -1", d)
	}
	if ports := g.MinimalPorts(1, 0); len(ports) != 0 {
		t.Fatalf("unreachable MinimalPorts = %v, want empty", ports)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, name := range []string{
		"torus-8x8", "mesh-4x4x2", "hypercube-3",
		"fullmesh-16", "dragonfly-4x2", "fattree-4",
	} {
		g, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("Parse(%q).Name() = %q", name, g.Name())
		}
		// Round trip: the emitted name parses back to the same shape.
		g2, err := Parse(g.Name())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", g.Name(), err)
		}
		if g2.Nodes() != g.Nodes() || g2.Degree() != g.Degree() {
			t.Fatalf("%q round-trips to %d nodes deg %d, want %d/%d",
				name, g2.Nodes(), g2.Degree(), g.Nodes(), g.Degree())
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, name := range []string{
		"", "torus", "torus-", "torus-8y8", "hypercube-3x3",
		"fullmesh-abc", "dragonfly-4", "fattree-4x4", "ring-8",
		"torus-99999999999999999999", "fullmesh--4",
	} {
		if _, err := Parse(name); err == nil {
			t.Fatalf("Parse(%q) accepted", name)
		}
	}
}

func TestCoordinated(t *testing.T) {
	cube := MustTorus(4, 4)
	if _, ok := Coordinated(cube); !ok {
		t.Fatal("torus not Coordinated")
	}
	for _, g := range []Graph{MustFullMesh(4), MustDragonfly(2, 1), MustFatTree(2)} {
		if _, ok := Coordinated(g); ok {
			t.Fatalf("%s unexpectedly Coordinated", g.Name())
		}
	}
}

func TestNodeAtChecked(t *testing.T) {
	topo := MustMesh(4, 3)
	if n, err := NodeAtChecked(topo, Coord{2, 1}); err != nil || n != topo.NodeAt(Coord{2, 1}) {
		t.Fatalf("NodeAtChecked valid coord: %v %v", n, err)
	}
	for _, co := range []Coord{nil, {1}, {1, 2, 3}, {-1, 0}, {4, 0}, {0, 3}} {
		if _, err := NodeAtChecked(topo, co); err == nil {
			t.Fatalf("NodeAtChecked(%v) accepted", co)
		}
	}
}

func TestRecoveryLaneIsCopied(t *testing.T) {
	g := MustFullMesh(4)
	lane := g.RecoveryLane()
	lane[0], lane[1] = lane[1], lane[0]
	if fresh := g.RecoveryLane(); fresh[0] != 0 || fresh[1] != 1 {
		t.Fatal("RecoveryLane aliases internal state")
	}
}

func TestParseErrorMentionsFormat(t *testing.T) {
	_, err := Parse("nonsense")
	if err == nil || !strings.Contains(err.Error(), "kind-size") {
		t.Fatalf("Parse error unhelpful: %v", err)
	}
}
