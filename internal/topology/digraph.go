package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// maxDigraphNodes bounds digraph construction the same way newCube bounds
// cubes: hostile sizes error instead of exploding the allocations below.
// The bound is tighter than the cube one because digraphs precompute an
// all-pairs distance table of nodes^2 int32s.
const maxDigraphNodes = 1 << 12

// digraph is the generic directed-graph topology base: an explicit
// adjacency list with inferred reverse ports, all-pairs BFS distances, and
// an identity recovery lane. Full-mesh, dragonfly, and fat-tree are built
// on it. It implements Graph but not Topology: there is no coordinate
// geometry, so coordinate-based routing algorithms and traffic patterns
// reject it via MinVCs/constructor errors.
type digraph struct {
	name   string
	degree int
	adj    []int32 // adj[n*degree+p] = neighbor, or -1 when unconnected
	rev    []int32 // rev[n*degree+p] = paired reverse port at adj, or -1
	nodes  int
	dist   []int32 // dist[from*nodes+to] minimal hops, or -1 unreachable
	lane   []Node
}

// NewDigraph constructs a topology from an explicit adjacency list:
// adj[n] lists the neighbor reached via each port of node n (-1 for an
// unconnected port; shorter lists are padded). Reverse ports are inferred
// by pairing antiparallel edges deterministically in port order; an edge
// with no antiparallel twin simply has no reverse port. The recovery lane
// defaults to the identity order 0..n-1; construct a custom lane by
// wrapping the result. Errors on empty graphs, out-of-range targets,
// self-loops, and sizes past the same safety bound the cube constructors
// enforce.
func NewDigraph(name string, adj [][]int) (Graph, error) {
	n := len(adj)
	if n == 0 {
		return nil, fmt.Errorf("topology: digraph %q has no nodes", name)
	}
	if n > maxDigraphNodes {
		return nil, fmt.Errorf("topology: network too large")
	}
	degree := 0
	for _, ports := range adj {
		if len(ports) > degree {
			degree = len(ports)
		}
	}
	if degree > maxDigraphNodes {
		return nil, fmt.Errorf("topology: network too large")
	}
	g := &digraph{
		name:   name,
		degree: degree,
		nodes:  n,
		adj:    make([]int32, n*degree),
		rev:    make([]int32, n*degree),
	}
	for i := range g.adj {
		g.adj[i] = -1
		g.rev[i] = -1
	}
	for v, ports := range adj {
		for p, nb := range ports {
			if nb < 0 {
				continue
			}
			if nb >= n {
				return nil, fmt.Errorf("topology: digraph %q node %d port %d targets %d; have %d nodes", name, v, p, nb, n)
			}
			if nb == v {
				return nil, fmt.Errorf("topology: digraph %q node %d port %d is a self-loop", name, v, p)
			}
			g.adj[v*degree+p] = int32(nb)
		}
	}
	g.pairReversePorts()
	g.buildDistances()
	g.lane = make([]Node, n)
	for i := range g.lane {
		g.lane[i] = Node(i)
	}
	return g, nil
}

// pairReversePorts matches each directed edge u->v with the first not yet
// paired edge v->u, scanning nodes and ports in increasing order so the
// pairing is deterministic. Unmatched edges keep rev -1.
func (g *digraph) pairReversePorts() {
	for u := 0; u < g.nodes; u++ {
		for p := 0; p < g.degree; p++ {
			i := u*g.degree + p
			v := g.adj[i]
			if v < 0 || g.rev[i] >= 0 {
				continue
			}
			for q := 0; q < g.degree; q++ {
				j := int(v)*g.degree + q
				if g.adj[j] == int32(u) && g.rev[j] < 0 {
					g.rev[i] = int32(q)
					g.rev[j] = int32(p)
					break
				}
			}
		}
	}
}

// buildDistances runs a BFS from every source over the directed adjacency.
func (g *digraph) buildDistances() {
	g.dist = make([]int32, g.nodes*g.nodes)
	for i := range g.dist {
		g.dist[i] = -1
	}
	queue := make([]int32, 0, g.nodes)
	for src := 0; src < g.nodes; src++ {
		row := g.dist[src*g.nodes : (src+1)*g.nodes]
		row[src] = 0
		queue = append(queue[:0], int32(src))
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			d := row[cur]
			base := int(cur) * g.degree
			for p := 0; p < g.degree; p++ {
				nb := g.adj[base+p]
				if nb >= 0 && row[nb] < 0 {
					row[nb] = d + 1
					queue = append(queue, nb)
				}
			}
		}
	}
}

func (g *digraph) Name() string { return g.name }
func (g *digraph) Nodes() int   { return g.nodes }
func (g *digraph) Degree() int  { return g.degree }

func (g *digraph) Neighbor(n Node, port int) (Node, bool) {
	if port < 0 || port >= g.degree || int(n) < 0 || int(n) >= g.nodes {
		return 0, false
	}
	nb := g.adj[int(n)*g.degree+port]
	if nb < 0 {
		return 0, false
	}
	return Node(nb), true
}

func (g *digraph) ReversePortAt(n Node, port int) (int, bool) {
	if port < 0 || port >= g.degree || int(n) < 0 || int(n) >= g.nodes {
		return 0, false
	}
	r := g.rev[int(n)*g.degree+port]
	if r < 0 {
		return 0, false
	}
	return int(r), true
}

func (g *digraph) Distance(from, to Node) int {
	if int(from) < 0 || int(from) >= g.nodes || int(to) < 0 || int(to) >= g.nodes {
		return -1
	}
	return int(g.dist[int(from)*g.nodes+int(to)])
}

func (g *digraph) IsMinimal(from, to Node, port int) bool {
	nb, ok := g.Neighbor(from, port)
	if !ok || from == to {
		return false
	}
	dt := g.Distance(from, to)
	if dt < 0 {
		return false
	}
	return g.Distance(nb, to) == dt-1
}

func (g *digraph) MinimalPorts(from, to Node) []int {
	if from == to {
		return nil
	}
	ports := make([]int, 0, g.degree)
	for p := 0; p < g.degree; p++ {
		if g.IsMinimal(from, to, p) {
			ports = append(ports, p)
		}
	}
	return ports
}

func (g *digraph) RecoveryLane() []Node {
	out := make([]Node, len(g.lane))
	copy(out, g.lane)
	return out
}

// --- Full mesh --------------------------------------------------------------

// NewFullMesh constructs the complete graph on n nodes: node i reaches
// node j (j != i) via port j-(j>i ? 1 : 0), so every node has degree n-1
// and every route is a single hop. Minimal routing on it is trivially
// deadlock-free with zero extra virtual channels — the VC-free baseline
// the HOTI'25 full-mesh paper sweeps against. The identity recovery lane
// is a chain of physical links (everything is adjacent), so both recovery
// modes work.
func NewFullMesh(n int) (Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: full mesh needs at least 2 nodes, have %d", n)
	}
	if n > 1<<10 {
		return nil, fmt.Errorf("topology: network too large")
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		row := make([]int, n-1)
		for p := 0; p < n-1; p++ {
			if p < i {
				row[p] = p
			} else {
				row[p] = p + 1
			}
		}
		adj[i] = row
	}
	return NewDigraph("fullmesh-"+strconv.Itoa(n), adj)
}

// MustFullMesh is NewFullMesh that panics on error.
func MustFullMesh(n int) Graph {
	g, err := NewFullMesh(n)
	if err != nil {
		panic(err)
	}
	return g
}

// --- Dragonfly --------------------------------------------------------------

// NewDragonfly constructs the canonical maximally-sized dragonfly(a, h):
// g = a*h+1 groups of a routers each, every router with a-1 local ports
// (in-group all-to-all) and h global ports, exactly one global link
// between every pair of groups. Ports 0..a-2 are local; port a-1+k is the
// router's k-th global channel. Minimal paths are at most local-global-
// local; adaptive minimal routing on it generally needs VCs to avoid
// deadlock, so DISHA pairs it with Token-serialized recovery, which only
// needs the lane to be connected.
func NewDragonfly(a, h int) (Graph, error) {
	if a < 1 || h < 1 {
		return nil, fmt.Errorf("topology: dragonfly needs a >= 1 routers/group and h >= 1 global ports, have a=%d h=%d", a, h)
	}
	groups := a*h + 1
	if a > 1<<8 || h > 1<<8 || groups > 1<<10 || groups*a > maxDigraphNodes {
		return nil, fmt.Errorf("topology: network too large")
	}
	nodes := groups * a
	degree := (a - 1) + h
	adj := make([][]int, nodes)
	for u := 0; u < groups; u++ {
		for r := 0; r < a; r++ {
			row := make([]int, degree)
			// Local all-to-all: port p skips self.
			for p := 0; p < a-1; p++ {
				other := p
				if p >= r {
					other = p + 1
				}
				row[p] = u*a + other
			}
			// Global channels: this router owns group channels r*h..r*h+h-1.
			for k := 0; k < h; k++ {
				ch := r*h + k
				v := ch
				if ch >= u {
					v = ch + 1
				}
				// The reverse channel index at group v points back at u.
				chBack := u
				if u > v {
					chBack = u - 1
				}
				row[a-1+k] = v*a + chBack/h
			}
			adj[u*a+r] = row
		}
	}
	return NewDigraph(fmt.Sprintf("dragonfly-%dx%d", a, h), adj)
}

// MustDragonfly is NewDragonfly that panics on error.
func MustDragonfly(a, h int) Graph {
	g, err := NewDragonfly(a, h)
	if err != nil {
		panic(err)
	}
	return g
}

// --- Fat tree ---------------------------------------------------------------

// NewFatTree constructs the k-ary fat tree's switch fabric (hosts are not
// modeled; the switches are the simulator's nodes): k pods of k/2 edge and
// k/2 aggregation switches plus (k/2)^2 core switches. Edge switch e of
// pod p is node p*k+e with ports 0..k/2-1 up to the pod's aggregations;
// aggregation a of pod p is node p*k+k/2+a with ports 0..k/2-1 down to the
// pod's edges and k/2..k-1 up to core group a; core switch j of group i is
// node k*k+i*(k/2)+j with port p down to pod p. Edge switches leave ports
// k/2..k-1 unconnected, like mesh boundary ports. All minimal routes are
// up-down, whose channel-dependency graph is acyclic.
func NewFatTree(k int) (Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat tree needs an even k >= 2, have %d", k)
	}
	if k > 1<<5 {
		return nil, fmt.Errorf("topology: network too large")
	}
	half := k / 2
	nodes := k*k + half*half
	adj := make([][]int, nodes)
	edge := func(p, e int) int { return p*k + e }
	agg := func(p, a int) int { return p*k + half + a }
	core := func(i, j int) int { return k*k + i*half + j }
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			row := make([]int, half)
			for a := 0; a < half; a++ {
				row[a] = agg(p, a)
			}
			adj[edge(p, e)] = row
		}
		for a := 0; a < half; a++ {
			row := make([]int, k)
			for e := 0; e < half; e++ {
				row[e] = edge(p, e)
			}
			for j := 0; j < half; j++ {
				row[half+j] = core(a, j)
			}
			adj[agg(p, a)] = row
		}
	}
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			row := make([]int, k)
			for p := 0; p < k; p++ {
				row[p] = agg(p, i)
			}
			adj[core(i, j)] = row
		}
	}
	return NewDigraph("fattree-"+strconv.Itoa(k), adj)
}

// MustFatTree is NewFatTree that panics on error.
func MustFatTree(k int) Graph {
	g, err := NewFatTree(k)
	if err != nil {
		panic(err)
	}
	return g
}

// --- Name parsing -----------------------------------------------------------

// Parse resolves a topology spelled as a name string — the format the CLIs
// accept and Graph.Name emits: "torus-8x8", "mesh-4x4x2", "hypercube-3",
// "fullmesh-16", "dragonfly-4x2", "fattree-4". It returns an error, never
// panics, on malformed input.
func Parse(name string) (Graph, error) {
	kind, rest, ok := strings.Cut(name, "-")
	if !ok {
		return nil, fmt.Errorf("topology: %q is not of the form kind-size (e.g. torus-8x8, fullmesh-16)", name)
	}
	dims, err := parseDims(rest)
	if err != nil {
		return nil, fmt.Errorf("topology: %q: %v", name, err)
	}
	one := func() (int, error) {
		if len(dims) != 1 {
			return 0, fmt.Errorf("topology: %q wants a single size, have %d", name, len(dims))
		}
		return dims[0], nil
	}
	switch kind {
	case "torus":
		return NewTorus(dims...)
	case "mesh":
		return NewMesh(dims...)
	case "hypercube":
		n, err := one()
		if err != nil {
			return nil, err
		}
		return NewHypercube(n)
	case "fullmesh":
		n, err := one()
		if err != nil {
			return nil, err
		}
		return NewFullMesh(n)
	case "dragonfly":
		if len(dims) != 2 {
			return nil, fmt.Errorf("topology: %q wants dragonfly-AxH", name)
		}
		return NewDragonfly(dims[0], dims[1])
	case "fattree":
		n, err := one()
		if err != nil {
			return nil, err
		}
		return NewFatTree(n)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q (want torus, mesh, hypercube, fullmesh, dragonfly or fattree)", kind)
	}
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", p)
		}
		dims = append(dims, v)
	}
	return dims, nil
}
