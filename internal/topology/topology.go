// Package topology models the direct interconnection networks used by the
// DISHA reproduction: k-ary n-cube tori and meshes. It provides node and
// port addressing, minimal-direction computation, distance metrics, torus
// dateline classification (used by deadlock-avoidance baselines), and a
// Hamiltonian traversal order used by the recovery Token.
//
// Port numbering convention: a node with n dimensions has 2n network ports;
// port 2*d is the positive direction of dimension d and port 2*d+1 the
// negative direction. Injection and reception channels are modeled by
// internal/router and are not ports of the topology.
package topology

import (
	"fmt"
	"strings"
)

// Node identifies a router/processing node; valid values are [0, Nodes()).
type Node int

// Coord is a per-dimension coordinate vector for a node.
type Coord []int

// Clone returns a copy of the coordinate vector.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two coordinate vectors are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the coordinate as "(x,y,...)".
func (c Coord) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// PortDim returns the dimension a network port travels in.
func PortDim(port int) int { return port / 2 }

// PortSign returns +1 for a positive-direction port and -1 for negative.
func PortSign(port int) int {
	if port%2 == 0 {
		return 1
	}
	return -1
}

// PortFor returns the port moving in the given sign (+1/-1) of dimension d.
func PortFor(d, sign int) int {
	if sign > 0 {
		return 2 * d
	}
	return 2*d + 1
}

// ReversePort returns the port on the neighboring node that points back
// along the same physical link.
func ReversePort(port int) int { return port ^ 1 }

// Topology is the read-only interface the simulator needs from a network
// graph. Implementations must be immutable after construction.
type Topology interface {
	// Name returns a short human-readable description, e.g. "torus-16x16".
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Dims returns the number of dimensions n.
	Dims() int
	// Radix returns the radix (number of nodes) of dimension d.
	Radix(d int) int
	// Degree returns the number of network ports per node (2n). Mesh edge
	// nodes have some ports unconnected; see Neighbor.
	Degree() int
	// Coord returns the coordinate vector of a node.
	Coord(Node) Coord
	// NodeAt returns the node with the given coordinates.
	NodeAt(Coord) Node
	// Neighbor returns the node reached from n via port, and whether the
	// link exists (mesh boundary ports do not).
	Neighbor(n Node, port int) (Node, bool)
	// MinimalPorts returns the set of output ports at from that lie on some
	// minimal path to to. Empty iff from == to.
	MinimalPorts(from, to Node) []int
	// IsMinimal reports whether taking port at from lies on some minimal
	// path to to — the allocation-free membership test for MinimalPorts,
	// which routing hot paths use: iterating ports in numeric order and
	// filtering with IsMinimal yields exactly MinimalPorts' sequence.
	IsMinimal(from, to Node, port int) bool
	// Distance returns the minimal hop count between two nodes.
	Distance(from, to Node) int
	// CrossesDateline reports whether taking port at node n traverses the
	// torus dateline of the port's dimension (always false on a mesh).
	// Deadlock-avoidance baselines use this to switch VC classes.
	CrossesDateline(n Node, port int) bool
	// HamiltonianOrder returns a fixed serpentine visiting order covering
	// every node exactly once; the recovery Token circulates this order
	// cyclically over its dedicated hardwired path.
	HamiltonianOrder() []Node
	// Wrap reports whether the topology has wraparound links (torus).
	Wrap() bool
}

// cube implements both torus and mesh k-ary n-cube topologies.
type cube struct {
	radix   []int
	stride  []int // mixed-radix strides: stride[d] = product of radix[0..d-1]
	nodes   int
	wrap    bool
	name    string
	hamOnce []Node
}

// NewTorus constructs a k-ary n-cube with wraparound links. radix gives the
// number of nodes per dimension (len(radix) = n). Every radix must be >= 2.
func NewTorus(radix ...int) (Topology, error) { return newCube(true, radix) }

// NewMesh constructs a k-ary n-cube without wraparound links.
func NewMesh(radix ...int) (Topology, error) { return newCube(false, radix) }

// MustTorus is NewTorus that panics on error; convenient in tests/examples.
func MustTorus(radix ...int) Topology {
	t, err := NewTorus(radix...)
	if err != nil {
		panic(err)
	}
	return t
}

// MustMesh is NewMesh that panics on error.
func MustMesh(radix ...int) Topology {
	t, err := NewMesh(radix...)
	if err != nil {
		panic(err)
	}
	return t
}

// NewHypercube constructs the n-dimensional binary hypercube: a 2-ary
// n-cube without wraparounds (each dimension has exactly two nodes joined
// by one full-duplex link, so only one port per dimension is wired). The
// paper's adaptive-routing lineage (Gaughan & Yalamanchili) targets
// hypercubes; Disha applies unchanged.
func NewHypercube(dims int) (Topology, error) {
	if dims < 1 {
		return nil, fmt.Errorf("topology: hypercube needs at least one dimension")
	}
	radix := make([]int, dims)
	for i := range radix {
		radix[i] = 2
	}
	t, err := newCube(false, radix)
	if err != nil {
		return nil, err
	}
	t.(*cube).name = "hypercube-" + fmt.Sprint(dims)
	return t, nil
}

// MustHypercube is NewHypercube that panics on error.
func MustHypercube(dims int) Topology {
	t, err := NewHypercube(dims)
	if err != nil {
		panic(err)
	}
	return t
}

func newCube(wrap bool, radix []int) (Topology, error) {
	if len(radix) == 0 {
		return nil, fmt.Errorf("topology: need at least one dimension")
	}
	nodes := 1
	for d, k := range radix {
		if k < 2 {
			return nil, fmt.Errorf("topology: dimension %d has radix %d; need >= 2", d, k)
		}
		// Bound the product before multiplying: a single huge radix must be
		// rejected here, not explode the allocation below (or overflow int).
		if k > 1<<20 || nodes > (1<<20)/k {
			return nil, fmt.Errorf("topology: network too large")
		}
		nodes *= k
	}
	stride := make([]int, len(radix))
	s := 1
	for d := range radix {
		stride[d] = s
		s *= radix[d]
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
	}
	parts := make([]string, len(radix))
	for i, k := range radix {
		parts[i] = fmt.Sprint(k)
	}
	c := &cube{
		radix:  append([]int(nil), radix...),
		stride: stride,
		nodes:  nodes,
		wrap:   wrap,
		name:   kind + "-" + strings.Join(parts, "x"),
	}
	c.hamOnce = c.buildHamiltonian()
	return c, nil
}

func (c *cube) Name() string    { return c.name }
func (c *cube) Nodes() int      { return c.nodes }
func (c *cube) Dims() int       { return len(c.radix) }
func (c *cube) Radix(d int) int { return c.radix[d] }
func (c *cube) Degree() int     { return 2 * len(c.radix) }
func (c *cube) Wrap() bool      { return c.wrap }

func (c *cube) Coord(n Node) Coord {
	co := make(Coord, len(c.radix))
	v := int(n)
	for d, k := range c.radix {
		co[d] = v % k
		v /= k
	}
	return co
}

func (c *cube) NodeAt(co Coord) Node {
	if len(co) != len(c.radix) {
		panic(fmt.Sprintf("topology: coordinate %v has wrong dimensionality", co))
	}
	v := 0
	for d, x := range co {
		if x < 0 || x >= c.radix[d] {
			panic(fmt.Sprintf("topology: coordinate %v out of range", co))
		}
		v += x * c.stride[d]
	}
	return Node(v)
}

func (c *cube) Neighbor(n Node, port int) (Node, bool) {
	if port < 0 {
		return 0, false
	}
	d := PortDim(port)
	if d >= len(c.radix) {
		return 0, false
	}
	k := c.radix[d]
	x := (int(n) / c.stride[d]) % k
	var nx int
	if PortSign(port) > 0 {
		nx = x + 1
		if nx == k {
			if !c.wrap {
				return 0, false
			}
			nx = 0
		}
	} else {
		nx = x - 1
		if nx < 0 {
			if !c.wrap {
				return 0, false
			}
			nx = k - 1
		}
	}
	return Node(int(n) + (nx-x)*c.stride[d]), true
}

// dimOffset returns, for dimension d, the signed minimal offsets available.
// On a torus it can return two entries when both directions are equally
// minimal (offset exactly half the radix on an even ring).
func (c *cube) dimSigns(from, to Node, d int) (signs [2]int, count, dist int) {
	k := c.radix[d]
	fx := (int(from) / c.stride[d]) % k
	tx := (int(to) / c.stride[d]) % k
	if fx == tx {
		return signs, 0, 0
	}
	if !c.wrap {
		if tx > fx {
			signs[0] = 1
			return signs, 1, tx - fx
		}
		signs[0] = -1
		return signs, 1, fx - tx
	}
	fwd := tx - fx
	if fwd < 0 {
		fwd += k
	}
	bwd := k - fwd
	switch {
	case fwd < bwd:
		signs[0] = 1
		return signs, 1, fwd
	case bwd < fwd:
		signs[0] = -1
		return signs, 1, bwd
	default: // equidistant on an even ring: both directions minimal
		signs[0], signs[1] = 1, -1
		return signs, 2, fwd
	}
}

func (c *cube) MinimalPorts(from, to Node) []int {
	if from == to {
		return nil
	}
	ports := make([]int, 0, c.Degree())
	for d := range c.radix {
		signs, count, _ := c.dimSigns(from, to, d)
		for i := 0; i < count; i++ {
			ports = append(ports, PortFor(d, signs[i]))
		}
	}
	return ports
}

func (c *cube) IsMinimal(from, to Node, port int) bool {
	d := PortDim(port)
	if d >= len(c.radix) {
		return false
	}
	signs, count, _ := c.dimSigns(from, to, d)
	s := PortSign(port)
	for i := 0; i < count; i++ {
		if signs[i] == s {
			return true
		}
	}
	return false
}

func (c *cube) Distance(from, to Node) int {
	total := 0
	for d := range c.radix {
		_, _, dist := c.dimSigns(from, to, d)
		total += dist
	}
	return total
}

func (c *cube) CrossesDateline(n Node, port int) bool {
	if !c.wrap {
		return false
	}
	d := PortDim(port)
	k := c.radix[d]
	x := (int(n) / c.stride[d]) % k
	if PortSign(port) > 0 {
		return x == k-1
	}
	return x == 0
}

// buildHamiltonian constructs a boustrophedon (snake) order: consecutive
// nodes differ in exactly one coordinate by one, so the order is a
// Hamiltonian path of the mesh (and of the torus, which has the mesh's links
// plus wraparounds).
func (c *cube) buildHamiltonian() []Node {
	order := make([]Node, 0, c.nodes)
	for i := 0; i < c.nodes; i++ {
		order = append(order, c.NodeAt(snakeCoord(i, c.radix)))
	}
	return order
}

// snakeCoord maps a linear index to a boustrophedon coordinate via a
// reflected mixed-radix code: digit d scans forward when the quotient of
// more-significant digits is even and backward when odd.
func snakeCoord(i int, radix []int) Coord {
	co := make(Coord, len(radix))
	for d := 0; d < len(radix); d++ {
		k := radix[d]
		digit := i % k
		i /= k
		if i%2 == 1 { // odd progress of higher digits: reflect this digit
			digit = k - 1 - digit
		}
		co[d] = digit
	}
	return co
}

func (c *cube) HamiltonianOrder() []Node {
	out := make([]Node, len(c.hamOnce))
	copy(out, c.hamOnce)
	return out
}
