// Package topology models the direct interconnection networks used by the
// DISHA reproduction. Two layers of interface exist: Graph is the minimal
// directed-graph contract every topology satisfies (nodes, directed ports,
// per-link reverse ports, distances, a declared recovery lane), and
// Topology extends it with the coordinate geometry of k-ary n-cubes (tori,
// meshes, hypercubes) that coordinate-based routing algorithms and traffic
// patterns require. Beyond the cubes, the package provides full-mesh,
// dragonfly, and fat-tree constructors built on a generic digraph base.
//
// Cube port numbering convention: a node with n dimensions has 2n network
// ports; port 2*d is the positive direction of dimension d and port 2*d+1
// the negative direction. Non-cube topologies number ports densely per
// node with no global direction meaning; use Graph.ReversePortAt to find
// the paired port of a link. Injection and reception channels are modeled
// by internal/router and are not ports of the topology.
package topology

import (
	"fmt"
	"strings"
)

// Node identifies a router/processing node; valid values are [0, Nodes()).
type Node int

// Coord is a per-dimension coordinate vector for a node.
type Coord []int

// Clone returns a copy of the coordinate vector.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two coordinate vectors are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the coordinate as "(x,y,...)".
func (c Coord) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// PortDim returns the dimension a network port travels in.
func PortDim(port int) int { return port / 2 }

// PortSign returns +1 for a positive-direction port and -1 for negative.
func PortSign(port int) int {
	if port%2 == 0 {
		return 1
	}
	return -1
}

// PortFor returns the port moving in the given sign (+1/-1) of dimension d.
func PortFor(d, sign int) int {
	if sign > 0 {
		return 2 * d
	}
	return 2*d + 1
}

// ReversePort returns the port on the neighboring node that points back
// along the same physical link, for the cube port-numbering convention
// only (port 2d = +dim d, port 2d+1 = -dim d, so the pair is port^1).
// General graphs have no such global rule; use Graph.ReversePortAt.
func ReversePort(port int) int { return port ^ 1 }

// Graph is the minimal read-only directed-graph interface the simulator
// needs from a network. Implementations must be immutable after
// construction. Coordinate-based consumers (DOR-family routing, geometric
// traffic patterns) additionally require the Topology extension; assert
// with Coordinated.
type Graph interface {
	// Name returns a short human-readable description, e.g. "torus-16x16".
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Degree returns the number of network ports per node. Some ports may
	// be unconnected (mesh boundaries, fat-tree edge switches); see
	// Neighbor.
	Degree() int
	// Neighbor returns the node reached from n via port, and whether the
	// link exists.
	Neighbor(n Node, port int) (Node, bool)
	// ReversePortAt returns the port on Neighbor(n, port) whose link points
	// back at n — the input port a flit sent from n via port arrives on —
	// and whether such a paired reverse port exists. A directed link with
	// no antiparallel twin reports false.
	ReversePortAt(n Node, port int) (int, bool)
	// MinimalPorts returns the set of output ports at from that lie on some
	// minimal path to to. Empty iff from == to (or to is unreachable).
	MinimalPorts(from, to Node) []int
	// IsMinimal reports whether taking port at from lies on some minimal
	// path to to — the allocation-free membership test for MinimalPorts,
	// which routing hot paths use: iterating ports in numeric order and
	// filtering with IsMinimal yields exactly MinimalPorts' sequence.
	IsMinimal(from, to Node, port int) bool
	// Distance returns the minimal hop count between two nodes, or -1 when
	// to is unreachable from from.
	Distance(from, to Node) int
	// RecoveryLane returns the topology's declared deadlock-recovery
	// visiting order: every node exactly once. Sequential (Token) recovery
	// circulates it over a dedicated hardwired control path, so any
	// permutation works; concurrent recovery routes Deadlock Buffer flits
	// monotonically along it, so consecutive lane nodes must then be
	// physically linked. internal/network validates the declared lane
	// against the recovery mode at construction time.
	RecoveryLane() []Node
}

// Topology extends Graph with the coordinate geometry of k-ary n-cubes.
// Coordinate-based routing algorithms (DOR, negative-first, Dally-Aoki,
// Duato) and geometric traffic patterns (transpose, complement, tornado)
// require this interface; everything else in the simulator runs on Graph.
type Topology interface {
	Graph
	// Dims returns the number of dimensions n.
	Dims() int
	// Radix returns the radix (number of nodes) of dimension d.
	Radix(d int) int
	// Coord returns the coordinate vector of a node.
	Coord(Node) Coord
	// NodeAt returns the node with the given coordinates. It panics on a
	// malformed coordinate; NodeAtChecked is the error-returning form.
	NodeAt(Coord) Node
	// CrossesDateline reports whether taking port at node n traverses the
	// torus dateline of the port's dimension (always false on a mesh).
	// Deadlock-avoidance baselines use this to switch VC classes.
	CrossesDateline(n Node, port int) bool
	// HamiltonianOrder returns a fixed serpentine visiting order covering
	// every node exactly once; consecutive nodes are always physically
	// linked, so the order serves both recovery modes. Equal to
	// RecoveryLane for cubes.
	HamiltonianOrder() []Node
	// Wrap reports whether the topology has wraparound links (torus).
	Wrap() bool
}

// Coordinated reports whether g carries cube coordinate geometry,
// returning the Topology view when it does. Callers that need Coord/
// NodeAt/dateline information gate on this instead of type-asserting
// inline.
func Coordinated(g Graph) (Topology, bool) {
	t, ok := g.(Topology)
	return t, ok
}

// NodeAtChecked is the error-returning form of Topology.NodeAt: it
// validates the coordinate's dimensionality and per-dimension range and
// returns an error instead of panicking on malformed input. Use it on
// paths fed by external input (CLI flags, network requests, fuzzers).
func NodeAtChecked(t Topology, co Coord) (Node, error) {
	if len(co) != t.Dims() {
		return 0, fmt.Errorf("topology: coordinate %v has %d dimensions; %s has %d", co, len(co), t.Name(), t.Dims())
	}
	for d, x := range co {
		if x < 0 || x >= t.Radix(d) {
			return 0, fmt.Errorf("topology: coordinate %v out of range in dimension %d (radix %d)", co, d, t.Radix(d))
		}
	}
	return t.NodeAt(co), nil
}

// cube implements both torus and mesh k-ary n-cube topologies.
type cube struct {
	radix   []int
	stride  []int // mixed-radix strides: stride[d] = product of radix[0..d-1]
	nodes   int
	wrap    bool
	name    string
	hamOnce []Node
}

// NewTorus constructs a k-ary n-cube with wraparound links. radix gives the
// number of nodes per dimension (len(radix) = n). Every radix must be >= 2.
func NewTorus(radix ...int) (Topology, error) { return newCube(true, radix) }

// NewMesh constructs a k-ary n-cube without wraparound links.
func NewMesh(radix ...int) (Topology, error) { return newCube(false, radix) }

// MustTorus is NewTorus that panics on error; convenient in tests/examples.
func MustTorus(radix ...int) Topology {
	t, err := NewTorus(radix...)
	if err != nil {
		panic(err)
	}
	return t
}

// MustMesh is NewMesh that panics on error.
func MustMesh(radix ...int) Topology {
	t, err := NewMesh(radix...)
	if err != nil {
		panic(err)
	}
	return t
}

// NewHypercube constructs the n-dimensional binary hypercube: a 2-ary
// n-cube without wraparounds (each dimension has exactly two nodes joined
// by one full-duplex link, so only one port per dimension is wired). The
// paper's adaptive-routing lineage (Gaughan & Yalamanchili) targets
// hypercubes; Disha applies unchanged.
func NewHypercube(dims int) (Topology, error) {
	if dims < 1 {
		return nil, fmt.Errorf("topology: hypercube needs at least one dimension")
	}
	radix := make([]int, dims)
	for i := range radix {
		radix[i] = 2
	}
	t, err := newCube(false, radix)
	if err != nil {
		return nil, err
	}
	t.(*cube).name = "hypercube-" + fmt.Sprint(dims)
	return t, nil
}

// MustHypercube is NewHypercube that panics on error.
func MustHypercube(dims int) Topology {
	t, err := NewHypercube(dims)
	if err != nil {
		panic(err)
	}
	return t
}

func newCube(wrap bool, radix []int) (Topology, error) {
	if len(radix) == 0 {
		return nil, fmt.Errorf("topology: need at least one dimension")
	}
	nodes := 1
	for d, k := range radix {
		if k < 2 {
			return nil, fmt.Errorf("topology: dimension %d has radix %d; need >= 2", d, k)
		}
		// Bound the product before multiplying: a single huge radix must be
		// rejected here, not explode the allocation below (or overflow int).
		if k > 1<<20 || nodes > (1<<20)/k {
			return nil, fmt.Errorf("topology: network too large")
		}
		nodes *= k
	}
	stride := make([]int, len(radix))
	s := 1
	for d := range radix {
		stride[d] = s
		s *= radix[d]
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
	}
	parts := make([]string, len(radix))
	for i, k := range radix {
		parts[i] = fmt.Sprint(k)
	}
	c := &cube{
		radix:  append([]int(nil), radix...),
		stride: stride,
		nodes:  nodes,
		wrap:   wrap,
		name:   kind + "-" + strings.Join(parts, "x"),
	}
	c.hamOnce = c.buildHamiltonian()
	return c, nil
}

func (c *cube) Name() string    { return c.name }
func (c *cube) Nodes() int      { return c.nodes }
func (c *cube) Dims() int       { return len(c.radix) }
func (c *cube) Radix(d int) int { return c.radix[d] }
func (c *cube) Degree() int     { return 2 * len(c.radix) }
func (c *cube) Wrap() bool      { return c.wrap }

func (c *cube) Coord(n Node) Coord {
	co := make(Coord, len(c.radix))
	v := int(n)
	for d, k := range c.radix {
		co[d] = v % k
		v /= k
	}
	return co
}

// NodeAt panics on a malformed coordinate, as documented on Topology;
// NodeAtChecked is the error-returning form for external-input paths.
func (c *cube) NodeAt(co Coord) Node {
	if len(co) != len(c.radix) {
		panic(fmt.Sprintf("topology: coordinate %v has wrong dimensionality", co))
	}
	v := 0
	for d, x := range co {
		if x < 0 || x >= c.radix[d] {
			panic(fmt.Sprintf("topology: coordinate %v out of range", co))
		}
		v += x * c.stride[d]
	}
	return Node(v)
}

// ReversePortAt follows the cube convention: the paired port of 2d is
// 2d+1 and vice versa, whenever the link exists.
func (c *cube) ReversePortAt(n Node, port int) (int, bool) {
	if _, ok := c.Neighbor(n, port); !ok {
		return 0, false
	}
	return ReversePort(port), true
}

func (c *cube) Neighbor(n Node, port int) (Node, bool) {
	if port < 0 {
		return 0, false
	}
	d := PortDim(port)
	if d >= len(c.radix) {
		return 0, false
	}
	k := c.radix[d]
	x := (int(n) / c.stride[d]) % k
	var nx int
	if PortSign(port) > 0 {
		nx = x + 1
		if nx == k {
			if !c.wrap {
				return 0, false
			}
			nx = 0
		}
	} else {
		nx = x - 1
		if nx < 0 {
			if !c.wrap {
				return 0, false
			}
			nx = k - 1
		}
	}
	return Node(int(n) + (nx-x)*c.stride[d]), true
}

// dimOffset returns, for dimension d, the signed minimal offsets available.
// On a torus it can return two entries when both directions are equally
// minimal (offset exactly half the radix on an even ring).
func (c *cube) dimSigns(from, to Node, d int) (signs [2]int, count, dist int) {
	k := c.radix[d]
	fx := (int(from) / c.stride[d]) % k
	tx := (int(to) / c.stride[d]) % k
	if fx == tx {
		return signs, 0, 0
	}
	if !c.wrap {
		if tx > fx {
			signs[0] = 1
			return signs, 1, tx - fx
		}
		signs[0] = -1
		return signs, 1, fx - tx
	}
	fwd := tx - fx
	if fwd < 0 {
		fwd += k
	}
	bwd := k - fwd
	switch {
	case fwd < bwd:
		signs[0] = 1
		return signs, 1, fwd
	case bwd < fwd:
		signs[0] = -1
		return signs, 1, bwd
	default: // equidistant on an even ring: both directions minimal
		signs[0], signs[1] = 1, -1
		return signs, 2, fwd
	}
}

func (c *cube) MinimalPorts(from, to Node) []int {
	if from == to {
		return nil
	}
	ports := make([]int, 0, c.Degree())
	for d := range c.radix {
		signs, count, _ := c.dimSigns(from, to, d)
		for i := 0; i < count; i++ {
			ports = append(ports, PortFor(d, signs[i]))
		}
	}
	return ports
}

func (c *cube) IsMinimal(from, to Node, port int) bool {
	d := PortDim(port)
	if d >= len(c.radix) {
		return false
	}
	signs, count, _ := c.dimSigns(from, to, d)
	s := PortSign(port)
	for i := 0; i < count; i++ {
		if signs[i] == s {
			return true
		}
	}
	return false
}

func (c *cube) Distance(from, to Node) int {
	total := 0
	for d := range c.radix {
		_, _, dist := c.dimSigns(from, to, d)
		total += dist
	}
	return total
}

func (c *cube) CrossesDateline(n Node, port int) bool {
	if !c.wrap {
		return false
	}
	d := PortDim(port)
	k := c.radix[d]
	x := (int(n) / c.stride[d]) % k
	if PortSign(port) > 0 {
		return x == k-1
	}
	return x == 0
}

// buildHamiltonian constructs a boustrophedon (snake) order: consecutive
// nodes differ in exactly one coordinate by one, so the order is a
// Hamiltonian path of the mesh (and of the torus, which has the mesh's links
// plus wraparounds).
func (c *cube) buildHamiltonian() []Node {
	order := make([]Node, 0, c.nodes)
	for i := 0; i < c.nodes; i++ {
		order = append(order, c.NodeAt(snakeCoord(i, c.radix)))
	}
	return order
}

// snakeCoord maps a linear index to a boustrophedon coordinate via a
// reflected mixed-radix code: digit d scans forward when the quotient of
// more-significant digits is even and backward when odd.
func snakeCoord(i int, radix []int) Coord {
	co := make(Coord, len(radix))
	for d := 0; d < len(radix); d++ {
		k := radix[d]
		digit := i % k
		i /= k
		if i%2 == 1 { // odd progress of higher digits: reflect this digit
			digit = k - 1 - digit
		}
		co[d] = digit
	}
	return co
}

func (c *cube) HamiltonianOrder() []Node {
	out := make([]Node, len(c.hamOnce))
	copy(out, c.hamOnce)
	return out
}

// RecoveryLane for cubes is the serpentine Hamiltonian order: consecutive
// nodes are physically linked, so the same lane serves sequential and
// concurrent recovery, and existing golden digests stay byte-identical.
func (c *cube) RecoveryLane() []Node { return c.HamiltonianOrder() }
