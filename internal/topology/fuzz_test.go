package topology

import "testing"

// fuzzRadix decodes up to four dimensions from raw fuzz bytes; zero bytes
// terminate the list so the fuzzer can explore 1..4-dimensional shapes,
// including degenerate (radix 0/1), odd, and large radices.
func fuzzRadix(r0, r1, r2, r3 int16) []int {
	radix := []int{int(r0)}
	for _, r := range []int16{r1, r2, r3} {
		if r == 0 {
			break
		}
		radix = append(radix, int(r))
	}
	return radix
}

// checkTopology asserts structural soundness of a successfully constructed
// cube: reciprocal links, minimal-port membership consistency, and a
// Hamiltonian order that is a permutation stepping one link at a time.
func checkTopology(t *testing.T, topo Topology) {
	t.Helper()
	nodes := topo.Nodes()
	probe := nodes
	if probe > 256 {
		probe = 256 // bound per-input work; the properties are node-symmetric
	}
	for n := 0; n < probe; n++ {
		for p := 0; p < topo.Degree(); p++ {
			nb, ok := topo.Neighbor(Node(n), p)
			if !ok {
				continue
			}
			back, ok := topo.Neighbor(nb, ReversePort(p))
			if !ok || back != Node(n) {
				t.Fatalf("%s: link %d --%d--> %d not reciprocal", topo.Name(), n, p, nb)
			}
			if d, dn := topo.Distance(Node(n), nb), topo.Distance(nb, Node(n)); d != 1 || dn != 1 {
				t.Fatalf("%s: neighbor distance %d/%d, want 1", topo.Name(), d, dn)
			}
		}
		to := Node((n * 31) % nodes)
		min := topo.MinimalPorts(Node(n), to)
		inMin := map[int]bool{}
		for _, p := range min {
			inMin[p] = true
		}
		for p := 0; p < topo.Degree(); p++ {
			if topo.IsMinimal(Node(n), to, p) != inMin[p] {
				t.Fatalf("%s: IsMinimal(%d,%d,%d) disagrees with MinimalPorts %v", topo.Name(), n, to, p, min)
			}
		}
	}
	order := topo.HamiltonianOrder()
	if len(order) != nodes {
		t.Fatalf("%s: Hamiltonian order covers %d of %d nodes", topo.Name(), len(order), nodes)
	}
	visited := make([]bool, nodes)
	for i, n := range order {
		if visited[n] {
			t.Fatalf("%s: Hamiltonian order visits node %d twice", topo.Name(), n)
		}
		visited[n] = true
		if i > 0 && topo.Distance(order[i-1], n) != 1 {
			t.Fatalf("%s: Hamiltonian step %d->%d is not a link", topo.Name(), order[i-1], n)
		}
	}
}

// FuzzNewCube drives the mesh/torus constructors with arbitrary dimension
// lists: construction must either return an error or yield a structurally
// sound topology — never panic, never attempt a gigantic allocation.
func FuzzNewCube(f *testing.F) {
	f.Add(int16(4), int16(4), int16(0), int16(0), true)
	f.Add(int16(8), int16(8), int16(0), int16(0), false)
	f.Add(int16(3), int16(5), int16(7), int16(0), true) // odd radices
	f.Add(int16(2), int16(0), int16(0), int16(0), true) // 1-dim, minimum radix
	f.Add(int16(1), int16(0), int16(0), int16(0), false)
	f.Add(int16(-3), int16(9), int16(0), int16(0), true)
	f.Add(int16(32767), int16(32767), int16(32767), int16(32767), true) // size guard
	f.Fuzz(func(t *testing.T, r0, r1, r2, r3 int16, wrap bool) {
		radix := fuzzRadix(r0, r1, r2, r3)
		var (
			topo Topology
			err  error
		)
		if wrap {
			topo, err = NewTorus(radix...)
		} else {
			topo, err = NewMesh(radix...)
		}
		if err != nil {
			return
		}
		want := 1
		for _, k := range radix {
			want *= k
		}
		if topo.Nodes() != want {
			t.Fatalf("radix %v: %d nodes, want %d", radix, topo.Nodes(), want)
		}
		checkTopology(t, topo)
	})
}

// FuzzNewHypercube covers the dedicated hypercube constructor, including
// dimension counts large enough to trip the size guard.
func FuzzNewHypercube(f *testing.F) {
	for _, dims := range []int16{0, 1, 4, 20, 21, 64, -1} {
		f.Add(dims)
	}
	f.Fuzz(func(t *testing.T, dims int16) {
		topo, err := NewHypercube(int(dims))
		if err != nil {
			return
		}
		if dims < 1 || topo.Nodes() != 1<<uint(dims) {
			t.Fatalf("hypercube dims=%d accepted with %d nodes", dims, topo.Nodes())
		}
		checkTopology(t, topo)
	})
}

// TestNewCubeRejectsHugeSingleRadix pins the size-guard fix: a single
// enormous radix used to pass the pre-multiplication check and OOM inside
// the Hamiltonian builder.
func TestNewCubeRejectsHugeSingleRadix(t *testing.T) {
	if _, err := NewTorus(1 << 40); err == nil {
		t.Fatal("gigantic 1-dim torus accepted")
	}
	if _, err := NewMesh(1<<10, 1<<10, 1<<10); err == nil {
		t.Fatal("gigantic 3-dim mesh accepted")
	}
	if _, err := NewTorus(1 << 19); err != nil {
		t.Fatalf("large-but-bounded ring rejected: %v", err)
	}
}

// FuzzParse drives the name parser with arbitrary strings: it must either
// return an error or a structurally sound graph — never panic, even on
// hostile sizes, since this is the CLI -topo entry point.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"torus-8x8", "mesh-4x4x2", "hypercube-3", "fullmesh-16",
		"dragonfly-4x2", "fattree-4", "torus-", "-8", "fullmesh-99999999",
		"dragonfly-4x2x1", "torus-8x-8", "x", "torus-0x0",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		g, err := Parse(name)
		if err != nil {
			return
		}
		if g.Nodes() < 1 || g.Degree() < 0 {
			t.Fatalf("Parse(%q): %d nodes degree %d", name, g.Nodes(), g.Degree())
		}
		// The emitted name is canonical: it must re-parse to the same shape.
		g2, err := Parse(g.Name())
		if err != nil {
			t.Fatalf("Parse(%q) emitted unparseable name %q: %v", name, g.Name(), err)
		}
		if g2.Nodes() != g.Nodes() || g2.Degree() != g.Degree() {
			t.Fatalf("canonical re-parse of %q changed shape", g.Name())
		}
	})
}

// FuzzNewDigraph feeds the adjacency-list constructor arbitrary edges
// decoded from raw bytes: out-of-range targets, self-loops and oversized
// shapes must error; every accepted graph must be structurally sound.
func FuzzNewDigraph(f *testing.F) {
	f.Add(3, 2, []byte{0, 1, 1, 2, 2, 0})
	f.Add(2, 1, []byte{0, 1, 1, 0})
	f.Add(1, 1, []byte{0, 0})        // self-loop
	f.Add(2, 1, []byte{0, 5})        // out of range
	f.Add(1 << 20, 4, []byte{0, 1})  // size guard
	f.Fuzz(func(t *testing.T, nodes, degree int, edges []byte) {
		if nodes < 0 || nodes > 1<<10 || degree < 0 || degree > 8 {
			return // cap the fuzz shape, not the constructor's own guards
		}
		adj := make([][]int, nodes)
		for i := 0; i+1 < len(edges); i += 2 {
			v := int(edges[i]) % max(nodes, 1)
			if len(adj) == 0 {
				break
			}
			if len(adj[v]) < degree {
				adj[v] = append(adj[v], int(edges[i+1]))
			}
		}
		g, err := NewDigraph("fuzz", adj)
		if err != nil {
			return
		}
		for n := 0; n < g.Nodes(); n++ {
			for p := 0; p < g.Degree(); p++ {
				nb, ok := g.Neighbor(Node(n), p)
				if !ok {
					continue
				}
				if rp, rok := g.ReversePortAt(Node(n), p); rok {
					back, bok := g.Neighbor(nb, rp)
					if !bok || back != Node(n) {
						t.Fatalf("reverse port of %d--%d-->%d broken", n, p, nb)
					}
				}
				if g.Distance(Node(n), nb) != 1 {
					t.Fatalf("neighbor %d->%d distance %d", n, nb, g.Distance(Node(n), nb))
				}
			}
		}
	})
}

// FuzzDigraphConstructors covers the named non-cube constructors with
// arbitrary parameters, including negatives and values past the size
// guards: error or sound graph, never a panic or runaway allocation.
func FuzzDigraphConstructors(f *testing.F) {
	f.Add(16, 4, 2, 4)
	f.Add(0, 0, 0, 0)
	f.Add(-1, -1, -1, -1)
	f.Add(1<<30, 1<<30, 1<<30, 1<<30)
	f.Fuzz(func(t *testing.T, n, a, h, k int) {
		if g, err := NewFullMesh(n); err == nil {
			if g.Nodes() != n {
				t.Fatalf("NewFullMesh(%d): %d nodes", n, g.Nodes())
			}
		}
		if g, err := NewDragonfly(a, h); err == nil {
			if g.Nodes() != (a*h+1)*a {
				t.Fatalf("NewDragonfly(%d,%d): %d nodes", a, h, g.Nodes())
			}
		}
		if g, err := NewFatTree(k); err == nil {
			if g.Nodes() != k*k+(k/2)*(k/2) {
				t.Fatalf("NewFatTree(%d): %d nodes", k, g.Nodes())
			}
		}
	})
}
