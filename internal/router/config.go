package router

import (
	"fmt"

	"repro/internal/sim"
)

// AllocPolicy selects how router crossbar connections are allocated
// (paper Section 3.3).
type AllocPolicy int

const (
	// FlitByFlit reconfigures the crossbar every flit: input and output
	// ports are multiplexed among virtual channels each cycle. This is the
	// policy used for all of the paper's simulations.
	FlitByFlit AllocPolicy = iota
	// PacketByPacket holds a crossbar connection from header to tail;
	// neither input nor output ports are multiplexed. A Deadlock Buffer
	// packet needing a held output preempts it, the displaced connection is
	// remembered in the reconfiguration buffer and restored afterwards.
	PacketByPacket
)

// String names the allocation policy for configuration dumps.
func (a AllocPolicy) String() string {
	switch a {
	case FlitByFlit:
		return "flit-by-flit"
	case PacketByPacket:
		return "packet-by-packet"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(a))
	}
}

// Config holds the router microarchitecture parameters. The zero value is
// not usable; call Normalize (or use Default) first.
type Config struct {
	// VCs is the number of virtual channels ("edge buffers") per physical
	// channel. The paper's evaluation uses 4.
	VCs int
	// BufferDepth is the per-VC input buffer depth in flits. The paper
	// selects 2 ("shallow buffers keep the routers simple").
	BufferDepth int
	// DeadlockBufferDepth is the central Deadlock Buffer's capacity in
	// flits; the paper devotes "a single additional flit buffer" (1).
	// Setting it to 0 disables recovery entirely (useful to demonstrate
	// that Disha routing without recovery wedges).
	DeadlockBufferDepth int
	// InjectionVCs is the number of virtual channels on the injection
	// input; all algorithms in the paper use one injection channel.
	InjectionVCs int
	// ReceptionChannels bounds how many flits per cycle a node can consume;
	// the paper uses one and names raising it as future work.
	ReceptionChannels int
	// Timeout is T_out: consecutive cycles a header must be blocked before
	// the router presumes deadlock (paper default 8). Zero disables
	// detection — and with it every recovery mode.
	Timeout sim.Cycle
	// Alloc is the crossbar allocation policy.
	Alloc AllocPolicy
	// Recovery selects what happens to presumed-deadlocked packets.
	Recovery RecoveryMode
	// AdaptiveTimeout makes T_out self-tuning, the paper's last named
	// future-work item ("T_out could be programmable to vary dynamically"):
	// each router doubles its effective time-out (up to 8x Timeout) when a
	// presumption proves false — the header moves normally after all — and
	// decays it slowly back toward Timeout. Fewer false detections at small
	// base time-outs, prompt detection when congestion clears.
	AdaptiveTimeout bool
}

// RecoveryMode selects the deadlock recovery scheme used once detection
// (Timeout > 0) presumes a packet deadlocked.
type RecoveryMode int

const (
	// RecoverySequential is the paper's scheme: the packet captures the
	// circulating Token and escapes through the single central Deadlock
	// Buffer lane, routed minimally (dimension order) to its destination.
	RecoverySequential RecoveryMode = iota
	// RecoveryConcurrent is token-free recovery (the future work the paper
	// points to via its Disha-CR citation): every presumed-deadlocked
	// packet may recover immediately. Deadlock freedom of the recovery lane
	// itself comes from structure instead of mutual exclusion — two
	// direction-partitioned Deadlock Buffers per router, routed
	// monotonically along the topology's Hamiltonian path, so each lane's
	// buffer dependency chain is linear and acyclic. Requires FlitByFlit
	// allocation.
	RecoveryConcurrent
	// RecoveryAbortRetry is the Compressionless-Routing-style alternative
	// the paper argues against: presumed-deadlocked packets are killed —
	// every flit purged from the network, held channels released — and
	// retransmitted from the source. No Deadlock Buffer is needed, but
	// killed packets suffer increased latencies (paper Section 1).
	RecoveryAbortRetry
)

// String names the recovery mode for configuration dumps.
func (m RecoveryMode) String() string {
	switch m {
	case RecoverySequential:
		return "sequential"
	case RecoveryConcurrent:
		return "concurrent"
	case RecoveryAbortRetry:
		return "abort-retry"
	default:
		return fmt.Sprintf("RecoveryMode(%d)", int(m))
	}
}

// Default returns the paper's router configuration: 4 VCs of depth 2, a
// single-flit Deadlock Buffer, one injection and one reception channel,
// T_out = 8, flit-by-flit crossbar allocation.
func Default() Config {
	return Config{
		VCs:                 4,
		BufferDepth:         2,
		DeadlockBufferDepth: 1,
		InjectionVCs:        1,
		ReceptionChannels:   1,
		Timeout:             8,
		Alloc:               FlitByFlit,
	}
}

// Normalize validates the configuration and fills unset (zero) fields with
// defaults.
func (c *Config) Normalize() error {
	d := Default()
	if c.VCs == 0 {
		c.VCs = d.VCs
	}
	if c.BufferDepth == 0 {
		c.BufferDepth = d.BufferDepth
	}
	if c.InjectionVCs == 0 {
		c.InjectionVCs = d.InjectionVCs
	}
	if c.ReceptionChannels == 0 {
		c.ReceptionChannels = d.ReceptionChannels
	}
	if c.VCs < 1 {
		return fmt.Errorf("router: VCs %d < 1", c.VCs)
	}
	if c.BufferDepth < 1 {
		return fmt.Errorf("router: buffer depth %d < 1", c.BufferDepth)
	}
	if c.DeadlockBufferDepth < 0 {
		return fmt.Errorf("router: negative deadlock buffer depth")
	}
	if c.InjectionVCs < 1 {
		return fmt.Errorf("router: injection VCs %d < 1", c.InjectionVCs)
	}
	if c.ReceptionChannels < 1 {
		return fmt.Errorf("router: reception channels %d < 1", c.ReceptionChannels)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("router: negative timeout")
	}
	if c.Alloc != FlitByFlit && c.Alloc != PacketByPacket {
		return fmt.Errorf("router: unknown allocation policy %d", c.Alloc)
	}
	switch c.Recovery {
	case RecoverySequential, RecoveryAbortRetry:
	case RecoveryConcurrent:
		if c.Alloc != FlitByFlit {
			return fmt.Errorf("router: concurrent recovery requires flit-by-flit allocation")
		}
	default:
		return fmt.Errorf("router: unknown recovery mode %d", c.Recovery)
	}
	if c.Timeout > 0 && c.Recovery != RecoveryAbortRetry && c.DeadlockBufferDepth == 0 {
		return fmt.Errorf("router: %s recovery requires a Deadlock Buffer (depth >= 1)", c.Recovery)
	}
	return nil
}
