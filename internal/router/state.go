package router

import (
	"encoding/binary"

	"repro/internal/packet"
)

// InputFlitAt returns buffered flit i (0 == head) of input VC (port, vc).
// Invariant checkers walk buffers with it.
func (r *Router) InputFlitAt(port, vc, i int) packet.Flit { return r.inputs[port][vc].buf.At(i) }

// DBLaneLen returns the number of flits buffered in the given Deadlock
// Buffer lane.
func (r *Router) DBLaneLen(lane int) int { return r.dbs[lane].buf.Len() }

// DBFlitAt returns buffered flit i (0 == head) of the given Deadlock Buffer
// lane.
func (r *Router) DBFlitAt(lane, i int) packet.Flit { return r.dbs[lane].buf.At(i) }

// AppendState appends a deterministic binary encoding of the router's full
// microarchitectural state to b and returns the extended slice: every input
// VC (owner, route grants, buffered flits, timer state), output VC (owner,
// credits), Deadlock Buffer lane, crossbar connection, arbitration offset,
// adaptive-timeout state and event counter. The golden-digest conformance
// suite hashes it to prove that sharded and serial kernels leave the network
// in byte-identical states; any field that can influence a future cycle must
// be included here.
func (r *Router) AppendState(b []byte) []byte {
	put := func(v int64) {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	putBool := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	putPkt := func(p *packet.Packet) {
		if p == nil {
			put(-1)
			return
		}
		put(int64(p.ID))
	}
	putFifo := func(f *fifo) {
		put(int64(f.Len()))
		for i := 0; i < f.Len(); i++ {
			fl := f.At(i)
			putPkt(fl.Pkt)
			put(int64(fl.Seq))
		}
	}

	put(int64(r.node))
	for p := range r.inputs {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			putPkt(ivc.pkt)
			put(int64(ivc.route))
			put(int64(ivc.outVC))
			put(int64(ivc.dbLane))
			put(int64(ivc.waiting))
			putBool(ivc.presumed)
			putBool(ivc.sent)
			putFifo(&ivc.buf)
		}
	}
	for q := range r.outputs {
		for v := range r.outputs[q] {
			o := &r.outputs[q][v]
			putPkt(o.owner)
			put(int64(o.credits))
		}
	}
	for lane := range r.dbs {
		db := &r.dbs[lane]
		putPkt(db.pkt)
		put(int64(db.route))
		putFifo(&db.buf)
	}
	for q := range r.conn {
		c := &r.conn[q]
		put(int64(c.inPort))
		put(int64(c.inVC))
		putBool(c.db)
		putBool(c.saved)
		put(int64(c.savedPort))
		put(int64(c.savedVC))
	}
	put(int64(r.vcArbOffset))
	for _, off := range r.swArbOffset {
		put(int64(off))
	}
	put(int64(r.effTout))
	put(int64(r.decayCount))
	put(r.stats.TimeoutEvents)
	put(r.stats.FalseDetections)
	put(r.stats.Recoveries)
	put(r.stats.MisrouteHops)
	put(r.stats.FlitsSwitched)
	put(r.stats.FlitsEjected)
	put(r.stats.DBFlitsCarried)
	put(r.stats.Preemptions)
	put(r.stats.BlockedCycles)
	for _, c := range r.blockedByVC {
		put(c)
	}
	put(int64(r.lastBlocked))
	put(int64(r.lastPresumed))
	return b
}
