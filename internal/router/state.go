package router

import (
	"encoding/binary"

	"repro/internal/packet"
)

// InputFlitAt returns buffered flit i (0 == head) of input VC (port, vc).
// Invariant checkers walk buffers with it.
func (r *Router) InputFlitAt(port, vc, i int) packet.Flit { return r.st.inAt(r.inIdx(port, vc), i) }

// DBLaneLen returns the number of flits buffered in the given Deadlock
// Buffer lane.
func (r *Router) DBLaneLen(lane int) int { return int(r.st.dbLen[r.dbIdx(lane)]) }

// DBFlitAt returns buffered flit i (0 == head) of the given Deadlock Buffer
// lane.
func (r *Router) DBFlitAt(lane, i int) packet.Flit { return r.st.dbAt(r.dbIdx(lane), i) }

// AppendState appends a deterministic binary encoding of the router's full
// microarchitectural state to b and returns the extended slice: every input
// VC (owner, route grants, buffered flits, timer state), output VC (owner,
// credits), Deadlock Buffer lane, crossbar connection, arbitration offset,
// adaptive-timeout state and event counter. The golden-digest conformance
// suite hashes it to prove that sharded and serial kernels leave the network
// in byte-identical states; any field that can influence a future cycle must
// be included here.
//
// The encoding walks the logical (port, vc) order and each ring's logical
// head-to-tail order, never the physical SoA layout (ring head positions,
// flat slot indices), so it is layout-invariant: the struct-of-arrays
// representation produces the same bytes the per-router structs did.
func (r *Router) AppendState(b []byte) []byte {
	s := r.st
	put := func(v int64) {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	putBool := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	putPkt := func(p *packet.Packet) {
		if p == nil {
			put(-1)
			return
		}
		put(int64(p.ID))
	}

	put(int64(r.node))
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		putPkt(s.inPkt[i])
		put(int64(s.inRoute[i]))
		put(int64(s.inOutVC[i]))
		put(int64(s.inDBLane[i]))
		put(int64(s.inWaiting[i]))
		putBool(s.inPresumed[i])
		putBool(s.inSent[i])
		put(int64(s.inLen[i]))
		for k := 0; k < int(s.inLen[i]); k++ {
			fl := s.inAt(i, k)
			putPkt(fl.Pkt)
			put(int64(fl.Seq))
		}
	}
	for l := 0; l < s.outStr; l++ {
		i := r.out0 + l
		putPkt(s.outOwner[i])
		put(int64(s.outCredits[i]))
	}
	for lane := 0; lane < s.lanes; lane++ {
		i := r.db0 + lane
		putPkt(s.dbPkt[i])
		put(int64(s.dbRoute[i]))
		put(int64(s.dbLen[i]))
		for k := 0; k < int(s.dbLen[i]); k++ {
			fl := s.dbAt(i, k)
			putPkt(fl.Pkt)
			put(int64(fl.Seq))
		}
	}
	for q := 0; q < r.deg; q++ {
		i := r.cx0 + q
		put(int64(s.cxInPort[i]))
		put(int64(s.cxInVC[i]))
		putBool(s.cxDB[i])
		putBool(s.cxSaved[i])
		put(int64(s.cxSavedPort[i]))
		put(int64(s.cxSavedVC[i]))
	}
	put(int64(s.vcArbOff[r.node]))
	for q := 0; q <= r.deg; q++ {
		put(int64(s.swArbOff[r.swIdx(q)]))
	}
	put(int64(s.effTout[r.node]))
	put(int64(s.decayCount[r.node]))
	put(r.stats.TimeoutEvents)
	put(r.stats.FalseDetections)
	put(r.stats.Recoveries)
	put(r.stats.MisrouteHops)
	put(r.stats.FlitsSwitched)
	put(r.stats.FlitsEjected)
	put(r.stats.DBFlitsCarried)
	put(r.stats.Preemptions)
	put(r.stats.BlockedCycles)
	for _, c := range r.blockedByVC {
		put(c)
	}
	put(int64(s.lastBlocked[r.node]))
	put(int64(s.lastPresumed[r.node]))
	return b
}
