package router

import (
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Transfer is one staged flit movement for the current cycle. All transfers
// are staged against start-of-cycle state by StageSwitch and applied together
// by Commit, which keeps the simulation order-independent across routers.
// Staging is router-local (it touches only the staging router's state), so
// disjoint router shards may stage concurrently; the cross-router Deadlock
// Buffer write-port constraint is enforced afterwards by Reservations.Resolve
// in fixed router order.
type Transfer struct {
	From       *Router
	FromPort   int // source input port; ignored when FromDB
	FromVC     int
	FromDB     bool // source is a Deadlock Buffer lane
	FromDBLane int

	To       *Router // nil for ejection
	OutPort  int     // sender's output port (To != nil)
	ToVC     int     // receiving VC index (== sender's output VC); ignored when ToDB
	ToDB     bool    // flit enters the receiver's Deadlock Buffer (status line asserted)
	ToDBLane int
	Eject    bool // flit is consumed by From's reception channel

	// Dropped marks a Deadlock-Buffer transfer that lost the per-cycle
	// write-port arbitration in Reservations.Resolve; Commit must skip it.
	Dropped bool
}

// dbKey identifies one Deadlock Buffer lane for per-cycle reservations.
type dbKey struct {
	r    *Router
	lane int
}

// Reservations tracks per-cycle Deadlock Buffer admissions. Each DB is a
// central queue with a single write port (as in the Chaos router the paper
// cites), so at most one flit per cycle may enter it, and only for the
// packet currently threading it.
type Reservations struct {
	m map[dbKey]int
}

// NewReservations returns an empty per-cycle reservation table.
func NewReservations() *Reservations {
	return &Reservations{m: make(map[dbKey]int)}
}

// Reset clears the table for the next cycle.
func (res *Reservations) Reset() {
	for k := range res.m {
		delete(res.m, k)
	}
}

// ReserveDB attempts to admit one flit of p into lane of target's Deadlock
// Buffer this cycle.
func (res *Reservations) ReserveDB(target *Router, lane int, p *packet.Packet) bool {
	if !dbStageable(target, lane, p) {
		return false
	}
	i := target.dbIdx(lane)
	k := dbKey{target, lane}
	if res.m[k] >= 1 { // single write port
		return false
	}
	if target.st.dbDepth-int(target.st.dbLen[i])-res.m[k] < 1 {
		return false
	}
	res.m[k]++
	return true
}

// dbStageable reports whether one flit of p could enter lane of target's
// Deadlock Buffer this cycle as far as start-of-cycle state is concerned:
// the lane exists, is idle or already threaded by p, and has a free slot.
// It deliberately ignores the per-cycle single-write-port constraint, which
// depends on what other routers stage: StageSwitch uses this check so that
// staging reads only start-of-cycle state (safe and deterministic under
// concurrent sharded staging) and Reservations.Resolve settles the write
// port afterwards in fixed router order.
func dbStageable(target *Router, lane int, p *packet.Packet) bool {
	if target == nil || lane < 0 || lane >= target.st.lanes {
		return false
	}
	i := target.dbIdx(lane)
	owner := target.st.dbPkt[i]
	return (owner == nil || owner == p) && target.st.dbDepth-int(target.st.dbLen[i]) >= 1
}

// Resolve arbitrates the staged Deadlock Buffer admissions of one cycle: it
// walks the transfers in order and re-checks every DB-bound transfer against
// the single-write-port reservation table, marking losers Dropped and
// un-staging their source (the sent flag is cleared so TickTimers still sees
// the header as blocked). Callers invoke it serially, shard by shard in
// fixed router order, between staging and Commit; the surviving transfers
// are exactly those a fully serial stage-with-reservations pass would have
// admitted, except that a port whose optimistically staged DB transfer loses
// arbitration idles for the cycle instead of re-arbitrating.
func (res *Reservations) Resolve(xfers []Transfer) {
	for i := range xfers {
		t := &xfers[i]
		if !t.ToDB {
			continue
		}
		var p *packet.Packet
		if t.FromDB {
			p = t.From.st.dbPkt[t.From.dbIdx(t.FromDBLane)]
		} else {
			p = t.From.st.inPkt[t.From.inIdx(t.FromPort, t.FromVC)]
		}
		if res.ReserveDB(t.To, t.ToDBLane, p) {
			continue
		}
		t.Dropped = true
		if !t.FromDB {
			t.From.st.inSent[t.From.inIdx(t.FromPort, t.FromVC)] = false
		}
	}
}

// --- Routing / virtual channel allocation ------------------------------------

// StageRoutingRef is the retained reference implementation of the routing /
// VC-allocation phase: a faithful port of the pre-SoA per-router scan,
// recomputing the slot total and mapping each rotating flat index to its
// (port, vc) with the O(ports) nthInputVC walk before visiting the slot. It
// makes exactly the decisions StageRouting makes, in the same order — the
// differential conformance suite and the benchgate speed gates run the two
// against each other. Select it network-wide with KernelConfig.ReferenceScan.
func (r *Router) StageRoutingRef() {
	total := 0
	for p := 0; p <= r.deg; p++ {
		total += r.st.inVCCount(r.deg, p)
	}
	off := int(r.st.vcArbOff[r.node])
	r.st.vcArbOff[r.node] = int32((off + 1) % max(total, 1))
	for i := 0; i < total; i++ {
		port, vc := r.nthInputVC((off + i) % total)
		r.routeSlot(r.inIdx(port, vc))
	}
}

// nthInputVC maps a flat index to an (port, vc) pair by walking the ports —
// the pre-SoA mapping, retained for the reference scan path (the optimized
// scans use the O(1) portVCOf inverse instead).
func (r *Router) nthInputVC(i int) (port, vc int) {
	for p := 0; p <= r.deg; p++ {
		n := r.st.inVCCount(r.deg, p)
		if i < n {
			return p, i
		}
		i -= n
	}
	panic("router: input VC index out of range")
}

// routeSlot performs routing computation and output VC allocation for the
// input VC at global slot i, if its head flit is an unrouted header. Grants
// take effect immediately in router-local state (output VC ownership), so
// later slots visited in the same cycle see them.
func (r *Router) routeSlot(i int) {
	s := r.st
	if s.inLen[i] == 0 || s.inRoute[i] != PortUnrouted {
		return
	}
	head := s.inPeek(i)
	if !head.IsHeader() {
		return
	}
	p := head.Pkt
	if p.Dst == r.node {
		s.inRoute[i] = PortEject
		return
	}
	if p.OnDB {
		// A recovered packet re-routes onto the DB lane; this occurs only if
		// the recovery grant was made before the header advanced (normally
		// Recover sets the route directly).
		lane := r.recoveryLane(p.Dst)
		s.inDBLane[i] = int32(lane)
		s.inRoute[i] = int32(r.dbLaneRoute(lane, p.Dst))
		s.inOutVC[i] = VCDeadlockBuffer
		return
	}

	cands := r.alg.Route(r, p, r.candBuf[:0])
	r.candBuf = cands[:0]
	// Keep only candidates whose link exists and whose output VC is free,
	// then restrict to the best (lowest) preference class present.
	usable := cands[:0]
	bestClass := int(^uint(0) >> 1)
	for _, c := range cands {
		if !r.LinkExists(c.Port) || !r.OutputVCFree(c.Port, c.VC) {
			continue
		}
		if c.Class < bestClass {
			bestClass = c.Class
			usable = usable[:0]
		}
		if c.Class == bestClass {
			usable = append(usable, c)
		}
	}
	if len(usable) == 0 {
		return // blocked; retried next cycle
	}
	choice := usable[0]
	if len(usable) > 1 {
		choice = r.sel.Pick(r, usable, r.rng)
	}
	s.outOwner[r.outIdx(choice.Port, choice.VC)] = p
	s.inRoute[i] = int32(choice.Port)
	s.inOutVC[i] = int32(choice.VC)
	if choice.ToDeterministic {
		p.OnDeterministic = true
	}
}

// --- Switch allocation ----------------------------------------------------------

// StageSwitchRef is the retained reference implementation of switch
// allocation, structured like the pre-SoA scan (per-call totals, nthInputVC
// index walks). Byte-identical in effect to StageSwitch; see StageRoutingRef.
func (r *Router) StageSwitchRef(out []Transfer) []Transfer {
	out = r.stageEjectionRef(out)
	if r.cfg.Alloc == PacketByPacket {
		return r.stageSwitchPBP(out)
	}
	return r.stageSwitchFBFRef(out)
}

// stageEjectionRef grants the reception channel(s): the Deadlock Buffers
// first (the recovery lane must always drain), then input VCs round-robin.
func (r *Router) stageEjectionRef(out []Transfer) []Transfer {
	s := r.st
	budget := r.cfg.ReceptionChannels
	if budget == 0 {
		return out
	}
	for lane := 0; lane < s.lanes; lane++ {
		if budget == 0 {
			break
		}
		i := r.dbIdx(lane)
		if s.dbLen[i] != 0 && int(s.dbRoute[i]) == PortEject {
			out = append(out, Transfer{From: r, FromDB: true, FromDBLane: lane, Eject: true})
			budget--
		}
	}
	total := 0
	for p := 0; p <= r.deg; p++ {
		total += s.inVCCount(r.deg, p)
	}
	off := int(s.swArbOff[r.swIdx(r.deg)])
	granted := false
	for i := 0; i < total && budget > 0; i++ {
		port, vc := r.nthInputVC((off + i) % total)
		g := r.inIdx(port, vc)
		if int(s.inRoute[g]) != PortEject || s.inLen[g] == 0 || s.inSent[g] {
			continue
		}
		out = append(out, Transfer{From: r, FromPort: port, FromVC: vc, Eject: true})
		s.inSent[g] = true
		budget--
		if !granted {
			s.swArbOff[r.swIdx(r.deg)] = int32((off + i + 1) % total)
			granted = true
		}
	}
	return out
}

// stageSwitchFBFRef implements flit-by-flit crossbar allocation with the
// reference index walks: a greedy matching of input ports to output ports,
// one flit per port per cycle, with the Deadlock Buffer as an extra crossbar
// input that has priority on its output (so the recovery lane always
// progresses).
func (r *Router) stageSwitchFBFRef(out []Transfer) []Transfer {
	s := r.st
	var inputUsed [64]bool // deg+1 <= 64 always (n <= 31 dims)
	// Ejection grants above already consumed their input ports this cycle.
	for p := 0; p <= r.deg; p++ {
		for v := 0; v < s.inVCCount(r.deg, p); v++ {
			if s.inSent[r.inIdx(p, v)] {
				inputUsed[p] = true
			}
		}
	}
	total := 0
	for p := 0; p <= r.deg; p++ {
		total += s.inVCCount(r.deg, p)
	}
	for q := 0; q < r.deg; q++ {
		if r.neighbors[q] == nil {
			continue
		}
		if r.stageDBOutput(q, &out) {
			continue
		}
		out = r.arbitrateInputRef(q, total, &inputUsed, out)
	}
	return out
}

// stageDBOutput stages the Deadlock Buffer hop on output q if some lane
// wants it: each lane continues on the same lane index at the next router.
// Shared by the reference and optimized switch scans.
func (r *Router) stageDBOutput(q int, out *[]Transfer) bool {
	s := r.st
	for lane := 0; lane < s.lanes; lane++ {
		i := r.dbIdx(lane)
		if s.dbLen[i] != 0 && int(s.dbRoute[i]) == q && dbStageable(r.neighbors[q], lane, s.dbPkt[i]) {
			*out = append(*out, Transfer{From: r, FromDB: true, FromDBLane: lane,
				To: r.neighbors[q], OutPort: q, ToDB: true, ToDBLane: lane})
			return true
		}
	}
	return false
}

// arbitrateInputRef grants output port q to one sendable input VC this
// cycle, round-robin from the port's rotating offset, using the reference
// nthInputVC index walk. It is the per-flit output arbitration of the
// flit-by-flit policy and the lending fallback of the packet-by-packet
// policy (which always uses the optimized arbitrateInput — the PBP scan has
// no reference twin).
func (r *Router) arbitrateInputRef(q, total int, inputUsed *[64]bool, out []Transfer) []Transfer {
	s := r.st
	off := int(s.swArbOff[r.swIdx(q)])
	for i := 0; i < total; i++ {
		port, vc := r.nthInputVC((off + i) % total)
		if inputUsed[port] {
			continue
		}
		g := r.inIdx(port, vc)
		if int(s.inRoute[g]) != q || s.inLen[g] == 0 {
			continue
		}
		if int(s.inOutVC[g]) == VCDeadlockBuffer {
			if !dbStageable(r.neighbors[q], int(s.inDBLane[g]), s.inPkt[g]) {
				continue
			}
			out = append(out, Transfer{From: r, FromPort: port, FromVC: vc,
				To: r.neighbors[q], OutPort: q, ToDB: true, ToDBLane: int(s.inDBLane[g])})
		} else {
			if s.outCredits[r.outIdx(q, int(s.inOutVC[g]))] <= 0 {
				continue
			}
			out = append(out, Transfer{From: r, FromPort: port, FromVC: vc, To: r.neighbors[q], OutPort: q, ToVC: int(s.inOutVC[g])})
		}
		inputUsed[port] = true
		s.inSent[g] = true
		s.swArbOff[r.swIdx(q)] = int32((off + i + 1) % total)
		break
	}
	return out
}

// --- Commit -----------------------------------------------------------------------

// Sink consumes flits ejected into a node's reception channel. The network
// implements it to record delivery, statistics and Token release.
type Sink interface {
	Deliver(fl packet.Flit, at topology.Node)
}

// Commit applies a staged transfer; ejected flits are passed to sink.
// Transfers marked Dropped by Reservations.Resolve are ignored.
func Commit(t Transfer, sink Sink) {
	if t.Dropped {
		return
	}
	fl := t.popSource()
	switch {
	case t.Eject:
		t.From.stats.FlitsEjected++
		sink.Deliver(fl, t.From.node)
	case t.ToDB:
		to := t.To
		i := to.dbIdx(t.ToDBLane)
		to.st.dbPush(i, fl)
		to.st.flitCount[to.node]++
		if fl.IsHeader() {
			to.st.dbPkt[i] = fl.Pkt
			to.st.dbRoute[i] = int32(to.dbLaneRoute(t.ToDBLane, fl.Pkt.Dst))
			fl.Pkt.Hops++
		}
		t.From.stats.FlitsSwitched++
	default:
		to := t.To
		inPort := int(t.From.rev[t.OutPort])
		ti := to.inIdx(inPort, t.ToVC)
		to.st.inPush(ti, fl)
		to.st.flitCount[to.node]++
		if fl.IsHeader() {
			to.st.inPkt[ti] = fl.Pkt
		}
		oi := t.From.outIdx(t.OutPort, t.ToVC)
		t.From.st.outCredits[oi]--
		if fl.IsTail() {
			t.From.st.outOwner[oi] = nil
		}
		t.From.stats.FlitsSwitched++
		if fl.IsHeader() {
			t.From.applyHeaderHop(fl.Pkt, t.OutPort)
		}
	}
}

// popSource removes the flit from its source buffer, returning credits to
// the upstream output VC and releasing wormhole state on tails.
func (t Transfer) popSource() packet.Flit {
	r := t.From
	s := r.st
	if t.FromDB {
		i := r.dbIdx(t.FromDBLane)
		fl := s.dbPop(i)
		s.flitCount[r.node]--
		r.stats.DBFlitsCarried++
		if fl.IsTail() {
			s.dbPkt[i] = nil
			s.dbRoute[i] = PortUnrouted
		}
		return fl
	}
	i := r.inIdx(t.FromPort, t.FromVC)
	fl := s.inPop(i)
	s.flitCount[r.node]--
	if t.FromPort < r.deg && r.neighbors[t.FromPort] != nil {
		up := r.neighbors[t.FromPort]
		up.st.outCredits[up.outIdx(int(r.rev[t.FromPort]), t.FromVC)]++
	}
	if fl.IsTail() {
		s.inPkt[i] = nil
		s.inRoute[i] = PortUnrouted
		s.inOutVC[i] = VCUnrouted
		s.inWaiting[i] = 0
		s.inPresumed[i] = false
	}
	return fl
}

// applyHeaderHop updates per-packet routing state when a header crosses a
// normal (edge-buffer) link out of r.
func (r *Router) applyHeaderHop(p *packet.Packet, outPort int) {
	p.Hops++
	if r.ctopo != nil {
		// Dimension-reversal and dateline state only exist on coordinate
		// topologies; the algorithms that consume them reject coordinate-
		// free graphs at configuration time.
		d := topology.PortDim(outPort)
		if p.LastDim >= 0 && d < p.LastDim {
			p.DimReversals++
		}
		p.LastDim = d
		if r.ctopo.CrossesDateline(r.node, outPort) {
			p.DatelineCrossed |= 1 << uint(d)
		}
	}
	nb := r.neighbors[outPort]
	if r.topo.Distance(nb.node, p.Dst) >= r.topo.Distance(r.node, p.Dst) {
		p.Misroutes++
		r.stats.MisrouteHops++
	}
}

// --- Deadlock detection & recovery ---------------------------------------------

// TickTimersRef is the retained reference implementation of the deadlock
// timer phase: the pre-SoA nested (port, vc) walk over the input VCs.
// Byte-identical in effect to TickTimers; see StageRoutingRef.
func (r *Router) TickTimersRef() int {
	s := r.st
	newly := 0
	blocked, presumed := 0, 0
	tout := r.tickDecay()
	for p := 0; p <= r.deg; p++ {
		for v := 0; v < s.inVCCount(r.deg, p); v++ {
			newly += r.tickSlot(r.inIdx(p, v), p, v, tout, &blocked, &presumed)
		}
	}
	s.lastBlocked[r.node] = int32(blocked)
	s.lastPresumed[r.node] = int32(presumed)
	return newly
}

// tickDecay returns the timeout in force this cycle and, under
// AdaptiveTimeout, applies the slow decay of the self-tuned T_out back
// toward the configured base.
func (r *Router) tickDecay() sim.Cycle {
	tout := r.cfg.Timeout
	if r.cfg.AdaptiveTimeout {
		s := r.st
		tout = s.effTout[r.node]
		s.decayCount[r.node]++
		if s.decayCount[r.node] >= 256 {
			s.decayCount[r.node] = 0
			if s.effTout[r.node] > r.cfg.Timeout {
				s.effTout[r.node]--
			}
		}
	}
	return tout
}

// tickSlot advances the deadlock timer of the input VC at global slot i =
// inIdx(p, v) and clears its per-cycle sent marker, returning 1 if its
// header newly crossed T_out. Shared by the reference and optimized timer
// scans.
func (r *Router) tickSlot(i, p, v int, tout sim.Cycle, blocked, presumed *int) int {
	s := r.st
	if s.inSent[i] {
		if s.inPresumed[i] {
			// The presumed-deadlocked header moved normally: a false
			// detection. Under AdaptiveTimeout, back off.
			r.stats.FalseDetections++
			if r.cfg.AdaptiveTimeout {
				s.effTout[r.node] *= 2
				if max8 := 8 * r.cfg.Timeout; s.effTout[r.node] > max8 {
					s.effTout[r.node] = max8
				}
			}
		}
		s.inSent[i] = false
		s.inWaiting[i] = 0
		s.inPresumed[i] = false
		return 0
	}
	if s.inLen[i] == 0 {
		s.inWaiting[i] = 0
		s.inPresumed[i] = false
		return 0
	}
	head := s.inPeek(i)
	// Only headers not draining to the local reception channel and not
	// already recovering are candidates for presumption.
	if !head.IsHeader() || int(s.inRoute[i]) == PortEject || head.Pkt.OnDB {
		s.inWaiting[i] = 0
		s.inPresumed[i] = false
		return 0
	}
	s.inWaiting[i]++
	*blocked++
	r.stats.BlockedCycles++
	r.blockedByVC[v]++
	if s.inPresumed[i] {
		*presumed++
	}
	if tout > 0 && s.inWaiting[i] > tout && !s.inPresumed[i] {
		// Headers still at the injection port hold no network channels, so
		// they cannot be deadlock members; they are presumed only when
		// STRANDED by link faults (the routing function offers no live port
		// at all), in which case only the recovery lane can ever deliver
		// them. The stranded check is throttled: faults are rare events.
		if p == r.deg {
			if (s.inWaiting[i]-tout)%16 != 1 || !r.strandedHeader(head.Pkt) {
				return 0
			}
		}
		s.inPresumed[i] = true
		*presumed++
		head.Pkt.TimedOut = true
		r.stats.TimeoutEvents++
		if r.onTimeout != nil {
			r.pendingTimeouts = append(r.pendingTimeouts, head.Pkt)
		}
		return 1
	}
	return 0
}

// FlushTimeouts invokes the SetOnTimeout observer for every header newly
// presumed during the last TickTimers, in detection order, and clears the
// buffer. The network calls it serially in fixed router order after the
// (possibly sharded) timer phase, so observer side effects — trace records,
// flight-recorder triggers — happen in the same order regardless of the
// kernel's shard count.
func (r *Router) FlushTimeouts() {
	if len(r.pendingTimeouts) == 0 {
		return
	}
	for i, p := range r.pendingTimeouts {
		if r.onTimeout != nil {
			r.onTimeout(p)
		}
		r.pendingTimeouts[i] = nil
	}
	r.pendingTimeouts = r.pendingTimeouts[:0]
}

// strandedHeader reports whether the packet's routing function offers no
// live output port at this router — only possible with failed links; such
// a packet can never advance on edge channels and must be recovered.
func (r *Router) strandedHeader(p *packet.Packet) bool {
	cands := r.alg.Route(r, p, r.candBuf[:0])
	r.candBuf = cands[:0]
	for _, c := range cands {
		if r.LinkExists(c.Port) {
			return false
		}
	}
	return true
}

// MostStarved returns the presumed-deadlocked input VC whose header has
// waited longest; ok is false when the router has none. The circulating
// Token queries this to decide whether to stop here. Injection-port VCs
// are included: they are presumed only when stranded by faults.
func (r *Router) MostStarved() (port, vc int, ok bool) {
	s := r.st
	var best sim.Cycle = -1
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		if s.inPresumed[i] && s.inWaiting[i] > best {
			best = s.inWaiting[i]
			port, vc = r.portVCOf(l)
			ok = true
		}
	}
	return port, vc, ok
}

// Recover switches the packet whose header waits in input VC (port, vc)
// onto the Deadlock Buffer lane: it releases any edge output VC the header
// held, marks the packet recovered (it may use only Deadlock Buffers from
// here to its destination — paper Assumption 3) and aims it at the next DB
// hop: minimal dimension-order under sequential recovery, the monotone
// Hamiltonian step of the packet's lane under concurrent recovery. It
// returns the recovered packet.
func (r *Router) Recover(port, vc int, now sim.Cycle) *packet.Packet {
	s := r.st
	i := r.inIdx(port, vc)
	p := s.inPkt[i]
	if p == nil || s.inLen[i] == 0 || !s.inPeek(i).IsHeader() {
		panic("router: Recover on a VC without a blocked header")
	}
	if s.inRoute[i] >= 0 && s.inOutVC[i] >= 0 {
		s.outOwner[r.outIdx(int(s.inRoute[i]), int(s.inOutVC[i]))] = nil
	}
	p.OnDB = true
	p.SeizedToken = r.cfg.Recovery == RecoverySequential
	p.RecoveredAt = now
	lane := r.recoveryLane(p.Dst)
	s.inDBLane[i] = int32(lane)
	s.inRoute[i] = int32(r.dbLaneRoute(lane, p.Dst))
	s.inOutVC[i] = VCDeadlockBuffer
	s.inWaiting[i] = 0
	s.inPresumed[i] = false
	r.stats.Recoveries++
	return p
}

// RecoverPresumed (concurrent recovery) switches every presumed-deadlocked
// packet at this router onto its Deadlock Buffer lane — no Token, no mutual
// exclusion. Each recovered packet is appended to out (pass a reused
// scratch slice to keep the call allocation-free); the extended slice is
// returned so callers can trace and track per-packet recoveries.
func (r *Router) RecoverPresumed(now sim.Cycle, out []*packet.Packet) []*packet.Packet {
	s := r.st
	// Network ports only — exactly the first deg*vcs slots of the port-major
	// layout (injection slots sit at the end of the router's range).
	for l := 0; l < r.deg*s.vcs; l++ {
		if s.inPresumed[r.in0+l] {
			p, v := r.portVCOf(l)
			out = append(out, r.Recover(p, v, now))
		}
	}
	return out
}

// recoveryLane picks the Deadlock Buffer lane for a recovery starting here:
// lane 0 under sequential recovery; under concurrent recovery the up lane
// when the destination's Hamiltonian label is larger, else the down lane.
func (r *Router) recoveryLane(dst topology.Node) int {
	if r.cfg.Recovery != RecoveryConcurrent {
		return 0
	}
	if r.hamLabels == nil {
		panic("router: concurrent recovery without ConnectHamiltonian")
	}
	if r.hamLabels[dst] > r.hamLabel {
		return laneUp
	}
	return laneDown
}

// dbLaneRoute returns the Deadlock Buffer lane's output at this router for
// a packet to dst: ejection at the destination, minimal dimension-order for
// the sequential lane, the monotone Hamiltonian-path step for concurrent
// lanes (which keeps each lane's buffer dependency chain linear and hence
// acyclic).
func (r *Router) dbLaneRoute(lane int, dst topology.Node) int {
	if r.node == dst {
		return PortEject
	}
	if r.cfg.Recovery == RecoveryConcurrent {
		if lane == laneUp {
			return r.hamNextPort
		}
		return r.hamPrevPort
	}
	if r.dbTable != nil {
		return int(r.dbTable[int(dst)*r.topo.Nodes()+int(r.node)])
	}
	// Coordinate-free graphs always carry a dbTable (the network installs
	// the BFS table at construction), so reaching the dimension-order
	// fallback implies cube coordinates exist.
	port, ok := routing.DORPort(r.ctopo, r.node, dst)
	if !ok {
		return PortEject
	}
	return port
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PresumedPackets appends the distinct packets currently presumed
// deadlocked at this router (abort-retry recovery collects its victims
// through it).
func (r *Router) PresumedPackets(out []*packet.Packet) []*packet.Packet {
	s := r.st
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		if s.inPresumed[i] && s.inPkt[i] != nil {
			out = append(out, s.inPkt[i])
		}
	}
	return out
}

// PurgePacket removes every flit of p from this router and releases all
// channel state p holds here: input VC ownership (returning the purged
// flits' credits upstream), granted and in-use output VCs, and — indirectly,
// through the stale-connection checks — packet-by-packet crossbar
// connections. It returns the number of flits purged. Abort-and-retry
// recovery calls it on every router to kill a packet.
func (r *Router) PurgePacket(p *packet.Packet) int {
	s := r.st
	purged := 0
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		if s.inPkt[i] != p {
			continue
		}
		port, v := r.portVCOf(l)
		n := int(s.inLen[i])
		for k := 0; k < n; k++ {
			s.inPop(i)
		}
		s.flitCount[r.node] -= int32(n)
		purged += n
		if n > 0 && port < r.deg && r.neighbors[port] != nil {
			up := r.neighbors[port]
			up.st.outCredits[up.outIdx(int(r.rev[port]), v)] += int32(n)
		}
		s.inPkt[i] = nil
		s.inRoute[i] = PortUnrouted
		s.inOutVC[i] = VCUnrouted
		s.inWaiting[i] = 0
		s.inPresumed[i] = false
		s.inSent[i] = false
	}
	for q := 0; q < r.deg; q++ {
		for v := 0; v < s.vcs; v++ {
			i := r.outIdx(q, v)
			if s.outOwner[i] == p {
				s.outOwner[i] = nil
			}
		}
	}
	return purged
}
