package router

import (
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Transfer is one staged flit movement for the current cycle. All transfers
// are staged against start-of-cycle state by StageSwitch and applied together
// by Commit, which keeps the simulation order-independent across routers.
// Staging is router-local (it touches only the staging router's state), so
// disjoint router shards may stage concurrently; the cross-router Deadlock
// Buffer write-port constraint is enforced afterwards by Reservations.Resolve
// in fixed router order.
type Transfer struct {
	From       *Router
	FromPort   int // source input port; ignored when FromDB
	FromVC     int
	FromDB     bool // source is a Deadlock Buffer lane
	FromDBLane int

	To       *Router // nil for ejection
	OutPort  int     // sender's output port (To != nil)
	ToVC     int     // receiving VC index (== sender's output VC); ignored when ToDB
	ToDB     bool    // flit enters the receiver's Deadlock Buffer (status line asserted)
	ToDBLane int
	Eject    bool // flit is consumed by From's reception channel

	// Dropped marks a Deadlock-Buffer transfer that lost the per-cycle
	// write-port arbitration in Reservations.Resolve; Commit must skip it.
	Dropped bool
}

// dbKey identifies one Deadlock Buffer lane for per-cycle reservations.
type dbKey struct {
	r    *Router
	lane int
}

// Reservations tracks per-cycle Deadlock Buffer admissions. Each DB is a
// central queue with a single write port (as in the Chaos router the paper
// cites), so at most one flit per cycle may enter it, and only for the
// packet currently threading it.
type Reservations struct {
	m map[dbKey]int
}

// NewReservations returns an empty per-cycle reservation table.
func NewReservations() *Reservations {
	return &Reservations{m: make(map[dbKey]int)}
}

// Reset clears the table for the next cycle.
func (res *Reservations) Reset() {
	for k := range res.m {
		delete(res.m, k)
	}
}

// ReserveDB attempts to admit one flit of p into lane of target's Deadlock
// Buffer this cycle.
func (res *Reservations) ReserveDB(target *Router, lane int, p *packet.Packet) bool {
	if !dbStageable(target, lane, p) {
		return false
	}
	db := &target.dbs[lane]
	k := dbKey{target, lane}
	if res.m[k] >= 1 { // single write port
		return false
	}
	if db.buf.Space()-res.m[k] < 1 {
		return false
	}
	res.m[k]++
	return true
}

// dbStageable reports whether one flit of p could enter lane of target's
// Deadlock Buffer this cycle as far as start-of-cycle state is concerned:
// the lane exists, is idle or already threaded by p, and has a free slot.
// It deliberately ignores the per-cycle single-write-port constraint, which
// depends on what other routers stage: StageSwitch uses this check so that
// staging reads only start-of-cycle state (safe and deterministic under
// concurrent sharded staging) and Reservations.Resolve settles the write
// port afterwards in fixed router order.
func dbStageable(target *Router, lane int, p *packet.Packet) bool {
	if target == nil || lane < 0 || lane >= len(target.dbs) {
		return false
	}
	db := &target.dbs[lane]
	return (db.pkt == nil || db.pkt == p) && db.buf.Space() >= 1
}

// Resolve arbitrates the staged Deadlock Buffer admissions of one cycle: it
// walks the transfers in order and re-checks every DB-bound transfer against
// the single-write-port reservation table, marking losers Dropped and
// un-staging their source (the sent flag is cleared so TickTimers still sees
// the header as blocked). Callers invoke it serially, shard by shard in
// fixed router order, between staging and Commit; the surviving transfers
// are exactly those a fully serial stage-with-reservations pass would have
// admitted, except that a port whose optimistically staged DB transfer loses
// arbitration idles for the cycle instead of re-arbitrating.
func (res *Reservations) Resolve(xfers []Transfer) {
	for i := range xfers {
		t := &xfers[i]
		if !t.ToDB {
			continue
		}
		var p *packet.Packet
		if t.FromDB {
			p = t.From.dbs[t.FromDBLane].pkt
		} else {
			p = t.From.inputs[t.FromPort][t.FromVC].pkt
		}
		if res.ReserveDB(t.To, t.ToDBLane, p) {
			continue
		}
		t.Dropped = true
		if !t.FromDB {
			t.From.inputs[t.FromPort][t.FromVC].sent = false
		}
	}
}

// --- Routing / virtual channel allocation ------------------------------------

// StageRouting performs routing computation and output VC allocation for
// every input VC whose head flit is an unrouted header. Grants take effect
// immediately in router-local state (output VC ownership), so later headers
// in the same cycle see them; the rotating start offset keeps this fair.
func (r *Router) StageRouting() {
	total := 0
	for p := range r.inputs {
		total += len(r.inputs[p])
	}
	off := r.vcArbOffset
	r.vcArbOffset = (r.vcArbOffset + 1) % max(total, 1)
	for i := 0; i < total; i++ {
		port, vc := r.nthInputVC((off + i) % total)
		r.routeInputVC(port, vc)
	}
}

// nthInputVC maps a flat index to an (port, vc) pair.
func (r *Router) nthInputVC(i int) (port, vc int) {
	for p := range r.inputs {
		if i < len(r.inputs[p]) {
			return p, i
		}
		i -= len(r.inputs[p])
	}
	panic("router: input VC index out of range")
}

func (r *Router) routeInputVC(port, vc int) {
	ivc := &r.inputs[port][vc]
	if ivc.buf.Empty() || ivc.route != PortUnrouted {
		return
	}
	head := ivc.buf.Peek()
	if !head.IsHeader() {
		return
	}
	p := head.Pkt
	if p.Dst == r.node {
		ivc.route = PortEject
		return
	}
	if p.OnDB {
		// A recovered packet re-routes onto the DB lane; this occurs only if
		// the recovery grant was made before the header advanced (normally
		// Recover sets the route directly).
		ivc.dbLane = r.recoveryLane(p.Dst)
		ivc.route = r.dbLaneRoute(ivc.dbLane, p.Dst)
		ivc.outVC = VCDeadlockBuffer
		return
	}

	cands := r.alg.Route(r, p, r.candBuf[:0])
	r.candBuf = cands[:0]
	// Keep only candidates whose link exists and whose output VC is free,
	// then restrict to the best (lowest) preference class present.
	usable := cands[:0]
	bestClass := int(^uint(0) >> 1)
	for _, c := range cands {
		if !r.LinkExists(c.Port) || !r.OutputVCFree(c.Port, c.VC) {
			continue
		}
		if c.Class < bestClass {
			bestClass = c.Class
			usable = usable[:0]
		}
		if c.Class == bestClass {
			usable = append(usable, c)
		}
	}
	if len(usable) == 0 {
		return // blocked; retried next cycle
	}
	choice := usable[0]
	if len(usable) > 1 {
		choice = r.sel.Pick(r, usable, r.rng)
	}
	r.outputs[choice.Port][choice.VC].owner = p
	ivc.route = choice.Port
	ivc.outVC = choice.VC
	if choice.ToDeterministic {
		p.OnDeterministic = true
	}
}

// --- Switch allocation ----------------------------------------------------------

// StageSwitch arbitrates the crossbar and reception channels for this cycle
// and appends the staged flit movements to out. Decisions use
// start-of-cycle buffer/credit state; Commit applies them afterwards.
//
// StageSwitch mutates only this router's state and reads neighbors' Deadlock
// Buffer state, which is start-of-cycle stable, so disjoint router shards may
// stage concurrently. Deadlock-Buffer-bound transfers are staged
// optimistically; the caller must run Reservations.Resolve over all staged
// transfers (in fixed router order) before committing them.
func (r *Router) StageSwitch(out []Transfer) []Transfer {
	out = r.stageEjection(out)
	if r.cfg.Alloc == PacketByPacket {
		return r.stageSwitchPBP(out)
	}
	return r.stageSwitchFBF(out)
}

// stageEjection grants the reception channel(s): the Deadlock Buffers first
// (the recovery lane must always drain), then input VCs round-robin.
func (r *Router) stageEjection(out []Transfer) []Transfer {
	budget := r.cfg.ReceptionChannels
	if budget == 0 {
		return out
	}
	for lane := range r.dbs {
		if budget == 0 {
			break
		}
		if !r.dbs[lane].buf.Empty() && r.dbs[lane].route == PortEject {
			out = append(out, Transfer{From: r, FromDB: true, FromDBLane: lane, Eject: true})
			budget--
		}
	}
	deg := r.topo.Degree()
	total := 0
	for p := range r.inputs {
		total += len(r.inputs[p])
	}
	off := r.swArbOffset[deg]
	granted := false
	for i := 0; i < total && budget > 0; i++ {
		port, vc := r.nthInputVC((off + i) % total)
		ivc := &r.inputs[port][vc]
		if ivc.route != PortEject || ivc.buf.Empty() || ivc.sent {
			continue
		}
		out = append(out, Transfer{From: r, FromPort: port, FromVC: vc, Eject: true})
		ivc.sent = true
		budget--
		if !granted {
			r.swArbOffset[deg] = (off + i + 1) % total
			granted = true
		}
	}
	return out
}

// stageSwitchFBF implements flit-by-flit crossbar allocation: a greedy
// matching of input ports to output ports, one flit per port per cycle,
// with the Deadlock Buffer as an extra crossbar input that has priority on
// its output (so the recovery lane always progresses).
func (r *Router) stageSwitchFBF(out []Transfer) []Transfer {
	deg := r.topo.Degree()
	var inputUsed [64]bool // deg+1 <= 64 always (n <= 31 dims)
	// Ejection grants above already consumed their input ports this cycle.
	for p := range r.inputs {
		for v := range r.inputs[p] {
			if r.inputs[p][v].sent {
				inputUsed[p] = true
			}
		}
	}
	total := 0
	for p := range r.inputs {
		total += len(r.inputs[p])
	}
	for q := 0; q < deg; q++ {
		if r.neighbors[q] == nil {
			continue
		}
		// Deadlock Buffer priority: each lane continues on the same lane
		// index at the next router.
		sent := false
		for lane := range r.dbs {
			db := &r.dbs[lane]
			if !db.buf.Empty() && db.route == q && dbStageable(r.neighbors[q], lane, db.pkt) {
				out = append(out, Transfer{From: r, FromDB: true, FromDBLane: lane,
					To: r.neighbors[q], OutPort: q, ToDB: true, ToDBLane: lane})
				sent = true
				break
			}
		}
		if sent {
			continue
		}
		out = r.arbitrateInput(q, total, &inputUsed, out)
	}
	return out
}

// arbitrateInput grants output port q to one sendable input VC this cycle,
// round-robin starting from the port's rotating offset. It is the per-flit
// output arbitration of the flit-by-flit policy and the lending fallback of
// the packet-by-packet policy.
func (r *Router) arbitrateInput(q, total int, inputUsed *[64]bool, out []Transfer) []Transfer {
	off := r.swArbOffset[q]
	for i := 0; i < total; i++ {
		port, vc := r.nthInputVC((off + i) % total)
		if inputUsed[port] {
			continue
		}
		ivc := &r.inputs[port][vc]
		if ivc.route != q || ivc.buf.Empty() {
			continue
		}
		if ivc.outVC == VCDeadlockBuffer {
			if !dbStageable(r.neighbors[q], ivc.dbLane, ivc.pkt) {
				continue
			}
			out = append(out, Transfer{From: r, FromPort: port, FromVC: vc,
				To: r.neighbors[q], OutPort: q, ToDB: true, ToDBLane: ivc.dbLane})
		} else {
			if r.outputs[q][ivc.outVC].credits <= 0 {
				continue
			}
			out = append(out, Transfer{From: r, FromPort: port, FromVC: vc, To: r.neighbors[q], OutPort: q, ToVC: ivc.outVC})
		}
		inputUsed[port] = true
		ivc.sent = true
		r.swArbOffset[q] = (off + i + 1) % total
		break
	}
	return out
}

// --- Commit -----------------------------------------------------------------------

// Sink consumes flits ejected into a node's reception channel. The network
// implements it to record delivery, statistics and Token release.
type Sink interface {
	Deliver(fl packet.Flit, at topology.Node)
}

// Commit applies a staged transfer; ejected flits are passed to sink.
// Transfers marked Dropped by Reservations.Resolve are ignored.
func Commit(t Transfer, sink Sink) {
	if t.Dropped {
		return
	}
	fl := t.popSource()
	switch {
	case t.Eject:
		t.From.stats.FlitsEjected++
		sink.Deliver(fl, t.From.node)
	case t.ToDB:
		to := t.To
		db := &to.dbs[t.ToDBLane]
		db.buf.Push(fl)
		to.flitCount++
		if fl.IsHeader() {
			db.pkt = fl.Pkt
			db.route = to.dbLaneRoute(t.ToDBLane, fl.Pkt.Dst)
			fl.Pkt.Hops++
		}
		t.From.stats.FlitsSwitched++
	default:
		to := t.To
		inPort := topology.ReversePort(t.OutPort)
		tivc := &to.inputs[inPort][t.ToVC]
		tivc.buf.Push(fl)
		to.flitCount++
		if fl.IsHeader() {
			tivc.pkt = fl.Pkt
		}
		o := &t.From.outputs[t.OutPort][t.ToVC]
		o.credits--
		if fl.IsTail() {
			o.owner = nil
		}
		t.From.stats.FlitsSwitched++
		if fl.IsHeader() {
			t.From.applyHeaderHop(fl.Pkt, t.OutPort)
		}
	}
}

// popSource removes the flit from its source buffer, returning credits to
// the upstream output VC and releasing wormhole state on tails.
func (t Transfer) popSource() packet.Flit {
	r := t.From
	if t.FromDB {
		db := &r.dbs[t.FromDBLane]
		fl := db.buf.Pop()
		r.flitCount--
		r.stats.DBFlitsCarried++
		if fl.IsTail() {
			db.pkt = nil
			db.route = PortUnrouted
		}
		return fl
	}
	ivc := &r.inputs[t.FromPort][t.FromVC]
	fl := ivc.buf.Pop()
	r.flitCount--
	if t.FromPort < r.topo.Degree() && r.neighbors[t.FromPort] != nil {
		up := r.neighbors[t.FromPort]
		up.outputs[topology.ReversePort(t.FromPort)][t.FromVC].credits++
	}
	if fl.IsTail() {
		ivc.pkt = nil
		ivc.route = PortUnrouted
		ivc.outVC = VCUnrouted
		ivc.waiting = 0
		ivc.presumed = false
	}
	return fl
}

// applyHeaderHop updates per-packet routing state when a header crosses a
// normal (edge-buffer) link out of r.
func (r *Router) applyHeaderHop(p *packet.Packet, outPort int) {
	p.Hops++
	d := topology.PortDim(outPort)
	if p.LastDim >= 0 && d < p.LastDim {
		p.DimReversals++
	}
	p.LastDim = d
	if r.topo.CrossesDateline(r.node, outPort) {
		p.DatelineCrossed |= 1 << uint(d)
	}
	nb := r.neighbors[outPort]
	if r.topo.Distance(nb.node, p.Dst) >= r.topo.Distance(r.node, p.Dst) {
		p.Misroutes++
		r.stats.MisrouteHops++
	}
}

// --- Deadlock detection & recovery ---------------------------------------------

// TickTimers advances T_elapsed for blocked headers (paper Section 3.1) and
// clears the per-cycle sent markers. It returns the number of headers that
// newly crossed T_out this cycle; each newly presumed packet is buffered for
// the observer installed with SetOnTimeout (tracing, flight recorder), which
// runs when the caller invokes FlushTimeouts — deferred so that TickTimers
// touches only router-local state and disjoint router shards can tick
// concurrently. As a side effect it refreshes the router's telemetry
// instrumentation (BlockedHeaders, PresumedHeaders, per-VC blocked-cycle
// counters) — the loop already touches every input VC, so the extra cost is
// a few adds.
func (r *Router) TickTimers() int {
	newly := 0
	blocked, presumed := 0, 0
	deg := r.topo.Degree()
	tout := r.cfg.Timeout
	if r.cfg.AdaptiveTimeout {
		tout = r.effTout
		// Slow decay back toward the configured base.
		r.decayCount++
		if r.decayCount >= 256 {
			r.decayCount = 0
			if r.effTout > r.cfg.Timeout {
				r.effTout--
			}
		}
	}
	for p := range r.inputs {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			if ivc.sent {
				if ivc.presumed {
					// The presumed-deadlocked header moved normally: a
					// false detection. Under AdaptiveTimeout, back off.
					r.stats.FalseDetections++
					if r.cfg.AdaptiveTimeout {
						r.effTout *= 2
						if max8 := 8 * r.cfg.Timeout; r.effTout > max8 {
							r.effTout = max8
						}
					}
				}
				ivc.sent = false
				ivc.waiting = 0
				ivc.presumed = false
				continue
			}
			if ivc.buf.Empty() {
				ivc.waiting = 0
				ivc.presumed = false
				continue
			}
			head := ivc.buf.Peek()
			// Only headers not draining to the local reception channel and
			// not already recovering are candidates for presumption.
			if !head.IsHeader() || ivc.route == PortEject || head.Pkt.OnDB {
				ivc.waiting = 0
				ivc.presumed = false
				continue
			}
			ivc.waiting++
			blocked++
			r.stats.BlockedCycles++
			r.blockedByVC[v]++
			if ivc.presumed {
				presumed++
			}
			if tout > 0 && ivc.waiting > tout && !ivc.presumed {
				// Headers still at the injection port hold no network
				// channels, so they cannot be deadlock members; they are
				// presumed only when STRANDED by link faults (the routing
				// function offers no live port at all), in which case only
				// the recovery lane can ever deliver them. The stranded
				// check is throttled: faults are rare events.
				if p == deg {
					if (ivc.waiting-tout)%16 != 1 || !r.strandedHeader(head.Pkt) {
						continue
					}
				}
				ivc.presumed = true
				presumed++
				head.Pkt.TimedOut = true
				r.stats.TimeoutEvents++
				newly++
				if r.onTimeout != nil {
					r.pendingTimeouts = append(r.pendingTimeouts, head.Pkt)
				}
			}
		}
	}
	r.lastBlocked = blocked
	r.lastPresumed = presumed
	return newly
}

// FlushTimeouts invokes the SetOnTimeout observer for every header newly
// presumed during the last TickTimers, in detection order, and clears the
// buffer. The network calls it serially in fixed router order after the
// (possibly sharded) timer phase, so observer side effects — trace records,
// flight-recorder triggers — happen in the same order regardless of the
// kernel's shard count.
func (r *Router) FlushTimeouts() {
	if len(r.pendingTimeouts) == 0 {
		return
	}
	for i, p := range r.pendingTimeouts {
		if r.onTimeout != nil {
			r.onTimeout(p)
		}
		r.pendingTimeouts[i] = nil
	}
	r.pendingTimeouts = r.pendingTimeouts[:0]
}

// strandedHeader reports whether the packet's routing function offers no
// live output port at this router — only possible with failed links; such
// a packet can never advance on edge channels and must be recovered.
func (r *Router) strandedHeader(p *packet.Packet) bool {
	cands := r.alg.Route(r, p, r.candBuf[:0])
	r.candBuf = cands[:0]
	for _, c := range cands {
		if r.LinkExists(c.Port) {
			return false
		}
	}
	return true
}

// MostStarved returns the presumed-deadlocked input VC whose header has
// waited longest; ok is false when the router has none. The circulating
// Token queries this to decide whether to stop here. Injection-port VCs
// are included: they are presumed only when stranded by faults.
func (r *Router) MostStarved() (port, vc int, ok bool) {
	var best sim.Cycle = -1
	for p := range r.inputs {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			if ivc.presumed && ivc.waiting > best {
				best = ivc.waiting
				port, vc, ok = p, v, true
			}
		}
	}
	return port, vc, ok
}

// Recover switches the packet whose header waits in input VC (port, vc)
// onto the Deadlock Buffer lane: it releases any edge output VC the header
// held, marks the packet recovered (it may use only Deadlock Buffers from
// here to its destination — paper Assumption 3) and aims it at the next DB
// hop: minimal dimension-order under sequential recovery, the monotone
// Hamiltonian step of the packet's lane under concurrent recovery. It
// returns the recovered packet.
func (r *Router) Recover(port, vc int, now sim.Cycle) *packet.Packet {
	ivc := &r.inputs[port][vc]
	p := ivc.pkt
	if p == nil || ivc.buf.Empty() || !ivc.buf.Peek().IsHeader() {
		panic("router: Recover on a VC without a blocked header")
	}
	if ivc.route >= 0 && ivc.outVC >= 0 {
		r.outputs[ivc.route][ivc.outVC].owner = nil
	}
	p.OnDB = true
	p.SeizedToken = r.cfg.Recovery == RecoverySequential
	p.RecoveredAt = now
	ivc.dbLane = r.recoveryLane(p.Dst)
	ivc.route = r.dbLaneRoute(ivc.dbLane, p.Dst)
	ivc.outVC = VCDeadlockBuffer
	ivc.waiting = 0
	ivc.presumed = false
	r.stats.Recoveries++
	return p
}

// RecoverPresumed (concurrent recovery) switches every presumed-deadlocked
// packet at this router onto its Deadlock Buffer lane — no Token, no mutual
// exclusion. Each recovered packet is appended to out (pass a reused
// scratch slice to keep the call allocation-free); the extended slice is
// returned so callers can trace and track per-packet recoveries.
func (r *Router) RecoverPresumed(now sim.Cycle, out []*packet.Packet) []*packet.Packet {
	deg := r.topo.Degree()
	for p := 0; p < deg; p++ {
		for v := range r.inputs[p] {
			if r.inputs[p][v].presumed {
				out = append(out, r.Recover(p, v, now))
			}
		}
	}
	return out
}

// recoveryLane picks the Deadlock Buffer lane for a recovery starting here:
// lane 0 under sequential recovery; under concurrent recovery the up lane
// when the destination's Hamiltonian label is larger, else the down lane.
func (r *Router) recoveryLane(dst topology.Node) int {
	if r.cfg.Recovery != RecoveryConcurrent {
		return 0
	}
	if r.hamLabels == nil {
		panic("router: concurrent recovery without ConnectHamiltonian")
	}
	if r.hamLabels[dst] > r.hamLabel {
		return laneUp
	}
	return laneDown
}

// dbLaneRoute returns the Deadlock Buffer lane's output at this router for
// a packet to dst: ejection at the destination, minimal dimension-order for
// the sequential lane, the monotone Hamiltonian-path step for concurrent
// lanes (which keeps each lane's buffer dependency chain linear and hence
// acyclic).
func (r *Router) dbLaneRoute(lane int, dst topology.Node) int {
	if r.node == dst {
		return PortEject
	}
	if r.cfg.Recovery == RecoveryConcurrent {
		if lane == laneUp {
			return r.hamNextPort
		}
		return r.hamPrevPort
	}
	if r.dbTable != nil {
		return int(r.dbTable[int(dst)*r.topo.Nodes()+int(r.node)])
	}
	port, ok := routing.DORPort(r.topo, r.node, dst)
	if !ok {
		return PortEject
	}
	return port
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PresumedPackets appends the distinct packets currently presumed
// deadlocked at this router (abort-retry recovery collects its victims
// through it).
func (r *Router) PresumedPackets(out []*packet.Packet) []*packet.Packet {
	for p := range r.inputs {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			if ivc.presumed && ivc.pkt != nil {
				out = append(out, ivc.pkt)
			}
		}
	}
	return out
}

// PurgePacket removes every flit of p from this router and releases all
// channel state p holds here: input VC ownership (returning the purged
// flits' credits upstream), granted and in-use output VCs, and — indirectly,
// through the stale-connection checks — packet-by-packet crossbar
// connections. It returns the number of flits purged. Abort-and-retry
// recovery calls it on every router to kill a packet.
func (r *Router) PurgePacket(p *packet.Packet) int {
	purged := 0
	deg := r.topo.Degree()
	for port := range r.inputs {
		for v := range r.inputs[port] {
			ivc := &r.inputs[port][v]
			if ivc.pkt != p {
				continue
			}
			n := ivc.buf.Len()
			for i := 0; i < n; i++ {
				ivc.buf.Pop()
			}
			r.flitCount -= n
			purged += n
			if n > 0 && port < deg && r.neighbors[port] != nil {
				up := r.neighbors[port]
				up.outputs[topology.ReversePort(port)][v].credits += n
			}
			ivc.pkt = nil
			ivc.route = PortUnrouted
			ivc.outVC = VCUnrouted
			ivc.waiting = 0
			ivc.presumed = false
			ivc.sent = false
		}
	}
	for q := 0; q < deg; q++ {
		for v := range r.outputs[q] {
			if r.outputs[q][v].owner == p {
				r.outputs[q][v].owner = nil
			}
		}
	}
	return purged
}
