package router

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// testBench wires the routers of a topology and steps their pipeline the
// same way internal/network does, with a recording sink.
type testBench struct {
	topo      topology.Topology
	routers   []*Router
	res       *Reservations
	now       sim.Cycle
	delivered []packet.Flit
	deliverAt []topology.Node
}

func newBench(t *testing.T, topo topology.Topology, cfg Config, alg routing.Algorithm) *testBench {
	t.Helper()
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	b := &testBench{topo: topo, res: NewReservations()}
	for i := 0; i < topo.Nodes(); i++ {
		b.routers = append(b.routers, New(topology.Node(i), topo, cfg, alg, routing.Random(), rng))
	}
	for i, r := range b.routers {
		for p := 0; p < topo.Degree(); p++ {
			if nb, ok := topo.Neighbor(topology.Node(i), p); ok {
				r.Connect(p, b.routers[nb])
			}
		}
	}
	return b
}

func (b *testBench) Deliver(fl packet.Flit, at topology.Node) {
	b.delivered = append(b.delivered, fl)
	b.deliverAt = append(b.deliverAt, at)
	fl.Pkt.FlitsDelivered++
	if fl.IsHeader() {
		fl.Pkt.HeaderArrived = true
	}
	if fl.IsTail() {
		fl.Pkt.DeliveredAt = b.now
	}
}

func (b *testBench) step() {
	b.now++
	for _, r := range b.routers {
		r.StageRouting()
	}
	var xfers []Transfer
	for _, r := range b.routers {
		xfers = r.StageSwitch(xfers)
	}
	b.res.Reset()
	b.res.Resolve(xfers)
	for _, t := range xfers {
		Commit(t, b)
	}
	for _, r := range b.routers {
		r.TickTimers()
	}
}

// inject pushes the whole packet into the source router's injection port
// over successive cycles, stepping the bench.
func (b *testBench) injectAndRun(t *testing.T, p *packet.Packet, cycles int) {
	t.Helper()
	seq := 0
	for i := 0; i < cycles; i++ {
		if seq < p.Length {
			if b.routers[p.Src].InjectFlit(p.Flit(seq), b.now) {
				seq++
			}
		}
		b.step()
	}
	if seq != p.Length {
		t.Fatalf("only %d/%d flits injected after %d cycles", seq, p.Length, cycles)
	}
}

func cfg4() Config {
	c := Default()
	c.Timeout = 0
	c.DeadlockBufferDepth = 0
	return c
}

func TestSinglePacketCrossesTorus(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	b := newBench(t, topo, cfg4(), routing.DOR())
	src := topo.NodeAt(topology.Coord{0, 0})
	dst := topo.NodeAt(topology.Coord{2, 3})
	p := packet.New(1, src, dst, 5, 0)
	b.injectAndRun(t, p, 40)
	if !p.Delivered() {
		t.Fatalf("packet not delivered: %d/%d flits", p.FlitsDelivered, p.Length)
	}
	if p.Hops != topo.Distance(src, dst) {
		t.Fatalf("hops %d, want %d", p.Hops, topo.Distance(src, dst))
	}
	for i, at := range b.deliverAt {
		if at != dst {
			t.Fatalf("flit %d delivered at %d", i, at)
		}
	}
	// Flits arrive in order.
	for i, fl := range b.delivered {
		if fl.Seq != i {
			t.Fatalf("delivery order broken at %d: seq %d", i, fl.Seq)
		}
	}
}

func TestCreditsRoundTrip(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := cfg4()
	b := newBench(t, topo, cfg, routing.DOR())
	src := topo.NodeAt(topology.Coord{0, 0})
	dst := topo.NodeAt(topology.Coord{3, 0}) // one hop -X with wrap
	p := packet.New(1, src, dst, 4, 0)
	b.injectAndRun(t, p, 30)
	if !p.Delivered() {
		t.Fatal("not delivered")
	}
	// After everything drains, every output VC must have full credits and
	// no owner.
	for _, r := range b.routers {
		for q := 0; q < topo.Degree(); q++ {
			for v := 0; v < cfg.VCs; v++ {
				if r.Credits(q, v) != cfg.BufferDepth {
					t.Fatalf("router %d out[%d][%d] credits %d, want %d",
						r.NodeID(), q, v, r.Credits(q, v), cfg.BufferDepth)
				}
				if r.OutputOwner(q, v) != nil {
					t.Fatalf("output VC still owned after drain")
				}
			}
		}
		if !r.Quiescent() {
			t.Fatalf("router %d not quiescent", r.NodeID())
		}
	}
}

func TestInjectFlitSemantics(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := cfg4()
	b := newBench(t, topo, cfg, routing.DOR())
	r := b.routers[0]
	p1 := packet.New(1, 0, 5, 4, 0)
	p2 := packet.New(2, 0, 6, 4, 0)
	if !r.InjectFlit(p1.Flit(0), 1) {
		t.Fatal("header rejected on idle injection VC")
	}
	if p1.InjectedAt != 1 {
		t.Fatal("InjectedAt not stamped")
	}
	// A second packet's header must not share the single injection VC.
	if r.InjectFlit(p2.Flit(0), 1) {
		t.Fatal("second header accepted while VC busy")
	}
	// p1's body goes into the same VC until the buffer fills (depth 2).
	if !r.InjectFlit(p1.Flit(1), 1) {
		t.Fatal("body flit rejected with space available")
	}
	if r.InjectFlit(p1.Flit(2), 1) {
		t.Fatal("flit accepted into a full buffer")
	}
	// A body flit of a packet that does not own any VC is rejected.
	if r.InjectFlit(p2.Flit(1), 1) {
		t.Fatal("stray body flit accepted")
	}
}

func TestEjectionAtDestination(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	b := newBench(t, topo, cfg4(), routing.DOR())
	dst := topology.Node(0)
	p := packet.New(1, dst, dst, 1, 0)
	// Self-addressed single-flit packet: header routes straight to eject.
	p.Dst = dst
	r := b.routers[0]
	other := packet.New(2, 0, 1, 1, 0)
	_ = other
	if !r.InjectFlit(p.Flit(0), 0) {
		t.Fatal("inject failed")
	}
	b.step()
	b.step()
	if !p.Delivered() {
		t.Fatal("self-addressed packet not ejected")
	}
}

func TestTimersAndMostStarved(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := Default() // timeout 8, DB on
	b := newBench(t, topo, cfg, routing.DOR())
	r0 := b.routers[0]
	// Occupy the DOR output VCs of router (1,0) toward +X for dst (3,0) by
	// faking ownership, so a header arriving there blocks.
	r1 := b.routers[topo.NodeAt(topology.Coord{1, 0})]
	blocker := packet.New(99, 0, 1, 4, 0)
	for v := 0; v < cfg.VCs; v++ {
		r1.st.outOwner[r1.outIdx(topology.PortFor(0, 1), v)] = blocker
	}
	p := packet.New(1, topo.NodeAt(topology.Coord{0, 0}), topo.NodeAt(topology.Coord{2, 0}), 3, 0)
	if !r0.InjectFlit(p.Flit(0), 0) {
		t.Fatal("inject failed")
	}
	for i := 0; i < 6+int(cfg.Timeout); i++ {
		if seq := i + 1; seq < p.Length {
			r0.InjectFlit(p.Flit(seq), b.now)
		}
		b.step()
	}
	// Header should be parked at router (1,0) and presumed deadlocked.
	port, vc, ok := r1.MostStarved()
	if !ok {
		t.Fatal("no starved header found")
	}
	if owner := r1.InputOwner(port, vc); owner != p {
		t.Fatalf("starved owner = %v, want %v", owner, p)
	}
	if !p.TimedOut {
		t.Fatal("packet not marked timed out")
	}
	if r1.Stats().TimeoutEvents != 1 {
		t.Fatalf("timeout events = %d", r1.Stats().TimeoutEvents)
	}

	// Recovery: the packet switches to the DB lane toward +X.
	got := r1.Recover(port, vc, b.now)
	if got != p || !p.OnDB || !p.SeizedToken || p.RecoveredAt != b.now {
		t.Fatalf("recover state wrong: %+v", p)
	}
	route, outVC := r1.InputRoute(port, vc)
	if route != topology.PortFor(0, 1) || outVC != VCDeadlockBuffer {
		t.Fatalf("recovered route = (%d, %d)", route, outVC)
	}
	// Unblock is unnecessary: the DB lane bypasses the edge VCs entirely.
	for i := 0; i < 30 && !p.Delivered(); i++ {
		b.step()
	}
	if !p.Delivered() {
		t.Fatal("recovered packet did not reach its destination via DB lane")
	}
	if r1.Stats().Recoveries != 1 {
		t.Fatal("recovery not counted")
	}
}

func TestFalseDeadlockPresumptionClears(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := Default()
	b := newBench(t, topo, cfg, routing.DOR())
	r1 := b.routers[topo.NodeAt(topology.Coord{1, 0})]
	blocker := packet.New(99, 0, 1, 4, 0)
	for v := 0; v < cfg.VCs; v++ {
		r1.st.outOwner[r1.outIdx(topology.PortFor(0, 1), v)] = blocker
	}
	p := packet.New(1, topo.NodeAt(topology.Coord{0, 0}), topo.NodeAt(topology.Coord{2, 0}), 3, 0)
	b.routers[0].InjectFlit(p.Flit(0), 0)
	for i := 0; i < 6+int(cfg.Timeout); i++ {
		if seq := i + 1; seq < p.Length {
			b.routers[0].InjectFlit(p.Flit(seq), b.now)
		}
		b.step()
	}
	if _, _, ok := r1.MostStarved(); !ok {
		t.Fatal("expected a presumed-deadlocked header")
	}
	// The congestion clears before the Token arrives: a false deadlock.
	for v := 0; v < cfg.VCs; v++ {
		r1.st.outOwner[r1.outIdx(topology.PortFor(0, 1), v)] = nil
	}
	for i := 0; i < 4; i++ {
		b.step()
	}
	if _, _, ok := r1.MostStarved(); ok {
		t.Fatal("presumption must clear once the header moves")
	}
	if p.OnDB {
		t.Fatal("false deadlock must not put the packet on the DB lane")
	}
}

func TestReservations(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := Default()
	b := newBench(t, topo, cfg, routing.Disha(0))
	res := NewReservations()
	target := b.routers[0]
	p1 := packet.New(1, 1, 0, 4, 0)
	p2 := packet.New(2, 2, 0, 4, 0)
	if !res.ReserveDB(target, 0, p1) {
		t.Fatal("first reservation failed")
	}
	if res.ReserveDB(target, 0, p1) {
		t.Fatal("single write port violated")
	}
	res.Reset()
	// Occupy the DB with p1; p2 must be refused even after reset.
	target.st.dbPkt[target.db0] = p1
	if res.ReserveDB(target, 0, p2) {
		t.Fatal("DB reserved for a foreign packet")
	}
	if !res.ReserveDB(target, 0, p1) {
		t.Fatal("owner refused its own DB")
	}
	res.Reset()
	// Full DB refuses even the owner.
	target.st.dbPush(target.db0, p1.Flit(0))
	target.st.flitCount[target.node]++
	if res.ReserveDB(target, 0, p1) {
		t.Fatal("full DB accepted a flit")
	}
	if res.ReserveDB(nil, 0, p1) {
		t.Fatal("nil target accepted")
	}
}

func TestRouterViewImplementation(t *testing.T) {
	topo := topology.MustMesh(4, 4)
	cfg := cfg4()
	b := newBench(t, topo, cfg, routing.DOR())
	corner := b.routers[0]
	if corner.LinkExists(topology.PortFor(0, -1)) {
		t.Fatal("mesh corner -X link must not exist")
	}
	if !corner.LinkExists(topology.PortFor(0, 1)) {
		t.Fatal("+X link missing")
	}
	if corner.VCs() != cfg.VCs || corner.Topo() != topo || corner.Node() != 0 {
		t.Fatal("view accessors wrong")
	}
	if corner.FreeVCs(topology.PortFor(0, 1)) != cfg.VCs {
		t.Fatal("fresh router must have all VCs free")
	}
	p := packet.New(1, 0, 1, 4, 0)
	p.DimReversals = 3
	corner.st.outOwner[corner.outIdx(0, 0)] = p
	if corner.FreeVCs(0) != cfg.VCs-1 {
		t.Fatal("FreeVCs did not drop")
	}
	if dr, ok := corner.OccupantDimReversals(0, 0); !ok || dr != 3 {
		t.Fatal("occupant DR wrong")
	}
	if _, ok := corner.OccupantDimReversals(0, 1); ok {
		t.Fatal("free VC reported occupied")
	}
	// Draining VC (owner gone, credits low) is not allocatable.
	corner.st.outOwner[corner.outIdx(0, 0)] = nil
	corner.st.outCredits[corner.outIdx(0, 0)] = int32(cfg.BufferDepth - 1)
	if corner.OutputVCFree(0, 0) {
		t.Fatal("draining VC must not be reallocatable")
	}
}

func TestRouterStringAndAccessors(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	b := newBench(t, topo, Default(), routing.Disha(0))
	r := b.routers[5]
	if r.String() == "" || r.Algorithm().Name() != "disha-m0" {
		t.Fatal("accessors wrong")
	}
	if r.InjectionPort() != topo.Degree() {
		t.Fatal("injection port index wrong")
	}
	if r.InputPorts() != topo.Degree()+1 {
		t.Fatal("input port count wrong")
	}
	if r.InputVCCount(0) != 4 || r.InputVCCount(r.InjectionPort()) != 1 {
		t.Fatal("input VC counts wrong")
	}
	if r.DBOccupancy() != 0 || r.DBOwner() != nil {
		t.Fatal("fresh DB state wrong")
	}
}
