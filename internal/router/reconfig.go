package router

import (
	"repro/internal/packet"
	"repro/internal/routing"
)

// This file holds the router-local primitives the network's dynamic
// reconfiguration subsystem (internal/network/reconfig.go) composes into
// mid-run link and router kills, heals and routing-function swaps. Every
// method here mutates only this router's slice of the shared SoA state (plus
// the well-defined upstream credit return PurgePacket already performs), and
// all of them are called between Step cycles, so they never race with the
// sharded kernel.

// SetAlgorithm swaps the routing function this router consults for unrouted
// headers. Granted routes are untouched: packets already holding an output
// VC finish their hop under the old function, and any packet the new
// function can no longer make progress for times out and escapes through
// the Deadlock Buffer lane — the DBR reconfiguration argument.
func (r *Router) SetAlgorithm(alg routing.Algorithm) { r.alg = alg }

// dbHeadIsHeader reports whether DB lane slot i currently buffers its
// packet's header at the ring head — the one case where the lane's stored
// route may be recomputed without tearing the packet's lane chain apart
// (body flits blindly follow the route their header established).
func (r *Router) dbHeadIsHeader(i int) bool {
	s := r.st
	return s.dbLen[i] != 0 && s.dbPeek(i).IsHeader()
}

// LinkVictims appends every packet that would lose flits if the link on
// port were severed right now: packets with flits (or live wormhole
// ownership) in the input VCs the link feeds, packets owning an output VC
// on the link with flits already across (credits consumed), and packets
// whose Deadlock Buffer chain is threaded across the link — a lane or
// DB-granted input VC routed at port whose header has already departed, so
// the remaining flits cannot be re-aimed. Callers scan both endpoints and
// deduplicate.
func (r *Router) LinkVictims(port int, out []*packet.Packet) []*packet.Packet {
	s := r.st
	for v := 0; v < s.inVCCount(r.deg, port); v++ {
		if p := s.inPkt[r.inIdx(port, v)]; p != nil {
			out = append(out, p)
		}
	}
	for v := 0; v < s.vcs; v++ {
		i := r.outIdx(port, v)
		if p := s.outOwner[i]; p != nil && int(s.outCredits[i]) < s.depth {
			out = append(out, p)
		}
	}
	for lane := 0; lane < s.lanes; lane++ {
		i := r.dbIdx(lane)
		if p := s.dbPkt[i]; p != nil && int(s.dbRoute[i]) == port && !r.dbHeadIsHeader(i) {
			out = append(out, p)
		}
	}
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		p := s.inPkt[i]
		if p == nil || int(s.inOutVC[i]) != VCDeadlockBuffer || int(s.inRoute[i]) != port {
			continue
		}
		if s.inLen[i] == 0 || !s.inPeek(i).IsHeader() {
			out = append(out, p)
		}
	}
	return out
}

// LocalPackets appends every distinct packet with flits or wormhole state
// buffered at this router (input VCs and Deadlock Buffer lanes). The
// network's router-kill path uses it to enumerate what a dying router takes
// down with it.
func (r *Router) LocalPackets(out []*packet.Packet) []*packet.Packet {
	s := r.st
	for l := 0; l < s.stride; l++ {
		if p := s.inPkt[r.in0+l]; p != nil {
			out = append(out, p)
		}
	}
	for lane := 0; lane < s.lanes; lane++ {
		if p := s.dbPkt[r.dbIdx(lane)]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// ReleaseGrants quiesces the surviving traffic aimed at port: every input
// VC whose granted route points there is returned to the unrouted state, so
// its packet re-routes from scratch next cycle under whatever the topology
// and routing function then are — the "quiesce only the affected resources"
// half of the DBR-style protocol. Victims must be purged first; this only
// touches slots whose packets keep all their flits.
func (r *Router) ReleaseGrants(port int) {
	s := r.st
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		if s.inPkt[i] == nil || int(s.inRoute[i]) != port {
			continue
		}
		if ov := int(s.inOutVC[i]); ov >= 0 {
			s.outOwner[r.outIdx(port, ov)] = nil
		}
		s.inRoute[i] = PortUnrouted
		s.inOutVC[i] = VCUnrouted
	}
}

// ResetOutputPort restores port's output-side channel state to
// as-constructed: no owners, full credit, and no packet-by-packet crossbar
// connection (live or suspended). Called after a kill has purged or
// re-routed everything that used the link, and again is what lets a healed
// link come back with clean virtual channels.
func (r *Router) ResetOutputPort(port int) {
	s := r.st
	for v := 0; v < s.vcs; v++ {
		i := r.outIdx(port, v)
		s.outOwner[i] = nil
		s.outCredits[i] = int32(s.depth)
	}
	c := r.cxIdx(port)
	s.cxInPort[c], s.cxInVC[c] = connNone, 0
	s.cxDB[c] = false
	s.cxSaved[c], s.cxSavedPort[c], s.cxSavedVC[c] = false, 0, 0
}

// PurgeDB removes every flit of p from this router's Deadlock Buffer lanes
// and releases the lanes, returning the number of flits discarded.
// PurgePacket only covers input VCs and output ownership; reconfiguration
// drops need this companion because, unlike abort-retry victims, a dropped
// packet may be mid-recovery on the DB lane.
func (r *Router) PurgeDB(p *packet.Packet) int {
	s := r.st
	purged := 0
	for lane := 0; lane < s.lanes; lane++ {
		i := r.dbIdx(lane)
		if s.dbPkt[i] != p {
			continue
		}
		n := int(s.dbLen[i])
		for k := 0; k < n; k++ {
			s.dbPop(i)
		}
		s.flitCount[r.node] -= int32(n)
		purged += n
		s.dbPkt[i] = nil
		s.dbRoute[i] = PortUnrouted
	}
	return purged
}

// RefreshDBRoutes recomputes the stored route of every Deadlock Buffer lane
// whose packet's header is still buffered at the lane head, after the
// network rebuilt the DB next-hop table for a changed topology. Lanes whose
// header has already departed are left alone — their remaining flits must
// follow the chain the header established (re-aiming them would strand body
// flits in a lane no header ever claimed); if such a frozen chain crossed
// the failed link its packet was already dropped as a victim.
func (r *Router) RefreshDBRoutes() {
	s := r.st
	for lane := 0; lane < s.lanes; lane++ {
		i := r.dbIdx(lane)
		if p := s.dbPkt[i]; p != nil && r.dbHeadIsHeader(i) {
			s.dbRoute[i] = int32(r.dbLaneRoute(lane, p.Dst))
		}
	}
}

// RecoveryBusy returns how many recovery resources are in use at this
// router: presumed is the count of input VCs holding a presumed-deadlocked
// header, busy the count of input VCs granted to the Deadlock Buffer lane
// plus DB lane flits and unreleased lane ownerships. Zero for both,
// network-wide, means no packet is presumed deadlocked and the recovery
// lane has fully drained — the chaos runner's reconvergence condition. The
// buffered state this reads is exact even for routers the active-set
// scheduler has parked (only timers and arbitration offsets lag), so the
// caller needs no syncIdle.
func (r *Router) RecoveryBusy() (presumed, busy int) {
	s := r.st
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		if s.inPresumed[i] && s.inLen[i] != 0 {
			presumed++
		}
		if s.inPkt[i] != nil && int(s.inOutVC[i]) == VCDeadlockBuffer {
			busy++
		}
	}
	for lane := 0; lane < s.lanes; lane++ {
		i := r.dbIdx(lane)
		busy += int(s.dbLen[i])
		if s.dbPkt[i] != nil {
			busy++
		}
	}
	return presumed, busy
}
