package router

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ringState builds a normalized two-node-per-dim state to exercise the SoA
// flit rings directly.
func ringState(t *testing.T, cfg Config) (*State, topology.Topology) {
	t.Helper()
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	topo := topology.MustTorus(4, 4)
	return NewState(topo, cfg), topo
}

func TestRingBasics(t *testing.T) {
	cfg := Default()
	cfg.BufferDepth = 2
	s, _ := ringState(t, cfg)
	i := 3 // an arbitrary input VC slot
	if s.inLen[i] != 0 {
		t.Fatal("fresh ring not empty")
	}
	p := packet.New(1, 0, 1, 3, 0)
	s.inPush(i, p.Flit(0))
	s.inPush(i, p.Flit(1))
	if int(s.inLen[i]) != 2 {
		t.Fatal("full ring length wrong")
	}
	if s.inPeek(i).Seq != 0 {
		t.Fatal("peek must see the oldest flit")
	}
	if s.inAt(i, 1).Seq != 1 {
		t.Fatal("inAt must index from the head")
	}
	if s.inPop(i).Seq != 0 || s.inPop(i).Seq != 1 {
		t.Fatal("pop order wrong")
	}
	if s.inLen[i] != 0 {
		t.Fatal("ring should be empty")
	}
}

func TestRingWrapAround(t *testing.T) {
	cfg := Default()
	cfg.BufferDepth = 2
	s, _ := ringState(t, cfg)
	p := packet.New(1, 0, 1, 8, 0)
	// Interleave pushes and pops so the ring indices wrap repeatedly.
	i, seq := 5, 0
	for k := 0; k < 8; k++ {
		s.inPush(i, p.Flit(k))
		got := s.inPop(i)
		if got.Seq != seq {
			t.Fatalf("wrap: got seq %d, want %d", got.Seq, seq)
		}
		seq++
	}
}

func TestRingPopZeroesVacatedSlot(t *testing.T) {
	cfg := Default()
	s, _ := ringState(t, cfg)
	p := packet.New(1, 0, 1, 2, 0)
	s.inPush(0, p.Flit(0))
	s.inPop(0)
	for k := 0; k < s.depth; k++ {
		if s.inFlits[k].Pkt != nil {
			t.Fatal("vacated ring slot retains a stale packet pointer")
		}
	}
}

func TestRingPanics(t *testing.T) {
	cfg := Default()
	cfg.BufferDepth = 1
	s, _ := ringState(t, cfg)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pop on empty did not panic")
			}
		}()
		s.inPop(0)
	}()
	p := packet.New(1, 0, 1, 2, 0)
	s.inPush(0, p.Flit(0))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("push on full did not panic")
			}
		}()
		s.inPush(0, p.Flit(1))
	}()
}

func TestPortVCInverse(t *testing.T) {
	cfg := Default()
	cfg.VCs = 3
	cfg.InjectionVCs = 2
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	topo := topology.MustTorus(4, 4)
	r := New(0, topo, cfg, routing.DOR(), routing.Random(), sim.NewRNG(1))
	l := 0
	for p := 0; p <= topo.Degree(); p++ {
		for v := 0; v < r.InputVCCount(p); v++ {
			gp, gv := r.portVCOf(l)
			if gp != p || gv != v {
				t.Fatalf("portVCOf(%d) = (%d,%d), want (%d,%d)", l, gp, gv, p, v)
			}
			if got := r.inIdx(p, v); got != r.in0+l {
				t.Fatalf("inIdx(%d,%d) = %d, want %d", p, v, got, r.in0+l)
			}
			l++
		}
	}
	if l != r.st.stride {
		t.Fatalf("walked %d slots, stride is %d", l, r.st.stride)
	}
}

func TestCheckStateCatchesCorruption(t *testing.T) {
	cfg := Default()
	topo := topology.MustTorus(4, 4)
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	r := New(0, topo, cfg, routing.DOR(), routing.Random(), sim.NewRNG(1))
	if err := r.CheckState(); err != nil {
		t.Fatalf("fresh router fails CheckState: %v", err)
	}
	corruptions := []func(s *State){
		func(s *State) { s.inHead[0] = int32(s.depth) },
		func(s *State) { s.inLen[0] = int32(s.depth + 1) },
		func(s *State) { s.inFlits[0] = packet.New(9, 0, 1, 2, 0).Flit(0) },
		func(s *State) { s.inRoute[0] = int32(s.deg) },
		func(s *State) { s.inOutVC[0] = int32(s.vcs) },
		func(s *State) { s.outCredits[0] = int32(s.depth + 1) },
		func(s *State) { s.outCredits[0] = -1 },
		func(s *State) { s.flitCount[0] = 5 },
		func(s *State) { s.cxInPort[0] = int32(s.deg + 1) },
	}
	for i, corrupt := range corruptions {
		rc := New(0, topo, cfg, routing.DOR(), routing.Random(), sim.NewRNG(1))
		corrupt(rc.st)
		if err := rc.CheckState(); err == nil {
			t.Errorf("corruption %d not caught by CheckState", i)
		}
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	d := Default()
	// DeadlockBufferDepth and Timeout legitimately stay zero (disabled);
	// everything else fills in.
	if c.VCs != d.VCs || c.BufferDepth != d.BufferDepth || c.InjectionVCs != d.InjectionVCs || c.ReceptionChannels != d.ReceptionChannels {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestConfigNormalizeErrors(t *testing.T) {
	bad := []Config{
		{VCs: -1},
		{BufferDepth: -2},
		{DeadlockBufferDepth: -1},
		{InjectionVCs: -1},
		{ReceptionChannels: -3},
		{Timeout: -1},
		{Alloc: AllocPolicy(9)},
	}
	for i, c := range bad {
		if err := c.Normalize(); err == nil {
			t.Errorf("config %d should fail: %+v", i, c)
		}
	}
}

func TestAllocPolicyString(t *testing.T) {
	if FlitByFlit.String() != "flit-by-flit" || PacketByPacket.String() != "packet-by-packet" {
		t.Fatal("policy names wrong")
	}
	if AllocPolicy(7).String() == "" {
		t.Fatal("unknown policy must still format")
	}
}
