package router

import (
	"testing"

	"repro/internal/packet"
)

func TestFIFOBasics(t *testing.T) {
	f := newFIFO(2)
	if !f.Empty() || f.Full() || f.Len() != 0 || f.Cap() != 2 || f.Space() != 2 {
		t.Fatal("fresh fifo state wrong")
	}
	p := packet.New(1, 0, 1, 3, 0)
	f.Push(p.Flit(0))
	f.Push(p.Flit(1))
	if !f.Full() || f.Space() != 0 || f.Len() != 2 {
		t.Fatal("full fifo state wrong")
	}
	if f.Peek().Seq != 0 {
		t.Fatal("peek must see the oldest flit")
	}
	if f.Pop().Seq != 0 || f.Pop().Seq != 1 {
		t.Fatal("pop order wrong")
	}
	if !f.Empty() {
		t.Fatal("fifo should be empty")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	f := newFIFO(2)
	p := packet.New(1, 0, 1, 8, 0)
	// Interleave pushes and pops so the ring indices wrap repeatedly.
	seq := 0
	for i := 0; i < 8; i++ {
		f.Push(p.Flit(i))
		got := f.Pop()
		if got.Seq != seq {
			t.Fatalf("wrap: got seq %d, want %d", got.Seq, seq)
		}
		seq++
	}
}

func TestFIFOPanics(t *testing.T) {
	f := newFIFO(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pop on empty did not panic")
			}
		}()
		f.Pop()
	}()
	p := packet.New(1, 0, 1, 2, 0)
	f.Push(p.Flit(0))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("push on full did not panic")
			}
		}()
		f.Push(p.Flit(1))
	}()
}

func TestConfigNormalizeDefaults(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	d := Default()
	// DeadlockBufferDepth and Timeout legitimately stay zero (disabled);
	// everything else fills in.
	if c.VCs != d.VCs || c.BufferDepth != d.BufferDepth || c.InjectionVCs != d.InjectionVCs || c.ReceptionChannels != d.ReceptionChannels {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestConfigNormalizeErrors(t *testing.T) {
	bad := []Config{
		{VCs: -1},
		{BufferDepth: -2},
		{DeadlockBufferDepth: -1},
		{InjectionVCs: -1},
		{ReceptionChannels: -3},
		{Timeout: -1},
		{Alloc: AllocPolicy(9)},
	}
	for i, c := range bad {
		if err := c.Normalize(); err == nil {
			t.Errorf("config %d should fail: %+v", i, c)
		}
	}
}

func TestAllocPolicyString(t *testing.T) {
	if FlitByFlit.String() != "flit-by-flit" || PacketByPacket.String() != "packet-by-packet" {
		t.Fatal("policy names wrong")
	}
	if AllocPolicy(7).String() == "" {
		t.Fatal("unknown policy must still format")
	}
}
