package router

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestPBPPreemptionAndReconfiguration exercises the paper's Section 3.3
// packet-by-packet scenario directly: a Deadlock Buffer packet needs an
// output held by an edge packet, preempts it into the reconfiguration
// buffer, and the edge connection is restored once the DB packet clears.
func TestPBPPreemptionAndReconfiguration(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := Default()
	cfg.Alloc = PacketByPacket
	b := newBench(t, topo, cfg, routing.Disha(0))
	r := b.routers[topo.NodeAt(topology.Coord{1, 0})]
	q := topology.PortFor(0, 1) // +X toward (2,0)

	// Edge packet A mid-flight: owns input VC (0,0), routed to q on VC 0.
	a := packet.New(1, topo.NodeAt(topology.Coord{0, 0}), topo.NodeAt(topology.Coord{3, 0}), 8, 0)
	s := r.st
	i00 := r.inIdx(0, 0)
	s.inPkt[i00] = a
	s.inRoute[i00] = int32(q)
	s.inOutVC[i00] = 0
	s.inPush(i00, a.Flit(2))
	s.inPush(i00, a.Flit(3))
	s.flitCount[r.node] += 2
	s.outOwner[r.outIdx(q, 0)] = a

	step := func() []Transfer {
		xfers := r.StageSwitch(nil)
		b.res.Reset()
		b.res.Resolve(xfers)
		for _, tr := range xfers {
			Commit(tr, b)
		}
		r.TickTimers()
		return xfers
	}

	// Cycle 1: the edge packet establishes and uses the connection.
	xfers := step()
	in, _, db, _, _, saved := r.Connection(q)
	if in != 0 || db || saved {
		t.Fatalf("connection not established for edge packet: in=%d db=%v saved=%v", in, db, saved)
	}
	if len(xfers) != 1 {
		t.Fatalf("expected 1 transfer, got %d", len(xfers))
	}

	// A recovered packet enters the Deadlock Buffer wanting the same output.
	p := packet.New(2, topo.NodeAt(topology.Coord{0, 0}), topo.NodeAt(topology.Coord{2, 0}), 1, 0)
	p.OnDB = true
	s.dbPkt[r.db0] = p
	s.dbRoute[r.db0] = int32(q)
	s.dbPush(r.db0, p.Flit(0))
	s.flitCount[r.node]++

	// Cycle 2: preemption — the DB connects, the edge connection is saved.
	step()
	in, _, db, sp, sv, saved := r.Connection(q)
	if !db {
		t.Fatal("DB did not take the output connection")
	}
	if !saved || sp != 0 || sv != 0 {
		t.Fatalf("reconfiguration buffer wrong: saved=%v (%d,%d)", saved, sp, sv)
	}
	if in != connNone {
		t.Fatal("edge connection must be disconnected during preemption")
	}
	if r.Stats().Preemptions != 1 {
		t.Fatalf("preemptions = %d", r.Stats().Preemptions)
	}
	// The DB packet (single flit) left for the neighbor's DB.
	nb := r.neighbors[q]
	if nb.DBOccupancy() != 1 || nb.DBOwner() != p {
		t.Fatal("DB flit did not reach the neighbor's Deadlock Buffer")
	}
	if s.dbPkt[r.db0] != nil {
		t.Fatal("local DB must release after the tail leaves")
	}

	// Cycle 3: the DB is done with q — the suspended edge connection is
	// reconnected from the reconfiguration buffer and resumes sending.
	step()
	in, vcIdx, db, _, _, saved := r.Connection(q)
	if db || saved {
		t.Fatal("DB connection not torn down")
	}
	if in != 0 || vcIdx != 0 {
		t.Fatalf("edge connection not restored: in=(%d,%d)", in, vcIdx)
	}
}

// TestPBPLendsStalledConnection verifies the Assumption-1 lending rule: a
// connected packet with no credits must not idle the link while another
// packet routed to the same output can send.
func TestPBPLendsStalledConnection(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := Default()
	cfg.Alloc = PacketByPacket
	b := newBench(t, topo, cfg, routing.Disha(0))
	r := b.routers[topo.NodeAt(topology.Coord{1, 0})]
	q := topology.PortFor(0, 1)

	// Connected packet A is stalled: zero credits on its output VC.
	a := packet.New(1, 0, 9, 8, 0)
	s := r.st
	iA := r.inIdx(0, 0)
	s.inPkt[iA] = a
	s.inRoute[iA] = int32(q)
	s.inOutVC[iA] = 0
	s.inPush(iA, a.Flit(2))
	s.flitCount[r.node]++
	s.outOwner[r.outIdx(q, 0)] = a
	s.outCredits[r.outIdx(q, 0)] = 0

	// Packet B on another input also routes to q, on VC 1 with credits.
	bb := packet.New(2, 0, 9, 8, 0)
	iB := r.inIdx(2, 0)
	s.inPkt[iB] = bb
	s.inRoute[iB] = int32(q)
	s.inOutVC[iB] = 1
	s.inPush(iB, bb.Flit(2))
	s.inPush(iB, bb.Flit(3))
	s.flitCount[r.node] += 2
	s.outOwner[r.outIdx(q, 1)] = bb

	// First stage: A establishes the connection (or B does — either way a
	// flit must flow every cycle while somebody can send).
	for i := 0; i < 2; i++ {
		xfers := r.StageSwitch(nil)
		b.res.Reset()
		b.res.Resolve(xfers)
		sentB := false
		for _, tr := range xfers {
			if tr.To != nil && tr.OutPort == q && tr.FromPort == 2 {
				sentB = true
			}
		}
		for _, tr := range xfers {
			Commit(tr, b)
		}
		r.TickTimers()
		if i == 1 && !sentB {
			t.Fatal("stalled connection did not lend the link to packet B")
		}
	}
}
