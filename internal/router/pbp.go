package router

import "repro/internal/packet"

// stageSwitchPBP implements packet-by-packet crossbar allocation (paper
// Section 3.3): a crossbar connection is established when a packet wins an
// output port and held until its tail passes; neither input nor output ports
// are multiplexed among packets. Deadlock-recovery traffic — flits leaving
// the central Deadlock Buffer, or flits of a freshly recovered packet still
// in an edge buffer that must depart with the status line asserted — preempts
// a held output; the displaced input is remembered in the output's
// reconfiguration buffer and reconnected once the recovery packet has
// cleared. Without preemption at both places the recovery lane itself could
// wedge behind a blocked edge packet, exactly the hazard the paper's
// reconfiguration buffer exists to avoid.
//
// The reception path is modeled separately from the crossbar (stageEjection
// runs first in StageSwitch), matching routers whose delivery ports bypass
// the switch. Connection state lives in the shared SoA crossbar arrays
// (cxInPort and friends); there is no separate reference twin of this scan —
// both kernel paths share it, and its inner arbitration uses the optimized
// arbitrateInput.
func (r *Router) stageSwitchPBP(out []Transfer) []Transfer {
	s := r.st
	deg := r.deg

	// inputConn[p] counts how many outputs input port p is wired to, and
	// inputPkt[p] is the packet those connections belong to. Input ports
	// are not multiplexed among packets under this policy, but one packet
	// may hold several connections from the same input port: a misrouted
	// wormhole that crosses this router twice enters both times through
	// the same physical channel, and refusing its second connection would
	// deadlock the packet on itself (the upstream segment waiting for a
	// crossbar input that only its own downstream segment can release —
	// a body-flit deadlock the timeout detector, which watches headers,
	// can never recover).
	var inputConn [64]int8
	var inputPkt [64]*packet.Packet
	for q := 0; q < deg; q++ {
		c := r.cxIdx(q)
		if s.cxInPort[c] != connNone {
			p := int(s.cxInPort[c])
			inputConn[p]++
			inputPkt[p] = s.inPkt[r.inIdx(p, int(s.cxInVC[c]))]
		}
	}
	var inputUsed [64]bool
	for l := 0; l < s.stride; l++ {
		if s.inSent[r.in0+l] {
			p, _ := r.portVCOf(l)
			inputUsed[p] = true
		}
	}

	total := s.stride

	unwire := func(p int) {
		inputConn[p]--
		if inputConn[p] == 0 {
			inputPkt[p] = nil
		}
	}
	wire := func(p, v int) {
		inputConn[p]++
		inputPkt[p] = s.inPkt[r.inIdx(p, v)]
	}
	release := func(q int) {
		c := r.cxIdx(q)
		if s.cxInPort[c] != connNone {
			unwire(int(s.cxInPort[c]))
		}
		s.cxInPort[c], s.cxInVC[c] = connNone, 0
		s.cxDB[c] = false
		r.restoreConn(q)
		if s.cxInPort[c] != connNone {
			wire(int(s.cxInPort[c]), int(s.cxInVC[c]))
		}
	}
	preempt := func(q int) {
		c := r.cxIdx(q)
		if s.cxInPort[c] == connNone {
			return
		}
		s.cxSaved[c], s.cxSavedPort[c], s.cxSavedVC[c] = true, s.cxInPort[c], s.cxInVC[c]
		unwire(int(s.cxInPort[c]))
		s.cxInPort[c], s.cxInVC[c] = connNone, 0
		r.stats.Preemptions++
	}

	for q := 0; q < deg; q++ {
		if r.neighbors[q] == nil {
			continue
		}
		c := r.cxIdx(q)
		db0 := r.db0 // lane 0; the PBP policy runs with sequential recovery

		dbUnitWants := s.lanes > 0 && s.dbPkt[db0] != nil && int(s.dbRoute[db0]) == q

		// Release a finished DB-unit connection.
		if s.cxDB[c] && !dbUnitWants {
			release(q)
		}

		// The central Deadlock Buffer preempts any edge connection.
		if dbUnitWants {
			if !s.cxDB[c] {
				preempt(q)
				s.cxDB[c] = true
			}
			if s.dbLen[db0] != 0 && dbStageable(r.neighbors[q], 0, s.dbPkt[db0]) {
				out = append(out, Transfer{From: r, FromDB: true, To: r.neighbors[q], OutPort: q, ToDB: true})
				continue
			}
			// The DB unit is stalled (downstream DB busy). Flits that the
			// DB chain transitively waits on — an earlier recovered
			// packet's edge flits, or their upstream wormhole path — may
			// need this very port, so lend the idle slot (the paper's
			// Assumption 1: internal flow control guarantees forward
			// progress of buffers the recovery lane depends on).
			out = r.arbitrateInput(q, total, &inputUsed, out)
			continue
		}

		// A recovered packet in an edge buffer (status line asserted)
		// preempts as well: its flits must reach the neighbor's DB.
		if rp, rv, ok := r.recoveredInputFor(q); ok && !(int(s.cxInPort[c]) == rp && int(s.cxInVC[c]) == rv) {
			preempt(q)
			s.cxInPort[c], s.cxInVC[c] = int32(rp), int32(rv)
			wire(rp, rv)
		}

		// Drop stale connections (packet drained or redirected by recovery
		// through a different port) and reconnect any suspended input.
		if s.cxInPort[c] != connNone {
			g := r.inIdx(int(s.cxInPort[c]), int(s.cxInVC[c]))
			if s.inPkt[g] == nil || int(s.inRoute[g]) != q {
				release(q)
			}
		}

		// Establish a connection for a packet that routes to this output.
		// Mid-packet establishment is allowed: it is how a connection
		// dropped from the reconfiguration buffer heals.
		if s.cxInPort[c] == connNone {
			off := int(s.swArbOff[r.swIdx(q)])
			for i := 0; i < total; i++ {
				l := off + i
				if l >= total {
					l -= total
				}
				g := r.in0 + l
				if int(s.inRoute[g]) != q || s.inLen[g] == 0 {
					continue
				}
				port, vc := r.portVCOf(l)
				if inputUsed[port] {
					continue
				}
				// A wired input port accepts further connections only for
				// the packet already holding it (see inputConn above).
				if inputConn[port] > 0 && inputPkt[port] != s.inPkt[g] {
					continue
				}
				s.cxInPort[c], s.cxInVC[c] = int32(port), int32(vc)
				wire(port, vc)
				s.swArbOff[r.swIdx(q)] = int32((off + i + 1) % total)
				break
			}
		}
		if s.cxInPort[c] == connNone {
			continue
		}

		// Send the connected packet's next flit. When the holder is stalled
		// (empty buffer, no credits, downstream DB busy), lend the slot to
		// any sendable traffic: a stalled connection must not starve flits
		// the recovery lane transitively depends on (Assumption 1 again).
		inPort, inVC := int(s.cxInPort[c]), int(s.cxInVC[c])
		g := r.inIdx(inPort, inVC)
		staged := false
		if s.inLen[g] != 0 && !inputUsed[inPort] {
			var tr Transfer
			if int(s.inOutVC[g]) == VCDeadlockBuffer {
				if dbStageable(r.neighbors[q], int(s.inDBLane[g]), s.inPkt[g]) {
					tr = Transfer{From: r, FromPort: inPort, FromVC: inVC, To: r.neighbors[q], OutPort: q, ToDB: true, ToDBLane: int(s.inDBLane[g])}
					staged = true
				}
			} else if s.outCredits[r.outIdx(q, int(s.inOutVC[g]))] > 0 {
				tr = Transfer{From: r, FromPort: inPort, FromVC: inVC, To: r.neighbors[q], OutPort: q, ToVC: int(s.inOutVC[g])}
				staged = true
			}
			if staged {
				fl := s.inPeek(g)
				out = append(out, tr)
				inputUsed[inPort] = true
				s.inSent[g] = true
				if fl.IsTail() {
					// Tail passes: tear down and reconnect any suspended
					// input from the reconfiguration buffer.
					release(q)
				}
			}
		}
		if !staged {
			out = r.arbitrateInput(q, total, &inputUsed, out)
		}
	}
	return out
}

// recoveredInputFor returns an input VC holding flits of a recovered packet
// that must leave through output q onto the neighbor's Deadlock Buffer.
func (r *Router) recoveredInputFor(q int) (port, vc int, ok bool) {
	s := r.st
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		if s.inPkt[i] != nil && int(s.inRoute[i]) == q && int(s.inOutVC[i]) == VCDeadlockBuffer && s.inLen[i] != 0 {
			p, v := r.portVCOf(l)
			return p, v, true
		}
	}
	return 0, 0, false
}

// restoreConn reloads output q's connection from its reconfiguration buffer
// if the suspended input still routes to q (it cannot have advanced while
// disconnected, but recovery may have redirected it to the DB lane).
func (r *Router) restoreConn(q int) {
	s := r.st
	c := r.cxIdx(q)
	if !s.cxSaved[c] {
		return
	}
	s.cxSaved[c] = false
	g := r.inIdx(int(s.cxSavedPort[c]), int(s.cxSavedVC[c]))
	if s.inPkt[g] != nil && int(s.inRoute[g]) == q {
		s.cxInPort[c], s.cxInVC[c] = s.cxSavedPort[c], s.cxSavedVC[c]
	}
}

// Connection reports packet-by-packet crossbar state for output q: the
// connected input VC (or db), plus any suspended input held in the
// reconfiguration buffer. Intended for tests and tracing.
func (r *Router) Connection(q int) (inPort, inVC int, db bool, savedPort, savedVC int, saved bool) {
	s := r.st
	c := r.cxIdx(q)
	savedPort, savedVC = int(s.cxSavedPort[c]), int(s.cxSavedVC[c])
	if !s.cxSaved[c] {
		savedPort, savedVC = connNone, 0
	}
	return int(s.cxInPort[c]), int(s.cxInVC[c]), s.cxDB[c], savedPort, savedVC, s.cxSaved[c]
}
