package router

// stageSwitchPBP implements packet-by-packet crossbar allocation (paper
// Section 3.3): a crossbar connection is established when a packet wins an
// output port and held until its tail passes; neither input nor output ports
// are multiplexed among packets. Deadlock-recovery traffic — flits leaving
// the central Deadlock Buffer, or flits of a freshly recovered packet still
// in an edge buffer that must depart with the status line asserted — preempts
// a held output; the displaced input is remembered in the output's
// reconfiguration buffer and reconnected once the recovery packet has
// cleared. Without preemption at both places the recovery lane itself could
// wedge behind a blocked edge packet, exactly the hazard the paper's
// reconfiguration buffer exists to avoid.
//
// The reception path is modeled separately from the crossbar (stageEjection
// runs first in StageSwitch), matching routers whose delivery ports bypass
// the switch.
func (r *Router) stageSwitchPBP(out []Transfer) []Transfer {
	deg := r.topo.Degree()

	// inputConn[p] reports whether input port p is already wired to some
	// output (input ports are not multiplexed under this policy).
	var inputConn [64]bool
	for q := 0; q < deg; q++ {
		if r.conn[q].inPort != connNone {
			inputConn[r.conn[q].inPort] = true
		}
	}
	var inputUsed [64]bool
	for p := range r.inputs {
		for v := range r.inputs[p] {
			if r.inputs[p][v].sent {
				inputUsed[p] = true
			}
		}
	}

	total := 0
	for p := range r.inputs {
		total += len(r.inputs[p])
	}

	release := func(q int) {
		c := &r.conn[q]
		if c.inPort != connNone {
			inputConn[c.inPort] = false
		}
		c.inPort, c.inVC = connNone, 0
		c.db = false
		r.restoreConn(q)
		if c.inPort != connNone {
			inputConn[c.inPort] = true
		}
	}
	preempt := func(q int) {
		c := &r.conn[q]
		if c.inPort == connNone {
			return
		}
		c.saved, c.savedPort, c.savedVC = true, c.inPort, c.inVC
		inputConn[c.inPort] = false
		c.inPort, c.inVC = connNone, 0
		r.stats.Preemptions++
	}

	for q := 0; q < deg; q++ {
		if r.neighbors[q] == nil {
			continue
		}
		c := &r.conn[q]

		dbUnitWants := len(r.dbs) > 0 && r.dbs[0].pkt != nil && r.dbs[0].route == q

		// Release a finished DB-unit connection.
		if c.db && !dbUnitWants {
			release(q)
		}

		// The central Deadlock Buffer preempts any edge connection.
		if dbUnitWants {
			if !c.db {
				preempt(q)
				c.db = true
			}
			if !r.dbs[0].buf.Empty() && dbStageable(r.neighbors[q], 0, r.dbs[0].pkt) {
				out = append(out, Transfer{From: r, FromDB: true, To: r.neighbors[q], OutPort: q, ToDB: true})
				continue
			}
			// The DB unit is stalled (downstream DB busy). Flits that the
			// DB chain transitively waits on — an earlier recovered
			// packet's edge flits, or their upstream wormhole path — may
			// need this very port, so lend the idle slot (the paper's
			// Assumption 1: internal flow control guarantees forward
			// progress of buffers the recovery lane depends on).
			out = r.arbitrateInput(q, total, &inputUsed, out)
			continue
		}

		// A recovered packet in an edge buffer (status line asserted)
		// preempts as well: its flits must reach the neighbor's DB.
		if rp, rv, ok := r.recoveredInputFor(q); ok && !(c.inPort == rp && c.inVC == rv) {
			preempt(q)
			c.inPort, c.inVC = rp, rv
			inputConn[rp] = true
		}

		// Drop stale connections (packet drained or redirected by recovery
		// through a different port) and reconnect any suspended input.
		if c.inPort != connNone {
			ivc := &r.inputs[c.inPort][c.inVC]
			if ivc.pkt == nil || ivc.route != q {
				release(q)
			}
		}

		// Establish a connection for a packet that routes to this output.
		// Mid-packet establishment is allowed: it is how a connection
		// dropped from the reconfiguration buffer heals.
		if c.inPort == connNone {
			off := r.swArbOffset[q]
			for i := 0; i < total; i++ {
				port, vc := r.nthInputVC((off + i) % total)
				if inputConn[port] || inputUsed[port] {
					continue
				}
				ivc := &r.inputs[port][vc]
				if ivc.route != q || ivc.buf.Empty() {
					continue
				}
				c.inPort, c.inVC = port, vc
				inputConn[port] = true
				r.swArbOffset[q] = (off + i + 1) % total
				break
			}
		}
		if c.inPort == connNone {
			continue
		}

		// Send the connected packet's next flit. When the holder is stalled
		// (empty buffer, no credits, downstream DB busy), lend the slot to
		// any sendable traffic: a stalled connection must not starve flits
		// the recovery lane transitively depends on (Assumption 1 again).
		ivc := &r.inputs[c.inPort][c.inVC]
		staged := false
		if !ivc.buf.Empty() && !inputUsed[c.inPort] {
			var tr Transfer
			if ivc.outVC == VCDeadlockBuffer {
				if dbStageable(r.neighbors[q], ivc.dbLane, ivc.pkt) {
					tr = Transfer{From: r, FromPort: c.inPort, FromVC: c.inVC, To: r.neighbors[q], OutPort: q, ToDB: true, ToDBLane: ivc.dbLane}
					staged = true
				}
			} else if r.outputs[q][ivc.outVC].credits > 0 {
				tr = Transfer{From: r, FromPort: c.inPort, FromVC: c.inVC, To: r.neighbors[q], OutPort: q, ToVC: ivc.outVC}
				staged = true
			}
			if staged {
				fl := ivc.buf.Peek()
				out = append(out, tr)
				inputUsed[c.inPort] = true
				ivc.sent = true
				if fl.IsTail() {
					// Tail passes: tear down and reconnect any suspended
					// input from the reconfiguration buffer.
					release(q)
				}
			}
		}
		if !staged {
			out = r.arbitrateInput(q, total, &inputUsed, out)
		}
	}
	return out
}

// recoveredInputFor returns an input VC holding flits of a recovered packet
// that must leave through output q onto the neighbor's Deadlock Buffer.
func (r *Router) recoveredInputFor(q int) (port, vc int, ok bool) {
	for p := range r.inputs {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			if ivc.pkt != nil && ivc.route == q && ivc.outVC == VCDeadlockBuffer && !ivc.buf.Empty() {
				return p, v, true
			}
		}
	}
	return 0, 0, false
}

// restoreConn reloads output q's connection from its reconfiguration buffer
// if the suspended input still routes to q (it cannot have advanced while
// disconnected, but recovery may have redirected it to the DB lane).
func (r *Router) restoreConn(q int) {
	c := &r.conn[q]
	if !c.saved {
		return
	}
	c.saved = false
	ivc := &r.inputs[c.savedPort][c.savedVC]
	if ivc.pkt != nil && ivc.route == q {
		c.inPort, c.inVC = c.savedPort, c.savedVC
	}
}

// Connection reports packet-by-packet crossbar state for output q: the
// connected input VC (or db), plus any suspended input held in the
// reconfiguration buffer. Intended for tests and tracing.
func (r *Router) Connection(q int) (inPort, inVC int, db bool, savedPort, savedVC int, saved bool) {
	c := &r.conn[q]
	savedPort, savedVC = c.savedPort, c.savedVC
	if !c.saved {
		savedPort, savedVC = connNone, 0
	}
	return c.inPort, c.inVC, c.db, savedPort, savedVC, c.saved
}
