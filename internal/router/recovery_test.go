package router

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topology"
)

// wireHam replicates the network's Hamiltonian wiring for a test bench.
func wireHam(b *testBench) {
	order := b.topo.HamiltonianOrder()
	labels := make([]int, b.topo.Nodes())
	for i, node := range order {
		labels[node] = i
	}
	portToward := func(from, to topology.Node) int {
		for p := 0; p < b.topo.Degree(); p++ {
			if nb, ok := b.topo.Neighbor(from, p); ok && nb == to {
				return p
			}
		}
		panic("not adjacent")
	}
	for i, node := range order {
		next, prev := -1, -1
		if i+1 < len(order) {
			next = portToward(node, order[i+1])
		}
		if i > 0 {
			prev = portToward(node, order[i-1])
		}
		b.routers[node].ConnectHamiltonian(labels, next, prev)
	}
}

func TestConcurrentRecoveryLaneSelection(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := Default()
	cfg.Recovery = RecoveryConcurrent
	b := newBench(t, topo, cfg, routing.Disha(0))
	wireHam(b)
	order := topo.HamiltonianOrder()
	mid := b.routers[order[7]] // somewhere in the middle of the path

	if mid.DBLanes() != 2 {
		t.Fatalf("concurrent router has %d DB lanes, want 2", mid.DBLanes())
	}
	// Destination further up the path -> up lane; further down -> down lane.
	up := packet.New(1, order[7], order[12], 2, 0)
	down := packet.New(2, order[7], order[2], 2, 0)
	if lane := mid.recoveryLane(up.Dst); lane != laneUp {
		t.Fatalf("up destination got lane %d", lane)
	}
	if lane := mid.recoveryLane(down.Dst); lane != laneDown {
		t.Fatalf("down destination got lane %d", lane)
	}
	// The lane route is the Hamiltonian successor/predecessor port.
	if got := mid.dbLaneRoute(laneUp, up.Dst); got != mid.hamNextPort {
		t.Fatalf("up lane route %d != next port %d", got, mid.hamNextPort)
	}
	if got := mid.dbLaneRoute(laneDown, down.Dst); got != mid.hamPrevPort {
		t.Fatalf("down lane route %d != prev port %d", got, mid.hamPrevPort)
	}
	if got := mid.dbLaneRoute(laneUp, mid.NodeID()); got != PortEject {
		t.Fatal("at destination the lane must eject")
	}
}

func TestRecoverPresumedAndHamDelivery(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := Default()
	cfg.Recovery = RecoveryConcurrent
	b := newBench(t, topo, cfg, routing.DOR())
	wireHam(b)
	order := topo.HamiltonianOrder()
	src := order[3]
	dst := order[8]

	// Park a blocked header at src's network input port 0 by occupying all
	// of its DOR output VCs, then force the timers past T_out.
	r := b.routers[src]
	blocker := packet.New(99, 0, 1, 4, 0)
	port, ok := routing.DORPort(topo, src, dst)
	if !ok {
		t.Fatal("no DOR port")
	}
	for v := 0; v < cfg.VCs; v++ {
		r.st.outOwner[r.outIdx(port, v)] = blocker
	}
	p := packet.New(1, src, dst, 2, 0)
	i00 := r.inIdx(0, 0)
	r.st.inPkt[i00] = p
	r.st.inPush(i00, p.Flit(0))
	r.st.inPush(i00, p.Flit(1))
	r.st.flitCount[r.node] += 2
	for i := 0; i < int(cfg.Timeout)+2; i++ {
		b.step()
	}
	if got := r.RecoverPresumed(b.now, nil); len(got) != 1 {
		t.Fatalf("RecoverPresumed = %d packets, want 1", len(got))
	}
	if !p.OnDB || p.SeizedToken {
		t.Fatalf("concurrent recovery state wrong: onDB=%v seized=%v", p.OnDB, p.SeizedToken)
	}
	for i := 0; i < 60 && !p.Delivered(); i++ {
		b.step()
	}
	if !p.Delivered() {
		t.Fatal("packet did not traverse the Hamiltonian DB lane to its destination")
	}
	// Exactly |label(dst) - label(src)| DB hops plus ejection: hops grow by
	// the Hamiltonian distance.
	if p.Hops != 8-3 {
		t.Fatalf("ham lane hops = %d, want %d", p.Hops, 8-3)
	}
}

func TestPurgePacket(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	cfg := Default()
	cfg.Timeout = 0
	cfg.DeadlockBufferDepth = 0
	b := newBench(t, topo, cfg, routing.DOR())
	r1 := b.routers[topo.NodeAt(topology.Coord{1, 0})]
	r0 := b.routers[topo.NodeAt(topology.Coord{0, 0})]
	q := topology.PortFor(0, 1)

	// Packet spans two routers: body at r0 (input port 0 vc 0, granted
	// toward q), header at r1 on the matching input VC.
	p := packet.New(1, 0, 9, 6, 0)
	i0 := r0.inIdx(0, 0)
	r0.st.inPkt[i0] = p
	r0.st.inRoute[i0] = int32(q)
	r0.st.inOutVC[i0] = 0
	r0.st.inPush(i0, p.Flit(1))
	r0.st.inPush(i0, p.Flit(2))
	r0.st.flitCount[r0.node] += 2
	r0.st.outOwner[r0.outIdx(q, 0)] = p
	rev := topology.ReversePort(q)
	i1 := r1.inIdx(rev, 0)
	r1.st.inPkt[i1] = p
	r1.st.inRoute[i1] = PortUnrouted
	r1.st.inPush(i1, p.Flit(0))
	r1.st.flitCount[r1.node]++
	r0.st.outCredits[r0.outIdx(q, 0)] = int32(cfg.BufferDepth - 1)

	purged := r0.PurgePacket(p) + r1.PurgePacket(p)
	if purged != 3 {
		t.Fatalf("purged %d flits, want 3", purged)
	}
	if !r0.Quiescent() || !r1.Quiescent() {
		t.Fatal("routers not quiescent after purge")
	}
	if r0.OutputOwner(q, 0) != nil {
		t.Fatal("output VC still owned")
	}
	if r0.Credits(q, 0) != cfg.BufferDepth {
		t.Fatalf("credits %d not restored to %d", r0.Credits(q, 0), cfg.BufferDepth)
	}
	if r0.InputOwner(0, 0) != nil || r1.InputOwner(rev, 0) != nil {
		t.Fatal("input VCs still owned")
	}
	if got := r0.PresumedPackets(nil); len(got) != 0 {
		t.Fatal("purged router still presumes packets")
	}
}

func TestRecoveryModeString(t *testing.T) {
	for m, want := range map[RecoveryMode]string{
		RecoverySequential: "sequential",
		RecoveryConcurrent: "concurrent",
		RecoveryAbortRetry: "abort-retry",
		RecoveryMode(9):    "RecoveryMode(9)",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}
