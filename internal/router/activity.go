package router

import "repro/internal/sim"

// Activity reporting and idle catch-up for the network's active-set
// scheduler (internal/network). The paper's own premise motivates it:
// deadlock is rare because at realistic loads most routers are idle most
// cycles, so the step kernel skips fully drained routers entirely. Skipping
// is only legal because an idle router's per-cycle state evolution is tiny
// and closed-form: everything a drained router would have done under the
// full per-cycle scan is reproduced exactly by CatchUpIdle, so digests and
// snapshots are byte-identical to a kernel that never skips (the golden
// conformance suite enforces this).

// FlitCount returns the number of flits buffered anywhere in the router —
// input VCs and Deadlock Buffer lanes. It is maintained incrementally at
// every buffer push/pop, so the active-set scheduler's drain check is O(1);
// CheckInvariants cross-checks it against a full buffer walk.
func (r *Router) FlitCount() int { return int(r.st.flitCount[r.node]) }

// CrossbarIdle reports whether the packet-by-packet crossbar holds no
// connection state: no wired input, no Deadlock Buffer connection, and an
// empty reconfiguration buffer on every output. A drained router with a
// dirty crossbar still mutates state on its next staging pass (stale
// connections are released there), so the active-set scheduler keeps such a
// router active until the crossbar has settled. Under flit-by-flit
// allocation the crossbar state is never populated and this is always true.
func (r *Router) CrossbarIdle() bool {
	s := r.st
	for q := 0; q < r.deg; q++ {
		i := r.cx0 + q
		if s.cxInPort[i] != connNone || s.cxDB[i] || s.cxSaved[i] {
			return false
		}
	}
	return true
}

// CatchUpIdle fast-forwards the state a fully drained router evolves while
// skipped by the active-set scheduler, as if StageRouting had run for
// stageCycles cycles and TickTimers for timerCycles cycles on an empty
// router. On such a router those passes change exactly three things, all
// with closed forms:
//
//   - StageRouting unconditionally rotates the VC-allocation priority
//     offset by one per cycle;
//   - TickTimers, under AdaptiveTimeout, counts decay ticks and steps the
//     effective time-out back toward the configured base every 256 ticks;
//   - TickTimers recomputes the blocked/presumed telemetry gauges, which on
//     an empty router is zero after the first skipped pass.
//
// Everything else an empty router touches in those passes is provably a
// no-op (empty buffers stage nothing, win no arbitration, and advance no
// switch offsets). The two cycle counts differ at wake-up because a router
// woken by a mid-cycle flit arrival has already missed the cycle's staging
// pass but still runs its timer pass live.
func (r *Router) CatchUpIdle(stageCycles, timerCycles int) {
	s := r.st
	if stageCycles > 0 {
		s.vcArbOff[r.node] = int32((int(s.vcArbOff[r.node]) + stageCycles) % max(s.stride, 1))
	}
	if timerCycles > 0 {
		if r.cfg.AdaptiveTimeout {
			ticks := int(s.decayCount[r.node]) + timerCycles
			decays := ticks / 256
			s.decayCount[r.node] = int32(ticks % 256)
			if over := s.effTout[r.node] - r.cfg.Timeout; over > 0 {
				if int64(decays) < int64(over) {
					s.effTout[r.node] -= sim.Cycle(decays)
				} else {
					s.effTout[r.node] = r.cfg.Timeout
				}
			}
		}
		s.lastBlocked[r.node] = 0
		s.lastPresumed[r.node] = 0
	}
}
