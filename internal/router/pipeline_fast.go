package router

// The optimized SoA scan phases. These are the default per-cycle entry
// points; each makes exactly the decisions of its *Ref twin in pipeline.go,
// in the same order, so the two paths stay byte-identical in effect (the
// differential conformance suite in internal/network enforces this every
// cycle). The speed comes from the flat layout: per-slot candidacy checks
// are single loads from contiguous int32/bool arrays (inLen, inRoute,
// inSent), the rotating flat index maps to (port, vc) with the O(1)
// portVCOf inverse instead of the O(ports) nthInputVC walk, and the slot
// total is the precomputed stride rather than a per-call summation.

// StageRouting performs routing computation and output VC allocation for
// every input VC whose head flit is an unrouted header. Grants take effect
// immediately in router-local state (output VC ownership), so later headers
// in the same cycle see them; the rotating start offset keeps this fair.
func (r *Router) StageRouting() {
	s := r.st
	total := s.stride
	off := int(s.vcArbOff[r.node])
	s.vcArbOff[r.node] = int32((off + 1) % total)
	for i := 0; i < total; i++ {
		l := off + i
		if l >= total {
			l -= total
		}
		g := r.in0 + l
		// Hot early-out on the contiguous arrays: most slots are empty or
		// already routed, and this rejects them without touching the ring.
		if s.inLen[g] == 0 || s.inRoute[g] != PortUnrouted {
			continue
		}
		r.routeSlot(g)
	}
}

// StageSwitch arbitrates the crossbar and reception channels for this cycle
// and appends the staged flit movements to out. Decisions use
// start-of-cycle buffer/credit state; Commit applies them afterwards.
//
// StageSwitch mutates only this router's state and reads neighbors' Deadlock
// Buffer state, which is start-of-cycle stable, so disjoint router shards may
// stage concurrently. Deadlock-Buffer-bound transfers are staged
// optimistically; the caller must run Reservations.Resolve over all staged
// transfers (in fixed router order) before committing them.
func (r *Router) StageSwitch(out []Transfer) []Transfer {
	out = r.stageEjection(out)
	if r.cfg.Alloc == PacketByPacket {
		return r.stageSwitchPBP(out)
	}
	return r.stageSwitchFBF(out)
}

// stageEjection grants the reception channel(s): the Deadlock Buffers first
// (the recovery lane must always drain), then input VCs round-robin.
func (r *Router) stageEjection(out []Transfer) []Transfer {
	s := r.st
	budget := r.cfg.ReceptionChannels
	if budget == 0 {
		return out
	}
	for lane := 0; lane < s.lanes; lane++ {
		if budget == 0 {
			break
		}
		i := r.dbIdx(lane)
		if s.dbLen[i] != 0 && int(s.dbRoute[i]) == PortEject {
			out = append(out, Transfer{From: r, FromDB: true, FromDBLane: lane, Eject: true})
			budget--
		}
	}
	total := s.stride
	off := int(s.swArbOff[r.swIdx(r.deg)])
	granted := false
	for i := 0; i < total && budget > 0; i++ {
		l := off + i
		if l >= total {
			l -= total
		}
		g := r.in0 + l
		if int(s.inRoute[g]) != PortEject || s.inLen[g] == 0 || s.inSent[g] {
			continue
		}
		port, vc := r.portVCOf(l)
		out = append(out, Transfer{From: r, FromPort: port, FromVC: vc, Eject: true})
		s.inSent[g] = true
		budget--
		if !granted {
			s.swArbOff[r.swIdx(r.deg)] = int32((off + i + 1) % total)
			granted = true
		}
	}
	return out
}

// stageSwitchFBF implements flit-by-flit crossbar allocation: a greedy
// matching of input ports to output ports, one flit per port per cycle,
// with the Deadlock Buffer as an extra crossbar input that has priority on
// its output (so the recovery lane always progresses).
func (r *Router) stageSwitchFBF(out []Transfer) []Transfer {
	s := r.st
	var inputUsed [64]bool // deg+1 <= 64 always (n <= 31 dims)
	// Ejection grants above already consumed their input ports this cycle:
	// one linear sweep of the contiguous sent flags.
	for l := 0; l < s.stride; l++ {
		if s.inSent[r.in0+l] {
			p, _ := r.portVCOf(l)
			inputUsed[p] = true
		}
	}
	for q := 0; q < r.deg; q++ {
		if r.neighbors[q] == nil {
			continue
		}
		// Deadlock Buffer priority on its output.
		if r.stageDBOutput(q, &out) {
			continue
		}
		out = r.arbitrateInput(q, s.stride, &inputUsed, out)
	}
	return out
}

// arbitrateInput grants output port q to one sendable input VC this cycle,
// round-robin starting from the port's rotating offset. It is the per-flit
// output arbitration of the flit-by-flit policy and the lending fallback of
// the packet-by-packet policy.
func (r *Router) arbitrateInput(q, total int, inputUsed *[64]bool, out []Transfer) []Transfer {
	s := r.st
	off := int(s.swArbOff[r.swIdx(q)])
	for i := 0; i < total; i++ {
		l := off + i
		if l >= total {
			l -= total
		}
		g := r.in0 + l
		// Route mismatch is the overwhelmingly common case; test it on the
		// contiguous route array before deriving (port, vc).
		if int(s.inRoute[g]) != q || s.inLen[g] == 0 {
			continue
		}
		port, vc := r.portVCOf(l)
		if inputUsed[port] {
			continue
		}
		if int(s.inOutVC[g]) == VCDeadlockBuffer {
			if !dbStageable(r.neighbors[q], int(s.inDBLane[g]), s.inPkt[g]) {
				continue
			}
			out = append(out, Transfer{From: r, FromPort: port, FromVC: vc,
				To: r.neighbors[q], OutPort: q, ToDB: true, ToDBLane: int(s.inDBLane[g])})
		} else {
			if s.outCredits[r.outIdx(q, int(s.inOutVC[g]))] <= 0 {
				continue
			}
			out = append(out, Transfer{From: r, FromPort: port, FromVC: vc, To: r.neighbors[q], OutPort: q, ToVC: int(s.inOutVC[g])})
		}
		inputUsed[port] = true
		s.inSent[g] = true
		s.swArbOff[r.swIdx(q)] = int32((off + i + 1) % total)
		break
	}
	return out
}

// TickTimers advances T_elapsed for blocked headers (paper Section 3.1) and
// clears the per-cycle sent markers. It returns the number of headers that
// newly crossed T_out this cycle; each newly presumed packet is buffered for
// the observer installed with SetOnTimeout (tracing, flight recorder), which
// runs when the caller invokes FlushTimeouts — deferred so that TickTimers
// touches only router-local state and disjoint router shards can tick
// concurrently. As a side effect it refreshes the router's telemetry
// instrumentation (BlockedHeaders, PresumedHeaders, per-VC blocked-cycle
// counters) — the loop already touches every input VC, so the extra cost is
// a few adds.
func (r *Router) TickTimers() int {
	s := r.st
	newly := 0
	blocked, presumed := 0, 0
	tout := r.tickDecay()
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		// Idle slots (empty, nothing sent, timer already clear) are the
		// common case at every load; reject them with contiguous loads
		// before paying for the (port, vc) split and the full slot tick.
		if !s.inSent[i] && s.inLen[i] == 0 && s.inWaiting[i] == 0 && !s.inPresumed[i] {
			continue
		}
		p, v := r.portVCOf(l)
		newly += r.tickSlot(i, p, v, tout, &blocked, &presumed)
	}
	s.lastBlocked[r.node] = int32(blocked)
	s.lastPresumed[r.node] = int32(presumed)
	return newly
}
