// Package router implements the wormhole router microarchitecture of the
// DISHA paper: per-virtual-channel input buffers with credit-based flow
// control, routing and virtual-channel allocation driven by a pluggable
// routing algorithm and selection function, flit-by-flit or packet-by-packet
// crossbar allocation, the time-out deadlock detector (T_elapsed/T_out), and
// the central Deadlock Buffer with its deadlock-free recovery lane.
//
// Routers are passive: internal/network drives the per-cycle pipeline
// (injection, routing/VC allocation, switch allocation, transfer commit,
// timer update) and owns the recovery Token. All router methods assume
// single-threaded access in a fixed order, which makes simulations
// deterministic for a given seed.
package router

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Route sentinels stored in inputVC.route.
const (
	// PortUnrouted marks an input VC whose head header has not yet been
	// assigned an output.
	PortUnrouted = -1
	// PortEject routes the packet into the local reception channel.
	PortEject = -2
)

// Output VC sentinels stored in inputVC.outVC.
const (
	// VCUnrouted marks no output VC granted.
	VCUnrouted = -1
	// VCDeadlockBuffer marks a recovered packet whose flits leave with the
	// status line asserted: the next router places them in its Deadlock
	// Buffer, bypassing the edge buffers.
	VCDeadlockBuffer = -2
)

// inputVC is the state of one virtual-channel input buffer. A wormhole
// packet owns the VC from its header's arrival until its tail departs.
type inputVC struct {
	buf    fifo
	pkt    *packet.Packet // owner; nil when idle
	route  int            // granted output port, PortEject, or PortUnrouted
	outVC  int            // granted output VC, VCDeadlockBuffer, or VCUnrouted
	dbLane int            // recovery lane index when outVC == VCDeadlockBuffer

	// waiting is T_elapsed: consecutive cycles the header at the head of
	// this buffer has been unable to leave.
	waiting  sim.Cycle
	presumed bool // T_elapsed exceeded T_out (presumed deadlocked)
	sent     bool // a flit left this cycle (cleared by TickTimers)
}

// outputVC is the sender-side state of one downstream virtual channel.
type outputVC struct {
	owner   *packet.Packet // packet holding the VC; nil when released
	credits int            // free flit slots in the downstream input buffer
}

// dbUnit is a central Deadlock Buffer: a single flit buffer reachable from
// every neighbor, forming the deadlock-free lane during recovery. Sequential
// recovery uses one unit per router; concurrent recovery uses two
// direction-partitioned units (the "up" and "down" Hamiltonian lanes).
type dbUnit struct {
	buf   fifo
	pkt   *packet.Packet // packet currently threading this DB
	route int            // output decided when the header arrived
}

// Deadlock Buffer lane indices for concurrent recovery.
const (
	laneUp   = 0 // toward increasing Hamiltonian labels
	laneDown = 1 // toward decreasing Hamiltonian labels
)

// xbarConn tracks packet-by-packet crossbar state for one output port.
type xbarConn struct {
	inPort, inVC int  // connected input VC; inPort == connNone when free
	db           bool // connected to the Deadlock Buffer
	// reconfiguration buffer: the single input connection displaced by a
	// Deadlock Buffer preemption (paper Section 3.3).
	saved     bool
	savedPort int
	savedVC   int
}

const connNone = -1

// Stats are per-router event counters.
type Stats struct {
	TimeoutEvents   int64 // headers whose T_elapsed first exceeded T_out
	FalseDetections int64 // presumed headers that later moved without recovery
	Recoveries      int64 // packets switched onto the Deadlock Buffer lane here
	MisrouteHops    int64 // non-profitable hops taken out of this router
	FlitsSwitched   int64 // flits sent on network output ports
	FlitsEjected    int64 // flits consumed by the local reception channel(s)
	DBFlitsCarried  int64 // flits that transited this router's Deadlock Buffer
	Preemptions     int64 // packet-by-packet crossbar preemptions by the DB
	BlockedCycles   int64 // header-cycles spent blocked (sum of T_elapsed ticks)
}

// Router is one network node's switch.
type Router struct {
	node topology.Node
	topo topology.Topology
	cfg  Config
	alg  routing.Algorithm
	sel  routing.Selection
	rng  *sim.RNG

	// inputs[p][v]: p in [0, degree) are network ports, p == degree is the
	// injection port (with cfg.InjectionVCs VCs).
	inputs  [][]inputVC
	outputs [][]outputVC // network ports only
	dbs     []dbUnit     // 0 (recovery off), 1 (sequential) or 2 (concurrent)

	neighbors []*Router // per network port; nil where no link exists

	// Hamiltonian-path wiring for concurrent recovery: the shared
	// node-to-label table, this router's label, and the ports toward its
	// successor/predecessor on the path (-1 at the path's ends). Set by
	// ConnectHamiltonian.
	hamLabels   []int
	hamLabel    int
	hamNextPort int
	hamPrevPort int

	// dbTable, when set, overrides dimension-order Deadlock Buffer routing
	// with a fault-aware next-hop table (see SetDBRouteTable).
	dbTable []int32

	// Adaptive time-out state (Config.AdaptiveTimeout).
	effTout    sim.Cycle
	decayCount int

	conn []xbarConn // packet-by-packet state, one per network output port

	vcArbOffset int   // rotating priority for VC allocation
	swArbOffset []int // rotating priority per output port (+1 for ejection)

	candBuf []routing.Candidate
	stats   Stats

	// flitCount mirrors the total number of flits buffered in input VCs and
	// Deadlock Buffer lanes, maintained at every push/pop so Quiescent and
	// the network's active-set drain check are O(1). Not part of the digest
	// (it is derivable); CheckInvariants cross-checks it against a full walk.
	flitCount int

	// Telemetry instrumentation, maintained by TickTimers (which already
	// visits every input VC each cycle, so this costs almost nothing):
	// cumulative blocked cycles keyed by VC index, and the most recent
	// cycle's blocked/presumed header counts.
	blockedByVC  []int64
	lastBlocked  int
	lastPresumed int

	// onTimeout, when set via SetOnTimeout, observes every newly presumed
	// header (tracing, telemetry flight recorder). TickTimers buffers the
	// newly presumed packets in pendingTimeouts; FlushTimeouts drains them.
	onTimeout       func(*packet.Packet)
	pendingTimeouts []*packet.Packet
}

// New constructs a router for node. The caller wires neighbors with Connect
// before the first cycle. cfg must already be normalized.
func New(node topology.Node, topo topology.Topology, cfg Config, alg routing.Algorithm, sel routing.Selection, rng *sim.RNG) *Router {
	deg := topo.Degree()
	r := &Router{
		node:        node,
		topo:        topo,
		cfg:         cfg,
		alg:         alg,
		sel:         sel,
		rng:         rng,
		inputs:      make([][]inputVC, deg+1),
		outputs:     make([][]outputVC, deg),
		neighbors:   make([]*Router, deg),
		conn:        make([]xbarConn, deg),
		swArbOffset: make([]int, deg+1),
		candBuf:     make([]routing.Candidate, 0, 4*deg*cfg.VCs),
	}
	for p := 0; p < deg; p++ {
		r.inputs[p] = make([]inputVC, cfg.VCs)
		r.outputs[p] = make([]outputVC, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			r.inputs[p][v] = inputVC{buf: newFIFO(cfg.BufferDepth), route: PortUnrouted, outVC: VCUnrouted}
			r.outputs[p][v] = outputVC{credits: cfg.BufferDepth}
		}
		r.conn[p] = xbarConn{inPort: connNone}
	}
	r.inputs[deg] = make([]inputVC, cfg.InjectionVCs)
	for v := range r.inputs[deg] {
		r.inputs[deg][v] = inputVC{buf: newFIFO(cfg.BufferDepth), route: PortUnrouted, outVC: VCUnrouted}
	}
	if cfg.DeadlockBufferDepth > 0 {
		lanes := 1
		if cfg.Recovery == RecoveryConcurrent {
			lanes = 2
		}
		for i := 0; i < lanes; i++ {
			r.dbs = append(r.dbs, dbUnit{buf: newFIFO(cfg.DeadlockBufferDepth), route: PortUnrouted})
		}
	}
	r.hamNextPort, r.hamPrevPort = -1, -1
	r.effTout = cfg.Timeout
	maxVCs := cfg.VCs
	if cfg.InjectionVCs > maxVCs {
		maxVCs = cfg.InjectionVCs
	}
	r.blockedByVC = make([]int64, maxVCs)
	return r
}

// EffectiveTimeout returns the router's current deadlock time-out: the
// configured T_out, or the self-tuned value under AdaptiveTimeout.
func (r *Router) EffectiveTimeout() sim.Cycle { return r.effTout }

// ConnectHamiltonian wires the router into the recovery Hamiltonian path:
// the shared node-to-label table and the output ports toward the path's
// successor and predecessor (pass -1 at the ends). Required for concurrent
// recovery; the network calls it for every router.
func (r *Router) ConnectHamiltonian(labels []int, nextPort, prevPort int) {
	r.hamLabels = labels
	r.hamLabel = labels[r.node]
	r.hamNextPort = nextPort
	r.hamPrevPort = prevPort
}

// Connect wires the neighbor reached through the given output port. The
// network calls it for both directions of every link.
func (r *Router) Connect(port int, neighbor *Router) {
	r.neighbors[port] = neighbor
}

// Neighbor returns the router wired to the given output port (nil where no
// link exists). Analysis tools use it to follow wait-for relations across
// links.
func (r *Router) Neighbor(port int) *Router { return r.neighbors[port] }

// InjectionPort returns the input port index of the injection channel.
func (r *Router) InjectionPort() int { return r.topo.Degree() }

// Algorithm returns the routing algorithm this router runs; analysis tools
// use it to recompute a blocked header's candidate set.
func (r *Router) Algorithm() routing.Algorithm { return r.alg }

// NodeID returns the router's node.
func (r *Router) NodeID() topology.Node { return r.node }

// Stats returns a copy of the router's event counters.
func (r *Router) Stats() Stats { return r.stats }

// SetOnTimeout installs the observer invoked for every header newly
// presumed deadlocked at this router (nil detaches). The network wires it
// when tracing or telemetry is attached; routers never call it otherwise.
func (r *Router) SetOnTimeout(fn func(*packet.Packet)) { r.onTimeout = fn }

// BlockedHeaders returns how many headers failed to advance during the most
// recent TickTimers pass (a live congestion gauge).
func (r *Router) BlockedHeaders() int { return r.lastBlocked }

// PresumedHeaders returns how many headers were in the presumed-deadlocked
// state during the most recent TickTimers pass.
func (r *Router) PresumedHeaders() int { return r.lastPresumed }

// BlockedCyclesVC returns the cumulative header-blocked cycles charged to
// the given VC index (summed over all input ports).
func (r *Router) BlockedCyclesVC(vc int) int64 {
	if vc < 0 || vc >= len(r.blockedByVC) {
		return 0
	}
	return r.blockedByVC[vc]
}

// --- routing.View -----------------------------------------------------------

// Node implements routing.View.
func (r *Router) Node() topology.Node { return r.node }

// Topo implements routing.View.
func (r *Router) Topo() topology.Topology { return r.topo }

// VCs implements routing.View.
func (r *Router) VCs() int { return r.cfg.VCs }

// LinkExists implements routing.View.
func (r *Router) LinkExists(port int) bool {
	return port >= 0 && port < len(r.neighbors) && r.neighbors[port] != nil
}

// OutputVCFree implements routing.View: a VC is allocatable only when no
// packet owns it and the downstream buffer has fully drained (atomic VC
// reallocation, so packets never interleave inside one edge buffer).
func (r *Router) OutputVCFree(port, vc int) bool {
	o := &r.outputs[port][vc]
	return o.owner == nil && o.credits == r.cfg.BufferDepth
}

// OccupantDimReversals implements routing.View.
func (r *Router) OccupantDimReversals(port, vc int) (int, bool) {
	o := &r.outputs[port][vc]
	if o.owner == nil {
		return 0, false
	}
	return o.owner.DimReversals, true
}

// FreeVCs implements routing.View.
func (r *Router) FreeVCs(port int) int {
	n := 0
	for vc := range r.outputs[port] {
		if r.OutputVCFree(port, vc) {
			n++
		}
	}
	return n
}

var _ routing.View = (*Router)(nil)

// --- Injection interface (used by the network's NI model) -------------------

// InjectFlit offers the next flit of a packet to the injection input. It
// returns false if the injection channel cannot accept it this cycle: the
// flit's packet must already own an injection VC with buffer space, or — for
// a header — some injection VC must be idle.
func (r *Router) InjectFlit(fl packet.Flit, now sim.Cycle) bool {
	port := r.InjectionPort()
	if fl.IsHeader() {
		for v := range r.inputs[port] {
			ivc := &r.inputs[port][v]
			if ivc.pkt == nil && ivc.buf.Empty() {
				ivc.pkt = fl.Pkt
				ivc.buf.Push(fl)
				r.flitCount++
				fl.Pkt.InjectedAt = now
				return true
			}
		}
		return false
	}
	for v := range r.inputs[port] {
		ivc := &r.inputs[port][v]
		if ivc.pkt == fl.Pkt && !ivc.buf.Full() {
			ivc.buf.Push(fl)
			r.flitCount++
			return true
		}
	}
	return false
}

// --- Introspection helpers (tests, wait-for-graph analysis) ------------------

// InputOwner returns the packet owning input VC (port, vc), if any.
func (r *Router) InputOwner(port, vc int) *packet.Packet { return r.inputs[port][vc].pkt }

// InputRoute returns the granted (route, outVC) of input VC (port, vc).
func (r *Router) InputRoute(port, vc int) (route, outVC int) {
	ivc := &r.inputs[port][vc]
	return ivc.route, ivc.outVC
}

// InputOccupancy returns the number of buffered flits in input VC (port, vc).
func (r *Router) InputOccupancy(port, vc int) int { return r.inputs[port][vc].buf.Len() }

// InputHead returns the head flit of input VC (port, vc); ok is false when
// the buffer is empty.
func (r *Router) InputHead(port, vc int) (packet.Flit, bool) {
	if r.inputs[port][vc].buf.Empty() {
		return packet.Flit{}, false
	}
	return r.inputs[port][vc].buf.Peek(), true
}

// OutputOwner returns the packet holding output VC (port, vc), if any.
func (r *Router) OutputOwner(port, vc int) *packet.Packet { return r.outputs[port][vc].owner }

// Credits returns the credit count of output VC (port, vc).
func (r *Router) Credits(port, vc int) int { return r.outputs[port][vc].credits }

// DBLanes returns the number of Deadlock Buffer units (0 with recovery
// disabled, 1 for sequential recovery, 2 for concurrent recovery).
func (r *Router) DBLanes() int { return len(r.dbs) }

// DBOccupancy returns the total number of flits across all Deadlock
// Buffer lanes.
func (r *Router) DBOccupancy() int {
	n := 0
	for i := range r.dbs {
		n += r.dbs[i].buf.Len()
	}
	return n
}

// DBOwner returns the packet currently threading the (first) Deadlock
// Buffer lane; use DBLaneOwner for a specific lane.
func (r *Router) DBOwner() *packet.Packet {
	if len(r.dbs) == 0 {
		return nil
	}
	return r.dbs[0].pkt
}

// DBLaneOwner returns the packet threading the given Deadlock Buffer lane.
func (r *Router) DBLaneOwner(lane int) *packet.Packet { return r.dbs[lane].pkt }

// InputPorts returns the number of input ports including injection.
func (r *Router) InputPorts() int { return len(r.inputs) }

// InputVCCount returns the number of VCs on the given input port.
func (r *Router) InputVCCount(port int) int { return len(r.inputs[port]) }

// Quiescent reports whether the router holds no flits at all. O(1): backed
// by the maintained flit counter rather than a buffer walk.
func (r *Router) Quiescent() bool { return r.flitCount == 0 }

// String identifies the router by coordinate and algorithm for logs.
func (r *Router) String() string {
	return fmt.Sprintf("router@%v(%s)", r.topo.Coord(r.node), r.alg.Name())
}

// Disconnect severs the output link on the given port (fault injection).
// The network guarantees the link is idle when it calls this.
func (r *Router) Disconnect(port int) { r.neighbors[port] = nil }

// SetDBRouteTable installs a fault-aware next-hop table for the Deadlock
// Buffer lane: table[int(dst)*nodes + int(node)] is the output port toward
// dst at node over live links only. When set it replaces dimension-order
// DB routing (sequential recovery with failed links).
func (r *Router) SetDBRouteTable(table []int32) { r.dbTable = table }

// LinkBusy reports whether any traffic state rides the output link on port:
// an owned output VC, undrained downstream credits, or Deadlock Buffer
// traffic routed through it. Fault injection refuses busy links (dynamic
// mid-stream faults lose flits and are out of scope, as in the paper).
func (r *Router) LinkBusy(port int) bool {
	if r.neighbors[port] == nil {
		return false
	}
	for v := range r.outputs[port] {
		o := &r.outputs[port][v]
		if o.owner != nil || o.credits != r.cfg.BufferDepth {
			return true
		}
	}
	for lane := range r.dbs {
		if r.dbs[lane].pkt != nil && r.dbs[lane].route == port {
			return true
		}
	}
	for p := range r.inputs {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			if ivc.pkt != nil && ivc.route == port {
				return true
			}
		}
	}
	return false
}
