// Package router implements the wormhole router microarchitecture of the
// DISHA paper: per-virtual-channel input buffers with credit-based flow
// control, routing and virtual-channel allocation driven by a pluggable
// routing algorithm and selection function, flit-by-flit or packet-by-packet
// crossbar allocation, the time-out deadlock detector (T_elapsed/T_out), and
// the central Deadlock Buffer with its deadlock-free recovery lane.
//
// Routers are passive: internal/network drives the per-cycle pipeline
// (injection, routing/VC allocation, switch allocation, transfer commit,
// timer update) and owns the recovery Token. All router methods assume
// single-threaded access in a fixed order, which makes simulations
// deterministic for a given seed.
//
// The hot per-cycle state — VC buffers, credits, deadlock timers, crossbar
// connections — lives in flat struct-of-arrays buffers shared by every router
// of one network (see State); a Router is a view over its slice of those
// buffers. The per-cycle scan phases therefore sweep contiguous memory, while
// the router API, digests and snapshots are unchanged and layout-invariant.
package router

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Route sentinels stored in an input VC's route slot.
const (
	// PortUnrouted marks an input VC whose head header has not yet been
	// assigned an output.
	PortUnrouted = -1
	// PortEject routes the packet into the local reception channel.
	PortEject = -2
)

// Output VC sentinels stored in an input VC's outVC slot.
const (
	// VCUnrouted marks no output VC granted.
	VCUnrouted = -1
	// VCDeadlockBuffer marks a recovered packet whose flits leave with the
	// status line asserted: the next router places them in its Deadlock
	// Buffer, bypassing the edge buffers.
	VCDeadlockBuffer = -2
)

// Deadlock Buffer lane indices for concurrent recovery.
const (
	laneUp   = 0 // toward increasing Hamiltonian labels
	laneDown = 1 // toward decreasing Hamiltonian labels
)

const connNone = -1

// Stats are per-router event counters.
type Stats struct {
	TimeoutEvents   int64 // headers whose T_elapsed first exceeded T_out
	FalseDetections int64 // presumed headers that later moved without recovery
	Recoveries      int64 // packets switched onto the Deadlock Buffer lane here
	MisrouteHops    int64 // non-profitable hops taken out of this router
	FlitsSwitched   int64 // flits sent on network output ports
	FlitsEjected    int64 // flits consumed by the local reception channel(s)
	DBFlitsCarried  int64 // flits that transited this router's Deadlock Buffer
	Preemptions     int64 // packet-by-packet crossbar preemptions by the DB
	BlockedCycles   int64 // header-cycles spent blocked (sum of T_elapsed ticks)
}

// Router is one network node's switch: a view over the node's slice of the
// network-wide struct-of-arrays State, plus the cold per-router state (stats,
// wiring, RNG, scratch) that no per-cycle scan touches.
type Router struct {
	node topology.Node
	topo topology.Graph
	// ctopo is the coordinate view of topo when it has one (k-ary n-cubes),
	// nil otherwise. Dateline tracking, dimension-reversal accounting and
	// the dimension-order Deadlock Buffer fallback are gated on it.
	ctopo topology.Topology
	cfg   Config
	alg   routing.Algorithm
	sel   routing.Selection
	rng   *sim.RNG

	// Shared struct-of-arrays state and this router's base offsets into it.
	st   *State
	deg  int // topo.Degree(), cached for index math
	in0  int // first input VC slot:       node * st.stride
	out0 int // first output VC slot:      node * st.outStr
	db0  int // first Deadlock Buffer slot: node * st.lanes
	cx0  int // first crossbar slot:        node * st.deg
	sw0  int // first switch-arb slot:      node * (st.deg + 1)

	neighbors []*Router // per network port; nil where no link exists

	// Hamiltonian-path wiring for concurrent recovery: the shared
	// node-to-label table, this router's label, and the ports toward its
	// successor/predecessor on the path (-1 at the path's ends). Set by
	// ConnectHamiltonian.
	hamLabels   []int
	hamLabel    int
	hamNextPort int
	hamPrevPort int

	// dbTable, when set, overrides dimension-order Deadlock Buffer routing
	// with a fault-aware next-hop table (see SetDBRouteTable).
	dbTable []int32

	// rev caches topo.ReversePortAt for every output port: rev[p] is the
	// input port at neighbors[p] that our link lands on, or -1 where the
	// port is unconnected or unpaired. The transfer-commit and credit hot
	// paths index it instead of re-deriving the pairing per flit.
	rev []int32

	candBuf []routing.Candidate
	stats   Stats

	// Telemetry instrumentation, maintained by TickTimers (which already
	// visits every input VC each cycle, so this costs almost nothing):
	// cumulative blocked cycles keyed by VC index.
	blockedByVC []int64

	// onTimeout, when set via SetOnTimeout, observes every newly presumed
	// header (tracing, telemetry flight recorder). TickTimers buffers the
	// newly presumed packets in pendingTimeouts; FlushTimeouts drains them.
	onTimeout       func(*packet.Packet)
	pendingTimeouts []*packet.Packet
}

// NewWithState constructs a router for node as a view over the shared
// struct-of-arrays state st (built by NewState for the same topo and cfg).
// The caller wires neighbors with Connect before the first cycle. cfg must
// already be normalized. The network constructs one State and all of its
// routers over it, so the per-cycle scan phases sweep contiguous memory.
func NewWithState(node topology.Node, topo topology.Graph, cfg Config, alg routing.Algorithm, sel routing.Selection, rng *sim.RNG, st *State) *Router {
	deg := topo.Degree()
	ctopo, _ := topology.Coordinated(topo)
	r := &Router{
		node:        node,
		topo:        topo,
		ctopo:       ctopo,
		cfg:         cfg,
		alg:         alg,
		sel:         sel,
		rng:         rng,
		st:          st,
		deg:         deg,
		in0:         int(node) * st.stride,
		out0:        int(node) * st.outStr,
		db0:         int(node) * st.lanes,
		cx0:         int(node) * deg,
		sw0:         int(node) * (deg + 1),
		neighbors:   make([]*Router, deg),
		candBuf:     make([]routing.Candidate, 0, 4*deg*cfg.VCs),
		hamNextPort: -1,
		hamPrevPort: -1,
	}
	maxVCs := cfg.VCs
	if cfg.InjectionVCs > maxVCs {
		maxVCs = cfg.InjectionVCs
	}
	r.blockedByVC = make([]int64, maxVCs)
	r.rev = make([]int32, deg)
	for p := 0; p < deg; p++ {
		if q, ok := topo.ReversePortAt(node, p); ok {
			r.rev[p] = int32(q)
		} else {
			r.rev[p] = -1
		}
	}
	return r
}

// New constructs a standalone router for node with a freshly allocated State
// sized for topo. Tests and single-router tools use it; a network shares one
// State across all routers via NewState + NewWithState instead.
func New(node topology.Node, topo topology.Graph, cfg Config, alg routing.Algorithm, sel routing.Selection, rng *sim.RNG) *Router {
	return NewWithState(node, topo, cfg, alg, sel, rng, NewState(topo, cfg))
}

// EffectiveTimeout returns the router's current deadlock time-out: the
// configured T_out, or the self-tuned value under AdaptiveTimeout.
func (r *Router) EffectiveTimeout() sim.Cycle { return r.st.effTout[r.node] }

// ConnectHamiltonian wires the router into the recovery Hamiltonian path:
// the shared node-to-label table and the output ports toward the path's
// successor and predecessor (pass -1 at the ends). Required for concurrent
// recovery; the network calls it for every router.
func (r *Router) ConnectHamiltonian(labels []int, nextPort, prevPort int) {
	r.hamLabels = labels
	r.hamLabel = labels[r.node]
	r.hamNextPort = nextPort
	r.hamPrevPort = prevPort
}

// Connect wires the neighbor reached through the given output port. The
// network calls it for both directions of every link.
func (r *Router) Connect(port int, neighbor *Router) {
	r.neighbors[port] = neighbor
}

// Neighbor returns the router wired to the given output port (nil where no
// link exists). Analysis tools use it to follow wait-for relations across
// links.
func (r *Router) Neighbor(port int) *Router { return r.neighbors[port] }

// InjectionPort returns the input port index of the injection channel.
func (r *Router) InjectionPort() int { return r.deg }

// Algorithm returns the routing algorithm this router runs; analysis tools
// use it to recompute a blocked header's candidate set.
func (r *Router) Algorithm() routing.Algorithm { return r.alg }

// NodeID returns the router's node.
func (r *Router) NodeID() topology.Node { return r.node }

// Stats returns a copy of the router's event counters.
func (r *Router) Stats() Stats { return r.stats }

// SetOnTimeout installs the observer invoked for every header newly
// presumed deadlocked at this router (nil detaches). The network wires it
// when tracing or telemetry is attached; routers never call it otherwise.
func (r *Router) SetOnTimeout(fn func(*packet.Packet)) { r.onTimeout = fn }

// BlockedHeaders returns how many headers failed to advance during the most
// recent TickTimers pass (a live congestion gauge).
func (r *Router) BlockedHeaders() int { return int(r.st.lastBlocked[r.node]) }

// PresumedHeaders returns how many headers were in the presumed-deadlocked
// state during the most recent TickTimers pass.
func (r *Router) PresumedHeaders() int { return int(r.st.lastPresumed[r.node]) }

// BlockedCyclesVC returns the cumulative header-blocked cycles charged to
// the given VC index (summed over all input ports).
func (r *Router) BlockedCyclesVC(vc int) int64 {
	if vc < 0 || vc >= len(r.blockedByVC) {
		return 0
	}
	return r.blockedByVC[vc]
}

// --- routing.View -----------------------------------------------------------

// Node implements routing.View.
func (r *Router) Node() topology.Node { return r.node }

// Topo implements routing.View.
func (r *Router) Topo() topology.Graph { return r.topo }

// ReverseAt returns the input port at Neighbor(port) that this router's
// link through port lands on, or -1 where the port is unconnected or has
// no paired reverse channel. Wait-for-graph analysis and the invariant
// checker use it to follow flow control across arbitrary-graph links.
func (r *Router) ReverseAt(port int) int {
	if port < 0 || port >= len(r.rev) {
		return -1
	}
	return int(r.rev[port])
}

// VCs implements routing.View.
func (r *Router) VCs() int { return r.cfg.VCs }

// LinkExists implements routing.View.
func (r *Router) LinkExists(port int) bool {
	return port >= 0 && port < len(r.neighbors) && r.neighbors[port] != nil
}

// OutputVCFree implements routing.View: a VC is allocatable only when no
// packet owns it and the downstream buffer has fully drained (atomic VC
// reallocation, so packets never interleave inside one edge buffer).
func (r *Router) OutputVCFree(port, vc int) bool {
	i := r.outIdx(port, vc)
	return r.st.outOwner[i] == nil && int(r.st.outCredits[i]) == r.cfg.BufferDepth
}

// OccupantDimReversals implements routing.View.
func (r *Router) OccupantDimReversals(port, vc int) (int, bool) {
	o := r.st.outOwner[r.outIdx(port, vc)]
	if o == nil {
		return 0, false
	}
	return o.DimReversals, true
}

// FreeVCs implements routing.View.
func (r *Router) FreeVCs(port int) int {
	n := 0
	for vc := 0; vc < r.cfg.VCs; vc++ {
		if r.OutputVCFree(port, vc) {
			n++
		}
	}
	return n
}

var _ routing.View = (*Router)(nil)

// --- Injection interface (used by the network's NI model) -------------------

// InjectFlit offers the next flit of a packet to the injection input. It
// returns false if the injection channel cannot accept it this cycle: the
// flit's packet must already own an injection VC with buffer space, or — for
// a header — some injection VC must be idle.
func (r *Router) InjectFlit(fl packet.Flit, now sim.Cycle) bool {
	s := r.st
	base := r.inIdx(r.deg, 0)
	if fl.IsHeader() {
		for v := 0; v < s.injVCs; v++ {
			i := base + v
			if s.inPkt[i] == nil && s.inLen[i] == 0 {
				s.inPkt[i] = fl.Pkt
				s.inPush(i, fl)
				s.flitCount[r.node]++
				fl.Pkt.InjectedAt = now
				return true
			}
		}
		return false
	}
	for v := 0; v < s.injVCs; v++ {
		i := base + v
		if s.inPkt[i] == fl.Pkt && int(s.inLen[i]) < s.depth {
			s.inPush(i, fl)
			s.flitCount[r.node]++
			return true
		}
	}
	return false
}

// --- Introspection helpers (tests, wait-for-graph analysis) ------------------

// InputOwner returns the packet owning input VC (port, vc), if any.
func (r *Router) InputOwner(port, vc int) *packet.Packet { return r.st.inPkt[r.inIdx(port, vc)] }

// InputRoute returns the granted (route, outVC) of input VC (port, vc).
func (r *Router) InputRoute(port, vc int) (route, outVC int) {
	i := r.inIdx(port, vc)
	return int(r.st.inRoute[i]), int(r.st.inOutVC[i])
}

// InputTimer returns the deadlock-timer state of input VC (port, vc): the
// header's T_elapsed, whether it is presumed deadlocked, and whether a flit
// left this cycle. The differential conformance harness uses it to name the
// first divergent field between two lockstepped kernels.
func (r *Router) InputTimer(port, vc int) (waiting sim.Cycle, presumed, sent bool) {
	i := r.inIdx(port, vc)
	return r.st.inWaiting[i], r.st.inPresumed[i], r.st.inSent[i]
}

// InputOccupancy returns the number of buffered flits in input VC (port, vc).
func (r *Router) InputOccupancy(port, vc int) int { return int(r.st.inLen[r.inIdx(port, vc)]) }

// InputHead returns the head flit of input VC (port, vc); ok is false when
// the buffer is empty.
func (r *Router) InputHead(port, vc int) (packet.Flit, bool) {
	i := r.inIdx(port, vc)
	if r.st.inLen[i] == 0 {
		return packet.Flit{}, false
	}
	return r.st.inPeek(i), true
}

// OutputOwner returns the packet holding output VC (port, vc), if any.
func (r *Router) OutputOwner(port, vc int) *packet.Packet { return r.st.outOwner[r.outIdx(port, vc)] }

// Credits returns the credit count of output VC (port, vc).
func (r *Router) Credits(port, vc int) int { return int(r.st.outCredits[r.outIdx(port, vc)]) }

// DBLanes returns the number of Deadlock Buffer units (0 with recovery
// disabled, 1 for sequential recovery, 2 for concurrent recovery).
func (r *Router) DBLanes() int { return r.st.lanes }

// DBOccupancy returns the total number of flits across all Deadlock
// Buffer lanes.
func (r *Router) DBOccupancy() int {
	n := 0
	for lane := 0; lane < r.st.lanes; lane++ {
		n += int(r.st.dbLen[r.dbIdx(lane)])
	}
	return n
}

// DBOwner returns the packet currently threading the (first) Deadlock
// Buffer lane; use DBLaneOwner for a specific lane.
func (r *Router) DBOwner() *packet.Packet {
	if r.st.lanes == 0 {
		return nil
	}
	return r.st.dbPkt[r.db0]
}

// DBLaneOwner returns the packet threading the given Deadlock Buffer lane.
func (r *Router) DBLaneOwner(lane int) *packet.Packet { return r.st.dbPkt[r.dbIdx(lane)] }

// InputPorts returns the number of input ports including injection.
func (r *Router) InputPorts() int { return r.deg + 1 }

// InputVCCount returns the number of VCs on the given input port.
func (r *Router) InputVCCount(port int) int { return r.st.inVCCount(r.deg, port) }

// Quiescent reports whether the router holds no flits at all. O(1): backed
// by the maintained flit counter rather than a buffer walk.
func (r *Router) Quiescent() bool { return r.st.flitCount[r.node] == 0 }

// String identifies the router by coordinate (or node id on a
// coordinate-free graph) and algorithm for logs.
func (r *Router) String() string {
	if r.ctopo != nil {
		return fmt.Sprintf("router@%v(%s)", r.ctopo.Coord(r.node), r.alg.Name())
	}
	return fmt.Sprintf("router@%d(%s)", r.node, r.alg.Name())
}

// Disconnect severs the output link on the given port (fault injection).
// The network guarantees the link is idle when it calls this.
func (r *Router) Disconnect(port int) { r.neighbors[port] = nil }

// SetDBRouteTable installs a fault-aware next-hop table for the Deadlock
// Buffer lane: table[int(dst)*nodes + int(node)] is the output port toward
// dst at node over live links only. When set it replaces dimension-order
// DB routing (sequential recovery with failed links).
func (r *Router) SetDBRouteTable(table []int32) { r.dbTable = table }

// LinkBusy reports whether any traffic state rides the output link on port:
// an owned output VC, undrained downstream credits, or Deadlock Buffer
// traffic routed through it. Fault injection refuses busy links (dynamic
// mid-stream faults lose flits and are out of scope, as in the paper).
func (r *Router) LinkBusy(port int) bool {
	if r.neighbors[port] == nil {
		return false
	}
	s := r.st
	for v := 0; v < s.vcs; v++ {
		i := r.outIdx(port, v)
		if s.outOwner[i] != nil || int(s.outCredits[i]) != r.cfg.BufferDepth {
			return true
		}
	}
	for lane := 0; lane < s.lanes; lane++ {
		i := r.dbIdx(lane)
		if s.dbPkt[i] != nil && int(s.dbRoute[i]) == port {
			return true
		}
	}
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		if s.inPkt[i] != nil && int(s.inRoute[i]) == port {
			return true
		}
	}
	return false
}
