package router

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// State holds the hot per-cycle microarchitectural state of every router in
// one network as flat struct-of-arrays buffers indexed by (router, port, vc).
// The network owns one State and shares it among all of its routers; each
// Router is a view over its slice of the buffers (precomputed base offsets),
// so the public router API is unchanged while route compute, switch
// allocation and the deadlock-timer phase sweep contiguous memory instead of
// chasing per-router pointers. Routers are laid out consecutively, so the
// kernel's contiguous router shards (internal/network) partition every buffer
// into contiguous, cache-line-friendly ranges with no false sharing beyond
// single cache lines at shard boundaries.
//
// Layout (all slices are allocated once, at NewState, and never grow):
//
//	input VCs    stride = deg*VCs + InjectionVCs slots per router,
//	             port-major: slot l = p*VCs + v for network port p < deg,
//	             l = deg*VCs + v for the injection port. Global index of
//	             router r's slot l is r*stride + l. Per-slot fields live in
//	             parallel arrays (inPkt, inRoute, inOutVC, inDBLane,
//	             inWaiting, inPresumed, inSent); the fixed-capacity flit
//	             rings live in inFlits (depth flits per slot, contiguous)
//	             with ring cursors in inHead/inLen.
//	output VCs   deg*VCs slots per router (outOwner, outCredits).
//	DB lanes     lanes slots per router (dbPkt, dbRoute) with dbDepth-flit
//	             rings in dbFlits/dbHead/dbLen.
//	crossbar     deg packet-by-packet connections per router (cxInPort,
//	             cxInVC, cxDB, cxSaved, cxSavedPort, cxSavedVC).
//	per router   vcArbOff, swArbOff (deg+1 per router), flitCount, effTout,
//	             decayCount, lastBlocked, lastPresumed.
//
// Aliasing contract: a Router view may only touch slots inside its own base
// ranges, except through another Router's methods (transfer commit writes the
// receiving router's buffers via the receiver view, exactly as the old
// per-router structs did). The layout is a private representation: digests
// (AppendState), snapshots (EncodeState/DecodeState) and all introspection
// walk the same logical (port, vc) order as before, so they are
// layout-invariant by construction.
type State struct {
	nodes   int
	deg     int
	vcs     int // VCs per network port
	injVCs  int // VCs on the injection port
	depth   int // input VC buffer depth in flits
	lanes   int // Deadlock Buffer lanes per router (0, 1 or 2)
	dbDepth int // Deadlock Buffer depth in flits
	stride  int // input VC slots per router: deg*vcs + injVCs
	outStr  int // output VC slots per router: deg*vcs

	// Input VC state, nodes*stride slots.
	inPkt      []*packet.Packet
	inRoute    []int32 // granted output port, PortEject or PortUnrouted
	inOutVC    []int32 // granted output VC, VCDeadlockBuffer or VCUnrouted
	inDBLane   []int32 // recovery lane when inOutVC == VCDeadlockBuffer
	inWaiting  []sim.Cycle
	inPresumed []bool
	inSent     []bool
	inHead     []int32
	inLen      []int32
	inFlits    []packet.Flit // depth flits per slot

	// Output VC state, nodes*outStr slots.
	outOwner   []*packet.Packet
	outCredits []int32

	// Deadlock Buffer lanes, nodes*lanes slots.
	dbPkt   []*packet.Packet
	dbRoute []int32
	dbHead  []int32
	dbLen   []int32
	dbFlits []packet.Flit // dbDepth flits per slot

	// Packet-by-packet crossbar connections, nodes*deg slots.
	cxInPort    []int32
	cxInVC      []int32
	cxDB        []bool
	cxSaved     []bool
	cxSavedPort []int32
	cxSavedVC   []int32

	// Per-router scalars, nodes slots (swArbOff: nodes*(deg+1)).
	vcArbOff     []int32
	swArbOff     []int32
	flitCount    []int32
	effTout      []sim.Cycle
	decayCount   []int32
	lastBlocked  []int32
	lastPresumed []int32
}

// NewState allocates the shared struct-of-arrays buffers for every router of
// a network on topo under cfg. cfg must already be normalized. The network
// constructs one State and passes it to NewWithState for each router.
func NewState(topo topology.Graph, cfg Config) *State {
	nodes, deg := topo.Nodes(), topo.Degree()
	lanes := 0
	if cfg.DeadlockBufferDepth > 0 {
		lanes = 1
		if cfg.Recovery == RecoveryConcurrent {
			lanes = 2
		}
	}
	s := &State{
		nodes:   nodes,
		deg:     deg,
		vcs:     cfg.VCs,
		injVCs:  cfg.InjectionVCs,
		depth:   cfg.BufferDepth,
		lanes:   lanes,
		dbDepth: cfg.DeadlockBufferDepth,
		stride:  deg*cfg.VCs + cfg.InjectionVCs,
		outStr:  deg * cfg.VCs,
	}
	in := nodes * s.stride
	s.inPkt = make([]*packet.Packet, in)
	s.inRoute = make([]int32, in)
	s.inOutVC = make([]int32, in)
	s.inDBLane = make([]int32, in)
	s.inWaiting = make([]sim.Cycle, in)
	s.inPresumed = make([]bool, in)
	s.inSent = make([]bool, in)
	s.inHead = make([]int32, in)
	s.inLen = make([]int32, in)
	s.inFlits = make([]packet.Flit, in*s.depth)
	for i := range s.inRoute {
		s.inRoute[i] = PortUnrouted
		s.inOutVC[i] = VCUnrouted
	}
	out := nodes * s.outStr
	s.outOwner = make([]*packet.Packet, out)
	s.outCredits = make([]int32, out)
	for i := range s.outCredits {
		s.outCredits[i] = int32(cfg.BufferDepth)
	}
	db := nodes * lanes
	s.dbPkt = make([]*packet.Packet, db)
	s.dbRoute = make([]int32, db)
	s.dbHead = make([]int32, db)
	s.dbLen = make([]int32, db)
	s.dbFlits = make([]packet.Flit, db*s.dbDepth)
	for i := range s.dbRoute {
		s.dbRoute[i] = PortUnrouted
	}
	cx := nodes * deg
	s.cxInPort = make([]int32, cx)
	s.cxInVC = make([]int32, cx)
	s.cxDB = make([]bool, cx)
	s.cxSaved = make([]bool, cx)
	s.cxSavedPort = make([]int32, cx)
	s.cxSavedVC = make([]int32, cx)
	for i := range s.cxInPort {
		s.cxInPort[i] = connNone
	}
	s.vcArbOff = make([]int32, nodes)
	s.swArbOff = make([]int32, nodes*(deg+1))
	s.flitCount = make([]int32, nodes)
	s.effTout = make([]sim.Cycle, nodes)
	s.decayCount = make([]int32, nodes)
	s.lastBlocked = make([]int32, nodes)
	s.lastPresumed = make([]int32, nodes)
	for i := range s.effTout {
		s.effTout[i] = cfg.Timeout
	}
	return s
}

// --- Index helpers -----------------------------------------------------------

// inIdx returns the global input VC slot of (port, vc) at router r.
func (r *Router) inIdx(port, vc int) int {
	if port == r.deg {
		return r.in0 + r.deg*r.st.vcs + vc
	}
	return r.in0 + port*r.st.vcs + vc
}

// outIdx returns the global output VC slot of (port, vc) at router r.
func (r *Router) outIdx(port, vc int) int { return r.out0 + port*r.st.vcs + vc }

// dbIdx returns the global Deadlock Buffer lane slot of lane at router r.
func (r *Router) dbIdx(lane int) int { return r.db0 + lane }

// cxIdx returns the global crossbar connection slot of output q at router r.
func (r *Router) cxIdx(q int) int { return r.cx0 + q }

// swIdx returns the global switch-arbitration offset slot of output q
// (q == deg is the reception channel) at router r.
func (r *Router) swIdx(q int) int { return r.sw0 + q }

// portVCOf maps a router-local flat input slot l back to its (port, vc):
// the inverse of the port-major layout, O(1) where the old per-router
// slice-of-slices walk was O(ports).
func (r *Router) portVCOf(l int) (port, vc int) {
	if l < r.deg*r.st.vcs {
		return l / r.st.vcs, l % r.st.vcs
	}
	return r.deg, l - r.deg*r.st.vcs
}

// inVCCount returns the number of VCs on input port p.
func (s *State) inVCCount(deg, p int) int {
	if p == deg {
		return s.injVCs
	}
	return s.vcs
}

// --- Input VC flit rings -----------------------------------------------------

// inPush appends a flit to input VC ring i.
func (s *State) inPush(i int, fl packet.Flit) {
	if int(s.inLen[i]) == s.depth {
		panic("router: push to full fifo")
	}
	s.inFlits[i*s.depth+(int(s.inHead[i])+int(s.inLen[i]))%s.depth] = fl
	s.inLen[i]++
}

// inPeek returns the head flit of input VC ring i.
func (s *State) inPeek(i int) packet.Flit {
	if s.inLen[i] == 0 {
		panic("router: peek on empty fifo")
	}
	return s.inFlits[i*s.depth+int(s.inHead[i])]
}

// inAt returns the k-th buffered flit (0 == head) of input VC ring i.
func (s *State) inAt(i, k int) packet.Flit {
	if k < 0 || k >= int(s.inLen[i]) {
		panic("router: fifo index out of range")
	}
	return s.inFlits[i*s.depth+(int(s.inHead[i])+k)%s.depth]
}

// inPop removes and returns the head flit of input VC ring i, zeroing the
// vacated slot so no stale packet pointer outlives its buffered flit.
func (s *State) inPop(i int) packet.Flit {
	fl := s.inPeek(i)
	s.inFlits[i*s.depth+int(s.inHead[i])] = packet.Flit{}
	s.inHead[i] = int32((int(s.inHead[i]) + 1) % s.depth)
	s.inLen[i]--
	return fl
}

// --- Deadlock Buffer flit rings ----------------------------------------------

// dbPush appends a flit to Deadlock Buffer ring i.
func (s *State) dbPush(i int, fl packet.Flit) {
	if int(s.dbLen[i]) == s.dbDepth {
		panic("router: push to full fifo")
	}
	s.dbFlits[i*s.dbDepth+(int(s.dbHead[i])+int(s.dbLen[i]))%s.dbDepth] = fl
	s.dbLen[i]++
}

// dbPeek returns the head flit of Deadlock Buffer ring i.
func (s *State) dbPeek(i int) packet.Flit {
	if s.dbLen[i] == 0 {
		panic("router: peek on empty fifo")
	}
	return s.dbFlits[i*s.dbDepth+int(s.dbHead[i])]
}

// dbAt returns the k-th buffered flit (0 == head) of Deadlock Buffer ring i.
func (s *State) dbAt(i, k int) packet.Flit {
	if k < 0 || k >= int(s.dbLen[i]) {
		panic("router: fifo index out of range")
	}
	return s.dbFlits[i*s.dbDepth+(int(s.dbHead[i])+k)%s.dbDepth]
}

// dbPop removes and returns the head flit of Deadlock Buffer ring i.
func (s *State) dbPop(i int) packet.Flit {
	fl := s.dbPeek(i)
	s.dbFlits[i*s.dbDepth+int(s.dbHead[i])] = packet.Flit{}
	s.dbHead[i] = int32((int(s.dbHead[i]) + 1) % s.dbDepth)
	s.dbLen[i]--
	return fl
}

// --- Structural cross-checks -------------------------------------------------

// CheckState cross-checks the router's slice of the shared struct-of-arrays
// buffers against what the view API exposes: ring cursors in range, vacated
// ring slots zeroed (no stale packet pointers), route/VC grants within their
// sentinel-extended domains, credits within [0, depth], and the maintained
// flit counter consistent with the rings. The network's CheckInvariants calls
// it for every router, so a scan-path bug that corrupts the flat layout
// without (yet) changing observable behavior is still caught near its origin.
func (r *Router) CheckState() error {
	s := r.st
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		p, v := r.portVCOf(l)
		if h := int(s.inHead[i]); h < 0 || h >= s.depth {
			return fmt.Errorf("router %d input (%d,%d): ring head %d outside [0,%d)", r.node, p, v, h, s.depth)
		}
		if n := int(s.inLen[i]); n < 0 || n > s.depth {
			return fmt.Errorf("router %d input (%d,%d): ring length %d outside [0,%d]", r.node, p, v, n, s.depth)
		}
		for k := int(s.inLen[i]); k < s.depth; k++ {
			if fl := s.inFlits[i*s.depth+(int(s.inHead[i])+k)%s.depth]; fl.Pkt != nil {
				return fmt.Errorf("router %d input (%d,%d): vacated ring slot %d holds a stale flit of packet %d", r.node, p, v, k, fl.Pkt.ID)
			}
		}
		if rt := int(s.inRoute[i]); rt < PortEject || rt >= s.deg {
			return fmt.Errorf("router %d input (%d,%d): route %d outside [%d,%d)", r.node, p, v, rt, PortEject, s.deg)
		}
		if ov := int(s.inOutVC[i]); ov < VCDeadlockBuffer || ov >= s.vcs {
			return fmt.Errorf("router %d input (%d,%d): output VC grant %d outside [%d,%d)", r.node, p, v, ov, VCDeadlockBuffer, s.vcs)
		}
		if ln := int(s.inDBLane[i]); ln < 0 || (ln > 0 && ln >= s.lanes) {
			return fmt.Errorf("router %d input (%d,%d): DB lane %d outside the router's %d lanes", r.node, p, v, ln, s.lanes)
		}
	}
	for l := 0; l < s.outStr; l++ {
		i := r.out0 + l
		if c := int(s.outCredits[i]); c < 0 || c > s.depth {
			return fmt.Errorf("router %d output slot %d: credits %d outside [0,%d]", r.node, l, c, s.depth)
		}
	}
	total := 0
	for lane := 0; lane < s.lanes; lane++ {
		i := r.db0 + lane
		if h := int(s.dbHead[i]); h < 0 || h >= s.dbDepth {
			return fmt.Errorf("router %d DB lane %d: ring head %d outside [0,%d)", r.node, lane, h, s.dbDepth)
		}
		if n := int(s.dbLen[i]); n < 0 || n > s.dbDepth {
			return fmt.Errorf("router %d DB lane %d: ring length %d outside [0,%d]", r.node, lane, n, s.dbDepth)
		}
		for k := int(s.dbLen[i]); k < s.dbDepth; k++ {
			if fl := s.dbFlits[i*s.dbDepth+(int(s.dbHead[i])+k)%s.dbDepth]; fl.Pkt != nil {
				return fmt.Errorf("router %d DB lane %d: vacated ring slot %d holds a stale flit of packet %d", r.node, lane, k, fl.Pkt.ID)
			}
		}
		total += int(s.dbLen[i])
	}
	for l := 0; l < s.stride; l++ {
		total += int(s.inLen[r.in0+l])
	}
	if got := int(s.flitCount[r.node]); got != total {
		return fmt.Errorf("router %d: maintained flit count %d, rings hold %d", r.node, got, total)
	}
	for q := 0; q < s.deg; q++ {
		i := r.cx0 + q
		if ip := int(s.cxInPort[i]); ip < connNone || ip > s.deg {
			return fmt.Errorf("router %d crossbar %d: input port %d outside [-1,%d]", r.node, q, ip, s.deg)
		}
		if sp := int(s.cxSavedPort[i]); s.cxSaved[i] && (sp < 0 || sp > s.deg) {
			return fmt.Errorf("router %d crossbar %d: saved port %d outside [0,%d]", r.node, q, sp, s.deg)
		}
	}
	return nil
}
