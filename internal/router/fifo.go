package router

import "repro/internal/packet"

// fifo is a fixed-capacity flit queue backing one virtual-channel input
// buffer or the central Deadlock Buffer.
type fifo struct {
	items []packet.Flit
	head  int
	n     int
}

func newFIFO(capacity int) fifo {
	return fifo{items: make([]packet.Flit, capacity)}
}

func (f *fifo) Len() int    { return f.n }
func (f *fifo) Cap() int    { return len(f.items) }
func (f *fifo) Space() int  { return len(f.items) - f.n }
func (f *fifo) Empty() bool { return f.n == 0 }
func (f *fifo) Full() bool  { return f.n == len(f.items) }

func (f *fifo) Push(fl packet.Flit) {
	if f.Full() {
		panic("router: push to full fifo")
	}
	f.items[(f.head+f.n)%len(f.items)] = fl
	f.n++
}

// At returns the i-th buffered flit counting from the head (0 == Peek).
// State serialization and invariant checks walk buffers with it.
func (f *fifo) At(i int) packet.Flit {
	if i < 0 || i >= f.n {
		panic("router: fifo index out of range")
	}
	return f.items[(f.head+i)%len(f.items)]
}

func (f *fifo) Peek() packet.Flit {
	if f.Empty() {
		panic("router: peek on empty fifo")
	}
	return f.items[f.head]
}

func (f *fifo) Pop() packet.Flit {
	fl := f.Peek()
	f.items[f.head] = packet.Flit{}
	f.head = (f.head + 1) % len(f.items)
	f.n--
	return fl
}
