package router

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// readCycle decodes a sim.Cycle timestamp.
func readCycle(rd *snapshot.Reader) sim.Cycle { return sim.Cycle(rd.I64()) }

// EncodeState serializes the router's complete dynamic state — every field
// AppendState hashes, in the same order, plus the router's private RNG
// stream (which AppendState omits because it never influences a digest
// comparison between two live networks, but which a restored run needs to
// reproduce future selection draws). Packets are stored as IDs; the network
// owns the packet table and rewires pointers on decode. Like AppendState,
// the walk follows logical (port, vc) and ring order, so the stream is
// independent of the SoA layout and its ring head positions.
//
// EncodeState and DecodeState must be kept in lockstep with AppendState:
// any new field that can influence a future cycle must appear in all three.
func (r *Router) EncodeState(w *snapshot.Writer) {
	s := r.st
	putPkt := func(p *packet.Packet) {
		if p == nil {
			w.I64(-1)
			return
		}
		w.I64(int64(p.ID))
	}

	w.I64(int64(r.node))
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		putPkt(s.inPkt[i])
		w.Int(int(s.inRoute[i]))
		w.Int(int(s.inOutVC[i]))
		w.Int(int(s.inDBLane[i]))
		w.I64(int64(s.inWaiting[i]))
		w.Bool(s.inPresumed[i])
		w.Bool(s.inSent[i])
		w.Int(int(s.inLen[i]))
		for k := 0; k < int(s.inLen[i]); k++ {
			fl := s.inAt(i, k)
			putPkt(fl.Pkt)
			w.Int(fl.Seq)
		}
	}
	for l := 0; l < s.outStr; l++ {
		i := r.out0 + l
		putPkt(s.outOwner[i])
		w.Int(int(s.outCredits[i]))
	}
	for lane := 0; lane < s.lanes; lane++ {
		i := r.db0 + lane
		putPkt(s.dbPkt[i])
		w.Int(int(s.dbRoute[i]))
		w.Int(int(s.dbLen[i]))
		for k := 0; k < int(s.dbLen[i]); k++ {
			fl := s.dbAt(i, k)
			putPkt(fl.Pkt)
			w.Int(fl.Seq)
		}
	}
	for q := 0; q < r.deg; q++ {
		i := r.cx0 + q
		w.Int(int(s.cxInPort[i]))
		w.Int(int(s.cxInVC[i]))
		w.Bool(s.cxDB[i])
		w.Bool(s.cxSaved[i])
		w.Int(int(s.cxSavedPort[i]))
		w.Int(int(s.cxSavedVC[i]))
	}
	w.Int(int(s.vcArbOff[r.node]))
	for q := 0; q <= r.deg; q++ {
		w.Int(int(s.swArbOff[r.swIdx(q)]))
	}
	w.I64(int64(s.effTout[r.node]))
	w.Int(int(s.decayCount[r.node]))
	w.I64(r.stats.TimeoutEvents)
	w.I64(r.stats.FalseDetections)
	w.I64(r.stats.Recoveries)
	w.I64(r.stats.MisrouteHops)
	w.I64(r.stats.FlitsSwitched)
	w.I64(r.stats.FlitsEjected)
	w.I64(r.stats.DBFlitsCarried)
	w.I64(r.stats.Preemptions)
	w.I64(r.stats.BlockedCycles)
	for _, c := range r.blockedByVC {
		w.I64(c)
	}
	w.Int(int(s.lastBlocked[r.node]))
	w.Int(int(s.lastPresumed[r.node]))
	st := r.rng.State()
	for _, v := range st {
		w.U64(v)
	}
}

// DecodeState restores the router's dynamic state from a stream produced by
// EncodeState. resolve maps a packet ID to the shared *packet.Packet decoded
// by the network (nil for unknown IDs, which is a decoding error). The
// router must have been freshly constructed with the identical configuration
// the snapshot was taken under; structural dimensions (ports, VCs, buffer
// capacities) are validated against the stream, and every index and length
// is bounds-checked so corrupt input yields an error, never a panic.
// Restored rings are repacked from physical position 0 — the head position
// is a private representation detail with no logical meaning, so the repack
// is invisible to digests.
func (r *Router) DecodeState(rd *snapshot.Reader, resolve func(id int64) *packet.Packet) error {
	s := r.st
	getPkt := func() *packet.Packet {
		id := rd.I64()
		if rd.Err() != nil || id == -1 {
			return nil
		}
		p := resolve(id)
		if p == nil {
			rd.Fail("snapshot: router %d references unknown packet %d", r.node, id)
		}
		return p
	}
	// getInFifo/getDBFifo drain ring i (zeroing its slots) and refill it from
	// the stream.
	getInFifo := func(i int) {
		for s.inLen[i] > 0 {
			s.inPop(i)
		}
		s.inHead[i] = 0
		n := rd.Len(s.depth)
		for k := 0; k < n; k++ {
			p := getPkt()
			seq := rd.Int()
			if rd.Err() != nil {
				return
			}
			if p == nil {
				rd.Fail("snapshot: router %d has a buffered flit with no packet", r.node)
				return
			}
			if seq < 0 || seq >= p.Length {
				rd.Fail("snapshot: router %d flit seq %d outside packet length %d", r.node, seq, p.Length)
				return
			}
			s.inPush(i, packet.Flit{Pkt: p, Seq: seq})
		}
	}
	getDBFifo := func(i int) {
		for s.dbLen[i] > 0 {
			s.dbPop(i)
		}
		s.dbHead[i] = 0
		n := rd.Len(s.dbDepth)
		for k := 0; k < n; k++ {
			p := getPkt()
			seq := rd.Int()
			if rd.Err() != nil {
				return
			}
			if p == nil {
				rd.Fail("snapshot: router %d has a buffered flit with no packet", r.node)
				return
			}
			if seq < 0 || seq >= p.Length {
				rd.Fail("snapshot: router %d flit seq %d outside packet length %d", r.node, seq, p.Length)
				return
			}
			s.dbPush(i, packet.Flit{Pkt: p, Seq: seq})
		}
	}
	checkPort := func(v int, what string) int {
		if rd.Err() == nil && (v < PortEject || v >= r.deg) {
			rd.Fail("snapshot: router %d %s %d out of range", r.node, what, v)
		}
		return v
	}

	rd.Expect(int64(r.node), "router node")
	for l := 0; l < s.stride; l++ {
		i := r.in0 + l
		s.inPkt[i] = getPkt()
		s.inRoute[i] = int32(checkPort(rd.Int(), "input route"))
		outVC := rd.Int()
		if rd.Err() == nil && (outVC < VCDeadlockBuffer || outVC >= r.cfg.VCs) {
			rd.Fail("snapshot: router %d output VC %d out of range", r.node, outVC)
		}
		s.inOutVC[i] = int32(outVC)
		dbLane := rd.Int()
		if rd.Err() == nil && (dbLane < 0 || (dbLane > 0 && dbLane >= s.lanes)) {
			rd.Fail("snapshot: router %d DB lane %d out of range", r.node, dbLane)
		}
		s.inDBLane[i] = int32(dbLane)
		s.inWaiting[i] = readCycle(rd)
		s.inPresumed[i] = rd.Bool()
		s.inSent[i] = rd.Bool()
		getInFifo(i)
		if err := rd.Err(); err != nil {
			return err
		}
	}
	for l := 0; l < s.outStr; l++ {
		i := r.out0 + l
		s.outOwner[i] = getPkt()
		credits := rd.Int()
		if rd.Err() == nil && (credits < 0 || credits > r.cfg.BufferDepth) {
			rd.Fail("snapshot: router %d credits %d outside [0, %d]", r.node, credits, r.cfg.BufferDepth)
		}
		s.outCredits[i] = int32(credits)
	}
	for lane := 0; lane < s.lanes; lane++ {
		i := r.db0 + lane
		s.dbPkt[i] = getPkt()
		s.dbRoute[i] = int32(checkPort(rd.Int(), "DB route"))
		getDBFifo(i)
		if err := rd.Err(); err != nil {
			return err
		}
	}
	for q := 0; q < r.deg; q++ {
		i := r.cx0 + q
		inPort := rd.Int()
		if rd.Err() == nil && (inPort < connNone || inPort > r.deg) {
			rd.Fail("snapshot: router %d crossbar input port %d out of range", r.node, inPort)
		}
		s.cxInPort[i] = int32(inPort)
		s.cxInVC[i] = int32(rd.Int())
		s.cxDB[i] = rd.Bool()
		s.cxSaved[i] = rd.Bool()
		savedPort := rd.Int()
		if rd.Err() == nil && (savedPort < connNone || savedPort > r.deg) {
			rd.Fail("snapshot: router %d saved crossbar port %d out of range", r.node, savedPort)
		}
		s.cxSavedPort[i] = int32(savedPort)
		s.cxSavedVC[i] = int32(rd.Int())
	}
	vcOff := rd.Int()
	if rd.Err() == nil && (vcOff < 0 || vcOff >= s.stride) {
		rd.Fail("snapshot: router %d VC arbitration offset %d out of range", r.node, vcOff)
	}
	s.vcArbOff[r.node] = int32(vcOff)
	for q := 0; q <= r.deg; q++ {
		off := rd.Int()
		if rd.Err() == nil && (off < 0 || off >= s.stride) {
			rd.Fail("snapshot: router %d switch arbitration offset %d out of range", r.node, off)
		}
		s.swArbOff[r.swIdx(q)] = int32(off)
	}
	s.effTout[r.node] = readCycle(rd)
	s.decayCount[r.node] = int32(rd.Int())
	r.stats.TimeoutEvents = rd.I64()
	r.stats.FalseDetections = rd.I64()
	r.stats.Recoveries = rd.I64()
	r.stats.MisrouteHops = rd.I64()
	r.stats.FlitsSwitched = rd.I64()
	r.stats.FlitsEjected = rd.I64()
	r.stats.DBFlitsCarried = rd.I64()
	r.stats.Preemptions = rd.I64()
	r.stats.BlockedCycles = rd.I64()
	for i := range r.blockedByVC {
		r.blockedByVC[i] = rd.I64()
	}
	s.lastBlocked[r.node] = int32(rd.Int())
	s.lastPresumed[r.node] = int32(rd.Int())
	var st [4]uint64
	for i := range st {
		st[i] = rd.U64()
	}
	if err := rd.Err(); err != nil {
		return err
	}
	r.rng.SetState(st)
	r.pendingTimeouts = r.pendingTimeouts[:0]
	// Rebuild the derived flit counter from the restored buffers; it is not
	// serialized (the snapshot format predates it, and it is derivable).
	total := int32(0)
	for l := 0; l < s.stride; l++ {
		total += s.inLen[r.in0+l]
	}
	for lane := 0; lane < s.lanes; lane++ {
		total += s.dbLen[r.db0+lane]
	}
	s.flitCount[r.node] = total
	return nil
}
