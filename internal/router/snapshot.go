package router

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// readCycle decodes a sim.Cycle timestamp.
func readCycle(rd *snapshot.Reader) sim.Cycle { return sim.Cycle(rd.I64()) }

// EncodeState serializes the router's complete dynamic state — every field
// AppendState hashes, in the same order, plus the router's private RNG
// stream (which AppendState omits because it never influences a digest
// comparison between two live networks, but which a restored run needs to
// reproduce future selection draws). Packets are stored as IDs; the network
// owns the packet table and rewires pointers on decode.
//
// EncodeState and DecodeState must be kept in lockstep with AppendState:
// any new field that can influence a future cycle must appear in all three.
func (r *Router) EncodeState(w *snapshot.Writer) {
	putPkt := func(p *packet.Packet) {
		if p == nil {
			w.I64(-1)
			return
		}
		w.I64(int64(p.ID))
	}
	putFifo := func(f *fifo) {
		w.Int(f.Len())
		for i := 0; i < f.Len(); i++ {
			fl := f.At(i)
			putPkt(fl.Pkt)
			w.Int(fl.Seq)
		}
	}

	w.I64(int64(r.node))
	for p := range r.inputs {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			putPkt(ivc.pkt)
			w.Int(ivc.route)
			w.Int(ivc.outVC)
			w.Int(ivc.dbLane)
			w.I64(int64(ivc.waiting))
			w.Bool(ivc.presumed)
			w.Bool(ivc.sent)
			putFifo(&ivc.buf)
		}
	}
	for q := range r.outputs {
		for v := range r.outputs[q] {
			o := &r.outputs[q][v]
			putPkt(o.owner)
			w.Int(o.credits)
		}
	}
	for lane := range r.dbs {
		db := &r.dbs[lane]
		putPkt(db.pkt)
		w.Int(db.route)
		putFifo(&db.buf)
	}
	for q := range r.conn {
		c := &r.conn[q]
		w.Int(c.inPort)
		w.Int(c.inVC)
		w.Bool(c.db)
		w.Bool(c.saved)
		w.Int(c.savedPort)
		w.Int(c.savedVC)
	}
	w.Int(r.vcArbOffset)
	for _, off := range r.swArbOffset {
		w.Int(off)
	}
	w.I64(int64(r.effTout))
	w.Int(r.decayCount)
	w.I64(r.stats.TimeoutEvents)
	w.I64(r.stats.FalseDetections)
	w.I64(r.stats.Recoveries)
	w.I64(r.stats.MisrouteHops)
	w.I64(r.stats.FlitsSwitched)
	w.I64(r.stats.FlitsEjected)
	w.I64(r.stats.DBFlitsCarried)
	w.I64(r.stats.Preemptions)
	w.I64(r.stats.BlockedCycles)
	for _, c := range r.blockedByVC {
		w.I64(c)
	}
	w.Int(r.lastBlocked)
	w.Int(r.lastPresumed)
	st := r.rng.State()
	for _, s := range st {
		w.U64(s)
	}
}

// DecodeState restores the router's dynamic state from a stream produced by
// EncodeState. resolve maps a packet ID to the shared *packet.Packet decoded
// by the network (nil for unknown IDs, which is a decoding error). The
// router must have been freshly constructed with the identical configuration
// the snapshot was taken under; structural dimensions (ports, VCs, buffer
// capacities) are validated against the stream, and every index and length
// is bounds-checked so corrupt input yields an error, never a panic.
func (r *Router) DecodeState(rd *snapshot.Reader, resolve func(id int64) *packet.Packet) error {
	getPkt := func() *packet.Packet {
		id := rd.I64()
		if rd.Err() != nil || id == -1 {
			return nil
		}
		p := resolve(id)
		if p == nil {
			rd.Fail("snapshot: router %d references unknown packet %d", r.node, id)
		}
		return p
	}
	getFifo := func(f *fifo) {
		for !f.Empty() {
			f.Pop()
		}
		n := rd.Len(f.Cap())
		for i := 0; i < n; i++ {
			p := getPkt()
			seq := rd.Int()
			if rd.Err() != nil {
				return
			}
			if p == nil {
				rd.Fail("snapshot: router %d has a buffered flit with no packet", r.node)
				return
			}
			if seq < 0 || seq >= p.Length {
				rd.Fail("snapshot: router %d flit seq %d outside packet length %d", r.node, seq, p.Length)
				return
			}
			f.Push(packet.Flit{Pkt: p, Seq: seq})
		}
	}
	checkPort := func(v int, what string) int {
		if rd.Err() == nil && (v < PortEject || v >= r.topo.Degree()) {
			rd.Fail("snapshot: router %d %s %d out of range", r.node, what, v)
		}
		return v
	}

	rd.Expect(int64(r.node), "router node")
	for p := range r.inputs {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			ivc.pkt = getPkt()
			ivc.route = checkPort(rd.Int(), "input route")
			ivc.outVC = rd.Int()
			if rd.Err() == nil && (ivc.outVC < VCDeadlockBuffer || ivc.outVC >= r.cfg.VCs) {
				rd.Fail("snapshot: router %d output VC %d out of range", r.node, ivc.outVC)
			}
			ivc.dbLane = rd.Int()
			if rd.Err() == nil && (ivc.dbLane < 0 || (ivc.dbLane > 0 && ivc.dbLane >= len(r.dbs))) {
				rd.Fail("snapshot: router %d DB lane %d out of range", r.node, ivc.dbLane)
			}
			ivc.waiting = readCycle(rd)
			ivc.presumed = rd.Bool()
			ivc.sent = rd.Bool()
			getFifo(&ivc.buf)
			if err := rd.Err(); err != nil {
				return err
			}
		}
	}
	for q := range r.outputs {
		for v := range r.outputs[q] {
			o := &r.outputs[q][v]
			o.owner = getPkt()
			o.credits = rd.Int()
			if rd.Err() == nil && (o.credits < 0 || o.credits > r.cfg.BufferDepth) {
				rd.Fail("snapshot: router %d credits %d outside [0, %d]", r.node, o.credits, r.cfg.BufferDepth)
			}
		}
	}
	for lane := range r.dbs {
		db := &r.dbs[lane]
		db.pkt = getPkt()
		db.route = checkPort(rd.Int(), "DB route")
		getFifo(&db.buf)
		if err := rd.Err(); err != nil {
			return err
		}
	}
	for q := range r.conn {
		c := &r.conn[q]
		c.inPort = rd.Int()
		if rd.Err() == nil && (c.inPort < connNone || c.inPort >= len(r.inputs)) {
			rd.Fail("snapshot: router %d crossbar input port %d out of range", r.node, c.inPort)
		}
		c.inVC = rd.Int()
		c.db = rd.Bool()
		c.saved = rd.Bool()
		c.savedPort = rd.Int()
		if rd.Err() == nil && (c.savedPort < connNone || c.savedPort >= len(r.inputs)) {
			rd.Fail("snapshot: router %d saved crossbar port %d out of range", r.node, c.savedPort)
		}
		c.savedVC = rd.Int()
	}
	r.vcArbOffset = rd.Int()
	for i := range r.swArbOffset {
		r.swArbOffset[i] = rd.Int()
	}
	r.effTout = readCycle(rd)
	r.decayCount = rd.Int()
	r.stats.TimeoutEvents = rd.I64()
	r.stats.FalseDetections = rd.I64()
	r.stats.Recoveries = rd.I64()
	r.stats.MisrouteHops = rd.I64()
	r.stats.FlitsSwitched = rd.I64()
	r.stats.FlitsEjected = rd.I64()
	r.stats.DBFlitsCarried = rd.I64()
	r.stats.Preemptions = rd.I64()
	r.stats.BlockedCycles = rd.I64()
	for i := range r.blockedByVC {
		r.blockedByVC[i] = rd.I64()
	}
	r.lastBlocked = rd.Int()
	r.lastPresumed = rd.Int()
	var st [4]uint64
	for i := range st {
		st[i] = rd.U64()
	}
	if err := rd.Err(); err != nil {
		return err
	}
	r.rng.SetState(st)
	r.pendingTimeouts = r.pendingTimeouts[:0]
	// Rebuild the derived flit counter from the restored buffers; it is not
	// serialized (the snapshot format predates it, and it is derivable).
	r.flitCount = 0
	for p := range r.inputs {
		for v := range r.inputs[p] {
			r.flitCount += r.inputs[p][v].buf.Len()
		}
	}
	for i := range r.dbs {
		r.flitCount += r.dbs[i].buf.Len()
	}
	return nil
}
