// Package core makes the DISHA paper's deadlock theory executable. It
// provides:
//
//   - channel dependency graphs (Definitions 5-8 of the paper's appendix)
//     with cycle detection, used to verify that the avoidance baselines'
//     deterministic/escape subfunctions are acyclic while Disha's true fully
//     adaptive routing is cyclic — the premise that makes recovery necessary;
//   - the Deadlock Buffer lane checks behind Lemma 1 (the recovery routing
//     subfunction is connected) and Assumption 3 (it is minimal);
//   - a runtime wait-for-graph analyzer that finds true deadlocked
//     configurations (Definition 10) in a live network, used to characterize
//     how often presumed deadlocks are real (Figure 3a's ground truth).
package core

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Channel identifies one unidirectional virtual channel: the output channel
// of node From through Port, class/virtual-channel index VC.
type Channel struct {
	From topology.Node
	Port int
	VC   int
}

func (c Channel) String() string {
	return fmt.Sprintf("ch(%d:p%d:v%d)", c.From, c.Port, c.VC)
}

// Graph is a channel dependency graph (Definition 7): vertices are channels
// and arcs are direct dependencies — c_j can be used immediately after c_i
// by some packet.
type Graph struct {
	adj map[Channel]map[Channel]struct{}
}

// NewGraph returns an empty dependency graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[Channel]map[Channel]struct{})}
}

// AddChannel ensures a vertex exists (used for channels with no outgoing
// dependencies).
func (g *Graph) AddChannel(c Channel) {
	if _, ok := g.adj[c]; !ok {
		g.adj[c] = make(map[Channel]struct{})
	}
}

// AddDep records a direct dependency from a to b.
func (g *Graph) AddDep(a, b Channel) {
	g.AddChannel(a)
	g.AddChannel(b)
	g.adj[a][b] = struct{}{}
}

// Channels returns the number of vertices.
func (g *Graph) Channels() int { return len(g.adj) }

// Deps returns the number of arcs.
func (g *Graph) Deps() int {
	n := 0
	for _, out := range g.adj {
		n += len(out)
	}
	return n
}

// HasDep reports whether the dependency a -> b exists.
func (g *Graph) HasDep(a, b Channel) bool {
	out, ok := g.adj[a]
	if !ok {
		return false
	}
	_, ok = out[b]
	return ok
}

// FindCycle returns a witness cycle of channels (first element repeated at
// the end) or nil if the graph is acyclic. Detection is iterative DFS with
// tricolor marking, so it handles graphs of any depth.
func (g *Graph) FindCycle() []Channel {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Channel]int, len(g.adj))
	parent := make(map[Channel]Channel, len(g.adj))

	for start := range g.adj {
		if color[start] != white {
			continue
		}
		type frame struct {
			ch   Channel
			succ []Channel
			idx  int
		}
		stack := []frame{{ch: start, succ: g.successors(start)}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx >= len(f.succ) {
				color[f.ch] = black
				stack = stack[:len(stack)-1]
				continue
			}
			next := f.succ[f.idx]
			f.idx++
			switch color[next] {
			case white:
				color[next] = gray
				parent[next] = f.ch
				stack = append(stack, frame{ch: next, succ: g.successors(next)})
			case gray:
				// Found a back edge f.ch -> next: reconstruct the cycle.
				cycle := []Channel{next}
				for cur := f.ch; cur != next; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				// Reverse into forward order and close the loop.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return append(cycle, cycle[0])
			}
		}
	}
	return nil
}

func (g *Graph) successors(c Channel) []Channel {
	out := make([]Channel, 0, len(g.adj[c]))
	for s := range g.adj[c] {
		out = append(out, s)
	}
	// Deterministic order for reproducible witnesses.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b Channel) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.Port != b.Port {
		return a.Port < b.Port
	}
	return a.VC < b.VC
}

// Acyclic reports whether the graph has no dependency cycles.
func (g *Graph) Acyclic() bool { return g.FindCycle() == nil }

// --- Builders -----------------------------------------------------------------

// BuildDORCDG constructs the exact channel dependency graph of dimension-
// order routing by walking the unique DOR path of every (src, dst) pair and
// recording consecutive channel pairs. With datelines enabled the torus
// dateline VC discipline is modeled as two channel classes per link (class 1
// after the packet crosses the dimension's dateline), which is the
// construction that removes the wraparound ring cycles; without datelines
// all traffic shares class 0, reproducing the classic result that plain DOR
// deadlocks on a torus.
func BuildDORCDG(topo topology.Topology, datelines bool) *Graph {
	g := NewGraph()
	for s := 0; s < topo.Nodes(); s++ {
		for d := 0; d < topo.Nodes(); d++ {
			if s == d {
				continue
			}
			walkDOR(topo, topology.Node(s), topology.Node(d), datelines, g)
		}
	}
	return g
}

func walkDOR(topo topology.Topology, src, dst topology.Node, datelines bool, g *Graph) {
	cur := src
	var crossed uint64
	have := false
	var prev Channel
	for cur != dst {
		port, ok := routing.DORPort(topo, cur, dst)
		if !ok {
			return
		}
		class := 0
		if datelines && crossed&(1<<uint(topology.PortDim(port))) != 0 {
			class = 1
		}
		ch := Channel{From: cur, Port: port, VC: class}
		g.AddChannel(ch)
		if have {
			g.AddDep(prev, ch)
		}
		if topo.CrossesDateline(cur, port) {
			crossed |= 1 << uint(topology.PortDim(port))
		}
		prev, have = ch, true
		next, ok := topo.Neighbor(cur, port)
		if !ok {
			return
		}
		cur = next
	}
}

// BuildMinimalAdaptiveCDG constructs the channel dependency graph of true
// fully adaptive minimal routing (Disha with M=0). Because every virtual
// channel is available to every packet with no classes or ordering, VCs are
// collapsed to a single class: a dependency c1 -> c2 with c1 = (m -> n) and
// c2 = (n -> o) exists iff some destination makes both hops profitable.
func BuildMinimalAdaptiveCDG(topo topology.Topology) *Graph {
	g := NewGraph()
	for m := 0; m < topo.Nodes(); m++ {
		for p1 := 0; p1 < topo.Degree(); p1++ {
			n, ok := topo.Neighbor(topology.Node(m), p1)
			if !ok {
				continue
			}
			c1 := Channel{From: topology.Node(m), Port: p1}
			g.AddChannel(c1)
			for p2 := 0; p2 < topo.Degree(); p2++ {
				o, ok := topo.Neighbor(n, p2)
				if !ok {
					continue
				}
				if dependsMinimal(topo, topology.Node(m), n, o) {
					g.AddDep(c1, Channel{From: n, Port: p2})
				}
			}
		}
	}
	return g
}

// dependsMinimal reports whether some destination makes m->n->o a pair of
// consecutive profitable hops.
func dependsMinimal(topo topology.Topology, m, n, o topology.Node) bool {
	for d := 0; d < topo.Nodes(); d++ {
		dst := topology.Node(d)
		if topo.Distance(n, dst) == topo.Distance(m, dst)-1 &&
			topo.Distance(o, dst) == topo.Distance(n, dst)-1 {
			return true
		}
	}
	return false
}

// --- Deadlock Buffer lane checks ----------------------------------------------

// VerifyDBLaneConnected checks Lemma 1 and Assumption 3 constructively: for
// every (src, dst) pair the Deadlock Buffer lane's dimension-order routing
// reaches dst in exactly Distance(src, dst) hops (connected and minimal).
func VerifyDBLaneConnected(topo topology.Topology) error {
	for s := 0; s < topo.Nodes(); s++ {
		for d := 0; d < topo.Nodes(); d++ {
			src, dst := topology.Node(s), topology.Node(d)
			cur := src
			steps := 0
			want := topo.Distance(src, dst)
			for cur != dst {
				port, ok := routing.DORPort(topo, cur, dst)
				if !ok {
					return fmt.Errorf("core: DB lane stuck at %d en route %d->%d", cur, src, dst)
				}
				next, ok := topo.Neighbor(cur, port)
				if !ok {
					return fmt.Errorf("core: DB lane needs missing link at %d port %d (%d->%d)", cur, port, src, dst)
				}
				cur = next
				steps++
				if steps > want {
					return fmt.Errorf("core: DB lane non-minimal for %d->%d (%d > %d hops)", src, dst, steps, want)
				}
			}
			if steps != want {
				return fmt.Errorf("core: DB lane took %d hops for %d->%d, distance %d", steps, src, dst, want)
			}
		}
	}
	return nil
}
