package core

import (
	"repro/internal/packet"
	"repro/internal/router"
)

// BlockedHeader describes one header that cannot advance this cycle: every
// output virtual channel its routing function supplies is held by another
// packet.
type BlockedHeader struct {
	Router *router.Router
	Port   int
	VC     int
	Pkt    *packet.Packet
	// WaitsOn lists the distinct packets holding the candidate output VCs.
	WaitsOn []*packet.Packet
}

// WFGResult is a snapshot analysis of a live network's packet wait-for
// relations.
type WFGResult struct {
	// Blocked holds every header with no free candidate this cycle.
	Blocked []BlockedHeader
	// Deadlocked holds the subset of blocked headers that can never
	// advance: every candidate channel is held by a packet that is itself
	// permanently blocked (a true deadlocked configuration per Definition
	// 10). Empty for deadlock-free routing algorithms.
	Deadlocked []BlockedHeader
}

// TrueDeadlock reports whether the snapshot contains a real deadlocked
// configuration.
func (w WFGResult) TrueDeadlock() bool { return len(w.Deadlocked) > 0 }

// DeadlockedIDs returns the deadlocked packets' IDs as a lookup set (nil
// when there is no deadlock — safe to index). Consumers label recovery
// episodes and snapshot WFG nodes with it.
func (w WFGResult) DeadlockedIDs() map[int64]bool {
	if len(w.Deadlocked) == 0 {
		return nil
	}
	ids := make(map[int64]bool, len(w.Deadlocked))
	for _, bh := range w.Deadlocked {
		ids[int64(bh.Pkt.ID)] = true
	}
	return ids
}

// AnalyzeWFG inspects the routers' current state and classifies blocked
// headers. A header can eventually advance if any candidate output VC is
// free or draining, or is held by a packet that can itself advance (its
// wormhole tail will eventually release the channel). The fixpoint of that
// relation leaves exactly the packets of deadlocked configurations.
//
// Packets already on the Deadlock Buffer lane are excluded: the recovery
// theorem guarantees their progress. Headers still waiting at the injection
// port hold no network channels, so they can be victims but never members
// of a cycle; they are classified like any other blocked header.
func AnalyzeWFG(routers []*router.Router) WFGResult {
	var res WFGResult
	blockedPkts := make(map[*packet.Packet]*BlockedHeader)

	for _, r := range routers {
		for p := 0; p < r.InputPorts(); p++ {
			for v := 0; v < r.InputVCCount(p); v++ {
				head, ok := r.InputHead(p, v)
				if !ok || !head.IsHeader() {
					continue
				}
				route, _ := r.InputRoute(p, v)
				if route != router.PortUnrouted {
					continue // granted, ejecting, or on the DB lane: will advance
				}
				pkt := head.Pkt
				if pkt.OnDB {
					continue
				}
				if pkt.Dst == r.NodeID() {
					// At the destination: the reception channel always
					// drains, so this header can always advance.
					continue
				}
				cands := r.Algorithm().Route(r, pkt, nil)
				free := false
				waitSet := make(map[*packet.Packet]struct{})
				for _, c := range cands {
					if !r.LinkExists(c.Port) {
						continue
					}
					if r.OutputVCFree(c.Port, c.VC) {
						free = true
						break
					}
					if owner := r.OutputOwner(c.Port, c.VC); owner != nil {
						waitSet[owner] = struct{}{}
						continue
					}
					// Owner released but the downstream buffer has not
					// drained (atomic VC reallocation): the real blocker is
					// the packet whose flits still occupy that buffer —
					// with single-flit packets this is the common case.
					nb := r.Neighbor(c.Port)
					inPort := r.ReverseAt(c.Port)
					if occupant := nb.InputOwner(inPort, c.VC); occupant != nil {
						waitSet[occupant] = struct{}{}
					} else {
						// Genuinely draining: will become free without help.
						free = true
						break
					}
				}
				if free {
					continue
				}
				bh := BlockedHeader{Router: r, Port: p, VC: v, Pkt: pkt}
				for w := range waitSet {
					bh.WaitsOn = append(bh.WaitsOn, w)
				}
				res.Blocked = append(res.Blocked, bh)
			}
		}
	}
	for i := range res.Blocked {
		blockedPkts[res.Blocked[i].Pkt] = &res.Blocked[i]
	}

	// Fixpoint: a blocked packet can advance if any packet it waits on is
	// not permanently blocked. Start by assuming every blocked packet is
	// stuck, then release those waiting on a non-blocked (hence moving)
	// packet, and propagate.
	canAdvance := make(map[*packet.Packet]bool)
	changed := true
	for changed {
		changed = false
		for _, bh := range res.Blocked {
			if canAdvance[bh.Pkt] {
				continue
			}
			for _, w := range bh.WaitsOn {
				if _, isBlocked := blockedPkts[w]; !isBlocked || canAdvance[w] || w.OnDB {
					canAdvance[bh.Pkt] = true
					changed = true
					break
				}
			}
		}
	}
	for _, bh := range res.Blocked {
		if !canAdvance[bh.Pkt] {
			res.Deadlocked = append(res.Deadlocked, bh)
		}
	}
	return res
}
