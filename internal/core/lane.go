package core

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/topology"
)

// LaneRouting is a deterministic routing subfunction on an arbitrary
// digraph: the single next-hop output port a recovery-lane flit at cur
// takes toward dst, or ok=false when the subfunction supplies no hop.
// Generalizing the Deadlock Buffer lane's dimension-order routing to this
// shape is what lets the Lemma 1 / Mendlovic checks below run on any
// topology.Graph, not just cubes.
type LaneRouting func(cur, dst topology.Node) (port int, ok bool)

// DORLane adapts the cube Deadlock Buffer lane's dimension-order routing
// to the LaneRouting shape.
func DORLane(topo topology.Topology) LaneRouting {
	return func(cur, dst topology.Node) (int, bool) {
		return routing.DORPort(topo, cur, dst)
	}
}

// BFSLaneTable builds a per-destination next-hop table for g by reverse
// breadth-first search from every destination over paired links: entry
// [dst*Nodes+cur] is the output port a lane flit at cur takes toward dst
// (-1 at cur == dst or when dst is unreachable). Ports are scanned in
// increasing order, so the table is deterministic. This is the same
// construction internal/network uses to rebuild the Deadlock Buffer
// routing table after a reconfiguration, lifted to construction time for
// topologies without cube coordinates.
func BFSLaneTable(g topology.Graph) []int32 {
	nodes, deg := g.Nodes(), g.Degree()
	table := make([]int32, nodes*nodes)
	for i := range table {
		table[i] = -1
	}
	queue := make([]topology.Node, 0, nodes)
	for d := 0; d < nodes; d++ {
		dst := topology.Node(d)
		seen := make([]bool, nodes)
		seen[dst] = true
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			// A neighbor u one hop "behind" v reaches dst through the port
			// whose link lands on v.
			for p := 0; p < deg; p++ {
				nb, ok := g.Neighbor(v, p)
				if !ok {
					continue
				}
				rev, ok := g.ReversePortAt(v, p)
				if !ok || seen[nb] {
					continue
				}
				seen[nb] = true
				table[d*nodes+int(nb)] = int32(rev)
				queue = append(queue, nb)
			}
		}
	}
	return table
}

// TableLane wraps a BFSLaneTable-shaped per-destination next-hop table as
// a LaneRouting function.
func TableLane(g topology.Graph, table []int32) LaneRouting {
	nodes := g.Nodes()
	return func(cur, dst topology.Node) (int, bool) {
		p := table[int(dst)*nodes+int(cur)]
		if p < 0 {
			return 0, false
		}
		return int(p), true
	}
}

// VerifyLaneConnected is the generalized Lemma 1 check: the routing
// subfunction next delivers every (src, dst) pair — from any node, the
// declared lane reaches any destination. This is the whole deadlock-
// freedom requirement for a Token-serialized recovery lane (at most one
// packet occupies the lane at a time, so no cyclic wait can form on it);
// concurrent use additionally needs the acyclicity half of
// VerifyDeadlockFree. The walk is bounded by the node count, so a lane
// that loops is reported as an error rather than hanging.
func VerifyLaneConnected(g topology.Graph, next LaneRouting) error {
	nodes := g.Nodes()
	for d := 0; d < nodes; d++ {
		dst := topology.Node(d)
		// reaches[v] caches "v's lane path reaches dst" so the per-
		// destination sweep is linear: each walk stops at the first node
		// already proven to reach dst.
		reaches := make([]bool, nodes)
		reaches[d] = true
		path := make([]topology.Node, 0, nodes)
		for s := 0; s < nodes; s++ {
			cur := topology.Node(s)
			path = path[:0]
			for !reaches[cur] {
				if len(path) > nodes {
					return fmt.Errorf("core: lane loops en route %d->%d", s, d)
				}
				path = append(path, cur)
				port, ok := next(cur, dst)
				if !ok {
					return fmt.Errorf("core: lane stuck at %d en route %d->%d", cur, s, d)
				}
				nb, ok := g.Neighbor(cur, port)
				if !ok {
					return fmt.Errorf("core: lane needs missing link at %d port %d (%d->%d)", cur, port, s, d)
				}
				cur = nb
			}
			for _, v := range path {
				reaches[v] = true
			}
		}
	}
	return nil
}

// BuildLaneCDG constructs the channel dependency graph induced by the
// deterministic routing subfunction next on g (Definition 7 restricted to
// the lane): walking every (src, dst) pair's lane path and recording
// consecutive channel pairs, all in one channel class. Unreachable or
// stuck pairs contribute nothing; VerifyLaneConnected reports those.
func BuildLaneCDG(g topology.Graph, next LaneRouting) *Graph {
	cdg := NewGraph()
	nodes := g.Nodes()
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			cur := topology.Node(s)
			dst := topology.Node(d)
			var prev Channel
			have := false
			for steps := 0; cur != dst && steps <= nodes; steps++ {
				port, ok := next(cur, dst)
				if !ok {
					break
				}
				nb, ok := g.Neighbor(cur, port)
				if !ok {
					break
				}
				ch := Channel{From: cur, Port: port}
				cdg.AddChannel(ch)
				if have {
					cdg.AddDep(prev, ch)
				}
				prev, have = ch, true
				cur = nb
			}
		}
	}
	return cdg
}

// VerifyDeadlockFree is the Mendlovic-Matias condition, the necessary and
// sufficient test for a deterministic routing function on an arbitrary
// digraph to be deadlock-free under unrestricted concurrent use: the
// subfunction is connected (generalized Lemma 1) and its channel
// dependency graph is acyclic. A returned error carries either the
// connectivity witness or the first dependency cycle found.
func VerifyDeadlockFree(g topology.Graph, next LaneRouting) error {
	if err := VerifyLaneConnected(g, next); err != nil {
		return err
	}
	if cycle := BuildLaneCDG(g, next).FindCycle(); cycle != nil {
		return fmt.Errorf("core: lane dependency cycle %v on %s", cycle, g.Name())
	}
	return nil
}
