package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestGraphBasics(t *testing.T) {
	g := core.NewGraph()
	a := core.Channel{From: 0, Port: 0}
	b := core.Channel{From: 1, Port: 0}
	c := core.Channel{From: 2, Port: 0}
	g.AddDep(a, b)
	g.AddDep(b, c)
	if g.Channels() != 3 || g.Deps() != 2 {
		t.Fatalf("channels=%d deps=%d", g.Channels(), g.Deps())
	}
	if !g.HasDep(a, b) || g.HasDep(b, a) {
		t.Fatal("HasDep wrong")
	}
	if !g.Acyclic() {
		t.Fatal("chain reported cyclic")
	}
	g.AddDep(c, a)
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("3-cycle not found")
	}
	if cycle[0] != cycle[len(cycle)-1] {
		t.Fatal("cycle witness not closed")
	}
	// Witness edges must all exist.
	for i := 1; i < len(cycle); i++ {
		if !g.HasDep(cycle[i-1], cycle[i]) {
			t.Fatalf("witness edge %v->%v missing", cycle[i-1], cycle[i])
		}
	}
	if len(cycle) != 4 {
		t.Fatalf("cycle length %d, want 4 (closed 3-cycle)", len(cycle))
	}
}

func TestGraphSelfLoop(t *testing.T) {
	g := core.NewGraph()
	a := core.Channel{From: 0, Port: 1}
	g.AddDep(a, a)
	if g.Acyclic() {
		t.Fatal("self-loop reported acyclic")
	}
}

func TestGraphIsolatedVertexAcyclic(t *testing.T) {
	g := core.NewGraph()
	g.AddChannel(core.Channel{From: 5, Port: 2})
	if !g.Acyclic() {
		t.Fatal("isolated vertex graph must be acyclic")
	}
}

// The classic results the paper builds on:

func TestDORWithDatelinesAcyclicOnTorus(t *testing.T) {
	for _, topo := range []topology.Topology{topology.MustTorus(4, 4), topology.MustTorus(8, 8), topology.MustTorus(3, 5)} {
		g := core.BuildDORCDG(topo, true)
		if cycle := g.FindCycle(); cycle != nil {
			t.Fatalf("%s: dateline DOR CDG has cycle %v", topo.Name(), cycle)
		}
	}
}

func TestDORWithoutDatelinesCyclicOnTorus(t *testing.T) {
	g := core.BuildDORCDG(topology.MustTorus(4, 4), false)
	if g.Acyclic() {
		t.Fatal("plain DOR on a torus must have ring cycles")
	}
}

func TestDORAcyclicOnMesh(t *testing.T) {
	g := core.BuildDORCDG(topology.MustMesh(4, 4), false)
	if cycle := g.FindCycle(); cycle != nil {
		t.Fatalf("mesh DOR CDG has cycle %v", cycle)
	}
}

// The paper's premise: true fully adaptive routing has a cyclic CDG on both
// torus and mesh, so avoidance cannot certify it — recovery is required.
func TestMinimalAdaptiveCyclic(t *testing.T) {
	for _, topo := range []topology.Topology{topology.MustTorus(4, 4), topology.MustMesh(4, 4)} {
		g := core.BuildMinimalAdaptiveCDG(topo)
		if g.Acyclic() {
			t.Fatalf("%s: fully adaptive minimal CDG unexpectedly acyclic", topo.Name())
		}
	}
}

func TestMinimalAdaptiveCDGOnlyProfitableDeps(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	g := core.BuildMinimalAdaptiveCDG(topo)
	// A dependency straight back along the same link (m->n then n->m) can
	// never be profitable: any dst closer to n than m cannot be closer to m
	// than n again.
	for m := 0; m < topo.Nodes(); m++ {
		for p := 0; p < topo.Degree(); p++ {
			n, ok := topo.Neighbor(topology.Node(m), p)
			if !ok {
				continue
			}
			back := core.Channel{From: n, Port: topology.ReversePort(p)}
			if g.HasDep(core.Channel{From: topology.Node(m), Port: p}, back) {
				t.Fatalf("u-turn dependency %d->%d->%d present", m, n, m)
			}
		}
	}
}

// Lemma 1 / Assumption 3: the DB lane is connected and minimal.
func TestDBLaneConnected(t *testing.T) {
	for _, topo := range []topology.Topology{
		topology.MustTorus(4, 4), topology.MustTorus(8, 8),
		topology.MustMesh(5, 3), topology.MustTorus(3, 3, 3),
	} {
		if err := core.VerifyDBLaneConnected(topo); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
	}
}

// --- Wait-for-graph analyzer -----------------------------------------------------

func buildNet(t *testing.T, alg routing.Algorithm, vcs int, load float64, seed uint64, timeout int) *network.Network {
	t.Helper()
	topo := topology.MustTorus(4, 4)
	rc := router.Default()
	rc.VCs = vcs
	rc.BufferDepth = 1
	rc.Timeout = sim.Cycle(timeout)
	if timeout == 0 {
		rc.DeadlockBufferDepth = 0
	}
	n, err := network.New(network.Config{
		Topo:      topo,
		Router:    rc,
		Algorithm: alg,
		Pattern:   traffic.Uniform(topo),
		LoadRate:  load,
		MsgLen:    8,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestAnalyzerFindsRealDeadlock wedges Disha routing with recovery disabled
// and checks the WFG analyzer reports a true deadlocked configuration whose
// members mutually wait on members.
func TestAnalyzerFindsRealDeadlock(t *testing.T) {
	n := buildNet(t, routing.Disha(0), 1, 0.9, 12, 0)
	n.Run(4000)
	if n.RunUntilDrained(20000) {
		t.Skip("no deadlock formed at this seed")
	}
	res := core.AnalyzeWFG(n.Routers())
	if !res.TrueDeadlock() {
		t.Fatalf("wedged network but analyzer found no true deadlock (blocked=%d)", len(res.Blocked))
	}
	members := map[interface{}]bool{}
	for _, bh := range res.Deadlocked {
		members[bh.Pkt] = true
	}
	// Every deadlocked header waits only on blocked packets (by fixpoint
	// construction none of its waitees can advance).
	for _, bh := range res.Deadlocked {
		if len(bh.WaitsOn) == 0 {
			continue
		}
		for _, w := range bh.WaitsOn {
			if w.OnDB {
				t.Fatalf("deadlocked header waits on a recovering packet %v", w)
			}
		}
	}
}

// TestAnalyzerCleanOnAvoidance runs each avoidance baseline hot and asserts
// no true deadlock ever forms (their theory holds in the implementation).
func TestAnalyzerCleanOnAvoidance(t *testing.T) {
	for _, tc := range []struct {
		alg routing.Algorithm
		vcs int
	}{
		{routing.DOR(), 2},
		{routing.NegativeFirst(), 2},
		{routing.DallyAoki(), 4},
		{routing.Duato(), 4},
	} {
		tc := tc
		t.Run(tc.alg.Name(), func(t *testing.T) {
			n := buildNet(t, tc.alg, tc.vcs, 0.8, 5, 0)
			for i := 0; i < 60; i++ {
				n.Run(50)
				if res := core.AnalyzeWFG(n.Routers()); res.TrueDeadlock() {
					t.Fatalf("%s: true deadlock found at cycle %d: %d members",
						tc.alg.Name(), n.Now(), len(res.Deadlocked))
				}
			}
		})
	}
}

// TestAnalyzerQuietOnIdleNetwork sanity-checks the trivial case.
func TestAnalyzerQuietOnIdleNetwork(t *testing.T) {
	n := buildNet(t, routing.Disha(0), 4, 0.0, 1, 8)
	n.Run(100)
	res := core.AnalyzeWFG(n.Routers())
	if len(res.Blocked) != 0 || res.TrueDeadlock() {
		t.Fatalf("idle network reported blocked=%d deadlocked=%d", len(res.Blocked), len(res.Deadlocked))
	}
}

// TestRecoveryClearsTrueDeadlocks re-runs the wedge scenario with recovery
// enabled and verifies the analyzer's deadlocks are transient: after enough
// cycles the network drains completely.
func TestRecoveryClearsTrueDeadlocks(t *testing.T) {
	n := buildNet(t, routing.Disha(0), 1, 0.9, 12, 8)
	n.Run(4000)
	sawDeadlock := core.AnalyzeWFG(n.Routers()).TrueDeadlock()
	if !n.RunUntilDrained(60000) {
		t.Fatal("recovery-enabled network failed to drain")
	}
	if res := core.AnalyzeWFG(n.Routers()); len(res.Blocked) != 0 {
		t.Fatal("drained network still has blocked headers")
	}
	_ = sawDeadlock // informational: deadlocks may or may not be present at the snapshot
}
