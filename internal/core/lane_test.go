package core_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// laneFor returns the recovery-lane routing subfunction a topology would
// get at network construction: cube dimension-order routing when
// coordinates exist, the deterministic BFS next-hop table otherwise.
func laneFor(g topology.Graph) core.LaneRouting {
	if t, ok := topology.Coordinated(g); ok {
		return core.DORLane(t)
	}
	return core.TableLane(g, core.BFSLaneTable(g))
}

// TestLaneConnectedOnBuiltins runs the generalized Lemma 1 check — the
// construction-time gate for Token-serialized recovery — against every
// built-in topology constructor. All must pass: a sequential recovery lane
// only needs the subfunction to deliver every (src, dst) pair.
func TestLaneConnectedOnBuiltins(t *testing.T) {
	for _, g := range []topology.Graph{
		topology.MustTorus(4, 4),
		topology.MustTorus(3, 5),
		topology.MustMesh(4, 4),
		topology.MustMesh(2, 3, 4),
		topology.MustHypercube(4),
		topology.MustFullMesh(8),
		topology.MustDragonfly(4, 2),
		topology.MustFatTree(4),
	} {
		if err := core.VerifyLaneConnected(g, laneFor(g)); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
}

// TestDeadlockFreeOnAcyclicLanes runs the full Mendlovic-Matias condition
// (connected + acyclic lane CDG) on the topologies whose natural lane is
// deadlock-free even under unrestricted concurrent use: DOR on meshes and
// hypercubes, and single-hop full-mesh routing.
func TestDeadlockFreeOnAcyclicLanes(t *testing.T) {
	for _, g := range []topology.Graph{
		topology.MustMesh(4, 4),
		topology.MustHypercube(4),
		topology.MustFullMesh(8),
	} {
		if err := core.VerifyDeadlockFree(g, laneFor(g)); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
}

// TestLanesConnectedButNotConcurrentSafe documents why the recovery lane
// needs the Token on these topologies: the lane is connected (so the
// construction-time gate accepts it) but its CDG has a cycle, so only
// serialized use is safe. On the torus it is DOR's wraparound rings; on
// the fat tree the BFS table's minimal paths between same-pod switches go
// down-then-up, which is not up-down routing.
func TestLanesConnectedButNotConcurrentSafe(t *testing.T) {
	for _, g := range []topology.Graph{
		topology.MustTorus(4, 4),
		topology.MustFatTree(4),
	} {
		lane := laneFor(g)
		if err := core.VerifyLaneConnected(g, lane); err != nil {
			t.Fatalf("%s lane not connected: %v", g.Name(), err)
		}
		if err := core.VerifyDeadlockFree(g, lane); err == nil {
			t.Fatalf("%s lane passed the acyclicity check; expected a CDG cycle", g.Name())
		}
	}
}

// digraphFixture is the committed adjacency-list format under testdata.
type digraphFixture struct {
	Name string  `json:"name"`
	Adj  [][]int `json:"adj"`
}

func loadFixture(t *testing.T, path string) topology.Graph {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var fx digraphFixture
	if err := json.Unmarshal(raw, &fx); err != nil {
		t.Fatal(err)
	}
	g, err := topology.NewDigraph(fx.Name, fx.Adj)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCheckerRejectsDeadlockyFixture pins the reject half of the checker
// against a committed known-deadlocky digraph: a unidirectional 4-ring
// whose follow-the-ring lane is connected (Lemma 1 alone would accept it)
// but whose channel dependency graph is the full ring cycle. The
// Mendlovic-Matias condition must reject it, proving the acyclicity half
// does real work beyond connectivity.
func TestCheckerRejectsDeadlockyFixture(t *testing.T) {
	g := loadFixture(t, "testdata/uniring4.json")
	ring := func(cur, dst topology.Node) (int, bool) { return 0, true }
	if err := core.VerifyLaneConnected(g, ring); err != nil {
		t.Fatalf("ring lane should be connected: %v", err)
	}
	if err := core.VerifyDeadlockFree(g, ring); err == nil {
		t.Fatal("unidirectional ring lane accepted as deadlock-free")
	}
	// The fixture's links are unpaired, so the BFS lane table (which only
	// walks paired links) cannot route at all — the construction-time
	// connectivity gate also rejects the topology's own lane.
	if err := core.VerifyLaneConnected(g, laneFor(g)); err == nil {
		t.Fatal("BFS lane on unpaired ring accepted")
	}
}

// TestLaneStuckAndLoopWitnesses covers the checker's two failure shapes on
// hand-built lanes: a subfunction with no next hop, and one that orbits
// without reaching the destination.
func TestLaneStuckAndLoopWitnesses(t *testing.T) {
	g, err := topology.NewDigraph("pair", [][]int{{1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	stuck := func(cur, dst topology.Node) (int, bool) { return 0, false }
	if err := core.VerifyLaneConnected(g, stuck); err == nil {
		t.Fatal("stuck lane accepted")
	}
	// A lane that always takes port 0 on this graph orbits the 1<->2 cycle
	// and never reaches node 3; the bounded walk must report the loop
	// instead of hanging.
	loopy, err := topology.NewDigraph("loopy", [][]int{
		{1, 3},
		{2, -1},
		{1, -1},
		{0, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	follow := func(cur, dst topology.Node) (int, bool) { return 0, true }
	if err := core.VerifyLaneConnected(loopy, follow); err == nil {
		t.Fatal("looping lane accepted")
	}
}
