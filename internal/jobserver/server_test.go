package jobserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tinyReq is a sweep small enough for a unit test: one low load on the 8x8
// scale with short windows.
func tinyReq() SweepRequest {
	return SweepRequest{
		Figure:  "3a",
		Scale:   "small",
		Loads:   []float64{0.2},
		Warmup:  100,
		Measure: 300,
	}
}

func startServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(4)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req SweepRequest) JobStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status code = %d", code)
		}
		if st.terminal() {
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle in time", id)
	return JobStatus{}
}

func TestSubmitRunAndFetchResults(t *testing.T) {
	_, ts := startServer(t)
	st := submit(t, ts, tinyReq())
	if st.ID == "" || st.State == "" {
		t.Fatalf("bad submit response: %+v", st)
	}

	final := waitDone(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("job state = %s (error %q)", final.State, final.Error)
	}
	if final.Report == nil || final.Report.Completed != final.Report.Total || final.Report.Total == 0 {
		t.Fatalf("report = %+v", final.Report)
	}
	if final.Progress.Done != final.Report.Total {
		t.Fatalf("progress done = %d, want %d", final.Progress.Done, final.Report.Total)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatal("timestamps missing")
	}

	// CSV result.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := func() ([]byte, error) {
		defer resp.Body.Close()
		b := new(bytes.Buffer)
		_, e := b.ReadFrom(resp.Body)
		return b.Bytes(), e
	}()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(csv), "series,load,latency,throughput") {
		t.Fatalf("csv result: code=%d body=%q", resp.StatusCode, csv)
	}

	// JSON result.
	var res jobResult
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result.json", &res); code != http.StatusOK {
		t.Fatalf("result.json code = %d", code)
	}
	if len(res.Series) != 2 || len(res.Points) != 2 {
		t.Fatalf("result series=%d points=%d, want 2 curves", len(res.Series), len(res.Points))
	}
	for label, pts := range res.Points {
		if len(pts) != 1 || pts[0].Delivered == 0 {
			t.Fatalf("curve %s points %+v", label, pts)
		}
	}

	// Determinism across submissions: same spec, same bytes.
	st2 := submit(t, ts, tinyReq())
	if got := waitDone(t, ts, st2.ID); got.State != "done" {
		t.Fatalf("second job state = %s", got.State)
	}
	resp2, err := http.Get(ts.URL + "/jobs/" + st2.ID + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	csv2 := new(bytes.Buffer)
	csv2.ReadFrom(resp2.Body)
	resp2.Body.Close()
	if csv2.String() != string(csv) {
		t.Fatalf("resubmitted sweep diverged:\n--- first ---\n%s--- second ---\n%s", csv, csv2.String())
	}

	// The job list shows both, oldest first.
	var list []JobStatus
	if code := getJSON(t, ts.URL+"/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list code=%d len=%d", code, len(list))
	}
	if list[0].ID != st.ID || list[1].ID != st2.ID {
		t.Fatalf("list order %s, %s", list[0].ID, list[1].ID)
	}
}

func TestWatchStreamsStatusUntilTerminal(t *testing.T) {
	_, ts := startServer(t)
	st := submit(t, ts, tinyReq())
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines int
	var last JobStatus
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if lines == 0 {
		t.Fatal("watch stream produced no status lines")
	}
	if !last.terminal() {
		t.Fatalf("stream ended before terminal state: %+v", last)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := startServer(t)
	st := submit(t, ts, tinyReq())
	waitDone(t, ts, st.ID)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	text := body.String()
	for _, want := range []string{
		"serve_jobs_accepted_total 1",
		"serve_jobs_completed_total 1",
		"serve_jobs_queued 0",
		"engine_jobs_done_total 2",
		"engine_runs_finished_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := startServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"unknown figure", `{"figure":"99"}`},
		{"unknown scale", `{"figure":"4","scale":"huge"}`},
		{"bad load", `{"figure":"4","loads":[1.5]}`},
		{"unknown field", `{"figure":"4","bogus":1}`},
		{"not json", `nope`},
		{"trailing garbage", `{"figure":"4"} trailing`},
		{"concatenated objects", `{"figure":"4"}{"figure":"4"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	if code := getJSON(t, ts.URL+"/jobs/job-9999", nil); code != http.StatusNotFound {
		t.Fatalf("missing job status code = %d", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/job-9999/result.csv", nil); code != http.StatusNotFound {
		t.Fatalf("missing job result code = %d", code)
	}
}

// TestSubmitBodyTooLarge proves POST /jobs rejects oversized bodies with 413
// and a JSON error instead of streaming them into the decoder.
func TestSubmitBodyTooLarge(t *testing.T) {
	_, ts := startServer(t)
	// A syntactically valid JSON object just past the 1 MiB cap: the limit
	// must trigger on size alone, not on a parse error.
	huge := `{"figure":"4","loads":[` + strings.TrimSuffix(strings.Repeat("0.1,", maxSubmitBytes/4), ",") + `]}`
	if len(huge) <= maxSubmitBytes {
		t.Fatalf("test body too small: %d bytes", len(huge))
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("413 body not a JSON error: %v (%+v)", err, body)
	}
	// The server must still be healthy for well-formed requests.
	if st := submit(t, ts, tinyReq()); st.ID == "" {
		t.Fatal("server unhealthy after oversized request")
	}
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	_, ts := startServer(t)
	// Claim the runner with a slower job, then query the queued one behind it.
	slow := tinyReq()
	slow.Measure = 2500
	slow.Loads = []float64{0.2, 0.4}
	first := submit(t, ts, slow)
	second := submit(t, ts, tinyReq())
	if code := getJSON(t, ts.URL+"/jobs/"+second.ID+"/result.json", nil); code != http.StatusConflict {
		t.Fatalf("pre-completion result code = %d, want 409", code)
	}
	waitDone(t, ts, first.ID)
	waitDone(t, ts, second.ID)
}

func TestSpecValidation(t *testing.T) {
	req := tinyReq()
	spec, err := req.spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Loads) != 1 || spec.Loads[0] != 0.2 {
		t.Fatalf("loads override lost: %v", spec.Loads)
	}
	if spec.Warmup != 100 || spec.Measure != 300 {
		t.Fatalf("cycle overrides lost: w=%d m=%d", spec.Warmup, spec.Measure)
	}
	req.Seed = 99
	spec2, _ := req.spec()
	if spec2.Seed != 99 {
		t.Fatalf("seed override lost: %d", spec2.Seed)
	}
	if _, err := (&SweepRequest{Figure: "4", Scale: "nope"}).spec(); err == nil {
		t.Fatal("bad scale must fail")
	}
	if _, err := (&SweepRequest{Figure: "x"}).spec(); err == nil {
		t.Fatal("bad figure must fail")
	}
}

func TestQueueFull(t *testing.T) {
	s := New(1)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Occupy the runner and fill the 1-deep queue, then overflow it. The
	// runner may drain the queue between submits, so allow a few attempts.
	slow := tinyReq()
	slow.Measure = 3000
	slow.Loads = []float64{0.2, 0.4}
	got503 := false
	for i := 0; i < 6 && !got503; i++ {
		body, _ := json.Marshal(slow)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			got503 = true
			// The overload response carries a retry hint in both the header
			// and the structured JSON body.
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("queue-full 503 without Retry-After header")
			}
			var e struct {
				Error      string `json:"error"`
				RetryAfter int    `json:"retry_after_seconds"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" || e.RetryAfter < 1 {
				t.Fatalf("queue-full 503 body not structured: %v (%+v)", err, e)
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !got503 {
		t.Fatal("queue never reported full")
	}
}
