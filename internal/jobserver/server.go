// Package jobserver is the HTTP front end of the experiment engine: a job
// server that accepts sweep specifications as JSON, queues them, runs each
// through the deterministic parallel engine, and serves live status and
// finished results (JSON and CSV). It backs cmd/disha-serve.
//
// Jobs run one at a time from a FIFO queue — a sweep already saturates every
// core through the engine's worker pool, so running sweeps concurrently
// would only thrash the cache and blur the per-job ETA. Determinism is
// inherited from the engine: submitting the same spec twice returns
// bit-identical results regardless of server load.
//
// API:
//
//	POST /jobs                 submit a sweep spec (SweepRequest JSON) -> 202 + job status
//	GET  /jobs                 list all jobs, oldest first
//	GET  /jobs/{id}            job status; ?watch=1 streams NDJSON status until terminal
//	GET  /jobs/{id}/result.json finished curves as JSON
//	GET  /jobs/{id}/result.csv  finished curves as CSV
//	GET  /metrics              telemetry registry (engine progress + server totals)
//	GET  /healthz              liveness probe
//	GET  /buildz               build metadata (debug.ReadBuildInfo)
//	GET  /debug/pprof/         standard profiles
package jobserver

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// SweepRequest is the JSON body of POST /jobs. Figure and Scale select one
// of the canned paper sweeps; the remaining fields override its knobs.
type SweepRequest struct {
	// Figure is the paper figure to sweep: "3a", "3b", "4", "5", "6", "7".
	Figure string `json:"figure"`
	// Scale is "paper" (16x16, the default) or "small" (8x8).
	Scale string `json:"scale,omitempty"`
	// Loads overrides the swept offered-load rates.
	Loads []float64 `json:"loads,omitempty"`
	// Parallel is the engine worker count (0 = all cores).
	Parallel int `json:"parallel,omitempty"`
	// Replicas aggregates this many independent runs per point into
	// mean ± 95% CI (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Retries is how many extra attempts a failing point gets (default 1).
	Retries int `json:"retries,omitempty"`
	// Warmup/Measure override the scale's cycle counts.
	Warmup  int `json:"warmup,omitempty"`
	Measure int `json:"measure,omitempty"`
	// Seed overrides the scale's base seed.
	Seed uint64 `json:"seed,omitempty"`
}

// spec builds the harness spec the request describes.
func (r *SweepRequest) spec() (*harness.Spec, error) {
	var sc harness.Scale
	switch r.Scale {
	case "", "paper":
		sc = harness.PaperScale()
	case "small":
		sc = harness.SmallScale()
	default:
		return nil, fmt.Errorf("unknown scale %q (want \"paper\" or \"small\")", r.Scale)
	}
	if r.Warmup > 0 {
		sc.Warmup = r.Warmup
	}
	if r.Measure > 0 {
		sc.Measure = r.Measure
	}
	if r.Seed != 0 {
		sc.Seed = r.Seed
	}
	spec, ok := harness.Figures(sc)[r.Figure]
	if !ok {
		return nil, fmt.Errorf("unknown figure %q (want 3a, 3b, 4, 5, 6 or 7)", r.Figure)
	}
	if len(r.Loads) > 0 {
		for _, l := range r.Loads {
			if l <= 0 || l > 1 {
				return nil, fmt.Errorf("load %v out of (0, 1]", l)
			}
		}
		spec.Loads = r.Loads
	}
	return spec, nil
}

// Progress is the live completion state of a job.
type Progress struct {
	Done           int     `json:"done"`
	Failed         int     `json:"failed"`
	Total          int     `json:"total"`
	ETASeconds     float64 `json:"eta_seconds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// EpisodeCounts aggregates a finished sweep's recovery-episode totals
// across every measured point: how often deadlock was presumed, how often
// the recovery Token was seized, and how many WFG samples found a true
// deadlocked configuration.
type EpisodeCounts struct {
	Presumptions  int64 `json:"presumptions"`
	TokenSeizures int64 `json:"token_seizures"`
	TrueDeadlocks int64 `json:"true_deadlocks"`
}

// episodeCounts sums the per-point recovery counters over all curves.
func episodeCounts(res *harness.Result) *EpisodeCounts {
	ec := &EpisodeCounts{}
	for _, pts := range res.Points {
		for _, p := range pts {
			ec.Presumptions += p.TimeoutEvents
			ec.TokenSeizures += p.TokenSeizures
			ec.TrueDeadlocks += p.TrueDeadlocks
		}
	}
	return ec
}

// JobStatus is the JSON rendering of one job.
type JobStatus struct {
	ID       string       `json:"id"`
	State    string       `json:"state"` // "queued", "running", "done", "failed"
	Request  SweepRequest `json:"request"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Progress Progress     `json:"progress"`
	Error    string       `json:"error,omitempty"`
	// Report is the engine's batch summary, present once the job settled.
	Report *engine.Report `json:"report,omitempty"`
	// Episodes totals the sweep's recovery-episode counters, present once
	// the job settled with results.
	Episodes *EpisodeCounts `json:"episodes,omitempty"`
}

func (s JobStatus) terminal() bool { return s.State == "done" || s.State == "failed" }

// jobResult is the serialized form of a finished sweep.
type jobResult struct {
	Name   string                           `json:"name"`
	Series []metrics.Series                 `json:"series"`
	Points map[string][]harness.PointResult `json:"points"`
}

type job struct {
	status JobStatus
	spec   *harness.Spec
	result *harness.Result
}

// Server is the job server. Create it with New and mount Handler.
type Server struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	queue chan string
	next  int

	dataDir         string
	checkpointEvery int

	reg *telemetry.Registry
	em  *engine.Metrics

	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	queued    atomic.Int64

	done chan struct{}
}

// Options configures a job server.
type Options struct {
	// QueueDepth bounds the number of jobs waiting to run (submissions
	// beyond it get 503); 0 means 64.
	QueueDepth int
	// DataDir, when non-empty, makes jobs durable: every sweep keeps a
	// point-granularity journal there, keyed by a hash of the request, so a
	// killed server that is restarted with the same DataDir resumes an
	// identical resubmitted request where it left off instead of recomputing
	// finished points. The directory is created if missing.
	DataDir string
	// CheckpointEvery additionally snapshots each in-progress point's full
	// simulation state to DataDir every that many cycles, so resumption is
	// mid-point, not just between points (see harness.RunOptions). It is
	// ignored without DataDir; 0 disables mid-point checkpointing.
	CheckpointEvery int
}

// New starts a job server and its runner goroutine. queueDepth bounds the
// number of jobs waiting to run (submissions beyond it get 503); 0 means 64.
func New(queueDepth int) *Server {
	s, err := NewWithOptions(Options{QueueDepth: queueDepth})
	if err != nil {
		// Unreachable: without a DataDir nothing touches the filesystem.
		panic(err)
	}
	return s
}

// NewWithOptions starts a job server with full configuration; it fails only
// when a requested DataDir cannot be created.
func NewWithOptions(opts Options) (*Server, error) {
	queueDepth := opts.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("jobserver: data dir: %w", err)
		}
	}
	s := &Server{
		jobs:            make(map[string]*job),
		queue:           make(chan string, queueDepth),
		dataDir:         opts.DataDir,
		checkpointEvery: opts.CheckpointEvery,
		reg:             telemetry.NewRegistry(),
		done:            make(chan struct{}),
	}
	// Server totals are pull-style metrics over atomics so the registry can
	// render them from any goroutine; the engine's own progress metrics
	// serialize through em's mutex (see engine.Metrics).
	s.reg.CounterFunc("serve_jobs_accepted_total", "sweep jobs accepted", nil, s.accepted.Load)
	s.reg.CounterFunc("serve_jobs_completed_total", "sweep jobs finished successfully", nil, s.completed.Load)
	s.reg.CounterFunc("serve_jobs_failed_total", "sweep jobs finished with failures", nil, s.failed.Load)
	s.reg.GaugeFunc("serve_jobs_queued", "sweep jobs waiting to run", nil,
		func() float64 { return float64(s.queued.Load()) })
	s.em = engine.NewMetrics(s.reg)
	s.em.Publish()
	go s.runner()
	return s, nil
}

// requestHash derives the stable on-disk identity of a sweep request from
// its canonical JSON encoding: identical requests share journal and
// checkpoint files, different requests can never collide on them.
func requestHash(req SweepRequest) string {
	raw, err := json.Marshal(req)
	if err != nil {
		// Unreachable: SweepRequest is plain data.
		panic(err)
	}
	sum := sha256.Sum256(raw)
	return fmt.Sprintf("%x", sum[:8])
}

// Close stops the runner after the in-flight job (if any) finishes. Submits
// after Close fail with 503.
func (s *Server) Close() { close(s.done) }

// Registry exposes the server's telemetry registry (tests, embedding).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

func (s *Server) runner() {
	for {
		select {
		case <-s.done:
			return
		case id := <-s.queue:
			s.queued.Add(-1)
			s.runJob(id)
		}
	}
}

func (s *Server) runJob(id string) {
	s.mu.Lock()
	j := s.jobs[id]
	now := time.Now()
	j.status.State = "running"
	j.status.Started = &now
	spec := j.spec
	req := j.status.Request
	s.mu.Unlock()

	opts := harness.RunOptions{
		Parallel: req.Parallel,
		Replicas: req.Replicas,
		Retries:  req.Retries,
		Metrics:  s.em,
	}
	if s.dataDir != "" {
		h := requestHash(req)
		opts.Journal = filepath.Join(s.dataDir, "sweep-"+h+".jsonl")
		opts.Resume = true
		if s.checkpointEvery > 0 {
			opts.CheckpointEvery = s.checkpointEvery
			opts.CheckpointDir = filepath.Join(s.dataDir, "ckpt-"+h)
		}
	}
	opts.Status = func(st engine.Status) {
		s.mu.Lock()
		j.status.Progress = Progress{
			Done:           st.Done,
			Failed:         st.Failed,
			Total:          st.Total,
			ETASeconds:     st.ETA.Seconds(),
			ElapsedSeconds: st.Elapsed.Seconds(),
		}
		s.mu.Unlock()
	}
	res, report, err := spec.RunWith(opts)

	s.mu.Lock()
	end := time.Now()
	j.status.Finished = &end
	j.status.Report = report
	j.result = res
	if res != nil {
		j.status.Episodes = episodeCounts(res)
	}
	if err != nil {
		j.status.State = "failed"
		j.status.Error = err.Error()
		s.failed.Add(1)
	} else {
		j.status.State = "done"
		s.completed.Add(1)
	}
	s.mu.Unlock()
	// Refresh the published snapshot so the server totals move even between
	// engine updates.
	s.em.Publish()
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result.json", s.handleResultJSON)
	mux.HandleFunc("GET /jobs/{id}/result.csv", s.handleResultCSV)
	// Reuse the telemetry exposition handler (it also serves pprof, the
	// liveness probe and build metadata).
	th := telemetry.Handler(s.reg)
	mux.Handle("GET /metrics", th)
	mux.Handle("GET /healthz", th)
	mux.Handle("GET /buildz", th)
	mux.Handle("/debug/pprof/", th)
	return mux
}

// maxSubmitBytes bounds the POST /jobs body. A sweep spec is a few hundred
// bytes of JSON; 1 MiB leaves generous headroom while keeping a hostile
// client from streaming an unbounded body into the decoder.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	body := http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Reject trailing garbage after the JSON object: a concatenated second
	// document would otherwise be silently ignored.
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, "unexpected data after JSON body")
		return
	}
	spec, err := req.spec()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}

	s.mu.Lock()
	s.next++
	id := fmt.Sprintf("job-%04d", s.next)
	j := &job{
		status: JobStatus{ID: id, State: "queued", Request: req, Created: time.Now()},
		spec:   spec,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	select {
	case s.queue <- id:
		s.queued.Add(1)
		s.accepted.Add(1)
		s.em.Publish()
	default:
		s.mu.Lock()
		j.status.State = "failed"
		j.status.Error = "queue full"
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "job queue full")
		return
	}
	w.Header().Set("Location", "/jobs/"+id)
	writeJSON(w, http.StatusAccepted, s.snapshot(id))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.lookup(id); !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, s.snapshot(id))
		return
	}
	// Streaming mode: one NDJSON status line per tick until the job settles.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		st := s.snapshot(id)
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(250 * time.Millisecond):
		}
	}
}

func (s *Server) handleResultJSON(w http.ResponseWriter, r *http.Request) {
	res, status, ok := s.finishedResult(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobResult{Name: status.Request.Figure, Series: res.Series, Points: res.Points})
}

func (s *Server) handleResultCSV(w http.ResponseWriter, r *http.Request) {
	res, _, ok := s.finishedResult(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(res.CSV()))
}

// finishedResult resolves {id} to a finished job's result, writing the
// appropriate error response otherwise. Failed jobs with partial results
// still serve them (the failure is visible in the status report).
func (s *Server) finishedResult(w http.ResponseWriter, r *http.Request) (*harness.Result, JobStatus, bool) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return nil, JobStatus{}, false
	}
	s.mu.Lock()
	st := j.status
	res := j.result
	s.mu.Unlock()
	if !st.terminal() {
		httpError(w, http.StatusConflict, "job %s is %s; results are available once it settles", id, st.State)
		return nil, JobStatus{}, false
	}
	if res == nil {
		httpError(w, http.StatusNotFound, "job %s produced no results: %s", id, st.Error)
		return nil, JobStatus{}, false
	}
	return res, st, true
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) snapshot(id string) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id].status
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
