// Package jobserver is the HTTP front end of the experiment engine: a job
// server that accepts sweep specifications as JSON, queues them, runs each
// through the deterministic parallel engine, and serves live status and
// finished results (JSON and CSV). It backs cmd/disha-serve.
//
// Jobs run one at a time from a FIFO queue — a sweep already saturates every
// core through the engine's worker pool, so running sweeps concurrently
// would only thrash the cache and blur the per-job ETA. Determinism is
// inherited from the engine: submitting the same spec twice returns
// bit-identical results regardless of server load.
//
// API:
//
//	POST /jobs                 submit a sweep spec (SweepRequest JSON) -> 202 + job status
//	GET  /jobs                 list all jobs, oldest first
//	GET  /jobs/{id}            job status; ?watch=1 streams NDJSON status until terminal
//	GET  /jobs/{id}/result.json finished curves as JSON
//	GET  /jobs/{id}/result.csv  finished curves as CSV
//	GET  /metrics              telemetry registry (engine progress + server totals)
//	GET  /healthz              liveness probe
//	GET  /buildz               build metadata (debug.ReadBuildInfo)
//	GET  /debug/pprof/         standard profiles
package jobserver

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// SweepRequest is the JSON body of POST /jobs. Figure and Scale select one
// of the canned paper sweeps; the remaining fields override its knobs.
type SweepRequest struct {
	// Figure is the paper figure to sweep: "3a", "3b", "4", "5", "6", "7".
	Figure string `json:"figure"`
	// Scale is "paper" (16x16, the default) or "small" (8x8).
	Scale string `json:"scale,omitempty"`
	// Loads overrides the swept offered-load rates.
	Loads []float64 `json:"loads,omitempty"`
	// Parallel is the engine worker count (0 = all cores).
	Parallel int `json:"parallel,omitempty"`
	// Replicas aggregates this many independent runs per point into
	// mean ± 95% CI (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Retries is how many extra attempts a failing point gets (default 1).
	Retries int `json:"retries,omitempty"`
	// Warmup/Measure override the scale's cycle counts.
	Warmup  int `json:"warmup,omitempty"`
	Measure int `json:"measure,omitempty"`
	// Seed overrides the scale's base seed.
	Seed uint64 `json:"seed,omitempty"`
}

// spec builds the harness spec the request describes. Resolution lives in
// harness.SpecFor so the fleet worker reconstructs byte-identical specs
// from the same fields.
func (r *SweepRequest) spec() (*harness.Spec, error) {
	return harness.SpecFor(r.Figure, r.Scale, r.Warmup, r.Measure, r.Seed, r.Loads)
}

// Progress is the live completion state of a job.
type Progress struct {
	Done           int     `json:"done"`
	Failed         int     `json:"failed"`
	Total          int     `json:"total"`
	ETASeconds     float64 `json:"eta_seconds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// EpisodeCounts aggregates a finished sweep's recovery-episode totals
// across every measured point: how often deadlock was presumed, how often
// the recovery Token was seized, and how many WFG samples found a true
// deadlocked configuration.
type EpisodeCounts struct {
	Presumptions  int64 `json:"presumptions"`
	TokenSeizures int64 `json:"token_seizures"`
	TrueDeadlocks int64 `json:"true_deadlocks"`
}

// episodeCounts sums the per-point recovery counters over all curves.
func episodeCounts(res *harness.Result) *EpisodeCounts {
	ec := &EpisodeCounts{}
	for _, pts := range res.Points {
		for _, p := range pts {
			ec.Presumptions += p.TimeoutEvents
			ec.TokenSeizures += p.TokenSeizures
			ec.TrueDeadlocks += p.TrueDeadlocks
		}
	}
	return ec
}

// JobStatus is the JSON rendering of one job.
type JobStatus struct {
	ID       string       `json:"id"`
	State    string       `json:"state"` // "queued", "running", "done", "failed"
	Request  SweepRequest `json:"request"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Progress Progress     `json:"progress"`
	Error    string       `json:"error,omitempty"`
	// Report is the engine's batch summary, present once the job settled.
	Report *engine.Report `json:"report,omitempty"`
	// Episodes totals the sweep's recovery-episode counters, present once
	// the job settled with results.
	Episodes *EpisodeCounts `json:"episodes,omitempty"`
}

func (s JobStatus) terminal() bool { return s.State == "done" || s.State == "failed" }

// jobResult is the serialized form of a finished sweep.
type jobResult struct {
	Name   string                           `json:"name"`
	Series []metrics.Series                 `json:"series"`
	Points map[string][]harness.PointResult `json:"points"`
}

type job struct {
	status JobStatus
	spec   *harness.Spec
	result *harness.Result
}

// Server is the job server. Create it with New and mount Handler.
type Server struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	queue chan string
	next  int

	dataDir         string
	checkpointEvery int

	fleet   *fabric.Coordinator
	limiter *fabric.RateLimiter

	reg *telemetry.Registry
	em  *engine.Metrics

	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	queued    atomic.Int64
	rejected  atomic.Int64 // 503s: queue full or draining
	throttled atomic.Int64 // 429s: per-client rate limit

	draining   atomic.Bool
	drainCh    chan struct{} // closed by Drain; threaded to the engine as Stop
	runnerDone chan struct{} // closed when the runner goroutine exits
	drainOnce  sync.Once
	closeOnce  sync.Once
	done       chan struct{}
}

// Options configures a job server.
type Options struct {
	// QueueDepth bounds the number of jobs waiting to run (submissions
	// beyond it get 503); 0 means 64.
	QueueDepth int
	// DataDir, when non-empty, makes jobs durable: every sweep keeps a
	// point-granularity journal there, keyed by a hash of the request, so a
	// killed server that is restarted with the same DataDir resumes an
	// identical resubmitted request where it left off instead of recomputing
	// finished points. The directory is created if missing.
	DataDir string
	// CheckpointEvery additionally snapshots each in-progress point's full
	// simulation state to DataDir every that many cycles, so resumption is
	// mid-point, not just between points (see harness.RunOptions). It is
	// ignored without DataDir; 0 disables mid-point checkpointing.
	CheckpointEvery int
	// Fleet, when non-nil, executes every sweep point through the given
	// coordinator instead of purely in-process: points run on whichever fleet
	// workers hold leases, fall back to local execution when no workers are
	// live, and identical points dedupe through the shared result cache. The
	// coordinator's HTTP API is mounted under /fleet/.
	Fleet *fabric.Coordinator
	// RateLimit, when positive, throttles POST /jobs per client address to
	// this many submissions per second (burst RateBurst, default 5); excess
	// submissions get 429 with a Retry-After header.
	RateLimit float64
	// RateBurst is the per-client burst for RateLimit (default 5).
	RateBurst int
}

// New starts a job server and its runner goroutine. queueDepth bounds the
// number of jobs waiting to run (submissions beyond it get 503); 0 means 64.
func New(queueDepth int) *Server {
	s, err := NewWithOptions(Options{QueueDepth: queueDepth})
	if err != nil {
		// Unreachable: without a DataDir nothing touches the filesystem.
		panic(err)
	}
	return s
}

// NewWithOptions starts a job server with full configuration; it fails only
// when a requested DataDir cannot be created.
func NewWithOptions(opts Options) (*Server, error) {
	queueDepth := opts.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("jobserver: data dir: %w", err)
		}
	}
	s := &Server{
		jobs:            make(map[string]*job),
		queue:           make(chan string, queueDepth),
		dataDir:         opts.DataDir,
		checkpointEvery: opts.CheckpointEvery,
		fleet:           opts.Fleet,
		reg:             telemetry.NewRegistry(),
		drainCh:         make(chan struct{}),
		runnerDone:      make(chan struct{}),
		done:            make(chan struct{}),
	}
	if opts.RateLimit > 0 {
		burst := float64(opts.RateBurst)
		if burst <= 0 {
			burst = 5
		}
		s.limiter = fabric.NewRateLimiter(opts.RateLimit, burst)
	}
	// Server totals are pull-style metrics over atomics so the registry can
	// render them from any goroutine; the engine's own progress metrics
	// serialize through em's mutex (see engine.Metrics).
	s.reg.CounterFunc("serve_jobs_accepted_total", "sweep jobs accepted", nil, s.accepted.Load)
	s.reg.CounterFunc("serve_jobs_completed_total", "sweep jobs finished successfully", nil, s.completed.Load)
	s.reg.CounterFunc("serve_jobs_failed_total", "sweep jobs finished with failures", nil, s.failed.Load)
	s.reg.GaugeFunc("serve_jobs_queued", "sweep jobs waiting to run", nil,
		func() float64 { return float64(s.queued.Load()) })
	s.reg.CounterFunc("serve_jobs_rejected_total", "sweep submissions rejected with 503 (queue full or draining)", nil, s.rejected.Load)
	s.reg.CounterFunc("serve_jobs_throttled_total", "sweep submissions throttled with 429 (per-client rate limit)", nil, s.throttled.Load)
	s.em = engine.NewMetrics(s.reg)
	s.em.Publish()
	go s.runner()
	return s, nil
}

// requestHash derives the stable on-disk identity of a sweep request from
// its canonical JSON encoding: identical requests share journal and
// checkpoint files, different requests can never collide on them.
func requestHash(req SweepRequest) string {
	raw, err := json.Marshal(req)
	if err != nil {
		// Unreachable: SweepRequest is plain data.
		panic(err)
	}
	sum := sha256.Sum256(raw)
	return fmt.Sprintf("%x", sum[:8])
}

// Close stops the runner after the in-flight job (if any) finishes. Submits
// after Close fail with 503.
func (s *Server) Close() { s.closeOnce.Do(func() { close(s.done) }) }

// Drain gracefully shuts the server down: new submissions are refused with
// 503 (Retry-After set), the in-flight sweep is drained — points already
// executing finish, everything not yet dispatched is aborted and left for a
// journal resume — and Drain returns once the runner is idle or ctx expires.
// It is safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.Close()
	select {
	case <-s.runnerDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobserver: drain: %w", ctx.Err())
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Registry exposes the server's telemetry registry (tests, embedding).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

func (s *Server) runner() {
	defer close(s.runnerDone)
	for {
		select {
		case <-s.done:
			return
		case id := <-s.queue:
			s.queued.Add(-1)
			s.runJob(id)
		}
	}
}

func (s *Server) runJob(id string) {
	s.mu.Lock()
	j := s.jobs[id]
	now := time.Now()
	j.status.State = "running"
	j.status.Started = &now
	spec := j.spec
	req := j.status.Request
	s.mu.Unlock()

	opts := harness.RunOptions{
		Parallel: req.Parallel,
		Replicas: req.Replicas,
		Retries:  req.Retries,
		Metrics:  s.em,
		Stop:     s.drainCh,
	}
	if s.fleet != nil {
		// Fleet mode: every point goes through the coordinator, which decides
		// between a cached result, a fleet worker, or the local closure. The
		// PointSpec carries exactly the request fields harness.SpecFor consumes,
		// so workers rebuild a byte-identical spec.
		opts.PointRunner = func(t harness.PointTask, local func() (harness.PointResult, error)) (harness.PointResult, error) {
			return s.fleet.Execute(t, fabric.PointSpec{
				Figure: req.Figure, Scale: req.Scale,
				Warmup: req.Warmup, Measure: req.Measure, Seed: req.Seed,
				Alg: t.Alg, Load: t.Load, Replica: t.Replica,
			}, local)
		}
	}
	if s.dataDir != "" {
		h := requestHash(req)
		opts.Journal = filepath.Join(s.dataDir, "sweep-"+h+".jsonl")
		opts.Resume = true
		if s.checkpointEvery > 0 {
			opts.CheckpointEvery = s.checkpointEvery
			opts.CheckpointDir = filepath.Join(s.dataDir, "ckpt-"+h)
		}
	}
	opts.Status = func(st engine.Status) {
		s.mu.Lock()
		j.status.Progress = Progress{
			Done:           st.Done,
			Failed:         st.Failed,
			Total:          st.Total,
			ETASeconds:     st.ETA.Seconds(),
			ElapsedSeconds: st.Elapsed.Seconds(),
		}
		s.mu.Unlock()
	}
	res, report, err := spec.RunWith(opts)

	s.mu.Lock()
	end := time.Now()
	j.status.Finished = &end
	j.status.Report = report
	j.result = res
	if res != nil {
		j.status.Episodes = episodeCounts(res)
	}
	switch {
	case err != nil:
		j.status.State = "failed"
		j.status.Error = err.Error()
		s.failed.Add(1)
	case report != nil && report.Aborted > 0:
		// Drained mid-sweep: the journal holds every finished point, so
		// resubmitting the same request after a restart resumes where we
		// stopped. Mark the job failed so clients notice it is incomplete.
		j.status.State = "failed"
		j.status.Error = fmt.Sprintf("drained by shutdown with %d of %d points pending", report.Aborted, report.Total)
		s.failed.Add(1)
	default:
		j.status.State = "done"
		s.completed.Add(1)
	}
	s.mu.Unlock()
	// Refresh the published snapshot so the server totals move even between
	// engine updates.
	s.em.Publish()
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result.json", s.handleResultJSON)
	mux.HandleFunc("GET /jobs/{id}/result.csv", s.handleResultCSV)
	if s.fleet != nil {
		mux.Handle("/fleet/", http.StripPrefix("/fleet", s.fleet.Handler()))
	}
	// Reuse the telemetry exposition handler (it also serves pprof, the
	// liveness probe and build metadata).
	th := telemetry.Handler(s.reg)
	mux.Handle("GET /metrics", th)
	mux.Handle("GET /healthz", th)
	mux.Handle("GET /buildz", th)
	mux.Handle("/debug/pprof/", th)
	return mux
}

// maxSubmitBytes bounds the POST /jobs body. A sweep spec is a few hundred
// bytes of JSON; 1 MiB leaves generous headroom while keeping a hostile
// client from streaming an unbounded body into the decoder.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Admission control runs before the body is even read: a draining server
	// and a throttled client get their answer cheaply.
	if s.draining.Load() {
		s.rejected.Add(1)
		unavailable(w, http.StatusServiceUnavailable, 60, "server is draining for shutdown")
		return
	}
	if ok, retry := s.limiter.Allow(clientKey(r)); !ok {
		s.throttled.Add(1)
		unavailable(w, http.StatusTooManyRequests, retrySeconds(retry), "rate limit exceeded for %s", clientKey(r))
		return
	}
	var req SweepRequest
	body := http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Reject trailing garbage after the JSON object: a concatenated second
	// document would otherwise be silently ignored.
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, "unexpected data after JSON body")
		return
	}
	spec, err := req.spec()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}

	s.mu.Lock()
	s.next++
	id := fmt.Sprintf("job-%04d", s.next)
	j := &job{
		status: JobStatus{ID: id, State: "queued", Request: req, Created: time.Now()},
		spec:   spec,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	select {
	case s.queue <- id:
		s.queued.Add(1)
		s.accepted.Add(1)
		s.em.Publish()
	default:
		s.mu.Lock()
		j.status.State = "failed"
		j.status.Error = "queue full"
		s.mu.Unlock()
		s.rejected.Add(1)
		unavailable(w, http.StatusServiceUnavailable, s.retryHintSeconds(), "job queue full")
		return
	}
	w.Header().Set("Location", "/jobs/"+id)
	writeJSON(w, http.StatusAccepted, s.snapshot(id))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.lookup(id); !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, s.snapshot(id))
		return
	}
	// Streaming mode: one NDJSON status line per tick until the job settles.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		st := s.snapshot(id)
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(250 * time.Millisecond):
		}
	}
}

func (s *Server) handleResultJSON(w http.ResponseWriter, r *http.Request) {
	res, status, ok := s.finishedResult(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobResult{Name: status.Request.Figure, Series: res.Series, Points: res.Points})
}

func (s *Server) handleResultCSV(w http.ResponseWriter, r *http.Request) {
	res, _, ok := s.finishedResult(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(res.CSV()))
}

// finishedResult resolves {id} to a finished job's result, writing the
// appropriate error response otherwise. Failed jobs with partial results
// still serve them (the failure is visible in the status report).
func (s *Server) finishedResult(w http.ResponseWriter, r *http.Request) (*harness.Result, JobStatus, bool) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return nil, JobStatus{}, false
	}
	s.mu.Lock()
	st := j.status
	res := j.result
	s.mu.Unlock()
	if !st.terminal() {
		httpError(w, http.StatusConflict, "job %s is %s; results are available once it settles", id, st.State)
		return nil, JobStatus{}, false
	}
	if res == nil {
		httpError(w, http.StatusNotFound, "job %s produced no results: %s", id, st.Error)
		return nil, JobStatus{}, false
	}
	return res, st, true
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) snapshot(id string) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id].status
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// unavailable writes a 503/429 with a Retry-After header and the same
// structured JSON error body as every other error path (413, 400, ...), plus
// a machine-readable retry_after_seconds mirror of the header.
func unavailable(w http.ResponseWriter, code, retryAfter int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, code, map[string]any{
		"error":               fmt.Sprintf(format, args...),
		"retry_after_seconds": retryAfter,
	})
}

// retrySeconds renders a duration as a Retry-After value: whole seconds,
// rounded up, at least 1.
func retrySeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retryHintSeconds estimates when a queue slot might free up: the in-flight
// job's ETA when one is running (clamped to [1s, 5min]), a flat 30s
// otherwise.
func (s *Server) retryHintSeconds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.status.State == "running" && j.status.Progress.ETASeconds > 0 {
			secs := int(math.Ceil(j.status.Progress.ETASeconds))
			if secs < 1 {
				secs = 1
			}
			if secs > 300 {
				secs = 300
			}
			return secs
		}
	}
	return 30
}

// clientKey identifies the submitting client for rate limiting: the remote
// IP without the ephemeral port, falling back to the raw RemoteAddr.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
