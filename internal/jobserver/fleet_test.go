package jobserver

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
)

// TestFleetModeMatchesSerialRun runs the same sweep twice: once on a plain
// in-process server and once in fleet mode where every point executes on a
// remote worker over HTTP. The CSVs must be byte-identical — the fabric is
// an execution transport, never a result transform — and a resubmission in
// fleet mode must be served entirely from the shared result cache.
func TestFleetModeMatchesSerialRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulation points")
	}
	// Serial reference.
	_, serialTS := startServer(t)
	serial := submit(t, serialTS, tinyReq())
	if st := waitDone(t, serialTS, serial.ID); st.State != "done" {
		t.Fatalf("serial job: %s (%s)", st.State, st.Error)
	}
	wantCSV := fetchCSV(t, serialTS, serial.ID)

	// Fleet server with one remote worker.
	coord := fabric.NewCoordinator(fabric.CoordinatorOptions{LeaseTTL: 5 * time.Second})
	defer coord.Close()
	s, err := NewWithOptions(Options{QueueDepth: 4, Fleet: coord})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := fabric.NewWorker(fabric.WorkerOptions{
		Coordinator:   ts.URL + "/fleet",
		ID:            "fleet-test-worker",
		CheckpointDir: t.TempDir(),
		Logf:          t.Logf,
	})
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(ctx) }()
	for deadline := time.Now().Add(10 * time.Second); coord.Stats().WorkersLive == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered through /fleet/")
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := submit(t, ts, tinyReq())
	if final := waitDone(t, ts, st.ID); final.State != "done" {
		t.Fatalf("fleet job: %s (%s)", final.State, final.Error)
	}
	if got := fetchCSV(t, ts, st.ID); got != wantCSV {
		t.Fatalf("fleet CSV diverges from serial run:\n--- serial ---\n%s--- fleet ---\n%s", wantCSV, got)
	}
	fs := coord.Stats()
	if fs.RemoteRuns == 0 {
		t.Fatalf("no points ran remotely: %+v", fs)
	}
	if fs.LocalRuns != 0 {
		t.Fatalf("points leaked to local fallback with a live worker: %+v", fs)
	}

	// Identical resubmission: every point is a cache hit, nothing re-executes.
	before := fs.RemoteRuns
	st2 := submit(t, ts, tinyReq())
	if final := waitDone(t, ts, st2.ID); final.State != "done" {
		t.Fatalf("resubmitted fleet job: %s (%s)", final.State, final.Error)
	}
	if got := fetchCSV(t, ts, st2.ID); got != wantCSV {
		t.Fatal("cached fleet CSV diverges")
	}
	fs = coord.Stats()
	if fs.CacheHits == 0 {
		t.Fatalf("resubmission did not hit the result cache: %+v", fs)
	}
	if fs.RemoteRuns != before {
		t.Fatalf("resubmission re-executed points: %d -> %d remote runs", before, fs.RemoteRuns)
	}

	// The coordinator's status endpoint is reachable through the job server.
	var stats fabric.Stats
	if code := getJSON(t, ts.URL+"/fleet/status", &stats); code != http.StatusOK || stats.CacheHits == 0 {
		t.Fatalf("/fleet/status: code=%d stats=%+v", code, stats)
	}

	cancel()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop")
	}
}

// TestDrainStopsAcceptingAndAbortsPending proves graceful shutdown: Drain
// refuses new submissions with 503 + Retry-After, aborts the in-flight
// sweep's undispatched points, and returns once the runner is idle.
func TestDrainStopsAcceptingAndAbortsPending(t *testing.T) {
	s := New(4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A sweep with many serial points so a drain lands mid-run.
	slow := tinyReq()
	slow.Measure = 2500
	slow.Loads = []float64{0.2, 0.3, 0.4, 0.5}
	slow.Parallel = 1
	st := submit(t, ts, slow)

	// Wait until it is actually running.
	for deadline := time.Now().Add(10 * time.Second); ; {
		var js JobStatus
		getJSON(t, ts.URL+"/jobs/"+st.ID, &js)
		if js.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", js)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}

	// The in-flight job settled as failed with the drain marker, and its
	// engine report accounts for every point as done, failed or aborted.
	var js JobStatus
	getJSON(t, ts.URL+"/jobs/"+st.ID, &js)
	if js.State != "failed" || !strings.Contains(js.Error, "drained by shutdown") {
		t.Fatalf("drained job: state=%s error=%q", js.State, js.Error)
	}
	if js.Report == nil || js.Report.Aborted == 0 {
		t.Fatalf("drained job report: %+v", js.Report)
	}
	if got := js.Report.Completed + js.Report.Aborted + js.Report.Failed(); got != js.Report.Total {
		t.Fatalf("report does not balance: %+v", js.Report)
	}

	// New submissions are refused with 503, Retry-After, and the structured
	// JSON error body.
	body, _ := json.Marshal(tinyReq())
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	var e struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" || e.RetryAfter < 1 {
		t.Fatalf("503 body not structured: %v (%+v)", err, e)
	}

	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestRateLimitThrottlesPerClient proves the 429 admission path: a client
// past its token bucket gets 429 with Retry-After and the structured error
// body, while the server keeps serving once the bucket refills.
func TestRateLimitThrottlesPerClient(t *testing.T) {
	s, err := NewWithOptions(Options{QueueDepth: 8, RateLimit: 20, RateBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Burn the burst with cheap invalid submissions (admission runs before
	// the body is read, so these cost tokens but never queue jobs).
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"figure":"99"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("burst request %d: %d, want 400", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"figure":"99"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("beyond burst: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var e struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" || e.RetryAfter < 1 {
		t.Fatalf("429 body not structured: %v (%+v)", err, e)
	}
	resp.Body.Close()

	// At 20 tokens/s the bucket refills quickly and service resumes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"figure":"99"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusBadRequest {
			break // admitted again (and rejected on spec, as intended)
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(50 * time.Millisecond)
	}

	if s.throttled.Load() == 0 {
		t.Fatal("throttle counter did not move")
	}
}
