package jobserver

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func startDurableServer(t *testing.T, dataDir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewWithOptions(Options{QueueDepth: 4, DataDir: dataDir, CheckpointEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func fetchCSV(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestPersistentJobsResumeAcrossServers simulates the disha-serve crash
// story: a job runs to completion under one server (leaving its journal in
// the data dir), the server is torn down, and a new server over the same
// data dir replays an identical request straight from the journal —
// bit-identical CSV, with the engine reporting the points as journaled.
func TestPersistentJobsResumeAcrossServers(t *testing.T) {
	dataDir := t.TempDir()

	_, ts1 := startDurableServer(t, dataDir)
	st := submit(t, ts1, tinyReq())
	st = waitDone(t, ts1, st.ID)
	if st.State != "done" {
		t.Fatalf("first job state = %s (%s)", st.State, st.Error)
	}
	firstCSV := fetchCSV(t, ts1, st.ID)
	if firstCSV == "" {
		t.Fatal("empty CSV from first run")
	}

	entries, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	journal := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "sweep-") && strings.HasSuffix(e.Name(), ".jsonl") {
			journal = filepath.Join(dataDir, e.Name())
		}
	}
	if journal == "" {
		t.Fatalf("no sweep journal in data dir (entries: %v)", entries)
	}

	// A "restarted" server over the same data dir: resubmitting the same
	// request resumes from the journal instead of recomputing.
	_, ts2 := startDurableServer(t, dataDir)
	st2 := submit(t, ts2, tinyReq())
	st2 = waitDone(t, ts2, st2.ID)
	if st2.State != "done" {
		t.Fatalf("resumed job state = %s (%s)", st2.State, st2.Error)
	}
	if st2.Report == nil || st2.Report.FromJournal == 0 {
		t.Fatalf("resumed job recomputed everything (report: %+v)", st2.Report)
	}
	if got := fetchCSV(t, ts2, st2.ID); got != firstCSV {
		t.Fatal("resumed CSV differs from original run")
	}
}

// TestRequestHashDistinguishesRequests guards the journal keying: different
// requests must not share persistence files.
func TestRequestHashDistinguishesRequests(t *testing.T) {
	a := tinyReq()
	b := tinyReq()
	if requestHash(a) != requestHash(b) {
		t.Fatal("identical requests hash differently")
	}
	b.Seed = 77
	if requestHash(a) == requestHash(b) {
		t.Fatal("different requests share a hash")
	}
}
