package trace

import (
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestRingEviction(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Record(Event{Cycle: int64Cycle(i), Kind: Inject, Pkt: pid(i)})
	}
	if b.Total() != 5 {
		t.Fatalf("total %d", b.Total())
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Pkt != pid(i+2) {
			t.Fatalf("event %d is pkt %d, want %d (oldest-first)", i, e.Pkt, i+2)
		}
	}
}

func TestCountsAndFilter(t *testing.T) {
	b := New(10)
	b.Record(Event{Kind: Inject, Pkt: 1})
	b.Record(Event{Kind: Deliver, Pkt: 1})
	b.Record(Event{Kind: Inject, Pkt: 2})
	b.Record(Event{Kind: Recover, Pkt: 2})
	if b.Count(Inject) != 2 || b.Count(Deliver) != 1 || b.Count(TokenRelease) != 0 {
		t.Fatal("counts wrong")
	}
	if got := b.Filter(Inject); len(got) != 2 || got[0].Pkt != 1 || got[1].Pkt != 2 {
		t.Fatalf("filter wrong: %v", got)
	}
	if got := b.PacketHistory(2); len(got) != 2 || got[1].Kind != Recover {
		t.Fatalf("history wrong: %v", got)
	}
}

func TestDumpAndStrings(t *testing.T) {
	b := New(4)
	b.Record(Event{Cycle: 7, Kind: TokenCapture, Node: 3, Pkt: 9})
	s := b.Dump()
	if !strings.Contains(s, "token-capture") || !strings.Contains(s, "pkt=9") {
		t.Fatalf("dump: %q", s)
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must format")
	}
	for k := Inject; k <= TokenRelease; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Fatalf("kind %d missing name", k)
		}
	}
}

func TestTinyCapacityClamped(t *testing.T) {
	b := New(0)
	b.Record(Event{Pkt: 1})
	b.Record(Event{Pkt: 2})
	if got := b.Events(); len(got) != 1 || got[0].Pkt != 2 {
		t.Fatalf("clamped buffer wrong: %v", got)
	}
}

func int64Cycle(i int) sim.Cycle { return sim.Cycle(i) }

func pid(i int) packet.ID { return packet.ID(i) }
